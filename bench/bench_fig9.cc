// Fig 9 (erratum version): fraction of *users* whose ASes are detoured when
// Google's prefix is leaked, per announcement/locking scenario.
//
// Paper shape: the user-weighted CDFs track the AS-weighted ones with a
// slight left skew — detoured ASes serve a somewhat smaller share of users.
//
// All five cells run as one user-weighted campaign (src/leaksim/) with the
// historical per-scenario seeds, so the series match the old serial loop.
#include <cstdio>
#include <numeric>
#include <vector>

#include "common.h"
#include "core/leak_scenarios.h"
#include "leaksim/engine.h"
#include "util/env.h"
#include "util/strings.h"
#include "util/table.h"

using namespace flatnet;

namespace {

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return std::accumulate(v.begin(), v.end(), 0.0) / static_cast<double>(v.size());
}

}  // namespace

int main() {
  bench::PrintHeader("bench_fig9: users detoured when Google's prefix is leaked",
                     "Fig 9 (erratum) / §8.3");
  const Internet& internet = bench::Internet2020();
  // User populations ride on the analysis topology's metadata.
  std::vector<double> users(internet.num_ases());
  for (AsId id = 0; id < internet.num_ases(); ++id) {
    users[id] = internet.metadata().Get(id).users;
  }

  AsId google = bench::IdByName(internet, "Google");
  std::size_t trials = ScaledTrials(5000, 60);
  std::printf("trials per configuration: %zu\n\n", trials);

  TextTable table;
  table.AddColumn("scenario");
  table.AddColumn("mean ASes%", TextTable::Align::kRight);
  table.AddColumn("mean users%", TextTable::Align::kRight);
  table.AddColumn("skew", TextTable::Align::kRight);

  const LeakScenario scenarios[] = {
      LeakScenario::kAnnounceAllLockGlobal, LeakScenario::kAnnounceAllLockT1T2,
      LeakScenario::kAnnounceAllLockT1, LeakScenario::kAnnounceAll,
      LeakScenario::kAnnounceHierarchyOnly};

  std::vector<leaksim::LeakCellSpec> cells;
  for (LeakScenario scenario : scenarios) {
    leaksim::LeakCellSpec spec;
    spec.victim = google;
    spec.scenario = scenario;
    spec.seed = 0x919 + static_cast<std::uint64_t>(static_cast<int>(scenario));
    spec.trials = static_cast<std::uint32_t>(trials);
    cells.push_back(spec);
  }
  leaksim::LeakCampaignOptions options;
  options.users = &users;
  leaksim::LeakTable campaign = leaksim::RunLeakCampaign(internet, cells, options);

  double all_ases = 0, all_users = 0;
  bool ordering_holds = true;
  double prev_users = -1;
  for (const leaksim::LeakCellResult& cell : campaign.cells) {
    double m_ases = Mean(cell.fraction_ases);
    double m_users = Mean(cell.fraction_users);
    table.AddRow({ToString(cell.spec.scenario), StrFormat("%5.1f", 100 * m_ases),
                  StrFormat("%5.1f", 100 * m_users),
                  m_users < m_ases ? "left (fewer users)" : "right"});
    if (cell.spec.scenario == LeakScenario::kAnnounceAll) {
      all_ases = m_ases;
      all_users = m_users;
    }
    if (prev_users >= 0 && m_users + 0.05 < prev_users) ordering_holds = false;
    prev_users = m_users;
  }
  table.Print(stdout);

  bench::Expect(all_users < all_ases + 0.03,
                StrFormat("user-weighted detour tracks (slightly left of) the AS-weighted one "
                          "(%.1f%% users vs %.1f%% ASes)",
                          100 * all_users, 100 * all_ases));
  bench::Expect(ordering_holds,
                "scenario ordering is preserved under user weighting (locking protects users)");
  bench::PrintSummary();
  return 0;
}
