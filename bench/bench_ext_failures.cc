// Extension (§1's resilience motivation, made operational): what does a
// Tier-1 outage do to a cloud's reachability?
//
// The paper argues the clouds' independence from the hierarchy has
// resilience implications; this drill quantifies them with the
// message-level BGP engine: originate each network's prefix, take every
// Tier-1 down in turn (withdrawing all of its adjacencies), and record the
// destinations lost plus the UPDATE churn of re-convergence. Expected
// shape: no single Tier-1 failure costs a cloud more than a sliver of the
// Internet, while a hierarchy-dependent Tier-1 origin (Sprint archetype)
// loses far more when its Tier-2 lifelines fail.
#include <algorithm>
#include <cstdio>

#include "bgp/event_engine.h"
#include "common.h"
#include "util/strings.h"
#include "util/table.h"

using namespace flatnet;

namespace {

struct DrillResult {
  std::size_t baseline = 0;
  std::size_t worst_loss = 0;
  std::string worst_tier1;
  std::size_t total_churn = 0;
};

DrillResult Drill(const Internet& internet, AsId origin) {
  DrillResult result;
  {
    EventBgpEngine engine(internet.graph());
    engine.Originate(origin);
    result.baseline = engine.ReachedCount();
  }
  for (AsId t1 : internet.tiers().tier1) {
    if (t1 == origin) continue;
    EventBgpEngine engine(internet.graph());
    engine.Originate(origin);
    std::size_t before_messages = engine.messages_processed();
    for (const Neighbor& nb : internet.graph().NeighborsOf(t1)) {
      engine.FailLink(t1, nb.id);
    }
    result.total_churn += engine.messages_processed() - before_messages;
    // Losing the failed Tier-1 itself is expected; count other casualties.
    std::size_t reached = engine.ReachedCount();
    std::size_t loss = result.baseline > reached + 1 ? result.baseline - reached - 1 : 0;
    if (loss > result.worst_loss) {
      result.worst_loss = loss;
      result.worst_tier1 = internet.NameOf(t1);
    }
  }
  return result;
}

}  // namespace

int main() {
  bench::PrintHeader("bench_ext_failures: Tier-1 outage drill (event-driven BGP)",
                     "extension of §1's resilience motivation");
  const Internet& internet = bench::Internet2020();

  TextTable table;
  table.AddColumn("origin");
  table.AddColumn("baseline reach", TextTable::Align::kRight);
  table.AddColumn("worst T1-outage loss", TextTable::Align::kRight);
  table.AddColumn("worst case", TextTable::Align::kRight);
  table.AddColumn("loss %", TextTable::Align::kRight);

  double cloud_worst_fraction = 0.0;
  double sprint_fraction = 0.0;
  for (const char* name : {"Google", "Microsoft", "Amazon", "IBM", "Sprint"}) {
    AsId origin = bench::IdByName(internet, name);
    DrillResult result = Drill(internet, origin);
    double fraction =
        result.baseline ? static_cast<double>(result.worst_loss) / result.baseline : 0.0;
    table.AddRow({name, WithCommas(result.baseline), WithCommas(result.worst_loss),
                  result.worst_tier1, StrFormat("%.2f%%", 100 * fraction)});
    if (std::string(name) == "Sprint") {
      sprint_fraction = fraction;
    } else {
      cloud_worst_fraction = std::max(cloud_worst_fraction, fraction);
    }
  }
  table.Print(stdout);

  bench::Expect(cloud_worst_fraction < 0.05,
                StrFormat("no single Tier-1 outage costs a cloud more than a sliver of its "
                          "reachability (worst measured %.2f%%)",
                          100 * cloud_worst_fraction));
  bench::Expect(sprint_fraction > cloud_worst_fraction,
                "the hierarchy-dependent Tier-1 archetype (Sprint) is hurt more by a peer "
                "Tier-1's outage than any cloud is");
  bench::PrintSummary();
  return 0;
}
