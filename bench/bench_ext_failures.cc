// Extension (§1's resilience motivation, made operational): what does a
// Tier-1 outage do to a cloud's reachability?
//
// The paper argues the clouds' independence from the hierarchy has
// resilience implications; this drill quantifies them with the failure
// campaign engine (src/failsim): one kTier1 cell per origin evaluates
// every Tier-1 outage individually (the cell's seeded permutation covers
// the whole Tier-1 clique), and the worst trial's collateral loss —
// destinations cut off beyond the failed Tier-1 itself — is reported.
// Expected shape: no single Tier-1 failure costs a cloud more than a
// sliver of the Internet, while a hierarchy-dependent Tier-1 origin
// (Sprint archetype) loses far more when its Tier-2 lifelines fail.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "common.h"
#include "failsim/engine.h"
#include "util/strings.h"
#include "util/table.h"

using namespace flatnet;

int main() {
  bench::PrintHeader("bench_ext_failures: Tier-1 outage drill (failure campaign engine)",
                     "extension of §1's resilience motivation");
  const Internet& internet = bench::Internet2020();

  // One kTier1 cell per origin, sized so every Tier-1 appears exactly once
  // (origins that are themselves Tier-1s draw one fewer — the permutation
  // never fails the origin).
  const char* kOrigins[] = {"Google", "Microsoft", "Amazon", "IBM", "Sprint"};
  auto trials = static_cast<std::uint32_t>(internet.tiers().tier1.size());
  std::vector<failsim::FailCellSpec> cells;
  for (const char* name : kOrigins) {
    cells.push_back({.origin = bench::IdByName(internet, name),
                     .scenario = failsim::FailScenario::kTier1,
                     .severity = 0,
                     .seed = 1,
                     .trials = trials});
  }
  failsim::FailTable table = failsim::RunFailureCampaign(internet, cells);

  TextTable out;
  out.AddColumn("origin");
  out.AddColumn("baseline reach", TextTable::Align::kRight);
  out.AddColumn("worst T1-outage loss", TextTable::Align::kRight);
  out.AddColumn("worst case", TextTable::Align::kRight);
  out.AddColumn("loss %", TextTable::Align::kRight);

  double cloud_worst_fraction = 0.0;
  double sprint_fraction = 0.0;
  for (std::size_t i = 0; i < table.cells.size(); ++i) {
    const failsim::FailCellResult& cell = table.cells[i];
    std::size_t worst_trial = 0;
    for (std::size_t t = 1; t < cell.collected(); ++t) {
      if (cell.loss_ases[t] > cell.loss_ases[worst_trial]) worst_trial = t;
    }
    double fraction = cell.collected() ? cell.loss_ases[worst_trial] : 0.0;
    auto worst_loss = static_cast<std::uint64_t>(
        std::llround(fraction * static_cast<double>(cell.baseline)));
    std::string worst_name =
        cell.collected() ? internet.NameOf(cell.targets[worst_trial]) : "-";
    out.AddRow({kOrigins[i], WithCommas(cell.baseline), WithCommas(worst_loss), worst_name,
                StrFormat("%.2f%%", 100 * fraction)});
    if (std::string(kOrigins[i]) == "Sprint") {
      sprint_fraction = fraction;
    } else {
      cloud_worst_fraction = std::max(cloud_worst_fraction, fraction);
    }
  }
  out.Print(stdout);

  bench::Expect(cloud_worst_fraction < 0.05,
                StrFormat("no single Tier-1 outage costs a cloud more than a sliver of its "
                          "reachability (worst measured %.2f%%)",
                          100 * cloud_worst_fraction));
  bench::Expect(sprint_fraction > cloud_worst_fraction,
                "the hierarchy-dependent Tier-1 archetype (Sprint) is hurt more by a peer "
                "Tier-1's outage than any cloud is");
  bench::PrintSummary();
  return 0;
}
