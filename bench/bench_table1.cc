// Table 1: top-20 networks by hierarchy-free reachability, 2015 vs 2020.
//
// Paper shape: Level 3, HE, and Google lead both years; Google is already
// #2-3 in 2015 while Amazon (#206) and Microsoft (#62) rank far lower; by
// 2020 all four clouds are in the top 20 and most networks gained ~5-6
// points of reachability as flattening progressed.
#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "common.h"
#include "sweep/engine.h"
#include "util/stopwatch.h"
#include "util/strings.h"
#include "util/table.h"

using namespace flatnet;

namespace {

struct Sweep {
  std::vector<std::uint32_t> reach;
  std::vector<AsId> ranking;  // descending reach
};

Sweep RunSweep(const Internet& internet) {
  Sweep sweep;
  Stopwatch sw;
  sweep.reach = sweep::ParallelHierarchyFreeSweep(internet);
  std::fprintf(stderr, "[bench] hierarchy-free sweep over %zu ASes: %.1fs\n",
               internet.num_ases(), sw.ElapsedSeconds());
  sweep.ranking.resize(internet.num_ases());
  std::iota(sweep.ranking.begin(), sweep.ranking.end(), 0);
  std::sort(sweep.ranking.begin(), sweep.ranking.end(),
            [&](AsId a, AsId b) { return sweep.reach[a] > sweep.reach[b]; });
  return sweep;
}

std::size_t RankOf(const Sweep& sweep, AsId id) {
  for (std::size_t i = 0; i < sweep.ranking.size(); ++i) {
    if (sweep.ranking[i] == id) return i + 1;
  }
  return sweep.ranking.size();
}

}  // namespace

int main() {
  bench::PrintHeader("bench_table1: top-20 hierarchy-free reachability, 2015 vs 2020",
                     "Table 1 / §6.5");
  const Internet& net2015 = bench::Internet2015();
  const Internet& net2020 = bench::Internet2020();
  Sweep sweep2015 = RunSweep(net2015);
  Sweep sweep2020 = RunSweep(net2020);

  for (auto [label, net, sweep] :
       {std::tuple<const char*, const Internet*, const Sweep*>{"2015", &net2015, &sweep2015},
        {"2020", &net2020, &sweep2020}}) {
    std::printf("\n-- %s --\n", label);
    TextTable table;
    table.AddColumn("#", TextTable::Align::kRight);
    table.AddColumn("network");
    table.AddColumn("reach", TextTable::Align::kRight);
    table.AddColumn("%", TextTable::Align::kRight);
    double denom = static_cast<double>(net->num_ases() - 1);
    for (std::size_t i = 0; i < 20 && i < sweep->ranking.size(); ++i) {
      AsId id = sweep->ranking[i];
      table.AddRow({std::to_string(i + 1), bench::NameOf(*net, id),
                    WithCommas(sweep->reach[id]),
                    StrFormat("%.1f%%", 100.0 * sweep->reach[id] / denom)});
    }
    // The paper's Table 1 also reports the clouds below the fold in 2015.
    for (const char* cloud : {"Google", "Microsoft", "Amazon", "IBM"}) {
      AsId id = bench::IdByName(*net, cloud);
      std::size_t rank = RankOf(*sweep, id);
      if (rank > 20) {
        table.AddSeparator();
        table.AddRow({std::to_string(rank), bench::NameOf(*net, id),
                      WithCommas(sweep->reach[id]),
                      StrFormat("%.1f%%", 100.0 * sweep->reach[id] / denom)});
      }
    }
    table.Print(stdout);
  }

  // --- Paper-shape checks -------------------------------------------------
  auto rank2015 = [&](const char* name) {
    return RankOf(sweep2015, bench::IdByName(net2015, name));
  };
  auto rank2020 = [&](const char* name) {
    return RankOf(sweep2020, bench::IdByName(net2020, name));
  };
  auto frac = [&](const Internet& net, const Sweep& sweep, const char* name) {
    return static_cast<double>(sweep.reach[bench::IdByName(net, name)]) /
           static_cast<double>(net.num_ases() - 1);
  };

  bench::Expect(rank2015("Google") <= 10, "Google already ranks near the top in 2015");
  // Paper ranks 206 and 62 of 51,801 map to ~37 and ~11 at this scale; the
  // claim is "outside the very top", not a precise position.
  bench::Expect(rank2015("Amazon") > 10 && rank2015("Microsoft") > 10,
                "Amazon and Microsoft sit well below the 2015 leaders");
  bool clouds_top20_2020 = rank2020("Google") <= 20 && rank2020("Microsoft") <= 20 &&
                           rank2020("Amazon") <= 25 && rank2020("IBM") <= 20;
  bench::Expect(clouds_top20_2020, "all four clouds reach the top ~20 by 2020");
  bench::Expect(frac(net2020, sweep2020, "Microsoft") - frac(net2015, sweep2015, "Microsoft") >
                    0.10,
                "Microsoft gains dramatically between 2015 and 2020 (paper: +22 points)");
  bench::Expect(rank2020("Level 3") <= 3, "Level 3 tops the 2020 ranking");
  bench::Expect(rank2020("Hurricane Electric") <= 5, "Hurricane Electric in the 2020 top 5");
  bench::PrintSummary();
  return 0;
}
