// Appendix A: do the simulated tied-best paths contain the paths traffic
// actually takes?
//
// Ground truth here is the traceroute campaign's forwarding decisions on
// the full topology; the model is the merged (BGP + inferred neighbors)
// analysis topology, exactly as the paper validates its simulator. Paper
// numbers: Amazon 73.3% (early-exit makes its paths erratic), IBM 82.9%,
// Microsoft 85.4%, Google 91.9%.
#include <cstdio>
#include <map>
#include <set>
#include <vector>

#include "bgp/paths.h"
#include "bgp/propagation.h"
#include "common.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/table.h"

using namespace flatnet;

int main() {
  bench::PrintHeader("bench_appendix_a: simulated paths vs measured traceroute paths",
                     "Appendix A");
  const Study& study = bench::Study2020();
  const Internet& model = study.internet();

  // Sample destination ASes present in the trace set; evaluate every trace
  // towards each sampled destination.
  std::set<AsId> all_dsts;
  for (const Traceroute& trace : study.campaign().traces()) all_dsts.insert(trace.dst_as);
  std::vector<AsId> dsts(all_dsts.begin(), all_dsts.end());
  Rng rng(0xa11a1);
  rng.Shuffle(dsts);
  std::size_t sample = std::min<std::size_t>(dsts.size(), 500);
  dsts.resize(sample);
  std::set<AsId> sampled(dsts.begin(), dsts.end());
  std::printf("evaluating traces towards %zu sampled destination ASes\n\n", sample);

  std::map<AsId, std::vector<const Traceroute*>> by_dst;
  for (const Traceroute& trace : study.campaign().traces()) {
    if (sampled.contains(trace.dst_as)) by_dst[trace.dst_as].push_back(&trace);
  }

  struct Score {
    std::size_t contained = 0;
    std::size_t total = 0;
  };
  std::vector<Score> scores(study.world().clouds.size());

  for (AsId dst : dsts) {
    AnnouncementSource source{.node = dst};
    RouteComputation computation(model.graph(), {source});
    for (const Traceroute* trace : by_dst[dst]) {
      Score& score = scores[trace->cloud_index];
      ++score.total;
      if (IsBestPath(computation, trace->true_path)) ++score.contained;
    }
  }

  TextTable table;
  table.AddColumn("cloud");
  table.AddColumn("traces", TextTable::Align::kRight);
  table.AddColumn("contained in tied-best", TextTable::Align::kRight);
  std::map<std::string, double> pct;
  for (std::uint32_t c = 0; c < scores.size(); ++c) {
    const CloudInstance& cloud = study.world().clouds[c];
    if (scores[c].total == 0) continue;
    double p = 100.0 * scores[c].contained / scores[c].total;
    table.AddRow({cloud.archetype.name, std::to_string(scores[c].total),
                  StrFormat("%.1f%%", p)});
    pct[cloud.archetype.name] = p;
  }
  table.Print(stdout);

  bench::Expect(pct["Amazon"] < pct["Google"],
                "Amazon's early-exit routing makes its measured paths diverge from the model "
                "more than Google's (paper: 73.3% vs 91.9%)");
  bool all_majority = true;
  for (const auto& [name, p] : pct) {
    if (p < 50.0) all_majority = false;
  }
  bench::Expect(all_majority, "the model contains the true path for the majority of traces "
                              "from every cloud");
  bench::Expect(pct["Google"] > 70.0,
                StrFormat("Google's containment is high (measured %.0f%%; paper 91.9%%)",
                          pct["Google"]));
  bench::PrintSummary();
  return 0;
}
