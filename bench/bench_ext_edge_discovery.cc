// Extension (§11 future work): "an efficient method to uncover other edge
// networks' neighbors is an area for future research."
//
// §4.4 concedes the study underestimates the interconnectivity of non-cloud
// hypergiants like Facebook because no VMs run inside them. This bench
// applies the paper's own methodology to the Facebook archetype: place
// measurement VMs inside it, run the traceroute campaign and inference, and
// merge its inferred neighbors. The measured topology's estimate of
// Facebook's hierarchy-free reachability should jump from the BGP-limited
// figure toward ground truth — quantifying how much the paper's published
// numbers understate edge hypergiants.
#include <cstdio>

#include "common.h"
#include "core/reachability_analysis.h"
#include "core/study.h"
#include "measure/validation.h"
#include "util/strings.h"
#include "util/table.h"

using namespace flatnet;

int main() {
  bench::PrintHeader("bench_ext_edge_discovery: measuring a non-cloud hypergiant from inside",
                     "extension of §4.4 / §11 (future work)");

  // Baseline study: the paper's setup — no VMs inside Facebook.
  StudyOptions base;
  base.generator = GeneratorParams::Era2020();
  base.campaign.seed = base.generator.seed ^ 0xca3;

  // Extended study: identical world, but Facebook hosts 10 measurement VMs.
  StudyOptions extended = base;
  for (CloudArchetype& cloud : extended.generator.clouds) {
    if (cloud.name == "Facebook") cloud.vm_locations = 10;
  }

  Study paper_study(base);
  Study extended_study(extended);

  auto fb_base = paper_study.world().Cloud("Facebook").id;
  auto fb_ext = extended_study.world().Cloud("Facebook").id;

  std::size_t denom = paper_study.world().num_ases() - 1;
  std::size_t hf_paper =
      AnalyzeReachability(paper_study.internet(), fb_base).hierarchy_free;
  std::size_t hf_extended =
      AnalyzeReachability(extended_study.internet(), fb_ext).hierarchy_free;
  std::size_t hf_truth = AnalyzeReachability(extended_study.truth(), fb_ext).hierarchy_free;

  // Validation of the new inferences, now that Facebook is measurable.
  std::uint32_t fb_index = 0;
  for (std::uint32_t c = 0; c < extended_study.world().clouds.size(); ++c) {
    if (extended_study.world().clouds[c].archetype.name == "Facebook") fb_index = c;
  }
  auto truth_neighbors = TrueNeighborAsns(extended_study.world().full_graph, fb_ext);
  ValidationStats stats =
      ValidateNeighbors(extended_study.inferred_neighbors()[fb_index], truth_neighbors);

  TextTable table;
  table.AddColumn("Facebook estimate");
  table.AddColumn("hierarchy-free", TextTable::Align::kRight);
  table.AddColumn("% of ASes", TextTable::Align::kRight);
  table.AddRow({"paper setup (BGP view only)", WithCommas(hf_paper),
                StrFormat("%.1f%%", 100.0 * hf_paper / denom)});
  table.AddRow({"with VMs inside Facebook", WithCommas(hf_extended),
                StrFormat("%.1f%%", 100.0 * hf_extended / denom)});
  table.AddRow({"ground truth", WithCommas(hf_truth),
                StrFormat("%.1f%%", 100.0 * hf_truth / denom)});
  table.Print(stdout);
  std::printf("\ninference quality from the new vantage points: FDR %.1f%%, FNR %.1f%%\n",
              100 * stats.Fdr(), 100 * stats.Fnr());

  bench::Expect(hf_extended > hf_paper,
                "measuring from inside raises the estimate of Facebook's independence");
  bench::Expect(hf_truth >= hf_extended &&
                    (hf_truth - hf_extended) * 3 < (hf_truth - hf_paper) * 4,
                "the inside-measurement estimate closes most of the gap to ground truth");
  bench::Expect(stats.Fdr() < 0.25,
                "the paper's final methodology transfers to a non-cloud network with "
                "comparable accuracy");
  bench::PrintSummary();
  return 0;
}
