// Fig 5/6 + Table 2: reliance of each cloud on individual ASes under
// hierarchy-free reachability.
//
// Paper shape: rely = 1 for the overwhelming majority of networks (the
// clouds sit near the fully-flat extreme); each cloud leans on only a
// handful of ASes; Amazon has the single largest reliance outlier (Durand
// do Brasil, 5,889 ASes) because it has by far the fewest peers.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bgp/propagation.h"
#include "bgp/reliance.h"
#include "common.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"

using namespace flatnet;

int main() {
  bench::PrintHeader("bench_fig6_table2: cloud reliance on individual ASes", "Figs 5-6, Table 2");
  const Internet& internet = bench::Internet2020();
  std::size_t n = internet.num_ases();

  struct CloudReliance {
    std::string name;
    std::vector<std::pair<double, AsId>> top;  // descending reliance
    std::size_t rely_le_1 = 0;
    std::size_t rely_heavy = 0;  // rely above ~1% of the reachable set
    std::size_t reachable = 0;
    double max_reliance = 0.0;
  };
  std::vector<CloudReliance> clouds;

  for (const char* name : {"Amazon", "Google", "IBM", "Microsoft"}) {
    AsId id = bench::IdByName(internet, name);
    AnnouncementSource source{.node = id};
    PropagationOptions options;
    Bitset excluded = internet.HierarchyFreeExclusion(id);
    options.excluded = &excluded;
    RouteComputation computation(internet.graph(), {source}, options);
    RelianceResult result = ComputeReliance(computation);

    CloudReliance row;
    row.name = name;
    for (AsId a = 0; a < n; ++a) {
      double r = result.reliance[a];
      if (r <= 0.0) continue;
      ++row.reachable;
      if (r <= 1.0 + 1e-9) ++row.rely_le_1;
      // (counted after the loop once `reachable` is final)
      row.top.push_back({r, a});
      row.max_reliance = std::max(row.max_reliance, r);
    }
    std::sort(row.top.begin(), row.top.end(), std::greater<>());
    double heavy_threshold = 0.012 * static_cast<double>(row.reachable);
    for (const auto& [r, id] : row.top) {
      if (r > heavy_threshold) ++row.rely_heavy;
    }
    row.top.resize(std::min<std::size_t>(row.top.size(), 3));
    clouds.push_back(std::move(row));
  }

  std::printf("Table 2: top-3 reliance per cloud\n");
  TextTable table;
  table.AddColumn("cloud");
  for (int i = 1; i <= 3; ++i) table.AddColumn(StrFormat("#%d (network, rely)", i));
  for (const CloudReliance& cloud : clouds) {
    std::vector<std::string> cells{cloud.name};
    for (const auto& [rely, id] : cloud.top) {
      cells.push_back(StrFormat("%s (%.1f)", bench::NameOf(internet, id).c_str(), rely));
    }
    while (cells.size() < 4) cells.push_back("-");
    table.AddRow(cells);
  }
  table.Print(stdout);

  std::printf("\nFig 6: reliance histogram summary\n");
  TextTable hist;
  hist.AddColumn("cloud");
  hist.AddColumn("reachable", TextTable::Align::kRight);
  hist.AddColumn("rely<=1", TextTable::Align::kRight);
  hist.AddColumn("heavy (>1.2% of reach)", TextTable::Align::kRight);
  hist.AddColumn("max rely", TextTable::Align::kRight);
  for (const CloudReliance& cloud : clouds) {
    hist.AddRow({cloud.name, WithCommas(cloud.reachable), WithCommas(cloud.rely_le_1),
                 std::to_string(cloud.rely_heavy), StrFormat("%.1f", cloud.max_reliance)});
  }
  hist.Print(stdout);

  // --- Paper-shape checks -------------------------------------------------
  bool mostly_one = true;
  for (const CloudReliance& cloud : clouds) {
    if (static_cast<double>(cloud.rely_le_1) / cloud.reachable < 0.60) mostly_one = false;
  }
  bench::Expect(mostly_one, "rely == 1 for the large majority of networks (flat-side extreme)");

  const CloudReliance* amazon = nullptr;
  double other_max = 0;
  for (const CloudReliance& cloud : clouds) {
    if (cloud.name == "Amazon") {
      amazon = &cloud;
    } else {
      other_max = std::max(other_max, cloud.max_reliance);
    }
  }
  bench::Expect(amazon->max_reliance > other_max,
                StrFormat("Amazon has the largest single-network reliance (%.0f vs next %.0f; "
                          "paper: 5,889 on Durand do Brasil)",
                          amazon->max_reliance, other_max));
  bench::Expect(bench::NameOf(internet, amazon->top.front().second) == "Durand do Brasil",
                "Amazon's top reliance is the Durand do Brasil archetype");
  bool few_heavy = true;
  for (const CloudReliance& cloud : clouds) {
    if (cloud.rely_heavy > 25) few_heavy = false;
  }
  bench::Expect(few_heavy,
                "each cloud has heavy reliance on only a handful of networks (paper: all "
                "but a few networks sit at rely <= 600 of ~69k)");
  bench::PrintSummary();
  return 0;
}
