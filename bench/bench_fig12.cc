// Fig 12: percentage of population within 500/700/1000 km of PoPs, per
// continent for each cohort (12a) and per provider (12b).
//
// Paper shape: clouds trail the transit cohort by only ~4-5 points
// worldwide; both cover Europe and North America densely; individual cloud
// providers (Microsoft, Google, Amazon) cover more population than almost
// any individual transit provider (only Sprint competes).
#include <algorithm>
#include <cstdio>

#include "common.h"
#include "geo/population.h"
#include "pops/pop_map.h"
#include "util/strings.h"
#include "util/table.h"

using namespace flatnet;

int main() {
  bench::PrintHeader("bench_fig12: population coverage of PoP deployments", "Fig 12a/12b / §9");
  const World& world = bench::World2020();
  auto deployments = BuildDeployments(world);

  // --- 12a: per-continent cohort coverage ---------------------------------
  std::printf("Fig 12a: cohort coverage per continent (500/700/1000 km)\n");
  std::set<CityIndex> cloud_cities = CohortCities(deployments, true);
  std::set<CityIndex> transit_cities = CohortCities(deployments, false);
  std::vector<CityIndex> cloud_vec(cloud_cities.begin(), cloud_cities.end());
  std::vector<CityIndex> transit_vec(transit_cities.begin(), transit_cities.end());

  TextTable table;
  table.AddColumn("region");
  for (const char* cohort : {"cloud", "transit"}) {
    for (int radius : {500, 700, 1000}) {
      table.AddColumn(StrFormat("%s@%d", cohort, radius), TextTable::Align::kRight);
    }
  }
  double cloud_world_500 = 0, transit_world_500 = 0;
  double cloud_eu = 0, cloud_na = 0;
  {
    std::vector<CoverageResult> cloud_cov, transit_cov;
    for (int radius : {500, 700, 1000}) {
      cloud_cov.push_back(PopulationCoverage(cloud_vec, radius));
      transit_cov.push_back(PopulationCoverage(transit_vec, radius));
    }
    auto add_row = [&](const std::string& region, int continent_index) {
      std::vector<std::string> cells{region};
      for (const auto* cov : {&cloud_cov, &transit_cov}) {
        for (int r = 0; r < 3; ++r) {
          double value = continent_index < 0 ? (*cov)[r].world
                                             : (*cov)[r].per_continent[continent_index];
          cells.push_back(StrFormat("%.0f%%", 100 * value));
        }
      }
      table.AddRow(cells);
    };
    add_row("World", -1);
    for (std::size_t k = 0; k < kContinentCount; ++k) {
      add_row(ToString(static_cast<Continent>(k)), static_cast<int>(k));
    }
    cloud_world_500 = cloud_cov[0].world;
    transit_world_500 = transit_cov[0].world;
    cloud_eu = cloud_cov[0].per_continent[static_cast<int>(Continent::kEurope)];
    cloud_na = cloud_cov[0].per_continent[static_cast<int>(Continent::kNorthAmerica)];
  }
  table.Print(stdout);

  // --- 12b: per-provider coverage -----------------------------------------
  std::printf("\nFig 12b: per-provider world coverage (sorted by 500 km coverage)\n");
  auto rows = PerProviderCoverage(deployments);
  std::sort(rows.begin(), rows.end(), [](const ProviderCoverage& a, const ProviderCoverage& b) {
    return a.coverage_500km > b.coverage_500km;
  });
  TextTable providers;
  providers.AddColumn("provider");
  providers.AddColumn("kind");
  providers.AddColumn("500km", TextTable::Align::kRight);
  providers.AddColumn("700km", TextTable::Align::kRight);
  providers.AddColumn("1000km", TextTable::Align::kRight);
  for (const ProviderCoverage& row : rows) {
    providers.AddRow({row.name, row.is_cloud ? "cloud" : "transit",
                      StrFormat("%.0f%%", 100 * row.coverage_500km),
                      StrFormat("%.0f%%", 100 * row.coverage_700km),
                      StrFormat("%.0f%%", 100 * row.coverage_1000km)});
  }
  providers.Print(stdout);

  // --- Paper-shape checks -------------------------------------------------
  double gap = transit_world_500 - cloud_world_500;
  bench::Expect(gap > -0.02 && gap < 0.12,
                StrFormat("cloud cohort trails transits by only a few points worldwide "
                          "(measured %.1f; paper 4.5)",
                          100 * gap));
  bench::Expect(cloud_eu > 0.75 && cloud_na > 0.70,
                "clouds cover Europe and North America densely");
  int cloud_in_top8 = 0;
  for (int i = 0; i < 8 && i < static_cast<int>(rows.size()); ++i) {
    if (rows[i].is_cloud) ++cloud_in_top8;
  }
  bench::Expect(cloud_in_top8 >= 2,
                "individual clouds cover more population than most individual transits");
  bench::Expect(rows.front().name == "Microsoft" || rows.front().is_cloud,
                "a cloud (Microsoft in the paper) tops the per-provider coverage ranking");
  bench::PrintSummary();
  return 0;
}
