// Fig 3: hierarchy-free reachability vs. customer cone for every AS.
//
// Paper shape: apart from the Tier-1/Tier-2 ISPs (large on both axes) the
// two metrics barely correlate; thousands of ASes achieve high hierarchy-
// free reachability with tiny customer cones (8,374 ASes >= 1,000
// hierarchy-free vs only 51 with cones >= 1,000); Sprint is a Tier-1 by
// cone but ranks in the thousands by hierarchy-free reachability.
#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "asgraph/cone.h"
#include "common.h"
#include "sweep/engine.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"

using namespace flatnet;

int main() {
  bench::PrintHeader("bench_fig3: hierarchy-free reachability vs customer cone", "Fig 3 / §6.6");
  const Internet& internet = bench::Internet2020();
  std::size_t n = internet.num_ases();

  std::vector<std::uint32_t> reach = sweep::ParallelHierarchyFreeSweep(internet);
  std::vector<std::uint32_t> cones = CustomerConeSizes(internet.graph());

  // Scatter summary: bucket the plane (log-scale cone axis) per AS type.
  std::printf("scatter summary (count of ASes per cell):\n");
  TextTable table;
  table.AddColumn("cone \\ hier-free");
  const char* reach_labels[] = {"<1%", "1-25%", "25-50%", "50-75%", ">75%"};
  for (const char* label : reach_labels) table.AddColumn(label, TextTable::Align::kRight);
  auto reach_bin = [&](std::uint32_t r) {
    double f = static_cast<double>(r) / (n - 1);
    if (f < 0.01) return 0;
    if (f < 0.25) return 1;
    if (f < 0.50) return 2;
    if (f < 0.75) return 3;
    return 4;
  };
  auto cone_bin = [](std::uint32_t c) {
    if (c <= 1) return 0;
    if (c <= 10) return 1;
    if (c <= 100) return 2;
    if (c <= 1000) return 3;
    return 4;
  };
  const char* cone_labels[] = {"1 (stub)", "2-10", "11-100", "101-1000", ">1000"};
  std::vector<std::vector<std::size_t>> cells(5, std::vector<std::size_t>(5, 0));
  for (AsId id = 0; id < n; ++id) ++cells[cone_bin(cones[id])][reach_bin(reach[id])];
  for (int c = 0; c < 5; ++c) {
    std::vector<std::string> row{cone_labels[c]};
    for (int r = 0; r < 5; ++r) row.push_back(std::to_string(cells[c][r]));
    table.AddRow(row);
  }
  table.Print(stdout);

  // Key named points (the figure's highlighted markers).
  std::printf("\nnamed networks:\n");
  TextTable named;
  named.AddColumn("network");
  named.AddColumn("cone", TextTable::Align::kRight);
  named.AddColumn("hier-free", TextTable::Align::kRight);
  named.AddColumn("hf-rank", TextTable::Align::kRight);
  std::vector<AsId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](AsId a, AsId b) { return reach[a] > reach[b]; });
  std::vector<std::size_t> rank(n);
  for (std::size_t i = 0; i < n; ++i) rank[order[i]] = i + 1;
  for (const char* name : {"Google", "Microsoft", "Amazon", "IBM", "Level 3", "Sprint",
                           "Hurricane Electric"}) {
    AsId id = bench::IdByName(internet, name);
    named.AddRow({name, WithCommas(cones[id]), WithCommas(reach[id]),
                  std::to_string(rank[id])});
  }
  named.Print(stdout);

  // Correlation excluding the hierarchy itself.
  std::vector<double> x, y;
  Bitset hierarchy = internet.tiers().HierarchyMask();
  for (AsId id = 0; id < n; ++id) {
    if (hierarchy.Test(id)) continue;
    x.push_back(static_cast<double>(cones[id]));
    y.push_back(static_cast<double>(reach[id]));
  }
  double spearman = SpearmanCorrelation(x, y);
  std::printf("\nSpearman(cone, hierarchy-free) outside the hierarchy: %.3f\n", spearman);

  // Threshold census (the paper's 8,374 vs 51 contrast, scaled).
  double threshold = 1000.0 * n / 69999.0;
  std::size_t high_reach = 0, big_cone = 0;
  for (AsId id = 0; id < n; ++id) {
    if (reach[id] >= threshold) ++high_reach;
    if (cones[id] >= threshold) ++big_cone;
  }
  std::printf("ASes with hierarchy-free reach >= %.0f: %zu; customer cone >= %.0f: %zu\n",
              threshold, high_reach, threshold, big_cone);

  bench::Expect(high_reach > 20 * big_cone,
                "orders of magnitude more ASes have high hierarchy-free reachability than "
                "large customer cones (paper: 8,374 vs 51)");
  AsId sprint = bench::IdByName(internet, "Sprint");
  // Cone rank of Sprint for the relative comparison the paper makes
  // (customer-cone rank 32 vs hierarchy-free rank 2,978).
  std::vector<AsId> cone_order(n);
  std::iota(cone_order.begin(), cone_order.end(), 0);
  std::sort(cone_order.begin(), cone_order.end(),
            [&](AsId a, AsId b) { return cones[a] > cones[b]; });
  std::size_t sprint_cone_rank = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (cone_order[i] == sprint) sprint_cone_rank = i + 1;
  }
  bench::Expect(rank[sprint] > sprint_cone_rank && rank[sprint] > 40,
                StrFormat("Sprint, #%zu by customer cone, falls to #%zu by hierarchy-free "
                          "reachability (paper: #32 vs #2,978)",
                          sprint_cone_rank, rank[sprint]));
  AsId google = bench::IdByName(internet, "Google");
  bench::Expect(cones[google] < cones[sprint] && reach[google] > reach[sprint],
                "Google: tiny cone, huge hierarchy-free reachability (the flattening signature)");
  bench::PrintSummary();
  return 0;
}
