// §4.1: cloud peer counts, BGP-feed view vs. traceroute-augmented view.
//
// Paper numbers (paper-scale): Amazon 333 -> 1,389; Google 818 -> 7,757;
// IBM 3,027 -> 3,702; Microsoft 315 -> 3,580. BGP feeds miss ~90% of the
// open-policy clouds' peers; IBM's mostly-bilateral footprint is largely
// visible.
#include <cstdio>

#include "common.h"
#include "util/strings.h"
#include "util/table.h"

using namespace flatnet;

int main() {
  bench::PrintHeader("bench_peers: cloud provider peer counts",
                     "§4.1 (CAIDA-only vs traceroute-augmented neighbor sets)");
  const Study& study = bench::Study2020();

  TextTable table;
  table.AddColumn("cloud");
  table.AddColumn("BGP view", TextTable::Align::kRight);
  table.AddColumn("augmented", TextTable::Align::kRight);
  table.AddColumn("ground truth", TextTable::Align::kRight);
  table.AddColumn("BGP misses", TextTable::Align::kRight);

  double google_ratio = 0;
  double ibm_ratio = 0;
  bool augmented_always_larger = true;
  for (const CloudPeerCounts& row : study.PeerCounts()) {
    double missed = row.ground_truth > 0
                        ? 1.0 - static_cast<double>(row.bgp_only) /
                                    static_cast<double>(row.ground_truth)
                        : 0.0;
    table.AddRow({row.name, std::to_string(row.bgp_only), std::to_string(row.merged),
                  std::to_string(row.ground_truth), StrFormat("%.0f%%", 100 * missed)});
    if (row.name == "Google") google_ratio = missed;
    if (row.name == "IBM") ibm_ratio = missed;
    if (row.merged <= row.bgp_only) augmented_always_larger = false;
  }
  table.Print(stdout);

  bench::Expect(augmented_always_larger,
                "traceroute augmentation uncovers peers beyond BGP feeds for every cloud");
  bench::Expect(google_ratio > 0.75,
                "BGP feeds miss ~90% of Google's (open peering policy) peers");
  bench::Expect(ibm_ratio < 0.45,
                "IBM's peers are mostly visible in BGP feeds (paper: 19% missed)");
  bench::PrintSummary();
  return 0;
}
