// Fig 11: PoP deployment geography — cloud vs transit cohorts over
// population centers.
//
// Paper shape: both cohorts concentrate near dense population centers; the
// clouds' cities are nearly a subset of the transit providers' except for
// Shanghai and Beijing; transit providers hold a dozen-plus exclusive
// locations with a stronger presence in South America, Africa, and the
// Middle East.
#include <cstdio>
#include <map>
#include <set>

#include "common.h"
#include "geo/population.h"
#include "pops/pop_map.h"
#include "util/strings.h"
#include "util/table.h"

using namespace flatnet;

int main() {
  bench::PrintHeader("bench_fig11: PoP deployment vs population density", "Fig 11 / §9");
  const World& world = bench::World2020();
  auto deployments = BuildDeployments(world);
  auto cities = WorldCities();

  CityPresenceSplit split = SplitCityPresence(deployments);
  std::printf("cities with cloud+transit PoPs: %zu, transit-only: %zu, cloud-only: %zu\n\n",
              split.both.size(), split.transit_only.size(), split.cloud_only.size());

  auto print_cities = [&](const char* label, const std::vector<CityIndex>& list) {
    std::printf("%s:", label);
    for (CityIndex c : list) std::printf(" %s", std::string(cities[c].name).c_str());
    std::printf("\n");
  };
  print_cities("cloud-only cities", split.cloud_only);
  print_cities("transit-only cities", split.transit_only);

  // Continental presence matrix.
  std::printf("\nPoP cities per continent:\n");
  TextTable table;
  table.AddColumn("continent");
  table.AddColumn("cloud cities", TextTable::Align::kRight);
  table.AddColumn("transit cities", TextTable::Align::kRight);
  std::set<CityIndex> cloud_cities = CohortCities(deployments, true);
  std::set<CityIndex> transit_cities = CohortCities(deployments, false);
  std::map<Continent, std::pair<int, int>> per_continent;
  for (CityIndex c : cloud_cities) per_continent[cities[c].continent].first++;
  for (CityIndex c : transit_cities) per_continent[cities[c].continent].second++;
  int south_cloud = 0, south_transit = 0;
  for (std::size_t k = 0; k < kContinentCount; ++k) {
    auto continent = static_cast<Continent>(k);
    auto [cloud_count, transit_count] = per_continent[continent];
    table.AddRow({ToString(continent), std::to_string(cloud_count),
                  std::to_string(transit_count)});
    if (continent == Continent::kSouthAmerica || continent == Continent::kAfrica ||
        continent == Continent::kMiddleEast) {
      south_cloud += cloud_count;
      south_transit += transit_count;
    }
  }
  table.Print(stdout);

  // Population coverage of each cohort's union footprint at 500 km.
  CoverageResult cloud_cov =
      PopulationCoverage({cloud_cities.begin(), cloud_cities.end()}, 500.0);
  CoverageResult transit_cov =
      PopulationCoverage({transit_cities.begin(), transit_cities.end()}, 500.0);
  std::printf("\nunion coverage at 500km: clouds %.1f%%, transits %.1f%%\n",
              100 * cloud_cov.world, 100 * transit_cov.world);

  // --- Paper-shape checks -------------------------------------------------
  bool china_cloud_only = false;
  for (CityIndex c : split.cloud_only) {
    if (cities[c].iata == "PVG" || cities[c].iata == "PEK") china_cloud_only = true;
  }
  bench::Expect(china_cloud_only,
                "Shanghai/Beijing appear among the cloud-only locations (paper's exception)");
  bench::Expect(split.transit_only.size() >= 5,
                "transit providers hold many locations the clouds skip");
  bench::Expect(split.cloud_only.size() <= split.transit_only.size(),
                "cloud PoP cities are (nearly) a subset of the transit providers'");
  bench::Expect(south_transit > south_cloud,
                "transit providers deploy more broadly in South America / Africa / Middle East");
  bench::Expect(transit_cov.world >= cloud_cov.world - 0.02 &&
                    transit_cov.world - cloud_cov.world < 0.12,
                StrFormat("transits' extra locations buy only a few points of population "
                          "coverage (paper: ~4.5%%; measured %.1f)",
                          100 * (transit_cov.world - cloud_cov.world)));
  bench::PrintSummary();
  return 0;
}
