// Ablation: peer-locking semantics — the paper's erratum, quantified.
//
// The original IMC results filtered leaked routes only on sessions directly
// with the misconfigured AS (kDirectOnly); the erratum corrects the filter
// so a locking AS drops the protected prefix from every neighbor except the
// victim (kFull). This bench runs the Fig 8 scenarios for Google under both
// semantics; the erratum's statement — the original under-filtering
// "led to an underestimation of the benefits of peer locking" — should
// appear as strictly lower detour fractions under kFull.
//
// Both semantics share one campaign (src/leaksim/): six cells with the
// historical seed 0xab1a, so each (scenario, mode) series matches the old
// serial RunLeakScenario calls exactly.
#include <cstdio>
#include <numeric>
#include <vector>

#include "common.h"
#include "core/leak_scenarios.h"
#include "leaksim/engine.h"
#include "util/env.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"

using namespace flatnet;

namespace {

double Mean(const std::vector<double>& v) {
  return v.empty() ? 0.0
                   : std::accumulate(v.begin(), v.end(), 0.0) / static_cast<double>(v.size());
}

}  // namespace

int main() {
  bench::PrintHeader("bench_ablation_peerlock: pre-erratum vs erratum locking semantics",
                     "erratum to §8.2 / Figs 7-9");
  const Internet& internet = bench::Internet2020();
  AsId google = bench::IdByName(internet, "Google");
  std::size_t trials = ScaledTrials(5000, 60);
  std::printf("victim: Google; trials per cell: %zu\n\n", trials);

  TextTable table;
  table.AddColumn("locking deployment");
  table.AddColumn("pre-erratum mean%", TextTable::Align::kRight);
  table.AddColumn("erratum mean%", TextTable::Align::kRight);
  table.AddColumn("pre-erratum p95%", TextTable::Align::kRight);
  table.AddColumn("erratum p95%", TextTable::Align::kRight);

  const LeakScenario scenarios[] = {LeakScenario::kAnnounceAllLockT1,
                                    LeakScenario::kAnnounceAllLockT1T2,
                                    LeakScenario::kAnnounceAllLockGlobal};
  std::vector<leaksim::LeakCellSpec> specs;
  for (LeakScenario scenario : scenarios) {
    for (PeerLockMode mode : {PeerLockMode::kDirectOnly, PeerLockMode::kFull}) {
      leaksim::LeakCellSpec spec;
      spec.victim = google;
      spec.scenario = scenario;
      spec.lock_mode = mode;
      spec.seed = 0xab1a;
      spec.trials = static_cast<std::uint32_t>(trials);
      specs.push_back(spec);
    }
  }
  leaksim::LeakTable campaign = leaksim::RunLeakCampaign(internet, specs);

  struct Cell {
    double mean_direct = 0, mean_full = 0;
  };
  std::vector<Cell> cells;
  for (std::size_t i = 0; i < campaign.cells.size(); i += 2) {
    const std::vector<double>& direct = campaign.cells[i].fraction_ases;
    const std::vector<double>& full = campaign.cells[i + 1].fraction_ases;
    table.AddRow({ToString(campaign.cells[i].spec.scenario),
                  StrFormat("%5.1f", 100 * Mean(direct)), StrFormat("%5.1f", 100 * Mean(full)),
                  StrFormat("%5.1f", 100 * Quantile(direct, 0.95)),
                  StrFormat("%5.1f", 100 * Quantile(full, 0.95))});
    cells.push_back({Mean(direct), Mean(full)});
  }
  table.Print(stdout);

  bool erratum_stronger = true;
  for (const Cell& cell : cells) {
    if (cell.mean_full > cell.mean_direct + 1e-9) erratum_stronger = false;
  }
  bench::Expect(erratum_stronger,
                "erratum semantics never allow more leakage than the pre-erratum filter");
  bench::Expect(cells.back().mean_direct > 1.5 * cells.back().mean_full ||
                    cells.back().mean_direct - cells.back().mean_full > 0.01,
                "under global locking the original filter materially underestimated the "
                "protection (the erratum's headline)");
  bench::PrintSummary();
  return 0;
}
