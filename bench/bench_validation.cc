// §5: validation of neighbor inference across the methodology iterations.
//
// The paper's trajectory (Microsoft ground truth): initial FDR ~50% and FNR
// 23-50%; discarding unresponsive gaps + registries cut FDR to 8% (FNR 34%);
// more vantage points cut FNR to 24% (FDR 16%); preferring PeeringDB for
// IXP addresses landed at FDR 11% / FNR 21%.
#include <cstdio>
#include <map>
#include <utility>

#include "common.h"
#include "measure/validation.h"
#include "util/strings.h"
#include "util/table.h"

using namespace flatnet;

int main() {
  bench::PrintHeader("bench_validation: neighbor-inference FDR/FNR by methodology stage",
                     "§5 (iterative improvement; Microsoft/Google validation)");
  const Study& study = bench::Study2020();

  TextTable table;
  table.AddColumn("stage");
  table.AddColumn("cloud");
  table.AddColumn("TP", TextTable::Align::kRight);
  table.AddColumn("FP", TextTable::Align::kRight);
  table.AddColumn("FN", TextTable::Align::kRight);
  table.AddColumn("FDR", TextTable::Align::kRight);
  table.AddColumn("FNR", TextTable::Align::kRight);

  struct Cell {
    double fdr = 0, fnr = 0;
  };
  std::map<std::pair<int, std::string>, Cell> cells;

  const MethodologyStage stages[] = {MethodologyStage::kV0Initial,
                                     MethodologyStage::kV1Registries,
                                     MethodologyStage::kV2MoreVantage,
                                     MethodologyStage::kV3Final};
  for (int s = 0; s < 4; ++s) {
    auto inferred = study.InferAtStage(stages[s]);
    for (std::uint32_t c = 0; c < study.world().clouds.size(); ++c) {
      const CloudInstance& cloud = study.world().clouds[c];
      if (!cloud.archetype.is_study_cloud || cloud.archetype.vm_locations == 0) continue;
      auto truth = TrueNeighborAsns(study.world().full_graph, cloud.id);
      ValidationStats stats = ValidateNeighbors(inferred[c], truth);
      table.AddRow({ToString(stages[s]), cloud.archetype.name,
                    std::to_string(stats.true_positives), std::to_string(stats.false_positives),
                    std::to_string(stats.false_negatives), StrFormat("%.1f%%", 100 * stats.Fdr()),
                    StrFormat("%.1f%%", 100 * stats.Fnr())});
      cells[{s, cloud.archetype.name}] = {stats.Fdr(), stats.Fnr()};
    }
    if (s != 3) table.AddSeparator();
  }
  table.Print(stdout);

  auto avg = [&](int stage, auto member) {
    double sum = 0;
    int n = 0;
    for (const auto& [key, cell] : cells) {
      if (key.first == stage) {
        sum += member(cell);
        ++n;
      }
    }
    return n ? sum / n : 0.0;
  };
  double fdr0 = avg(0, [](const Cell& c) { return c.fdr; });
  double fdr3 = avg(3, [](const Cell& c) { return c.fdr; });
  double fnr1 = avg(1, [](const Cell& c) { return c.fnr; });
  double fnr2 = avg(2, [](const Cell& c) { return c.fnr; });
  double fnr3 = avg(3, [](const Cell& c) { return c.fnr; });

  bench::Expect(fdr0 > 2.5 * fdr3,
                StrFormat("final methodology cuts FDR by a large factor (%.0f%% -> %.0f%%)",
                          100 * fdr0, 100 * fdr3));
  bench::Expect(fnr2 < fnr1, "additional vantage points reduce false negatives (v1 -> v2)");
  bench::Expect(fnr3 > 0.10 && fnr3 < 0.35,
                StrFormat("final FNR lands near the paper's 21%% (measured %.0f%%)", 100 * fnr3));
  bench::Expect(fdr3 < 0.20,
                StrFormat("final FDR lands near the paper's 11%% (measured %.0f%%)", 100 * fdr3));
  bench::PrintSummary();
  return 0;
}
