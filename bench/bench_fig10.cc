// Fig 10: Google's leak resilience (announce-to-all), 2015 vs 2020.
//
// Paper shape: despite a larger 2020 peering footprint, resilience changed
// only marginally (slightly better/worse depending on the tail) — new peers
// are mostly small edge ASes and some providers became peers, which cuts
// both ways.
//
// Each era is a one-cell campaign (src/leaksim/) with the historical seed,
// so the trial series match the old serial RunLeakScenario calls.
#include <cmath>
#include <cstdio>
#include <numeric>
#include <utility>
#include <vector>

#include "common.h"
#include "core/leak_scenarios.h"
#include "leaksim/engine.h"
#include "util/env.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"

using namespace flatnet;

namespace {

double Mean(const std::vector<double>& v) {
  return v.empty() ? 0.0
                   : std::accumulate(v.begin(), v.end(), 0.0) / static_cast<double>(v.size());
}

}  // namespace

int main() {
  bench::PrintHeader("bench_fig10: Google leak resilience over time (2015 vs 2020)",
                     "Fig 10 / §8.4");
  std::size_t trials = ScaledTrials(5000, 80);
  std::printf("trials per era: %zu\n\n", trials);

  TextTable table;
  table.AddColumn("era");
  table.AddColumn("mean%", TextTable::Align::kRight);
  table.AddColumn("median%", TextTable::Align::kRight);
  table.AddColumn("p90%", TextTable::Align::kRight);
  table.AddColumn("max%", TextTable::Align::kRight);

  double means[2] = {0, 0};
  int idx = 0;
  for (auto [label, internet] : {std::pair<const char*, const Internet*>{"2015",
                                                                         &bench::Internet2015()},
                                 {"2020", &bench::Internet2020()}}) {
    AsId google = bench::IdByName(*internet, "Google");
    leaksim::LeakCellSpec spec;
    spec.victim = google;
    spec.seed = 0xf16;
    spec.trials = static_cast<std::uint32_t>(trials);
    leaksim::LeakTable campaign = leaksim::RunLeakCampaign(*internet, {spec});
    const std::vector<double>& f = campaign.cells.front().fraction_ases;
    table.AddRow({label, StrFormat("%5.1f", 100 * Mean(f)),
                  StrFormat("%5.1f", 100 * Quantile(f, 0.5)),
                  StrFormat("%5.1f", 100 * Quantile(f, 0.9)),
                  StrFormat("%5.1f", 100 * Quantile(f, 1.0))});
    means[idx++] = Mean(f);
  }
  table.Print(stdout);

  double delta = std::abs(means[1] - means[0]);
  bench::Expect(delta < 0.10,
                StrFormat("resilience changed only modestly between eras (|Δmean| = %.1f "
                          "points; paper: small change despite footprint growth)",
                          100 * delta));
  bench::Expect(means[0] < 0.45 && means[1] < 0.45,
                "Google is leak-resilient in both eras (most leaks attract well under half "
                "of the Internet)");
  bench::PrintSummary();
  return 0;
}
