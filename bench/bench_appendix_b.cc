// Appendix B: why Sprint and Deutsche Telekom collapse under hierarchy-free
// reachability — their Tier-1-free routes funnel through a handful of
// Tier-2 ISPs.
//
// Paper shape: bypassing just each network's top-6 relied-upon Tier-2s
// (Hurricane Electric, PCCW, Comcast, Liberty Global, Vodafone, ...)
// reproduces almost the whole hierarchy-free drop.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bgp/propagation.h"
#include "bgp/reachability.h"
#include "bgp/reliance.h"
#include "common.h"
#include "core/reachability_analysis.h"
#include "util/strings.h"
#include "util/table.h"

using namespace flatnet;

int main() {
  bench::PrintHeader("bench_appendix_b: Tier-1 reliance on Tier-2 networks", "Appendix B");
  const Internet& internet = bench::Internet2020();

  for (const char* name : {"Sprint", "Deutsche Telekom"}) {
    AsId origin = bench::IdByName(internet, name);
    ReachabilitySummary summary = AnalyzeReachability(internet, origin);
    std::printf("-- %s --\n", name);
    std::printf("Tier-1-free reachability: %s; hierarchy-free: %s (drop: %s)\n",
                WithCommas(summary.tier1_free).c_str(), WithCommas(summary.hierarchy_free).c_str(),
                WithCommas(summary.tier1_free - summary.hierarchy_free).c_str());

    // Reliance computed under the Tier-1-free constraint (§6.3 view).
    Bitset t1free = internet.Tier1FreeExclusion(origin);
    AnnouncementSource source{.node = origin};
    PropagationOptions options;
    options.excluded = &t1free;
    RouteComputation computation(internet.graph(), {source}, options);
    RelianceResult reliance = ComputeReliance(computation);

    // Top Tier-2s by reliance.
    std::vector<std::pair<double, AsId>> tier2_reliance;
    for (AsId id : internet.tiers().tier2) {
      if (reliance.reliance[id] > 0) tier2_reliance.push_back({reliance.reliance[id], id});
    }
    std::sort(tier2_reliance.begin(), tier2_reliance.end(), std::greater<>());
    tier2_reliance.resize(std::min<std::size_t>(tier2_reliance.size(), 6));

    TextTable table;
    table.AddColumn("relied-upon Tier-2");
    table.AddColumn("reliance", TextTable::Align::kRight);
    Bitset six = internet.ProviderFreeExclusion(origin);
    six |= internet.tiers().tier1_mask;
    six.Reset(origin);
    for (const auto& [rely, id] : tier2_reliance) {
      table.AddRow({bench::NameOf(internet, id), StrFormat("%.0f", rely)});
      six.Set(id);
    }
    table.Print(stdout);

    // Bypassing ONLY those six Tier-2s (plus T1s and providers).
    ReachabilityEngine engine(internet.graph());
    std::size_t reach_six = engine.Count(origin, &six);
    std::size_t drop_all = summary.tier1_free - summary.hierarchy_free;
    std::size_t drop_six = summary.tier1_free - reach_six;
    double covered = drop_all > 0 ? static_cast<double>(drop_six) / drop_all : 1.0;
    std::printf("bypassing only these six: reach %s -> drop %s (%.0f%% of the full Tier-2 "
                "drop)\n\n",
                WithCommas(reach_six).c_str(), WithCommas(drop_six).c_str(), 100 * covered);

    bench::Expect(covered > 0.6,
                  StrFormat("%s: six Tier-2s explain most of the hierarchy-free drop "
                            "(measured %.0f%%; paper: nearly all)",
                            name, 100 * covered));
  }

  // Contrast: Level 3 diversified away from individual networks.
  AsId level3 = bench::IdByName(internet, "Level 3");
  AsId sprint = bench::IdByName(internet, "Sprint");
  ReachabilitySummary l3 = AnalyzeReachability(internet, level3);
  ReachabilitySummary sp = AnalyzeReachability(internet, sprint);
  double l3_drop = 1.0 - static_cast<double>(l3.hierarchy_free) / l3.tier1_free;
  double sp_drop = 1.0 - static_cast<double>(sp.hierarchy_free) / sp.tier1_free;
  bench::Expect(l3_drop < sp_drop / 2,
                StrFormat("Level 3's Tier-2 dependence is far smaller than Sprint's "
                          "(drops: %.0f%% vs %.0f%%)",
                          100 * l3_drop, 100 * sp_drop));
  bench::PrintSummary();
  return 0;
}
