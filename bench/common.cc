#include "common.h"

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>

#include "core/serialize.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/error.h"
#include "util/env.h"
#include "util/stopwatch.h"
#include "util/strings.h"

namespace flatnet::bench {
namespace {

int g_failures = 0;
int g_checks = 0;

bool EnvFlag(const char* name) {
  auto value = GetEnv(name);
  if (!value) return false;
  std::string v = AsciiLower(*value);
  return v == "1" || v == "true" || v == "on" || v == "yes";
}

std::string CacheStem(const char* era, std::uint32_t total_ases) {
  std::filesystem::create_directories("flatnet_cache");
  return StrFormat("flatnet_cache/%s-n%u", era, total_ases);
}

// Size and age of the cache's relationship file, for provenance logs.
void DescribeCacheFile(const std::string& path, std::uintmax_t* size, double* age_seconds) {
  std::error_code ec;
  *size = std::filesystem::file_size(path, ec);
  if (ec) *size = 0;
  auto mtime = std::filesystem::last_write_time(path, ec);
  if (ec) {
    *age_seconds = 0.0;
    return;
  }
  *age_seconds =
      std::chrono::duration<double>(std::filesystem::file_time_type::clock::now() - mtime)
          .count();
  if (*age_seconds < 0.0) *age_seconds = 0.0;
}

std::unique_ptr<Study> BuildStudy(bool era2020) {
  obs::TraceSpan span("bench.build_study");
  StudyOptions options;
  options.generator = era2020 ? GeneratorParams::Era2020() : GeneratorParams::Era2015();
  options.campaign.seed = options.generator.seed ^ 0xca3;
  Stopwatch sw;
  auto study = std::make_unique<Study>(options);
  obs::GetHistogram("bench.build_seconds", {1.0, 5.0, 15.0, 60.0, 300.0})
      .Observe(sw.ElapsedSeconds());
  std::fprintf(stderr, "[bench] built %s study: %zu ASes, %zu traces, %.1fs\n",
               era2020 ? "2020" : "2015", study->world().num_ases(),
               study->campaign().traces().size(), sw.ElapsedSeconds());
  return study;
}

const Internet& CachedInternet(bool era2020) {
  static std::unique_ptr<Internet> cached2020;
  static std::unique_ptr<Internet> cached2015;
  auto& slot = era2020 ? cached2020 : cached2015;
  if (slot) return *slot;

  const char* era = era2020 ? "era2020" : "era2015";
  GeneratorParams params = era2020 ? GeneratorParams::Era2020() : GeneratorParams::Era2015();
  std::string stem = CacheStem(era, params.total_ases);
  std::string rel_file = stem + ".as-rel.txt";
  if (InternetCacheExists(stem)) {
    Stopwatch sw;
    std::uintmax_t size = 0;
    double age_seconds = 0.0;
    DescribeCacheFile(rel_file, &size, &age_seconds);
    try {
      auto loaded = std::make_unique<Internet>(LoadInternet(stem));
      // A truncated file can still parse as a smaller-but-valid topology;
      // the stem encodes the expected AS count, so verify it round-trips.
      if (loaded->num_ases() != params.total_ases) {
        throw Error(StrFormat("cache %s: expected %u ASes, loaded %zu", stem.c_str(),
                              params.total_ases, loaded->num_ases()));
      }
      slot = std::move(loaded);
      obs::GetCounter("cache.hit").Increment();
      obs::Log(obs::LogLevel::kInfo, "bench", "cache.load")
          .Kv("key", stem)
          .Kv("file", rel_file)
          .Kv("bytes", static_cast<std::uint64_t>(size))
          .Kv("age_s", age_seconds)
          .Kv("result", "hit")
          .Kv("load_s", sw.ElapsedSeconds());
      return *slot;
    } catch (const Error& e) {
      // A corrupt or truncated cache entry is not fatal: drop it and
      // rebuild from the generator.
      obs::GetCounter("cache.corrupt").Increment();
      obs::Log(obs::LogLevel::kWarn, "bench", "cache.corrupt")
          .Kv("key", stem)
          .Kv("file", rel_file)
          .Kv("bytes", static_cast<std::uint64_t>(size))
          .Kv("error", e.what());
    }
  } else {
    obs::Log(obs::LogLevel::kInfo, "bench", "cache.load")
        .Kv("key", stem)
        .Kv("file", rel_file)
        .Kv("result", "miss");
  }
  obs::GetCounter("cache.miss").Increment();
  auto study = BuildStudy(era2020);
  slot = std::make_unique<Internet>(study->internet());
  // SaveInternet publishes atomically (tmp + rename); a store failure is
  // non-fatal here — the cache is an optimization — and a racing reader
  // that catches a stale rel/meta pairing falls back to the corrupt-rebuild
  // path above.
  try {
    SaveInternet(*slot, stem);
    std::uintmax_t size = 0;
    double age_seconds = 0.0;
    DescribeCacheFile(rel_file, &size, &age_seconds);
    obs::Log(obs::LogLevel::kInfo, "bench", "cache.store")
        .Kv("key", stem)
        .Kv("file", rel_file)
        .Kv("bytes", static_cast<std::uint64_t>(size));
  } catch (const Error& e) {
    obs::Log(obs::LogLevel::kWarn, "bench", "cache.store_failed")
        .Kv("key", stem)
        .Kv("error", e.what());
  }
  return *slot;
}

const Study& CachedStudy(bool era2020) {
  static std::unique_ptr<Study> s2020;
  static std::unique_ptr<Study> s2015;
  auto& slot = era2020 ? s2020 : s2015;
  if (!slot) slot = BuildStudy(era2020);
  return *slot;
}

}  // namespace

const World& World2020() {
  static std::unique_ptr<World> world;
  if (!world) {
    Stopwatch sw;
    world = std::make_unique<World>(GenerateWorld(GeneratorParams::Era2020()));
    std::fprintf(stderr, "[bench] generated 2020 world (%zu ASes) in %.1fs\n",
                 world->num_ases(), sw.ElapsedSeconds());
  }
  return *world;
}

const Internet& Internet2020() { return CachedInternet(true); }
const Internet& Internet2015() { return CachedInternet(false); }
const Study& Study2020() { return CachedStudy(true); }
const Study& Study2015() { return CachedStudy(false); }

void PrintHeader(const std::string& title, const std::string& paper_ref) {
  const ScaleConfig& scale = GetScaleConfig();
  std::printf("================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("scale: %.3g x paper topology, %.3g x paper trials (%s)\n",
              scale.topology_fraction, scale.trial_fraction, scale.source.c_str());
  std::printf("================================================================\n");
}

bool Expect(bool ok, const std::string& claim) {
  ++g_checks;
  if (!ok) {
    ++g_failures;
    obs::Log(obs::LogLevel::kWarn, "bench", "expect.fail").Kv("claim", claim);
  }
  std::printf("EXPECT [%s] %s\n", ok ? "PASS" : "FAIL", claim.c_str());
  return ok;
}

int ExpectFailures() { return g_failures; }

void PrintSummary() {
  std::printf("----------------------------------------------------------------\n");
  std::printf("expectations: %d checked, %d failed\n", g_checks, g_failures);

  if (auto path = GetEnv("FLATNET_METRICS_OUT")) {
    obs::WriteMetricsFile(*path);
    std::fprintf(stderr, "[bench] wrote metrics to %s\n", path->c_str());
  }
  if (obs::LogEnabled(obs::LogLevel::kDebug)) {
    std::fprintf(stderr, "[bench] trace span summary:\n");
    obs::SpanSummaryTable().Print(stderr);
  }
  if (g_failures > 0 && EnvFlag("FLATNET_EXPECT_STRICT")) {
    std::fprintf(stderr, "[bench] FLATNET_EXPECT_STRICT: %d EXPECT failure(s), exiting 1\n",
                 g_failures);
    std::fflush(stdout);
    std::exit(1);
  }
}

std::string NameOf(const Internet& internet, AsId id) {
  const std::string& name = internet.NameOf(id);
  if (!name.empty()) return name;
  return StrFormat("AS%u", internet.graph().AsnOf(id));
}

AsId IdByName(const Internet& internet, const std::string& name) {
  for (AsId id = 0; id < internet.num_ases(); ++id) {
    if (internet.NameOf(id) == name) return id;
  }
  throw InvalidArgument("IdByName: no AS named '" + name + "'");
}

}  // namespace flatnet::bench
