#include "common.h"

#include <cstdio>
#include <filesystem>
#include <memory>

#include "core/serialize.h"
#include "util/error.h"
#include "util/env.h"
#include "util/stopwatch.h"
#include "util/strings.h"

namespace flatnet::bench {
namespace {

int g_failures = 0;
int g_checks = 0;

std::string CacheStem(const char* era, std::uint32_t total_ases) {
  std::filesystem::create_directories("flatnet_cache");
  return StrFormat("flatnet_cache/%s-n%u", era, total_ases);
}

std::unique_ptr<Study> BuildStudy(bool era2020) {
  StudyOptions options;
  options.generator = era2020 ? GeneratorParams::Era2020() : GeneratorParams::Era2015();
  options.campaign.seed = options.generator.seed ^ 0xca3;
  Stopwatch sw;
  auto study = std::make_unique<Study>(options);
  std::fprintf(stderr, "[bench] built %s study: %zu ASes, %zu traces, %.1fs\n",
               era2020 ? "2020" : "2015", study->world().num_ases(),
               study->campaign().traces().size(), sw.ElapsedSeconds());
  return study;
}

const Internet& CachedInternet(bool era2020) {
  static std::unique_ptr<Internet> cached2020;
  static std::unique_ptr<Internet> cached2015;
  auto& slot = era2020 ? cached2020 : cached2015;
  if (slot) return *slot;

  GeneratorParams params = era2020 ? GeneratorParams::Era2020() : GeneratorParams::Era2015();
  std::string stem = CacheStem(era2020 ? "era2020" : "era2015", params.total_ases);
  if (InternetCacheExists(stem)) {
    Stopwatch sw;
    slot = std::make_unique<Internet>(LoadInternet(stem));
    std::fprintf(stderr, "[bench] loaded %s from cache (%s) in %.1fs\n",
                 era2020 ? "2020" : "2015", stem.c_str(), sw.ElapsedSeconds());
    return *slot;
  }
  auto study = BuildStudy(era2020);
  slot = std::make_unique<Internet>(study->internet());
  SaveInternet(*slot, stem);
  std::fprintf(stderr, "[bench] cached %s topology at %s\n", era2020 ? "2020" : "2015",
               stem.c_str());
  return *slot;
}

const Study& CachedStudy(bool era2020) {
  static std::unique_ptr<Study> s2020;
  static std::unique_ptr<Study> s2015;
  auto& slot = era2020 ? s2020 : s2015;
  if (!slot) slot = BuildStudy(era2020);
  return *slot;
}

}  // namespace

const World& World2020() {
  static std::unique_ptr<World> world;
  if (!world) {
    Stopwatch sw;
    world = std::make_unique<World>(GenerateWorld(GeneratorParams::Era2020()));
    std::fprintf(stderr, "[bench] generated 2020 world (%zu ASes) in %.1fs\n",
                 world->num_ases(), sw.ElapsedSeconds());
  }
  return *world;
}

const Internet& Internet2020() { return CachedInternet(true); }
const Internet& Internet2015() { return CachedInternet(false); }
const Study& Study2020() { return CachedStudy(true); }
const Study& Study2015() { return CachedStudy(false); }

void PrintHeader(const std::string& title, const std::string& paper_ref) {
  const ScaleConfig& scale = GetScaleConfig();
  std::printf("================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("scale: %.3g x paper topology, %.3g x paper trials (%s)\n",
              scale.topology_fraction, scale.trial_fraction, scale.source.c_str());
  std::printf("================================================================\n");
}

bool Expect(bool ok, const std::string& claim) {
  ++g_checks;
  if (!ok) ++g_failures;
  std::printf("EXPECT [%s] %s\n", ok ? "PASS" : "FAIL", claim.c_str());
  return ok;
}

int ExpectFailures() { return g_failures; }

void PrintSummary() {
  std::printf("----------------------------------------------------------------\n");
  std::printf("expectations: %d checked, %d failed\n", g_checks, g_failures);
}

std::string NameOf(const Internet& internet, AsId id) {
  const std::string& name = internet.NameOf(id);
  if (!name.empty()) return name;
  return StrFormat("AS%u", internet.graph().AsnOf(id));
}

AsId IdByName(const Internet& internet, const std::string& name) {
  for (AsId id = 0; id < internet.num_ases(); ++id) {
    if (internet.NameOf(id) == name) return id;
  }
  throw InvalidArgument("IdByName: no AS named '" + name + "'");
}

}  // namespace flatnet::bench
