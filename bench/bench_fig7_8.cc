// Figs 7 & 8 (erratum versions): route-leak resilience per cloud under the
// announcement/peer-locking scenario matrix, plus the random-origin
// baseline.
//
// Paper shape (per cloud: Google Fig 8; Microsoft/Amazon/IBM/Facebook
// Fig 7): announce-to-all beats the average-resilience baseline;
// announcing only to the hierarchy is WORSE than average (peer routes are
// less preferred than customer routes); T1+T2 peer locking caps even the
// worst leaks near ~20% of ASes; global locking is near-immunity.
//
// The 25-cell matrix runs through the parallel campaign engine
// (src/leaksim/) with the same per-cell seeds the serial loop used, so
// every trial is identical to the historical output — just computed on
// all cores.
#include <cstdio>
#include <numeric>
#include <vector>

#include "common.h"
#include "core/leak_scenarios.h"
#include "leaksim/engine.h"
#include "util/env.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"

using namespace flatnet;

namespace {

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return std::accumulate(v.begin(), v.end(), 0.0) / static_cast<double>(v.size());
}

}  // namespace

int main() {
  bench::PrintHeader("bench_fig7_8: leak resilience vs announcement/peer-locking scenarios",
                     "Figs 7a-7d & 8 (erratum) / §8.2");
  const Internet& internet = bench::Internet2020();
  std::size_t trials = ScaledTrials(5000, 60);
  std::printf("trials per configuration: %zu (paper: 5,000)\n\n", trials);

  const LeakScenario scenarios[] = {
      LeakScenario::kAnnounceAllLockGlobal, LeakScenario::kAnnounceAllLockT1T2,
      LeakScenario::kAnnounceAllLockT1, LeakScenario::kAnnounceAll,
      LeakScenario::kAnnounceHierarchyOnly};
  const char* cloud_names[] = {"Google", "Microsoft", "Amazon", "IBM", "Facebook"};

  BaselineResult baseline = AverageResilienceBaseline(
      internet, ScaledTrials(200, 12), ScaledTrials(200, 12), /*seed=*/0xba5e);
  double baseline_mean = Mean(baseline.fractions);

  // One cell per (cloud, scenario), seeded exactly as the serial loop was:
  // seed = 0x8000 + victim, incremented per scenario in table order.
  std::vector<leaksim::LeakCellSpec> cells;
  for (const char* name : cloud_names) {
    AsId victim = bench::IdByName(internet, name);
    std::uint64_t seed = 0x8000 + victim;
    for (LeakScenario scenario : scenarios) {
      leaksim::LeakCellSpec spec;
      spec.victim = victim;
      spec.scenario = scenario;
      spec.seed = seed++;
      spec.trials = static_cast<std::uint32_t>(trials);
      cells.push_back(spec);
    }
  }
  leaksim::LeakCampaignStats stats;
  leaksim::LeakTable campaign = leaksim::RunLeakCampaign(internet, cells, {}, &stats);
  std::printf("campaign: %zu cells, %zu trials in %.1fs\n\n", campaign.cells.size(),
              stats.trials_evaluated, stats.seconds);

  struct CloudResult {
    std::string name;
    double announce_all_mean = 0;
    double hierarchy_only_mean = 0;
    double t1t2_p99 = 0;
    double global_p99 = 0;
  };
  std::vector<CloudResult> results;

  std::size_t cell_index = 0;
  for (const char* name : cloud_names) {
    std::printf("-- %s --\n", name);
    TextTable table;
    table.AddColumn("scenario");
    table.AddColumn("mean%", TextTable::Align::kRight);
    table.AddColumn("median%", TextTable::Align::kRight);
    table.AddColumn("p90%", TextTable::Align::kRight);
    table.AddColumn("p99%", TextTable::Align::kRight);
    table.AddColumn("max%", TextTable::Align::kRight);

    CloudResult row;
    row.name = name;
    for (LeakScenario scenario : scenarios) {
      const std::vector<double>& f = campaign.cells[cell_index++].fraction_ases;
      table.AddRow({ToString(scenario), StrFormat("%5.1f", 100 * Mean(f)),
                    StrFormat("%5.1f", 100 * Quantile(f, 0.5)),
                    StrFormat("%5.1f", 100 * Quantile(f, 0.9)),
                    StrFormat("%5.1f", 100 * Quantile(f, 0.99)),
                    StrFormat("%5.1f", 100 * Quantile(f, 1.0))});
      switch (scenario) {
        case LeakScenario::kAnnounceAll: row.announce_all_mean = Mean(f); break;
        case LeakScenario::kAnnounceHierarchyOnly: row.hierarchy_only_mean = Mean(f); break;
        case LeakScenario::kAnnounceAllLockT1T2: row.t1t2_p99 = Quantile(f, 0.99); break;
        case LeakScenario::kAnnounceAllLockGlobal: row.global_p99 = Quantile(f, 0.99); break;
        default: break;
      }
    }
    table.AddRow({"average resilience (baseline)", StrFormat("%5.1f", 100 * baseline_mean), "-",
                  "-", "-", "-"});
    table.Print(stdout);
    std::printf("\n");
    results.push_back(row);
  }

  // --- Paper-shape checks -------------------------------------------------
  bool clouds_beat_baseline = true;
  bool t1t2_caps = true;
  bool global_small = true;
  const CloudResult* google = nullptr;
  int others_better_hierarchy_only = 0;
  for (const CloudResult& r : results) {
    if (r.name == "Google") google = &r;
    if (r.name != "Facebook" && r.announce_all_mean >= baseline_mean) {
      clouds_beat_baseline = false;
    }
    if (r.name != "Google" && r.name != "Facebook" &&
        r.hierarchy_only_mean <= r.announce_all_mean + 0.02) {
      ++others_better_hierarchy_only;
    }
    if (r.t1t2_p99 > 0.35) t1t2_caps = false;
    if (r.global_p99 > 0.35) global_small = false;
    if (r.name == "Google" && r.global_p99 > 0.10) global_small = false;
  }
  bench::Expect(clouds_beat_baseline,
                "announce-to-all makes every measured cloud more leak-resilient than a "
                "random origin");
  bench::Expect(google->hierarchy_only_mean > google->announce_all_mean,
                "for Google, announcing only to T1/T2/providers is WORSE than announcing "
                "to all (its rich peering is the protection, §8.2)");
  // The paper's converse note is relative: clouds that buy transit from the
  // hierarchy lose far less than Google by restricting announcements to it.
  double google_gap = google->hierarchy_only_mean - google->announce_all_mean;
  int others_smaller_gap = 0;
  for (const CloudResult& r : results) {
    if (r.name == "Google" || r.name == "Facebook") continue;
    if (r.hierarchy_only_mean - r.announce_all_mean < google_gap) ++others_smaller_gap;
  }
  bench::Expect(others_better_hierarchy_only >= 2 && others_smaller_gap >= 2,
                "clouds with more transit providers lose little or nothing by announcing "
                "only to the hierarchy (the paper's converse note)");
  bench::Expect(t1t2_caps,
                "T1+T2 peer locking caps even bad leaks near the paper's ~20% of ASes");
  bench::Expect(global_small,
                "global peer locking renders Google virtually immune and bounds everyone");
  bench::PrintSummary();
  return 0;
}
