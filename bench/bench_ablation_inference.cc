// Ablation: rebuild the paper's input datasets from scratch — collect AS
// paths at RouteViews-style monitors, infer relationships with Gao's
// algorithm, and compare analyses on the inferred topology against the
// ground-truth relationships the simulator actually used.
//
// Expected shape (the premises §4.1 rests on): c2p links are inferred with
// high accuracy and coverage; the vast majority of edge peering never
// crosses a monitor's best path and so is absent; consequently cloud
// hierarchy-free reachability computed on the monitor-inferred topology is
// a gross underestimate — the measurement gap the paper's traceroute
// augmentation exists to fix.
#include <cstdio>

#include "bgp/asrank.h"
#include "bgp/gao.h"
#include "bgp/monitors.h"
#include "common.h"
#include "core/reachability_analysis.h"
#include "util/strings.h"
#include "util/table.h"

using namespace flatnet;

int main() {
  bench::PrintHeader("bench_ablation_inference: monitor RIBs -> Gao inference -> analysis",
                     "§2.3 / §4.1 (the provenance of the CAIDA datasets)");
  const World& world = bench::World2020();
  const AsGraph& truth = world.full_graph;

  auto monitors = DefaultMonitorPlacement(truth, 40, 0x90);
  RibCollectionOptions options;
  options.origin_fraction = 0.35;
  std::printf("collecting RIBs at %zu monitors (%.0f%% of origins sampled)...\n",
              monitors.size(), 100 * options.origin_fraction);
  RibDump dump = CollectRibs(truth, monitors, options);
  std::printf("observed %zu paths\n", dump.paths.size());

  GaoResult result = InferRelationshipsGao(dump, truth);
  GaoResult asrank = InferRelationshipsAsRank(dump, truth);

  std::size_t truth_p2p = 0;
  for (const auto& e : truth.EdgeList()) truth_p2p += e.type == EdgeType::kP2P;
  std::size_t truth_p2c = truth.num_edges() - truth_p2p;
  double p2c_cov = 1.0 - static_cast<double>(result.missing_p2c) / truth_p2c;
  double p2p_cov = 1.0 - static_cast<double>(result.missing_p2p) / truth_p2p;

  TextTable table;
  table.AddColumn("metric");
  table.AddColumn("Gao (2001)", TextTable::Align::kRight);
  table.AddColumn("AS-Rank-style", TextTable::Align::kRight);
  table.AddRow({"edges observed on monitor paths", WithCommas(result.observed_edges),
                WithCommas(asrank.observed_edges)});
  table.AddRow({"relationship accuracy (observed edges)",
                StrFormat("%.1f%%", 100 * result.EdgeAccuracy()),
                StrFormat("%.1f%%", 100 * asrank.EdgeAccuracy())});
  table.AddRow({"c2p accuracy (observed c2p links)",
                StrFormat("%.1f%%", 100 * result.P2cAccuracy()),
                StrFormat("%.1f%%", 100 * asrank.P2cAccuracy())});
  table.AddRow({"p2p accuracy (observed p2p links)",
                StrFormat("%.1f%%", 100 * result.P2pAccuracy()),
                StrFormat("%.1f%%", 100 * asrank.P2pAccuracy())});
  table.AddRow({"c2p coverage", StrFormat("%.1f%%", 100 * p2c_cov),
                StrFormat("%.1f%%", 100 * p2c_cov)});
  table.AddRow({"p2p coverage", StrFormat("%.1f%%", 100 * p2p_cov),
                StrFormat("%.1f%%", 100 * p2p_cov)});
  table.Print(stdout);

  // Analyses on the inferred topology. Tier sets carry over by ASN.
  std::vector<Asn> t1_asns, t2_asns;
  for (AsId id : world.tiers.tier1) t1_asns.push_back(truth.AsnOf(id));
  for (AsId id : world.tiers.tier2) t2_asns.push_back(truth.AsnOf(id));
  TierSets inferred_tiers = MakeTierSets(result.inferred, t1_asns, t2_asns);
  Internet inferred_internet(result.inferred, inferred_tiers,
                             AsMetadata(result.inferred.num_ases()));
  Internet truth_internet(truth, world.tiers, world.metadata);

  std::printf("\ncloud hierarchy-free reachability, inferred vs truth topology:\n");
  TextTable clouds;
  clouds.AddColumn("cloud");
  clouds.AddColumn("inferred", TextTable::Align::kRight);
  clouds.AddColumn("truth", TextTable::Align::kRight);
  bool underestimates = true;
  for (const CloudInstance& cloud : world.clouds) {
    if (!cloud.archetype.is_study_cloud) continue;
    auto inferred_id = result.inferred.IdOf(cloud.archetype.asn);
    std::size_t hf_inferred =
        inferred_id ? AnalyzeReachability(inferred_internet, *inferred_id).hierarchy_free : 0;
    std::size_t hf_truth = AnalyzeReachability(truth_internet, cloud.id).hierarchy_free;
    clouds.AddRow({cloud.archetype.name, WithCommas(hf_inferred), WithCommas(hf_truth)});
    if (hf_inferred * 2 > hf_truth) underestimates = false;
  }
  clouds.Print(stdout);

  bench::Expect(result.P2cAccuracy() > 0.85,
                "Gao inference types c2p links with high accuracy (§4.1's premise)");
  bench::Expect(result.P2pAccuracy() < 0.6,
                "apex peering defeats degree-based inference — the historical gap that "
                "AS-Rank/ProbLink (§2.3) close");
  bench::Expect(asrank.P2pAccuracy() > result.P2pAccuracy() + 0.03 &&
                    asrank.EdgeAccuracy() >= result.EdgeAccuracy(),
                "the AS-Rank-style clique+default-peering refinement improves p2p "
                "classification over Gao — closing the gap fully is what needed "
                "ProbLink-class learning (§2.3)");
  bench::Expect(p2c_cov > p2p_cov + 0.2,
                "c2p links are far better covered than peering links (§4.1's premise)");
  bench::Expect(p2p_cov < 0.5,
                "most peering never crosses a monitor's best path (the ~90% blind spot)");
  bench::Expect(underestimates,
                "analyses on the monitor-inferred topology grossly underestimate cloud "
                "independence — why the paper measures from inside the clouds");
  bench::PrintSummary();
  return 0;
}
