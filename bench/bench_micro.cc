// Engine microbenchmarks (google-benchmark): the per-operation costs that
// determine how far the experiment harness scales — valley-free BFS, the
// full best-route computation, reliance accumulation, leak trials, cone
// computation, and prefix-trie lookups.
#include <benchmark/benchmark.h>

#include <filesystem>
#include <memory>

#include "asgraph/cone.h"
#include "bgp/leak.h"
#include "bgp/propagation.h"
#include "bgp/reachability.h"
#include "bgp/reliance.h"
#include "core/graph_store.h"
#include "core/internet.h"
#include "core/serialize.h"
#include "net/prefix_trie.h"
#include "serve/dispatcher.h"
#include "sweep/engine.h"
#include "topogen/generate.h"
#include "util/rng.h"
#include "util/strings.h"

namespace flatnet {
namespace {

const World& BenchWorld() {
  static const World world = [] {
    GeneratorParams params = GeneratorParams::Era2020(4000);
    return GenerateWorld(params);
  }();
  return world;
}

const Internet& BenchInternet() {
  static const Internet internet = [] {
    const World& world = BenchWorld();
    return Internet(world.full_graph, world.tiers, world.metadata);
  }();
  return internet;
}

void BM_ReachabilityBfs(benchmark::State& state) {
  const World& world = BenchWorld();
  ReachabilityEngine engine(world.full_graph);
  Rng rng(1);
  for (auto _ : state) {
    AsId origin = static_cast<AsId>(rng.UniformU64(world.num_ases()));
    benchmark::DoNotOptimize(engine.Count(origin));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReachabilityBfs);

void BM_ReachabilityHierarchyFree(benchmark::State& state) {
  const World& world = BenchWorld();
  ReachabilityEngine engine(world.full_graph);
  Bitset mask = world.tiers.HierarchyMask();
  Rng rng(2);
  for (auto _ : state) {
    AsId origin = static_cast<AsId>(rng.UniformU64(world.num_ases()));
    if (mask.Test(origin)) continue;
    benchmark::DoNotOptimize(engine.Count(origin, &mask));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReachabilityHierarchyFree);

// Reuse-path delta: the three ways to consume a BFS. Compute allocates a
// fresh bitset per origin; ComputeInto recycles one caller-owned bitset;
// Count never materializes the set at all (what the sweep workers use).
void BM_ReachabilityComputeAlloc(benchmark::State& state) {
  const World& world = BenchWorld();
  ReachabilityEngine engine(world.full_graph);
  Rng rng(6);
  for (auto _ : state) {
    AsId origin = static_cast<AsId>(rng.UniformU64(world.num_ases()));
    Bitset reached = engine.Compute(origin);
    benchmark::DoNotOptimize(reached.Count());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReachabilityComputeAlloc);

void BM_ReachabilityComputeReuse(benchmark::State& state) {
  const World& world = BenchWorld();
  ReachabilityEngine engine(world.full_graph);
  Bitset reached;
  Rng rng(6);
  for (auto _ : state) {
    AsId origin = static_cast<AsId>(rng.UniformU64(world.num_ases()));
    engine.ComputeInto(origin, nullptr, reached);
    benchmark::DoNotOptimize(reached.Count());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReachabilityComputeReuse);

void BM_ReachabilityCountOnly(benchmark::State& state) {
  const World& world = BenchWorld();
  ReachabilityEngine engine(world.full_graph);
  Rng rng(6);
  for (auto _ : state) {
    AsId origin = static_cast<AsId>(rng.UniformU64(world.num_ases()));
    benchmark::DoNotOptimize(engine.Count(origin));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReachabilityCountOnly);

// All-origins hierarchy-free sweep through the sharded engine; Arg is the
// thread count, so the 1-vs-8 ratio is the parallel speedup.
void BM_ParallelHierarchyFreeSweep(benchmark::State& state) {
  const Internet& internet = BenchInternet();
  for (auto _ : state) {
    std::vector<std::uint32_t> reach = sweep::ParallelHierarchyFreeSweep(
        internet, static_cast<std::size_t>(state.range(0)));
    benchmark::DoNotOptimize(reach.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(internet.num_ases()));
}
BENCHMARK(BM_ParallelHierarchyFreeSweep)
    ->Arg(1)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

void BM_BestRouteComputation(benchmark::State& state) {
  const World& world = BenchWorld();
  Rng rng(3);
  for (auto _ : state) {
    AnnouncementSource source{.node = static_cast<AsId>(rng.UniformU64(world.num_ases()))};
    RouteComputation computation(world.full_graph, {source});
    benchmark::DoNotOptimize(computation.ReachedCount());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BestRouteComputation);

void BM_Reliance(benchmark::State& state) {
  const World& world = BenchWorld();
  AnnouncementSource source{.node = world.Cloud("Google").id};
  RouteComputation computation(world.full_graph, {source});
  for (auto _ : state) {
    RelianceResult result = ComputeReliance(computation);
    benchmark::DoNotOptimize(result.reliance.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Reliance);

void BM_LeakTrial(benchmark::State& state) {
  const World& world = BenchWorld();
  LeakExperiment experiment(world.full_graph, world.Cloud("Google").id, LeakConfig{});
  Rng rng(4);
  for (auto _ : state) {
    AsId leaker = static_cast<AsId>(rng.UniformU64(world.num_ases()));
    benchmark::DoNotOptimize(experiment.Run(leaker));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LeakTrial);

// Fused Bitset kernels: one pass computing the count the caller actually
// wants, versus the materialize-then-Count sequences they replaced in the
// reliance and leak-overlap accumulators.
void BM_BitsetOrCountNew(benchmark::State& state) {
  const World& world = BenchWorld();
  std::size_t n = world.num_ases();
  Rng rng(6);
  Bitset acc(n);
  Bitset delta(n);
  for (std::size_t i = 0; i < n / 3; ++i) acc.Set(rng.UniformU64(n));
  for (std::size_t i = 0; i < n / 3; ++i) delta.Set(rng.UniformU64(n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(acc.OrCountNew(delta));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BitsetOrCountNew);

void BM_BitsetAndNotCount(benchmark::State& state) {
  const World& world = BenchWorld();
  std::size_t n = world.num_ases();
  Rng rng(7);
  Bitset reach(n);
  Bitset mask(n);
  for (std::size_t i = 0; i < n / 2; ++i) reach.Set(rng.UniformU64(n));
  for (std::size_t i = 0; i < n / 8; ++i) mask.Set(rng.UniformU64(n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(reach.AndNotCount(mask));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BitsetAndNotCount);

void BM_CustomerConeSizes(benchmark::State& state) {
  const World& world = BenchWorld();
  for (auto _ : state) {
    auto sizes = CustomerConeSizes(world.full_graph);
    benchmark::DoNotOptimize(sizes.data());
  }
}
BENCHMARK(BM_CustomerConeSizes);

void BM_PrefixTrieLookup(benchmark::State& state) {
  const World& world = BenchWorld();
  PrefixTrie<AsId> trie;
  for (AsId id = 0; id < world.prefixes.size(); ++id) {
    for (const Ipv4Prefix& prefix : world.prefixes[id]) trie.Insert(prefix, id);
  }
  Rng rng(5);
  for (auto _ : state) {
    Ipv4Address addr(static_cast<std::uint32_t>(rng.NextU64()));
    benchmark::DoNotOptimize(trie.Lookup(addr));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PrefixTrieLookup);

// Serve-path dispatch: full parse → cache → execute → encode round trip
// through the dispatcher (no sockets). The Timed variant carries
// `"timing":true`; its delta over the plain case bounds the tracing-on
// cost, and the plain case — run against a dispatcher with tracing off —
// is the number the <2% tracing-off overhead budget is judged on. Origins
// rotate through a small pool so most iterations hit the result cache,
// matching the steady state the overhead question is about.
serve::Dispatcher& BenchDispatcher() {
  static serve::Dispatcher* dispatcher = [] {
    serve::DispatcherOptions options;
    options.threads = 2;
    options.slow_query_ms = 0;  // tracing off: ignore FLATNET_SLOW_QUERY_MS
    return new serve::Dispatcher(BenchInternet(), options);
  }();
  return *dispatcher;
}

void BM_ServeDispatchReach(benchmark::State& state) {
  serve::Dispatcher& dispatcher = BenchDispatcher();
  const Internet& internet = BenchInternet();
  Rng rng(7);
  std::vector<std::string> requests;
  for (std::size_t i = 0; i < 16; ++i) {
    Asn origin = internet.graph().AsnOf(
        static_cast<AsId>(rng.UniformU64(internet.num_ases())));
    requests.push_back(StrFormat(
        "{\"op\":\"reach\",\"origin\":%u,\"mode\":\"hierarchy_free\",\"id\":1}", origin));
  }
  std::size_t at = 0;
  for (auto _ : state) {
    std::string response = dispatcher.HandleSync(requests[at]);
    at = (at + 1) % requests.size();
    benchmark::DoNotOptimize(response.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeDispatchReach);

void BM_ServeDispatchReachTimed(benchmark::State& state) {
  serve::Dispatcher& dispatcher = BenchDispatcher();
  const Internet& internet = BenchInternet();
  Rng rng(7);  // same seed: same origin pool as the untimed case
  std::vector<std::string> requests;
  for (std::size_t i = 0; i < 16; ++i) {
    Asn origin = internet.graph().AsnOf(
        static_cast<AsId>(rng.UniformU64(internet.num_ases())));
    requests.push_back(
        StrFormat("{\"op\":\"reach\",\"origin\":%u,\"mode\":\"hierarchy_free\",\"id\":1,"
                  "\"timing\":true}",
                  origin));
  }
  std::size_t at = 0;
  for (auto _ : state) {
    std::string response = dispatcher.HandleSync(requests[at]);
    at = (at + 1) % requests.size();
    benchmark::DoNotOptimize(response.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeDispatchReachTimed);

void BM_GenerateWorld(benchmark::State& state) {
  for (auto _ : state) {
    GeneratorParams params = GeneratorParams::Era2020(static_cast<std::uint32_t>(state.range(0)));
    World world = GenerateWorld(params);
    benchmark::DoNotOptimize(world.num_ases());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GenerateWorld)->Arg(1000)->Arg(4000)->Complexity(benchmark::oN);

// Binary store scaling: serialize, then serve straight from the mapping.
// Compare BM_GraphStoreLoad against BM_TextLoad at the same AS count — the
// gap is what ROADMAP item 1 buys every tool that opens a topology.
void BM_GraphStoreSave(benchmark::State& state) {
  auto params = GeneratorParams::Era2020(static_cast<std::uint32_t>(state.range(0)));
  World world = GenerateWorld(params);
  Internet internet(std::move(world.full_graph), std::move(world.tiers),
                    std::move(world.metadata));
  std::string path = (std::filesystem::temp_directory_path() /
                      StrFormat("bench_store_%ld.graph", state.range(0)))
                         .string();
  for (auto _ : state) {
    SaveInternetBinary(internet, path);
  }
  state.SetComplexityN(state.range(0));
  std::filesystem::remove(path);
}
BENCHMARK(BM_GraphStoreSave)->Arg(1000)->Arg(4000)->Arg(16000)->Complexity(benchmark::oN);

void BM_GraphStoreLoad(benchmark::State& state) {
  auto params = GeneratorParams::Era2020(static_cast<std::uint32_t>(state.range(0)));
  World world = GenerateWorld(params);
  Internet internet(std::move(world.full_graph), std::move(world.tiers),
                    std::move(world.metadata));
  std::string path = (std::filesystem::temp_directory_path() /
                      StrFormat("bench_load_%ld.graph", state.range(0)))
                         .string();
  SaveInternetBinary(internet, path);
  for (auto _ : state) {
    Internet loaded = LoadInternetBinary(path);
    benchmark::DoNotOptimize(loaded.num_ases());
  }
  state.SetComplexityN(state.range(0));
  std::filesystem::remove(path);
}
BENCHMARK(BM_GraphStoreLoad)->Arg(1000)->Arg(4000)->Arg(16000)->Complexity(benchmark::oN);

void BM_TextLoad(benchmark::State& state) {
  auto params = GeneratorParams::Era2020(static_cast<std::uint32_t>(state.range(0)));
  World world = GenerateWorld(params);
  Internet internet(std::move(world.full_graph), std::move(world.tiers),
                    std::move(world.metadata));
  std::string stem = (std::filesystem::temp_directory_path() /
                      StrFormat("bench_text_%ld", state.range(0)))
                         .string();
  SaveInternet(internet, stem);
  for (auto _ : state) {
    Internet loaded = LoadInternet(stem);
    benchmark::DoNotOptimize(loaded.num_ases());
  }
  state.SetComplexityN(state.range(0));
  std::filesystem::remove(stem + ".as-rel.txt");
  std::filesystem::remove(stem + ".meta.tsv");
}
BENCHMARK(BM_TextLoad)->Arg(1000)->Arg(4000)->Arg(16000)->Complexity(benchmark::oN);

}  // namespace
}  // namespace flatnet

BENCHMARK_MAIN();
