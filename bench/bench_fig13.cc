// Fig 13 / Appendix E: AS-path lengths from each cloud to the rest of the
// Internet in 2015 and 2020 — as a share of all ASes, of eyeball ASes, and
// weighted by user population.
//
// Paper shape: direct-connectivity shares stay roughly stable over time
// (peering growth trails the Internet's expansion); Google serves the
// largest share of users over direct (1-hop) paths — several times
// Amazon's and IBM's share.
#include <cstdio>
#include <map>
#include <string>

#include "common.h"
#include "core/reachability_analysis.h"
#include "util/strings.h"
#include "util/table.h"

using namespace flatnet;

namespace {

struct Shares {
  double one = 0, two = 0, three = 0;
};

Shares ToShares(const PathLengthBins& bins) {
  double total = bins.Total();
  if (total <= 0) return {};
  return {bins.one_hop / total, bins.two_hops / total, bins.three_plus / total};
}

}  // namespace

int main() {
  bench::PrintHeader("bench_fig13: path lengths from the clouds, 2015 vs 2020",
                     "Fig 13 / Appendix E");

  TextTable table;
  table.AddColumn("cloud");
  table.AddColumn("era");
  table.AddColumn("weighting");
  table.AddColumn("1 hop", TextTable::Align::kRight);
  table.AddColumn("2 hops", TextTable::Align::kRight);
  table.AddColumn("3+ hops", TextTable::Align::kRight);

  std::map<std::string, Shares> user_shares;  // "cloud/era" -> population-weighted
  std::map<std::string, Shares> as_shares;

  for (auto [era, internet] : {std::pair<const char*, const Internet*>{"2015",
                                                                       &bench::Internet2015()},
                               {"2020", &bench::Internet2020()}}) {
    std::vector<double> users(internet->num_ases());
    std::vector<double> eyeball(internet->num_ases());
    for (AsId id = 0; id < internet->num_ases(); ++id) {
      users[id] = internet->metadata().Get(id).users;
      eyeball[id] = users[id] > 0 ? 1.0 : 0.0;
    }
    for (const char* cloud : {"Google", "Microsoft", "Amazon", "IBM"}) {
      AsId id = bench::IdByName(*internet, cloud);
      Shares all = ToShares(PathLengths(*internet, id));
      Shares eye = ToShares(PathLengths(*internet, id, &eyeball));
      Shares pop = ToShares(PathLengths(*internet, id, &users));
      auto row = [&](const char* weighting, const Shares& s) {
        table.AddRow({cloud, era, weighting, StrFormat("%.1f%%", 100 * s.one),
                      StrFormat("%.1f%%", 100 * s.two), StrFormat("%.1f%%", 100 * s.three)});
      };
      row("all ASes", all);
      row("eyeball ASes", eye);
      row("population", pop);
      user_shares[std::string(cloud) + "/" + era] = pop;
      as_shares[std::string(cloud) + "/" + era] = all;
    }
    table.AddSeparator();
  }
  table.Print(stdout);

  bench::Expect(user_shares["Google/2020"].one > 2.0 * user_shares["Amazon/2020"].one,
                "Google reaches several times more of the user population over direct paths "
                "than Amazon (paper: 61.6% vs 17.8%)");
  bench::Expect(user_shares["Google/2020"].one > user_shares["IBM/2020"].one,
                "Google's population-weighted direct share also beats IBM's");
  double google_drift =
      std::abs(as_shares["Google/2020"].one - as_shares["Google/2015"].one);
  bench::Expect(google_drift < 0.15,
                StrFormat("Google's direct share of all ASes is roughly stable across eras "
                          "(drift %.1f points)",
                          100 * google_drift));
  bench::PrintSummary();
  return 0;
}
