// Appendix D: the active geolocation process — PeeringDB facility
// candidates, rDNS hints, and RTT confirmation from nearby vantage points.
//
// The paper's method is deliberately conservative: it only answers when a
// VP within ~100 km (1 ms RTT) confirms a candidate. Expected shape: high
// precision, partial coverage, and rDNS hints improving both by pruning
// the candidate list.
#include <cstdio>

#include "common.h"
#include "pops/geolocate.h"
#include "pops/pop_map.h"
#include "util/strings.h"
#include "util/table.h"

using namespace flatnet;

int main() {
  bench::PrintHeader("bench_appendix_d: active geolocation of router interfaces", "Appendix D");
  const World& world = bench::World2020();
  AddressPlan plan(world, 0xd0d0);
  PingMesh mesh(plan, /*icmp_filter_fraction=*/0.12, 0xd1);
  auto deployments = BuildDeployments(world);
  RdnsDatabase rdns(world, deployments, 0xd2, &plan);

  Geolocator with_hints(world, plan, mesh, &rdns, 0xd3);
  Geolocator without_hints(world, plan, mesh, nullptr, 0xd3);
  std::printf("vantage points deployed: %zu\n\n", with_hints.vantage_point_count());

  constexpr std::size_t kSample = 3000;
  GeolocationScore hinted = ScoreGeolocation(world, plan, with_hints, kSample, 0xd4);
  GeolocationScore blind = ScoreGeolocation(world, plan, without_hints, kSample, 0xd4);

  TextTable table;
  table.AddColumn("pipeline");
  table.AddColumn("interfaces", TextTable::Align::kRight);
  table.AddColumn("located", TextTable::Align::kRight);
  table.AddColumn("coverage", TextTable::Align::kRight);
  table.AddColumn("precision", TextTable::Align::kRight);
  for (auto [label, score] :
       {std::pair<const char*, const GeolocationScore*>{"facilities + rDNS hints", &hinted},
        {"facilities only", &blind}}) {
    table.AddRow({label, std::to_string(score->attempted), std::to_string(score->answered),
                  StrFormat("%.1f%%", 100 * score->Coverage()),
                  StrFormat("%.1f%%", 100 * score->Precision())});
  }
  table.Print(stdout);

  bench::Expect(hinted.Precision() > 0.9,
                StrFormat("RTT-confirmed answers are nearly always correct (measured %.1f%%)",
                          100 * hinted.Precision()));
  bench::Expect(hinted.Coverage() < 0.95,
                "the conservative method leaves a coverage gap (unfiltered ICMP, probe-less "
                "cities, off-list facilities)");
  bench::Expect(hinted.Precision() >= blind.Precision() - 0.02,
                "rDNS hints do not hurt precision while pruning candidates");
  bench::PrintSummary();
  return 0;
}
