// Shared scaffolding for the experiment binaries.
//
// Every bench prints a provenance header (scale, topology size), the
// paper-style table or series it reproduces, and `EXPECT` lines stating the
// paper's qualitative claims with a PASS/FAIL check — so bench_output.txt
// is self-auditing.
#ifndef FLATNET_BENCH_COMMON_H_
#define FLATNET_BENCH_COMMON_H_

#include <string>

#include "core/internet.h"
#include "core/study.h"

namespace flatnet::bench {

// Builds (or loads from the on-disk cache under ./flatnet_cache/) the
// analysis topology for an era. The cache key includes the AS count so
// changing FLATNET_SCALE rebuilds.
const Internet& Internet2020();
const Internet& Internet2015();

// Full study objects (always built in-process; used by the measurement
// benches that need traces and ground truth).
const Study& Study2020();
const Study& Study2015();

// Ground-truth world only (no measurement campaign) — used by the PoP /
// geography benches, which need presence footprints but no traces.
const World& World2020();

// Prints the standard bench header.
void PrintHeader(const std::string& title, const std::string& paper_ref);

// Prints "EXPECT [PASS|FAIL] <claim>" and records the outcome; returns ok.
bool Expect(bool ok, const std::string& claim);

// Number of EXPECT failures so far (by default the bench exit code stays
// 0 — an absolute mismatch against the paper is a reportable result, not a
// crash — but the summary line makes failures visible; set
// FLATNET_EXPECT_STRICT=1 to make PrintSummary exit nonzero instead, for
// CI gating).
int ExpectFailures();

// Prints the closing summary line. When FLATNET_METRICS_OUT is set, also
// writes the obs metrics snapshot (counters, histograms, trace spans)
// there as JSON. Under FLATNET_EXPECT_STRICT=1 the process exits with
// status 1 if any EXPECT failed.
void PrintSummary();

// Display name for an AS (archetype name, or "AS<asn>").
std::string NameOf(const Internet& internet, AsId id);

// Finds the AsId of a study cloud / named archetype by metadata name;
// throws if absent.
AsId IdByName(const Internet& internet, const std::string& name);

}  // namespace flatnet::bench

#endif  // FLATNET_BENCH_COMMON_H_
