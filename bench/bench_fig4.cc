// Fig 4: which kinds of networks stay unreachable when the clouds and the
// big transits bypass the Tier-1/Tier-2 ISPs.
//
// Paper shape: access networks dominate the unreachable set (~57-63%),
// then transit (~13-23%) and enterprise (~12-19%), content ~6%; Google,
// IBM, and Microsoft peer their way to user (access) networks, while
// Amazon's breakdown resembles the transit providers'.
#include <cstdio>
#include <vector>

#include "common.h"
#include "core/reachability_analysis.h"
#include "util/strings.h"
#include "util/table.h"

using namespace flatnet;

int main() {
  bench::PrintHeader("bench_fig4: unreachable-AS types under hierarchy-free constraints",
                     "Fig 4 / §6.7");
  const Internet& internet = bench::Internet2020();

  const char* networks[] = {"Level 3", "Hurricane Electric", "Google", "Microsoft", "IBM",
                            "Cogent", "Zayo", "Telia", "GTT", "NTT", "TELIN PT", "Amazon"};

  TextTable table;
  table.AddColumn("network");
  table.AddColumn("unreachable", TextTable::Align::kRight);
  table.AddColumn("content%", TextTable::Align::kRight);
  table.AddColumn("transit%", TextTable::Align::kRight);
  table.AddColumn("access%", TextTable::Align::kRight);
  table.AddColumn("enterprise%", TextTable::Align::kRight);

  bool access_dominates = true;
  double google_access = 0, amazon_transit = 0, google_transit = 0;
  for (const char* name : networks) {
    AsId id = bench::IdByName(internet, name);
    Bitset unreachable = HierarchyFreeUnreachable(internet, id);
    // Excluded hierarchy nodes are "unreachable" by construction; Fig 4
    // reports the composition of everything the origin cannot serve.
    TypeBreakdown breakdown = BreakdownByType(internet, unreachable);
    double total = static_cast<double>(breakdown.Total());
    auto pct = [&](std::size_t v) { return StrFormat("%.1f", 100.0 * v / total); };
    table.AddRow({name, WithCommas(breakdown.Total()), pct(breakdown.content),
                  pct(breakdown.transit), pct(breakdown.access), pct(breakdown.enterprise)});
    double access_share = breakdown.access / total;
    if (access_share < 0.40) access_dominates = false;
    if (std::string(name) == "Google") {
      google_access = access_share;
      google_transit = breakdown.transit / total;
    }
    if (std::string(name) == "Amazon") amazon_transit = breakdown.transit / total;
  }
  table.Print(stdout);

  bench::Expect(access_dominates,
                "access networks are the dominant unreachable type for every provider");
  bench::Expect(amazon_transit > google_transit,
                "Amazon leaves more transit networks unreached than Google (peering strategy "
                "difference, §6.7)");
  bench::Expect(google_access > 0.40,
                "Google's unreachable set is access-heavy (it peers towards users)");
  bench::PrintSummary();
  return 0;
}
