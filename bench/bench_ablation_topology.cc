// Ablation: what would the paper have concluded from BGP feeds alone?
//
// §4.1's motivation, quantified: hierarchy-free reachability of the clouds
// computed on (a) the BGP-visible graph, (b) the traceroute-augmented
// merged graph the paper uses, and (c) the (normally unobservable) ground
// truth. The BGP-only view misses ~90% of the open clouds' peering and
// should grossly underestimate their independence; the merged view should
// approach truth from below (§5's ~20% FNR).
#include <cstdio>
#include <vector>

#include "common.h"
#include "core/reachability_analysis.h"
#include "util/strings.h"
#include "util/table.h"

using namespace flatnet;

int main() {
  bench::PrintHeader("bench_ablation_topology: BGP-only vs merged vs ground truth",
                     "§4.1 motivation / §5 validation");
  const Study& study = bench::Study2020();
  const World& world = study.world();
  Internet bgp_only(world.bgp_graph, world.tiers, world.metadata);
  std::size_t denom = world.num_ases() - 1;

  TextTable table;
  table.AddColumn("cloud");
  table.AddColumn("BGP-only HF", TextTable::Align::kRight);
  table.AddColumn("merged HF", TextTable::Align::kRight);
  table.AddColumn("truth HF", TextTable::Align::kRight);
  table.AddColumn("BGP-only %", TextTable::Align::kRight);
  table.AddColumn("merged %", TextTable::Align::kRight);
  table.AddColumn("truth %", TextTable::Align::kRight);

  bool bgp_underestimates = true;  // for the open/selective clouds BGP barely sees
  bool ibm_modest = true;          // IBM: CAIDA already sees most of its peers
  bool merged_within_band = true;
  for (const CloudInstance& cloud : world.clouds) {
    if (!cloud.archetype.is_study_cloud) continue;
    std::size_t hf_bgp = AnalyzeReachability(bgp_only, cloud.id).hierarchy_free;
    std::size_t hf_merged = AnalyzeReachability(study.internet(), cloud.id).hierarchy_free;
    std::size_t hf_truth = AnalyzeReachability(study.truth(), cloud.id).hierarchy_free;
    table.AddRow({cloud.archetype.name, WithCommas(hf_bgp), WithCommas(hf_merged),
                  WithCommas(hf_truth), StrFormat("%.1f%%", 100.0 * hf_bgp / denom),
                  StrFormat("%.1f%%", 100.0 * hf_merged / denom),
                  StrFormat("%.1f%%", 100.0 * hf_truth / denom)});
    if (cloud.archetype.vm_locations == 0) continue;
    if (cloud.archetype.name == "IBM") {
      // §4.1: CAIDA alone already identifies 81% of IBM's peers, so the
      // augmentation gain is real but modest.
      if (hf_merged <= hf_bgp) ibm_modest = false;
    } else if (hf_bgp + hf_bgp / 10 >= hf_merged) {
      bgp_underestimates = false;
    }
    if (hf_merged < hf_truth / 2 || hf_merged > hf_truth * 115 / 100) {
      merged_within_band = false;
    }
  }
  table.Print(stdout);

  bench::Expect(bgp_underestimates,
                "BGP feeds alone materially underestimate the open/selective clouds' "
                "hierarchy-free reachability (the reason §4.1 augments with traceroutes)");
  bench::Expect(ibm_modest,
                "IBM, whose peering is mostly BGP-visible, still gains from augmentation "
                "(paper: 19% of its peers missed)");
  bench::Expect(merged_within_band,
                "the merged topology recovers most of the true reachability (missing only "
                "the §5 false-negative tail)");
  bench::PrintSummary();
  return 0;
}
