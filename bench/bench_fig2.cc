// Fig 2: provider-free / Tier-1-free / hierarchy-free reachability for the
// four clouds and every Tier-1 and Tier-2 ISP, sorted by hierarchy-free
// reachability.
//
// Paper shape: Tier-1s hit the provider-free maximum; clouds are among the
// least affected by each added constraint and keep >= 76% of the Internet
// hierarchy-free; Level 3 and Hurricane Electric top the chart; Sprint and
// Deutsche Telekom collapse when the Tier-2s are removed.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common.h"
#include "core/reachability_analysis.h"
#include "util/error.h"
#include "util/strings.h"
#include "util/table.h"

using namespace flatnet;

int main() {
  bench::PrintHeader("bench_fig2: reachability under nested hierarchy exclusions", "Fig 2");
  const Internet& internet = bench::Internet2020();
  std::size_t n = internet.num_ases();

  struct Row {
    std::string name;
    std::string kind;
    ReachabilitySummary reach;
  };
  std::vector<Row> rows;
  for (const char* cloud : {"Google", "Microsoft", "Amazon", "IBM"}) {
    AsId id = bench::IdByName(internet, cloud);
    rows.push_back({cloud, "cloud", AnalyzeReachability(internet, id)});
  }
  for (AsId id : internet.tiers().tier1) {
    rows.push_back({bench::NameOf(internet, id), "tier1", AnalyzeReachability(internet, id)});
  }
  for (AsId id : internet.tiers().tier2) {
    rows.push_back({bench::NameOf(internet, id), "tier2", AnalyzeReachability(internet, id)});
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.reach.hierarchy_free > b.reach.hierarchy_free;
  });

  TextTable table;
  table.AddColumn("#", TextTable::Align::kRight);
  table.AddColumn("network");
  table.AddColumn("kind");
  table.AddColumn("I\\Po", TextTable::Align::kRight);
  table.AddColumn("I\\Po\\T1", TextTable::Align::kRight);
  table.AddColumn("I\\Po\\T1\\T2", TextTable::Align::kRight);
  table.AddColumn("HF %", TextTable::Align::kRight);
  int rank = 0;
  for (const Row& row : rows) {
    table.AddRow({std::to_string(++rank), row.name, row.kind,
                  WithCommas(row.reach.provider_free), WithCommas(row.reach.tier1_free),
                  WithCommas(row.reach.hierarchy_free),
                  StrFormat("%.1f%%", 100.0 * row.reach.hierarchy_free / (n - 1))});
  }
  table.Print(stdout);

  // --- Paper-shape checks -------------------------------------------------
  auto find = [&](const std::string& name) -> const Row& {
    for (const Row& row : rows) {
      if (row.name == name) return row;
    }
    throw Error("row not found: " + name);
  };

  std::size_t max_pf = 0;
  for (const Row& row : rows) max_pf = std::max(max_pf, row.reach.provider_free);
  bool tier1_at_max = true;
  for (const Row& row : rows) {
    if (row.kind == "tier1" && row.reach.provider_free + n / 100 < max_pf) {
      tier1_at_max = false;
    }
  }
  bench::Expect(tier1_at_max,
                "Tier-1 ISPs sit at (or within 1% of) the provider-free maximum");

  bool clouds_above_76 = true;
  for (const char* cloud : {"Google", "Microsoft", "Amazon", "IBM"}) {
    double frac = static_cast<double>(find(cloud).reach.hierarchy_free) / (n - 1);
    if (frac < 0.72) clouds_above_76 = false;
  }
  bench::Expect(clouds_above_76,
                "every cloud reaches >~76% of ASes without the Tier-1/Tier-2 ISPs");

  // Clouds among the top of the chart (paper: 3 of the top 5 with L3/HE).
  int clouds_in_top8 = 0;
  for (int i = 0; i < 8 && i < static_cast<int>(rows.size()); ++i) {
    if (rows[i].kind == "cloud") ++clouds_in_top8;
  }
  bench::Expect(clouds_in_top8 >= 3, "at least three clouds rank in the top 8");

  bench::Expect(find("Level 3").reach.hierarchy_free > find("Sprint").reach.hierarchy_free * 1.5 &&
                    find("Level 3").reach.hierarchy_free >
                        find("Deutsche Telekom").reach.hierarchy_free * 1.5,
                "Level 3 vastly out-reaches the hierarchy-dependent Tier-1s (Sprint, DT)");

  const Row& he = find("Hurricane Electric");
  bench::Expect(static_cast<double>(he.reach.hierarchy_free) / (n - 1) > 0.75,
                "Hurricane Electric retains top-tier hierarchy-free reachability");

  double sprint_drop = 1.0 - static_cast<double>(find("Sprint").reach.hierarchy_free) /
                                 static_cast<double>(find("Sprint").reach.tier1_free);
  bench::Expect(sprint_drop > 0.25,
                StrFormat("Sprint loses a large share of reachability when Tier-2s are "
                          "removed (measured -%.0f%%; paper: 55,385 -> 32,568)",
                          100 * sprint_drop));
  bench::PrintSummary();
  return 0;
}
