// Table 3: PoP counts, router/interface hostname counts, and the fraction
// of PoPs confirmable through rDNS, per network — exercising the whole
// rDNS pipeline (generation, manual regex extraction, hoiho-style
// convention learning over MIDAR-style alias groups).
//
// Paper shape: coverage varies wildly (NTT 100%, Microsoft 45.3%, Amazon
// 0% — it publishes no router rDNS at all); overall ~73% of PoPs are
// confirmable; hoiho agrees with the hand-written regexes wherever it has
// enough alias groups.
#include <cstdio>
#include <set>

#include "common.h"
#include "pops/pop_map.h"
#include "pops/rdns.h"
#include "util/strings.h"
#include "util/table.h"

using namespace flatnet;

int main() {
  bench::PrintHeader("bench_table3: PoPs, router hostnames, and rDNS confirmation", "Table 3");
  const World& world = bench::World2020();
  auto deployments = BuildDeployments(world);
  RdnsDatabase rdns(world, deployments, /*seed=*/0x12d5);

  TextTable table;
  table.AddColumn("network");
  table.AddColumn("PoPs", TextTable::Align::kRight);
  table.AddColumn("hostnames", TextTable::Align::kRight);
  table.AddColumn("% rDNS", TextTable::Align::kRight);
  table.AddColumn("hoiho", TextTable::Align::kRight);

  double total_pops = 0, total_confirmed = 0;
  double amazon_pct = -1, ntt_pct = -1, microsoft_pct = -1;
  int hoiho_learned = 0, hoiho_eligible = 0, hoiho_agrees = 0, hoiho_checked = 0;

  for (const PopDeployment& deployment : deployments) {
    auto entries = rdns.EntriesOf(deployment.id);
    std::size_t confirmed = rdns.ConfirmedPopCount(deployment.id);
    double pct =
        deployment.cities.empty()
            ? 0.0
            : 100.0 * static_cast<double>(confirmed) / static_cast<double>(deployment.cities.size());
    total_pops += static_cast<double>(deployment.cities.size());
    total_confirmed += static_cast<double>(confirmed);

    // hoiho-style learning: one sample hostname per alias group.
    std::string hoiho_status = "-";
    if (!entries.empty()) {
      ++hoiho_eligible;
      std::vector<RdnsEntry> owned;
      owned.reserve(entries.size());
      for (const RdnsEntry* e : entries) owned.push_back(*e);
      auto groups = GroupAliases(owned);
      std::vector<std::string> samples;
      for (const auto& [hostname, addrs] : groups) samples.push_back(hostname);
      auto regex = InferNamingRegex(samples);
      if (regex) {
        ++hoiho_learned;
        hoiho_status = "learned";
        // Cross-validate against the manual extractor on a sample.
        int agree = 0, checked = 0;
        for (std::size_t i = 0; i < samples.size() && checked < 50; i += 7, ++checked) {
          auto manual = ExtractLocationManual(samples[i]);
          auto learned = ExtractWithRegex(*regex, samples[i]);
          if (manual == learned) ++agree;
        }
        hoiho_checked += checked;
        hoiho_agrees += agree;
      } else {
        hoiho_status = "too few groups";
      }
    }

    table.AddRow({deployment.name, std::to_string(deployment.cities.size()),
                  std::to_string(entries.size()), StrFormat("%.1f", pct), hoiho_status});
    if (deployment.name == "Amazon") amazon_pct = pct;
    if (deployment.name == "NTT") ntt_pct = pct;
    if (deployment.name == "Microsoft") microsoft_pct = pct;
  }
  table.Print(stdout);
  double overall = 100.0 * total_confirmed / total_pops;
  std::printf("\noverall rDNS-confirmed PoPs: %.1f%% (paper: 73%%)\n", overall);

  bench::Expect(amazon_pct == 0.0, "Amazon has no rDNS-confirmed PoPs (publishes no PTRs)");
  bench::Expect(ntt_pct > 90.0, "NTT's PoPs are (nearly) fully confirmed via rDNS");
  bench::Expect(microsoft_pct > 25.0 && microsoft_pct < 70.0,
                "Microsoft's rDNS coverage is partial (paper: 45.3%)");
  bench::Expect(overall > 50.0 && overall < 90.0,
                StrFormat("overall confirmation lands near the paper's 73%% (measured %.0f%%)",
                          overall));
  bench::Expect(hoiho_learned >= hoiho_eligible / 2,
                "hoiho-style learning recovers most networks' naming conventions");
  bench::Expect(hoiho_checked > 0 && hoiho_agrees == hoiho_checked,
                "learned regexes agree with the hand-written extractor (paper: identical "
                "results)");
  bench::PrintSummary();
  return 0;
}
