// Tests for the parallel leak-campaign engine and its columnar result
// store (src/leaksim/): serial equivalence, thread-count determinism,
// store round-trip and corruption handling, checkpoint/resume, and
// trial accounting.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "asgraph/as_graph.h"
#include "core/leak_scenarios.h"
#include "leaksim/engine.h"
#include "leaksim/store.h"
#include "sweep/fingerprint.h"
#include "topogen/generate.h"
#include "util/error.h"

namespace flatnet {
namespace {

using leaksim::CampaignFingerprint;
using leaksim::LeakCampaignOptions;
using leaksim::LeakCampaignStats;
using leaksim::LeakCellSpec;
using leaksim::LeakStore;
using leaksim::LeakTable;
using leaksim::RunLeakCampaign;

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
}

class LeaksimTest : public ::testing::Test {
 protected:
  static const World& world() {
    static const World w = [] {
      GeneratorParams params = GeneratorParams::Era2015(500);
      params.seed = 77;
      return GenerateWorld(params);
    }();
    return w;
  }
  static const Internet& internet() {
    static const Internet net(world().full_graph, world().tiers, world().metadata);
    return net;
  }
  // A second, different topology for fingerprint-mismatch tests.
  static const Internet& other_internet() {
    static const Internet net = [] {
      GeneratorParams params = GeneratorParams::Era2015(400);
      params.seed = 78;
      World w = GenerateWorld(params);
      return Internet(w.full_graph, w.tiers, w.metadata);
    }();
    return net;
  }

  // The Fig 7/8-style cell matrix the tests run: two victims, a few
  // scenarios, deterministic seeds.
  static std::vector<LeakCellSpec> Cells(std::uint32_t trials) {
    std::vector<LeakCellSpec> cells;
    AsId victims[] = {world().tiers.tier1[0], world().tiers.tier2[0]};
    LeakScenario scenarios[] = {LeakScenario::kAnnounceAll,
                                LeakScenario::kAnnounceAllLockT1T2,
                                LeakScenario::kAnnounceHierarchyOnly};
    std::uint64_t seed = 0x1eaf;
    for (AsId victim : victims) {
      for (LeakScenario scenario : scenarios) {
        LeakCellSpec spec;
        spec.victim = victim;
        spec.scenario = scenario;
        spec.seed = seed++;
        spec.trials = trials;
        cells.push_back(spec);
      }
    }
    return cells;
  }
};

TEST_F(LeaksimTest, CampaignMatchesSerialScenarioTrialForTrial) {
  std::vector<LeakCellSpec> cells = Cells(25);
  LeakTable table = RunLeakCampaign(internet(), cells);
  ASSERT_EQ(table.cells.size(), cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    LeakTrialSeries serial =
        RunLeakScenario(internet(), cells[i].victim, cells[i].scenario, cells[i].trials,
                        cells[i].seed, nullptr, cells[i].lock_mode);
    EXPECT_EQ(table.cells[i].fraction_ases, serial.fraction_ases_detoured) << "cell " << i;
    EXPECT_EQ(table.cells[i].attempts, serial.attempts) << "cell " << i;
  }
}

TEST_F(LeaksimTest, UserWeightedCampaignMatchesSerial) {
  std::vector<double> users(internet().num_ases());
  for (AsId id = 0; id < internet().num_ases(); ++id) {
    users[id] = internet().metadata().Get(id).users;
  }
  LeakCellSpec spec;
  spec.victim = world().tiers.tier2[0];
  spec.seed = 9;
  spec.trials = 20;
  LeakCampaignOptions options;
  options.users = &users;
  LeakTable table = RunLeakCampaign(internet(), {spec}, options);
  ASSERT_TRUE(table.has_users);

  LeakTrialSeries serial =
      RunLeakScenario(internet(), spec.victim, spec.scenario, spec.trials, spec.seed, &users);
  EXPECT_EQ(table.cells[0].fraction_ases, serial.fraction_ases_detoured);
  EXPECT_EQ(table.cells[0].fraction_users, serial.fraction_users_detoured);
}

TEST_F(LeaksimTest, ThreadAndChunkCountDoNotChangeStoreBytes) {
  std::vector<LeakCellSpec> cells = Cells(30);
  std::string reference_path = TempPath("flatnet_leaksim_t1.leak");
  std::string variant_path = TempPath("flatnet_leaksim_t8.leak");

  LeakCampaignOptions reference;
  reference.threads = 1;
  reference.chunk_trials = 64;
  leaksim::WriteLeakStore(reference_path, RunLeakCampaign(internet(), cells, reference));

  // More threads than cores and a chunk size that straddles cell
  // boundaries must not change a single byte.
  LeakCampaignOptions variant;
  variant.threads = 8;
  variant.chunk_trials = 7;
  leaksim::WriteLeakStore(variant_path, RunLeakCampaign(internet(), cells, variant));

  EXPECT_EQ(ReadFileBytes(variant_path), ReadFileBytes(reference_path));
  std::filesystem::remove(reference_path);
  std::filesystem::remove(variant_path);
}

TEST_F(LeaksimTest, StoreRoundTripsAndValidates) {
  std::vector<LeakCellSpec> cells = Cells(12);
  LeakTable table = RunLeakCampaign(internet(), cells);
  std::string path = TempPath("flatnet_leaksim_roundtrip.leak");
  leaksim::WriteLeakStore(path, table);

  LeakStore store = LeakStore::Load(path);
  EXPECT_NO_THROW(store.ValidateAgainst(internet()));
  EXPECT_EQ(store.fingerprint(), sweep::TopologyFingerprint(internet()));
  EXPECT_FALSE(store.has_users());
  ASSERT_EQ(store.num_cells(), cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(store.cell(i).spec, cells[i]) << "cell " << i;
    EXPECT_EQ(store.cell(i).fraction_ases, table.cells[i].fraction_ases) << "cell " << i;
    EXPECT_EQ(store.cell(i).attempts, table.cells[i].attempts) << "cell " << i;
  }

  std::size_t found = store.FindCell(cells[1].victim, cells[1].scenario, cells[1].lock_mode,
                                     cells[1].model);
  EXPECT_EQ(found, 1u);
  EXPECT_EQ(store.FindCell(cells[0].victim, LeakScenario::kAnnounceAllLockGlobal,
                           PeerLockMode::kFull, LeakModel::kReannounce),
            LeakStore::npos);

  EXPECT_THROW(store.ValidateAgainst(other_internet()), Error);
  std::filesystem::remove(path);
}

TEST_F(LeaksimTest, LoadRejectsCorruptionNamingTheFile) {
  LeakTable table = RunLeakCampaign(internet(), Cells(8));
  std::string path = TempPath("flatnet_leaksim_corrupt.leak");
  leaksim::WriteLeakStore(path, table);
  std::string pristine = ReadFileBytes(path);

  auto write_bytes = [&](std::string bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  };
  auto expect_load_error = [&](const char* what) {
    try {
      LeakStore::Load(path);
      ADD_FAILURE() << "expected Load to throw for " << what;
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
          << what << ": error must name the file: " << e.what();
    }
  };

  // Truncated mid-body.
  write_bytes(pristine.substr(0, pristine.size() - 20));
  expect_load_error("truncation");

  // One flipped byte in the fraction data fails the CRC.
  {
    std::string bytes = pristine;
    bytes[bytes.size() - 20] = static_cast<char>(bytes[bytes.size() - 20] ^ 0x5a);
    write_bytes(bytes);
    expect_load_error("flipped body byte");
  }

  // Clobbered end magic (torn footer).
  {
    std::string bytes = pristine;
    bytes.replace(bytes.size() - 8, 8, "XXXXXXXX");
    write_bytes(bytes);
    expect_load_error("bad end magic");
  }

  // Wrong leading magic: not a leak store at all.
  {
    std::string bytes = pristine;
    bytes[0] = 'X';
    write_bytes(bytes);
    expect_load_error("bad magic");
  }

  // An out-of-range scenario enum in the first cell descriptor (byte 36)
  // is rejected by the range check before the CRC is even consulted.
  {
    std::string bytes = pristine;
    bytes[36] = 99;
    write_bytes(bytes);
    expect_load_error("invalid scenario enum");
  }
  std::filesystem::remove(path);
}

TEST_F(LeaksimTest, ResumedRunProducesByteIdenticalStore) {
  std::vector<LeakCellSpec> cells = Cells(30);
  std::string reference_store = TempPath("flatnet_leaksim_ref.leak");
  std::string resumed_store = TempPath("flatnet_leaksim_resumed.leak");
  std::string journal = TempPath("flatnet_leaksim_resumed.journal");
  std::filesystem::remove(journal);

  // Reference: one uninterrupted run, no journal.
  LeakCampaignOptions reference;
  reference.threads = 2;
  reference.chunk_trials = 16;
  leaksim::FinalizeLeakStore(reference_store, RunLeakCampaign(internet(), cells, reference));

  // Interrupted: stop after 3 chunks (the journal keeps them), then resume
  // at a different thread count.
  LeakCampaignOptions partial = reference;
  partial.threads = 1;
  partial.journal_path = journal;
  partial.max_chunks = 3;
  LeakCampaignStats partial_stats;
  RunLeakCampaign(internet(), cells, partial, &partial_stats);
  EXPECT_FALSE(partial_stats.complete);
  EXPECT_EQ(partial_stats.chunks_computed, 3u);
  ASSERT_TRUE(std::filesystem::exists(journal));

  LeakCampaignOptions resume = reference;
  resume.threads = 4;
  resume.journal_path = journal;
  resume.resume = true;
  LeakCampaignStats resume_stats;
  LeakTable table = RunLeakCampaign(internet(), cells, resume, &resume_stats);
  EXPECT_TRUE(resume_stats.complete);
  EXPECT_EQ(resume_stats.chunks_resumed, 3u);
  EXPECT_EQ(resume_stats.chunks_computed, resume_stats.chunks_total - 3u);
  leaksim::FinalizeLeakStore(resumed_store, table, journal);

  EXPECT_EQ(ReadFileBytes(resumed_store), ReadFileBytes(reference_store));
  // Finalize removed the now-redundant journal.
  EXPECT_FALSE(std::filesystem::exists(journal));
  std::filesystem::remove(reference_store);
  std::filesystem::remove(resumed_store);
}

TEST_F(LeaksimTest, ResumeRejectsAChangedCampaign) {
  std::vector<LeakCellSpec> cells = Cells(20);
  std::string journal = TempPath("flatnet_leaksim_mismatch.journal");
  std::filesystem::remove(journal);

  LeakCampaignOptions partial;
  partial.threads = 1;
  partial.chunk_trials = 16;
  partial.journal_path = journal;
  partial.max_chunks = 2;
  RunLeakCampaign(internet(), cells, partial, nullptr);
  ASSERT_TRUE(std::filesystem::exists(journal));

  // The campaign fingerprint covers every cell field, so resuming with a
  // reseeded cell list must fail instead of mixing incompatible trials.
  std::vector<LeakCellSpec> reseeded = cells;
  reseeded[0].seed ^= 1;
  LeakCampaignOptions resume = partial;
  resume.max_chunks = 0;
  resume.resume = true;
  EXPECT_THROW(RunLeakCampaign(internet(), reseeded, resume), Error);
  std::filesystem::remove(journal);
}

TEST_F(LeaksimTest, CampaignFingerprintCoversCellsAndTopology) {
  std::vector<LeakCellSpec> cells = Cells(10);
  std::uint64_t base = CampaignFingerprint(internet(), cells, false);
  EXPECT_EQ(base, CampaignFingerprint(internet(), cells, false));
  EXPECT_NE(base, CampaignFingerprint(internet(), cells, true));
  EXPECT_NE(base, CampaignFingerprint(other_internet(), cells, false));
  std::vector<LeakCellSpec> reseeded = cells;
  reseeded.back().seed ^= 1;
  EXPECT_NE(base, CampaignFingerprint(internet(), reseeded, false));
}

TEST_F(LeaksimTest, UnderCollectionIsAccountedNotSilent) {
  // Two components: the victim (ASN 1) has a single provider (ASN 2), and
  // a 40-AS chain is unreachable from both. Only AS 2 can ever leak, so
  // uniform draws reject ~97% of the time and the attempt budget
  // (trials * 20 + 100) runs out well before 60 trials validate.
  AsGraphBuilder builder;
  builder.AddEdge(2, 1, EdgeType::kP2C);
  for (Asn asn = 100; asn < 140; ++asn) builder.AddEdge(asn, asn + 1, EdgeType::kP2C);
  AsGraph graph = std::move(builder).Build();
  std::size_t n = graph.num_ases();
  TierSets tiers;
  tiers.tier1_mask = Bitset(n);
  tiers.tier2_mask = Bitset(n);
  Internet tiny(std::move(graph), tiers, AsMetadata(n));

  AsId victim = *tiny.graph().IdOf(1);
  LeakCellSpec spec;
  spec.victim = victim;
  spec.seed = 5;
  spec.trials = 60;

  LeakTrialSeries serial =
      RunLeakScenario(tiny, victim, spec.scenario, spec.trials, spec.seed);
  EXPECT_EQ(serial.trials_requested, 60u);
  EXPECT_TRUE(serial.UnderCollected());
  EXPECT_LT(serial.collected(), serial.trials_requested);
  EXPECT_EQ(serial.attempts, 60u * 20u + 100u);  // full budget consumed

  LeakTable table = RunLeakCampaign(tiny, {spec});
  EXPECT_TRUE(table.cells[0].UnderCollected());
  EXPECT_EQ(table.cells[0].fraction_ases, serial.fraction_ases_detoured);
  EXPECT_EQ(table.cells[0].attempts, serial.attempts);

  // Under-collected cells round-trip through the store with their
  // accounting intact.
  std::string path = TempPath("flatnet_leaksim_under.leak");
  leaksim::WriteLeakStore(path, table);
  LeakStore store = LeakStore::Load(path);
  EXPECT_TRUE(store.cell(0).UnderCollected());
  EXPECT_EQ(store.cell(0).spec.trials, 60u);
  EXPECT_EQ(store.cell(0).attempts, serial.attempts);
  std::filesystem::remove(path);
}

TEST_F(LeaksimTest, ZeroTrialCampaignIsEmptyNotAnError) {
  LeakCellSpec spec;
  spec.victim = world().tiers.tier1[0];
  spec.seed = 3;
  spec.trials = 0;
  LeakCampaignStats stats;
  LeakTable table = RunLeakCampaign(internet(), {spec}, {}, &stats);
  EXPECT_TRUE(stats.complete);
  EXPECT_EQ(stats.trials_evaluated, 0u);
  EXPECT_EQ(table.cells[0].collected(), 0u);
  EXPECT_FALSE(table.cells[0].UnderCollected());
}

TEST_F(LeaksimTest, CampaignRejectsBadInputs) {
  LeakCellSpec spec;
  spec.victim = 0;
  spec.trials = 1;
  LeakCampaignOptions zero_chunk;
  zero_chunk.chunk_trials = 0;
  EXPECT_THROW(RunLeakCampaign(internet(), {spec}, zero_chunk), InvalidArgument);

  LeakCellSpec bad_victim;
  bad_victim.victim = static_cast<AsId>(internet().num_ases());
  bad_victim.trials = 1;
  EXPECT_THROW(RunLeakCampaign(internet(), {bad_victim}), InvalidArgument);

  std::vector<double> short_users(3);
  LeakCampaignOptions bad_users;
  bad_users.users = &short_users;
  EXPECT_THROW(RunLeakCampaign(internet(), {spec}, bad_users), InvalidArgument);
}

}  // namespace
}  // namespace flatnet
