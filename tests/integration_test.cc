// End-to-end integration: the full §4-§8 pipeline on a small world, plus
// cross-module invariants that only hold when every layer cooperates.
#include <gtest/gtest.h>

#include "core/reachability_analysis.h"
#include "core/leak_scenarios.h"
#include "core/study.h"
#include "measure/validation.h"
#include "pops/pop_map.h"
#include "pops/rdns.h"

namespace flatnet {
namespace {

class StudyIntegrationTest : public ::testing::Test {
 protected:
  static const Study& study() {
    static const Study s = [] {
      StudyOptions options;
      options.generator = GeneratorParams::Era2020(1500);
      options.generator.seed = 1234;
      options.campaign.seed = 99;
      return Study(options);
    }();
    return s;
  }
};

TEST_F(StudyIntegrationTest, MergedGraphSharesIdSpace) {
  const Internet& merged = study().internet();
  const World& w = study().world();
  ASSERT_EQ(merged.num_ases(), w.num_ases());
  for (AsId id = 0; id < w.num_ases(); id += 131) {
    EXPECT_EQ(merged.graph().AsnOf(id), w.full_graph.AsnOf(id));
  }
}

TEST_F(StudyIntegrationTest, MergedGraphBetweenBgpAndTruth) {
  const World& w = study().world();
  const AsGraph& merged = study().internet().graph();
  for (const CloudInstance& cloud : w.clouds) {
    if (cloud.archetype.vm_locations == 0) continue;
    std::size_t bgp = w.bgp_graph.PeerCount(cloud.id);
    std::size_t merged_peers = merged.PeerCount(cloud.id);
    EXPECT_GT(merged_peers, bgp) << cloud.archetype.name;
  }
  // Non-cloud edges are untouched: merged edge count == bgp edges + added
  // cloud p2p links.
  EXPECT_GE(merged.num_edges(), w.bgp_graph.num_edges());
}

TEST_F(StudyIntegrationTest, MergeNeverOverridesExistingLinkTypes) {
  const World& w = study().world();
  const AsGraph& merged = study().internet().graph();
  for (const AsGraph::Edge& e : w.bgp_graph.EdgeList()) {
    auto a = *merged.IdOf(e.a);
    auto b = *merged.IdOf(e.b);
    auto rel = merged.RelationshipBetween(a, b);
    ASSERT_TRUE(rel.has_value());
    EXPECT_EQ(*rel == Relationship::kPeer, e.type == EdgeType::kP2P);
  }
}

TEST_F(StudyIntegrationTest, InferredNeighborsMostlyReal) {
  const World& w = study().world();
  for (std::uint32_t c = 0; c < w.clouds.size(); ++c) {
    const CloudInstance& cloud = w.clouds[c];
    if (cloud.archetype.vm_locations == 0) continue;
    auto truth = TrueNeighborAsns(w.full_graph, cloud.id);
    ValidationStats stats = ValidateNeighbors(study().inferred_neighbors()[c], truth);
    EXPECT_LT(stats.Fdr(), 0.35) << cloud.archetype.name;
    EXPECT_GT(stats.true_positives, 5u) << cloud.archetype.name;
  }
}

TEST_F(StudyIntegrationTest, MeasuredReachabilityTracksTruth) {
  for (const CloudInstance& cloud : study().world().clouds) {
    if (!cloud.archetype.is_study_cloud || cloud.archetype.vm_locations == 0) continue;
    ReachabilitySummary merged = AnalyzeReachability(study().internet(), cloud.id);
    ReachabilitySummary truth = AnalyzeReachability(study().truth(), cloud.id);
    // The measured topology misses some peers (FNR) but must land in the
    // truth's neighborhood.
    EXPECT_GT(merged.hierarchy_free, truth.hierarchy_free / 2) << cloud.archetype.name;
    EXPECT_LT(merged.hierarchy_free, truth.hierarchy_free * 12 / 10 + 50)
        << cloud.archetype.name;
  }
}

TEST_F(StudyIntegrationTest, CloudsBeatMostNetworksHierarchyFree) {
  // The paper's headline on the measured topology: clouds rank above the
  // overwhelming majority of ASes.
  std::vector<std::uint32_t> sweep = HierarchyFreeSweep(study().internet());
  AsId google = study().world().Cloud("Google").id;
  std::size_t above = 0;
  for (AsId id = 0; id < sweep.size(); ++id) {
    if (sweep[id] > sweep[google]) ++above;
  }
  EXPECT_LT(above, sweep.size() / 20);
}

TEST_F(StudyIntegrationTest, LeakResilienceBeatsBaselineOnMergedTopology) {
  const Internet& internet = study().internet();
  AsId google = study().world().Cloud("Google").id;
  LeakTrialSeries series =
      RunLeakScenario(internet, google, LeakScenario::kAnnounceAll, 30, 5);
  BaselineResult baseline = AverageResilienceBaseline(internet, 5, 6, 6);
  double mean_google = 0, mean_base = 0;
  for (double f : series.fraction_ases_detoured) mean_google += f;
  mean_google /= static_cast<double>(series.fraction_ases_detoured.size());
  for (double f : baseline.fractions) mean_base += f;
  mean_base /= static_cast<double>(baseline.fractions.size());
  EXPECT_LT(mean_google, mean_base);
}

TEST_F(StudyIntegrationTest, PopsAndRdnsRunOnStudyWorld) {
  auto deployments = BuildDeployments(study().world());
  EXPECT_GE(deployments.size(), 10u);
  RdnsDatabase rdns(study().world(), deployments, 17);
  EXPECT_GT(rdns.entries().size(), 1000u);
  // Extraction works on the generated namespace.
  auto city = ExtractLocationManual(rdns.entries().front().hostname);
  EXPECT_TRUE(city.has_value());
}

}  // namespace
}  // namespace flatnet
