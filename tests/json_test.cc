#include <gtest/gtest.h>

#include "util/error.h"
#include "util/json.h"

namespace flatnet {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(Json::Parse("null").is_null());
  EXPECT_EQ(Json::Parse("true").AsBool(), true);
  EXPECT_EQ(Json::Parse("false").AsBool(), false);
  EXPECT_DOUBLE_EQ(Json::Parse("42").AsNumber(), 42.0);
  EXPECT_DOUBLE_EQ(Json::Parse("-3.5e2").AsNumber(), -350.0);
  EXPECT_EQ(Json::Parse("\"hi\"").AsString(), "hi");
}

TEST(Json, ParsesContainers) {
  Json value = Json::Parse(R"({"a": [1, 2, {"b": null}], "c": "x"})");
  EXPECT_EQ(value.type(), Json::Type::kObject);
  EXPECT_EQ(value.At("a").size(), 3u);
  EXPECT_DOUBLE_EQ(value.At("a")[1].AsNumber(), 2.0);
  EXPECT_TRUE(value.At("a")[2].At("b").is_null());
  EXPECT_EQ(value.At("c").AsString(), "x");
  EXPECT_TRUE(value.Contains("a"));
  EXPECT_FALSE(value.Contains("z"));
  EXPECT_TRUE(value.Get("z").is_null());
  EXPECT_THROW(value.At("z"), InvalidArgument);
}

TEST(Json, StringEscapes) {
  Json value = Json::Parse(R"("line\n\ttab \"quoted\" back\\slash é")");
  EXPECT_EQ(value.AsString(), "line\n\ttab \"quoted\" back\\slash \xc3\xa9");
  // Round trip through Dump.
  Json again = Json::Parse(value.Dump());
  EXPECT_EQ(again, value);
}

TEST(Json, RejectsMalformed) {
  EXPECT_THROW(Json::Parse(""), ParseError);
  EXPECT_THROW(Json::Parse("{"), ParseError);
  EXPECT_THROW(Json::Parse("[1,]"), ParseError);
  EXPECT_THROW(Json::Parse("{\"a\" 1}"), ParseError);
  EXPECT_THROW(Json::Parse("tru"), ParseError);
  EXPECT_THROW(Json::Parse("\"unterminated"), ParseError);
  EXPECT_THROW(Json::Parse("1 2"), ParseError);  // trailing garbage
  EXPECT_THROW(Json::Parse("\"\\q\""), ParseError);
  EXPECT_THROW(Json::Parse("\"\\u12\""), ParseError);
}

TEST(Json, BuildAndDump) {
  Json root = Json::MakeObject();
  root["asn"] = 15169;
  root["name"] = "Google";
  Json list = Json::MakeArray();
  list.Append(1);
  list.Append("two");
  list.Append(Json::MakeObject());
  root["list"] = std::move(list);
  std::string compact = root.Dump();
  EXPECT_EQ(compact, R"({"asn":15169,"list":[1,"two",{}],"name":"Google"})");
  // Pretty output parses back to the same value.
  EXPECT_EQ(Json::Parse(root.Dump(2)), root);
}

TEST(Json, NumbersRoundTripAsIntegers) {
  const Json value = Json::Parse("[4294967295, 0, 123456789012]");
  EXPECT_EQ(value[0].AsU64(), 4294967295ull);
  EXPECT_EQ(value[2].AsU64(), 123456789012ull);
  EXPECT_EQ(value.Dump(), "[4294967295,0,123456789012]");
  EXPECT_THROW(Json::Parse("-1").AsU64(), InvalidArgument);
  EXPECT_THROW(Json::Parse("1.5").AsU64(), InvalidArgument);
}

TEST(Json, TypeMismatchesThrow) {
  const Json value = Json::Parse("[1]");
  EXPECT_THROW(value.AsObject(), InvalidArgument);
  EXPECT_THROW(value.AsString(), InvalidArgument);
  EXPECT_THROW(value[5], InvalidArgument);
  Json scalar(3.0);
  EXPECT_THROW(scalar.Append(1), InvalidArgument);
  EXPECT_THROW(scalar.size(), InvalidArgument);
}

TEST(Json, DeepNesting) {
  std::string text;
  for (int i = 0; i < 50; ++i) text += "[";
  text += "7";
  for (int i = 0; i < 50; ++i) text += "]";
  Json value = Json::Parse(text);
  const Json* cursor = &value;
  for (int i = 0; i < 50; ++i) cursor = &(*cursor)[0];
  EXPECT_DOUBLE_EQ(cursor->AsNumber(), 7.0);
}

}  // namespace
}  // namespace flatnet
