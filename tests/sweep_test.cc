// Tests for the sharded sweep engine, the columnar result store, and
// checkpoint/resume (src/sweep/).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bgp/reachability.h"
#include "core/reachability_analysis.h"
#include "sweep/engine.h"
#include "sweep/fingerprint.h"
#include "sweep/journal.h"
#include "sweep/store.h"
#include "topogen/generate.h"
#include "util/error.h"

namespace flatnet {
namespace {

using sweep::ColumnBit;
using sweep::RunSweep;
using sweep::SweepColumn;
using sweep::SweepJournal;
using sweep::SweepMeta;
using sweep::SweepOptions;
using sweep::SweepRunStats;
using sweep::SweepStore;
using sweep::SweepTable;
using sweep::TopologyFingerprint;

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
}

class SweepTest : public ::testing::Test {
 protected:
  static const World& world() {
    static const World w = [] {
      GeneratorParams params = GeneratorParams::Era2015(500);
      params.seed = 77;
      return GenerateWorld(params);
    }();
    return w;
  }
  static const Internet& internet() {
    static const Internet net(world().full_graph, world().tiers, world().metadata);
    return net;
  }
  // A second, different topology for fingerprint-mismatch tests.
  static const Internet& other_internet() {
    static const Internet net = [] {
      GeneratorParams params = GeneratorParams::Era2015(400);
      params.seed = 78;
      World w = GenerateWorld(params);
      return Internet(w.full_graph, w.tiers, w.metadata);
    }();
    return net;
  }
};

TEST_F(SweepTest, FingerprintIsStableAndDistinguishesTopologies) {
  EXPECT_EQ(TopologyFingerprint(internet()), TopologyFingerprint(internet()));
  EXPECT_NE(TopologyFingerprint(internet()), TopologyFingerprint(other_internet()));
}

TEST_F(SweepTest, ParallelSweepMatchesSerialElementForElement) {
  std::vector<std::uint32_t> serial = HierarchyFreeSweep(internet());
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    std::vector<std::uint32_t> parallel =
        sweep::ParallelHierarchyFreeSweep(internet(), threads);
    EXPECT_EQ(parallel, serial) << "threads=" << threads;
  }
}

TEST_F(SweepTest, SweepColumnsMatchPerOriginAnalysis) {
  SweepOptions options;
  options.threads = 4;
  options.chunk_size = 64;
  SweepRunStats stats;
  SweepTable table = RunSweep(internet(), options, &stats);
  ASSERT_TRUE(stats.complete);
  EXPECT_EQ(stats.chunks_resumed, 0u);
  EXPECT_EQ(stats.origins_computed, internet().num_ases());

  // Spot-check a spread of origins against the independent single-origin
  // analysis path.
  for (AsId origin = 0; origin < internet().num_ases(); origin += 37) {
    ReachabilitySummary expected = AnalyzeReachability(internet(), origin);
    EXPECT_EQ(table.Column(SweepColumn::kProviderFree)[origin], expected.provider_free)
        << "origin " << origin;
    EXPECT_EQ(table.Column(SweepColumn::kTier1Free)[origin], expected.tier1_free)
        << "origin " << origin;
    EXPECT_EQ(table.Column(SweepColumn::kHierarchyFree)[origin], expected.hierarchy_free)
        << "origin " << origin;
  }
}

TEST_F(SweepTest, EngineReusePathsAgreeWithAllocatingCompute) {
  ReachabilityEngine engine(internet().graph());
  Bitset scratch;
  Bitset excluded = internet().tiers().tier1_mask;
  for (AsId origin = 0; origin < internet().num_ases(); origin += 53) {
    const Bitset* mask = excluded.Test(origin) ? nullptr : &excluded;
    Bitset fresh = engine.Compute(origin, mask);
    engine.ComputeInto(origin, mask, scratch);
    EXPECT_EQ(scratch, fresh) << "origin " << origin;
    std::size_t count = engine.Count(origin, mask);
    EXPECT_EQ(count, fresh.Count() - 1) << "origin " << origin;
  }
}

TEST_F(SweepTest, RunSweepRejectsBadOptions) {
  SweepOptions zero_chunk;
  zero_chunk.chunk_size = 0;
  EXPECT_THROW(RunSweep(internet(), zero_chunk), InvalidArgument);
  SweepOptions no_columns;
  no_columns.columns = 0;
  EXPECT_THROW(RunSweep(internet(), no_columns), InvalidArgument);
  SweepOptions bad_bit;
  bad_bit.columns = 1u << 7;
  EXPECT_THROW(RunSweep(internet(), bad_bit), InvalidArgument);
}

TEST_F(SweepTest, StoreRoundTripsAndValidates) {
  SweepOptions options;
  options.threads = 2;
  SweepTable table = RunSweep(internet(), options);
  std::string path = TempPath("flatnet_sweep_roundtrip.sweep");
  sweep::WriteSweepStore(path, table);

  SweepStore store = SweepStore::Load(path);
  EXPECT_NO_THROW(store.ValidateAgainst(internet()));
  EXPECT_EQ(store.num_origins(), internet().num_ases());
  EXPECT_EQ(store.fingerprint(), TopologyFingerprint(internet()));
  EXPECT_TRUE(store.HasColumn(SweepColumn::kHierarchyFree));
  EXPECT_FALSE(store.HasColumn(SweepColumn::kPathOneHop));
  for (AsId origin = 0; origin < internet().num_ases(); origin += 41) {
    EXPECT_EQ(store.Value(SweepColumn::kHierarchyFree, origin),
              table.Column(SweepColumn::kHierarchyFree)[origin]);
  }
  // Asking for an absent column is loud, not zero-filled.
  EXPECT_THROW(store.table().Column(SweepColumn::kPathTwoHops), InvalidArgument);

  EXPECT_THROW(store.ValidateAgainst(other_internet()), Error);
  std::filesystem::remove(path);
}

TEST_F(SweepTest, LoadRejectsCorruptionNamingTheFile) {
  SweepOptions options;
  options.columns = ColumnBit(SweepColumn::kHierarchyFree);
  SweepTable table = RunSweep(internet(), options);
  std::string path = TempPath("flatnet_sweep_corrupt.sweep");
  sweep::WriteSweepStore(path, table);
  std::string pristine = ReadFileBytes(path);

  auto write_bytes = [&](std::string bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  };
  auto expect_load_error = [&](const char* what) {
    try {
      SweepStore::Load(path);
      ADD_FAILURE() << "expected Load to throw for " << what;
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
          << what << ": error must name the file: " << e.what();
    }
  };

  // Truncated mid-body.
  write_bytes(pristine.substr(0, pristine.size() - 20));
  expect_load_error("truncation");

  // One flipped byte in the column data fails the CRC.
  {
    std::string bytes = pristine;
    bytes[40] = static_cast<char>(bytes[40] ^ 0x5a);
    write_bytes(bytes);
    expect_load_error("flipped body byte");
  }

  // Clobbered end magic (torn footer).
  {
    std::string bytes = pristine;
    bytes.replace(bytes.size() - 8, 8, "XXXXXXXX");
    write_bytes(bytes);
    expect_load_error("bad end magic");
  }

  // Wrong leading magic: not a sweep store at all.
  {
    std::string bytes = pristine;
    bytes[0] = 'X';
    write_bytes(bytes);
    expect_load_error("bad magic");
  }
  std::filesystem::remove(path);
}

TEST_F(SweepTest, ResumedRunProducesByteIdenticalStore) {
  std::string reference_store = TempPath("flatnet_sweep_ref.sweep");
  std::string resumed_store = TempPath("flatnet_sweep_resumed.sweep");
  std::string journal = TempPath("flatnet_sweep_resumed.journal");
  std::filesystem::remove(journal);

  // Reference: one uninterrupted run, no journal.
  SweepOptions reference;
  reference.threads = 2;
  reference.chunk_size = 32;
  sweep::FinalizeSweepStore(reference_store, RunSweep(internet(), reference));

  // Interrupted: stop after 3 chunks (the journal keeps them), then resume.
  SweepOptions partial = reference;
  partial.threads = 1;
  partial.journal_path = journal;
  partial.max_chunks = 3;
  SweepRunStats partial_stats;
  RunSweep(internet(), partial, &partial_stats);
  EXPECT_FALSE(partial_stats.complete);
  EXPECT_EQ(partial_stats.chunks_computed, 3u);
  ASSERT_TRUE(std::filesystem::exists(journal));

  SweepOptions resume = reference;
  resume.journal_path = journal;
  resume.resume = true;
  SweepRunStats resume_stats;
  SweepTable table = RunSweep(internet(), resume, &resume_stats);
  EXPECT_TRUE(resume_stats.complete);
  EXPECT_EQ(resume_stats.chunks_resumed, 3u);
  EXPECT_EQ(resume_stats.chunks_computed, resume_stats.chunks_total - 3u);
  sweep::FinalizeSweepStore(resumed_store, table, journal);

  EXPECT_EQ(ReadFileBytes(resumed_store), ReadFileBytes(reference_store));
  // Finalize removed the now-redundant journal.
  EXPECT_FALSE(std::filesystem::exists(journal));
  std::filesystem::remove(reference_store);
  std::filesystem::remove(resumed_store);
}

TEST_F(SweepTest, ResumeSurvivesATornJournalTail) {
  std::string reference_store = TempPath("flatnet_sweep_torn_ref.sweep");
  std::string resumed_store = TempPath("flatnet_sweep_torn.sweep");
  std::string journal = TempPath("flatnet_sweep_torn.journal");
  std::filesystem::remove(journal);

  SweepOptions base;
  base.threads = 2;
  base.chunk_size = 32;
  sweep::FinalizeSweepStore(reference_store, RunSweep(internet(), base));

  SweepOptions partial = base;
  partial.threads = 1;
  partial.journal_path = journal;
  partial.max_chunks = 2;
  RunSweep(internet(), partial);

  // A kill mid-append leaves a half-written record; recovery must drop it
  // and keep the intact prefix.
  {
    std::ofstream out(journal, std::ios::binary | std::ios::app);
    const char garbage[] = "CHK1\x03\x00\x00\x00torn-tail";
    out.write(garbage, sizeof(garbage) - 1);
  }

  SweepOptions resume = base;
  resume.journal_path = journal;
  resume.resume = true;
  SweepRunStats stats;
  SweepTable table = RunSweep(internet(), resume, &stats);
  EXPECT_TRUE(stats.complete);
  EXPECT_EQ(stats.chunks_resumed, 2u);
  sweep::FinalizeSweepStore(resumed_store, table, journal);

  EXPECT_EQ(ReadFileBytes(resumed_store), ReadFileBytes(reference_store));
  std::filesystem::remove(reference_store);
  std::filesystem::remove(resumed_store);
}

TEST_F(SweepTest, JournalRejectsMismatchedMeta) {
  std::string path = TempPath("flatnet_sweep_meta.journal");
  SweepMeta meta;
  meta.fingerprint = 0xabcdef;
  meta.num_origins = 500;
  meta.columns = ColumnBit(SweepColumn::kHierarchyFree);
  meta.chunk_size = 32;
  {
    SweepJournal created = SweepJournal::Create(path, meta);
    std::uint32_t values[32] = {1, 2, 3};
    created.AppendChunk(0, values, 32);
  }

  std::vector<std::pair<std::uint32_t, std::vector<std::uint32_t>>> chunks;
  SweepJournal recovered = SweepJournal::Recover(path, meta, &chunks);
  recovered.Close();
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].first, 0u);
  EXPECT_EQ(chunks[0].second.size(), 32u);

  // Any keyed field changing (here: chunk size, then fingerprint) must
  // refuse the journal instead of resuming against the wrong inputs.
  SweepMeta wrong_chunk = meta;
  wrong_chunk.chunk_size = 64;
  chunks.clear();
  EXPECT_THROW(SweepJournal::Recover(path, wrong_chunk, &chunks), Error);
  SweepMeta wrong_topology = meta;
  wrong_topology.fingerprint = 0x1234;
  chunks.clear();
  EXPECT_THROW(SweepJournal::Recover(path, wrong_topology, &chunks), Error);
  std::filesystem::remove(path);
}

TEST_F(SweepTest, PathColumnsBinByRouteLength) {
  SweepOptions options;
  options.threads = 2;
  options.columns = sweep::kPathColumns;
  SweepTable table = RunSweep(internet(), options);
  // Unweighted PathLengths accumulates integral counts into doubles; the
  // sweep stores the same counts as u32.
  for (AsId origin : {AsId{0}, AsId{123}, AsId{499}}) {
    PathLengthBins expected = PathLengths(internet(), origin);
    EXPECT_EQ(table.Column(SweepColumn::kPathOneHop)[origin],
              static_cast<std::uint32_t>(expected.one_hop));
    EXPECT_EQ(table.Column(SweepColumn::kPathTwoHops)[origin],
              static_cast<std::uint32_t>(expected.two_hops));
    EXPECT_EQ(table.Column(SweepColumn::kPathThreePlus)[origin],
              static_cast<std::uint32_t>(expected.three_plus));
  }
}

}  // namespace
}  // namespace flatnet
