#include <gtest/gtest.h>

#include <set>

#include "measure/addressing.h"
#include "measure/inference.h"
#include "measure/ip2as.h"
#include "measure/trace_io.h"
#include "measure/traceroute.h"
#include "measure/validation.h"
#include "topogen/generate.h"
#include "util/error.h"

namespace flatnet {
namespace {

class MeasureTest : public ::testing::Test {
 protected:
  static const World& world() {
    static const World w = [] {
      GeneratorParams params = GeneratorParams::Era2020(1500);
      params.seed = 77;
      return GenerateWorld(params);
    }();
    return w;
  }
  static const AddressPlan& plan() {
    static const AddressPlan p(world(), 123);
    return p;
  }
};

TEST_F(MeasureTest, BorderAddressesExistForEveryLink) {
  const World& w = world();
  for (AsId a = 0; a < w.num_ases(); ++a) {
    for (const Neighbor& nb : w.full_graph.NeighborsOf(a)) {
      Ipv4Address forward = plan().BorderAddress(a, nb.id);
      Ipv4Address reverse = plan().BorderAddress(nb.id, a);
      EXPECT_NE(forward.value(), 0u);
      EXPECT_NE(reverse.value(), 0u);
      // Ground truth knows the operator of each border interface.
      EXPECT_EQ(plan().OperatorOf(forward), nb.id);
      EXPECT_EQ(plan().OperatorOf(reverse), a);
      break;  // one neighbor per AS keeps this test fast
    }
  }
  EXPECT_THROW(plan().BorderAddress(0, 0), InvalidArgument);
}

TEST_F(MeasureTest, InternalAndDestinationAddressesResolveToOwner) {
  const World& w = world();
  for (AsId id = 0; id < w.num_ases(); id += 97) {
    EXPECT_EQ(plan().OperatorOf(plan().InternalAddress(id, 3)), id);
    EXPECT_EQ(plan().OperatorOf(plan().DestinationAddress(id)), id);
  }
}

TEST_F(MeasureTest, CymruResolvesAnnouncedSpaceOnly) {
  const World& w = world();
  CymruResolver cymru(w);
  // Announced prefix: resolves to the origin ASN.
  EXPECT_EQ(cymru.Resolve(plan().DestinationAddress(50)), w.full_graph.AsnOf(50));
  // Unannounced IXP LAN: unresolvable unless the LAN is in BGP, in which
  // case it (mis)resolves to the IXP's management AS.
  for (const IxpInstance& ixp : w.ixps) {
    auto result = cymru.Resolve(ixp.lan.AddressAt(5));
    if (ixp.lan_in_bgp) {
      ASSERT_TRUE(result.has_value());
      EXPECT_EQ(*result, ixp.ixp_asn);
    } else {
      EXPECT_FALSE(result.has_value());
    }
  }
}

TEST_F(MeasureTest, PeeringDbResolvesLanInterfacesToMembers) {
  const World& w = world();
  PeeringDbResolver pdb(w, plan(), /*record_coverage=*/1.0, /*wrong_record_fraction=*/0.0,
                        /*seed=*/1);
  std::size_t checked = 0;
  for (AsId a = 0; a < w.num_ases() && checked < 50; ++a) {
    for (const Neighbor& nb : w.full_graph.Peers(a)) {
      if (nb.id < a) continue;
      if (plan().LinkInfo(a, nb.id).medium != LinkMedium::kIxpLan) continue;
      EXPECT_EQ(pdb.Resolve(plan().BorderAddress(a, nb.id)), w.full_graph.AsnOf(nb.id));
      ++checked;
      break;
    }
  }
  EXPECT_GT(checked, 10u);
  // Non-LAN addresses are unknown to PeeringDB.
  EXPECT_FALSE(pdb.Resolve(plan().DestinationAddress(3)).has_value());
}

TEST_F(MeasureTest, WhoisResolvesLansToIxpOrg) {
  const World& w = world();
  WhoisResolver whois(w, /*stale_fraction=*/0.0, /*seed=*/2);
  for (const IxpInstance& ixp : w.ixps) {
    EXPECT_EQ(whois.Resolve(ixp.lan.AddressAt(9)), ixp.ixp_asn);
  }
  EXPECT_EQ(whois.Resolve(plan().DestinationAddress(7)), w.full_graph.AsnOf(7));
}

class CampaignTest : public MeasureTest {
 protected:
  static const TracerouteCampaign& campaign() {
    static const TracerouteCampaign c = [] {
      CampaignOptions options;
      options.dst_fraction = 0.25;
      options.seed = 9;
      return TracerouteCampaign(world(), plan(), options);
    }();
    return c;
  }
};

TEST_F(CampaignTest, TruePathsAreValidWalks) {
  const World& w = world();
  std::size_t checked = 0;
  for (const Traceroute& trace : campaign().traces()) {
    ASSERT_GE(trace.true_path.size(), 2u);
    EXPECT_EQ(trace.true_path.front(), w.clouds[trace.cloud_index].id);
    EXPECT_EQ(trace.true_path.back(), trace.dst_as);
    for (std::size_t i = 0; i + 1 < trace.true_path.size(); ++i) {
      EXPECT_TRUE(w.full_graph
                      .RelationshipBetween(trace.true_path[i], trace.true_path[i + 1])
                      .has_value());
    }
    if (++checked >= 500) break;
  }
  EXPECT_GT(campaign().traces().size(), 1000u);
}

TEST_F(CampaignTest, HopsEndAtProbedAddress) {
  for (std::size_t i = 0; i < 200 && i < campaign().traces().size(); ++i) {
    const Traceroute& trace = campaign().traces()[i];
    ASSERT_FALSE(trace.hops.empty());
    EXPECT_EQ(trace.hops.back().addr, trace.dst);
    EXPECT_EQ(trace.reached, trace.hops.back().responded);
  }
}

TEST_F(CampaignTest, VmCountsFollowArchetypes) {
  const World& w = world();
  std::vector<std::set<std::uint16_t>> vms(w.clouds.size());
  for (const Traceroute& trace : campaign().traces()) {
    vms[trace.cloud_index].insert(trace.vm);
  }
  for (std::uint32_t c = 0; c < w.clouds.size(); ++c) {
    if (w.clouds[c].archetype.vm_locations == 0) {
      EXPECT_TRUE(vms[c].empty());
    } else {
      EXPECT_EQ(vms[c].size(), w.clouds[c].archetype.vm_locations);
    }
  }
}

TEST_F(CampaignTest, InferenceFindsMostlyTrueNeighbors) {
  const World& w = world();
  CymruResolver cymru(w);
  PeeringDbResolver pdb(w, plan(), 0.9, 0.05, 11);
  WhoisResolver whois(w, 0.03, 12);
  NeighborInference inference(&cymru, &pdb, &whois);

  for (std::uint32_t c = 0; c < w.clouds.size(); ++c) {
    const CloudInstance& cloud = w.clouds[c];
    if (cloud.archetype.vm_locations == 0) continue;
    auto inferred = inference.InferNeighbors(campaign().traces(), c, cloud.archetype.asn,
                                             cloud.archetype.vm_locations,
                                             InferenceRules::ForStage(MethodologyStage::kV3Final));
    auto truth = TrueNeighborAsns(w.full_graph, cloud.id);
    ValidationStats stats = ValidateNeighbors(inferred, truth);
    EXPECT_GT(stats.true_positives, 10u) << cloud.archetype.name;
    EXPECT_LT(stats.Fdr(), 0.30) << cloud.archetype.name;
    EXPECT_LT(stats.Fnr(), 0.60) << cloud.archetype.name;
  }
}

TEST_F(CampaignTest, V0HasMoreFalsePositivesThanFinal) {
  const World& w = world();
  CymruResolver cymru(w);
  PeeringDbResolver pdb(w, plan(), 0.9, 0.05, 11);
  WhoisResolver whois(w, 0.03, 12);
  NeighborInference inference(&cymru, &pdb, &whois);

  std::size_t fp_v0 = 0, fp_v3 = 0;
  for (std::uint32_t c = 0; c < w.clouds.size(); ++c) {
    const CloudInstance& cloud = w.clouds[c];
    if (cloud.archetype.vm_locations == 0) continue;
    auto truth = TrueNeighborAsns(w.full_graph, cloud.id);
    auto v0 = inference.InferNeighbors(campaign().traces(), c, cloud.archetype.asn,
                                       cloud.archetype.vm_locations,
                                       InferenceRules::ForStage(MethodologyStage::kV0Initial));
    auto v3 = inference.InferNeighbors(campaign().traces(), c, cloud.archetype.asn,
                                       cloud.archetype.vm_locations,
                                       InferenceRules::ForStage(MethodologyStage::kV3Final));
    fp_v0 += ValidateNeighbors(v0, truth).false_positives;
    fp_v3 += ValidateNeighbors(v3, truth).false_positives;
  }
  EXPECT_GT(fp_v0, fp_v3);
}

TEST(Inference, GapRulesOnCraftedTraces) {
  // A hand-built world is overkill here; exercise the gap logic with a tiny
  // generated world and synthetic traces.
  GeneratorParams params = GeneratorParams::Era2020(400);
  World w = GenerateWorld(params);
  AddressPlan plan(w, 5);
  CymruResolver cymru(w);
  PeeringDbResolver pdb(w, plan, 1.0, 0.0, 1);
  WhoisResolver whois(w, 0.0, 2);
  NeighborInference inference(&cymru, &pdb, &whois);

  AsId cloud = w.clouds[0].id;
  Asn cloud_asn = w.clouds[0].archetype.asn;
  const Neighbor& nb = w.full_graph.NeighborsOf(cloud)[0];
  AsId far = 42 == cloud || 42 == nb.id ? 43 : 42;

  auto make_trace = [&](std::vector<Hop> hops) {
    Traceroute t;
    t.cloud_index = 0;
    t.vm = 0;
    t.dst_as = far;
    t.hops = std::move(hops);
    return t;
  };

  // Direct adjacency: cloud hop then neighbor-owned hop.
  Traceroute direct = make_trace({{plan.InternalAddress(cloud, 1), true},
                                  {plan.InternalAddress(nb.id, 1), true}});
  // One silent hop, then a hop owned by `far`.
  Traceroute gapped = make_trace({{plan.InternalAddress(cloud, 1), true},
                                  {plan.InternalAddress(nb.id, 2), false},
                                  {plan.InternalAddress(far, 1), true}});
  std::vector<Traceroute> traces{direct, gapped};

  InferenceRules v0 = InferenceRules::ForStage(MethodologyStage::kV0Initial);
  v0.vm_fraction = 1.0;
  auto neighbors_v0 = inference.InferNeighbors(traces, 0, cloud_asn, 1, v0);
  EXPECT_TRUE(neighbors_v0.contains(w.full_graph.AsnOf(nb.id)));
  EXPECT_TRUE(neighbors_v0.contains(w.full_graph.AsnOf(far)))
      << "v0 bridges single unknown hops";

  InferenceRules v3 = InferenceRules::ForStage(MethodologyStage::kV3Final);
  auto neighbors_v3 = inference.InferNeighbors(traces, 0, cloud_asn, 1, v3);
  EXPECT_TRUE(neighbors_v3.contains(w.full_graph.AsnOf(nb.id)));
  EXPECT_FALSE(neighbors_v3.contains(w.full_graph.AsnOf(far)))
      << "final rules discard unresponsive gaps";
}

TEST(Validation, RatesComputedCorrectly) {
  std::set<Asn> inferred{1, 2, 3, 4};
  std::set<Asn> truth{2, 3, 4, 5, 6};
  ValidationStats stats = ValidateNeighbors(inferred, truth);
  EXPECT_EQ(stats.true_positives, 3u);
  EXPECT_EQ(stats.false_positives, 1u);
  EXPECT_EQ(stats.false_negatives, 2u);
  EXPECT_DOUBLE_EQ(stats.Fdr(), 0.25);
  EXPECT_DOUBLE_EQ(stats.Fnr(), 0.4);
  ValidationStats empty = ValidateNeighbors({}, {});
  EXPECT_DOUBLE_EQ(empty.Fdr(), 0.0);
  EXPECT_DOUBLE_EQ(empty.Fnr(), 0.0);
}


TEST_F(CampaignTest, TraceDumpRoundTrip) {
  const World& w = world();
  std::vector<Traceroute> sample(campaign().traces().begin(),
                                 campaign().traces().begin() +
                                     std::min<std::size_t>(campaign().traces().size(), 200));
  std::string text = FormatTraceroutes(sample, w.full_graph);
  std::vector<Traceroute> reloaded = ParseTraceroutes(text, w.full_graph);
  ASSERT_EQ(reloaded.size(), sample.size());
  for (std::size_t i = 0; i < sample.size(); ++i) {
    EXPECT_EQ(reloaded[i].cloud_index, sample[i].cloud_index);
    EXPECT_EQ(reloaded[i].vm, sample[i].vm);
    EXPECT_EQ(reloaded[i].dst_as, sample[i].dst_as);
    EXPECT_EQ(reloaded[i].dst, sample[i].dst);
    EXPECT_EQ(reloaded[i].reached, sample[i].reached);
    EXPECT_EQ(reloaded[i].true_path, sample[i].true_path);
    ASSERT_EQ(reloaded[i].hops.size(), sample[i].hops.size());
    for (std::size_t h = 0; h < sample[i].hops.size(); ++h) {
      EXPECT_EQ(reloaded[i].hops[h].addr, sample[i].hops[h].addr);
      EXPECT_EQ(reloaded[i].hops[h].responded, sample[i].hops[h].responded);
    }
  }
}

TEST_F(CampaignTest, InferenceIdenticalOnReloadedTraces) {
  // The §6.5 retrospective re-runs the pipeline on a stored dataset; the
  // dump must be lossless for inference purposes.
  const World& w = world();
  CymruResolver cymru(w);
  PeeringDbResolver pdb(w, plan(), 0.9, 0.05, 11);
  WhoisResolver whois(w, 0.03, 12);
  NeighborInference inference(&cymru, &pdb, &whois);
  std::string text = FormatTraceroutes(campaign().traces(), w.full_graph);
  std::vector<Traceroute> reloaded = ParseTraceroutes(text, w.full_graph);
  InferenceRules rules = InferenceRules::ForStage(MethodologyStage::kV3Final);
  for (std::uint32_t c = 0; c < w.clouds.size(); ++c) {
    if (w.clouds[c].archetype.vm_locations == 0) continue;
    auto original = inference.InferNeighbors(campaign().traces(), c,
                                             w.clouds[c].archetype.asn,
                                             w.clouds[c].archetype.vm_locations, rules);
    auto again = inference.InferNeighbors(reloaded, c, w.clouds[c].archetype.asn,
                                          w.clouds[c].archetype.vm_locations, rules);
    EXPECT_EQ(original, again) << w.clouds[c].archetype.name;
  }
}

TEST(TraceIo, RejectsMalformedDumps) {
  GeneratorParams params = GeneratorParams::Era2020(300);
  World w = GenerateWorld(params);
  EXPECT_THROW(ParseTraceroutes("H 1.2.3.4 1\n", w.full_graph), ParseError);   // H before T
  EXPECT_THROW(ParseTraceroutes("T 0 0 1 1.2.3.4\n", w.full_graph), ParseError);  // short T
  EXPECT_THROW(ParseTraceroutes("X who knows\n", w.full_graph), ParseError);
  // AS number outside the topology.
  EXPECT_THROW(ParseTraceroutes("T 0 0 424242 1.2.3.4 1\n", w.full_graph), ParseError);
  EXPECT_TRUE(ParseTraceroutes("# just a comment\n", w.full_graph).empty());
}

}  // namespace
}  // namespace flatnet
