#include <gtest/gtest.h>

#include <algorithm>

#include "data/peeringdb.h"
#include "measure/ip2as.h"
#include "topogen/generate.h"
#include "util/error.h"

namespace flatnet {
namespace {

class PeeringDbTest : public ::testing::Test {
 protected:
  static const World& world() {
    static const World w = [] {
      GeneratorParams params = GeneratorParams::Era2020(1000);
      params.seed = 31;
      return GenerateWorld(params);
    }();
    return w;
  }
  static const AddressPlan& plan() {
    static const AddressPlan p(world(), 77);
    return p;
  }
  static const PeeringDbSnapshot& snapshot() {
    static const PeeringDbSnapshot s =
        PeeringDbSnapshot::FromWorld(world(), plan(), /*record_coverage=*/1.0, 5);
    return s;
  }
};

TEST_F(PeeringDbTest, ContainsTheRegistries) {
  EXPECT_GT(snapshot().nets().size(), world().num_ases() / 2);
  EXPECT_EQ(snapshot().ixes().size(), world().ixps.size());
  EXPECT_GT(snapshot().netixlans().size(), 100u);
  EXPECT_GT(snapshot().facilities().size(), 20u);
  EXPECT_GT(snapshot().netfacs().size(), snapshot().facilities().size());
}

TEST_F(PeeringDbTest, NamedNetworksCarryPolicy) {
  const PdbNet* google = snapshot().NetOf(15169);
  ASSERT_NE(google, nullptr);
  EXPECT_EQ(google->name, "Google");
  EXPECT_EQ(google->policy, "Open");
  EXPECT_EQ(snapshot().NetOf(424242424), nullptr);
}

TEST_F(PeeringDbTest, LanResolutionMatchesResolver) {
  // With full record coverage the snapshot must resolve every LAN border
  // interface exactly like the in-memory PeeringDbResolver.
  PeeringDbResolver resolver(world(), plan(), 1.0, 0.0, 5);
  const AsGraph& graph = world().full_graph;
  std::size_t checked = 0;
  for (AsId a = 0; a < graph.num_ases() && checked < 200; ++a) {
    for (const Neighbor& nb : graph.Peers(a)) {
      if (nb.id < a) continue;
      if (plan().LinkInfo(a, nb.id).medium != LinkMedium::kIxpLan) continue;
      Ipv4Address addr = plan().BorderAddress(a, nb.id);
      EXPECT_EQ(snapshot().ResolveLanAddress(addr), graph.AsnOf(nb.id));
      ++checked;
      break;
    }
  }
  EXPECT_GT(checked, 50u);
  EXPECT_FALSE(snapshot().ResolveLanAddress(Ipv4Address(203, 0, 113, 7)).has_value());
}

TEST_F(PeeringDbTest, FacilityCitiesMatchPresence) {
  AsId google = world().Cloud("Google").id;
  auto cities = snapshot().FacilityCitiesOf(world().full_graph.AsnOf(google));
  EXPECT_EQ(cities.size(), world().presence[google].size());
  auto world_cities = WorldCities();
  for (CityIndex c : world().presence[google]) {
    EXPECT_NE(std::find(cities.begin(), cities.end(), std::string(world_cities[c].name)),
              cities.end());
  }
}

TEST_F(PeeringDbTest, JsonRoundTripIsLossless) {
  std::string text = snapshot().Dump();
  PeeringDbSnapshot reloaded = PeeringDbSnapshot::Parse(text);
  EXPECT_EQ(reloaded.nets().size(), snapshot().nets().size());
  EXPECT_EQ(reloaded.ixes().size(), snapshot().ixes().size());
  EXPECT_EQ(reloaded.netixlans().size(), snapshot().netixlans().size());
  EXPECT_EQ(reloaded.facilities().size(), snapshot().facilities().size());
  EXPECT_EQ(reloaded.netfacs().size(), snapshot().netfacs().size());
  // Indexes rebuilt: lookups still work.
  const PdbNetIxLan& port = snapshot().netixlans().front();
  EXPECT_EQ(reloaded.ResolveLanAddress(port.ipaddr4), port.asn);
  // Byte-stable second dump (std::map ordering).
  EXPECT_EQ(reloaded.Dump(), text);
}

TEST(PeeringDb, RejectsMalformedDocuments) {
  EXPECT_THROW(PeeringDbSnapshot::Parse("{}"), InvalidArgument);
  EXPECT_THROW(PeeringDbSnapshot::Parse("not json"), ParseError);
  EXPECT_THROW(
      PeeringDbSnapshot::Parse(
          R"({"net":{"data":[{"asn":1,"name":"x","policy_general":"Open"}]},
              "ix":{"data":[]},
              "netixlan":{"data":[{"asn":1,"ix_id":1,"ipaddr4":"not-an-ip"}]},
              "fac":{"data":[]},"netfac":{"data":[]}})"),
      ParseError);
}

}  // namespace
}  // namespace flatnet
