#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "asgraph/as_graph.h"
#include "asgraph/as2org.h"
#include "asgraph/caida.h"
#include "asgraph/cone.h"
#include "asgraph/metadata.h"
#include "asgraph/tiers.h"
#include "util/error.h"

namespace flatnet {
namespace {

AsGraph SmallGraph() {
  // 1 and 2 are providers; 1-2 peer; 3,4 are customers of 1; 5 customer of 3.
  AsGraphBuilder builder;
  builder.AddEdge(1, 2, EdgeType::kP2P);
  builder.AddEdge(1, 3, EdgeType::kP2C);
  builder.AddEdge(1, 4, EdgeType::kP2C);
  builder.AddEdge(3, 5, EdgeType::kP2C);
  builder.AddEdge(2, 4, EdgeType::kP2C);
  return std::move(builder).Build();
}

TEST(AsGraphBuilder, RegistersAsesOnce) {
  AsGraphBuilder builder;
  AsId a = builder.AddAs(100);
  AsId b = builder.AddAs(100);
  EXPECT_EQ(a, b);
  EXPECT_EQ(builder.num_ases(), 1u);
}

TEST(AsGraphBuilder, RejectsSelfLoopAndConflicts) {
  AsGraphBuilder builder;
  EXPECT_THROW(builder.AddEdge(1, 1, EdgeType::kP2P), InvalidArgument);
  builder.AddEdge(1, 2, EdgeType::kP2C);
  builder.AddEdge(1, 2, EdgeType::kP2C);  // identical duplicate: fine
  EXPECT_THROW(builder.AddEdge(2, 1, EdgeType::kP2C), InvalidArgument);  // reversed
  EXPECT_THROW(builder.AddEdge(1, 2, EdgeType::kP2P), InvalidArgument);  // retyped
  EXPECT_EQ(builder.num_edges(), 1u);
}

TEST(AsGraphBuilder, AddEdgeIfAbsent) {
  AsGraphBuilder builder;
  EXPECT_TRUE(builder.AddEdgeIfAbsent(1, 2, EdgeType::kP2C));
  EXPECT_FALSE(builder.AddEdgeIfAbsent(1, 2, EdgeType::kP2P));
  EXPECT_FALSE(builder.AddEdgeIfAbsent(2, 1, EdgeType::kP2P));
  EXPECT_TRUE(builder.HasEdge(1, 2));
  EXPECT_TRUE(builder.HasEdge(2, 1));
  EXPECT_FALSE(builder.HasEdge(1, 3));
}

TEST(AsGraph, AdjacencyGroups) {
  AsGraph graph = SmallGraph();
  ASSERT_EQ(graph.num_ases(), 5u);
  ASSERT_EQ(graph.num_edges(), 5u);
  AsId as1 = *graph.IdOf(1);
  EXPECT_EQ(graph.CustomerCount(as1), 2u);
  EXPECT_EQ(graph.PeerCount(as1), 1u);
  EXPECT_EQ(graph.ProviderCount(as1), 0u);
  AsId as4 = *graph.IdOf(4);
  EXPECT_EQ(graph.ProviderCount(as4), 2u);
  EXPECT_EQ(graph.Degree(as4), 2u);
  EXPECT_FALSE(graph.IdOf(99).has_value());
}

TEST(AsGraph, RelationshipBetween) {
  AsGraph graph = SmallGraph();
  AsId as1 = *graph.IdOf(1);
  AsId as2 = *graph.IdOf(2);
  AsId as3 = *graph.IdOf(3);
  AsId as5 = *graph.IdOf(5);
  EXPECT_EQ(graph.RelationshipBetween(as1, as2), Relationship::kPeer);
  EXPECT_EQ(graph.RelationshipBetween(as1, as3), Relationship::kCustomer);
  EXPECT_EQ(graph.RelationshipBetween(as3, as1), Relationship::kProvider);
  EXPECT_EQ(graph.RelationshipBetween(as1, as5), std::nullopt);
}

TEST(AsGraph, EdgeListRoundTrip) {
  AsGraph graph = SmallGraph();
  auto edges = graph.EdgeList();
  EXPECT_EQ(edges.size(), graph.num_edges());
  // p2c orientation preserved: provider first.
  bool found = false;
  for (const auto& e : edges) {
    if (e.a == 3 && e.b == 5) {
      EXPECT_EQ(e.type, EdgeType::kP2C);
      found = true;
    }
    EXPECT_FALSE(e.a == 5 && e.b == 3);
  }
  EXPECT_TRUE(found);
}

TEST(Caida, ParsesSerial1AndSerial2) {
  const char* text =
      "# comment line\n"
      "1|2|0\n"
      "1|3|-1\n"
      "2|4|-1|bgp\n"
      "\n";
  AsGraph graph = ParseCaidaRelationships(text);
  EXPECT_EQ(graph.num_ases(), 4u);
  EXPECT_EQ(graph.num_edges(), 3u);
  EXPECT_EQ(graph.RelationshipBetween(*graph.IdOf(1), *graph.IdOf(2)), Relationship::kPeer);
  EXPECT_EQ(graph.RelationshipBetween(*graph.IdOf(2), *graph.IdOf(4)), Relationship::kCustomer);
}

TEST(Caida, RejectsMalformedLines) {
  EXPECT_THROW(ParseCaidaRelationships("1|2\n"), ParseError);
  EXPECT_THROW(ParseCaidaRelationships("1|2|5\n"), ParseError);
  EXPECT_THROW(ParseCaidaRelationships("x|2|0\n"), ParseError);
  EXPECT_THROW(ParseCaidaRelationships("1|2|0|x|y\n"), ParseError);
}

TEST(Caida, WriteReadRoundTrip) {
  AsGraph graph = SmallGraph();
  for (CaidaFormat format : {CaidaFormat::kSerial1, CaidaFormat::kSerial2}) {
    std::string text = FormatCaidaRelationships(graph, format);
    AsGraph reparsed = ParseCaidaRelationships(text);
    EXPECT_EQ(reparsed.num_ases(), graph.num_ases());
    EXPECT_EQ(reparsed.num_edges(), graph.num_edges());
    for (const auto& e : graph.EdgeList()) {
      AsId a = *reparsed.IdOf(e.a);
      AsId b = *reparsed.IdOf(e.b);
      auto rel = reparsed.RelationshipBetween(a, b);
      ASSERT_TRUE(rel.has_value());
      if (e.type == EdgeType::kP2P) {
        EXPECT_EQ(*rel, Relationship::kPeer);
      } else {
        EXPECT_EQ(*rel, Relationship::kCustomer);
      }
    }
  }
}

TEST(Cone, MembershipAndSizes) {
  AsGraph graph = SmallGraph();
  AsId as1 = *graph.IdOf(1);
  Bitset cone = CustomerCone(graph, as1);
  // 1's cone: {1, 3, 4, 5}.
  EXPECT_EQ(cone.Count(), 4u);
  EXPECT_TRUE(cone.Test(*graph.IdOf(5)));
  EXPECT_FALSE(cone.Test(*graph.IdOf(2)));

  auto sizes = CustomerConeSizes(graph);
  EXPECT_EQ(sizes[as1], 4u);
  EXPECT_EQ(sizes[*graph.IdOf(2)], 2u);   // {2, 4}
  EXPECT_EQ(sizes[*graph.IdOf(3)], 2u);   // {3, 5}
  EXPECT_EQ(sizes[*graph.IdOf(5)], 1u);   // stub
}

TEST(Cone, DegreesMatchDefinition) {
  AsGraph graph = SmallGraph();
  auto transit = TransitDegrees(graph);
  auto node = NodeDegrees(graph);
  AsId as1 = *graph.IdOf(1);
  EXPECT_EQ(transit[as1], 2u);  // two customers, no providers
  EXPECT_EQ(node[as1], 3u);
  AsId as4 = *graph.IdOf(4);
  EXPECT_EQ(transit[as4], 2u);  // two providers
}

TEST(Tiers, InfersCliqueOnConstructedTopology) {
  AsGraphBuilder builder;
  // Clique of 3 providerless ASes {1,2,3} with big cones; AS 10 is a large
  // transit buying from all of them; stubs hang off everyone.
  builder.AddEdge(1, 2, EdgeType::kP2P);
  builder.AddEdge(1, 3, EdgeType::kP2P);
  builder.AddEdge(2, 3, EdgeType::kP2P);
  for (Asn t1 : {1, 2, 3}) builder.AddEdge(t1, 10, EdgeType::kP2C);
  Asn next = 100;
  for (Asn t1 : {1, 2, 3}) {
    for (int i = 0; i < 5; ++i) builder.AddEdge(t1, next++, EdgeType::kP2C);
  }
  for (int i = 0; i < 8; ++i) builder.AddEdge(10, next++, EdgeType::kP2C);
  AsGraph graph = std::move(builder).Build();

  TierInferenceOptions options;
  options.tier2_count = 1;
  TierSets tiers = InferTierSets(graph, options);
  ASSERT_EQ(tiers.tier1.size(), 3u);
  for (AsId id : tiers.tier1) {
    Asn asn = graph.AsnOf(id);
    EXPECT_TRUE(asn == 1 || asn == 2 || asn == 3);
  }
  ASSERT_EQ(tiers.tier2.size(), 1u);
  EXPECT_EQ(graph.AsnOf(tiers.tier2[0]), 10u);
  EXPECT_EQ(tiers.HierarchyMask().Count(), 4u);
}

TEST(Tiers, MakeTierSetsIgnoresUnknownAndOverlap) {
  AsGraph graph = SmallGraph();
  TierSets tiers = MakeTierSets(graph, {1, 999}, {1, 2});
  EXPECT_EQ(tiers.tier1.size(), 1u);
  EXPECT_EQ(tiers.tier2.size(), 1u);  // AS1 excluded from tier2 (tier1 wins)
  EXPECT_EQ(graph.AsnOf(tiers.tier2[0]), 2u);
}

TEST(Metadata, TypeCountsAndReclassification) {
  AsMetadata metadata(3);
  metadata.GetMutable(0).type = AsType::kCloud;
  metadata.GetMutable(1).type = AsType::kAccess;
  metadata.GetMutable(1).users = 1000;
  metadata.GetMutable(2).type = AsType::kTransit;
  auto counts = metadata.TypeCounts();
  EXPECT_EQ(counts[static_cast<std::size_t>(AsType::kCloud)], 1u);
  EXPECT_DOUBLE_EQ(metadata.TotalUsers(), 1000.0);

  EXPECT_EQ(ReclassifyWithUsers(AsType::kTransit, 5.0), AsType::kAccess);
  EXPECT_EQ(ReclassifyWithUsers(AsType::kTransit, 0.0), AsType::kTransit);
  EXPECT_EQ(ReclassifyWithUsers(AsType::kContent, 5.0), AsType::kContent);
}


TEST(As2Org, ParsesOrgsAndSiblings) {
  const char* text =
      "# format:org_id|changed|org_name|country|source\n"
      "ORG-G|20200101|Example Search Org|US|ARIN\n"
      "ORG-X|20200101|Other Org|DE|RIPE\n"
      "# format:aut|changed|aut_name|org_id|opaque_id|source\n"
      "15169|20200101|GOOGLE|ORG-G||ARIN\n"
      "36040|20200101|YOUTUBE|ORG-G||ARIN\n"
      "3320|20200101|DTAG|ORG-X||RIPE\n";
  OrgMap map = ParseAs2Org(text);
  EXPECT_EQ(map.organization_count(), 2u);
  EXPECT_EQ(map.mapped_as_count(), 3u);
  ASSERT_NE(map.OrgOf(15169), nullptr);
  EXPECT_EQ(map.OrgOf(15169)->name, "Example Search Org");
  EXPECT_EQ(map.OrgIdOf(36040), "ORG-G");
  EXPECT_FALSE(map.OrgIdOf(99999).has_value());

  auto siblings = map.SiblingsOf(15169);
  std::sort(siblings.begin(), siblings.end());
  EXPECT_EQ(siblings, (std::vector<Asn>{15169, 36040}));
  EXPECT_EQ(map.SiblingsOf(424242), (std::vector<Asn>{424242}));
}

TEST(As2Org, RejectsMalformed) {
  EXPECT_THROW(ParseAs2Org("15169|x|y|z|w|v\n"), ParseError);  // record before header
  EXPECT_THROW(ParseAs2Org("# format:aut|...\nnot_an_asn|a|b|c|d|e\n"), ParseError);
  EXPECT_THROW(ParseAs2Org("# format:org|...\nshort|fields\n"), ParseError);
}

TEST(As2Type, ParsesAndApplies) {
  const char* text =
      "# format: as|source|type\n"
      "10|CAIDA_class|Transit/Access\n"
      "20|CAIDA_class|Content\n"
      "30|CAIDA_class|Enterprise\n";
  auto types = ParseAs2Type(text);
  EXPECT_EQ(types.at(10), AsType::kTransit);
  EXPECT_EQ(types.at(20), AsType::kContent);
  EXPECT_EQ(types.at(30), AsType::kEnterprise);
  EXPECT_THROW(ParseAs2Type("10|x|Mystery\n"), ParseError);

  AsGraphBuilder builder;
  builder.AddEdge(10, 20, EdgeType::kP2C);
  builder.AddEdge(10, 30, EdgeType::kP2C);
  AsGraph graph = std::move(builder).Build();
  AsMetadata metadata(graph.num_ases());
  metadata.GetMutable(*graph.IdOf(10)).users = 5000;  // transit with users -> access
  ApplyTypes(graph, types, metadata);
  EXPECT_EQ(metadata.Get(*graph.IdOf(10)).type, AsType::kAccess);
  EXPECT_EQ(metadata.Get(*graph.IdOf(20)).type, AsType::kContent);
  EXPECT_EQ(metadata.Get(*graph.IdOf(30)).type, AsType::kEnterprise);
}

}  // namespace
}  // namespace flatnet
