#include <gtest/gtest.h>

#include <set>

#include "net/prefix_trie.h"
#include "topogen/generate.h"
#include "util/error.h"

namespace flatnet {
namespace {

class WorldTest : public ::testing::Test {
 protected:
  static const World& world() {
    static const World w = [] {
      GeneratorParams params = GeneratorParams::Era2020(2500);
      return GenerateWorld(params);
    }();
    return w;
  }
};

TEST_F(WorldTest, IdSpacesAligned) {
  const World& w = world();
  ASSERT_EQ(w.full_graph.num_ases(), w.bgp_graph.num_ases());
  for (AsId id = 0; id < w.num_ases(); ++id) {
    EXPECT_EQ(w.full_graph.AsnOf(id), w.bgp_graph.AsnOf(id));
  }
  EXPECT_EQ(w.metadata.size(), w.num_ases());
  EXPECT_EQ(w.home_city.size(), w.num_ases());
  EXPECT_EQ(w.prefixes.size(), w.num_ases());
}

TEST_F(WorldTest, RequestedSize) { EXPECT_EQ(world().num_ases(), 2500u); }

TEST_F(WorldTest, BgpGraphIsSubsetOfFullGraph) {
  const World& w = world();
  EXPECT_LT(w.bgp_graph.num_edges(), w.full_graph.num_edges());
  for (const AsGraph::Edge& e : w.bgp_graph.EdgeList()) {
    AsId a = *w.full_graph.IdOf(e.a);
    AsId b = *w.full_graph.IdOf(e.b);
    auto rel = w.full_graph.RelationshipBetween(a, b);
    ASSERT_TRUE(rel.has_value()) << e.a << "-" << e.b;
    if (e.type == EdgeType::kP2P) {
      EXPECT_EQ(*rel, Relationship::kPeer);
    } else {
      EXPECT_EQ(*rel, Relationship::kCustomer);
    }
  }
}

TEST_F(WorldTest, AllC2pEdgesVisibleInBgp) {
  // BGP feeds have near-complete c2p coverage (§4.1); the generator keeps
  // every c2p link visible.
  const World& w = world();
  std::size_t full_c2p = 0, bgp_c2p = 0;
  for (const auto& e : w.full_graph.EdgeList()) full_c2p += e.type == EdgeType::kP2C;
  for (const auto& e : w.bgp_graph.EdgeList()) bgp_c2p += e.type == EdgeType::kP2C;
  EXPECT_EQ(full_c2p, bgp_c2p);
}

TEST_F(WorldTest, Tier1CliqueIsCompleteAndProviderless) {
  const World& w = world();
  EXPECT_GE(w.tiers.tier1.size(), 15u);
  for (AsId a : w.tiers.tier1) {
    EXPECT_TRUE(w.full_graph.Providers(a).empty())
        << "Tier-1 " << w.metadata.Get(a).name << " has a provider";
    for (AsId b : w.tiers.tier1) {
      if (a == b) continue;
      EXPECT_EQ(w.full_graph.RelationshipBetween(a, b), Relationship::kPeer);
    }
  }
}

TEST_F(WorldTest, EveryNonCliqueAsHasAProviderOrIsProviderFreeTier2) {
  const World& w = world();
  // PCCW and Liberty Global model the paper's provider-free non-Tier-1s;
  // everything else below the clique must buy transit (connectivity).
  for (AsId id = 0; id < w.num_ases(); ++id) {
    if (w.tiers.tier1_mask.Test(id)) continue;
    const std::string& name = w.metadata.Get(id).name;
    if (name == "PCCW" || name == "Liberty Global") continue;
    EXPECT_FALSE(w.full_graph.Providers(id).empty()) << "AS " << name << " is providerless";
  }
}

TEST_F(WorldTest, CloudPeerCountsNearArchetypeTargets) {
  const World& w = world();
  for (const CloudInstance& cloud : w.clouds) {
    std::size_t peers = w.full_graph.PeerCount(cloud.id);
    std::uint32_t target = w.params.Scaled(cloud.archetype.peer_count);
    EXPECT_GE(peers, static_cast<std::size_t>(target) * 7 / 10)
        << cloud.archetype.name << " target " << target;
    EXPECT_LE(peers, static_cast<std::size_t>(target) * 13 / 10 + 30)
        << cloud.archetype.name << " target " << target;
  }
}

TEST_F(WorldTest, CloudBgpVisibilityMatchesArchetype) {
  const World& w = world();
  for (const CloudInstance& cloud : w.clouds) {
    std::size_t truth = w.full_graph.PeerCount(cloud.id);
    std::size_t visible = w.bgp_graph.PeerCount(cloud.id);
    EXPECT_LT(visible, truth) << cloud.archetype.name;
    // Open-policy clouds hide ~90% of their peers from BGP feeds.
    if (cloud.archetype.name == "Google") {
      EXPECT_LT(static_cast<double>(visible) / truth, 0.35);
    }
    if (cloud.archetype.name == "IBM") {
      EXPECT_GT(static_cast<double>(visible) / truth, 0.5);
    }
  }
}

TEST_F(WorldTest, GoogleProvidersMatchPaper) {
  const World& w = world();
  AsId google = w.Cloud("Google").id;
  std::set<std::string> providers;
  for (const Neighbor& nb : w.full_graph.Providers(google)) {
    providers.insert(w.metadata.Get(nb.id).name);
  }
  EXPECT_EQ(providers, (std::set<std::string>{"Tata", "GTT", "Durand do Brasil"}));
  // Amazon peers with Durand instead of buying from it (Table 2 setup).
  AsId amazon = w.Cloud("Amazon").id;
  AsId durand = kInvalidAsId;
  for (AsId id = 0; id < w.num_ases(); ++id) {
    if (w.metadata.Get(id).name == "Durand do Brasil") durand = id;
  }
  ASSERT_NE(durand, kInvalidAsId);
  EXPECT_EQ(w.full_graph.RelationshipBetween(amazon, durand), Relationship::kPeer);
}

TEST_F(WorldTest, PrefixesAreDisjoint) {
  const World& w = world();
  PrefixTrie<AsId> trie;
  for (AsId id = 0; id < w.num_ases(); ++id) {
    ASSERT_FALSE(w.prefixes[id].empty());
    for (const Ipv4Prefix& prefix : w.prefixes[id]) {
      EXPECT_TRUE(trie.Insert(prefix, id)) << "duplicate prefix " << prefix.ToString();
    }
  }
  // No prefix nests inside another AS's prefix.
  for (AsId id = 0; id < w.num_ases(); ++id) {
    for (const Ipv4Prefix& prefix : w.prefixes[id]) {
      auto match = trie.LongestMatch(prefix.AddressAt(0));
      ASSERT_TRUE(match.has_value());
      EXPECT_EQ(*match->second, id) << prefix.ToString();
    }
  }
}

TEST_F(WorldTest, UsersConcentrateOnAccessNetworks) {
  const World& w = world();
  double access_users = 0, other_users = 0;
  for (AsId id = 0; id < w.num_ases(); ++id) {
    const AsInfo& info = w.metadata.Get(id);
    if (info.type == AsType::kAccess) {
      access_users += info.users;
    } else {
      other_users += info.users;
    }
  }
  EXPECT_GT(access_users, 10 * other_users);
  EXPECT_GT(w.metadata.TotalUsers(), 0.0);
}

TEST_F(WorldTest, IxpsHaveMembersAndLans) {
  const World& w = world();
  EXPECT_GT(w.ixps.size(), 4u);
  std::size_t announced = 0;
  for (const IxpInstance& ixp : w.ixps) {
    EXPECT_GE(ixp.members.size(), 3u);
    EXPECT_GE(ixp.lan.length(), 20);
    announced += ixp.lan_in_bgp;
  }
  // A minority of LANs are announced into BGP (the §5 Cymru trap).
  EXPECT_GT(announced, 0u);
  EXPECT_LT(announced, w.ixps.size());
}

TEST_F(WorldTest, CloudPresenceIncludesChinaButTransitDoesNot) {
  const World& w = world();
  auto has_city = [&](AsId id, std::string_view iata) {
    for (CityIndex c : w.presence[id]) {
      if (WorldCities()[c].iata == iata) return true;
    }
    return false;
  };
  bool any_cloud_china = false;
  for (const CloudInstance& cloud : w.clouds) {
    if (has_city(cloud.id, "PVG") || has_city(cloud.id, "PEK")) any_cloud_china = true;
  }
  EXPECT_TRUE(any_cloud_china);
  for (AsId t1 : w.tiers.tier1) {
    EXPECT_FALSE(has_city(t1, "PVG")) << w.metadata.Get(t1).name;
    EXPECT_FALSE(has_city(t1, "PEK")) << w.metadata.Get(t1).name;
  }
}

TEST(Generator, DeterministicForFixedSeed) {
  GeneratorParams params = GeneratorParams::Era2020(800);
  World a = GenerateWorld(params);
  World b = GenerateWorld(params);
  EXPECT_EQ(a.full_graph.num_edges(), b.full_graph.num_edges());
  EXPECT_EQ(a.bgp_graph.num_edges(), b.bgp_graph.num_edges());
  auto ea = a.full_graph.EdgeList();
  auto eb = b.full_graph.EdgeList();
  ASSERT_EQ(ea.size(), eb.size());
  for (std::size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].a, eb[i].a);
    EXPECT_EQ(ea[i].b, eb[i].b);
    EXPECT_EQ(ea[i].type, eb[i].type);
  }
}

TEST(Generator, SeedChangesTopology) {
  GeneratorParams params = GeneratorParams::Era2020(800);
  World a = GenerateWorld(params);
  params.seed ^= 0xdeadbeef;
  World b = GenerateWorld(params);
  EXPECT_NE(a.full_graph.num_edges(), b.full_graph.num_edges());
}

TEST(Generator, RejectsTinyWorlds) {
  GeneratorParams params = GeneratorParams::Era2020(100);
  EXPECT_THROW(GenerateWorld(params), InvalidArgument);
}

TEST(Generator, Era2015IsSmallerAndLessPeered) {
  World w2015 = GenerateWorld(GeneratorParams::Era2015(1800));
  World w2020 = GenerateWorld(GeneratorParams::Era2020(2500));
  EXPECT_LT(w2015.num_ases(), w2020.num_ases());
  // Amazon's 2015 footprint is a fraction of its 2020 one (per §6.5).
  double ratio2015 = static_cast<double>(w2015.full_graph.PeerCount(w2015.Cloud("Amazon").id)) /
                     w2015.num_ases();
  double ratio2020 = static_cast<double>(w2020.full_graph.PeerCount(w2020.Cloud("Amazon").id)) /
                     w2020.num_ases();
  EXPECT_LT(ratio2015, ratio2020);
  // Microsoft had no usable VMs in the 2015 dataset.
  EXPECT_EQ(w2015.Cloud("Microsoft").archetype.vm_locations, 0u);
}

}  // namespace
}  // namespace flatnet
