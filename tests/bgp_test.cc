#include <gtest/gtest.h>

#include <algorithm>

#include "asgraph/as_graph.h"
#include "bgp/leak.h"
#include "bgp/paths.h"
#include "bgp/propagation.h"
#include "bgp/reachability.h"
#include "bgp/reliance.h"
#include "topogen/generate.h"
#include "util/error.h"
#include "util/stats.h"

namespace flatnet {
namespace {

// ---------------------------------------------------------------------------
// Fig 1 oracle. The topology encodes the paper's example: a cloud C with one
// transit provider P, peering with a Tier-1 T, a Tier-2 S, and user ISPs U2
// and U3. ISP-A is T's customer; U1 and X are S's customers.
//
//   provider-free  (exclude {P}):       {T, S, ISP-A, U1, X, U2, U3}
//   Tier-1-free    (exclude {P,T}):     {S, U1, X, U2, U3}   (ISP-A lost)
//   hierarchy-free (exclude {P,T,S}):   {U2, U3}
// ---------------------------------------------------------------------------

constexpr Asn kC = 1, kP = 2, kT = 3, kS = 4, kIspA = 5, kU1 = 6, kX = 7, kU2 = 8, kU3 = 9;

AsGraph Fig1Graph() {
  AsGraphBuilder builder;
  builder.AddEdge(kP, kC, EdgeType::kP2C);  // P is C's transit provider
  builder.AddEdge(kC, kT, EdgeType::kP2P);
  builder.AddEdge(kC, kS, EdgeType::kP2P);
  builder.AddEdge(kC, kU2, EdgeType::kP2P);
  builder.AddEdge(kC, kU3, EdgeType::kP2P);
  builder.AddEdge(kT, kIspA, EdgeType::kP2C);
  builder.AddEdge(kS, kU1, EdgeType::kP2C);
  builder.AddEdge(kS, kX, EdgeType::kP2C);
  builder.AddEdge(kP, kT, EdgeType::kP2P);  // provider meshes with the Tier-1
  return std::move(builder).Build();
}

Bitset MaskOf(const AsGraph& graph, std::initializer_list<Asn> asns) {
  Bitset mask(graph.num_ases());
  for (Asn asn : asns) mask.Set(*graph.IdOf(asn));
  return mask;
}

std::set<Asn> ReachedAsns(const AsGraph& graph, const Bitset& reached, Asn origin) {
  std::set<Asn> out;
  reached.ForEachSet([&](std::size_t id) {
    Asn asn = graph.AsnOf(static_cast<AsId>(id));
    if (asn != origin) out.insert(asn);
  });
  return out;
}

TEST(Fig1, ProviderFreeReachability) {
  AsGraph graph = Fig1Graph();
  Bitset excluded = MaskOf(graph, {kP});
  Bitset reached = ReachableSet(graph, *graph.IdOf(kC), &excluded);
  EXPECT_EQ(ReachedAsns(graph, reached, kC),
            (std::set<Asn>{kT, kS, kIspA, kU1, kX, kU2, kU3}));
}

TEST(Fig1, Tier1FreeReachability) {
  AsGraph graph = Fig1Graph();
  Bitset excluded = MaskOf(graph, {kP, kT});
  Bitset reached = ReachableSet(graph, *graph.IdOf(kC), &excluded);
  // The caption's delta: exactly ISP-A becomes unreachable.
  EXPECT_EQ(ReachedAsns(graph, reached, kC), (std::set<Asn>{kS, kU1, kX, kU2, kU3}));
}

TEST(Fig1, HierarchyFreeReachability) {
  AsGraph graph = Fig1Graph();
  Bitset excluded = MaskOf(graph, {kP, kT, kS});
  Bitset reached = ReachableSet(graph, *graph.IdOf(kC), &excluded);
  // Only the directly peered user ISPs remain (the caption's "two").
  EXPECT_EQ(ReachedAsns(graph, reached, kC), (std::set<Asn>{kU2, kU3}));
}

TEST(Fig1, FullGraphReachesEverything) {
  AsGraph graph = Fig1Graph();
  EXPECT_EQ(ReachableCount(graph, *graph.IdOf(kC)), graph.num_ases() - 1);
}

TEST(Reachability, ExcludedOriginIsEmpty) {
  AsGraph graph = Fig1Graph();
  Bitset excluded = MaskOf(graph, {kC});
  EXPECT_EQ(ReachableSet(graph, *graph.IdOf(kC), &excluded).Count(), 0u);
}

TEST(Reachability, ValleyFreeBlocksPeerPeerChains) {
  // o -- a -- b in a pure peering chain: b must not hear o's announcement.
  AsGraphBuilder builder;
  builder.AddEdge(1, 2, EdgeType::kP2P);
  builder.AddEdge(2, 3, EdgeType::kP2P);
  AsGraph graph = std::move(builder).Build();
  Bitset reached = ReachableSet(graph, *graph.IdOf(1));
  EXPECT_TRUE(reached.Test(*graph.IdOf(2)));
  EXPECT_FALSE(reached.Test(*graph.IdOf(3)));
}

TEST(Reachability, PeerThenCustomerIsValid) {
  // o peers a; a's customer chain continues downward: reachable.
  AsGraphBuilder builder;
  builder.AddEdge(1, 2, EdgeType::kP2P);
  builder.AddEdge(2, 3, EdgeType::kP2C);
  builder.AddEdge(3, 4, EdgeType::kP2C);
  AsGraph graph = std::move(builder).Build();
  Bitset reached = ReachableSet(graph, *graph.IdOf(1));
  EXPECT_EQ(reached.Count(), 4u);
}

TEST(Reachability, UpThenPeerThenDown) {
  // o -> provider p; p peers q; q's customer c: the classic valley-free path.
  AsGraphBuilder builder;
  builder.AddEdge(2, 1, EdgeType::kP2C);  // 2 provider of o=1
  builder.AddEdge(2, 3, EdgeType::kP2P);
  builder.AddEdge(3, 4, EdgeType::kP2C);
  AsGraph graph = std::move(builder).Build();
  Bitset reached = ReachableSet(graph, *graph.IdOf(1));
  EXPECT_EQ(reached.Count(), 4u);
  // But two peer steps are not allowed: add 4--5 peer; 5 stays unreachable
  // through the path o->2->3 (peer) ->4 (down) -> 5 would be peer after down.
  AsGraphBuilder builder2;
  builder2.AddEdge(2, 1, EdgeType::kP2C);
  builder2.AddEdge(2, 3, EdgeType::kP2P);
  builder2.AddEdge(3, 4, EdgeType::kP2C);
  builder2.AddEdge(4, 5, EdgeType::kP2P);
  AsGraph graph2 = std::move(builder2).Build();
  Bitset reached2 = ReachableSet(graph2, *graph2.IdOf(1));
  EXPECT_FALSE(reached2.Test(*graph2.IdOf(5)));
}

// ---------------------------------------------------------------------------
// Best-route engine.
// ---------------------------------------------------------------------------

TEST(Propagation, PrefersCustomerOverShorterPeerRoute) {
  // t has a 3-hop customer route and a 1-hop peer route to o; Gao-Rexford
  // picks the customer route despite its length.
  AsGraphBuilder builder;
  builder.AddEdge(4, 3, EdgeType::kP2C);  // t=4 provider of 3
  builder.AddEdge(3, 2, EdgeType::kP2C);
  builder.AddEdge(2, 1, EdgeType::kP2C);  // chain down to o=1
  builder.AddEdge(4, 1, EdgeType::kP2P);  // direct peering t--o
  AsGraph graph = std::move(builder).Build();

  AnnouncementSource source{.node = *graph.IdOf(1)};
  RouteComputation computation(graph, {source});
  const RouteEntry& entry = computation.Route(*graph.IdOf(4));
  EXPECT_EQ(entry.cls, RouteClass::kCustomer);
  EXPECT_EQ(entry.length, 3);
}

TEST(Propagation, PrefersPeerOverProviderRoute) {
  AsGraphBuilder builder;
  builder.AddEdge(3, 1, EdgeType::kP2C);  // 3 provider of o=1
  builder.AddEdge(3, 4, EdgeType::kP2C);  // 3 provider of t=4 (provider route)
  builder.AddEdge(4, 1, EdgeType::kP2P);  // direct peering t--o
  AsGraph graph = std::move(builder).Build();
  AnnouncementSource source{.node = *graph.IdOf(1)};
  RouteComputation computation(graph, {source});
  const RouteEntry& entry = computation.Route(*graph.IdOf(4));
  EXPECT_EQ(entry.cls, RouteClass::kPeer);
  EXPECT_EQ(entry.length, 1);
}

TEST(Propagation, KeepsAllTiedBestPredecessors) {
  // Two equal-length provider chains from o up to t.
  AsGraphBuilder builder;
  builder.AddEdge(2, 1, EdgeType::kP2C);
  builder.AddEdge(3, 1, EdgeType::kP2C);
  builder.AddEdge(4, 2, EdgeType::kP2C);
  builder.AddEdge(4, 3, EdgeType::kP2C);
  AsGraph graph = std::move(builder).Build();
  AnnouncementSource source{.node = *graph.IdOf(1)};
  RouteComputation computation(graph, {source});
  const auto& preds = computation.Predecessors(*graph.IdOf(4));
  EXPECT_EQ(preds.size(), 2u);
  EXPECT_EQ(computation.Route(*graph.IdOf(4)).length, 2);
}

TEST(Propagation, ReachedSetMatchesTwoStateBfs) {
  AsGraph graph = Fig1Graph();
  for (Asn origin : {kC, kT, kU1, kIspA}) {
    AsId id = *graph.IdOf(origin);
    AnnouncementSource source{.node = id};
    RouteComputation computation(graph, {source});
    EXPECT_EQ(computation.ReachedSet(), ReachableSet(graph, id)) << "origin AS" << origin;
  }
}

TEST(Propagation, ExportPolicyRestrictsDirectNeighbors) {
  AsGraph graph = Fig1Graph();
  AsId c = *graph.IdOf(kC);
  AnnouncementSource source;
  source.node = c;
  source.allowed_neighbors = Bitset(graph.num_ases());
  source.allowed_neighbors->Set(*graph.IdOf(kS));  // announce only to S
  RouteComputation computation(graph, {source});
  EXPECT_TRUE(computation.Route(*graph.IdOf(kU1)).HasRoute());   // via S
  EXPECT_FALSE(computation.Route(*graph.IdOf(kU2)).HasRoute());  // peer not announced to
  EXPECT_FALSE(computation.Route(*graph.IdOf(kP)).HasRoute());   // provider skipped
}

TEST(Propagation, RejectsBadSources) {
  AsGraph graph = Fig1Graph();
  EXPECT_THROW(RouteComputation(graph, {}), InvalidArgument);
  AnnouncementSource s{.node = *graph.IdOf(kC)};
  EXPECT_THROW(RouteComputation(graph, {s, s}), InvalidArgument);
  Bitset excluded(graph.num_ases());
  excluded.Set(*graph.IdOf(kC));
  PropagationOptions options;
  options.excluded = &excluded;
  EXPECT_THROW(RouteComputation(graph, {s}, options), InvalidArgument);
}

TEST(Paths, EnumerationAndMembership) {
  AsGraphBuilder builder;
  builder.AddEdge(2, 1, EdgeType::kP2C);
  builder.AddEdge(3, 1, EdgeType::kP2C);
  builder.AddEdge(4, 2, EdgeType::kP2C);
  builder.AddEdge(4, 3, EdgeType::kP2C);
  AsGraph graph = std::move(builder).Build();
  AnnouncementSource source{.node = *graph.IdOf(1)};
  RouteComputation computation(graph, {source});

  auto paths = EnumerateBestPaths(computation, *graph.IdOf(4));
  EXPECT_EQ(paths.size(), 2u);
  for (const AsPath& path : paths) {
    EXPECT_EQ(path.size(), 3u);
    EXPECT_EQ(path.front(), *graph.IdOf(4));
    EXPECT_EQ(path.back(), *graph.IdOf(1));
    EXPECT_TRUE(IsBestPath(computation, path));
  }
  AsPath bogus{*graph.IdOf(4), *graph.IdOf(1)};
  EXPECT_FALSE(IsBestPath(computation, bogus));

  AsPath deterministic = DeterministicBestPath(computation, *graph.IdOf(4));
  EXPECT_EQ(deterministic.size(), 3u);
  EXPECT_EQ(graph.AsnOf(deterministic[1]), 2u);  // lowest ASN tie-break

  Rng rng(1);
  AsPath sampled = SampleBestPath(computation, *graph.IdOf(4), rng);
  EXPECT_TRUE(IsBestPath(computation, sampled));
}

// ---------------------------------------------------------------------------
// Reliance (Fig 5 example): t holds three best paths, two via x.
// ---------------------------------------------------------------------------

TEST(Reliance, Fig5Example) {
  // o=1; u=2, v=3, w=4 are o's providers; x=5 provider of u and v; y=6
  // provider of w; t=7 provider of x and y.
  AsGraphBuilder builder;
  builder.AddEdge(2, 1, EdgeType::kP2C);
  builder.AddEdge(3, 1, EdgeType::kP2C);
  builder.AddEdge(4, 1, EdgeType::kP2C);
  builder.AddEdge(5, 2, EdgeType::kP2C);
  builder.AddEdge(5, 3, EdgeType::kP2C);
  builder.AddEdge(6, 4, EdgeType::kP2C);
  builder.AddEdge(7, 5, EdgeType::kP2C);
  builder.AddEdge(7, 6, EdgeType::kP2C);
  AsGraph graph = std::move(builder).Build();

  AnnouncementSource source{.node = *graph.IdOf(1)};
  RouteComputation computation(graph, {source});
  RelianceResult result = ComputeReliance(computation);

  // t receives three tied-best paths (the figure's premise).
  EXPECT_DOUBLE_EQ(result.path_counts[*graph.IdOf(7)], 3.0);
  // x appears in 2 of t's 3 best paths, plus its own: rely(x) = 1 + 2/3.
  EXPECT_NEAR(result.reliance[*graph.IdOf(5)], 1.0 + 2.0 / 3.0, 1e-12);
  // y: its own path plus 1 of t's 3.
  EXPECT_NEAR(result.reliance[*graph.IdOf(6)], 1.0 + 1.0 / 3.0, 1e-12);
  // u: own path, 1 of x's 2, 1 of t's 3.
  EXPECT_NEAR(result.reliance[*graph.IdOf(2)], 1.0 + 0.5 + 1.0 / 3.0, 1e-12);
  // w sits on every path of y and 1 of t's 3.
  EXPECT_NEAR(result.reliance[*graph.IdOf(4)], 1.0 + 1.0 + 1.0 / 3.0, 1e-12);
  // t relies on itself exactly once; the origin has no reliance value.
  EXPECT_NEAR(result.reliance[*graph.IdOf(7)], 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(result.reliance[*graph.IdOf(1)], 0.0);
}

TEST(Reliance, FullMeshIsAllOnes) {
  // The paper's flat extreme: everyone peers with everyone; every network
  // relies on every other network for exactly 1 AS (itself).
  AsGraphBuilder builder;
  for (Asn a = 1; a <= 6; ++a) {
    for (Asn b = a + 1; b <= 6; ++b) builder.AddEdge(a, b, EdgeType::kP2P);
  }
  AsGraph graph = std::move(builder).Build();
  AnnouncementSource source{.node = *graph.IdOf(1)};
  RouteComputation computation(graph, {source});
  RelianceResult result = ComputeReliance(computation);
  for (Asn a = 2; a <= 6; ++a) {
    EXPECT_NEAR(result.reliance[*graph.IdOf(a)], 1.0, 1e-12) << "AS" << a;
  }
}

TEST(Reliance, PureHierarchyConcentratesOnProvider) {
  // The paper's hierarchical extreme: o's sole provider carries everything.
  AsGraphBuilder builder;
  builder.AddEdge(2, 1, EdgeType::kP2C);   // provider of o
  builder.AddEdge(2, 3, EdgeType::kP2C);   // siblings behind the provider
  builder.AddEdge(2, 4, EdgeType::kP2C);
  builder.AddEdge(3, 5, EdgeType::kP2C);
  AsGraph graph = std::move(builder).Build();
  AnnouncementSource source{.node = *graph.IdOf(1)};
  RouteComputation computation(graph, {source});
  RelianceResult result = ComputeReliance(computation);
  // Every other network's only path transits the provider: rely = 4.
  EXPECT_NEAR(result.reliance[*graph.IdOf(2)], 4.0, 1e-12);
  EXPECT_THROW(
      {
        AnnouncementSource a{.node = *graph.IdOf(1)};
        AnnouncementSource b{.node = *graph.IdOf(3)};
        RouteComputation two(graph, {a, b});
        ComputeReliance(two);
      },
      InvalidArgument);
}

// ---------------------------------------------------------------------------
// Route leaks.
// ---------------------------------------------------------------------------

TEST(Leak, CustomerLeakAttractsProvider) {
  // P peers with victim V and provides transit to leaker L. P prefers the
  // customer-learned (leaked) route despite its longer AS path.
  AsGraphBuilder builder;
  builder.AddEdge(2, 1, EdgeType::kP2P);   // P=2 peers victim V=1
  builder.AddEdge(2, 3, EdgeType::kP2C);   // P provider of L=3
  AsGraph graph = std::move(builder).Build();

  LeakExperiment experiment(graph, *graph.IdOf(1), LeakConfig{});
  auto outcome = experiment.Run(*graph.IdOf(3));
  ASSERT_TRUE(outcome.has_value());
  // P is the only third AS; it is detoured.
  EXPECT_EQ(outcome->detoured_count, 1u);
  EXPECT_DOUBLE_EQ(outcome->fraction_ases_detoured, 1.0);
}

TEST(Leak, PeerLockingBlocksTheLeak) {
  AsGraphBuilder builder;
  builder.AddEdge(2, 1, EdgeType::kP2P);
  builder.AddEdge(2, 3, EdgeType::kP2C);
  AsGraph graph = std::move(builder).Build();

  LeakConfig config;
  config.peer_locked = Bitset(graph.num_ases());
  config.peer_locked->Set(*graph.IdOf(2));  // P locks the victim's prefix
  LeakExperiment experiment(graph, *graph.IdOf(1), config);
  auto outcome = experiment.Run(*graph.IdOf(3));
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->detoured_count, 0u);
}

TEST(Leak, LockedAsRejectsRelayedLegitimateRoutes) {
  // Erratum semantics: a locking AS accepts the prefix only directly from
  // the victim — even legitimate routes relayed by a third party are
  // dropped, so a leak can never propagate through a locking AS.
  AsGraphBuilder builder;
  builder.AddEdge(2, 1, EdgeType::kP2C);   // 2 provider of victim 1
  builder.AddEdge(3, 2, EdgeType::kP2C);   // 3 provider of 2; 3 locks
  builder.AddEdge(3, 4, EdgeType::kP2C);   // 4 hangs below the locker
  AsGraph graph = std::move(builder).Build();
  LeakConfig config;
  config.peer_locked = Bitset(graph.num_ases());
  config.peer_locked->Set(*graph.IdOf(3));
  LeakExperiment experiment(graph, *graph.IdOf(1), config);
  // The locker drops the relayed route: nothing reaches 3 or 4.
  EXPECT_FALSE(experiment.baseline().Route(*graph.IdOf(3)).HasRoute());
  EXPECT_FALSE(experiment.baseline().Route(*graph.IdOf(4)).HasRoute());
}

TEST(Leak, NoRouteNoLeak) {
  // A leaker with no route to the victim has nothing to re-announce.
  AsGraphBuilder builder;
  builder.AddEdge(2, 1, EdgeType::kP2C);
  builder.AddEdge(4, 3, EdgeType::kP2C);  // disconnected island {3,4}
  AsGraph graph = std::move(builder).Build();
  LeakExperiment experiment(graph, *graph.IdOf(1), LeakConfig{});
  EXPECT_FALSE(experiment.Run(*graph.IdOf(3)).has_value());
  EXPECT_FALSE(experiment.Run(*graph.IdOf(1)).has_value());  // leaker == victim
}

TEST(Leak, OriginateModelIgnoresMissingRoute) {
  AsGraphBuilder builder;
  builder.AddEdge(2, 1, EdgeType::kP2C);
  builder.AddEdge(2, 3, EdgeType::kP2C);
  AsGraph graph = std::move(builder).Build();
  LeakConfig config;
  config.model = LeakModel::kOriginate;
  LeakExperiment experiment(graph, *graph.IdOf(1), config);
  auto outcome = experiment.Run(*graph.IdOf(3));
  ASSERT_TRUE(outcome.has_value());
  // Hijacker originates with length 0 and splits the provider's choice:
  // both routes are customer class, length 1 — tie includes the hijack.
  EXPECT_EQ(outcome->detoured_count, 1u);
}

TEST(Leak, PreErratumLockingLeaksThroughIntermediaries) {
  // The erratum's exact scenario: P (AS2) peer-locks the victim V (AS1).
  // The leaker L (AS3) is P's customer twice over: directly, and via the
  // intermediary M (AS4). Under the original (direct-only) filter, P drops
  // the leak on its direct session with L but accepts the same leaked route
  // relayed by M; the corrected semantics drop both.
  AsGraphBuilder builder;
  builder.AddEdge(2, 1, EdgeType::kP2P);   // P peers the victim
  builder.AddEdge(2, 3, EdgeType::kP2C);   // P provider of L
  builder.AddEdge(2, 4, EdgeType::kP2C);   // P provider of M
  builder.AddEdge(4, 3, EdgeType::kP2C);   // M provider of L
  AsGraph graph = std::move(builder).Build();
  AsId victim = *graph.IdOf(1);
  AsId leaker = *graph.IdOf(3);

  Bitset locked(graph.num_ases());
  locked.Set(*graph.IdOf(2));

  LeakConfig pre;
  pre.peer_locked = locked;
  pre.lock_mode = PeerLockMode::kDirectOnly;
  LeakExperiment pre_experiment(graph, victim, pre);
  auto pre_outcome = pre_experiment.Run(leaker);
  ASSERT_TRUE(pre_outcome.has_value());
  // P prefers the (laundered) customer-learned leak over its peer route.
  EXPECT_GE(pre_outcome->detoured_count, 2u);  // P and M at least

  LeakConfig full;
  full.peer_locked = locked;
  full.lock_mode = PeerLockMode::kFull;
  LeakExperiment full_experiment(graph, victim, full);
  auto full_outcome = full_experiment.Run(leaker);
  ASSERT_TRUE(full_outcome.has_value());
  // The corrected filter keeps P clean, so nothing upstream detours; only
  // the leaker's own customer cone (M) can still be poisoned.
  EXPECT_LT(full_outcome->detoured_count, pre_outcome->detoured_count);
}

// ---------------------------------------------------------------------------
// Property tests over generated topologies.
// ---------------------------------------------------------------------------

class BgpPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static World MakeWorld(std::uint64_t seed) {
    GeneratorParams params = GeneratorParams::Era2020(1200);
    params.seed = seed;
    return GenerateWorld(params);
  }
};

TEST_P(BgpPropertyTest, EngineAgreesWithTwoStateBfs) {
  World world = MakeWorld(GetParam());
  Rng rng(GetParam() ^ 0xabc);
  ReachabilityEngine engine(world.full_graph);
  for (int i = 0; i < 8; ++i) {
    AsId origin = static_cast<AsId>(rng.UniformU64(world.num_ases()));
    AnnouncementSource source{.node = origin};
    RouteComputation computation(world.full_graph, {source});
    EXPECT_EQ(computation.ReachedSet(), engine.Compute(origin));
  }
}

TEST_P(BgpPropertyTest, NestedExclusionsShrinkReachability) {
  World world = MakeWorld(GetParam());
  Rng rng(GetParam() ^ 0xdef);
  ReachabilityEngine engine(world.full_graph);
  Bitset hierarchy = world.tiers.HierarchyMask();
  for (int i = 0; i < 10; ++i) {
    AsId origin = static_cast<AsId>(rng.UniformU64(world.num_ases()));
    Bitset pf(world.num_ases());
    for (const Neighbor& nb : world.full_graph.Providers(origin)) pf.Set(nb.id);
    Bitset t1f = pf;
    t1f |= world.tiers.tier1_mask;
    t1f.Reset(origin);
    Bitset hf = pf;
    hf |= hierarchy;
    hf.Reset(origin);

    Bitset r_pf = engine.Compute(origin, &pf);
    Bitset r_t1f = engine.Compute(origin, &t1f);
    Bitset r_hf = engine.Compute(origin, &hf);
    EXPECT_TRUE(r_hf.IsSubsetOf(r_t1f));
    EXPECT_TRUE(r_t1f.IsSubsetOf(r_pf));
  }
}

TEST_P(BgpPropertyTest, EnumeratedPathsAreValleyFree) {
  World world = MakeWorld(GetParam());
  Rng rng(GetParam() ^ 0x77);
  for (int i = 0; i < 4; ++i) {
    AsId origin = static_cast<AsId>(rng.UniformU64(world.num_ases()));
    AnnouncementSource source{.node = origin};
    RouteComputation computation(world.full_graph, {source});
    for (int j = 0; j < 20; ++j) {
      AsId node = static_cast<AsId>(rng.UniformU64(world.num_ases()));
      for (const AsPath& path : EnumerateBestPaths(computation, node, 8)) {
        EXPECT_EQ(path.size() - 1, computation.Route(node).length);
        // Path order is node -> origin, the reverse of announcement flow
        // (origin: up* peer? down*). Reversed, a valley-free path is: zero
        // or more steps to our provider (the announcement was descending),
        // at most one peer step, then only steps to our customers (the
        // announcement was ascending from the origin).
        int phase = 0;  // 0 = still in the reversed "down" segment
        for (std::size_t k = 0; k + 1 < path.size(); ++k) {
          auto rel = world.full_graph.RelationshipBetween(path[k], path[k + 1]);
          ASSERT_TRUE(rel.has_value());
          if (*rel == Relationship::kProvider) {
            EXPECT_EQ(phase, 0) << "descent resumed after peer/ascent";
          } else if (*rel == Relationship::kPeer) {
            EXPECT_EQ(phase, 0) << "second lateral step";
            phase = 1;
          } else {
            phase = 1;  // customer step: the origin-side ascent
          }
        }
      }
    }
  }
}

TEST_P(BgpPropertyTest, RelianceBoundsAndSelfTerm) {
  World world = MakeWorld(GetParam());
  AsId origin = world.Cloud("Google").id;
  AnnouncementSource source{.node = origin};
  RouteComputation computation(world.full_graph, {source});
  RelianceResult result = ComputeReliance(computation);
  std::size_t reachable = computation.ReachedCount();
  for (AsId node = 0; node < world.num_ases(); ++node) {
    if (node == origin) continue;
    if (computation.Route(node).HasRoute()) {
      EXPECT_GE(result.reliance[node], 1.0 - 1e-9);
      EXPECT_LE(result.reliance[node], static_cast<double>(reachable) + 1e-6);
    } else {
      EXPECT_DOUBLE_EQ(result.reliance[node], 0.0);
    }
  }
}

TEST_P(BgpPropertyTest, LeakDetourShrinksWithLocking) {
  World world = MakeWorld(GetParam());
  AsId victim = world.Cloud("Google").id;
  Rng rng(GetParam() ^ 0x5eed);

  Bitset lock_all(world.num_ases());
  for (const Neighbor& nb : world.full_graph.NeighborsOf(victim)) lock_all.Set(nb.id);
  Bitset lock_t1 = lock_all;
  lock_t1 &= world.tiers.tier1_mask;

  LeakConfig none;
  LeakConfig t1;
  t1.peer_locked = lock_t1;
  LeakConfig all;
  all.peer_locked = lock_all;
  LeakExperiment e_none(world.full_graph, victim, none);
  LeakExperiment e_t1(world.full_graph, victim, t1);
  LeakExperiment e_all(world.full_graph, victim, all);

  // Locking is not per-trial monotone (a locked AS stops re-exporting
  // customer-learned clean routes to its peers), but in aggregate wider
  // locking must reduce leak propagation — the paper's Fig 8 claim.
  OnlineStats s_none, s_t1, s_all;
  int trials = 0;
  while (trials < 25) {
    AsId leaker = static_cast<AsId>(rng.UniformU64(world.num_ases()));
    auto o_none = e_none.Run(leaker);
    if (!o_none) continue;
    auto o_t1 = e_t1.Run(leaker);
    auto o_all = e_all.Run(leaker);
    s_none.Add(o_none->fraction_ases_detoured);
    s_t1.Add(o_t1 ? o_t1->fraction_ases_detoured : 0.0);
    s_all.Add(o_all ? o_all->fraction_ases_detoured : 0.0);
    ++trials;
  }
  EXPECT_LE(s_all.mean(), s_t1.mean() + 0.02);
  EXPECT_LE(s_t1.mean(), s_none.mean() + 0.02);
  EXPECT_LT(s_all.mean(), s_none.mean() + 1e-9);
}

TEST_P(BgpPropertyTest, OriginationHijackIsAtLeastAsAttractiveAsReannounce) {
  // End-to-end kOriginate coverage: the hijacked route enters competition
  // with base length 0 instead of the leaker's real path length, so trial
  // for trial it detours a superset of the re-announce leak's victims. An
  // origination hijack also needs no baseline route, so every non-victim
  // AS is a valid hijacker.
  World world = MakeWorld(GetParam());
  AsId victim = world.Cloud("Google").id;
  Rng rng(GetParam() ^ 0x0816);

  LeakConfig reannounce;
  LeakConfig originate;
  originate.model = LeakModel::kOriginate;
  LeakExperiment e_reannounce(world.full_graph, victim, reannounce);
  LeakExperiment e_originate(world.full_graph, victim, originate);

  LeakWorkspace workspace;
  int trials = 0;
  while (trials < 15) {
    AsId leaker = static_cast<AsId>(rng.UniformU64(world.num_ases()));
    if (leaker == victim) continue;
    EXPECT_TRUE(e_originate.CanLeak(leaker)) << "hijacker needs no route";
    auto o_originate = e_originate.Run(leaker, workspace);
    ASSERT_TRUE(o_originate.has_value());
    auto o_reannounce = e_reannounce.Run(leaker, workspace);
    if (!o_reannounce) continue;  // no route to re-announce; hijack still ran
    EXPECT_GE(o_originate->detoured_count, o_reannounce->detoured_count)
        << "leaker " << leaker;
    ++trials;
  }
}

TEST_P(BgpPropertyTest, DirectOnlyLockingFiltersLessThanErratumSemantics) {
  // End-to-end kDirectOnly coverage on a generated topology: the
  // pre-erratum filter only drops leaks on sessions directly with the
  // leaker, so laundering through an intermediary survives — in aggregate
  // it must never beat the corrected (kFull) semantics.
  World world = MakeWorld(GetParam());
  AsId victim = world.Cloud("Google").id;
  Rng rng(GetParam() ^ 0xd1f);

  Bitset locked(world.num_ases());
  for (const Neighbor& nb : world.full_graph.NeighborsOf(victim)) locked.Set(nb.id);

  LeakConfig direct;
  direct.peer_locked = locked;
  direct.lock_mode = PeerLockMode::kDirectOnly;
  LeakConfig full;
  full.peer_locked = locked;
  full.lock_mode = PeerLockMode::kFull;
  LeakExperiment e_direct(world.full_graph, victim, direct);
  LeakExperiment e_full(world.full_graph, victim, full);

  LeakWorkspace workspace;
  OnlineStats s_direct, s_full;
  int trials = 0;
  while (trials < 25) {
    AsId leaker = static_cast<AsId>(rng.UniformU64(world.num_ases()));
    auto o_direct = e_direct.Run(leaker, workspace);
    if (!o_direct) continue;
    auto o_full = e_full.Run(leaker, workspace);
    s_direct.Add(o_direct->fraction_ases_detoured);
    s_full.Add(o_full ? o_full->fraction_ases_detoured : 0.0);
    ++trials;
  }
  EXPECT_LE(s_full.mean(), s_direct.mean() + 1e-9)
      << "erratum semantics must filter at least as much as the original";
}

INSTANTIATE_TEST_SUITE_P(Seeds, BgpPropertyTest, ::testing::Values(11, 22, 33));

}  // namespace
}  // namespace flatnet
