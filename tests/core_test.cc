#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/internet.h"
#include "core/leak_scenarios.h"
#include "core/reachability_analysis.h"
#include "core/serialize.h"
#include "bgp/reachability.h"
#include "topogen/generate.h"
#include "util/error.h"

namespace flatnet {
namespace {

class CoreTest : public ::testing::Test {
 protected:
  static const World& world() {
    static const World w = [] {
      GeneratorParams params = GeneratorParams::Era2020(1500);
      params.seed = 4242;
      return GenerateWorld(params);
    }();
    return w;
  }
  static const Internet& internet() {
    static const Internet net(world().full_graph, world().tiers, world().metadata);
    return net;
  }
};

TEST_F(CoreTest, ExclusionMasksNest) {
  for (AsId origin : {world().Cloud("Google").id, world().tiers.tier1[0],
                      world().tiers.tier2[0], AsId{1400}}) {
    Bitset pf = internet().ProviderFreeExclusion(origin);
    Bitset t1f = internet().Tier1FreeExclusion(origin);
    Bitset hf = internet().HierarchyFreeExclusion(origin);
    EXPECT_TRUE(pf.IsSubsetOf(t1f));
    EXPECT_TRUE(t1f.IsSubsetOf(hf));
    EXPECT_FALSE(hf.Test(origin)) << "origin must never be excluded";
  }
}

TEST_F(CoreTest, ReachabilitySummariesAreMonotone) {
  for (AsId origin : {world().Cloud("Google").id, world().Cloud("Amazon").id,
                      world().tiers.tier2[0]}) {
    ReachabilitySummary summary = AnalyzeReachability(internet(), origin);
    EXPECT_GE(summary.provider_free, summary.tier1_free);
    EXPECT_GE(summary.tier1_free, summary.hierarchy_free);
    EXPECT_GT(summary.hierarchy_free, 0u);
  }
}

TEST_F(CoreTest, Tier1ProviderFreeIsMaximal) {
  // Tier-1s have no providers: provider-free == full reachability.
  AsId t1 = world().tiers.tier1[0];
  ReachabilitySummary summary = AnalyzeReachability(internet(), t1);
  std::size_t full = ReachableCount(internet().graph(), t1);
  EXPECT_EQ(summary.provider_free, full);
}

TEST_F(CoreTest, SweepMatchesSingleOriginAnalysis) {
  std::vector<std::uint32_t> sweep = HierarchyFreeSweep(internet());
  ASSERT_EQ(sweep.size(), internet().num_ases());
  for (AsId origin : {AsId{0}, world().Cloud("IBM").id, AsId{777}, AsId{1499}}) {
    ReachabilitySummary summary = AnalyzeReachability(internet(), origin);
    EXPECT_EQ(sweep[origin], summary.hierarchy_free) << "origin " << origin;
  }
}

TEST_F(CoreTest, UnreachableSetComplementsReachability) {
  AsId google = world().Cloud("Google").id;
  ReachabilitySummary summary = AnalyzeReachability(internet(), google);
  Bitset unreachable = HierarchyFreeUnreachable(internet(), google);
  EXPECT_EQ(unreachable.Count() + summary.hierarchy_free, internet().num_ases() - 1);
  TypeBreakdown breakdown = BreakdownByType(internet(), unreachable);
  EXPECT_EQ(breakdown.Total(), unreachable.Count());
}

TEST_F(CoreTest, PathLengthsCoverReachableSet) {
  AsId google = world().Cloud("Google").id;
  PathLengthBins bins = PathLengths(internet(), google);
  std::size_t full = ReachableCount(internet().graph(), google);
  EXPECT_DOUBLE_EQ(bins.Total(), static_cast<double>(full));
  // Every 1-hop destination is a direct neighbor — but not every neighbor
  // is 1 hop: Gao-Rexford lets a peer prefer a longer customer-learned
  // route over the direct peering, so one_hop can fall short of the degree.
  EXPECT_LE(bins.one_hop, static_cast<double>(internet().graph().Degree(google)));
  EXPECT_GT(bins.one_hop, 0.8 * static_cast<double>(internet().graph().Degree(google)));

  // Weighted variant: weights of 0 drop ASes from the bins.
  std::vector<double> weights(internet().num_ases(), 0.0);
  weights[world().tiers.tier1[0]] = 2.5;
  PathLengthBins weighted = PathLengths(internet(), google, &weights);
  EXPECT_DOUBLE_EQ(weighted.Total(), 2.5);
}

TEST_F(CoreTest, LeakScenarioSeriesFillTrials) {
  AsId google = world().Cloud("Google").id;
  LeakTrialSeries series =
      RunLeakScenario(internet(), google, LeakScenario::kAnnounceAll, 20, 7);
  EXPECT_EQ(series.fraction_ases_detoured.size(), 20u);
  for (double f : series.fraction_ases_detoured) {
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
  }
  EXPECT_TRUE(series.fraction_users_detoured.empty());  // no users passed

  std::vector<double> users = world().UserArray();
  LeakTrialSeries weighted =
      RunLeakScenario(internet(), google, LeakScenario::kAnnounceAll, 10, 7, &users);
  EXPECT_EQ(weighted.fraction_users_detoured.size(), 10u);
}

TEST_F(CoreTest, BaselineProducesSamples) {
  BaselineResult baseline = AverageResilienceBaseline(internet(), 4, 5, 3);
  EXPECT_EQ(baseline.fractions.size(), 20u);
  ASSERT_EQ(baseline.per_victim.size(), 4u);
  std::size_t collected = 0;
  for (const BaselineVictimStats& v : baseline.per_victim) {
    EXPECT_EQ(v.requested, 5u);
    EXPECT_GE(v.attempts, v.collected);
    collected += v.collected;
  }
  EXPECT_EQ(collected, baseline.fractions.size());
  // Victims are drawn without replacement: all distinct.
  std::vector<AsId> victims;
  for (const BaselineVictimStats& v : baseline.per_victim) victims.push_back(v.victim);
  std::sort(victims.begin(), victims.end());
  EXPECT_EQ(std::unique(victims.begin(), victims.end()), victims.end());
}

TEST_F(CoreTest, SerializeRoundTrip) {
  std::string stem = (std::filesystem::temp_directory_path() / "flatnet_test_cache").string();
  SaveInternet(internet(), stem);
  ASSERT_TRUE(InternetCacheExists(stem));
  Internet loaded = LoadInternet(stem);
  EXPECT_EQ(loaded.num_ases(), internet().num_ases());
  EXPECT_EQ(loaded.graph().num_edges(), internet().graph().num_edges());
  EXPECT_EQ(loaded.tiers().tier1.size(), internet().tiers().tier1.size());
  EXPECT_EQ(loaded.tiers().tier2.size(), internet().tiers().tier2.size());

  // Identity is by ASN after a round trip (ids may permute): compare a
  // couple of named rows and a reachability figure.
  AsId google_orig = world().Cloud("Google").id;
  Asn google_asn = internet().graph().AsnOf(google_orig);
  auto google_loaded = loaded.graph().IdOf(google_asn);
  ASSERT_TRUE(google_loaded.has_value());
  EXPECT_EQ(loaded.NameOf(*google_loaded), "Google");
  EXPECT_NEAR(loaded.metadata().Get(*google_loaded).users,
              internet().metadata().Get(google_orig).users, 1e-6);

  ReachabilitySummary before = AnalyzeReachability(internet(), google_orig);
  ReachabilitySummary after = AnalyzeReachability(loaded, *google_loaded);
  EXPECT_EQ(before.provider_free, after.provider_free);
  EXPECT_EQ(before.tier1_free, after.tier1_free);
  EXPECT_EQ(before.hierarchy_free, after.hierarchy_free);

  std::filesystem::remove(stem + ".as-rel.txt");
  std::filesystem::remove(stem + ".meta.tsv");
}

TEST(CoreErrors, MismatchedSizesThrow) {
  AsGraphBuilder builder;
  builder.AddEdge(1, 2, EdgeType::kP2C);
  AsGraph graph = std::move(builder).Build();
  TierSets tiers;  // empty masks of size 0
  EXPECT_THROW(Internet(graph, tiers, AsMetadata(2)), InvalidArgument);
}

TEST(CoreErrors, LoadMissingCacheThrows) {
  EXPECT_FALSE(InternetCacheExists("/nonexistent/stem"));
  EXPECT_THROW(LoadInternet("/nonexistent/stem"), Error);
}

TEST(CoreErrors, MalformedMetaLineNamesFileAndLine) {
  std::string stem =
      (std::filesystem::temp_directory_path() / "flatnet_badmeta_test").string();
  {
    std::ofstream rel(stem + ".as-rel.txt");
    rel << "1|2|-1\n";
    std::ofstream meta(stem + ".meta.tsv");
    meta << "1\tAS1\ttransit\t0\t0\n";
    meta << "2\tAS2\tnot-enough-fields\n";  // line 2: wrong field count
  }
  try {
    LoadInternet(stem);
    FAIL() << "expected malformed metadata to throw";
  } catch (const Error& e) {
    std::string what = e.what();
    EXPECT_NE(what.find(stem + ".meta.tsv:2"), std::string::npos) << what;
  }
  std::filesystem::remove(stem + ".as-rel.txt");
  std::filesystem::remove(stem + ".meta.tsv");
}

}  // namespace
}  // namespace flatnet
