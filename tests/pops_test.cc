#include <gtest/gtest.h>

#include <set>

#include "pops/pop_map.h"
#include "pops/geolocate.h"
#include "pops/rdns.h"
#include "topogen/generate.h"

namespace flatnet {
namespace {

class PopsTest : public ::testing::Test {
 protected:
  static const World& world() {
    static const World w = [] {
      GeneratorParams params = GeneratorParams::Era2020(1200);
      return GenerateWorld(params);
    }();
    return w;
  }
  static const std::vector<PopDeployment>& deployments() {
    static const std::vector<PopDeployment> d = BuildDeployments(world());
    return d;
  }
};

TEST_F(PopsTest, DeploymentsCoverCloudsAndTiers) {
  std::size_t clouds = 0, transits = 0;
  for (const PopDeployment& d : deployments()) {
    EXPECT_FALSE(d.cities.empty()) << d.name;
    d.is_cloud ? ++clouds : ++transits;
  }
  EXPECT_EQ(clouds, 4u);  // the study clouds; Facebook is not deployed here
  EXPECT_EQ(transits, world().tiers.tier1.size() + world().tiers.tier2.size());
}

TEST_F(PopsTest, SplitPartitionsCities) {
  CityPresenceSplit split = SplitCityPresence(deployments());
  std::set<CityIndex> cloud = CohortCities(deployments(), true);
  std::set<CityIndex> transit = CohortCities(deployments(), false);
  EXPECT_EQ(split.both.size() + split.cloud_only.size(), cloud.size());
  EXPECT_EQ(split.both.size() + split.transit_only.size(), transit.size());
  for (CityIndex c : split.cloud_only) EXPECT_FALSE(transit.contains(c));
  for (CityIndex c : split.transit_only) EXPECT_FALSE(cloud.contains(c));
}

TEST_F(PopsTest, CoverageRowsAreOrderedByRadius) {
  for (const ProviderCoverage& row : PerProviderCoverage(deployments())) {
    EXPECT_LE(row.coverage_500km, row.coverage_700km) << row.name;
    EXPECT_LE(row.coverage_700km, row.coverage_1000km) << row.name;
    EXPECT_GT(row.coverage_1000km, 0.0) << row.name;
  }
}

TEST(RdnsProfile, NamedNetworksMatchTable3) {
  EXPECT_EQ(ProfileFor("Amazon").style, RdnsStyle::kNone);
  EXPECT_EQ(ProfileFor("Amazon").hostname_count, 0u);
  EXPECT_DOUBLE_EQ(ProfileFor("NTT").pop_coverage, 1.0);
  EXPECT_EQ(ProfileFor("Google").hostname_count, 29833u);
  EXPECT_NEAR(ProfileFor("Microsoft").pop_coverage, 0.453, 1e-9);
  // Unknown networks fall back to the paper's overall 73%.
  RdnsProfile other = ProfileFor("SomeNet");
  EXPECT_NEAR(other.pop_coverage, 0.73, 1e-9);
  EXPECT_EQ(other.domain, "somenet.example.net");
}

class RdnsTest : public PopsTest {
 protected:
  static const RdnsDatabase& rdns() {
    static const RdnsDatabase db(world(), deployments(), 99);
    return db;
  }
};

TEST_F(RdnsTest, AmazonHasNoEntries) {
  AsId amazon = world().Cloud("Amazon").id;
  EXPECT_TRUE(rdns().EntriesOf(amazon).empty());
  EXPECT_EQ(rdns().ConfirmedPopCount(amazon), 0u);
}

TEST_F(RdnsTest, LookupRoundTrip) {
  ASSERT_FALSE(rdns().entries().empty());
  const RdnsEntry& entry = rdns().entries().front();
  auto hostname = rdns().Lookup(entry.addr);
  ASSERT_TRUE(hostname.has_value());
  EXPECT_EQ(*hostname, entry.hostname);
  EXPECT_FALSE(rdns().Lookup(Ipv4Address(203, 0, 113, 1)).has_value());
}

TEST_F(RdnsTest, ManualExtractionRecoversTrueCity) {
  std::size_t correct = 0, total = 0;
  for (const RdnsEntry& entry : rdns().entries()) {
    auto city = ExtractLocationManual(entry.hostname);
    ASSERT_TRUE(city.has_value()) << entry.hostname;
    correct += (*city == entry.true_city);
    if (++total >= 2000) break;
  }
  // IATA codes embed unambiguously; extraction is exact.
  EXPECT_EQ(correct, total);
}

TEST_F(RdnsTest, AliasGroupsShareRouters) {
  auto groups = GroupAliases(rdns().entries());
  EXPECT_FALSE(groups.empty());
  std::size_t multi = 0;
  for (const auto& [hostname, addrs] : groups) {
    EXPECT_GE(addrs.size(), 1u);
    if (addrs.size() > 1) ++multi;
  }
  EXPECT_GT(multi, 0u);  // MIDAR-style aliasing exists
}

TEST_F(RdnsTest, HoihoLearnsConventionsAndAgreesWithManual) {
  AsId ntt = kInvalidAsId;
  for (const PopDeployment& d : deployments()) {
    if (d.name == "NTT") ntt = d.id;
  }
  ASSERT_NE(ntt, kInvalidAsId);
  std::vector<std::string> samples;
  for (const RdnsEntry* entry : rdns().EntriesOf(ntt)) samples.push_back(entry->hostname);
  ASSERT_GT(samples.size(), 100u);
  auto regex = InferNamingRegex(samples);
  ASSERT_TRUE(regex.has_value());
  for (std::size_t i = 0; i < samples.size(); i += 53) {
    EXPECT_EQ(ExtractWithRegex(*regex, samples[i]), ExtractLocationManual(samples[i]))
        << samples[i];
  }
}

TEST(Rdns, HoihoRefusesWithTooFewSamples) {
  std::vector<std::string> few{"ae-1-2.ear1.nyc1.gin.example.net"};
  EXPECT_FALSE(InferNamingRegex(few).has_value());
  std::vector<std::string> garbage(20, "router.example.net");
  EXPECT_FALSE(InferNamingRegex(garbage).has_value());
}

TEST(Rdns, ManualExtractionIgnoresNonLocationTokens) {
  EXPECT_FALSE(ExtractLocationManual("core-1.example.net").has_value());
  auto nyc = ExtractLocationManual("ae-0-11.ear2.nyc3.gin.example.net");
  ASSERT_TRUE(nyc.has_value());
  EXPECT_EQ(WorldCities()[*nyc].name, "New York");
}


class GeolocateTest : public PopsTest {
 protected:
  static const AddressPlan& plan() {
    static const AddressPlan p(world(), 0xfee1);
    return p;
  }
  static const PingMesh& mesh() {
    static const PingMesh m(plan(), /*icmp_filter_fraction=*/0.0, 3);
    return m;
  }
};

TEST_F(GeolocateTest, PingRttScalesWithDistance) {
  Rng rng(1);
  AsId target = world().tiers.tier1[0];
  Ipv4Address addr = plan().InternalAddress(target, 1);
  auto truth_city = plan().CityOf(addr);
  ASSERT_TRUE(truth_city.has_value());

  VantagePoint local{0, *truth_city};
  auto local_rtt = mesh().PingMs(local, addr, rng);
  ASSERT_TRUE(local_rtt.has_value());
  EXPECT_LT(*local_rtt, 1.0);  // same city: sub-millisecond

  // A far-away VP sees a much larger RTT.
  auto cities = WorldCities();
  CityIndex far = 0;
  double best = 0;
  for (CityIndex c = 0; c < cities.size(); ++c) {
    double d = DistanceKm(cities[c].location, cities[*truth_city].location);
    if (d > best) {
      best = d;
      far = c;
    }
  }
  VantagePoint remote{0, far};
  auto remote_rtt = mesh().PingMs(remote, addr, rng);
  ASSERT_TRUE(remote_rtt.has_value());
  EXPECT_GT(*remote_rtt, 50.0);
}

TEST_F(GeolocateTest, IcmpFilteredTargetsNeverAnswer) {
  PingMesh filtered(plan(), /*icmp_filter_fraction=*/1.0, 4);
  Rng rng(2);
  VantagePoint vp{0, 0};
  EXPECT_FALSE(filtered.PingMs(vp, plan().InternalAddress(5, 1), rng).has_value());
}

TEST_F(GeolocateTest, LocatedAnswersAreCorrect) {
  Geolocator geolocator(world(), plan(), mesh(), nullptr, 7);
  EXPECT_GT(geolocator.vantage_point_count(), 50u);
  GeolocationScore score = ScoreGeolocation(world(), plan(), geolocator, 500, 9);
  EXPECT_EQ(score.attempted, 500u);
  EXPECT_GT(score.answered, 50u);
  // The 1 ms RTT gate makes answers essentially always correct.
  EXPECT_GT(score.Precision(), 0.95);
  EXPECT_LT(score.Coverage(), 1.0);
}

TEST_F(GeolocateTest, RdnsHintNarrowsCandidates) {
  RdnsDatabase rdns_with_plan(world(), deployments(), 99, &plan());
  Geolocator geolocator(world(), plan(), mesh(), &rdns_with_plan, 7);
  // Find a border interface of a deployment network that carries a PTR.
  for (const RdnsEntry& entry : rdns_with_plan.entries()) {
    auto owner = plan().OperatorOf(entry.addr);
    if (!owner) continue;
    auto candidates = geolocator.Candidates(entry.addr, *owner);
    ASSERT_EQ(candidates.size(), 1u);   // the hint pins a single city
    EXPECT_EQ(candidates[0], entry.true_city);
    return;
  }
  FAIL() << "no rDNS-covered border interface found";
}

}  // namespace
}  // namespace flatnet
