// Tests for the failure-cascade campaign engine and its columnar result
// store (src/failsim/): trial-for-trial agreement with a direct
// reachability evaluation, knockout-order guarantees, thread-count
// determinism, store round-trip and corruption handling, checkpoint /
// resume, and trial accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "asgraph/as_graph.h"
#include "bgp/hegemony.h"
#include "bgp/propagation.h"
#include "bgp/reachability.h"
#include "failsim/engine.h"
#include "failsim/store.h"
#include "sweep/fingerprint.h"
#include "topogen/generate.h"
#include "util/error.h"

namespace flatnet {
namespace {

using failsim::CampaignFingerprint;
using failsim::FailCampaignOptions;
using failsim::FailCampaignStats;
using failsim::FailCellSpec;
using failsim::FailScenario;
using failsim::FailStore;
using failsim::FailTable;
using failsim::RunFailureCampaign;

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
}

class FailsimTest : public ::testing::Test {
 protected:
  static const World& world() {
    static const World w = [] {
      GeneratorParams params = GeneratorParams::Era2015(500);
      params.seed = 77;
      return GenerateWorld(params);
    }();
    return w;
  }
  static const Internet& internet() {
    static const Internet net(world().full_graph, world().tiers, world().metadata);
    return net;
  }
  // A second, different topology for fingerprint-mismatch tests.
  static const Internet& other_internet() {
    static const Internet net = [] {
      GeneratorParams params = GeneratorParams::Era2015(400);
      params.seed = 78;
      World w = GenerateWorld(params);
      return Internet(w.full_graph, w.tiers, w.metadata);
    }();
    return net;
  }

  // The campaign matrix the tests run: two origins, every scenario,
  // deterministic seeds.
  static std::vector<FailCellSpec> Cells(std::uint32_t trials) {
    std::vector<FailCellSpec> cells;
    AsId origins[] = {world().tiers.tier2[0], world().tiers.tier2[1]};
    std::uint64_t seed = 0xfa11;
    for (AsId origin : origins) {
      for (std::size_t s = 0; s < failsim::kNumFailScenarios; ++s) {
        FailCellSpec spec;
        spec.origin = origin;
        spec.scenario = static_cast<FailScenario>(s);
        spec.severity = spec.scenario == FailScenario::kLinkSet ? 2 : 0;
        spec.seed = seed++;
        spec.trials = trials;
        cells.push_back(spec);
      }
    }
    return cells;
  }
};

// Every AS-knockout trial must agree with an independent evaluation that
// takes the cell's published knockout order (`targets`), masks it out of
// a fresh ReachabilityEngine, and rederives the damage metrics. This
// pins the slot bookkeeping: a trial written into the wrong slot or a
// mask leaking between trials shows up as a mismatch.
TEST_F(FailsimTest, TrialsMatchDirectEvaluation) {
  std::vector<FailCellSpec> cells = Cells(10);
  FailTable table = RunFailureCampaign(internet(), cells);
  ASSERT_EQ(table.cells.size(), cells.size());

  ReachabilityEngine engine(internet().graph());
  Bitset mask(internet().num_ases());
  for (const failsim::FailCellResult& cell : table.cells) {
    if (cell.spec.scenario == FailScenario::kLinkSet) continue;
    Bitset baseline = engine.Compute(cell.spec.origin);
    ASSERT_EQ(cell.baseline, baseline.Count() - 1);
    for (std::size_t t = 0; t < cell.collected(); ++t) {
      mask.ResetAll();
      std::size_t knocked_reachable = 0;
      std::size_t knockout = cell.spec.scenario == FailScenario::kHegemonyCascade ? t + 1 : 1;
      std::size_t first = cell.spec.scenario == FailScenario::kHegemonyCascade ? 0 : t;
      for (std::size_t k = 0; k < knockout; ++k) {
        AsId target = cell.targets[first + k];
        mask.Set(target);
        if (baseline.Test(target)) ++knocked_reachable;
      }
      std::size_t damaged = engine.Count(cell.spec.origin, &mask);
      double base = static_cast<double>(cell.baseline);
      double disconnected =
          base > static_cast<double>(damaged) ? base - static_cast<double>(damaged) : 0.0;
      double collateral =
          std::max(0.0, disconnected - static_cast<double>(knocked_reachable));
      EXPECT_DOUBLE_EQ(cell.disconnected[t], disconnected)
          << failsim::ToString(cell.spec.scenario) << " trial " << t;
      EXPECT_DOUBLE_EQ(cell.loss_ases[t], base > 0.0 ? collateral / base : 0.0)
          << failsim::ToString(cell.spec.scenario) << " trial " << t;
    }
  }
}

// A kTier1 cell sized to the Tier-1 clique fails every Tier-1 exactly
// once: the targets are a permutation of the clique (minus the origin).
TEST_F(FailsimTest, Tier1CellCoversTheCliqueOnce) {
  std::vector<AsId> tier1 = world().tiers.tier1;
  FailCellSpec spec;
  spec.origin = world().tiers.tier2[0];
  spec.scenario = FailScenario::kTier1;
  spec.seed = 21;
  spec.trials = static_cast<std::uint32_t>(tier1.size());
  FailTable table = RunFailureCampaign(internet(), {spec});

  const failsim::FailCellResult& cell = table.cells[0];
  EXPECT_EQ(cell.collected(), tier1.size());
  EXPECT_FALSE(cell.UnderCollected());
  std::vector<AsId> targets = cell.targets;
  std::sort(targets.begin(), targets.end());
  std::sort(tier1.begin(), tier1.end());
  EXPECT_EQ(targets, tier1);
}

// The cascade cell's knockout order IS the hegemony ranking: trial t
// fails the top-(t+1) prefix.
TEST_F(FailsimTest, HegemonyCascadeFollowsTheRanking) {
  FailCellSpec spec;
  spec.origin = world().tiers.tier2[1];
  spec.scenario = FailScenario::kHegemonyCascade;
  spec.seed = 4;
  spec.trials = 6;
  FailCampaignOptions options;
  options.hegemony_trim = 0.1;
  FailTable table = RunFailureCampaign(internet(), {spec}, options);

  RouteComputation computation(internet().graph(), {{.node = spec.origin}});
  HegemonyResult hegemony = ComputeHegemony(computation, {.trim = 0.1});
  std::vector<AsId> ranking = HegemonyRanking(hegemony);
  const failsim::FailCellResult& cell = table.cells[0];
  ASSERT_LE(cell.collected(), ranking.size());
  ASSERT_EQ(cell.targets.size(), cell.collected());
  for (std::size_t t = 0; t < cell.targets.size(); ++t) {
    EXPECT_EQ(cell.targets[t], ranking[t]) << "cascade position " << t;
  }
  // Deeper cascades can only disconnect more: the damage is monotone.
  for (std::size_t t = 1; t < cell.collected(); ++t) {
    EXPECT_GE(cell.disconnected[t], cell.disconnected[t - 1]);
  }
}

TEST_F(FailsimTest, ThreadAndChunkCountDoNotChangeStoreBytes) {
  std::vector<FailCellSpec> cells = Cells(12);
  std::string reference_path = TempPath("flatnet_failsim_t1.fail");
  std::string variant_path = TempPath("flatnet_failsim_t8.fail");

  FailCampaignOptions reference;
  reference.threads = 1;
  reference.chunk_trials = 64;
  failsim::WriteFailStore(reference_path, RunFailureCampaign(internet(), cells, reference));

  // More threads than cores and a chunk size that straddles cell
  // boundaries must not change a single byte.
  FailCampaignOptions variant;
  variant.threads = 8;
  variant.chunk_trials = 5;
  failsim::WriteFailStore(variant_path, RunFailureCampaign(internet(), cells, variant));

  EXPECT_EQ(ReadFileBytes(variant_path), ReadFileBytes(reference_path));
  std::filesystem::remove(reference_path);
  std::filesystem::remove(variant_path);
}

TEST_F(FailsimTest, UserWeightedColumnMatchesDirectEvaluation) {
  std::vector<double> users(internet().num_ases());
  for (AsId id = 0; id < internet().num_ases(); ++id) {
    users[id] = internet().metadata().Get(id).users;
  }
  FailCellSpec spec;
  spec.origin = world().tiers.tier2[0];
  spec.scenario = FailScenario::kSingleAs;
  spec.seed = 9;
  spec.trials = 8;
  FailCampaignOptions options;
  options.users = &users;
  FailTable table = RunFailureCampaign(internet(), {spec}, options);
  ASSERT_TRUE(table.has_users);

  const failsim::FailCellResult& cell = table.cells[0];
  ASSERT_EQ(cell.loss_users.size(), cell.collected());
  ReachabilityEngine engine(internet().graph());
  Bitset baseline = engine.Compute(spec.origin);
  double baseline_users = 0.0;
  for (AsId id = 0; id < internet().num_ases(); ++id) {
    if (id != spec.origin && baseline.Test(id)) baseline_users += users[id];
  }
  Bitset mask(internet().num_ases());
  Bitset damaged(internet().num_ases());
  for (std::size_t t = 0; t < cell.collected(); ++t) {
    mask.ResetAll();
    mask.Set(cell.targets[t]);
    engine.ComputeInto(spec.origin, &mask, damaged);
    double lost = 0.0;
    for (AsId id = 0; id < internet().num_ases(); ++id) {
      if (baseline.Test(id) && !damaged.Test(id) && !mask.Test(id)) lost += users[id];
    }
    EXPECT_DOUBLE_EQ(cell.loss_users[t], baseline_users > 0.0 ? lost / baseline_users : 0.0)
        << "trial " << t;
  }
}

TEST_F(FailsimTest, StoreRoundTripsAndValidates) {
  std::vector<FailCellSpec> cells = Cells(6);
  FailTable table = RunFailureCampaign(internet(), cells);
  std::string path = TempPath("flatnet_failsim_roundtrip.fail");
  failsim::WriteFailStore(path, table);

  FailStore store = FailStore::Load(path);
  EXPECT_NO_THROW(store.ValidateAgainst(internet()));
  EXPECT_EQ(store.fingerprint(), sweep::TopologyFingerprint(internet()));
  EXPECT_EQ(store.campaign_fingerprint(), table.campaign_fingerprint);
  EXPECT_FALSE(store.has_users());
  ASSERT_EQ(store.num_cells(), cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(store.cell(i).spec, cells[i]) << "cell " << i;
    EXPECT_EQ(store.cell(i).baseline, table.cells[i].baseline) << "cell " << i;
    EXPECT_EQ(store.cell(i).attempts, table.cells[i].attempts) << "cell " << i;
    EXPECT_EQ(store.cell(i).loss_ases, table.cells[i].loss_ases) << "cell " << i;
    EXPECT_EQ(store.cell(i).disconnected, table.cells[i].disconnected) << "cell " << i;
    // The knockout order is engine output, never persisted.
    EXPECT_TRUE(store.cell(i).targets.empty()) << "cell " << i;
  }

  EXPECT_EQ(store.FindCell(cells[1].origin, cells[1].scenario), 1u);
  EXPECT_EQ(store.FindCell(static_cast<AsId>(internet().num_ases() - 1),
                           FailScenario::kSingleAs),
            FailStore::npos);

  EXPECT_THROW(store.ValidateAgainst(other_internet()), Error);
  std::filesystem::remove(path);
}

TEST_F(FailsimTest, LoadRejectsCorruptionNamingTheFile) {
  FailTable table = RunFailureCampaign(internet(), Cells(4));
  std::string path = TempPath("flatnet_failsim_corrupt.fail");
  failsim::WriteFailStore(path, table);
  std::string pristine = ReadFileBytes(path);

  auto write_bytes = [&](std::string bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  };
  auto expect_load_error = [&](const char* what) {
    try {
      FailStore::Load(path);
      ADD_FAILURE() << "expected Load to throw for " << what;
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
          << what << ": error must name the file: " << e.what();
    }
  };

  // Truncated mid-body.
  write_bytes(pristine.substr(0, pristine.size() - 20));
  expect_load_error("truncation");

  // One flipped byte in the damage data fails the CRC.
  {
    std::string bytes = pristine;
    bytes[bytes.size() - 20] = static_cast<char>(bytes[bytes.size() - 20] ^ 0x5a);
    write_bytes(bytes);
    expect_load_error("flipped body byte");
  }

  // Clobbered end magic (torn footer).
  {
    std::string bytes = pristine;
    bytes.replace(bytes.size() - 8, 8, "XXXXXXXX");
    write_bytes(bytes);
    expect_load_error("bad end magic");
  }

  // Wrong leading magic: not a fail store at all.
  {
    std::string bytes = pristine;
    bytes[0] = 'X';
    write_bytes(bytes);
    expect_load_error("bad magic");
  }

  // An out-of-range scenario enum in the first cell descriptor (byte 44:
  // 40-byte header, then origin u32) is rejected by the range check
  // before the CRC is even consulted.
  {
    std::string bytes = pristine;
    bytes[44] = 99;
    write_bytes(bytes);
    expect_load_error("invalid scenario enum");
  }
  std::filesystem::remove(path);
}

TEST_F(FailsimTest, ResumedRunProducesByteIdenticalStore) {
  std::vector<FailCellSpec> cells = Cells(12);
  std::string reference_store = TempPath("flatnet_failsim_ref.fail");
  std::string resumed_store = TempPath("flatnet_failsim_resumed.fail");
  std::string journal = TempPath("flatnet_failsim_resumed.journal");
  std::filesystem::remove(journal);

  // Reference: one uninterrupted run, no journal.
  FailCampaignOptions reference;
  reference.threads = 2;
  reference.chunk_trials = 8;
  failsim::FinalizeFailStore(reference_store,
                             RunFailureCampaign(internet(), cells, reference));

  // Interrupted: stop after 3 chunks (the journal keeps them), then resume
  // at a different thread count.
  FailCampaignOptions partial = reference;
  partial.threads = 1;
  partial.journal_path = journal;
  partial.max_chunks = 3;
  FailCampaignStats partial_stats;
  RunFailureCampaign(internet(), cells, partial, &partial_stats);
  EXPECT_FALSE(partial_stats.complete);
  EXPECT_EQ(partial_stats.chunks_computed, 3u);
  ASSERT_TRUE(std::filesystem::exists(journal));

  FailCampaignOptions resume = reference;
  resume.threads = 4;
  resume.journal_path = journal;
  resume.resume = true;
  FailCampaignStats resume_stats;
  FailTable table = RunFailureCampaign(internet(), cells, resume, &resume_stats);
  EXPECT_TRUE(resume_stats.complete);
  EXPECT_EQ(resume_stats.chunks_resumed, 3u);
  EXPECT_EQ(resume_stats.chunks_computed, resume_stats.chunks_total - 3u);
  failsim::FinalizeFailStore(resumed_store, table, journal);

  EXPECT_EQ(ReadFileBytes(resumed_store), ReadFileBytes(reference_store));
  // Finalize removed the now-redundant journal.
  EXPECT_FALSE(std::filesystem::exists(journal));
  std::filesystem::remove(reference_store);
  std::filesystem::remove(resumed_store);
}

TEST_F(FailsimTest, ResumeRejectsAChangedCampaign) {
  std::vector<FailCellSpec> cells = Cells(8);
  std::string journal = TempPath("flatnet_failsim_mismatch.journal");
  std::filesystem::remove(journal);

  FailCampaignOptions partial;
  partial.threads = 1;
  partial.chunk_trials = 8;
  partial.journal_path = journal;
  partial.max_chunks = 2;
  RunFailureCampaign(internet(), cells, partial, nullptr);
  ASSERT_TRUE(std::filesystem::exists(journal));

  // The campaign fingerprint covers every cell field, so resuming with a
  // reseeded cell list must fail instead of mixing incompatible trials.
  std::vector<FailCellSpec> reseeded = cells;
  reseeded[0].seed ^= 1;
  FailCampaignOptions resume = partial;
  resume.max_chunks = 0;
  resume.resume = true;
  EXPECT_THROW(RunFailureCampaign(internet(), reseeded, resume), Error);
  std::filesystem::remove(journal);
}

TEST_F(FailsimTest, CampaignFingerprintCoversCellsTopologyAndTrim) {
  std::vector<FailCellSpec> cells = Cells(5);
  std::uint64_t base = CampaignFingerprint(internet(), cells, false, 0.1);
  EXPECT_EQ(base, CampaignFingerprint(internet(), cells, false, 0.1));
  EXPECT_NE(base, CampaignFingerprint(internet(), cells, true, 0.1));
  EXPECT_NE(base, CampaignFingerprint(internet(), cells, false, 0.2));
  EXPECT_NE(base, CampaignFingerprint(other_internet(), cells, false, 0.1));
  std::vector<FailCellSpec> reseeded = cells;
  reseeded.back().seed ^= 1;
  EXPECT_NE(base, CampaignFingerprint(internet(), reseeded, false, 0.1));
}

TEST_F(FailsimTest, UnderCollectionIsAccountedNotSilent) {
  // A Tier-1 cell asking for more trials than the clique has members
  // collects one trial per member and reports the shortfall — slots for
  // other cells are never silently reassigned.
  std::size_t num_tier1 = world().tiers.tier1.size();
  FailCellSpec starved;
  starved.origin = world().tiers.tier2[0];
  starved.scenario = FailScenario::kTier1;
  starved.seed = 2;
  starved.trials = static_cast<std::uint32_t>(num_tier1 + 10);
  FailCellSpec normal;
  normal.origin = world().tiers.tier2[1];
  normal.scenario = FailScenario::kSingleAs;
  normal.seed = 3;
  normal.trials = 7;
  FailTable table = RunFailureCampaign(internet(), {starved, normal});

  EXPECT_TRUE(table.cells[0].UnderCollected());
  EXPECT_EQ(table.cells[0].collected(), num_tier1);
  EXPECT_FALSE(table.cells[1].UnderCollected());
  EXPECT_EQ(table.cells[1].collected(), 7u);

  // Under-collected cells round-trip through the store with their
  // accounting intact.
  std::string path = TempPath("flatnet_failsim_under.fail");
  failsim::WriteFailStore(path, table);
  FailStore store = FailStore::Load(path);
  EXPECT_TRUE(store.cell(0).UnderCollected());
  EXPECT_EQ(store.cell(0).spec.trials, num_tier1 + 10);
  EXPECT_EQ(store.cell(0).collected(), num_tier1);
  std::filesystem::remove(path);
}

TEST_F(FailsimTest, ZeroTrialCampaignIsEmptyNotAnError) {
  FailCellSpec spec;
  spec.origin = world().tiers.tier2[0];
  spec.seed = 3;
  spec.trials = 0;
  FailCampaignStats stats;
  FailTable table = RunFailureCampaign(internet(), {spec}, {}, &stats);
  EXPECT_TRUE(stats.complete);
  EXPECT_EQ(stats.trials_evaluated, 0u);
  EXPECT_EQ(table.cells[0].collected(), 0u);
  EXPECT_FALSE(table.cells[0].UnderCollected());
}

TEST_F(FailsimTest, CampaignRejectsBadInputs) {
  FailCellSpec spec;
  spec.origin = world().tiers.tier2[0];
  spec.trials = 1;

  FailCampaignOptions zero_chunk;
  zero_chunk.chunk_trials = 0;
  EXPECT_THROW(RunFailureCampaign(internet(), {spec}, zero_chunk), InvalidArgument);

  FailCellSpec bad_origin = spec;
  bad_origin.origin = static_cast<AsId>(internet().num_ases());
  EXPECT_THROW(RunFailureCampaign(internet(), {bad_origin}), InvalidArgument);

  // Severity is a kLinkSet knob: required there, rejected elsewhere.
  FailCellSpec stray_severity = spec;
  stray_severity.severity = 2;
  EXPECT_THROW(RunFailureCampaign(internet(), {stray_severity}), InvalidArgument);
  FailCellSpec zero_severity = spec;
  zero_severity.scenario = FailScenario::kLinkSet;
  zero_severity.severity = 0;
  EXPECT_THROW(RunFailureCampaign(internet(), {zero_severity}), InvalidArgument);

  std::vector<double> short_users(3);
  FailCampaignOptions bad_users;
  bad_users.users = &short_users;
  EXPECT_THROW(RunFailureCampaign(internet(), {spec}, bad_users), InvalidArgument);

  FailCampaignOptions bad_trim;
  bad_trim.hegemony_trim = 0.5;
  EXPECT_THROW(RunFailureCampaign(internet(), {spec}, bad_trim), InvalidArgument);
}

}  // namespace
}  // namespace flatnet
