// The differential oracle and structural invariants from src/check: the
// three propagation implementations must agree on randomized archetype
// topologies under exclusion sets and both peer-lock modes, and the
// invariant checks must accept every healthy computation (and reject
// obviously inconsistent inputs).
#include <gtest/gtest.h>

#include "bgp/leak.h"
#include "bgp/propagation.h"
#include "check/diff.h"
#include "check/invariants.h"
#include "topogen/generate.h"
#include "util/rng.h"

namespace flatnet {
namespace {

class DiffOracleTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  World MakeWorld(std::uint32_t ases, bool era2020 = true) {
    GeneratorParams params =
        era2020 ? GeneratorParams::Era2020(ases) : GeneratorParams::Era2015(ases);
    params.seed = GetParam();
    return GenerateWorld(params);
  }
};

TEST_P(DiffOracleTest, EnginesAgreeOnUnrestrictedGraph) {
  World world = MakeWorld(600);
  for (std::uint64_t c = 0; c < 3; ++c) {
    check::DiffCaseConfig config;
    config.case_seed = GetParam() * 31 + c;
    check::DiffReport report = check::RunDiffCase(world.full_graph, config);
    EXPECT_TRUE(report.ok) << report.Summary();
  }
}

TEST_P(DiffOracleTest, EnginesAgreeWithExcludedSets) {
  World world = MakeWorld(600);
  for (std::size_t excluded : {1u, 25u, 80u}) {
    check::DiffCaseConfig config;
    config.case_seed = GetParam() ^ (0xe0 + excluded);
    config.excluded_count = excluded;
    check::DiffReport report = check::RunDiffCase(world.full_graph, config);
    EXPECT_TRUE(report.ok) << "excluded=" << excluded << ": " << report.Summary();
  }
}

TEST_P(DiffOracleTest, EnginesAgreeUnderBothPeerLockModes) {
  World world = MakeWorld(500);
  for (check::LockSetup lock : {check::LockSetup::kFull, check::LockSetup::kDirectOnly}) {
    for (std::uint64_t c = 0; c < 2; ++c) {
      check::DiffCaseConfig config;
      config.case_seed = GetParam() * 17 + c;
      config.excluded_count = c == 0 ? 0 : 20;
      config.lock = lock;
      config.locked_count = 30;
      config.filtered_sender_count = 2;
      check::DiffReport report = check::RunDiffCase(world.full_graph, config);
      EXPECT_TRUE(report.ok) << "lock=" << check::ToString(lock) << ": " << report.Summary();
    }
  }
}

TEST_P(DiffOracleTest, EnginesAgreeOn2015Era) {
  World world = MakeWorld(500, /*era2020=*/false);
  check::DiffCaseConfig config;
  config.case_seed = GetParam() ^ 0x2015;
  config.excluded_count = 15;
  check::DiffReport report = check::RunDiffCase(world.full_graph, config);
  EXPECT_TRUE(report.ok) << report.Summary();
}

TEST_P(DiffOracleTest, InvariantsHoldForLeakStyleMultiSourceComputations) {
  World world = MakeWorld(600);
  Rng rng(GetParam() ^ 0x1eaf);
  AsId victim = world.Cloud("Google").id;
  for (int trial = 0; trial < 3; ++trial) {
    auto leaker = static_cast<AsId>(rng.UniformU64(world.num_ases()));
    if (leaker == victim) continue;
    std::vector<AnnouncementSource> sources{
        AnnouncementSource{.node = victim},
        AnnouncementSource{.node = leaker, .base_length = 3},
    };
    RouteComputation computation(world.full_graph, sources);
    auto failure = check::CheckRouteInvariants(computation, sources);
    EXPECT_FALSE(failure.has_value()) << *failure;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiffOracleTest, ::testing::Values(7, 41, 1009));

TEST(CheckInvariants, AcceptHandBuiltTopology) {
  // Fig-1-style: origin 1 with provider 2, 2 peers 3, 3's customer 4.
  AsGraphBuilder builder;
  builder.AddEdge(2, 1, EdgeType::kP2C);
  builder.AddEdge(2, 3, EdgeType::kP2P);
  builder.AddEdge(3, 4, EdgeType::kP2C);
  AsGraph graph = std::move(builder).Build();
  std::vector<AnnouncementSource> sources{AnnouncementSource{.node = *graph.IdOf(1)}};
  RouteComputation computation(graph, sources);
  EXPECT_FALSE(check::CheckValleyFreeDag(computation).has_value());
  EXPECT_FALSE(check::CheckOrderByLength(computation).has_value());
  EXPECT_FALSE(check::CheckSourceMasks(computation, sources).has_value());
  EXPECT_FALSE(check::CheckRelianceConservation(computation).has_value());
}

TEST(CheckInvariants, RejectsInconsistentSourceList) {
  AsGraphBuilder builder;
  builder.AddEdge(2, 1, EdgeType::kP2C);
  AsGraph graph = std::move(builder).Build();
  std::vector<AnnouncementSource> sources{AnnouncementSource{.node = *graph.IdOf(1)}};
  RouteComputation computation(graph, sources);
  // Wrong source node: the claimed source never originated.
  std::vector<AnnouncementSource> wrong{AnnouncementSource{.node = *graph.IdOf(2)}};
  auto failure = check::CheckSourceMasks(computation, wrong);
  ASSERT_TRUE(failure.has_value());
  // Wrong cardinality is also caught.
  EXPECT_TRUE(check::CheckSourceMasks(computation, {}).has_value());
}

TEST(CheckDiff, LockSetupRoundTrip) {
  for (check::LockSetup lock :
       {check::LockSetup::kNone, check::LockSetup::kFull, check::LockSetup::kDirectOnly}) {
    auto parsed = check::ParseLockSetup(check::ToString(lock));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, lock);
  }
  EXPECT_FALSE(check::ParseLockSetup("sideways").has_value());
}

TEST(CheckDiff, ReportSummaryReadsWell) {
  check::DiffReport ok;
  EXPECT_EQ(ok.Summary(), "ok");
}

}  // namespace
}  // namespace flatnet
