// Tests for AS hegemony (src/bgp/hegemony.h): agreement with a
// brute-force tied-best path enumerator on handcrafted graphs, the
// viewpoint-trimming boundaries, the trim = 0 conservation identity
// against reliance, and the ranking order.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "asgraph/as_graph.h"
#include "bgp/hegemony.h"
#include "bgp/propagation.h"
#include "bgp/reliance.h"
#include "topogen/generate.h"
#include "util/error.h"

namespace flatnet {
namespace {

// Enumerates every tied-best path from `node` down the predecessor DAG to
// the origin (whose predecessor list is empty) and appends them to
// `paths`. Exponential, fine for the <= 12-node graphs used here.
void EnumeratePaths(const RouteComputation& computation, AsId node, std::vector<AsId>* current,
                    std::vector<std::vector<AsId>>* paths) {
  current->push_back(node);
  auto preds = computation.Predecessors(node);
  if (preds.empty()) {
    paths->push_back(*current);
  } else {
    for (AsId pred : preds) EnumeratePaths(computation, pred, current, paths);
  }
  current->pop_back();
}

// Brute-force hegemony: materialize the full viewpoint x AS matrix of
// BC_v(a) = sigma_v(a)/sigma_v by explicit path enumeration (zeros and
// all), then trimmed-mean each AS's column. Independent of the Brandes
// accumulation in ComputeHegemony — only the predecessor DAG is shared.
std::vector<double> BruteForceHegemony(const RouteComputation& computation, AsId origin,
                                       double trim) {
  std::size_t n = computation.graph().num_ases();
  Bitset reached = computation.ReachedSet();
  std::vector<AsId> viewpoints;
  for (AsId v = 0; v < n; ++v) {
    if (v != origin && reached.Test(v)) viewpoints.push_back(v);
  }
  std::vector<std::vector<double>> columns(n);
  for (AsId v : viewpoints) {
    std::vector<std::vector<AsId>> paths;
    std::vector<AsId> current;
    EnumeratePaths(computation, v, &current, &paths);
    std::vector<std::size_t> through(n, 0);
    for (const std::vector<AsId>& path : paths) {
      for (AsId a : path) ++through[a];
    }
    for (AsId a = 0; a < n; ++a) {
      columns[a].push_back(static_cast<double>(through[a]) /
                           static_cast<double>(paths.size()));
    }
  }
  std::size_t drop = static_cast<std::size_t>(trim * static_cast<double>(viewpoints.size()));
  std::vector<double> hegemony(n, 0.0);
  for (AsId a = 0; a < n; ++a) {
    if (a == origin || !reached.Test(a)) continue;
    std::vector<double>& column = columns[a];
    std::sort(column.begin(), column.end());
    double sum = 0.0;
    for (std::size_t i = drop; i + drop < column.size(); ++i) sum += column[i];
    std::size_t kept = column.size() - 2 * drop;
    hegemony[a] = kept > 0 ? sum / static_cast<double>(kept) : 0.0;
  }
  return hegemony;
}

void ExpectMatchesBruteForce(const AsGraph& graph, Asn origin_asn, double trim) {
  AsId origin = *graph.IdOf(origin_asn);
  RouteComputation computation(graph, {{.node = origin}});
  HegemonyResult result = ComputeHegemony(computation, {.trim = trim});
  std::vector<double> oracle = BruteForceHegemony(computation, origin, trim);
  ASSERT_EQ(result.hegemony.size(), graph.num_ases());
  for (AsId a = 0; a < graph.num_ases(); ++a) {
    EXPECT_NEAR(result.hegemony[a], oracle[a], 1e-12)
        << "AS" << graph.AsnOf(a) << " trim=" << trim;
  }
}

// Diamond: 4 reaches the origin 1 through tied providers 2 and 3.
AsGraph Diamond() {
  AsGraphBuilder builder;
  builder.AddEdge(2, 1, EdgeType::kP2C);
  builder.AddEdge(3, 1, EdgeType::kP2C);
  builder.AddEdge(4, 2, EdgeType::kP2C);
  builder.AddEdge(4, 3, EdgeType::kP2C);
  return std::move(builder).Build();
}

TEST(HegemonyTest, MatchesBruteForceOnTiedPaths) {
  // Two tied layers: 6's four paths to 1 split over {4,5} x {2,3}.
  AsGraphBuilder builder;
  builder.AddEdge(2, 1, EdgeType::kP2C);
  builder.AddEdge(3, 1, EdgeType::kP2C);
  for (Asn mid : {4u, 5u}) {
    builder.AddEdge(mid, 2, EdgeType::kP2C);
    builder.AddEdge(mid, 3, EdgeType::kP2C);
    builder.AddEdge(6, mid, EdgeType::kP2C);
  }
  AsGraph graph = std::move(builder).Build();
  ExpectMatchesBruteForce(graph, 1, 0.0);
  ExpectMatchesBruteForce(graph, 1, 0.1);
}

TEST(HegemonyTest, MatchesBruteForceWithUnreachableComponent) {
  // A chain behind the origin plus a disconnected pair: the pair is
  // neither viewpoint nor scored.
  AsGraphBuilder builder;
  builder.AddEdge(2, 1, EdgeType::kP2C);
  builder.AddEdge(3, 2, EdgeType::kP2C);
  builder.AddEdge(4, 3, EdgeType::kP2C);
  builder.AddEdge(11, 10, EdgeType::kP2C);
  AsGraph graph = std::move(builder).Build();

  AsId origin = *graph.IdOf(1);
  RouteComputation computation(graph, {{.node = origin}});
  HegemonyResult result = ComputeHegemony(computation, {.trim = 0.0});
  EXPECT_EQ(result.num_viewpoints, 3u);
  EXPECT_EQ(result.hegemony[*graph.IdOf(10)], 0.0);
  EXPECT_EQ(result.hegemony[*graph.IdOf(11)], 0.0);
  EXPECT_EQ(result.hegemony[origin], 0.0);
  // Origin-adjacent transit: every viewpoint's paths pass through AS 2.
  EXPECT_DOUBLE_EQ(result.hegemony[*graph.IdOf(2)], 1.0);
  ExpectMatchesBruteForce(graph, 1, 0.0);
  ExpectMatchesBruteForce(graph, 1, 0.1);
}

TEST(HegemonyTest, DiamondScoresAndRankingAreExact) {
  AsGraph graph = Diamond();
  AsId origin = *graph.IdOf(1);
  RouteComputation computation(graph, {{.node = origin}});
  HegemonyResult result = ComputeHegemony(computation, {.trim = 0.0});
  // Viewpoints {2,3,4}. AS2's column is {1, 0, 1/2} -> 1/2; AS4 only
  // carries its own paths -> 1/3.
  EXPECT_EQ(result.num_viewpoints, 3u);
  EXPECT_DOUBLE_EQ(result.hegemony[*graph.IdOf(2)], 0.5);
  EXPECT_DOUBLE_EQ(result.hegemony[*graph.IdOf(3)], 0.5);
  EXPECT_DOUBLE_EQ(result.hegemony[*graph.IdOf(4)], 1.0 / 3.0);

  // Descending score, ties by ascending id.
  std::vector<AsId> expected = {*graph.IdOf(2), *graph.IdOf(3), *graph.IdOf(4)};
  std::sort(expected.begin(), expected.begin() + 2);
  EXPECT_EQ(HegemonyRanking(result), expected);
}

TEST(HegemonyTest, TrimDropsNothingBelowTenViewpoints) {
  // floor(0.1 * 3) = 0: the trimmed mean degrades to the plain mean.
  AsGraph graph = Diamond();
  AsId origin = *graph.IdOf(1);
  RouteComputation computation(graph, {{.node = origin}});
  HegemonyResult trimmed = ComputeHegemony(computation, {.trim = 0.1});
  HegemonyResult plain = ComputeHegemony(computation, {.trim = 0.0});
  EXPECT_EQ(trimmed.trimmed_each_end, 0u);
  EXPECT_EQ(trimmed.hegemony, plain.hegemony);
}

TEST(HegemonyTest, TrimDiscardsTheExtremeViewpoints) {
  // A 20-leaf star: each leaf scores itself 1 and everyone else 0, so
  // every AS's column is nineteen zeros and a single one. Trimming two
  // viewpoints off each end removes the 1 — every score collapses to 0 —
  // while the untrimmed mean keeps 1/20 per leaf.
  AsGraphBuilder builder;
  for (Asn leaf = 2; leaf <= 21; ++leaf) builder.AddEdge(leaf, 1, EdgeType::kP2C);
  AsGraph graph = std::move(builder).Build();
  AsId origin = *graph.IdOf(1);
  RouteComputation computation(graph, {{.node = origin}});

  HegemonyResult trimmed = ComputeHegemony(computation, {.trim = 0.1});
  EXPECT_EQ(trimmed.num_viewpoints, 20u);
  EXPECT_EQ(trimmed.trimmed_each_end, 2u);
  HegemonyResult plain = ComputeHegemony(computation, {.trim = 0.0});
  for (Asn leaf = 2; leaf <= 21; ++leaf) {
    EXPECT_EQ(trimmed.hegemony[*graph.IdOf(leaf)], 0.0) << "AS" << leaf;
    EXPECT_DOUBLE_EQ(plain.hegemony[*graph.IdOf(leaf)], 1.0 / 20.0) << "AS" << leaf;
  }
  EXPECT_TRUE(HegemonyRanking(trimmed).empty());
  ExpectMatchesBruteForce(graph, 1, 0.1);
}

// The all-equal-viewpoints boundary: on a provider chain 1 <- 2 <- ... <-
// 13, the origin's sole transit (AS 2) is scored 1 by every one of the 12
// viewpoints. Trimming drops two of those equal values from each end and
// must not move the mean — the boundary between "defends against outlier
// viewpoints" and "distorts a consensus score".
TEST(HegemonyTest, AllEqualViewpointValuesSurviveTrimming) {
  AsGraphBuilder builder;
  for (Asn a = 2; a <= 13; ++a) builder.AddEdge(a, a - 1, EdgeType::kP2C);
  AsGraph graph = std::move(builder).Build();
  AsId origin = *graph.IdOf(1);
  RouteComputation computation(graph, {{.node = origin}});
  HegemonyResult trimmed = ComputeHegemony(computation, {.trim = 0.1});
  HegemonyResult plain = ComputeHegemony(computation, {.trim = 0.0});
  EXPECT_EQ(trimmed.num_viewpoints, 12u);
  EXPECT_EQ(trimmed.trimmed_each_end, 1u);
  EXPECT_DOUBLE_EQ(trimmed.hegemony[*graph.IdOf(2)], 1.0);
  EXPECT_DOUBLE_EQ(plain.hegemony[*graph.IdOf(2)], 1.0);
  ExpectMatchesBruteForce(graph, 1, 0.1);
}

// The conservation identity the header documents: with trim = 0,
// H(a) * num_viewpoints == rely(o, a) — hegemony is reliance normalized
// by viewpoint count. Pinned on a generated topology so the identity
// holds beyond handcrafted DAGs (same mass-balance family as
// src/check/invariants.cc).
TEST(HegemonyTest, UntrimmedHegemonyIsRelianceOverViewpoints) {
  GeneratorParams params = GeneratorParams::Era2015(300);
  params.seed = 12;
  World world = GenerateWorld(params);
  const AsGraph& graph = world.full_graph;

  AsId origins[] = {world.tiers.tier1[0], world.tiers.tier2[0]};
  for (AsId origin : origins) {
    RouteComputation computation(graph, {{.node = origin}});
    HegemonyResult hegemony = ComputeHegemony(computation, {.trim = 0.0});
    RelianceResult reliance = ComputeReliance(computation);
    ASSERT_GT(hegemony.num_viewpoints, 0u);
    double viewpoints = static_cast<double>(hegemony.num_viewpoints);
    for (AsId a = 0; a < graph.num_ases(); ++a) {
      EXPECT_NEAR(hegemony.hegemony[a] * viewpoints, reliance.reliance[a],
                  1e-9 * std::max(1.0, reliance.reliance[a]))
          << "origin " << origin << " AS" << graph.AsnOf(a);
    }
  }
}

TEST(HegemonyTest, RejectsBadInputs) {
  AsGraph graph = Diamond();
  AsId origin = *graph.IdOf(1);
  RouteComputation single(graph, {{.node = origin}});
  EXPECT_THROW(ComputeHegemony(single, {.trim = 0.5}), InvalidArgument);
  EXPECT_THROW(ComputeHegemony(single, {.trim = -0.1}), InvalidArgument);

  RouteComputation dual(graph, {{.node = origin}, {.node = *graph.IdOf(4)}});
  EXPECT_THROW(ComputeHegemony(dual), InvalidArgument);
}

}  // namespace
}  // namespace flatnet
