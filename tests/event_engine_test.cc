// Event-driven BGP engine: unit behaviour, dynamics, and cross-validation
// against the closed-form phase engine.
#include <gtest/gtest.h>

#include "bgp/event_engine.h"
#include "bgp/paths.h"
#include "bgp/propagation.h"
#include "bgp/reachability.h"
#include "topogen/generate.h"
#include "util/error.h"

namespace flatnet {
namespace {

TEST(EventEngine, OriginationReachesValleyFreeSet) {
  // o=1 peers 2; 2's customer 3; 3's customer 4; plus 5--3 peer (5 must NOT
  // hear the route: peer after peer).
  AsGraphBuilder builder;
  builder.AddEdge(1, 2, EdgeType::kP2P);
  builder.AddEdge(2, 3, EdgeType::kP2C);
  builder.AddEdge(3, 4, EdgeType::kP2C);
  builder.AddEdge(5, 3, EdgeType::kP2P);
  AsGraph graph = std::move(builder).Build();

  EventBgpEngine engine(graph);
  engine.Originate(*graph.IdOf(1));
  EXPECT_TRUE(engine.BestRoute(*graph.IdOf(2)).has_value());
  EXPECT_TRUE(engine.BestRoute(*graph.IdOf(3)).has_value());
  EXPECT_TRUE(engine.BestRoute(*graph.IdOf(4)).has_value());
  EXPECT_FALSE(engine.BestRoute(*graph.IdOf(5)).has_value());
  EXPECT_EQ(engine.ReachedCount(), 3u);
  EXPECT_EQ(engine.BestRoute(*graph.IdOf(4))->Length(), 3);
  EXPECT_THROW(engine.Originate(*graph.IdOf(2)), InvalidArgument);
}

TEST(EventEngine, WithdrawClearsEveryRib) {
  AsGraphBuilder builder;
  builder.AddEdge(2, 1, EdgeType::kP2C);
  builder.AddEdge(3, 2, EdgeType::kP2C);
  builder.AddEdge(3, 4, EdgeType::kP2C);
  AsGraph graph = std::move(builder).Build();
  EventBgpEngine engine(graph);
  engine.Originate(*graph.IdOf(1));
  EXPECT_EQ(engine.ReachedCount(), 3u);
  engine.WithdrawOrigin();
  EXPECT_EQ(engine.ReachedCount(), 0u);
  for (Asn asn : {2, 3, 4}) {
    EXPECT_FALSE(engine.BestRoute(*graph.IdOf(asn)).has_value()) << asn;
  }
}

TEST(EventEngine, FailoverToBackupPath) {
  // 4 multihomes to providers 2 and 3, both customers of... both reach the
  // origin 1 (their mutual customer). Failing the preferred link reroutes.
  AsGraphBuilder builder;
  builder.AddEdge(2, 1, EdgeType::kP2C);
  builder.AddEdge(3, 1, EdgeType::kP2C);
  builder.AddEdge(2, 4, EdgeType::kP2C);
  builder.AddEdge(3, 4, EdgeType::kP2C);
  AsGraph graph = std::move(builder).Build();
  EventBgpEngine engine(graph);
  engine.Originate(*graph.IdOf(1));

  auto before = engine.BestRoute(*graph.IdOf(4));
  ASSERT_TRUE(before.has_value());
  ASSERT_EQ(before->path.size(), 2u);
  AsId first_hop = before->path.front();

  engine.FailLink(*graph.IdOf(4), first_hop);
  auto after = engine.BestRoute(*graph.IdOf(4));
  ASSERT_TRUE(after.has_value());
  EXPECT_NE(after->path.front(), first_hop);
  EXPECT_EQ(after->path.size(), 2u);

  // Failing the backup too disconnects 4.
  engine.FailLink(*graph.IdOf(4), after->path.front());
  EXPECT_FALSE(engine.BestRoute(*graph.IdOf(4)).has_value());
  EXPECT_THROW(engine.FailLink(*graph.IdOf(1), *graph.IdOf(4)), InvalidArgument);
}

TEST(EventEngine, WithdrawThenReoriginate) {
  // Withdrawing must fully clear origin state: a second origination (same
  // or different AS) behaves exactly like a fresh engine.
  AsGraphBuilder builder;
  builder.AddEdge(2, 1, EdgeType::kP2C);
  builder.AddEdge(3, 2, EdgeType::kP2C);
  builder.AddEdge(3, 4, EdgeType::kP2C);
  AsGraph graph = std::move(builder).Build();
  EventBgpEngine engine(graph);

  engine.Originate(*graph.IdOf(1));
  EXPECT_EQ(engine.ReachedCount(), 3u);
  engine.WithdrawOrigin();
  EXPECT_EQ(engine.ReachedCount(), 0u);
  EXPECT_THROW(engine.WithdrawOrigin(), InvalidArgument);

  // Re-originate at the same AS.
  engine.Originate(*graph.IdOf(1));
  EXPECT_EQ(engine.ReachedCount(), 3u);
  EXPECT_EQ(engine.BestRoute(*graph.IdOf(4))->Length(), 3);

  // Withdraw again and originate from a different AS; stale state from the
  // first prefix must not leak into the new one.
  engine.WithdrawOrigin();
  EXPECT_EQ(engine.ReachedCount(), 0u);
  engine.Originate(*graph.IdOf(4));
  EXPECT_EQ(engine.ReachedCount(), 3u);
  ASSERT_TRUE(engine.BestRoute(*graph.IdOf(1)).has_value());
  EXPECT_EQ(engine.BestRoute(*graph.IdOf(1))->Length(), 3);
  ASSERT_TRUE(engine.BestRoute(*graph.IdOf(4)).has_value());
  EXPECT_EQ(engine.BestRoute(*graph.IdOf(4))->cls, RouteClass::kOrigin);
}

TEST(EventEngine, ExcludedAndLockedNodesFilterLikePhaseEngine) {
  // 1 -> provider 2 -> provider 3; 2 also peers 4. Excluding 2 cuts
  // everything beyond the origin's own links.
  AsGraphBuilder builder;
  builder.AddEdge(2, 1, EdgeType::kP2C);
  builder.AddEdge(3, 2, EdgeType::kP2C);
  builder.AddEdge(2, 4, EdgeType::kP2P);
  AsGraph graph = std::move(builder).Build();

  Bitset excluded(graph.num_ases());
  excluded.Set(*graph.IdOf(2));
  PropagationOptions options;
  options.excluded = &excluded;
  EventBgpEngine engine(graph, options);
  engine.Originate(*graph.IdOf(1));
  EXPECT_FALSE(engine.BestRoute(*graph.IdOf(2)).has_value());
  EXPECT_FALSE(engine.BestRoute(*graph.IdOf(3)).has_value());
  EXPECT_FALSE(engine.BestRoute(*graph.IdOf(4)).has_value());
  EXPECT_EQ(engine.ReachedCount(), 0u);

  EventBgpEngine excluded_origin(graph, options);
  excluded.Reset(*graph.IdOf(2));
  excluded.Set(*graph.IdOf(1));
  EXPECT_THROW(excluded_origin.Originate(*graph.IdOf(1)), InvalidArgument);
}

TEST(EventEngine, FailedLinkStaysDownForLaterEvents) {
  AsGraphBuilder builder;
  builder.AddEdge(2, 1, EdgeType::kP2C);
  builder.AddEdge(2, 3, EdgeType::kP2C);
  AsGraph graph = std::move(builder).Build();
  EventBgpEngine engine(graph);
  engine.FailLink(*graph.IdOf(2), *graph.IdOf(3));
  engine.Originate(*graph.IdOf(1));
  EXPECT_TRUE(engine.BestRoute(*graph.IdOf(2)).has_value());
  EXPECT_FALSE(engine.BestRoute(*graph.IdOf(3)).has_value());
}

class EventEnginePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventEnginePropertyTest, AgreesWithPhaseEngine) {
  GeneratorParams params = GeneratorParams::Era2020(900);
  params.seed = GetParam();
  World world = GenerateWorld(params);
  Rng rng(GetParam() ^ 0xe1e);

  for (int trial = 0; trial < 4; ++trial) {
    AsId origin = static_cast<AsId>(rng.UniformU64(world.num_ases()));
    EventBgpEngine event_engine(world.full_graph);
    event_engine.Originate(origin);

    AnnouncementSource source{.node = origin};
    RouteComputation phase(world.full_graph, {source});

    for (AsId node = 0; node < world.num_ases(); ++node) {
      if (node == origin) continue;
      const auto& event_best = event_engine.BestRoute(node);
      const RouteEntry& phase_best = phase.Route(node);
      ASSERT_EQ(event_best.has_value(), phase_best.HasRoute())
          << "node " << node << " origin " << origin;
      if (!event_best) continue;
      EXPECT_EQ(event_best->cls, phase_best.cls) << "node " << node;
      EXPECT_EQ(event_best->Length(), phase_best.length) << "node " << node;
      // The event engine's single path must be one of the phase engine's
      // tied-best paths.
      AsPath full_path{node};
      full_path.insert(full_path.end(), event_best->path.begin(), event_best->path.end());
      EXPECT_TRUE(IsBestPath(phase, full_path)) << "node " << node;
    }
  }
}

TEST_P(EventEnginePropertyTest, FailLinkMatchesRecomputedTopology) {
  GeneratorParams params = GeneratorParams::Era2020(700);
  params.seed = GetParam() ^ 0xfa11;
  World world = GenerateWorld(params);
  Rng rng(GetParam());

  AsId origin = world.Cloud("Google").id;
  EventBgpEngine engine(world.full_graph);
  engine.Originate(origin);

  // Fail a handful of random links of the origin, then compare the final
  // state against a fresh phase computation on the pruned topology.
  auto neighbors = world.full_graph.NeighborsOf(origin);
  std::vector<std::pair<Asn, Asn>> failed;
  for (int i = 0; i < 5 && i < static_cast<int>(neighbors.size()); ++i) {
    AsId nb = neighbors[rng.UniformU64(neighbors.size())].id;
    engine.FailLink(origin, nb);
    failed.push_back({world.full_graph.AsnOf(origin), world.full_graph.AsnOf(nb)});
  }

  // Rebuild the graph without the failed links.
  AsGraphBuilder builder;
  for (AsId id = 0; id < world.num_ases(); ++id) builder.AddAs(world.full_graph.AsnOf(id));
  for (const auto& e : world.full_graph.EdgeList()) {
    bool down = false;
    for (auto [a, b] : failed) {
      if ((e.a == a && e.b == b) || (e.a == b && e.b == a)) down = true;
    }
    if (!down) builder.AddEdge(e.a, e.b, e.type);
  }
  AsGraph pruned = std::move(builder).Build();
  AnnouncementSource source{.node = origin};
  RouteComputation phase(pruned, {source});

  for (AsId node = 0; node < world.num_ases(); ++node) {
    if (node == origin) continue;
    const auto& event_best = engine.BestRoute(node);
    const RouteEntry& phase_best = phase.Route(node);
    ASSERT_EQ(event_best.has_value(), phase_best.HasRoute()) << "node " << node;
    if (!event_best) continue;
    EXPECT_EQ(event_best->cls, phase_best.cls) << "node " << node;
    EXPECT_EQ(event_best->Length(), phase_best.length) << "node " << node;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventEnginePropertyTest, ::testing::Values(5, 17, 23));

}  // namespace
}  // namespace flatnet
