// Cross-cutting mathematical invariants that tie several modules together.
// These are the identities a paper reviewer would check by hand on a small
// example; here they are enforced over randomized generated topologies.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "bgp/propagation.h"
#include "bgp/reachability.h"
#include "bgp/reliance.h"
#include "core/reachability_analysis.h"
#include "core/serialize.h"
#include "topogen/generate.h"
#include "util/rng.h"

namespace flatnet {
namespace {

class InvariantsTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  World MakeWorld(std::uint32_t ases = 1000) {
    GeneratorParams params = GeneratorParams::Era2020(ases);
    params.seed = GetParam();
    return GenerateWorld(params);
  }
};

// Σ_a rely(o, a) minus the self terms must equal Σ_t E[intermediate count
// of t's tied-best paths] — reliance is a redistribution of path mass, so
// the books have to balance. E[len] is computed independently with a DP
// over the predecessor DAG.
TEST_P(InvariantsTest, RelianceMassBalancesExpectedPathLength) {
  World world = MakeWorld(800);
  Rng rng(GetParam() ^ 0xba1);
  for (int trial = 0; trial < 3; ++trial) {
    AsId origin = static_cast<AsId>(rng.UniformU64(world.num_ases()));
    AnnouncementSource source{.node = origin};
    RouteComputation computation(world.full_graph, {source});
    RelianceResult reliance = ComputeReliance(computation);

    // DP: expected AS-path length (hop count) from each node to the origin,
    // averaging uniformly over tied-best paths.
    std::vector<double> expected_len(world.num_ases(), 0.0);
    for (AsId node : computation.NodesByLength()) {
      const auto& preds = computation.Predecessors(node);
      if (preds.empty()) continue;  // origin
      double total_sigma = reliance.path_counts[node];
      double acc = 0.0;
      for (AsId pred : preds) {
        acc += reliance.path_counts[pred] * (expected_len[pred] + 1.0);
      }
      expected_len[node] = acc / total_sigma;
    }

    double reliance_mass = 0.0;  // Σ_a (rely(a) - self term)
    double expected_intermediates = 0.0;
    for (AsId node = 0; node < world.num_ases(); ++node) {
      if (node == origin) continue;
      if (!computation.Route(node).HasRoute()) continue;
      reliance_mass += reliance.reliance[node] - 1.0;
      // Intermediates of t's paths exclude t itself and the origin.
      expected_intermediates += expected_len[node] - 1.0;
    }
    EXPECT_NEAR(reliance_mass, expected_intermediates,
                1e-6 * std::max(1.0, expected_intermediates));
  }
}

// The expected length DP must agree with the engine's shortest length
// (ties all share the same length, so E[len] == RouteEntry::length).
TEST_P(InvariantsTest, TiedBestPathsShareTheirLength) {
  World world = MakeWorld(800);
  AsId origin = world.Cloud("Google").id;
  AnnouncementSource source{.node = origin};
  RouteComputation computation(world.full_graph, {source});
  RelianceResult reliance = ComputeReliance(computation);
  std::vector<double> expected_len(world.num_ases(), 0.0);
  for (AsId node : computation.NodesByLength()) {
    const auto& preds = computation.Predecessors(node);
    if (preds.empty()) continue;
    double acc = 0.0;
    for (AsId pred : preds) {
      acc += reliance.path_counts[pred] * (expected_len[pred] + 1.0);
    }
    expected_len[node] = acc / reliance.path_counts[node];
    EXPECT_NEAR(expected_len[node], computation.Route(node).length, 1e-9)
        << "node " << node;
  }
}

// Everyone with a transit chain reaches (almost) the entire topology on
// the unrestricted graph. "Almost": provider-less non-Tier-1 networks
// (the PCCW / Liberty Global archetypes) are reachable only over their own
// peer links — the same dataset quirk that caps the paper's maximum at
// 69,488 of 69,999 ASes.
TEST_P(InvariantsTest, FullGraphIsGloballyReachableUpToProviderlessPeers) {
  World world = MakeWorld(900);
  Rng rng(GetParam() ^ 0x91);
  ReachabilityEngine engine(world.full_graph);
  std::size_t n = world.num_ases();
  // Sound characterization: an AS is possibly unreachable only when its
  // provider-ancestor closure never reaches a Tier-1 — i.e. it hangs
  // (directly or transitively) under a provider-less non-Tier-1.
  Bitset anchored(n);  // ancestor closure touches the clique
  for (AsId t1 : world.tiers.tier1) anchored.Set(t1);
  bool changed = true;
  while (changed) {
    changed = false;
    for (AsId id = 0; id < n; ++id) {
      if (anchored.Test(id)) continue;
      for (const Neighbor& nb : world.full_graph.Providers(id)) {
        if (anchored.Test(nb.id)) {
          anchored.Set(id);
          changed = true;
          break;
        }
      }
    }
  }
  std::size_t unanchored = n - anchored.Count();
  EXPECT_LT(unanchored, n / 20);  // the stranded fringe is small

  Bitset reached = engine.Compute(world.tiers.tier1[0]);
  EXPECT_GE(reached.Count(), anchored.Count());
  anchored.ForEachSet([&](std::size_t id) {
    EXPECT_TRUE(reached.Test(id)) << "anchored AS " << id << " unreachable";
  });
  for (int i = 0; i < 10; ++i) {
    AsId origin = static_cast<AsId>(rng.UniformU64(n));
    EXPECT_GE(engine.Count(origin) + 1, anchored.Count()) << "origin " << origin;
  }
}

// Serialization must preserve every analysis outcome, not just the graph
// shape: hierarchy-free reachability per (sampled) origin survives the
// round trip through the CAIDA + TSV files.
TEST_P(InvariantsTest, SerializationPreservesAnalyses) {
  World world = MakeWorld(700);
  Internet original(world.full_graph, world.tiers, world.metadata);
  auto stem = (std::filesystem::temp_directory_path() /
               ("flatnet_invariants_" + std::to_string(GetParam())))
                  .string();
  SaveInternet(original, stem);
  Internet reloaded = LoadInternet(stem);

  Rng rng(GetParam() ^ 0x5e);
  for (int i = 0; i < 6; ++i) {
    AsId origin = static_cast<AsId>(rng.UniformU64(world.num_ases()));
    Asn asn = original.graph().AsnOf(origin);
    auto reloaded_origin = reloaded.graph().IdOf(asn);
    ASSERT_TRUE(reloaded_origin.has_value());
    ReachabilitySummary a = AnalyzeReachability(original, origin);
    ReachabilitySummary b = AnalyzeReachability(reloaded, *reloaded_origin);
    EXPECT_EQ(a.provider_free, b.provider_free) << "AS" << asn;
    EXPECT_EQ(a.tier1_free, b.tier1_free) << "AS" << asn;
    EXPECT_EQ(a.hierarchy_free, b.hierarchy_free) << "AS" << asn;
  }
  std::filesystem::remove(stem + ".as-rel.txt");
  std::filesystem::remove(stem + ".meta.tsv");
}

// Excluding a node can never help anyone: reachability is monotone in the
// subgraph (the property all of §6's comparisons rest on).
TEST_P(InvariantsTest, ReachabilityMonotoneUnderExclusion) {
  World world = MakeWorld(700);
  Rng rng(GetParam() ^ 0x707);
  ReachabilityEngine engine(world.full_graph);
  for (int i = 0; i < 6; ++i) {
    AsId origin = static_cast<AsId>(rng.UniformU64(world.num_ases()));
    Bitset excluded(world.num_ases());
    Bitset previous = engine.Compute(origin, &excluded);
    for (int step = 0; step < 4; ++step) {
      AsId victim = static_cast<AsId>(rng.UniformU64(world.num_ases()));
      if (victim == origin) continue;
      excluded.Set(victim);
      Bitset now = engine.Compute(origin, &excluded);
      EXPECT_TRUE(now.IsSubsetOf(previous));
      previous = now;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InvariantsTest, ::testing::Values(3, 1234, 777777));

}  // namespace
}  // namespace flatnet
