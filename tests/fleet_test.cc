#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "failsim/engine.h"
#include "failsim/store.h"
#include "fleet/backend.h"
#include "fleet/hedge.h"
#include "fleet/merge.h"
#include "fleet/ring.h"
#include "fleet/router.h"
#include "leaksim/engine.h"
#include "leaksim/store.h"
#include "serve/dispatcher.h"
#include "serve/server.h"
#include "sweep/engine.h"
#include "sweep/store.h"
#include "topogen/generate.h"
#include "util/error.h"
#include "util/json.h"
#include "util/strings.h"

namespace flatnet {
namespace {

using serve::Dispatcher;
using serve::DispatcherOptions;

// --------------------------------------------------------------------------
// Ring: cross-process ownership agreement is the fleet's only coordination
// mechanism, so determinism and exact hash-space coverage are load-bearing.

TEST(FleetRing, RejectsEmptyConfiguration) {
  EXPECT_THROW(fleet::Ring(0, 8), InvalidArgument);
  EXPECT_THROW(fleet::Ring(3, 0), InvalidArgument);
}

TEST(FleetRing, OwnershipIsDeterministicAcrossInstances) {
  fleet::Ring a(4, 64);
  fleet::Ring b(4, 64);
  std::vector<bool> owned(4, false);
  for (std::uint32_t asn = 1; asn <= 2000; ++asn) {
    std::size_t owner = a.Owner(asn);
    ASSERT_LT(owner, 4u);
    EXPECT_EQ(owner, b.Owner(asn));
    owned[owner] = true;
  }
  // 64 vnodes per shard spread 2000 keys over every shard.
  for (std::size_t shard = 0; shard < 4; ++shard) EXPECT_TRUE(owned[shard]);
}

TEST(FleetRing, RangesPartitionTheHashSpaceExactly) {
  fleet::Ring ring(5, 16);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> all;
  std::vector<std::size_t> range_owner;
  for (std::size_t shard = 0; shard < 5; ++shard) {
    for (const auto& range : ring.RangesOf(shard)) {
      all.push_back(range);
      range_owner.push_back(shard);
    }
  }
  // Sort the intervals; an exact partition is contiguous from 0 to 2^64-1
  // with no gap and no overlap (a wrapping interval arrives pre-split).
  std::vector<std::size_t> order(all.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return all[a].first < all[b].first; });
  EXPECT_EQ(all[order.front()].first, 0u);
  EXPECT_EQ(all[order.back()].second, ~std::uint64_t{0});
  for (std::size_t i = 1; i < order.size(); ++i) {
    ASSERT_EQ(all[order[i]].first, all[order[i - 1]].second + 1);
  }
  // Membership agrees with Owner: each ASN's hash lands in an interval of
  // the shard Owner names.
  for (std::uint32_t asn = 1; asn <= 200; ++asn) {
    std::uint64_t h = fleet::Mix64(asn);
    std::size_t owner = ring.Owner(asn);
    bool contained = false;
    for (std::size_t i = 0; i < all.size(); ++i) {
      if (h >= all[i].first && h <= all[i].second) {
        EXPECT_EQ(range_owner[i], owner) << "asn " << asn;
        contained = true;
      }
    }
    EXPECT_TRUE(contained) << "asn " << asn;
  }
}

TEST(FleetRing, FirstLiveFailsOverAndNextLiveExcludesPrimary) {
  fleet::Ring ring(4, 64);
  std::vector<bool> alive(4, true);
  for (std::uint32_t asn = 1; asn <= 200; ++asn) {
    EXPECT_EQ(ring.FirstLive(asn, alive), ring.Owner(asn));
    std::size_t hedge = ring.NextLiveDistinct(asn, ring.Owner(asn), alive);
    EXPECT_NE(hedge, ring.Owner(asn));
    EXPECT_LT(hedge, 4u);
  }

  const std::uint32_t asn = 7;
  const std::size_t owner = ring.Owner(asn);
  std::vector<bool> owner_dead(4, true);
  owner_dead[owner] = false;
  std::size_t failover = ring.FirstLive(asn, owner_dead);
  EXPECT_NE(failover, owner);
  EXPECT_TRUE(owner_dead[failover]);
  // The failover target is the shard that inherits the owner's range — the
  // same shard a hedge against the (excluded) owner would pick.
  EXPECT_EQ(failover, ring.NextLiveDistinct(asn, owner, owner_dead));

  std::vector<bool> only_owner(4, false);
  only_owner[owner] = true;
  EXPECT_EQ(ring.NextLiveDistinct(asn, owner, only_owner), fleet::Ring::npos);
  std::vector<bool> none(4, false);
  EXPECT_EQ(ring.FirstLive(asn, none), fleet::Ring::npos);
}

// --------------------------------------------------------------------------
// Hedge policy.

TEST(FleetHedge, WaitsMaxDelayBeforeFirstObservation) {
  fleet::HedgeOptions options;
  options.multiplier = 3.0;
  options.min_ms = 2.0;
  options.max_ms = 250.0;
  fleet::HedgePolicy policy(2, options);
  // Unknown shard speed: never hedge eagerly.
  EXPECT_DOUBLE_EQ(policy.DelayMsFor(0), 250.0);
  EXPECT_DOUBLE_EQ(policy.EwmaMsOf(0), 0.0);
}

TEST(FleetHedge, EwmaTracksLatencyAndDelayClamps) {
  fleet::HedgeOptions options;
  options.multiplier = 3.0;
  options.min_ms = 2.0;
  options.max_ms = 250.0;
  options.alpha = 0.2;
  fleet::HedgePolicy policy(2, options);

  policy.Observe(0, 10.0);  // first observation seeds the EWMA
  EXPECT_DOUBLE_EQ(policy.EwmaMsOf(0), 10.0);
  EXPECT_DOUBLE_EQ(policy.DelayMsFor(0), 30.0);
  policy.Observe(0, 20.0);  // 10 + 0.2 * (20 - 10)
  EXPECT_DOUBLE_EQ(policy.EwmaMsOf(0), 12.0);
  EXPECT_DOUBLE_EQ(policy.DelayMsFor(0), 36.0);

  // Clamped below by min_ms and above by max_ms; shards are independent.
  policy.Observe(1, 0.1);
  EXPECT_DOUBLE_EQ(policy.DelayMsFor(1), 2.0);
  policy.Observe(1, 100000.0);
  EXPECT_DOUBLE_EQ(policy.DelayMsFor(1), 250.0);
  EXPECT_DOUBLE_EQ(policy.EwmaMsOf(0), 12.0);
}

TEST(FleetHedge, RejectsBadConfiguration) {
  fleet::HedgeOptions bad_multiplier;
  bad_multiplier.multiplier = 0.0;
  EXPECT_THROW(fleet::HedgePolicy(1, bad_multiplier), InvalidArgument);
  fleet::HedgeOptions bad_alpha;
  bad_alpha.alpha = 1.5;
  EXPECT_THROW(fleet::HedgePolicy(1, bad_alpha), InvalidArgument);
  fleet::HedgeOptions bad_bounds;
  bad_bounds.min_ms = 10.0;
  bad_bounds.max_ms = 5.0;
  EXPECT_THROW(fleet::HedgePolicy(1, bad_bounds), InvalidArgument);
}

TEST(FleetBackend, ParsesAddressForms) {
  fleet::BackendAddress full = fleet::ParseBackendAddress("10.0.0.1:8080");
  EXPECT_EQ(full.host, "10.0.0.1");
  EXPECT_EQ(full.port, 8080);
  EXPECT_EQ(full.ToString(), "10.0.0.1:8080");
  // Host defaults to loopback for ":port" and bare-port forms.
  EXPECT_EQ(fleet::ParseBackendAddress(":7001").host, "127.0.0.1");
  EXPECT_EQ(fleet::ParseBackendAddress(":7001").port, 7001);
  EXPECT_EQ(fleet::ParseBackendAddress("7001").port, 7001);
  EXPECT_THROW(fleet::ParseBackendAddress("host:nope"), ParseError);
  EXPECT_THROW(fleet::ParseBackendAddress("host:99999"), ParseError);
  EXPECT_THROW(fleet::ParseBackendAddress("host:0"), ParseError);
}

// --------------------------------------------------------------------------
// k-way merge: the router's `top` answer must be byte-identical to the
// single-process encoding, which pins tie order, key order, and truncation.

Json Slice(std::uint64_t k,
           std::vector<std::pair<std::uint64_t, std::uint64_t>> rows) {
  Json result = Json::MakeObject();
  result["denominator"] = std::uint64_t{599};
  result["k"] = k;
  result["metric"] = "hierarchy_free";
  Json top = Json::MakeArray();
  for (const auto& [asn, reach] : rows) {
    Json entry = Json::MakeObject();
    entry["asn"] = asn;
    entry["name"] = StrFormat("AS%llu", static_cast<unsigned long long>(asn));
    entry["reach"] = reach;
    top.Append(std::move(entry));
  }
  result["top"] = std::move(top);
  return result;
}

TEST(FleetMerge, MergesDisjointSlicesBreakingTiesByAsn) {
  fleet::Ring ring(2, 8);
  std::vector<Json> slices = {Slice(3, {{20, 50}, {30, 40}}),
                              Slice(3, {{10, 50}, {40, 40}, {50, 1}})};
  std::string merged = fleet::MergeTop(slices, {}, ring);
  // Value descending, ASN ascending on ties, truncated to k — the same
  // order a single process sorting the union would emit, byte for byte.
  std::vector<Json> combined = {
      Slice(3, {{10, 50}, {20, 50}, {30, 40}, {40, 40}, {50, 1}})};
  EXPECT_EQ(merged, fleet::MergeTop(combined, {}, ring));
  EXPECT_EQ(merged,
            R"({"denominator":599,"k":3,"metric":"hierarchy_free","top":[)"
            R"({"asn":10,"name":"AS10","reach":50},)"
            R"({"asn":20,"name":"AS20","reach":50},)"
            R"({"asn":30,"name":"AS30","reach":40}]})");
  EXPECT_EQ(merged.find("\"partial\""), std::string::npos);
}

TEST(FleetMerge, HandlesEmptySlicesAndKBeyondTotal) {
  fleet::Ring ring(3, 8);
  // One shard owns no ranked origins and k exceeds the fleet-wide total:
  // the merge returns everything it has, in order, without padding.
  std::vector<Json> slices = {Slice(5, {}), Slice(5, {{7, 9}}), Slice(5, {{3, 11}})};
  std::string merged = fleet::MergeTop(slices, {}, ring);
  Json doc = Json::Parse(merged);
  EXPECT_EQ(doc.At("k").AsU64(), 5u);
  ASSERT_EQ(doc.At("top").size(), 2u);
  EXPECT_EQ(doc.At("top")[0].At("asn").AsU64(), 3u);
  EXPECT_EQ(doc.At("top")[1].At("asn").AsU64(), 7u);

  EXPECT_THROW(fleet::MergeTop({}, {}, ring), InvalidArgument);
}

TEST(FleetMerge, PartialAnswersNameDeadShardsAndTheirRanges) {
  fleet::Ring ring(3, 4);
  std::vector<Json> slices = {Slice(2, {{5, 10}})};
  Json doc = Json::Parse(fleet::MergeTop(slices, {1, 2}, ring));
  EXPECT_TRUE(doc.At("partial").AsBool());
  ASSERT_EQ(doc.At("missing_shards").size(), 2u);
  EXPECT_EQ(doc.At("missing_shards")[0].AsU64(), 1u);
  EXPECT_EQ(doc.At("missing_shards")[1].AsU64(), 2u);

  const Json& ranges = doc.At("missing_origin_ranges");
  ASSERT_EQ(ranges.size(), ring.RangesOf(1).size() + ring.RangesOf(2).size());
  // Each range is a [lo, hi] pair of 16-hex-digit strings (JSON numbers are
  // doubles and cannot carry a full uint64), round-trippable to the ring's
  // intervals.
  const auto shard1 = ring.RangesOf(1);
  for (std::size_t i = 0; i < shard1.size(); ++i) {
    ASSERT_EQ(ranges[i].size(), 2u);
    const std::string& lo = ranges[i][0].AsString();
    const std::string& hi = ranges[i][1].AsString();
    ASSERT_EQ(lo.size(), 16u);
    ASSERT_EQ(hi.size(), 16u);
    EXPECT_EQ(std::strtoull(lo.c_str(), nullptr, 16), shard1[i].first);
    EXPECT_EQ(std::strtoull(hi.c_str(), nullptr, 16), shard1[i].second);
  }
}

// --------------------------------------------------------------------------
// Sharded dispatchers: slice-local rankings merge byte-identical to the
// single-process answer, store ops are strictly owner-local, compute ops
// answer identically from any shard.

std::string RawResult(const std::string& response) {
  // The envelope is {...,"result":{...}} (no timing in these tests): the
  // result value's bytes run to the envelope's closing brace.
  std::size_t at = response.find("\"result\":");
  EXPECT_NE(at, std::string::npos) << response;
  at += 9;
  return response.substr(at, response.size() - at - 1);
}

class FleetShardTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kShards = 3;

  static const World& world() {
    static const World w = [] {
      GeneratorParams params = GeneratorParams::Era2015(600);
      params.seed = 1234;
      return GenerateWorld(params);
    }();
    return w;
  }
  static const Internet& internet() {
    static const Internet net(world().full_graph, world().tiers, world().metadata);
    return net;
  }
  static const std::string& sweep_path() {
    static const std::string path = [] {
      sweep::SweepOptions options;
      options.threads = 2;
      std::string p =
          (std::filesystem::temp_directory_path() / "flatnet_fleet_test.sweep").string();
      sweep::WriteSweepStore(p, sweep::RunSweep(internet(), options));
      return p;
    }();
    return path;
  }
  static std::unique_ptr<Dispatcher> MakeShard(std::size_t index, std::size_t count,
                                               bool with_sweep = true) {
    DispatcherOptions options{.threads = 2};
    options.shard_index = index;
    options.shard_count = count;
    auto d = std::make_unique<Dispatcher>(internet(), options);
    if (with_sweep) d->AttachSweepStore(sweep::SweepStore::Load(sweep_path()), sweep_path());
    return d;
  }
  static Dispatcher& shard(std::size_t index) {
    static std::vector<std::unique_ptr<Dispatcher>> shards = [] {
      std::vector<std::unique_ptr<Dispatcher>> v;
      for (std::size_t i = 0; i < kShards; ++i) v.push_back(MakeShard(i, kShards));
      return v;
    }();
    return *shards[index];
  }
  static Dispatcher& full() {
    static std::unique_ptr<Dispatcher> d = [] {
      auto p = std::make_unique<Dispatcher>(internet(), DispatcherOptions{.threads = 2});
      p->AttachSweepStore(sweep::SweepStore::Load(sweep_path()), sweep_path());
      return p;
    }();
    return *d;
  }
  static Asn AsnAt(AsId id) { return internet().graph().AsnOf(id); }
};

TEST_F(FleetShardTest, ShardStatusAdvertisesSliceIdentityAndRanges) {
  fleet::Ring ring(kShards, fleet::kDefaultVnodes);
  for (std::size_t i = 0; i < kShards; ++i) {
    Json status = Json::Parse(shard(i).HandleSync(R"({"op":"status","id":"s"})"));
    ASSERT_TRUE(status.Get("ok").AsBool());
    const Json& advertised = status.Get("result").Get("shard");
    EXPECT_EQ(advertised.At("index").AsU64(), i);
    EXPECT_EQ(advertised.At("count").AsU64(), kShards);
    EXPECT_EQ(advertised.At("vnodes").AsU64(), fleet::kDefaultVnodes);
    EXPECT_EQ(advertised.At("owned_ranges").size(), ring.RangesOf(i).size());
  }
  // Unsharded dispatchers advertise no shard identity.
  Json status = Json::Parse(full().HandleSync(R"({"op":"status","id":"s"})"));
  EXPECT_FALSE(status.Get("result").Contains("shard"));
}

TEST_F(FleetShardTest, MergedShardTopIsByteIdenticalToSingleProcess) {
  fleet::Ring ring(kShards, fleet::kDefaultVnodes);
  for (const char* metric : {"provider_free", "tier1_free", "hierarchy_free"}) {
    for (std::uint64_t k : {std::uint64_t{1}, std::uint64_t{10}, std::uint64_t{700}}) {
      std::string line =
          StrFormat(R"({"op":"top","k":%llu,"metric":"%s","id":3})",
                    static_cast<unsigned long long>(k), metric);
      std::vector<Json> slices;
      for (std::size_t i = 0; i < kShards; ++i) {
        Json response = Json::Parse(shard(i).HandleSync(line));
        ASSERT_TRUE(response.Get("ok").AsBool()) << response.Dump();
        slices.push_back(response.Get("result"));
      }
      EXPECT_EQ(fleet::MergeTop(slices, {}, ring), RawResult(full().HandleSync(line)))
          << metric << " k=" << k;
    }
  }
}

TEST_F(FleetShardTest, ComputeOpsAnswerIdenticallyFromEveryShard) {
  // Every shard holds the full topology: a reach query answers the same
  // regardless of which shard computes it (what makes failover sound).
  for (AsId origin : {AsId{11}, AsId{207}, AsId{492}}) {
    std::string line = StrFormat(
        R"({"op":"reach","origin":%u,"mode":"hierarchy_free","id":4})", AsnAt(origin));
    std::string reference = RawResult(full().HandleSync(line));
    for (std::size_t i = 0; i < kShards; ++i) {
      EXPECT_EQ(RawResult(shard(i).HandleSync(line)), reference) << "shard " << i;
    }
  }
}

TEST_F(FleetShardTest, StoreOpsAreOwnerLocalAndRejectionsNameTheOwner) {
  // A leak and a failure campaign over three tier-2 victims, attached to
  // one unsharded reference and three sharded dispatchers.
  std::vector<AsId> subjects = {world().tiers.tier2[0], world().tiers.tier2[1],
                                world().tiers.tier2[2]};
  std::vector<leaksim::LeakCellSpec> leak_cells;
  std::vector<failsim::FailCellSpec> fail_cells;
  for (AsId subject : subjects) {
    leaksim::LeakCellSpec leak;
    leak.victim = subject;
    leak.scenario = LeakScenario::kAnnounceAll;
    leak.seed = 0x5eed;
    leak.trials = 16;
    leak_cells.push_back(leak);
    failsim::FailCellSpec fail;
    fail.origin = subject;
    fail.scenario = failsim::FailScenario::kSingleAs;
    fail.seed = 0x5eed;
    fail.trials = 8;
    fail_cells.push_back(fail);
  }
  std::string leak_path =
      (std::filesystem::temp_directory_path() / "flatnet_fleet_test.leak").string();
  leaksim::WriteLeakStore(leak_path, leaksim::RunLeakCampaign(internet(), leak_cells));
  std::string fail_path =
      (std::filesystem::temp_directory_path() / "flatnet_fleet_test.fail").string();
  failsim::WriteFailStore(fail_path, failsim::RunFailureCampaign(internet(), fail_cells));

  auto attach = [&](Dispatcher& d) {
    d.AttachLeakStore(leaksim::LeakStore::Load(leak_path), leak_path);
    d.AttachFailStore(failsim::FailStore::Load(fail_path), fail_path);
  };
  Dispatcher reference(internet(), DispatcherOptions{.threads = 2});
  attach(reference);
  std::vector<std::unique_ptr<Dispatcher>> shards;
  for (std::size_t i = 0; i < kShards; ++i) {
    shards.push_back(MakeShard(i, kShards, /*with_sweep=*/false));
    attach(*shards[i]);
  }
  std::filesystem::remove(leak_path);
  std::filesystem::remove(fail_path);

  fleet::Ring ring(kShards, fleet::kDefaultVnodes);
  for (AsId subject : subjects) {
    Asn asn = AsnAt(subject);
    std::size_t owner = ring.Owner(asn);
    for (std::string line :
         {StrFormat(R"({"op":"leakdist","victim":%u,"scenario":"none","q":[0.5],"id":5})",
                    asn),
          StrFormat(R"({"op":"hegemony","origin":%u,"k":3,"id":5})", asn),
          StrFormat(
              R"({"op":"failure","origin":%u,"scenario":"single_as","q":[0.5],"id":5})",
              asn)}) {
      // The owner's answer matches the unsharded reference exactly.
      EXPECT_EQ(RawResult(shards[owner]->HandleSync(line)),
                RawResult(reference.HandleSync(line)))
          << line;
      // Every other shard refuses and names the owner to route to.
      for (std::size_t i = 0; i < kShards; ++i) {
        if (i == owner) continue;
        Json rejected = Json::Parse(shards[i]->HandleSync(line));
        ASSERT_FALSE(rejected.Get("ok").AsBool()) << line;
        EXPECT_EQ(rejected.Get("error").Get("code").AsString(), "bad_request");
        EXPECT_NE(rejected.Get("error").Get("message").AsString().find(
                      StrFormat("belongs to shard %zu", owner)),
                  std::string::npos);
      }
    }
  }
}

// --------------------------------------------------------------------------
// End-to-end router: real shard servers over sockets, byte identity, a
// shard death degrading to partial / failover / unavailable, and a restart
// healing the ring.

class FleetRouterTest : public FleetShardTest {
 protected:
  static std::uint64_t WaitFor(const std::function<bool()>& done) {
    auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (!done()) {
      if (std::chrono::steady_clock::now() > deadline) return 0;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return 1;
  }
  // First AsId whose ASN the ring assigns to `shard`, skipping `used` ids.
  static AsId OwnedBy(const fleet::Ring& ring, std::size_t shard, AsId from = 1) {
    for (AsId id = from; id < internet().num_ases(); ++id) {
      if (ring.Owner(AsnAt(id)) == shard) return id;
    }
    ADD_FAILURE() << "no AS owned by shard " << shard;
    return 0;
  }
};

TEST_F(FleetRouterTest, RoutesMergesFailsOverAndHeals) {
  std::vector<std::unique_ptr<Dispatcher>> dispatchers;
  std::vector<std::unique_ptr<serve::Server>> servers;
  std::vector<std::thread> running;
  std::vector<std::uint16_t> ports;
  for (std::size_t i = 0; i < kShards; ++i) {
    dispatchers.push_back(MakeShard(i, kShards));
    servers.push_back(
        std::make_unique<serve::Server>(*dispatchers[i], serve::ServerOptions{}));
    ports.push_back(servers[i]->port());
    running.emplace_back([server = servers[i].get()] { server->Run(); });
  }

  fleet::RouterOptions options;
  for (std::uint16_t port : ports) {
    options.backends.push_back(
        fleet::ParseBackendAddress(StrFormat("127.0.0.1:%u", port)));
  }
  options.probe_interval = std::chrono::milliseconds(50);
  fleet::FleetRouter router(options);
  router.Start();
  EXPECT_EQ(router.pool().NumAlive(), kShards);

  // Scatter-gathered `top` and relayed point queries are byte-identical to
  // the single-process dispatcher (top is never cached, so the whole
  // envelope must match; the relayed queries are all cold on both sides).
  for (const char* metric : {"provider_free", "tier1_free", "hierarchy_free"}) {
    std::string line = StrFormat(R"({"op":"top","k":10,"metric":"%s","id":20})", metric);
    EXPECT_EQ(router.HandleSync(line), full().HandleSync(line)) << metric;
  }
  fleet::Ring ring(kShards, fleet::kDefaultVnodes);
  for (std::size_t shard = 0; shard < kShards; ++shard) {
    std::string line =
        StrFormat(R"({"op":"reach","origin":%u,"mode":"provider_free","id":21})",
                  AsnAt(OwnedBy(ring, shard, 40)));
    EXPECT_EQ(RawResult(router.HandleSync(line)), RawResult(full().HandleSync(line)));
  }

  // The merged fleet status is what loadgen's preflight reads.
  Json status = Json::Parse(router.HandleSync(R"({"op":"status","id":"s"})"));
  ASSERT_TRUE(status.Get("ok").AsBool());
  const Json& fleet_view = status.Get("result").Get("fleet");
  EXPECT_EQ(status.Get("result").Get("role").AsString(), "router");
  EXPECT_EQ(fleet_view.At("alive").AsU64(), kShards);
  EXPECT_EQ(fleet_view.At("ring").At("shards").AsU64(), kShards);
  ASSERT_EQ(fleet_view.At("shards").size(), kShards);
  EXPECT_TRUE(status.Get("result").Get("sweep_store").Get("loaded").AsBool());

  // Kill shard 1. The prober notices within a few 50 ms rounds.
  servers[1]->RequestShutdown();
  running[1].join();
  servers[1].reset();
  ASSERT_TRUE(WaitFor([&] { return !router.pool().alive(1); }));

  // Ranking answers degrade to partial instead of failing.
  std::string top_line = R"({"op":"top","k":10,"metric":"hierarchy_free","id":22})";
  Json partial = Json::Parse(router.HandleSync(top_line));
  ASSERT_TRUE(partial.Get("ok").AsBool()) << partial.Dump();
  EXPECT_TRUE(partial.Get("result").At("partial").AsBool());
  ASSERT_EQ(partial.Get("result").At("missing_shards").size(), 1u);
  EXPECT_EQ(partial.Get("result").At("missing_shards")[0].AsU64(), 1u);
  EXPECT_GT(partial.Get("result").At("missing_origin_ranges").size(), 0u);

  // Compute queries for the dead shard's origins fail over and still match
  // the single-process answer.
  AsId orphan = OwnedBy(ring, 1, 100);
  std::string reach_line = StrFormat(
      R"({"op":"reach","origin":%u,"mode":"hierarchy_free","id":23})", AsnAt(orphan));
  EXPECT_EQ(RawResult(router.HandleSync(reach_line)),
            RawResult(full().HandleSync(reach_line)));

  // Store queries for the dead owner answer a structured `unavailable`
  // naming the shard — never a wrong answer from a shard without the slice.
  Json unavailable = Json::Parse(router.HandleSync(
      StrFormat(R"({"op":"hegemony","origin":%u,"k":3,"id":24})", AsnAt(orphan))));
  ASSERT_FALSE(unavailable.Get("ok").AsBool());
  EXPECT_EQ(unavailable.Get("error").Get("code").AsString(), "unavailable");
  EXPECT_NE(unavailable.Get("error").Get("message").AsString().find("shard 1"),
            std::string::npos);

  fleet::RouterStats mid = router.stats();
  EXPECT_GE(mid.partial_answers, 1u);
  EXPECT_GE(mid.unavailable, 1u);

  // Restart shard 1 on its old port: a probe success heals the ring and
  // full byte identity returns.
  servers[1] = std::make_unique<serve::Server>(
      *dispatchers[1], serve::ServerOptions{.port = ports[1]});
  running[1] = std::thread([server = servers[1].get()] { server->Run(); });
  ASSERT_TRUE(WaitFor([&] { return router.pool().alive(1); }));
  EXPECT_EQ(router.HandleSync(top_line), full().HandleSync(top_line));
  EXPECT_GE(router.pool().deaths(), 1u);

  router.Stop();
  for (std::size_t i = 0; i < kShards; ++i) {
    if (servers[i]) servers[i]->RequestShutdown();
    if (running[i].joinable()) running[i].join();
  }
}

TEST(FleetHedging, FirstArrivalWinsAndLoserIsAbandoned) {
  // Two canned backends: shard 0 sleeps well past the hedge delay, shard 1
  // answers immediately. Both answer the router's status probe at once so
  // they stay marked alive.
  std::atomic<int> slow_hits{0};
  std::atomic<int> fast_hits{0};
  auto canned = [](std::atomic<int>& hits, bool slow, const char* who) {
    return [&hits, slow, who](const std::string& line,
                              std::function<void(std::string)> done,
                              std::chrono::steady_clock::time_point) {
      if (line.find("fleet-probe") != std::string::npos) {
        done(R"({"id":"fleet-probe","ok":true,"result":{}})");
        return;
      }
      hits.fetch_add(1);
      if (slow) std::this_thread::sleep_for(std::chrono::milliseconds(400));
      done(StrFormat(R"({"id":1,"ok":true,"result":{"who":"%s"}})", who));
    };
  };
  serve::Server slow_server(canned(slow_hits, true, "slow"), nullptr,
                            serve::ServerOptions{});
  serve::Server fast_server(canned(fast_hits, false, "fast"), nullptr,
                            serve::ServerOptions{});
  std::thread slow_running([&] { slow_server.Run(); });
  std::thread fast_running([&] { fast_server.Run(); });

  fleet::RouterOptions options;
  options.backends = {
      fleet::ParseBackendAddress(StrFormat("127.0.0.1:%u", slow_server.port())),
      fleet::ParseBackendAddress(StrFormat("127.0.0.1:%u", fast_server.port()))};
  // Hedge after at most 20 ms — far below the slow shard's 400 ms — and
  // probe rarely enough to stay out of the test's way.
  options.hedge.multiplier = 1.0;
  options.hedge.min_ms = 5.0;
  options.hedge.max_ms = 20.0;
  options.probe_interval = std::chrono::milliseconds(60000);
  fleet::FleetRouter router(options);
  router.Start();
  ASSERT_EQ(router.pool().NumAlive(), 2u);
  // Router counters are process-global metrics, so assert deltas.
  const fleet::RouterStats baseline = router.stats();

  // An origin owned by the slow shard, so the hedge targets the fast one.
  fleet::Ring ring(2, fleet::kDefaultVnodes);
  std::uint32_t asn = 1;
  while (ring.Owner(asn) != 0) ++asn;

  std::string line = StrFormat(R"({"op":"reach","origin":%u,"id":1})", asn);
  Json first = Json::Parse(router.HandleSync(line));
  ASSERT_TRUE(first.Get("ok").AsBool()) << first.Dump();
  EXPECT_EQ(first.Get("result").Get("who").AsString(), "fast");
  fleet::RouterStats stats = router.stats();
  EXPECT_EQ(stats.hedge_issued - baseline.hedge_issued, 1u);
  EXPECT_EQ(stats.hedge_won - baseline.hedge_won, 1u);
  EXPECT_EQ(slow_hits.load(), 1);
  EXPECT_EQ(fast_hits.load(), 1);

  // The abandoned response must not leak into a later request: the loser's
  // connection is closed, not pooled, so a second query hedges cleanly and
  // again returns the fast shard's bytes.
  Json second = Json::Parse(router.HandleSync(line));
  ASSERT_TRUE(second.Get("ok").AsBool()) << second.Dump();
  EXPECT_EQ(second.Get("result").Get("who").AsString(), "fast");
  stats = router.stats();
  EXPECT_EQ(stats.hedge_issued - baseline.hedge_issued, 2u);
  EXPECT_EQ(stats.hedge_won - baseline.hedge_won, 2u);

  // With hedging off the owner's slow answer is simply waited out.
  fleet::RouterOptions no_hedge = options;
  no_hedge.hedging = false;
  fleet::FleetRouter patient(no_hedge);
  patient.Start();
  Json waited = Json::Parse(patient.HandleSync(line));
  ASSERT_TRUE(waited.Get("ok").AsBool()) << waited.Dump();
  EXPECT_EQ(waited.Get("result").Get("who").AsString(), "slow");
  EXPECT_EQ(patient.stats().hedge_issued, stats.hedge_issued);  // no new hedges
  patient.Stop();

  router.Stop();
  slow_server.RequestShutdown();
  fast_server.RequestShutdown();
  slow_running.join();
  fast_running.join();
}

// --------------------------------------------------------------------------
// Connection cap: past the limit an accept receives one structured
// `overloaded` line and a close — backpressure, not a mystery RST.

int ConnectTo(std::uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  return fd;
}

std::string ReadLineFrom(int fd) {
  std::string buffer;
  char chunk[4096];
  while (buffer.find('\n') == std::string::npos) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  return buffer.substr(0, buffer.find('\n'));
}

TEST(ServeServer, ConnectionCapRejectsWithStructuredOverloadThenRecovers) {
  serve::ServerOptions options;
  options.max_connections = 1;
  serve::Server server(
      [](const std::string&, std::function<void(std::string)> done,
         std::chrono::steady_clock::time_point) { done(R"({"ok":true})"); },
      nullptr, options);
  std::thread running([&] { server.Run(); });

  int first = ConnectTo(server.port());
  std::string ping = "{\"op\":\"status\"}\n";
  ASSERT_EQ(::send(first, ping.data(), ping.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(ping.size()));
  EXPECT_NE(ReadLineFrom(first).find("\"ok\":true"), std::string::npos);

  // The second connection is over the cap: one overloaded error, then EOF.
  int second = ConnectTo(server.port());
  Json rejection = Json::Parse(ReadLineFrom(second));
  EXPECT_FALSE(rejection.Get("ok").AsBool());
  EXPECT_EQ(rejection.Get("error").Get("code").AsString(), "overloaded");
  char byte = 0;
  EXPECT_EQ(::recv(second, &byte, 1, 0), 0);  // server closed after the line
  ::close(second);

  // Freeing the slot lets the next client in once the reaper runs (the
  // acceptor reaps finished readers on its 100 ms tick).
  ::close(first);
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  bool recovered = false;
  while (!recovered && std::chrono::steady_clock::now() < deadline) {
    int retry = ConnectTo(server.port());
    ASSERT_EQ(::send(retry, ping.data(), ping.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(ping.size()));
    recovered = ReadLineFrom(retry).find("\"ok\":true") != std::string::npos;
    ::close(retry);
    if (!recovered) std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_TRUE(recovered);

  server.RequestShutdown();
  running.join();
}

}  // namespace
}  // namespace flatnet
