#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

#include "util/bitset.h"
#include "util/env.h"
#include "util/epoch.h"
#include "util/error.h"
#include "util/narrow.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/stopwatch.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace flatnet {
namespace {

TEST(Strings, SplitKeepsEmptyFields) {
  auto parts = Split("a||b|", '|');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitWhitespaceDropsEmpty) {
  auto parts = SplitWhitespace("  foo \t bar\nbaz  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "foo");
  EXPECT_EQ(parts[1], "bar");
  EXPECT_EQ(parts[2], "baz");
}

TEST(Strings, TrimBothEnds) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t\n "), "");
  EXPECT_EQ(Trim("abc"), "abc");
}

TEST(Strings, ParseU64Strict) {
  EXPECT_EQ(ParseU64("123"), 123u);
  EXPECT_EQ(ParseU64("0"), 0u);
  EXPECT_FALSE(ParseU64("12a").has_value());
  EXPECT_FALSE(ParseU64("").has_value());
  EXPECT_FALSE(ParseU64("-1").has_value());
  EXPECT_FALSE(ParseU64(" 1").has_value());
}

TEST(Strings, ParseI64AndDouble) {
  EXPECT_EQ(ParseI64("-1"), -1);
  EXPECT_EQ(ParseI64("42"), 42);
  EXPECT_FALSE(ParseI64("4.2").has_value());
  EXPECT_DOUBLE_EQ(*ParseDouble("2.5"), 2.5);
  EXPECT_FALSE(ParseDouble("x").has_value());
}

TEST(Strings, WithCommas) {
  EXPECT_EQ(WithCommas(0), "0");
  EXPECT_EQ(WithCommas(999), "999");
  EXPECT_EQ(WithCommas(1000), "1,000");
  EXPECT_EQ(WithCommas(69488), "69,488");
  EXPECT_EQ(WithCommas(1234567890), "1,234,567,890");
}

TEST(Strings, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f%%", 12.345), "12.35%");
}

TEST(Strings, StartsEndsJoinLower) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(AsciiLower("AbC"), "abc");
}

TEST(Rng, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, UniformBounds) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.UniformU64(17), 17u);
    double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    std::int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
  EXPECT_THROW(rng.UniformU64(0), InvalidArgument);
}

TEST(Rng, UniformIsRoughlyUniform) {
  Rng rng(99);
  std::vector<int> counts(10, 0);
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) ++counts[rng.UniformU64(10)];
  for (int c : counts) {
    EXPECT_NEAR(c, kSamples / 10, 500);
  }
}

TEST(Rng, BernoulliEdges) {
  Rng rng(2);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits, 3000, 200);
}

TEST(Rng, ZipfHeavyTail) {
  Rng rng(3);
  std::size_t ones = 0;
  for (int i = 0; i < 5000; ++i) {
    std::uint64_t v = rng.Zipf(1000, 1.5);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 1000u);
    if (v == 1) ++ones;
  }
  // Rank 1 dominates a Zipf(1.5) distribution.
  EXPECT_GT(ones, 1500u);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(4);
  auto sample = rng.SampleWithoutReplacement(100, 50);
  ASSERT_EQ(sample.size(), 50u);
  std::sort(sample.begin(), sample.end());
  EXPECT_EQ(std::adjacent_find(sample.begin(), sample.end()), sample.end());
  EXPECT_THROW(rng.SampleWithoutReplacement(3, 4), InvalidArgument);
}

TEST(Rng, PickWeightedRespectsWeights) {
  Rng rng(5);
  std::vector<double> weights{0.0, 9.0, 1.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 10000; ++i) ++counts[rng.PickWeighted(weights)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_GT(counts[1], counts[2] * 5);
  EXPECT_THROW(rng.PickWeighted({0.0, 0.0}), InvalidArgument);
}

TEST(Rng, PowerLawWithinRange) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.PowerLaw(1.0, 100.0, 2.0);
    EXPECT_GE(v, 1.0);
    EXPECT_LE(v, 100.0);
  }
}

TEST(Stats, OnlineStatsMatchesClosedForm) {
  OnlineStats stats;
  for (double x : {1.0, 2.0, 3.0, 4.0}) stats.Add(x);
  EXPECT_EQ(stats.count(), 4u);
  EXPECT_DOUBLE_EQ(stats.mean(), 2.5);
  EXPECT_DOUBLE_EQ(stats.variance(), 1.25);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 4.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 10.0);
}

TEST(Stats, HistogramClampsOutliers) {
  Histogram h(0.0, 10.0, 10);
  h.Add(-5.0);
  h.Add(15.0);
  h.Add(5.0);
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(9), 1.0);
  EXPECT_DOUBLE_EQ(h.count(5), 1.0);
  EXPECT_DOUBLE_EQ(h.total(), 3.0);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), InvalidArgument);
}

TEST(Stats, EmpiricalCdf) {
  EmpiricalCdf cdf({4.0, 1.0, 3.0, 2.0});
  EXPECT_DOUBLE_EQ(cdf.At(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.At(2.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf.At(10.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(1.0), 4.0);
  EXPECT_THROW(EmpiricalCdf({}), InvalidArgument);
}

TEST(Stats, QuantileUsesNearestRank) {
  // Regression pins for the free Quantile(): the benches once computed
  // sorted[(size_t)(q * (n - 1))], whose truncation reported the sample
  // BELOW the requested rank (for n=10, q=0.85 gave index 7 instead of
  // nearest-rank ceil(0.85 * 10) = 9 → sorted[8]).
  std::vector<double> v{9, 8, 7, 6, 5, 4, 3, 2, 1, 0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.85), 8.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.1), 0.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.99), 9.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 9.0);
  // Out-of-range q clamps; an empty series is 0, not UB.
  EXPECT_DOUBLE_EQ(Quantile(v, 1.5), 9.0);
  EXPECT_DOUBLE_EQ(Quantile({}, 0.5), 0.0);
  // Single sample: every quantile is that sample.
  EXPECT_DOUBLE_EQ(Quantile({42.0}, 0.01), 42.0);
  EXPECT_DOUBLE_EQ(Quantile({42.0}, 0.99), 42.0);
  // The free function agrees with EmpiricalCdf::Quantile everywhere.
  EmpiricalCdf cdf(v);
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.85, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(Quantile(v, q), cdf.Quantile(q)) << "q=" << q;
  }
}

TEST(Stats, Correlations) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y{2, 4, 6, 8, 10};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
  EXPECT_NEAR(SpearmanCorrelation(x, y), 1.0, 1e-12);
  std::vector<double> z{5, 4, 3, 2, 1};
  EXPECT_NEAR(PearsonCorrelation(x, z), -1.0, 1e-12);
  std::vector<double> constant{1, 1, 1, 1, 1};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(x, constant), 0.0);
}

TEST(Bitset, BasicOps) {
  Bitset b(130);
  EXPECT_EQ(b.size(), 130u);
  EXPECT_EQ(b.Count(), 0u);
  b.Set(0);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Test(64));
  EXPECT_FALSE(b.Test(63));
  EXPECT_EQ(b.Count(), 3u);
  b.Reset(64);
  EXPECT_EQ(b.Count(), 2u);
}

TEST(Bitset, SetAllRespectsTail) {
  Bitset b(70, true);
  EXPECT_EQ(b.Count(), 70u);
  Bitset inverted = ~b;
  EXPECT_EQ(inverted.Count(), 0u);
}

TEST(Bitset, Algebra) {
  Bitset a(100), b(100);
  a.Set(1);
  a.Set(2);
  b.Set(2);
  b.Set(3);
  Bitset u = a;
  u |= b;
  EXPECT_EQ(u.Count(), 3u);
  Bitset i = a;
  i &= b;
  EXPECT_EQ(i.Count(), 1u);
  EXPECT_TRUE(i.Test(2));
  Bitset d = a;
  d -= b;
  EXPECT_EQ(d.Count(), 1u);
  EXPECT_TRUE(d.Test(1));
  EXPECT_TRUE(i.IsSubsetOf(a));
  EXPECT_FALSE(a.IsSubsetOf(b));
  EXPECT_EQ(a.CountAnd(b), 1u);
}

TEST(Bitset, FusedKernels) {
  Bitset a(100), b(100);
  a.Set(1);
  a.Set(2);
  b.Set(2);
  b.Set(3);
  b.Set(99);
  EXPECT_EQ(a.AndNotCount(b), 1u);  // {1}
  EXPECT_EQ(b.AndNotCount(a), 2u);  // {3, 99}
  Bitset u = a;
  EXPECT_EQ(u.OrCountNew(b), 2u);  // {3, 99} are new
  EXPECT_EQ(u.Count(), 4u);
  EXPECT_EQ(u.OrCountNew(b), 0u);  // already merged
}

TEST(Bitset, WordAccess) {
  Bitset b(130);
  EXPECT_EQ(b.num_words(), 3u);
  b.Set(0);
  b.Set(65);
  EXPECT_EQ(b.Word(0), 1u);
  EXPECT_EQ(b.Word(1), 2u);
  b.StoreWord(0, 0xffu);
  EXPECT_EQ(b.Count(), 9u);
  // Stores into the last word clear bits past size().
  b.StoreWord(2, ~std::uint64_t{0});
  EXPECT_EQ(b.Word(2), 3u);
  EXPECT_EQ(b.Count(), 11u);
}

#ifndef NDEBUG
using BitsetDeathTest = ::testing::Test;

TEST(BitsetDeathTest, SizeMismatchAssertsInDebug) {
  // The set-algebra operators document an equal-size contract enforced by
  // debug asserts (matching Test/Set); release builds skip the check.
  Bitset a(100), other(50);
  EXPECT_DEATH(a |= other, "size mismatch");
  EXPECT_DEATH(a &= other, "size mismatch");
  EXPECT_DEATH(a -= other, "size mismatch");
  EXPECT_DEATH((void)a.IsSubsetOf(other), "size mismatch");
  EXPECT_DEATH((void)a.CountAnd(other), "size mismatch");
  EXPECT_DEATH((void)a.OrCountNew(other), "size mismatch");
  EXPECT_DEATH((void)a.AndNotCount(other), "size mismatch");
}
#endif

TEST(Bitset, ForEachSetAscending) {
  Bitset b(200);
  std::vector<std::size_t> expected{3, 70, 64, 199};
  for (auto i : expected) b.Set(i);
  std::sort(expected.begin(), expected.end());
  std::vector<std::size_t> seen;
  b.ForEachSet([&](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, expected);
}

TEST(Table, RendersAlignedColumns) {
  TextTable table;
  table.AddColumn("name");
  table.AddColumn("count", TextTable::Align::kRight);
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "1000"});
  std::string out = table.ToString();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1000"), std::string::npos);
  // Every line has equal width.
  auto lines = Split(out, '\n');
  std::size_t width = lines[0].size();
  for (auto line : lines) {
    if (!line.empty()) {
      EXPECT_EQ(line.size(), width);
    }
  }
  EXPECT_THROW(table.AddRow({"too", "many", "cells"}), InvalidArgument);
}

TEST(Stopwatch, PauseFreezesElapsedTime) {
  Stopwatch sw;
  sw.Pause();
  EXPECT_FALSE(sw.running());
  double frozen = sw.ElapsedSeconds();
  Stopwatch busy;
  while (busy.ElapsedMillis() < 5) {
  }
  // While paused, elapsed time is exactly the accumulated value.
  EXPECT_DOUBLE_EQ(sw.ElapsedSeconds(), frozen);
  sw.Pause();  // idempotent
  EXPECT_DOUBLE_EQ(sw.ElapsedSeconds(), frozen);
}

TEST(Stopwatch, ResumeAccumulates) {
  Stopwatch sw;
  Stopwatch wall;
  while (wall.ElapsedMillis() < 2) {
  }
  sw.Pause();
  double first = sw.ElapsedSeconds();
  EXPECT_GT(first, 0.0);
  sw.Resume();
  EXPECT_TRUE(sw.running());
  sw.Resume();  // idempotent
  Stopwatch busy;
  while (busy.ElapsedMillis() < 2) {
  }
  // Accumulates across the pause: strictly more than the first segment.
  EXPECT_GT(sw.ElapsedSeconds(), first);
  sw.Restart();
  EXPECT_TRUE(sw.running());
  EXPECT_LT(sw.ElapsedSeconds(), first + 2.0);
}

TEST(ThreadPool, GlobalStatsCountTasks) {
  ThreadPoolStats before = GlobalThreadPoolStats();
  {
    ThreadPool pool(4);
    EXPECT_GE(GlobalThreadPoolStats().threads, before.threads + 4);
    pool.ParallelFor(0, 100, [](std::size_t) {});
  }
  ThreadPoolStats after = GlobalThreadPoolStats();
  EXPECT_GT(after.tasks_submitted, before.tasks_submitted);
  EXPECT_GT(after.tasks_executed, before.tasks_executed);
  EXPECT_EQ(after.tasks_submitted - before.tasks_submitted,
            after.tasks_executed - before.tasks_executed);
  EXPECT_GT(after.peak_queue_depth, 0);
  EXPECT_EQ(after.threads, before.threads);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(0, 1000, [&](std::size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, InlineWhenSingleThread) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 0u);
  int sum = 0;
  pool.ParallelFor(0, 10, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum, 45);
}

TEST(ThreadPool, EmptyParallelForRangeIsNoOp) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(5, 5, [&](std::size_t) { ++calls; });
  pool.ParallelFor(7, 3, [&](std::size_t) { ++calls; });  // inverted = empty
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, ZeroWorkerSubmitRunsInline) {
  ThreadPool pool(1);  // <= 1 thread means no workers: inline execution
  ASSERT_EQ(pool.thread_count(), 0u);
  std::thread::id ran_on;
  pool.Submit([&] { ran_on = std::this_thread::get_id(); });
  EXPECT_EQ(ran_on, std::this_thread::get_id());
  EXPECT_EQ(pool.PendingTasks(), 0u);
}

TEST(ThreadPool, ZeroWorkerTrySubmitRespectsBound) {
  ThreadPool pool(1);
  bool ran = false;
  EXPECT_FALSE(pool.TrySubmit([&] { ran = true; }, 0));
  EXPECT_FALSE(ran);
  EXPECT_TRUE(pool.TrySubmit([&] { ran = true; }, 1));
  EXPECT_TRUE(ran);
}

TEST(ThreadPool, WaitWithoutSubmissionsReturnsImmediately) {
  ThreadPool pool(4);
  pool.Wait();  // must not block
  ThreadPool inline_pool(1);
  inline_pool.Wait();
}

TEST(ThreadPool, TrySubmitShedsLoadAtHighWaterMark) {
  ThreadPool pool(2);
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  auto blocker = [&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  };
  // in_flight_ counts submitted-but-unfinished, so four admissions against
  // a bound of four succeed deterministically and the fifth must shed.
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(pool.TrySubmit(blocker, 4)) << "admission " << i;
  }
  EXPECT_EQ(pool.PendingTasks(), 4u);
  EXPECT_FALSE(pool.TrySubmit(blocker, 4));
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  pool.Wait();
  EXPECT_EQ(pool.PendingTasks(), 0u);
  EXPECT_TRUE(pool.TrySubmit([] {}, 4));  // capacity is back after the drain
  pool.Wait();
}

TEST(ThreadPool, QueueStatsStayMonotonicUnderConcurrentSubmit) {
  ThreadPoolStats before = GlobalThreadPoolStats();
  ThreadPool pool(4);
  std::atomic<bool> monotonic{true};
  std::thread sampler([&] {
    std::uint64_t last_submitted = before.tasks_submitted;
    std::uint64_t last_executed = before.tasks_executed;
    std::int64_t last_peak = before.peak_queue_depth;
    for (int i = 0; i < 200; ++i) {
      ThreadPoolStats stats = GlobalThreadPoolStats();
      if (stats.tasks_submitted < last_submitted || stats.tasks_executed < last_executed ||
          stats.peak_queue_depth < last_peak) {
        monotonic = false;
      }
      last_submitted = stats.tasks_submitted;
      last_executed = stats.tasks_executed;
      last_peak = stats.peak_queue_depth;
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> submitters;
  for (int t = 0; t < 3; ++t) {
    submitters.emplace_back([&] {
      for (int i = 0; i < 200; ++i) pool.Submit([] {});
    });
  }
  for (auto& submitter : submitters) submitter.join();
  sampler.join();
  pool.Wait();
  EXPECT_TRUE(monotonic.load());
  ThreadPoolStats after = GlobalThreadPoolStats();
  EXPECT_GE(after.tasks_submitted - before.tasks_submitted, 600u);
  EXPECT_EQ(after.tasks_submitted - before.tasks_submitted,
            after.tasks_executed - before.tasks_executed);
}

TEST(Env, ScaledCountsHaveFloor) {
  EXPECT_GE(ScaledCount(10, 5), 5u);
  EXPECT_GE(ScaledTrials(1, 1), 1u);
}

class RngSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedTest, ForkIndependence) {
  Rng parent(GetParam());
  Rng child = parent.Fork();
  // Child stream should not mirror the parent stream.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.NextU64() == child.NextU64()) ++same;
  }
  EXPECT_LT(same, 4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedTest, ::testing::Values(1, 2, 42, 1337, 99999));

TEST(CheckedNarrow, PassesValuesThatFit) {
  EXPECT_EQ(CheckedNarrow32(std::size_t{0}, "test"), 0u);
  EXPECT_EQ(CheckedNarrow32(std::size_t{0xffffffff}, "test"), 0xffffffffu);
  EXPECT_EQ((CheckedNarrow<std::uint8_t>(std::uint64_t{255}, "test")), 255u);
}

TEST(CheckedNarrow, ThrowsNamingContextAndCount) {
  try {
    CheckedNarrow32(std::size_t{0x100000000ull}, "AsGraphBuilder edge index");
    FAIL() << "expected CheckedNarrow32 to throw";
  } catch (const Error& e) {
    std::string what = e.what();
    EXPECT_NE(what.find("AsGraphBuilder edge index"), std::string::npos) << what;
    EXPECT_NE(what.find("4294967296"), std::string::npos) << what;
  }
}

TEST(EpochStamps, TracksVisitsPerEpoch) {
  EpochStamps stamps(4);
  stamps.NextEpoch();
  EXPECT_FALSE(stamps.Visited(2));
  EXPECT_TRUE(stamps.TryVisit(2));
  EXPECT_FALSE(stamps.TryVisit(2));
  EXPECT_TRUE(stamps.Visited(2));
  stamps.NextEpoch();
  EXPECT_FALSE(stamps.Visited(2));
  stamps.MarkVisited(0);
  EXPECT_TRUE(stamps.Visited(0));
}

// Regression for the epoch-counter wraparound guard: after 2^32 epochs the
// counter returns to 0 — the value every untouched slot still holds — and
// without the guard in NextEpoch every node would read as already visited.
// Reverting the guard makes this test fail.
TEST(EpochStamps, WraparoundClearsStaleStamps) {
  EpochStamps stamps(3);
  stamps.SetEpochForTesting(0xfffffffeu);
  stamps.NextEpoch();  // -> 0xffffffff
  EXPECT_EQ(stamps.epoch(), 0xffffffffu);
  stamps.MarkVisited(1);
  EXPECT_TRUE(stamps.Visited(1));
  stamps.NextEpoch();  // wraps: must clear, not alias stamp 0 as visited
  EXPECT_EQ(stamps.epoch(), 1u);
  EXPECT_FALSE(stamps.Visited(0));
  EXPECT_FALSE(stamps.Visited(1));
  EXPECT_FALSE(stamps.Visited(2));
  EXPECT_TRUE(stamps.TryVisit(1));
}

}  // namespace
}  // namespace flatnet
