// Route collectors + Gao relationship inference: the upstream pipeline that
// produces CAIDA-style datasets from observed AS paths.
#include <gtest/gtest.h>

#include "bgp/asrank.h"
#include "bgp/gao.h"
#include "bgp/monitors.h"
#include "topogen/generate.h"
#include "util/error.h"

namespace flatnet {
namespace {

TEST(Monitors, CollectsMonitorFirstPaths) {
  // o=1 has provider 2; 2 has provider 3 (the monitor).
  AsGraphBuilder builder;
  builder.AddEdge(2, 1, EdgeType::kP2C);
  builder.AddEdge(3, 2, EdgeType::kP2C);
  AsGraph graph = std::move(builder).Build();
  RibDump dump = CollectRibs(graph, {*graph.IdOf(3)});
  // Origins 1 and 2 produce paths at the monitor.
  ASSERT_EQ(dump.paths.size(), 2u);
  for (const AsPath& path : dump.paths) {
    EXPECT_EQ(path.front(), *graph.IdOf(3));
  }
  EXPECT_EQ(dump.origins_sampled, graph.num_ases());
  EXPECT_THROW(CollectRibs(graph, {}), InvalidArgument);
}

TEST(Monitors, DefaultPlacementIsDeduplicated) {
  GeneratorParams params = GeneratorParams::Era2020(800);
  World world = GenerateWorld(params);
  auto monitors = DefaultMonitorPlacement(world.full_graph, 20, 3);
  EXPECT_GE(monitors.size(), 10u);
  EXPECT_LE(monitors.size(), 20u);
  for (std::size_t i = 1; i < monitors.size(); ++i) {
    EXPECT_LT(monitors[i - 1], monitors[i]);  // sorted, unique
  }
}

TEST(Gao, RecoversSimpleHierarchy) {
  // Clique {1,2} on top (with enough customers that degree identifies them
  // as the apex, as in the real Internet); 3 and 4 buy from both; 5 buys
  // from 3; 3--4 peer.
  AsGraphBuilder builder;
  builder.AddEdge(1, 2, EdgeType::kP2P);
  builder.AddEdge(1, 3, EdgeType::kP2C);
  builder.AddEdge(2, 3, EdgeType::kP2C);
  builder.AddEdge(1, 4, EdgeType::kP2C);
  builder.AddEdge(2, 4, EdgeType::kP2C);
  builder.AddEdge(3, 5, EdgeType::kP2C);
  builder.AddEdge(3, 4, EdgeType::kP2P);
  for (Asn stub = 100; stub < 110; ++stub) {
    builder.AddEdge(1, stub, EdgeType::kP2C);
    builder.AddEdge(2, stub + 100, EdgeType::kP2C);
  }
  AsGraph graph = std::move(builder).Build();

  // Monitors at the edge see full uphill chains.
  RibDump dump = CollectRibs(graph, {*graph.IdOf(5), *graph.IdOf(4)});
  GaoResult result = InferRelationshipsGao(dump, graph);

  EXPECT_GT(result.observed_edges, 3u);
  EXPECT_GT(result.EdgeAccuracy(), 0.7);
  // The provider-customer chain 3 -> 5 must be typed correctly: 5's only
  // routes climb through 3.
  auto inferred_rel = result.inferred.RelationshipBetween(*result.inferred.IdOf(3),
                                                          *result.inferred.IdOf(5));
  ASSERT_TRUE(inferred_rel.has_value());
  EXPECT_EQ(*inferred_rel, Relationship::kCustomer);
}

TEST(Gao, GeneratedWorldC2pAccuracyHighAndPeerCoverageLow) {
  GeneratorParams params = GeneratorParams::Era2020(1500);
  params.seed = 99;
  World world = GenerateWorld(params);
  auto monitors = DefaultMonitorPlacement(world.full_graph, 24, 5);
  RibCollectionOptions options;
  options.origin_fraction = 0.5;
  RibDump dump = CollectRibs(world.full_graph, monitors, options);
  GaoResult result = InferRelationshipsGao(dump, world.full_graph);

  // The paper's premise: relationship inference works well on what it sees
  // (§4.1: "high success rate identifying c2p links")...
  EXPECT_GT(result.P2cAccuracy(), 0.85);
  // ...while apex peering is Gao's classic weakness (why ProbLink exists).
  EXPECT_LT(result.P2pAccuracy(), 0.6);
  // ...but most edge peering never appears on any monitor's best path
  // (§4.1: feeds "miss nearly all edge peer links").
  std::size_t total_p2p_truth = 0;
  for (const auto& e : world.full_graph.EdgeList()) total_p2p_truth += e.type == EdgeType::kP2P;
  EXPECT_GT(result.missing_p2p, total_p2p_truth / 2);
  // c2p coverage is far better than p2p coverage.
  std::size_t total_p2c_truth = world.full_graph.num_edges() - total_p2p_truth;
  double p2c_coverage =
      1.0 - static_cast<double>(result.missing_p2c) / static_cast<double>(total_p2c_truth);
  double p2p_coverage =
      1.0 - static_cast<double>(result.missing_p2p) / static_cast<double>(total_p2p_truth);
  EXPECT_GT(p2c_coverage, p2p_coverage + 0.2);
}

TEST(Gao, MoreMonitorsSeeMoreEdges) {
  GeneratorParams params = GeneratorParams::Era2020(1000);
  World world = GenerateWorld(params);
  RibCollectionOptions options;
  options.origin_fraction = 0.4;
  options.seed = 11;
  RibDump few = CollectRibs(world.full_graph,
                            DefaultMonitorPlacement(world.full_graph, 4, 1), options);
  RibDump many = CollectRibs(world.full_graph,
                             DefaultMonitorPlacement(world.full_graph, 32, 1), options);
  GaoResult few_result = InferRelationshipsGao(few, world.full_graph);
  GaoResult many_result = InferRelationshipsGao(many, world.full_graph);
  EXPECT_GT(many_result.observed_edges, few_result.observed_edges);
}


TEST(AsRank, ImprovesPeeringClassificationOverGao) {
  GeneratorParams params = GeneratorParams::Era2020(1500);
  params.seed = 99;
  World world = GenerateWorld(params);
  auto monitors = DefaultMonitorPlacement(world.full_graph, 24, 5);
  RibCollectionOptions options;
  options.origin_fraction = 0.5;
  RibDump dump = CollectRibs(world.full_graph, monitors, options);

  GaoResult gao = InferRelationshipsGao(dump, world.full_graph);
  GaoResult asrank = InferRelationshipsAsRank(dump, world.full_graph);

  // Same observed universe, better typing — the §2.3 lineage. (The full
  // fix for apex peering required ProbLink-class learning; the clique +
  // default-peering refinement must still move the needle.)
  EXPECT_EQ(asrank.observed_edges, gao.observed_edges);
  EXPECT_GT(asrank.P2pAccuracy(), gao.P2pAccuracy());
  EXPECT_GE(asrank.EdgeAccuracy(), gao.EdgeAccuracy());
  EXPECT_GT(asrank.P2cAccuracy(), 0.8);
}

TEST(AsRank, CliquePairsTypedAsPeers) {
  GeneratorParams params = GeneratorParams::Era2020(2500);
  params.seed = 7;
  World world = GenerateWorld(params);
  auto monitors = DefaultMonitorPlacement(world.full_graph, 48, 5);
  RibCollectionOptions options;
  options.origin_fraction = 0.5;
  RibDump dump = CollectRibs(world.full_graph, monitors, options);
  GaoResult asrank = InferRelationshipsAsRank(dump, world.full_graph);
  GaoResult gao = InferRelationshipsGao(dump, world.full_graph);

  // Observed Tier-1 clique links must come out p2p.
  std::size_t checked = 0;
  std::size_t typed_peer = 0;
  for (std::size_t i = 0; i < world.tiers.tier1.size(); ++i) {
    for (std::size_t j = i + 1; j < world.tiers.tier1.size(); ++j) {
      Asn a = world.full_graph.AsnOf(world.tiers.tier1[i]);
      Asn b = world.full_graph.AsnOf(world.tiers.tier1[j]);
      auto ia = asrank.inferred.IdOf(a);
      auto ib = asrank.inferred.IdOf(b);
      if (!ia || !ib) continue;
      auto rel = asrank.inferred.RelationshipBetween(*ia, *ib);
      if (!rel) continue;
      ++checked;
      if (*rel == Relationship::kPeer) ++typed_peer;
    }
  }
  EXPECT_GT(checked, 20u);
  // Monitors rarely observe every clique link, so the inferred clique can
  // miss members whose mutual links then fall back to vote typing; a solid
  // minority typed p2p already beats Gao, which types essentially all of
  // them p2c.
  double asrank_share = static_cast<double>(typed_peer) / static_cast<double>(checked);
  EXPECT_GT(asrank_share, 0.2);
  std::size_t gao_peer = 0, gao_checked = 0;
  for (std::size_t i = 0; i < world.tiers.tier1.size(); ++i) {
    for (std::size_t j = i + 1; j < world.tiers.tier1.size(); ++j) {
      Asn a = world.full_graph.AsnOf(world.tiers.tier1[i]);
      Asn b = world.full_graph.AsnOf(world.tiers.tier1[j]);
      auto ia = gao.inferred.IdOf(a);
      auto ib = gao.inferred.IdOf(b);
      if (!ia || !ib) continue;
      auto rel = gao.inferred.RelationshipBetween(*ia, *ib);
      if (!rel) continue;
      ++gao_checked;
      if (*rel == Relationship::kPeer) ++gao_peer;
    }
  }
  double gao_share =
      gao_checked ? static_cast<double>(gao_peer) / static_cast<double>(gao_checked) : 0.0;
  EXPECT_GT(asrank_share, gao_share);
}

}  // namespace
}  // namespace flatnet
