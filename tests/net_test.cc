#include <gtest/gtest.h>

#include "net/ipv4.h"
#include "net/prefix_allocator.h"
#include "net/prefix_trie.h"
#include "util/error.h"
#include "util/rng.h"

namespace flatnet {
namespace {

TEST(Ipv4Address, ParseFormatRoundTrip) {
  auto addr = Ipv4Address::FromString("192.168.1.200");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(addr->ToString(), "192.168.1.200");
  EXPECT_EQ(addr->value(), 0xc0a801c8u);
}

TEST(Ipv4Address, RejectsMalformed) {
  EXPECT_FALSE(Ipv4Address::FromString("1.2.3").has_value());
  EXPECT_FALSE(Ipv4Address::FromString("1.2.3.4.5").has_value());
  EXPECT_FALSE(Ipv4Address::FromString("1.2.3.256").has_value());
  EXPECT_FALSE(Ipv4Address::FromString("a.b.c.d").has_value());
  EXPECT_FALSE(Ipv4Address::FromString("").has_value());
}

TEST(Ipv4Address, OctetConstructorAndOrdering) {
  Ipv4Address a(10, 0, 0, 1);
  Ipv4Address b(10, 0, 0, 2);
  EXPECT_LT(a, b);
  EXPECT_EQ(a.ToString(), "10.0.0.1");
}

TEST(Ipv4Prefix, CanonicalizesHostBits) {
  Ipv4Prefix p(Ipv4Address(10, 1, 2, 3), 16);
  EXPECT_EQ(p.ToString(), "10.1.0.0/16");
  EXPECT_EQ(p.Size(), 65536u);
}

TEST(Ipv4Prefix, ParseAndContains) {
  auto p = Ipv4Prefix::FromString("172.16.0.0/12");
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->Contains(Ipv4Address(172, 20, 5, 5)));
  EXPECT_FALSE(p->Contains(Ipv4Address(172, 32, 0, 0)));
  auto inner = Ipv4Prefix::FromString("172.16.4.0/24");
  EXPECT_TRUE(p->Contains(*inner));
  EXPECT_FALSE(inner->Contains(*p));
  EXPECT_FALSE(Ipv4Prefix::FromString("172.16.0.0/33").has_value());
  EXPECT_FALSE(Ipv4Prefix::FromString("172.16.0.0").has_value());
}

TEST(Ipv4Prefix, SplitHalves) {
  Ipv4Prefix p(Ipv4Address(10, 0, 0, 0), 8);
  auto [lo, hi] = p.Split();
  EXPECT_EQ(lo.ToString(), "10.0.0.0/9");
  EXPECT_EQ(hi.ToString(), "10.128.0.0/9");
  EXPECT_THROW(Ipv4Prefix(Ipv4Address(1, 1, 1, 1), 32).Split(), InvalidArgument);
}

TEST(Ipv4Prefix, AddressAtBounds) {
  Ipv4Prefix p(Ipv4Address(10, 0, 0, 0), 30);
  EXPECT_EQ(p.AddressAt(3).ToString(), "10.0.0.3");
  EXPECT_THROW(p.AddressAt(4), InvalidArgument);
}

TEST(Ipv4Prefix, ZeroLengthCoversEverything) {
  Ipv4Prefix all(Ipv4Address(0), 0);
  EXPECT_TRUE(all.Contains(Ipv4Address(255, 255, 255, 255)));
  EXPECT_EQ(all.Mask(), 0u);
}

TEST(PrefixTrie, ExactAndLongestMatch) {
  PrefixTrie<int> trie;
  EXPECT_TRUE(trie.Insert(*Ipv4Prefix::FromString("10.0.0.0/8"), 1));
  EXPECT_TRUE(trie.Insert(*Ipv4Prefix::FromString("10.1.0.0/16"), 2));
  EXPECT_FALSE(trie.Insert(*Ipv4Prefix::FromString("10.1.0.0/16"), 3));  // overwrite
  EXPECT_EQ(trie.size(), 2u);

  EXPECT_EQ(*trie.Find(*Ipv4Prefix::FromString("10.1.0.0/16")), 3);
  EXPECT_EQ(trie.Find(*Ipv4Prefix::FromString("10.2.0.0/16")), nullptr);

  EXPECT_EQ(*trie.Lookup(Ipv4Address(10, 1, 2, 3)), 3);
  EXPECT_EQ(*trie.Lookup(Ipv4Address(10, 9, 9, 9)), 1);
  EXPECT_EQ(trie.Lookup(Ipv4Address(11, 0, 0, 1)), nullptr);

  auto match = trie.LongestMatch(Ipv4Address(10, 1, 2, 3));
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->first.length(), 16);
}

TEST(PrefixTrie, DefaultRouteMatchesAll) {
  PrefixTrie<int> trie;
  trie.Insert(Ipv4Prefix(Ipv4Address(0), 0), 99);
  EXPECT_EQ(*trie.Lookup(Ipv4Address(1, 2, 3, 4)), 99);
}

TEST(PrefixTrie, HostRoutes) {
  PrefixTrie<int> trie;
  trie.Insert(*Ipv4Prefix::FromString("1.2.3.4/32"), 7);
  EXPECT_EQ(*trie.Lookup(Ipv4Address(1, 2, 3, 4)), 7);
  EXPECT_EQ(trie.Lookup(Ipv4Address(1, 2, 3, 5)), nullptr);
}

// Property: trie longest-prefix match agrees with a linear scan.
class PrefixTriePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PrefixTriePropertyTest, MatchesLinearScan) {
  Rng rng(GetParam());
  PrefixTrie<std::size_t> trie;
  std::vector<Ipv4Prefix> prefixes;
  for (std::size_t i = 0; i < 300; ++i) {
    auto length = static_cast<std::uint8_t>(8 + rng.UniformU64(17));
    Ipv4Prefix prefix(Ipv4Address(static_cast<std::uint32_t>(rng.NextU64())), length);
    if (trie.Insert(prefix, prefixes.size())) prefixes.push_back(prefix);
  }
  for (int i = 0; i < 2000; ++i) {
    Ipv4Address addr(static_cast<std::uint32_t>(rng.NextU64()));
    const std::size_t* got = trie.Lookup(addr);
    // Linear scan for the longest covering prefix.
    int best_len = -1;
    std::size_t best_idx = 0;
    for (std::size_t p = 0; p < prefixes.size(); ++p) {
      if (prefixes[p].Contains(addr) && prefixes[p].length() > best_len) {
        best_len = prefixes[p].length();
        best_idx = p;
      }
    }
    if (best_len < 0) {
      EXPECT_EQ(got, nullptr);
    } else {
      ASSERT_NE(got, nullptr);
      // Same length; ties are impossible since equal-prefix inserts dedupe.
      EXPECT_EQ(prefixes[*got].length(), prefixes[best_idx].length());
      EXPECT_TRUE(prefixes[*got].Contains(addr));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrefixTriePropertyTest, ::testing::Values(1, 7, 21, 303));

TEST(PrefixTrie, ForEachVisitsAllInOrder) {
  PrefixTrie<int> trie;
  trie.Insert(*Ipv4Prefix::FromString("20.0.0.0/8"), 1);
  trie.Insert(*Ipv4Prefix::FromString("10.0.0.0/8"), 2);
  trie.Insert(*Ipv4Prefix::FromString("10.5.0.0/16"), 3);
  std::vector<std::string> seen;
  trie.ForEach([&](const Ipv4Prefix& p, int) { seen.push_back(p.ToString()); });
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], "10.0.0.0/8");
  EXPECT_EQ(seen[1], "10.5.0.0/16");
  EXPECT_EQ(seen[2], "20.0.0.0/8");
}

TEST(PrefixAllocator, DisjointAlignedBlocks) {
  PrefixAllocator alloc(*Ipv4Prefix::FromString("10.0.0.0/8"));
  auto a = alloc.Allocate(16);
  auto b = alloc.Allocate(24);
  auto c = alloc.Allocate(16);
  ASSERT_TRUE(a && b && c);
  EXPECT_EQ(a->ToString(), "10.0.0.0/16");
  EXPECT_EQ(b->ToString(), "10.1.0.0/24");
  // /16 alignment forces a skip past the partially-used 10.1/16.
  EXPECT_EQ(c->ToString(), "10.2.0.0/16");
  EXPECT_FALSE(a->Contains(*b));
  EXPECT_FALSE(b->Contains(*c));
}

TEST(PrefixAllocator, ExhaustsPool) {
  PrefixAllocator alloc(*Ipv4Prefix::FromString("10.0.0.0/30"));
  EXPECT_TRUE(alloc.Allocate(31).has_value());
  EXPECT_TRUE(alloc.Allocate(31).has_value());
  EXPECT_FALSE(alloc.Allocate(31).has_value());
  EXPECT_EQ(alloc.Remaining(), 0u);
  EXPECT_THROW(alloc.Allocate(8), InvalidArgument);
}

}  // namespace
}  // namespace flatnet
