#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "asgraph/as_graph.h"
#include "bgp/reachability.h"
#include "obs/campaign.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/reqtrace.h"
#include "obs/trace.h"
#include "util/error.h"
#include "util/json.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace flatnet::obs {
namespace {

// Captures emitted lines and restores the default sink + level on exit.
class LogCapture {
 public:
  LogCapture() {
    SetLogSinkForTest([this](LogLevel level, const std::string& line) {
      levels.push_back(level);
      lines.push_back(line);
    });
  }
  ~LogCapture() {
    SetLogSinkForTest(nullptr);
    SetLogLevel(LogLevel::kInfo);
  }
  std::vector<LogLevel> levels;
  std::vector<std::string> lines;
};

TEST(Log, LevelFiltering) {
  LogCapture capture;
  SetLogLevel(LogLevel::kWarn);
  Log(LogLevel::kInfo, "test", "dropped").Kv("k", 1);
  Log(LogLevel::kDebug, "test", "dropped_too");
  ASSERT_TRUE(capture.lines.empty());
  Log(LogLevel::kWarn, "test", "kept");
  Log(LogLevel::kError, "test", "kept_too");
  ASSERT_EQ(capture.lines.size(), 2u);
  EXPECT_EQ(capture.levels[0], LogLevel::kWarn);
  EXPECT_EQ(capture.levels[1], LogLevel::kError);
  SetLogLevel(LogLevel::kOff);
  Log(LogLevel::kError, "test", "silenced");
  EXPECT_EQ(capture.lines.size(), 2u);
}

TEST(Log, StructuredKeyValueFormatting) {
  LogCapture capture;
  SetLogLevel(LogLevel::kDebug);
  Log(LogLevel::kInfo, "comp", "event")
      .Kv("str", "plain")
      .Kv("quoted", "has space")
      .Kv("num", std::uint64_t{42})
      .Kv("neg", std::int64_t{-7})
      .Kv("frac", 2.5)
      .Kv("flag", true);
  ASSERT_EQ(capture.lines.size(), 1u);
  const std::string& line = capture.lines[0];
  EXPECT_NE(line.find(" I comp event "), std::string::npos);
  EXPECT_NE(line.find("str=plain"), std::string::npos);
  EXPECT_NE(line.find("quoted=\"has space\""), std::string::npos);
  EXPECT_NE(line.find("num=42"), std::string::npos);
  EXPECT_NE(line.find("neg=-7"), std::string::npos);
  EXPECT_NE(line.find("frac=2.5"), std::string::npos);
  EXPECT_NE(line.find("flag=true"), std::string::npos);
}

TEST(Log, ParseLogLevelNames) {
  EXPECT_EQ(ParseLogLevel("trace"), LogLevel::kTrace);
  EXPECT_EQ(ParseLogLevel("DEBUG"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("Info"), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("warn"), LogLevel::kWarn);
  EXPECT_EQ(ParseLogLevel("warning"), LogLevel::kWarn);
  EXPECT_EQ(ParseLogLevel("error"), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("off"), LogLevel::kOff);
  EXPECT_EQ(ParseLogLevel("none"), LogLevel::kOff);
  EXPECT_FALSE(ParseLogLevel("loud").has_value());
  EXPECT_STREQ(ToString(LogLevel::kWarn), "warn");
}

TEST(Metrics, CounterAndGaugeBasics) {
  Counter& counter = GetCounter("test.basics.counter");
  EXPECT_EQ(counter.value(), 0u);
  counter.Increment();
  counter.Increment(4);
  EXPECT_EQ(counter.value(), 5u);
  // Re-registration returns the same object.
  EXPECT_EQ(&GetCounter("test.basics.counter"), &counter);

  Gauge& gauge = GetGauge("test.basics.gauge");
  gauge.Set(10);
  gauge.Add(-3);
  EXPECT_EQ(gauge.value(), 7);
  gauge.SetMax(5);
  EXPECT_EQ(gauge.value(), 7);
  gauge.SetMax(12);
  EXPECT_EQ(gauge.value(), 12);
}

TEST(Metrics, KindConflictsThrow) {
  GetCounter("test.conflict.name");
  EXPECT_THROW(GetGauge("test.conflict.name"), InvalidArgument);
  EXPECT_THROW(GetHistogram("test.conflict.name", {1.0}), InvalidArgument);
  EXPECT_THROW(GetHistogram("test.conflict.hist", {3.0, 1.0}), InvalidArgument);
  EXPECT_THROW(GetHistogram("test.conflict.hist", {}), InvalidArgument);
}

TEST(Metrics, HistogramBucketBoundaries) {
  Histogram& h = GetHistogram("test.hist.bounds", {1.0, 2.0, 5.0});
  // v <= bound lands in that bucket; above every bound -> overflow.
  h.Observe(0.5);   // bucket 0
  h.Observe(1.0);   // bucket 0 (inclusive upper bound)
  h.Observe(1.5);   // bucket 1
  h.Observe(2.0);   // bucket 1
  h.Observe(5.0);   // bucket 2
  h.Observe(100.0); // overflow
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 2.0 + 5.0 + 100.0);
}

TEST(Metrics, ConcurrentUpdatesFromThreadPool) {
  Counter& counter = GetCounter("test.concurrent.counter");
  Histogram& h = GetHistogram("test.concurrent.hist", {10.0, 100.0, 1000.0});
  ThreadPool pool(4);
  constexpr std::size_t kOps = 10000;
  pool.ParallelFor(0, kOps, [&](std::size_t i) {
    counter.Increment();
    h.Observe(static_cast<double>(i % 2000));
  });
  EXPECT_EQ(counter.value(), kOps);
  EXPECT_EQ(h.count(), kOps);
  std::uint64_t bucket_total = 0;
  for (std::size_t i = 0; i <= h.bounds().size(); ++i) bucket_total += h.bucket_count(i);
  EXPECT_EQ(bucket_total, kOps);
}

TEST(Metrics, SnapshotJsonRoundTrip) {
  GetCounter("test.roundtrip.counter").Increment(3);
  GetGauge("test.roundtrip.gauge").Set(-5);
  Histogram& h = GetHistogram("test.roundtrip.hist", {1.0, 10.0});
  h.Observe(0.5);
  h.Observe(50.0);

  Json parsed = Json::Parse(MetricsRegistry::Default().Snapshot().Dump(2));
  EXPECT_EQ(parsed.At("counters").At("test.roundtrip.counter").AsU64(), 3u);
  EXPECT_DOUBLE_EQ(parsed.At("gauges").At("test.roundtrip.gauge").AsNumber(), -5.0);
  const Json& hist = parsed.At("histograms").At("test.roundtrip.hist");
  EXPECT_EQ(hist.At("count").AsU64(), 2u);
  EXPECT_DOUBLE_EQ(hist.At("sum").AsNumber(), 50.5);
  EXPECT_EQ(hist.At("counts").size(), 3u);
  EXPECT_EQ(hist.At("counts")[0].AsU64(), 1u);
  EXPECT_EQ(hist.At("counts")[2].AsU64(), 1u);
  EXPECT_EQ(hist.At("bounds").size(), 2u);
}

TEST(Metrics, ReachabilityNodesReachedMatchesCount) {
  // The nodes_reached counter counts destinations only, exactly like
  // ReachabilityEngine::Count (the origin is not a reached node).
  flatnet::AsGraphBuilder builder;
  builder.AddEdge(2, 1, flatnet::EdgeType::kP2C);
  builder.AddEdge(3, 2, flatnet::EdgeType::kP2C);
  builder.AddEdge(3, 4, flatnet::EdgeType::kP2C);
  builder.AddEdge(5, 4, flatnet::EdgeType::kP2P);
  flatnet::AsGraph graph = std::move(builder).Build();

  Counter& nodes_reached = GetCounter("reachability.nodes_reached");
  flatnet::ReachabilityEngine engine(graph);
  for (flatnet::Asn origin : {1u, 4u, 5u}) {
    std::uint64_t before = nodes_reached.value();
    std::size_t count = engine.Count(*graph.IdOf(origin));
    EXPECT_EQ(nodes_reached.value() - before, count) << "origin AS" << origin;
  }
}

TEST(Metrics, ObservabilitySnapshotContainsCoreNames) {
  Json snapshot = ObservabilitySnapshot();
  EXPECT_TRUE(snapshot.At("counters").Contains("propagation.customer.relax_ops"));
  EXPECT_TRUE(snapshot.At("counters").Contains("cache.hit"));
  EXPECT_TRUE(snapshot.At("counters").Contains("cache.miss"));
  EXPECT_TRUE(snapshot.At("gauges").Contains("thread_pool.queue_depth"));
  EXPECT_TRUE(snapshot.At("gauges").Contains("thread_pool.threads"));
  EXPECT_TRUE(snapshot.At("spans").Contains("bgp.propagation.customer_phase"));
}

TEST(Metrics, HistogramSnapshotConsistentUnderConcurrentObserve) {
  // The consistency contract: Snapshot() may only report consistent=true
  // when the buckets reconcile with the count, even while writers hammer
  // Observe. Raw accessors are allowed to tear; Snapshot is not.
  Histogram& h = GetHistogram("test.race.hist", {1.0, 10.0, 100.0});
  constexpr int kWriters = 4;
  constexpr std::uint64_t kPerWriter = 50000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&h] {
      for (std::uint64_t i = 0; i < kPerWriter; ++i) h.Observe(static_cast<double>(i % 200));
    });
  }
  std::uint64_t before = h.count();
  while (h.count() < kWriters * kPerWriter) {
    HistogramSnapshot snap = h.Snapshot();
    if (snap.consistent) {
      std::uint64_t total = 0;
      for (std::uint64_t b : snap.buckets) total += b;
      ASSERT_EQ(total, snap.count);
    }
    // count() alone is monotonic regardless of consistency.
    ASSERT_GE(snap.count, before);
    before = snap.count;
  }
  for (auto& w : writers) w.join();
  // Quiescent: the snapshot must reconcile exactly.
  HistogramSnapshot final_snap = h.Snapshot();
  ASSERT_TRUE(final_snap.consistent);
  std::uint64_t total = 0;
  for (std::uint64_t b : final_snap.buckets) total += b;
  EXPECT_EQ(total, kWriters * kPerWriter);
  EXPECT_EQ(final_snap.count, kWriters * kPerWriter);
}

TEST(Metrics, SnapshotCountersMonotonicAcrossConsecutiveReads) {
  Counter& counter = GetCounter("test.monotonic.counter");
  Json first = Json::Parse(ObservabilitySnapshot().Dump());
  counter.Increment(2);
  Json second = Json::Parse(ObservabilitySnapshot().Dump());
  const Json& a = first.At("counters");
  const Json& b = second.At("counters");
  EXPECT_EQ(b.At("test.monotonic.counter").AsU64(),
            a.At("test.monotonic.counter").AsU64() + 2);
  // Every counter present in the first snapshot is present in the second
  // with a value no smaller — the scrape-to-scrape contract collectors
  // compute rates from.
  // (Object iteration order is sorted, so mechanical comparison is stable.)
  for (const auto& name : {"cache.hit", "cache.miss", "serve.requests",
                           "serve.reach.requests", "serve.slow_queries"}) {
    ASSERT_TRUE(a.Contains(name)) << name;
    EXPECT_GE(b.At(name).AsU64(), a.At(name).AsU64()) << name;
  }
}

TEST(Metrics, WriteMetricsFileJsonAndPrometheus) {
  GetCounter("test.flush.counter").Increment(7);
  auto tmp = std::filesystem::temp_directory_path();
  std::string json_path = (tmp / "flatnet_metrics_test.json").string();
  std::string prom_path = (tmp / "flatnet_metrics_test.prom").string();
  ASSERT_TRUE(WriteMetricsFile(json_path));
  ASSERT_TRUE(WriteMetricsFile(prom_path));

  std::ifstream json_in(json_path);
  std::string json_text((std::istreambuf_iterator<char>(json_in)),
                        std::istreambuf_iterator<char>());
  Json parsed = Json::Parse(json_text);
  EXPECT_GE(parsed.At("counters").At("test.flush.counter").AsU64(), 7u);

  std::ifstream prom_in(prom_path);
  std::string prom_text((std::istreambuf_iterator<char>(prom_in)),
                        std::istreambuf_iterator<char>());
  EXPECT_NE(prom_text.find("flatnet_test_flush_counter"), std::string::npos);
  EXPECT_NE(prom_text.find("# TYPE"), std::string::npos);
  std::filesystem::remove(json_path);
  std::filesystem::remove(prom_path);
}

TEST(Metrics, FlusherRepublishesOnCadence) {
  std::string path =
      (std::filesystem::temp_directory_path() / "flatnet_flusher_test.json").string();
  {
    MetricsFlusher flusher(path, 0.02);
    ASSERT_TRUE(flusher.active());
    for (int i = 0; i < 200 && flusher.flushes() < 2; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_GE(flusher.flushes(), 2u);
  }  // destructor stops the thread and flushes final state
  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  EXPECT_TRUE(Json::Parse(text).Contains("counters"));
  std::filesystem::remove(path);

  // Empty path or non-positive interval: inert, never writes.
  MetricsFlusher inert("", 1.0);
  EXPECT_FALSE(inert.active());
  MetricsFlusher zero(path, 0.0);
  EXPECT_FALSE(zero.active());
}

TEST(Recorder, RingWraparoundKeepsNewestEvents) {
  ResetRecorderForTest();
  EnableRecorder(true);
  constexpr std::uint64_t kTotal = kRecorderRingCapacity + 100;
  for (std::uint64_t i = 0; i < kTotal; ++i) RecordEvent("test.recorder.wrap", i);
  RecorderStats stats = GetRecorderStats();
  EXPECT_TRUE(stats.enabled);
  EXPECT_GE(stats.recorded, kTotal);
  EXPECT_GE(stats.overwritten, 100u);

  auto events = CollectRecorderEvents(kRecorderRingCapacity);
  ASSERT_FALSE(events.empty());
  EXPECT_LE(events.size(), kRecorderRingCapacity);
  std::uint64_t min_arg = ~0ull, max_arg = 0;
  for (const RecorderEvent& event : events) {
    ASSERT_EQ(std::string_view(event.name), "test.recorder.wrap");
    min_arg = std::min(min_arg, event.arg);
    max_arg = std::max(max_arg, event.arg);
  }
  // The oldest 100 events were overwritten; the newest survived.
  EXPECT_EQ(max_arg, kTotal - 1);
  EXPECT_GE(min_arg, 100u);
  // Merged snapshot is time-ordered.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].t_us, events[i].t_us);
  }
  EnableRecorder(false);
  ResetRecorderForTest();
}

TEST(Recorder, RecordsFromThreadPoolWorkers) {
  ResetRecorderForTest();
  EnableRecorder(true);
  {
    ThreadPool pool(4);
    pool.ParallelFor(0, 256, [](std::size_t i) {
      RecordEvent("test.recorder.worker", i);
    });
  }
  RecorderStats stats = GetRecorderStats();
  EXPECT_GE(stats.threads, 1u);
  auto events = CollectRecorderEvents(4096);
  std::size_t worker_events = 0;
  for (const RecorderEvent& event : events) {
    if (std::string_view(event.name) == "test.recorder.worker") ++worker_events;
  }
  EXPECT_EQ(worker_events, 256u);
  EnableRecorder(false);
  ResetRecorderForTest();
}

TEST(Recorder, JsonAndDumpFormatsAgree) {
  ResetRecorderForTest();
  EnableRecorder(true);
  for (std::uint64_t i = 0; i < 10; ++i) RecordEvent("test.recorder.json", i);

  Json doc = Json::Parse(RecorderJson(8).Dump());
  EXPECT_TRUE(doc.At("enabled").AsBool());
  ASSERT_EQ(doc.At("events").size(), 8u);
  EXPECT_GE(doc.At("dropped").AsU64(), 2u);  // 10 recorded, 8 returned
  EXPECT_GE(doc.At("threads").AsU64(), 1u);
  const Json& event = doc.At("events")[0];
  EXPECT_EQ(event.At("name").AsString(), "test.recorder.json");
  EXPECT_TRUE(event.Contains("t_us"));
  EXPECT_TRUE(event.Contains("seq"));
  EXPECT_TRUE(event.Contains("thread"));
  EXPECT_TRUE(event.Contains("arg"));

  // The on-demand dump uses the crash handler's renderer and format.
  std::string path =
      (std::filesystem::temp_directory_path() / "flatnet_recorder_test.dump").string();
  ASSERT_TRUE(WriteRecorderDump(path));
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(static_cast<bool>(std::getline(in, line)));
  EXPECT_EQ(line, "flatnet-flight-recorder v1");
  std::size_t event_lines = 0;
  std::string last;
  while (std::getline(in, line)) {
    if (line.rfind("event t_us=", 0) == 0) {
      ++event_lines;
      EXPECT_NE(line.find(" thread="), std::string::npos);
      EXPECT_NE(line.find(" seq="), std::string::npos);
      EXPECT_NE(line.find(" name="), std::string::npos);
    }
    last = line;
  }
  EXPECT_GE(event_lines, 10u);
  EXPECT_EQ(last, "end events=" + std::to_string(event_lines));
  std::filesystem::remove(path);
  EnableRecorder(false);
  ResetRecorderForTest();
}

TEST(Recorder, DisabledRecordsNothing) {
  ResetRecorderForTest();
  ASSERT_FALSE(RecorderEnabled());
  RecordEvent("test.recorder.disabled", 1);
  EXPECT_EQ(GetRecorderStats().recorded, 0u);
  EXPECT_TRUE(CollectRecorderEvents(16).empty());
  Json doc = Json::Parse(RecorderJson(16).Dump());
  EXPECT_FALSE(doc.At("enabled").AsBool());
  EXPECT_EQ(doc.At("events").size(), 0u);
}

TEST(ReqTrace, PhasesPartitionTheTimelineAndAccumulate) {
  using Clock = RequestTrace::Clock;
  Clock::time_point start = Clock::now();
  RequestTrace trace(start);
  trace.MarkAt("accept", start + std::chrono::microseconds(100));
  trace.MarkAt("parse", start + std::chrono::microseconds(300));
  // Consecutive same-name marks fold into one phase entry.
  trace.MarkAt("work", start + std::chrono::microseconds(800));
  trace.MarkAt("work", start + std::chrono::microseconds(1300));
  trace.MarkAt("serialize", start + std::chrono::microseconds(1400));

  const auto& phases = trace.phases();
  ASSERT_EQ(phases.size(), 4u);
  EXPECT_EQ(phases[0].name, "accept");
  EXPECT_DOUBLE_EQ(phases[0].ms, 0.1);
  EXPECT_EQ(phases[1].name, "parse");
  EXPECT_DOUBLE_EQ(phases[1].ms, 0.2);
  EXPECT_EQ(phases[2].name, "work");
  EXPECT_DOUBLE_EQ(phases[2].ms, 1.0);  // 0.5 + 0.5 accumulated
  EXPECT_EQ(phases[3].name, "serialize");
  EXPECT_DOUBLE_EQ(trace.MarkedMs(), 1.4);

  Json timing = Json::Parse(trace.TimingJson().Dump());
  ASSERT_EQ(timing.At("phases").size(), 4u);
  EXPECT_EQ(timing.At("phases")[2].At("name").AsString(), "work");
  EXPECT_DOUBLE_EQ(timing.At("server_ms").AsNumber(), 1.4);

  std::string formatted = trace.Format();
  EXPECT_NE(formatted.find("accept="), std::string::npos);
  EXPECT_NE(formatted.find("work="), std::string::npos);
}

TEST(Campaign, MonitorTracksProgressEtaAndStragglers) {
  CampaignMonitor::Options options;
  options.component = "test.campaign";
  options.unit = "items";
  options.total_chunks = 20;
  options.workers = 2;
  options.heartbeat_ms = 0;  // keep the log quiet; metrics stay on
  CampaignMonitor monitor(options);
  Counter& stragglers = GetCounter("test.campaign.stragglers");
  std::uint64_t stragglers_before = stragglers.value();

  // Ten uniform 10 ms chunks: no stragglers, a clean mean and ETA.
  for (std::size_t i = 0; i < 10; ++i) monitor.ChunkDone(i, 10.0, 5);
  EXPECT_EQ(monitor.chunks_done(), 10u);
  EXPECT_DOUBLE_EQ(monitor.MeanChunkMs(), 10.0);
  // 10 chunks left at ~10 ms across 2 workers: 0.05 s.
  EXPECT_NEAR(monitor.EtaSeconds(), 0.05, 0.02);
  EXPECT_EQ(monitor.stragglers(), 0u);

  // A 500 ms chunk against a 10 ms mean (factor 50 > 4) is a straggler.
  monitor.ChunkDone(10, 500.0, 5);
  EXPECT_EQ(monitor.stragglers(), 1u);
  EXPECT_EQ(stragglers.value(), stragglers_before + 1);

  // Finish the campaign: ETA collapses to zero.
  for (std::size_t i = 11; i < 20; ++i) monitor.ChunkDone(i, 10.0, 5);
  EXPECT_DOUBLE_EQ(monitor.EtaSeconds(), 0.0);
  EXPECT_EQ(GetGauge("test.campaign.eta_s").value(), 0);
  // The chunk-latency histogram saw every chunk.
  EXPECT_EQ(GetHistogram("test.campaign.chunk_ms", {1.0}).count(), 20u);
}

TEST(Campaign, ResumedChunksCountTowardCompletion) {
  CampaignMonitor::Options options;
  options.component = "test.campaign.resume";
  options.total_chunks = 10;
  options.resumed_chunks = 8;
  options.heartbeat_ms = 0;
  CampaignMonitor monitor(options);
  monitor.ChunkDone(8, 100.0, 1);
  // One chunk left at ~100 ms, one worker: ~0.1 s.
  EXPECT_NEAR(monitor.EtaSeconds(), 0.1, 0.05);
  monitor.ChunkDone(9, 100.0, 1);
  EXPECT_DOUBLE_EQ(monitor.EtaSeconds(), 0.0);
}

TEST(Trace, SpanNestingTracksSelfTime) {
  ResetSpanStatsForTest();
  {
    TraceSpan outer("test.span.outer");
    Stopwatch busy;
    while (busy.ElapsedMillis() < 5) {
    }
    {
      TraceSpan inner("test.span.inner");
      Stopwatch inner_busy;
      while (inner_busy.ElapsedMillis() < 10) {
      }
    }
  }
  auto stats = SpanStatsSnapshot();
  ASSERT_EQ(stats.count("test.span.outer"), 1u);
  ASSERT_EQ(stats.count("test.span.inner"), 1u);
  const SpanStats& outer = stats["test.span.outer"];
  const SpanStats& inner = stats["test.span.inner"];
  EXPECT_EQ(outer.count, 1u);
  EXPECT_EQ(inner.count, 1u);
  // Outer wall time covers the inner span; outer self time excludes it.
  EXPECT_GE(outer.total_seconds, inner.total_seconds);
  EXPECT_GE(inner.total_seconds, 0.010 * 0.5);
  EXPECT_LT(outer.self_seconds, outer.total_seconds - inner.total_seconds * 0.5);
  EXPECT_LE(outer.min_seconds, outer.max_seconds);
}

TEST(Trace, AggregatesAcrossRepeatsAndThreads) {
  ResetSpanStatsForTest();
  ThreadPool pool(4);
  pool.ParallelFor(0, 64, [&](std::size_t) { TraceSpan span("test.span.repeat"); });
  auto stats = SpanStatsSnapshot();
  ASSERT_EQ(stats.count("test.span.repeat"), 1u);
  EXPECT_EQ(stats["test.span.repeat"].count, 64u);
}

TEST(Trace, SnapshotAndSummaryTable) {
  ResetSpanStatsForTest();
  PreRegisterSpan("test.span.preregistered");
  { TraceSpan span("test.span.ran"); }
  Json spans = Json::Parse(SnapshotSpans().Dump());
  EXPECT_TRUE(spans.Contains("test.span.preregistered"));
  EXPECT_EQ(spans.At("test.span.preregistered").At("count").AsU64(), 0u);
  EXPECT_EQ(spans.At("test.span.ran").At("count").AsU64(), 1u);
  std::string table = SpanSummaryTable().ToString();
  EXPECT_NE(table.find("test.span.ran"), std::string::npos);
}

}  // namespace
}  // namespace flatnet::obs
