#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "asgraph/as_graph.h"
#include "bgp/reachability.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/error.h"
#include "util/json.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace flatnet::obs {
namespace {

// Captures emitted lines and restores the default sink + level on exit.
class LogCapture {
 public:
  LogCapture() {
    SetLogSinkForTest([this](LogLevel level, const std::string& line) {
      levels.push_back(level);
      lines.push_back(line);
    });
  }
  ~LogCapture() {
    SetLogSinkForTest(nullptr);
    SetLogLevel(LogLevel::kInfo);
  }
  std::vector<LogLevel> levels;
  std::vector<std::string> lines;
};

TEST(Log, LevelFiltering) {
  LogCapture capture;
  SetLogLevel(LogLevel::kWarn);
  Log(LogLevel::kInfo, "test", "dropped").Kv("k", 1);
  Log(LogLevel::kDebug, "test", "dropped_too");
  ASSERT_TRUE(capture.lines.empty());
  Log(LogLevel::kWarn, "test", "kept");
  Log(LogLevel::kError, "test", "kept_too");
  ASSERT_EQ(capture.lines.size(), 2u);
  EXPECT_EQ(capture.levels[0], LogLevel::kWarn);
  EXPECT_EQ(capture.levels[1], LogLevel::kError);
  SetLogLevel(LogLevel::kOff);
  Log(LogLevel::kError, "test", "silenced");
  EXPECT_EQ(capture.lines.size(), 2u);
}

TEST(Log, StructuredKeyValueFormatting) {
  LogCapture capture;
  SetLogLevel(LogLevel::kDebug);
  Log(LogLevel::kInfo, "comp", "event")
      .Kv("str", "plain")
      .Kv("quoted", "has space")
      .Kv("num", std::uint64_t{42})
      .Kv("neg", std::int64_t{-7})
      .Kv("frac", 2.5)
      .Kv("flag", true);
  ASSERT_EQ(capture.lines.size(), 1u);
  const std::string& line = capture.lines[0];
  EXPECT_NE(line.find(" I comp event "), std::string::npos);
  EXPECT_NE(line.find("str=plain"), std::string::npos);
  EXPECT_NE(line.find("quoted=\"has space\""), std::string::npos);
  EXPECT_NE(line.find("num=42"), std::string::npos);
  EXPECT_NE(line.find("neg=-7"), std::string::npos);
  EXPECT_NE(line.find("frac=2.5"), std::string::npos);
  EXPECT_NE(line.find("flag=true"), std::string::npos);
}

TEST(Log, ParseLogLevelNames) {
  EXPECT_EQ(ParseLogLevel("trace"), LogLevel::kTrace);
  EXPECT_EQ(ParseLogLevel("DEBUG"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("Info"), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("warn"), LogLevel::kWarn);
  EXPECT_EQ(ParseLogLevel("warning"), LogLevel::kWarn);
  EXPECT_EQ(ParseLogLevel("error"), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("off"), LogLevel::kOff);
  EXPECT_EQ(ParseLogLevel("none"), LogLevel::kOff);
  EXPECT_FALSE(ParseLogLevel("loud").has_value());
  EXPECT_STREQ(ToString(LogLevel::kWarn), "warn");
}

TEST(Metrics, CounterAndGaugeBasics) {
  Counter& counter = GetCounter("test.basics.counter");
  EXPECT_EQ(counter.value(), 0u);
  counter.Increment();
  counter.Increment(4);
  EXPECT_EQ(counter.value(), 5u);
  // Re-registration returns the same object.
  EXPECT_EQ(&GetCounter("test.basics.counter"), &counter);

  Gauge& gauge = GetGauge("test.basics.gauge");
  gauge.Set(10);
  gauge.Add(-3);
  EXPECT_EQ(gauge.value(), 7);
  gauge.SetMax(5);
  EXPECT_EQ(gauge.value(), 7);
  gauge.SetMax(12);
  EXPECT_EQ(gauge.value(), 12);
}

TEST(Metrics, KindConflictsThrow) {
  GetCounter("test.conflict.name");
  EXPECT_THROW(GetGauge("test.conflict.name"), InvalidArgument);
  EXPECT_THROW(GetHistogram("test.conflict.name", {1.0}), InvalidArgument);
  EXPECT_THROW(GetHistogram("test.conflict.hist", {3.0, 1.0}), InvalidArgument);
  EXPECT_THROW(GetHistogram("test.conflict.hist", {}), InvalidArgument);
}

TEST(Metrics, HistogramBucketBoundaries) {
  Histogram& h = GetHistogram("test.hist.bounds", {1.0, 2.0, 5.0});
  // v <= bound lands in that bucket; above every bound -> overflow.
  h.Observe(0.5);   // bucket 0
  h.Observe(1.0);   // bucket 0 (inclusive upper bound)
  h.Observe(1.5);   // bucket 1
  h.Observe(2.0);   // bucket 1
  h.Observe(5.0);   // bucket 2
  h.Observe(100.0); // overflow
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 2.0 + 5.0 + 100.0);
}

TEST(Metrics, ConcurrentUpdatesFromThreadPool) {
  Counter& counter = GetCounter("test.concurrent.counter");
  Histogram& h = GetHistogram("test.concurrent.hist", {10.0, 100.0, 1000.0});
  ThreadPool pool(4);
  constexpr std::size_t kOps = 10000;
  pool.ParallelFor(0, kOps, [&](std::size_t i) {
    counter.Increment();
    h.Observe(static_cast<double>(i % 2000));
  });
  EXPECT_EQ(counter.value(), kOps);
  EXPECT_EQ(h.count(), kOps);
  std::uint64_t bucket_total = 0;
  for (std::size_t i = 0; i <= h.bounds().size(); ++i) bucket_total += h.bucket_count(i);
  EXPECT_EQ(bucket_total, kOps);
}

TEST(Metrics, SnapshotJsonRoundTrip) {
  GetCounter("test.roundtrip.counter").Increment(3);
  GetGauge("test.roundtrip.gauge").Set(-5);
  Histogram& h = GetHistogram("test.roundtrip.hist", {1.0, 10.0});
  h.Observe(0.5);
  h.Observe(50.0);

  Json parsed = Json::Parse(MetricsRegistry::Default().Snapshot().Dump(2));
  EXPECT_EQ(parsed.At("counters").At("test.roundtrip.counter").AsU64(), 3u);
  EXPECT_DOUBLE_EQ(parsed.At("gauges").At("test.roundtrip.gauge").AsNumber(), -5.0);
  const Json& hist = parsed.At("histograms").At("test.roundtrip.hist");
  EXPECT_EQ(hist.At("count").AsU64(), 2u);
  EXPECT_DOUBLE_EQ(hist.At("sum").AsNumber(), 50.5);
  EXPECT_EQ(hist.At("counts").size(), 3u);
  EXPECT_EQ(hist.At("counts")[0].AsU64(), 1u);
  EXPECT_EQ(hist.At("counts")[2].AsU64(), 1u);
  EXPECT_EQ(hist.At("bounds").size(), 2u);
}

TEST(Metrics, ReachabilityNodesReachedMatchesCount) {
  // The nodes_reached counter counts destinations only, exactly like
  // ReachabilityEngine::Count (the origin is not a reached node).
  flatnet::AsGraphBuilder builder;
  builder.AddEdge(2, 1, flatnet::EdgeType::kP2C);
  builder.AddEdge(3, 2, flatnet::EdgeType::kP2C);
  builder.AddEdge(3, 4, flatnet::EdgeType::kP2C);
  builder.AddEdge(5, 4, flatnet::EdgeType::kP2P);
  flatnet::AsGraph graph = std::move(builder).Build();

  Counter& nodes_reached = GetCounter("reachability.nodes_reached");
  flatnet::ReachabilityEngine engine(graph);
  for (flatnet::Asn origin : {1u, 4u, 5u}) {
    std::uint64_t before = nodes_reached.value();
    std::size_t count = engine.Count(*graph.IdOf(origin));
    EXPECT_EQ(nodes_reached.value() - before, count) << "origin AS" << origin;
  }
}

TEST(Metrics, ObservabilitySnapshotContainsCoreNames) {
  Json snapshot = ObservabilitySnapshot();
  EXPECT_TRUE(snapshot.At("counters").Contains("propagation.customer.relax_ops"));
  EXPECT_TRUE(snapshot.At("counters").Contains("cache.hit"));
  EXPECT_TRUE(snapshot.At("counters").Contains("cache.miss"));
  EXPECT_TRUE(snapshot.At("gauges").Contains("thread_pool.queue_depth"));
  EXPECT_TRUE(snapshot.At("gauges").Contains("thread_pool.threads"));
  EXPECT_TRUE(snapshot.At("spans").Contains("bgp.propagation.customer_phase"));
}

TEST(Trace, SpanNestingTracksSelfTime) {
  ResetSpanStatsForTest();
  {
    TraceSpan outer("test.span.outer");
    Stopwatch busy;
    while (busy.ElapsedMillis() < 5) {
    }
    {
      TraceSpan inner("test.span.inner");
      Stopwatch inner_busy;
      while (inner_busy.ElapsedMillis() < 10) {
      }
    }
  }
  auto stats = SpanStatsSnapshot();
  ASSERT_EQ(stats.count("test.span.outer"), 1u);
  ASSERT_EQ(stats.count("test.span.inner"), 1u);
  const SpanStats& outer = stats["test.span.outer"];
  const SpanStats& inner = stats["test.span.inner"];
  EXPECT_EQ(outer.count, 1u);
  EXPECT_EQ(inner.count, 1u);
  // Outer wall time covers the inner span; outer self time excludes it.
  EXPECT_GE(outer.total_seconds, inner.total_seconds);
  EXPECT_GE(inner.total_seconds, 0.010 * 0.5);
  EXPECT_LT(outer.self_seconds, outer.total_seconds - inner.total_seconds * 0.5);
  EXPECT_LE(outer.min_seconds, outer.max_seconds);
}

TEST(Trace, AggregatesAcrossRepeatsAndThreads) {
  ResetSpanStatsForTest();
  ThreadPool pool(4);
  pool.ParallelFor(0, 64, [&](std::size_t) { TraceSpan span("test.span.repeat"); });
  auto stats = SpanStatsSnapshot();
  ASSERT_EQ(stats.count("test.span.repeat"), 1u);
  EXPECT_EQ(stats["test.span.repeat"].count, 64u);
}

TEST(Trace, SnapshotAndSummaryTable) {
  ResetSpanStatsForTest();
  PreRegisterSpan("test.span.preregistered");
  { TraceSpan span("test.span.ran"); }
  Json spans = Json::Parse(SnapshotSpans().Dump());
  EXPECT_TRUE(spans.Contains("test.span.preregistered"));
  EXPECT_EQ(spans.At("test.span.preregistered").At("count").AsU64(), 0u);
  EXPECT_EQ(spans.At("test.span.ran").At("count").AsU64(), 1u);
  std::string table = SpanSummaryTable().ToString();
  EXPECT_NE(table.find("test.span.ran"), std::string::npos);
}

}  // namespace
}  // namespace flatnet::obs
