#include <gtest/gtest.h>

#include <set>

#include "geo/cities.h"
#include "geo/geo.h"
#include "geo/population.h"

namespace flatnet {
namespace {

TEST(Geo, HaversineKnownDistances) {
  GeoPoint nyc{40.7, -74.0};
  GeoPoint london{51.5, -0.1};
  // NYC <-> London great-circle distance is ~5,570 km.
  EXPECT_NEAR(DistanceKm(nyc, london), 5570.0, 60.0);
  EXPECT_DOUBLE_EQ(DistanceKm(nyc, nyc), 0.0);
  // Symmetry.
  EXPECT_DOUBLE_EQ(DistanceKm(nyc, london), DistanceKm(london, nyc));
}

TEST(Geo, AntipodalIsHalfCircumference) {
  GeoPoint a{0.0, 0.0};
  GeoPoint b{0.0, 180.0};
  EXPECT_NEAR(DistanceKm(a, b), 6371.0 * 3.14159265, 5.0);
}

TEST(Cities, DatabaseIsWellFormed) {
  auto cities = WorldCities();
  EXPECT_GT(cities.size(), 100u);
  std::set<std::string> iatas;
  for (const City& city : cities) {
    EXPECT_EQ(city.iata.size(), 3u) << city.name;
    EXPECT_GE(city.location.lat_deg, -90.0);
    EXPECT_LE(city.location.lat_deg, 90.0);
    EXPECT_GE(city.location.lon_deg, -180.0);
    EXPECT_LE(city.location.lon_deg, 180.0);
    EXPECT_GT(city.population_millions, 0.0) << city.name;
    EXPECT_TRUE(iatas.insert(std::string(city.iata)).second)
        << "duplicate IATA " << city.iata;
  }
}

TEST(Cities, IataLookup) {
  auto nyc = CityByIata("NYC");
  ASSERT_TRUE(nyc.has_value());
  EXPECT_EQ(WorldCities()[*nyc].name, "New York");
  EXPECT_EQ(CityByIata("nyc"), nyc);  // case-insensitive
  EXPECT_FALSE(CityByIata("ZZZ").has_value());
}

TEST(Cities, EveryContinentRepresented) {
  std::set<Continent> seen;
  for (const City& city : WorldCities()) seen.insert(city.continent);
  EXPECT_EQ(seen.size(), kContinentCount);
}

TEST(Population, CoverageMonotonicInRadius) {
  std::vector<CityIndex> pops{*CityByIata("LHR"), *CityByIata("NYC"), *CityByIata("SIN")};
  double prev = 0.0;
  for (double radius : {100.0, 500.0, 1000.0, 3000.0, 20000.0}) {
    CoverageResult cov = PopulationCoverage(pops, radius);
    EXPECT_GE(cov.world, prev);
    prev = cov.world;
    for (double f : cov.per_continent) {
      EXPECT_GE(f, 0.0);
      EXPECT_LE(f, 1.0);
    }
  }
  // A planet-sized radius covers everyone.
  EXPECT_DOUBLE_EQ(PopulationCoverage(pops, 21000.0).world, 1.0);
}

TEST(Population, EmptyDeploymentCoversNothing) {
  CoverageResult cov = PopulationCoverage({}, 1000.0);
  EXPECT_DOUBLE_EQ(cov.world, 0.0);
}

TEST(Population, ContinentTotalsSumToWorld) {
  auto totals = ContinentPopulations();
  double sum = 0;
  for (double t : totals) sum += t;
  EXPECT_NEAR(sum, TotalCityPopulationMillions(), 1e-9);
}

TEST(Population, LocalRadiusCoversOwnContinentOnly) {
  std::vector<CityIndex> pops{*CityByIata("LHR")};
  CoverageResult cov = PopulationCoverage(pops, 500.0);
  EXPECT_GT(cov.per_continent[static_cast<std::size_t>(Continent::kEurope)], 0.0);
  EXPECT_DOUBLE_EQ(cov.per_continent[static_cast<std::size_t>(Continent::kOceania)], 0.0);
  EXPECT_DOUBLE_EQ(cov.per_continent[static_cast<std::size_t>(Continent::kSouthAmerica)], 0.0);
}

}  // namespace
}  // namespace flatnet
