#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bgp/propagation.h"
#include "bgp/reachability.h"
#include "bgp/hegemony.h"
#include "core/reachability_analysis.h"
#include "failsim/engine.h"
#include "failsim/store.h"
#include "leaksim/engine.h"
#include "leaksim/store.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "serve/cache.h"
#include "serve/dispatcher.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "sweep/engine.h"
#include "sweep/store.h"
#include "topogen/generate.h"
#include "util/cancel.h"
#include "util/error.h"
#include "util/json.h"
#include "util/stats.h"
#include "util/strings.h"

namespace flatnet {
namespace {

using serve::CacheKey;
using serve::Dispatcher;
using serve::DispatcherOptions;
using serve::ErrorCode;
using serve::ParseRequest;
using serve::ProtocolError;
using serve::QueryKind;
using serve::ReachMode;
using serve::Request;
using serve::ResultCache;

ErrorCode CodeOf(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const ProtocolError& e) {
    return e.code();
  }
  ADD_FAILURE() << "expected ProtocolError";
  return ErrorCode::kInternal;
}

TEST(ServeProtocol, ParsesReachWithCanonicalLists) {
  Request request = ParseRequest(
      R"({"op":"reach","origin":15169,"mode":"tier1_free",)"
      R"("excluded":[9,3,9,5],"peer_locked":[7,2],"lock_mode":"direct_only",)"
      R"("id":42,"deadline_ms":500})");
  EXPECT_EQ(request.kind, QueryKind::kReach);
  EXPECT_EQ(request.origin, 15169u);
  EXPECT_EQ(request.mode, ReachMode::kTier1Free);
  EXPECT_EQ(request.excluded, (std::vector<Asn>{3, 5, 9}));  // sorted, deduped
  EXPECT_EQ(request.peer_locked, (std::vector<Asn>{2, 7}));
  EXPECT_EQ(request.lock_mode, PeerLockMode::kDirectOnly);
  EXPECT_EQ(request.deadline_ms, 500);
}

TEST(ServeProtocol, RejectsMalformedRequests) {
  EXPECT_EQ(CodeOf([] { ParseRequest("{not json"); }), ErrorCode::kBadRequest);
  EXPECT_EQ(CodeOf([] { ParseRequest(R"({"op":"frobnicate"})"); }), ErrorCode::kUnknownOp);
  EXPECT_EQ(CodeOf([] { ParseRequest(R"({"op":"reach"})"); }), ErrorCode::kBadRequest);
  // Unknown keys fail loudly (typo protection), per-op.
  EXPECT_EQ(CodeOf([] { ParseRequest(R"({"op":"reach","origin":1,"k":5})"); }),
            ErrorCode::kBadRequest);
  EXPECT_EQ(CodeOf([] { ParseRequest(R"({"op":"status","origin":1})"); }),
            ErrorCode::kBadRequest);
  EXPECT_EQ(CodeOf([] { ParseRequest(R"({"op":"leak","victim":4,"leaker":4})"); }),
            ErrorCode::kBadRequest);
  EXPECT_EQ(CodeOf([] { ParseRequest(R"({"op":"reach","origin":0})"); }),
            ErrorCode::kBadRequest);
  EXPECT_EQ(
      CodeOf([] { ParseRequest(R"({"op":"reach","origin":1,"deadline_ms":0})"); }),
      ErrorCode::kBadRequest);
}

TEST(ServeProtocol, ParsesTopRequests) {
  Request request = ParseRequest(R"({"op":"top","k":5,"metric":"tier1_free","id":1})");
  EXPECT_EQ(request.kind, QueryKind::kTop);
  EXPECT_EQ(request.top_k, 5u);
  EXPECT_EQ(request.metric, ReachMode::kTier1Free);

  // Defaults: k=10, hierarchy-free.
  Request bare = ParseRequest(R"({"op":"top"})");
  EXPECT_EQ(bare.top_k, 10u);
  EXPECT_EQ(bare.metric, ReachMode::kHierarchyFree);

  // "full" names no sweep column; unknown fields fail loudly; `top` is
  // inline and takes no deadline.
  EXPECT_EQ(CodeOf([] { ParseRequest(R"({"op":"top","metric":"full"})"); }),
            ErrorCode::kBadRequest);
  EXPECT_EQ(CodeOf([] { ParseRequest(R"({"op":"top","origin":5})"); }),
            ErrorCode::kBadRequest);
  EXPECT_EQ(CodeOf([] { ParseRequest(R"({"op":"top","k":0})"); }), ErrorCode::kBadRequest);
  EXPECT_EQ(CodeOf([] { ParseRequest(R"({"op":"top","deadline_ms":100})"); }),
            ErrorCode::kBadRequest);
  // Never cached: served inline from the precomputed ranking.
  EXPECT_TRUE(CacheKey(ParseRequest(R"({"op":"top","k":3})")).empty());
}

TEST(ServeProtocol, CacheKeyIgnoresIdAndDeadline) {
  Request a = ParseRequest(R"({"op":"reach","origin":7,"id":1,"deadline_ms":100})");
  Request b = ParseRequest(R"({"op":"reach","origin":7,"id":"xyz"})");
  EXPECT_EQ(CacheKey(a), CacheKey(b));

  Request c = ParseRequest(R"({"op":"reach","origin":7,"mode":"full"})");
  EXPECT_NE(CacheKey(a), CacheKey(c));

  // Differently-ordered input lists canonicalize to the same key.
  Request d = ParseRequest(R"({"op":"reach","origin":7,"excluded":[5,3]})");
  Request e = ParseRequest(R"({"op":"reach","origin":7,"excluded":[3,5,3]})");
  EXPECT_EQ(CacheKey(d), CacheKey(e));

  EXPECT_TRUE(CacheKey(ParseRequest(R"({"op":"status"})")).empty());
}

TEST(ServeProtocol, ResponseEnvelopeEmbedsResultVerbatim) {
  std::string cold = serve::OkResponse(Json(7), "{\"reachable\":12}", false);
  std::string warm = serve::OkResponse(Json(7), "{\"reachable\":12}", true);
  EXPECT_EQ(cold, R"({"cached":false,"id":7,"ok":true,"result":{"reachable":12}})");
  EXPECT_EQ(warm, R"({"cached":true,"id":7,"ok":true,"result":{"reachable":12}})");

  Json error = Json::Parse(serve::ErrorResponse(Json(), ErrorCode::kOverloaded, "busy"));
  EXPECT_FALSE(error.Get("ok").AsBool());
  EXPECT_EQ(error.Get("error").Get("code").AsString(), "overloaded");
  EXPECT_TRUE(error.Get("id").is_null());
}

TEST(ServeProtocol, ParsesMetricsDebugAndTimingKeys) {
  Request metrics = ParseRequest(R"({"op":"metrics","id":1})");
  EXPECT_EQ(metrics.kind, QueryKind::kMetrics);
  EXPECT_FALSE(metrics.prometheus);
  EXPECT_TRUE(ParseRequest(R"({"op":"metrics","format":"prometheus"})").prometheus);
  EXPECT_FALSE(ParseRequest(R"({"op":"metrics","format":"json"})").prometheus);
  EXPECT_EQ(CodeOf([] { ParseRequest(R"({"op":"metrics","format":"xml"})"); }),
            ErrorCode::kBadRequest);

  Request debug = ParseRequest(R"({"op":"debug","n":32})");
  EXPECT_EQ(debug.kind, QueryKind::kDebug);
  EXPECT_EQ(debug.debug_n, 32u);
  EXPECT_EQ(ParseRequest(R"({"op":"debug"})").debug_n, 256u);  // default
  EXPECT_EQ(CodeOf([] { ParseRequest(R"({"op":"debug","n":0})"); }), ErrorCode::kBadRequest);
  EXPECT_EQ(CodeOf([] { ParseRequest(R"({"op":"debug","n":200000})"); }),
            ErrorCode::kBadRequest);

  // `timing` is accepted on every op, must be boolean, and defaults off.
  EXPECT_TRUE(ParseRequest(R"({"op":"status","timing":true})").timing);
  EXPECT_TRUE(ParseRequest(R"({"op":"reach","origin":1,"timing":true})").timing);
  EXPECT_FALSE(ParseRequest(R"({"op":"reach","origin":1})").timing);
  EXPECT_EQ(CodeOf([] { ParseRequest(R"({"op":"reach","origin":1,"timing":1})"); }),
            ErrorCode::kBadRequest);

  // Introspection ops answer inline: never cached, no deadline.
  EXPECT_TRUE(CacheKey(ParseRequest(R"({"op":"metrics"})")).empty());
  EXPECT_TRUE(CacheKey(ParseRequest(R"({"op":"debug"})")).empty());
  EXPECT_EQ(CodeOf([] { ParseRequest(R"({"op":"metrics","deadline_ms":5})"); }),
            ErrorCode::kBadRequest);
  EXPECT_EQ(CodeOf([] { ParseRequest(R"({"op":"debug","deadline_ms":5})"); }),
            ErrorCode::kBadRequest);

  // Asking for timing never forks the cache: same key with and without.
  EXPECT_EQ(CacheKey(ParseRequest(R"({"op":"reach","origin":7,"timing":true})")),
            CacheKey(ParseRequest(R"({"op":"reach","origin":7})")));
}

TEST(ServeProtocol, TimingFieldAppendsAfterResultKeepingSortedKeys) {
  std::string timing = R"({"phases":[],"server_ms":0.5})";
  std::string timed = serve::OkResponse(Json(7), "{\"reachable\":12}", false, &timing);
  EXPECT_EQ(timed,
            R"({"cached":false,"id":7,"ok":true,"result":{"reachable":12},)"
            R"("timing":{"phases":[],"server_ms":0.5}})");
  // A null timing pointer produces the exact untraced envelope.
  EXPECT_EQ(serve::OkResponse(Json(7), "{\"reachable\":12}", false, nullptr),
            serve::OkResponse(Json(7), "{\"reachable\":12}", false));
}

TEST(ServeCache, EvictsColdEntriesUnderByteBudget) {
  // One shard, budget for two ~111-byte entries (key + 10B value + 96
  // overhead); the third insert must evict the coldest.
  ResultCache cache(2 * (1 + 10 + 96), /*num_shards=*/1);
  const std::string value(10, 'v');
  cache.Put("a", value);
  cache.Put("b", value);
  ASSERT_TRUE(cache.Get("a").has_value());  // promotes "a"; "b" is now coldest
  cache.Put("c", value);
  EXPECT_TRUE(cache.Get("a").has_value());
  EXPECT_FALSE(cache.Get("b").has_value());
  EXPECT_TRUE(cache.Get("c").has_value());

  serve::CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_LE(stats.bytes, stats.capacity_bytes);
}

TEST(ServeCache, OversizeResultsAreDroppedAndCounted) {
  // Budget fits one small entry; a value bigger than the whole shard
  // budget is dropped up front (counted, not churned through the LRU).
  ResultCache cache(1 + 10 + 96, /*num_shards=*/1);
  cache.Put("a", std::string(10, 'v'));
  cache.Put("b", std::string(4096, 'w'));
  EXPECT_FALSE(cache.Get("b").has_value());
  EXPECT_TRUE(cache.Get("a").has_value());  // resident entries survive the drop

  serve::CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.oversize, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.entries, 1u);

  // An oversize result supersedes a stale cached value under the same key
  // rather than leaving the old bytes to be served.
  cache.Put("a", std::string(4096, 'w'));
  EXPECT_FALSE(cache.Get("a").has_value());
  EXPECT_EQ(cache.Stats().oversize, 2u);
  EXPECT_EQ(cache.Stats().entries, 0u);
}

TEST(ServeCache, PutRefreshesExistingKey) {
  ResultCache cache(1 << 20, 1);
  cache.Put("k", "old");
  cache.Put("k", "new");
  EXPECT_EQ(cache.Get("k").value(), "new");
  EXPECT_EQ(cache.Stats().entries, 1u);
}

TEST(Cancel, TokenExpiryAndPropagationAbort) {
  CancelToken manual;
  EXPECT_FALSE(manual.Expired());
  manual.Cancel();
  EXPECT_TRUE(manual.Expired());
  EXPECT_THROW(manual.ThrowIfExpired("test"), CancelledError);

  CancelToken expired(std::chrono::steady_clock::now() - std::chrono::milliseconds(1));
  EXPECT_TRUE(expired.Expired());

  AsGraphBuilder builder;
  builder.AddEdge(1, 2, EdgeType::kP2C);
  builder.AddEdge(2, 3, EdgeType::kP2C);
  AsGraph graph = std::move(builder).Build();
  PropagationOptions options;
  options.cancel = &expired;
  AnnouncementSource source;
  source.node = *graph.IdOf(3);
  EXPECT_THROW(RouteComputation(graph, {source}, options), CancelledError);
}

class ServeDispatchTest : public ::testing::Test {
 protected:
  static const World& world() {
    static const World w = [] {
      GeneratorParams params = GeneratorParams::Era2015(600);
      params.seed = 1234;
      return GenerateWorld(params);
    }();
    return w;
  }
  static const Internet& internet() {
    static const Internet net(world().full_graph, world().tiers, world().metadata);
    return net;
  }
  static Dispatcher& dispatcher() {
    static Dispatcher d(internet(), DispatcherOptions{.threads = 2});
    return d;
  }
  static Json Ask(const std::string& line) {
    return Json::Parse(dispatcher().HandleSync(line));
  }
  static Asn AsnAt(AsId id) { return internet().graph().AsnOf(id); }
};

TEST_F(ServeDispatchTest, StatusReportsTopologyAndCache) {
  Json response = Ask(R"({"op":"status","id":"s"})");
  ASSERT_TRUE(response.Get("ok").AsBool());
  EXPECT_EQ(response.Get("id").AsString(), "s");
  EXPECT_FALSE(response.Get("cached").AsBool());
  const Json& result = response.Get("result");
  EXPECT_EQ(result.Get("num_ases").AsU64(), internet().num_ases());
  EXPECT_EQ(result.Get("num_edges").AsU64(), internet().graph().num_edges());
  EXPECT_TRUE(result.Get("cache").Contains("hits"));
  EXPECT_TRUE(result.Get("metrics").Contains("counters"));
}

TEST_F(ServeDispatchTest, ReachColdThenCachedIsByteIdentical) {
  std::string line = StrFormat(
      R"({"op":"reach","origin":%u,"mode":"hierarchy_free","id":9})", AsnAt(17));
  std::string cold = dispatcher().HandleSync(line);
  std::string warm = dispatcher().HandleSync(line);
  Json cold_doc = Json::Parse(cold);
  Json warm_doc = Json::Parse(warm);
  ASSERT_TRUE(cold_doc.Get("ok").AsBool()) << cold;
  EXPECT_FALSE(cold_doc.Get("cached").AsBool());
  EXPECT_TRUE(warm_doc.Get("cached").AsBool());
  // The result payload embeds verbatim from the cache: everything after the
  // `result` key must match byte-for-byte.
  std::size_t cold_at = cold.find("\"result\":");
  std::size_t warm_at = warm.find("\"result\":");
  ASSERT_NE(cold_at, std::string::npos);
  EXPECT_EQ(cold.substr(cold_at), warm.substr(warm_at));

  // Cross-check against the independent valley-free BFS engine.
  AsId origin = 17;
  Bitset excluded = internet().HierarchyFreeExclusion(origin);
  std::size_t local = ReachableCount(internet().graph(), origin, &excluded);
  EXPECT_EQ(cold_doc.Get("result").Get("reachable").AsU64(), local);
  EXPECT_EQ(cold_doc.Get("result").Get("denominator").AsU64(), internet().num_ases() - 1);
}

TEST_F(ServeDispatchTest, TimingIsOptInAndWarmBytesAreStable) {
  std::string line = StrFormat(
      R"({"op":"reach","origin":%u,"mode":"hierarchy_free","id":8})", AsnAt(29));
  std::string cold = dispatcher().HandleSync(line);
  EXPECT_EQ(cold.find("\"timing\""), std::string::npos);
  std::string warm = dispatcher().HandleSync(line);
  ASSERT_TRUE(Json::Parse(warm).Get("cached").AsBool());
  EXPECT_EQ(warm.find("\"timing\""), std::string::npos);

  std::string timed_line = line;
  timed_line.insert(timed_line.size() - 1, R"(,"timing":true)");
  std::string timed = dispatcher().HandleSync(timed_line);
  Json timed_doc = Json::Parse(timed);
  ASSERT_TRUE(timed_doc.Get("ok").AsBool()) << timed;
  EXPECT_TRUE(timed_doc.Get("cached").AsBool());

  // The timed response is the warm response with `"timing"` appended before
  // the closing brace; everything before it is byte-identical.
  std::size_t at = timed.find(",\"timing\":");
  ASSERT_NE(at, std::string::npos);
  EXPECT_EQ(timed.substr(0, at) + "}", warm);

  // server_ms is exactly the sum of the reported phases.
  const Json& timing = timed_doc.Get("timing");
  const Json& phases = timing.Get("phases");
  ASSERT_GT(phases.size(), 0u);
  double sum = 0.0;
  for (std::size_t i = 0; i < phases.size(); ++i) {
    EXPECT_GE(phases[i].Get("ms").AsNumber(), 0.0);
    sum += phases[i].Get("ms").AsNumber();
  }
  EXPECT_NEAR(sum, timing.Get("server_ms").AsNumber(), 1e-6);
}

TEST_F(ServeDispatchTest, ColdTimedReachNamesThePipelinePhases) {
  std::string line =
      StrFormat(R"({"op":"reach","origin":%u,"timing":true,"id":9})", AsnAt(31));
  Json doc = Json::Parse(dispatcher().HandleSync(line));
  ASSERT_TRUE(doc.Get("ok").AsBool()) << doc.Dump();
  EXPECT_FALSE(doc.Get("cached").AsBool());
  const Json& phases = doc.Get("timing").Get("phases");
  std::vector<std::string> names;
  for (std::size_t i = 0; i < phases.size(); ++i) {
    names.push_back(phases[i].Get("name").AsString());
  }
  // The dispatcher pipeline: accept → parse → cache_probe → queue (pool
  // handoff, proving the trace followed the request onto a worker thread)
  // → setup → propagation phases from inside the engine → serialize.
  for (const char* expected : {"accept", "parse", "cache_probe", "queue", "setup",
                               "serialize"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), std::string(expected)), names.end())
        << expected << " missing from " << doc.Get("timing").Dump();
  }
  EXPECT_TRUE(std::any_of(names.begin(), names.end(), [](const std::string& n) {
    return n.rfind("propagation.", 0) == 0;
  })) << doc.Get("timing").Dump();
}

TEST_F(ServeDispatchTest, MetricsOpServesJsonAndPrometheus) {
  Json response = Ask(R"({"op":"metrics","id":"m"})");
  ASSERT_TRUE(response.Get("ok").AsBool());
  EXPECT_FALSE(response.Get("cached").AsBool());
  const Json& result = response.Get("result");
  EXPECT_EQ(result.Get("format").AsString(), "json");
  const Json& metrics = result.Get("metrics");
  EXPECT_TRUE(metrics.Get("counters").Contains("serve.requests"));
  EXPECT_TRUE(metrics.Get("counters").Contains("serve.metrics.requests"));
  EXPECT_TRUE(metrics.Contains("spans"));
  EXPECT_TRUE(metrics.Contains("histograms"));

  Json prom = Ask(R"({"op":"metrics","format":"prometheus","id":"p"})");
  ASSERT_TRUE(prom.Get("ok").AsBool());
  const Json& prom_result = prom.Get("result");
  EXPECT_EQ(prom_result.Get("format").AsString(), "prometheus");
  EXPECT_EQ(prom_result.Get("content_type").AsString(), "text/plain; version=0.0.4");
  std::string text = prom_result.Get("text").AsString();
  EXPECT_NE(text.find("flatnet_serve_requests"), std::string::npos);
  EXPECT_NE(text.find("_bucket{le="), std::string::npos);
}

TEST_F(ServeDispatchTest, DebugOpReturnsFlightRecorderSnapshot) {
  obs::ResetRecorderForTest();
  obs::EnableRecorder(true);
  for (std::uint64_t i = 0; i < 20; ++i) obs::RecordEvent("serve.test.event", i);
  Json response = Ask(R"({"op":"debug","n":16,"id":"d"})");
  obs::EnableRecorder(false);
  ASSERT_TRUE(response.Get("ok").AsBool());
  const Json& result = response.Get("result");
  EXPECT_TRUE(result.Get("enabled").AsBool());
  ASSERT_EQ(result.Get("events").size(), 16u);
  std::size_t ours = 0;
  for (std::size_t i = 0; i < result.Get("events").size(); ++i) {
    if (result.Get("events")[i].Get("name").AsString() == "serve.test.event") ++ours;
  }
  EXPECT_GT(ours, 0u);
  obs::ResetRecorderForTest();
}

TEST_F(ServeDispatchTest, StatusReportsPerOpCountersHitRatioAndUptime) {
  std::string line = StrFormat(R"({"op":"reach","origin":%u,"id":1})", AsnAt(47));
  Json before = Ask(R"({"op":"status"})").Get("result");
  dispatcher().HandleSync(line);  // cold: cache miss
  dispatcher().HandleSync(line);  // warm: cache hit
  Json after = Ask(R"({"op":"status"})").Get("result");

  const Json& ops = after.Get("ops");
  for (const char* op : {"reach", "reliance", "leak", "status", "top", "leakdist",
                         "metrics", "debug", "hegemony", "failure"}) {
    ASSERT_TRUE(ops.Contains(op)) << op;
    EXPECT_TRUE(ops.Get(op).Contains("requests")) << op;
    EXPECT_TRUE(ops.Get(op).Contains("errors")) << op;
  }
  // Counters are process-global, so compare deltas, not absolutes.
  EXPECT_GE(ops.Get("reach").Get("requests").AsU64(),
            before.Get("ops").Get("reach").Get("requests").AsU64() + 2);
  EXPECT_GE(ops.Get("status").Get("requests").AsU64(), 2u);

  const Json& cache = after.Get("cache");
  EXPECT_GT(cache.Get("hit_ratio").AsNumber(), 0.0);
  EXPECT_LE(cache.Get("hit_ratio").AsNumber(), 1.0);
  EXPECT_GT(after.Get("uptime_s").AsNumber(), 0.0);
  EXPECT_EQ(after.Get("slow_query_ms").AsNumber(), 0.0);  // fixture is unarmed
}

TEST_F(ServeDispatchTest, SlowQueryThresholdCountsSlowRequests) {
  DispatcherOptions options{.threads = 1};
  options.slow_query_ms = 1;
  Dispatcher slow(internet(), options);
  obs::Counter& slow_queries = obs::GetCounter("serve.slow_queries");
  std::uint64_t before = slow_queries.value();
  // The traced timeline ends at the `write` phase, marked after the
  // response is handed off — a slow consumer deterministically pushes the
  // request past the 1 ms threshold.
  slow.Handle(R"({"op":"status","id":"s"})", [](std::string response) {
    EXPECT_EQ(response.find("\"timing\""), std::string::npos);  // opt-in only
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  });
  EXPECT_EQ(slow_queries.value(), before + 1);
}

TEST_F(ServeDispatchTest, SlowQueryArmingKeepsResponseBytesIdentical) {
  DispatcherOptions options{.threads = 2};
  options.slow_query_ms = 1000000;  // armed but never tripped
  Dispatcher armed(internet(), options);
  std::string line = StrFormat(R"({"op":"reach","origin":%u,"id":1})", AsnAt(41));
  std::string traced = armed.HandleSync(line);
  std::string untraced = dispatcher().HandleSync(line);
  // Both cold (separate caches): arming the slow-query log traces
  // internally but must not change a single byte on the wire.
  EXPECT_EQ(traced, untraced);
  EXPECT_EQ(traced.find("\"timing\""), std::string::npos);
}

TEST_F(ServeDispatchTest, RelianceReturnsSortedTopK) {
  Json response =
      Ask(StrFormat(R"({"op":"reliance","origin":%u,"k":5,"id":1})", AsnAt(23)));
  ASSERT_TRUE(response.Get("ok").AsBool());
  const Json& top = response.Get("result").Get("top");
  ASSERT_LE(top.size(), 5u);
  ASSERT_GT(top.size(), 0u);
  for (std::size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].Get("reliance").AsNumber(), top[i].Get("reliance").AsNumber());
  }
}

TEST_F(ServeDispatchTest, LeakFromDirectNeighborDetoursSomeone) {
  // A neighbor of the victim always holds a (direct) route, so the leak is
  // well-defined.
  AsId victim = 0;
  ASSERT_GT(internet().graph().Degree(victim), 0u);
  AsId leaker = internet().graph().NeighborsOf(victim)[0].id;
  Json response = Ask(StrFormat(R"({"op":"leak","victim":%u,"leaker":%u,"id":2})",
                                AsnAt(victim), AsnAt(leaker)));
  ASSERT_TRUE(response.Get("ok").AsBool()) << response.Dump();
  const Json& result = response.Get("result");
  EXPECT_GE(result.Get("fraction_ases").AsNumber(), 0.0);
  EXPECT_LE(result.Get("fraction_ases").AsNumber(), 1.0);
  EXPECT_EQ(result.Get("model").AsString(), "reannounce");
}

TEST_F(ServeDispatchTest, TopWithoutStoreIsBadRequest) {
  Json response = Ask(R"({"op":"top","k":3,"id":"t"})");
  EXPECT_FALSE(response.Get("ok").AsBool());
  EXPECT_EQ(response.Get("error").Get("code").AsString(), "bad_request");
  // And status reports the absence.
  Json status = Ask(R"({"op":"status","id":"s"})");
  EXPECT_FALSE(status.Get("result").Get("sweep_store").Get("loaded").AsBool());
}

TEST_F(ServeDispatchTest, TopServesRankedPrefixFromAttachedStore) {
  // A dispatcher of its own, so the fixture dispatcher stays storeless.
  Dispatcher d(internet(), DispatcherOptions{.threads = 2});
  sweep::SweepOptions options;
  options.threads = 2;
  d.AttachSweepStore(
      [&] {
        sweep::SweepStore store;
        std::string path =
            (std::filesystem::temp_directory_path() / "flatnet_serve_top.sweep").string();
        sweep::WriteSweepStore(path, sweep::RunSweep(internet(), options));
        store = sweep::SweepStore::Load(path);
        std::filesystem::remove(path);
        return store;
      }(),
      "flatnet_serve_top.sweep");
  ASSERT_TRUE(d.has_sweep_store());

  Json response =
      Json::Parse(d.HandleSync(R"({"op":"top","k":5,"metric":"hierarchy_free","id":7})"));
  ASSERT_TRUE(response.Get("ok").AsBool()) << response.Dump();
  const Json& result = response.Get("result");
  EXPECT_EQ(result.Get("metric").AsString(), "hierarchy_free");
  EXPECT_EQ(result.Get("k").AsU64(), 5u);
  const Json& top = result.Get("top");
  ASSERT_EQ(top.size(), 5u);
  for (std::size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].Get("reach").AsU64(), top[i].Get("reach").AsU64());
  }
  // The #1 entry is the true maximum of the serial sweep.
  std::vector<std::uint32_t> serial = HierarchyFreeSweep(internet());
  EXPECT_EQ(top[0].Get("reach").AsU64(),
            *std::max_element(serial.begin(), serial.end()));

  // Status advertises the store so clients (loadgen) can gate `top`.
  Json status = Json::Parse(d.HandleSync(R"({"op":"status","id":"s"})"));
  const Json& sweep_store = status.Get("result").Get("sweep_store");
  EXPECT_TRUE(sweep_store.Get("loaded").AsBool());
  EXPECT_EQ(sweep_store.Get("num_origins").AsU64(), internet().num_ases());

  // A store without the requested column answers bad_request, not zeros.
  Json missing =
      Json::Parse(d.HandleSync(R"({"op":"top","metric":"provider_free","id":8})"));
  EXPECT_TRUE(missing.Get("ok").AsBool());  // default sweep has all reach columns
}

TEST_F(ServeDispatchTest, AttachRejectsMismatchedStore) {
  GeneratorParams params = GeneratorParams::Era2015(300);
  params.seed = 4321;
  World other = GenerateWorld(params);
  Internet other_net(other.full_graph, other.tiers, other.metadata);
  sweep::SweepOptions options;
  options.threads = 2;
  sweep::SweepTable table = sweep::RunSweep(other_net, options);
  std::string path =
      (std::filesystem::temp_directory_path() / "flatnet_serve_mismatch.sweep").string();
  sweep::WriteSweepStore(path, table);
  sweep::SweepStore store = sweep::SweepStore::Load(path);
  std::filesystem::remove(path);

  Dispatcher d(internet(), DispatcherOptions{.threads = 1});
  EXPECT_THROW(d.AttachSweepStore(std::move(store), path), Error);
  EXPECT_FALSE(d.has_sweep_store());
}

TEST(ServeProtocol, ParsesLeakDistRequests) {
  Request request = ParseRequest(
      R"({"op":"leakdist","victim":15169,"scenario":"t1t2","lock_mode":"direct_only",)"
      R"("model":"originate","q":[0.5,0.99],"id":3})");
  EXPECT_EQ(request.kind, QueryKind::kLeakDist);
  EXPECT_EQ(request.victim, 15169u);
  EXPECT_EQ(request.scenario, LeakScenario::kAnnounceAllLockT1T2);
  EXPECT_EQ(request.lock_mode, PeerLockMode::kDirectOnly);
  EXPECT_EQ(request.model, LeakModel::kOriginate);
  EXPECT_EQ(request.quantiles, (std::vector<double>{0.5, 0.99}));

  // Defaults: announce-to-all, erratum locking, re-announce model, and the
  // server-side default quantile set (empty list here).
  Request bare = ParseRequest(R"({"op":"leakdist","victim":7})");
  EXPECT_EQ(bare.scenario, LeakScenario::kAnnounceAll);
  EXPECT_EQ(bare.lock_mode, PeerLockMode::kFull);
  EXPECT_EQ(bare.model, LeakModel::kReannounce);
  EXPECT_TRUE(bare.quantiles.empty());

  EXPECT_EQ(CodeOf([] { ParseRequest(R"({"op":"leakdist"})"); }), ErrorCode::kBadRequest);
  EXPECT_EQ(CodeOf([] { ParseRequest(R"({"op":"leakdist","victim":7,"scenario":"all"})"); }),
            ErrorCode::kBadRequest);
  EXPECT_EQ(CodeOf([] { ParseRequest(R"({"op":"leakdist","victim":7,"q":[]})"); }),
            ErrorCode::kBadRequest);
  EXPECT_EQ(CodeOf([] { ParseRequest(R"({"op":"leakdist","victim":7,"q":[1.5]})"); }),
            ErrorCode::kBadRequest);
  EXPECT_EQ(CodeOf([] { ParseRequest(R"({"op":"leakdist","victim":7,"leaker":9})"); }),
            ErrorCode::kBadRequest);
  // Served inline from the attached store: no deadline, never cached.
  EXPECT_EQ(
      CodeOf([] { ParseRequest(R"({"op":"leakdist","victim":7,"deadline_ms":100})"); }),
      ErrorCode::kBadRequest);
  EXPECT_TRUE(CacheKey(ParseRequest(R"({"op":"leakdist","victim":7})")).empty());
}

TEST_F(ServeDispatchTest, LeakDistWithoutStoreIsBadRequest) {
  Json response = Ask(StrFormat(R"({"op":"leakdist","victim":%u,"id":"l"})", AsnAt(3)));
  EXPECT_FALSE(response.Get("ok").AsBool());
  EXPECT_EQ(response.Get("error").Get("code").AsString(), "bad_request");
  Json status = Ask(R"({"op":"status","id":"s"})");
  EXPECT_FALSE(status.Get("result").Get("leak_store").Get("loaded").AsBool());
}

TEST_F(ServeDispatchTest, LeakDistServesQuantilesFromAttachedStore) {
  // Build a small two-cell campaign, round-trip it through a store file,
  // and attach it to a fresh dispatcher.
  AsId victim = world().tiers.tier2[0];
  std::vector<leaksim::LeakCellSpec> cells;
  for (LeakScenario scenario :
       {LeakScenario::kAnnounceAll, LeakScenario::kAnnounceAllLockT1T2}) {
    leaksim::LeakCellSpec spec;
    spec.victim = victim;
    spec.scenario = scenario;
    spec.seed = 0x1d;
    spec.trials = 40;
    cells.push_back(spec);
  }
  leaksim::LeakTable table = leaksim::RunLeakCampaign(internet(), cells);
  std::string path =
      (std::filesystem::temp_directory_path() / "flatnet_serve_leakdist.leak").string();
  leaksim::WriteLeakStore(path, table);

  Dispatcher d(internet(), DispatcherOptions{.threads = 2});
  d.AttachLeakStore(leaksim::LeakStore::Load(path), path);
  std::filesystem::remove(path);
  ASSERT_TRUE(d.has_leak_store());

  Json response = Json::Parse(d.HandleSync(StrFormat(
      R"({"op":"leakdist","victim":%u,"scenario":"t1t2","q":[0.9],"id":7})", AsnAt(victim))));
  ASSERT_TRUE(response.Get("ok").AsBool()) << response.Dump();
  const Json& result = response.Get("result");
  EXPECT_EQ(result.Get("scenario").AsString(), "t1t2");
  EXPECT_EQ(result.Get("collected").AsU64(), table.cells[1].collected());
  EXPECT_EQ(result.Get("requested").AsU64(), 40u);
  EXPECT_FALSE(result.Get("under_collected").AsBool());
  const Json& quantiles = result.Get("quantiles");
  ASSERT_EQ(quantiles.size(), 1u);
  EXPECT_DOUBLE_EQ(quantiles[0].Get("q").AsNumber(), 0.9);
  // The served quantile is the shared nearest-rank statistic of the cell.
  EXPECT_DOUBLE_EQ(quantiles[0].Get("value").AsNumber(),
                   Quantile(table.cells[1].fraction_ases, 0.9));

  // A tuple the campaign never ran answers bad_request, not zeros.
  Json missing = Json::Parse(d.HandleSync(StrFormat(
      R"({"op":"leakdist","victim":%u,"scenario":"global","id":8})", AsnAt(victim))));
  EXPECT_FALSE(missing.Get("ok").AsBool());
  EXPECT_EQ(missing.Get("error").Get("code").AsString(), "bad_request");

  // Status advertises the store and its victims so clients can gate.
  Json status = Json::Parse(d.HandleSync(R"({"op":"status","id":"s"})"));
  const Json& leak_store = status.Get("result").Get("leak_store");
  EXPECT_TRUE(leak_store.Get("loaded").AsBool());
  EXPECT_EQ(leak_store.Get("cells").AsU64(), 2u);
  ASSERT_EQ(leak_store.Get("victims").size(), 1u);
  EXPECT_EQ(leak_store.Get("victims")[0].AsU64(), AsnAt(victim));
}

TEST_F(ServeDispatchTest, AttachRejectsMismatchedLeakStore) {
  GeneratorParams params = GeneratorParams::Era2015(300);
  params.seed = 4321;
  World other = GenerateWorld(params);
  Internet other_net(other.full_graph, other.tiers, other.metadata);
  leaksim::LeakCellSpec spec;
  spec.victim = other.tiers.tier1[0];
  spec.seed = 2;
  spec.trials = 5;
  leaksim::LeakTable table = leaksim::RunLeakCampaign(other_net, {spec});
  std::string path =
      (std::filesystem::temp_directory_path() / "flatnet_serve_leak_mismatch.leak").string();
  leaksim::WriteLeakStore(path, table);
  leaksim::LeakStore store = leaksim::LeakStore::Load(path);
  std::filesystem::remove(path);

  Dispatcher d(internet(), DispatcherOptions{.threads = 1});
  EXPECT_THROW(d.AttachLeakStore(std::move(store), path), Error);
  EXPECT_FALSE(d.has_leak_store());
}

TEST(ServeProtocol, ParsesHegemonyAndFailureRequests) {
  Request hegemony = ParseRequest(R"({"op":"hegemony","origin":15169,"k":5,"id":1})");
  EXPECT_EQ(hegemony.kind, QueryKind::kHegemony);
  EXPECT_EQ(hegemony.origin, 15169u);
  EXPECT_EQ(hegemony.top_k, 5u);
  EXPECT_TRUE(CacheKey(hegemony).empty());

  Request failure = ParseRequest(
      R"({"op":"failure","origin":7,"scenario":"hegemony_cascade",)"
      R"("column":"disconnected","q":[0.5],"id":2})");
  EXPECT_EQ(failure.kind, QueryKind::kFailure);
  EXPECT_EQ(failure.fail_scenario, failsim::FailScenario::kHegemonyCascade);
  EXPECT_EQ(failure.fail_column, serve::FailColumn::kDisconnected);
  EXPECT_EQ(failure.quantiles, (std::vector<double>{0.5}));
  EXPECT_TRUE(CacheKey(failure).empty());

  // Defaults: single_as knockouts, the AS-fraction column, the
  // server-side quantile set (empty list here).
  Request bare = ParseRequest(R"({"op":"failure","origin":7})");
  EXPECT_EQ(bare.fail_scenario, failsim::FailScenario::kSingleAs);
  EXPECT_EQ(bare.fail_column, serve::FailColumn::kLossAses);
  EXPECT_TRUE(bare.quantiles.empty());

  EXPECT_EQ(CodeOf([] { ParseRequest(R"({"op":"hegemony"})"); }), ErrorCode::kBadRequest);
  EXPECT_EQ(CodeOf([] { ParseRequest(R"({"op":"hegemony","origin":7,"k":0})"); }),
            ErrorCode::kBadRequest);
  EXPECT_EQ(CodeOf([] { ParseRequest(R"({"op":"failure"})"); }), ErrorCode::kBadRequest);
  EXPECT_EQ(
      CodeOf([] { ParseRequest(R"({"op":"failure","origin":7,"scenario":"meteor"})"); }),
      ErrorCode::kBadRequest);
  EXPECT_EQ(CodeOf([] { ParseRequest(R"({"op":"failure","origin":7,"column":"vibes"})"); }),
            ErrorCode::kBadRequest);
  // Served inline from the attached store: no deadline, never cached.
  EXPECT_EQ(
      CodeOf([] { ParseRequest(R"({"op":"hegemony","origin":7,"deadline_ms":100})"); }),
      ErrorCode::kBadRequest);
}

TEST_F(ServeDispatchTest, HegemonyAndFailureWithoutStoreAreBadRequests) {
  for (const char* format : {R"({"op":"hegemony","origin":%u,"id":"h"})",
                             R"({"op":"failure","origin":%u,"id":"f"})"}) {
    Json response = Ask(StrFormat(format, AsnAt(3)));
    EXPECT_FALSE(response.Get("ok").AsBool()) << format;
    EXPECT_EQ(response.Get("error").Get("code").AsString(), "bad_request") << format;
  }
  Json status = Ask(R"({"op":"status","id":"s"})");
  EXPECT_FALSE(status.Get("result").Get("fail_store").Get("loaded").AsBool());
}

TEST_F(ServeDispatchTest, HegemonyAndFailureServeFromAttachedStore) {
  // Build a small two-cell campaign, round-trip it through a store file,
  // and attach it to a fresh dispatcher.
  AsId origin = world().tiers.tier2[0];
  std::vector<failsim::FailCellSpec> cells;
  for (failsim::FailScenario scenario :
       {failsim::FailScenario::kSingleAs, failsim::FailScenario::kTier1}) {
    failsim::FailCellSpec spec;
    spec.origin = origin;
    spec.scenario = scenario;
    spec.seed = 0x2f;
    spec.trials = 12;
    cells.push_back(spec);
  }
  failsim::FailTable table = failsim::RunFailureCampaign(internet(), cells);
  std::string path =
      (std::filesystem::temp_directory_path() / "flatnet_serve_failure.fail").string();
  failsim::WriteFailStore(path, table);

  Dispatcher d(internet(), DispatcherOptions{.threads = 2});
  d.AttachFailStore(failsim::FailStore::Load(path), path);
  std::filesystem::remove(path);
  ASSERT_TRUE(d.has_fail_store());

  // The served hegemony prefix is the deterministic ranking recomputed on
  // the same topology — the store only gates which origins are available.
  RouteComputation computation(internet().graph(), {{.node = origin}});
  HegemonyResult hegemony = ComputeHegemony(computation);
  std::vector<AsId> ranking = HegemonyRanking(hegemony);
  ASSERT_GE(ranking.size(), 3u);
  Json response = Json::Parse(d.HandleSync(
      StrFormat(R"({"op":"hegemony","origin":%u,"k":3,"id":1})", AsnAt(origin))));
  ASSERT_TRUE(response.Get("ok").AsBool()) << response.Dump();
  const Json& top = response.Get("result").Get("top");
  ASSERT_EQ(top.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(top[i].Get("asn").AsU64(), AsnAt(ranking[i])) << "rank " << i;
    EXPECT_DOUBLE_EQ(top[i].Get("hegemony").AsNumber(), hegemony.hegemony[ranking[i]])
        << "rank " << i;
  }
  EXPECT_EQ(response.Get("result").Get("num_viewpoints").AsU64(), hegemony.num_viewpoints);

  // An origin the campaign never ran answers bad_request even with the
  // store attached.
  Json unknown = Json::Parse(d.HandleSync(StrFormat(
      R"({"op":"hegemony","origin":%u,"id":2})", AsnAt(world().tiers.tier2[1]))));
  EXPECT_FALSE(unknown.Get("ok").AsBool());
  EXPECT_EQ(unknown.Get("error").Get("code").AsString(), "bad_request");

  // The served failure quantile is the shared nearest-rank statistic of
  // the cell.
  Json failure = Json::Parse(d.HandleSync(
      StrFormat(R"({"op":"failure","origin":%u,"scenario":"tier1","q":[0.9],"id":3})",
                AsnAt(origin))));
  ASSERT_TRUE(failure.Get("ok").AsBool()) << failure.Dump();
  const Json& result = failure.Get("result");
  EXPECT_EQ(result.Get("scenario").AsString(), "tier1");
  EXPECT_EQ(result.Get("collected").AsU64(), table.cells[1].collected());
  EXPECT_EQ(result.Get("baseline").AsU64(), table.cells[1].baseline);
  ASSERT_EQ(result.Get("quantiles").size(), 1u);
  EXPECT_DOUBLE_EQ(result.Get("quantiles")[0].Get("q").AsNumber(), 0.9);
  EXPECT_DOUBLE_EQ(result.Get("quantiles")[0].Get("value").AsNumber(),
                   Quantile(table.cells[1].loss_ases, 0.9));

  // A scenario the campaign never ran, and the user-weighted column of a
  // store built without --users, both answer structured errors.
  Json missing = Json::Parse(d.HandleSync(StrFormat(
      R"({"op":"failure","origin":%u,"scenario":"link_set","id":4})", AsnAt(origin))));
  EXPECT_FALSE(missing.Get("ok").AsBool());
  EXPECT_EQ(missing.Get("error").Get("code").AsString(), "bad_request");
  Json no_users = Json::Parse(d.HandleSync(StrFormat(
      R"({"op":"failure","origin":%u,"column":"loss_users","id":5})", AsnAt(origin))));
  EXPECT_FALSE(no_users.Get("ok").AsBool());
  EXPECT_EQ(no_users.Get("error").Get("code").AsString(), "bad_request");

  // Status advertises the store, its origins, and its scenarios so
  // clients (the loadgen capability probe) can gate.
  Json status = Json::Parse(d.HandleSync(R"({"op":"status","id":"s"})"));
  const Json& fail_store = status.Get("result").Get("fail_store");
  EXPECT_TRUE(fail_store.Get("loaded").AsBool());
  EXPECT_EQ(fail_store.Get("cells").AsU64(), 2u);
  EXPECT_FALSE(fail_store.Get("has_users").AsBool());
  ASSERT_EQ(fail_store.Get("origins").size(), 1u);
  EXPECT_EQ(fail_store.Get("origins")[0].AsU64(), AsnAt(origin));
  ASSERT_EQ(fail_store.Get("scenarios").size(), 2u);
  EXPECT_EQ(fail_store.Get("scenarios")[0].AsString(), "single_as");
  EXPECT_EQ(fail_store.Get("scenarios")[1].AsString(), "tier1");
}

TEST_F(ServeDispatchTest, AttachRejectsMismatchedFailStore) {
  GeneratorParams params = GeneratorParams::Era2015(300);
  params.seed = 4321;
  World other = GenerateWorld(params);
  Internet other_net(other.full_graph, other.tiers, other.metadata);
  failsim::FailCellSpec spec;
  spec.origin = other.tiers.tier1[0];
  spec.seed = 2;
  spec.trials = 5;
  failsim::FailTable table = failsim::RunFailureCampaign(other_net, {spec});
  std::string path =
      (std::filesystem::temp_directory_path() / "flatnet_serve_fail_mismatch.fail").string();
  failsim::WriteFailStore(path, table);
  failsim::FailStore store = failsim::FailStore::Load(path);
  std::filesystem::remove(path);

  Dispatcher d(internet(), DispatcherOptions{.threads = 1});
  EXPECT_THROW(d.AttachFailStore(std::move(store), path), Error);
  EXPECT_FALSE(d.has_fail_store());
}

TEST_F(ServeDispatchTest, ErrorsCarryStructuredCodes) {
  Json unknown = Ask(R"({"op":"reach","origin":4199999999,"id":3})");
  EXPECT_FALSE(unknown.Get("ok").AsBool());
  EXPECT_EQ(unknown.Get("error").Get("code").AsString(), "unknown_asn");
  EXPECT_EQ(unknown.Get("id").AsU64(), 3u);

  Json malformed = Ask("}{");
  EXPECT_FALSE(malformed.Get("ok").AsBool());
  EXPECT_EQ(malformed.Get("error").Get("code").AsString(), "bad_request");
  EXPECT_TRUE(malformed.Get("id").is_null());

  Json excluded_origin = Ask(StrFormat(
      R"({"op":"reach","origin":%u,"excluded":[%u],"id":4})", AsnAt(5), AsnAt(5)));
  EXPECT_EQ(excluded_origin.Get("error").Get("code").AsString(), "bad_request");
}

TEST_F(ServeDispatchTest, AdmissionControlShedsLoadWhenSaturated) {
  // max_inflight = 0: every computed query is rejected as overloaded, but
  // status (answered inline) still works — the health check stays alive
  // under load shedding.
  Dispatcher throttled(internet(), DispatcherOptions{.threads = 2, .max_inflight = 0});
  Json rejected =
      Json::Parse(throttled.HandleSync(StrFormat(R"({"op":"reach","origin":%u})", AsnAt(1))));
  EXPECT_FALSE(rejected.Get("ok").AsBool());
  EXPECT_EQ(rejected.Get("error").Get("code").AsString(), "overloaded");
  Json status = Json::Parse(throttled.HandleSync(R"({"op":"status"})"));
  EXPECT_TRUE(status.Get("ok").AsBool());
}

TEST_F(ServeDispatchTest, DeadlineAlreadyExpiredIsRejected) {
  // A 1 ms default deadline with a long queue wait is racy; instead prove
  // the deadline path end-to-end with the smallest legal budget on a
  // dispatcher whose pool is blocked, so the token expires while queued.
  DispatcherOptions options{.threads = 2, .max_inflight = 8};
  Dispatcher slow(internet(), options);
  // Saturate the pool with a long-running query so the probe queues.
  std::atomic<int> done{0};
  for (int i = 0; i < 2; ++i) {
    slow.Handle(StrFormat(R"({"op":"reliance","origin":%u,"k":1000,"id":%d})",
                          AsnAt(100 + i), i),
                [&](std::string) { done.fetch_add(1); });
  }
  std::string response = slow.HandleSync(
      StrFormat(R"({"op":"reach","origin":%u,"deadline_ms":1,"id":"d"})", AsnAt(200)));
  slow.Drain();
  Json doc = Json::Parse(response);
  // Either the probe beat the deadline (fast machine) or it was abandoned;
  // both are legal, but an abandoned probe must carry the structured code.
  if (!doc.Get("ok").is_null() && !doc.Get("ok").AsBool()) {
    EXPECT_EQ(doc.Get("error").Get("code").AsString(), "deadline_exceeded");
  }
}

TEST(ServeServer, SocketRoundTripAndGracefulShutdown) {
  GeneratorParams params = GeneratorParams::Era2015(400);
  params.seed = 77;
  World w = GenerateWorld(params);
  Internet internet(w.full_graph, w.tiers, w.metadata);
  Dispatcher dispatcher(internet, DispatcherOptions{.threads = 2});
  serve::ServerOptions options;
  serve::Server server(dispatcher, options);
  ASSERT_GT(server.port(), 0u);
  std::thread serving([&] { server.Run(); });

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);

  std::string request = StrFormat("{\"op\":\"reach\",\"origin\":%u,\"id\":1}\n",
                                  internet.graph().AsnOf(3));
  ASSERT_EQ(::send(fd, request.data(), request.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char chunk[4096];
  while (response.find('\n') == std::string::npos) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    ASSERT_GT(n, 0);
    response.append(chunk, static_cast<std::size_t>(n));
  }
  Json doc = Json::Parse(response.substr(0, response.find('\n')));
  EXPECT_TRUE(doc.Get("ok").AsBool()) << response;
  EXPECT_EQ(doc.Get("id").AsU64(), 1u);

  server.RequestShutdown();
  serving.join();  // graceful drain completes
  ::close(fd);
}

}  // namespace
}  // namespace flatnet
