// Regression and property tests for the hot propagation kernels: the
// epoch-stamped BFS in ReachabilityEngine and the SoA route state in
// RouteComputation. These pin the behaviours the speed pass is allowed to
// change only bit-identically.
#include <gtest/gtest.h>

#include <vector>

#include "bgp/propagation.h"
#include "bgp/reachability.h"
#include "topogen/generate.h"
#include "util/bitset.h"
#include "util/rng.h"

namespace flatnet {
namespace {

World MakeWorld(std::uint32_t ases, std::uint64_t seed) {
  GeneratorParams params = GeneratorParams::Era2020(ases);
  params.seed = seed;
  return GenerateWorld(params);
}

// The visited stamps are 32-bit epochs. After 2^32 RunBfs calls the counter
// wraps to 0 — exactly the value every stamp starts at (and the value any
// node untouched since the last wrap still holds), so without the wrap
// reset the whole graph looks already-visited and the BFS silently
// truncates to the origin alone. The test forces the counter to the wrap
// boundary on an engine whose stamps still hold stale values and checks
// every post-wrap sweep against a fresh engine bit for bit (reverting the
// `++epoch_ == 0` reset in RunBfs fails this immediately).
TEST(ReachabilityEpochWrap, SweepAfterWrapMatchesFreshEngine) {
  World world = MakeWorld(600, 7);
  const AsGraph& graph = world.full_graph;
  ReachabilityEngine fresh(graph);
  ReachabilityEngine wrapped(graph);
  wrapped.SetEpochForTesting(0xffffffffu);
  for (AsId origin = 0; origin < 64; ++origin) {
    SCOPED_TRACE(origin);
    EXPECT_EQ(wrapped.Compute(origin), fresh.Compute(origin));
    EXPECT_EQ(wrapped.Count(origin), fresh.Count(origin));
  }
}

// Recompute() promises results identical to fresh construction while
// reusing allocations; after the SoA refactor the reset runs through one
// audited helper, and this test is the guard a forgotten new field fails.
TEST(RouteComputationReset, RecomputeEqualsFreshConstruction) {
  World world = MakeWorld(800, 11);
  const AsGraph& graph = world.full_graph;
  Rng rng(13);
  AnnouncementSource first{.node = static_cast<AsId>(rng.UniformU64(graph.num_ases()))};
  RouteComputation reused(graph, {first});
  for (int trial = 0; trial < 8; ++trial) {
    AnnouncementSource victim{.node = static_cast<AsId>(rng.UniformU64(graph.num_ases()))};
    AnnouncementSource leaker{.node = static_cast<AsId>(rng.UniformU64(graph.num_ases())),
                              .base_length = 3};
    std::vector<AnnouncementSource> sources = {victim};
    if (leaker.node != victim.node && trial % 2 == 0) sources.push_back(leaker);
    reused.Recompute(sources);
    RouteComputation scratch(graph, sources);
    ASSERT_EQ(reused.ReachedCount(), scratch.ReachedCount());
    ASSERT_EQ(reused.ReachedSet(), scratch.ReachedSet());
    for (std::size_t i = 0; i < sources.size(); ++i) {
      ASSERT_EQ(reused.CountFromSource(i), scratch.CountFromSource(i));
    }
    for (AsId node = 0; node < graph.num_ases(); ++node) {
      RouteEntry a = reused.Route(node);
      RouteEntry b = scratch.Route(node);
      ASSERT_EQ(a.cls, b.cls) << "node " << node;
      ASSERT_EQ(a.length, b.length) << "node " << node;
      ASSERT_EQ(a.source_mask, b.source_mask) << "node " << node;
      std::span<const AsId> ap = reused.Predecessors(node);
      std::span<const AsId> bp = scratch.Predecessors(node);
      ASSERT_TRUE(std::equal(ap.begin(), ap.end(), bp.begin(), bp.end())) << "node " << node;
    }
  }
}

// ComputeInto/Count reuse engine scratch (stamps, queue, bottom-up
// candidate lists) and pick different code paths by reach density; whatever
// path they take, the results must stay bit-identical to a fresh
// Compute(). Random origins and random exclusion masks of varying density
// exercise the dense word-pack, the sparse scatter, and both the top-down
// and bottom-up stage-3 strategies at several graph sizes.
TEST(ReachabilityProperty, ReusedEngineMatchesFreshAcrossRandomMasks) {
  for (std::uint32_t ases : {220u, 900u, 2500u}) {
    World world = MakeWorld(ases, 17 + ases);
    const AsGraph& graph = world.full_graph;
    std::size_t n = graph.num_ases();
    ReachabilityEngine reused(graph);
    Bitset into(n);
    Rng rng(23 + ases);
    for (int trial = 0; trial < 40; ++trial) {
      SCOPED_TRACE(trial);
      AsId origin = static_cast<AsId>(rng.UniformU64(n));
      const Bitset* excluded = nullptr;
      Bitset mask(n);
      if (trial % 3 != 0) {
        // Densities from a handful of nodes up to half the graph.
        std::size_t excluded_count = 1 + rng.UniformU64(trial % 2 ? n / 2 : 8);
        for (std::size_t i = 0; i < excluded_count; ++i) {
          mask.Set(rng.UniformU64(n));
        }
        excluded = &mask;
      }
      ReachabilityEngine fresh(graph);
      Bitset expected = fresh.Compute(origin, excluded);
      reused.ComputeInto(origin, excluded, into);
      ASSERT_EQ(into, expected);
      ASSERT_EQ(reused.Compute(origin, excluded), expected);
      std::size_t count = expected.Count();
      ASSERT_EQ(reused.Count(origin, excluded), count > 0 ? count - 1 : 0);
    }
  }
}

}  // namespace
}  // namespace flatnet
