// Binary topology store (`.graph`) and streaming-generator tests: the
// round-trip / corruption / determinism contract of ROADMAP item 1.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "core/fingerprint.h"
#include "core/graph_store.h"
#include "core/internet.h"
#include "core/serialize.h"
#include "topogen/edge_stream.h"
#include "topogen/generate.h"
#include "util/error.h"
#include "util/strings.h"

namespace flatnet {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

class GraphStoreTest : public ::testing::Test {
 protected:
  static const Internet& internet() {
    static const Internet world = [] {
      GeneratorParams params = GeneratorParams::Era2015(500);
      params.seed = 77;
      World w = GenerateWorld(params);
      return Internet(std::move(w.full_graph), std::move(w.tiers), std::move(w.metadata));
    }();
    return world;
  }
};

TEST_F(GraphStoreTest, RoundTripPreservesEverything) {
  std::string path = TempPath("flatnet_graph_roundtrip.graph");
  SaveInternetBinary(internet(), path);
  Internet loaded = LoadInternetBinary(path);

  ASSERT_EQ(loaded.num_ases(), internet().num_ases());
  EXPECT_EQ(loaded.graph().num_edges(), internet().graph().num_edges());
  EXPECT_EQ(TopologyFingerprint(loaded), TopologyFingerprint(internet()));
  EXPECT_EQ(loaded.tiers().tier1, internet().tiers().tier1);
  EXPECT_EQ(loaded.tiers().tier2, internet().tiers().tier2);
  for (AsId id = 0; id < loaded.num_ases(); ++id) {
    EXPECT_EQ(loaded.graph().AsnOf(id), internet().graph().AsnOf(id));
    EXPECT_EQ(loaded.metadata().Get(id).name, internet().metadata().Get(id).name);
    EXPECT_EQ(loaded.metadata().Get(id).type, internet().metadata().Get(id).type);
    EXPECT_EQ(loaded.metadata().Get(id).users, internet().metadata().Get(id).users);
  }
  // Adjacency must be served identically: spot-check every 37th AS.
  for (AsId id = 0; id < loaded.num_ases(); id += 37) {
    auto got = loaded.graph().NeighborsOf(id);
    auto want = internet().graph().NeighborsOf(id);
    ASSERT_EQ(got.size(), want.size()) << "AS " << id;
    for (std::size_t k = 0; k < got.size(); ++k) {
      EXPECT_EQ(got[k].id, want[k].id);
      EXPECT_EQ(got[k].rel, want[k].rel);
    }
  }
  std::filesystem::remove(path);
}

// save -> mmap load -> save must be byte-identical: nothing in the format
// depends on how the in-memory graph was produced.
TEST_F(GraphStoreTest, SaveLoadSaveIsByteIdentical) {
  std::string first = TempPath("flatnet_graph_gen1.graph");
  std::string second = TempPath("flatnet_graph_gen2.graph");
  SaveInternetBinary(internet(), first);
  Internet loaded = LoadInternetBinary(first);
  SaveInternetBinary(loaded, second);
  EXPECT_EQ(ReadFileBytes(first), ReadFileBytes(second));
  std::filesystem::remove(first);
  std::filesystem::remove(second);
}

// Both serializations of the same in-memory topology agree on its
// fingerprint. (The text loader assigns dense ids in edge-file encounter
// order, so a *text round trip* renumbers the id space and legitimately
// changes the id-sensitive fingerprint; the binary store preserves ids
// exactly. Agreement therefore means: whatever topology is in memory,
// text-sidecar metadata and binary header describe that same topology.)
TEST_F(GraphStoreTest, TextAndBinaryFormatsAgreeOnFingerprint) {
  std::string stem = TempPath("flatnet_graph_text");
  std::string binary = TempPath("flatnet_graph_text.graph");
  SaveInternet(internet(), stem);
  Internet from_text = LoadInternet(stem);
  std::uint64_t text_fp = TopologyFingerprint(from_text);

  // Serialize the text-loaded topology to binary: the stored header
  // fingerprint and the mmap-loaded fingerprint must both equal it.
  SaveInternetBinary(from_text, binary);
  EXPECT_EQ(ReadGraphStoreFingerprint(binary), text_fp);
  EXPECT_EQ(TopologyFingerprint(LoadInternetBinary(binary)), text_fp);

  // The binary round trip of the original graph preserves its id space —
  // and with it the original fingerprint.
  std::string direct = TempPath("flatnet_graph_direct.graph");
  SaveInternetBinary(internet(), direct);
  EXPECT_EQ(ReadGraphStoreFingerprint(direct), TopologyFingerprint(internet()));

  // LoadInternetAuto dispatches on the extension.
  EXPECT_EQ(LoadInternetAuto(binary).num_ases(), internet().num_ases());
  EXPECT_EQ(LoadInternetAuto(stem).num_ases(), internet().num_ases());

  std::filesystem::remove(stem + ".as-rel.txt");
  std::filesystem::remove(stem + ".meta.tsv");
  std::filesystem::remove(binary);
  std::filesystem::remove(direct);
}

// Every mmap-loaded CSR column must equal the builder-produced one — the
// in-process version of `flatnet_diffcheck --graph-identity`.
TEST_F(GraphStoreTest, MappedColumnsMatchBuilderColumns) {
  std::string path = TempPath("flatnet_graph_columns.graph");
  SaveInternetBinary(internet(), path);
  Internet loaded = LoadInternetBinary(path);
  const AsGraph& a = internet().graph();
  const AsGraph& b = loaded.graph();
  auto equal = [](auto x, auto y) {
    return x.size() == y.size() && std::equal(x.begin(), x.end(), y.begin());
  };
  EXPECT_TRUE(equal(a.AsnColumn(), b.AsnColumn()));
  EXPECT_TRUE(equal(a.ByAsnColumn(), b.ByAsnColumn()));
  EXPECT_TRUE(equal(a.SliceColumn(), b.SliceColumn()));
  EXPECT_TRUE(equal(a.EntryIdsColumn(), b.EntryIdsColumn()));
  std::filesystem::remove(path);
}

// ---- corruption modes --------------------------------------------------
//
// Four distinct failure surfaces, each named with file and byte offset:
// header magic, descriptor table, a typed column (pre-CRC check), and the
// CRC footer.

class GraphStoreCorruptionTest : public GraphStoreTest {
 protected:
  void SetUp() override {
    path_ = TempPath("flatnet_graph_corrupt.graph");
    SaveInternetBinary(internet(), path_);
    pristine_ = ReadFileBytes(path_);
  }
  void TearDown() override { std::filesystem::remove(path_); }

  // Expects LoadInternetBinary to throw an Error naming the file and the
  // given needle (an offset marker or field name).
  void ExpectLoadError(const std::string& needle, const char* what) {
    try {
      LoadInternetBinary(path_);
      ADD_FAILURE() << "expected load to throw for " << what;
    } catch (const Error& e) {
      std::string message = e.what();
      EXPECT_NE(message.find(path_), std::string::npos)
          << what << ": error must name the file: " << message;
      EXPECT_NE(message.find(needle), std::string::npos)
          << what << ": error must contain \"" << needle << "\": " << message;
    }
  }

  std::string path_;
  std::string pristine_;
};

TEST_F(GraphStoreCorruptionTest, HeaderMagicFlip) {
  std::string bytes = pristine_;
  bytes[0] ^= 0x5a;
  WriteFileBytes(path_, bytes);
  ExpectLoadError(":0:", "flipped magic byte");
}

TEST_F(GraphStoreCorruptionTest, DescriptorEscapesBody) {
  std::string bytes = pristine_;
  // First descriptor (asn_of) lives at offset 48; point it past the file.
  std::uint64_t bogus = bytes.size() * 2;
  std::memcpy(bytes.data() + 48, &bogus, sizeof(bogus));
  WriteFileBytes(path_, bytes);
  ExpectLoadError("asn_of", "descriptor offset out of range");
  ExpectLoadError(":48:", "descriptor error must carry the descriptor offset");
}

TEST_F(GraphStoreCorruptionTest, ColumnValueOutOfRange) {
  std::string bytes = pristine_;
  // The types column holds one byte per AS in [0, kCloud]. Find its offset
  // from descriptor 6 and poison the third entry; the pre-CRC range check
  // must name the exact byte.
  std::uint64_t types_offset = 0;
  std::memcpy(&types_offset, bytes.data() + 48 + 6 * 16, sizeof(types_offset));
  bytes[types_offset + 2] = static_cast<char>(0xee);
  WriteFileBytes(path_, bytes);
  ExpectLoadError("invalid type byte", "poisoned types column");
  ExpectLoadError(StrFormat(":%llu:", static_cast<unsigned long long>(types_offset + 2)),
                  "types error must carry the poisoned byte offset");
}

TEST_F(GraphStoreCorruptionTest, CrcFooterCatchesBitrot) {
  std::string bytes = pristine_;
  // Flip one bit inside entry_ids: structurally plausible, caught only by
  // the checksum.
  std::uint64_t entries_offset = 0;
  std::memcpy(&entries_offset, bytes.data() + 48 + 3 * 16, sizeof(entries_offset));
  bytes[entries_offset + 5] ^= 0x01;
  WriteFileBytes(path_, bytes);
  ExpectLoadError("CRC mismatch", "flipped bit in entry_ids");
}

TEST_F(GraphStoreCorruptionTest, TruncationIsLoud) {
  WriteFileBytes(path_, pristine_.substr(0, pristine_.size() / 2));
  ExpectLoadError(path_, "truncated store");
}

// ---- streaming generator ------------------------------------------------

TEST(EdgeRunSorter, MergedOrderIsIdenticalAcrossBudgets) {
  // Unique keys in scrambled order; any budget must replay them sorted.
  std::vector<HalfEdge> records;
  for (std::uint32_t i = 0; i < 4000; ++i) {
    records.push_back({(i * 2654435761u) % 977, i % 3, i});
  }
  auto drain_with_budget = [&](std::uint64_t budget) {
    EdgeRunSorter sorter(TempPath("flatnet_edge_runs"), budget);
    for (const HalfEdge& record : records) sorter.Add(record);
    std::vector<HalfEdge> out;
    sorter.Drain([&](const HalfEdge& record) { out.push_back(record); });
    return out;
  };
  std::vector<HalfEdge> in_memory = drain_with_budget(0);
  ASSERT_EQ(in_memory.size(), records.size());
  EXPECT_TRUE(std::is_sorted(in_memory.begin(), in_memory.end()));
  for (std::uint64_t budget : {sizeof(HalfEdge) * 100, sizeof(HalfEdge) * 4096 + 1}) {
    std::vector<HalfEdge> spilled = drain_with_budget(budget);
    ASSERT_EQ(spilled.size(), in_memory.size());
    for (std::size_t k = 0; k < spilled.size(); ++k) {
      EXPECT_EQ(spilled[k].node, in_memory[k].node);
      EXPECT_EQ(spilled[k].bucket, in_memory[k].bucket);
      EXPECT_EQ(spilled[k].neighbor, in_memory[k].neighbor);
    }
  }
}

TEST(PairKeySet, InsertContainsAndGrowth) {
  PairKeySet set;
  for (std::uint64_t k = 1; k <= 100000; ++k) {
    EXPECT_TRUE(set.Insert(k * 0x9e3779b97f4a7c15ull | 1));
  }
  EXPECT_EQ(set.size(), 100000u);
  for (std::uint64_t k = 1; k <= 100000; ++k) {
    EXPECT_FALSE(set.Insert(k * 0x9e3779b97f4a7c15ull | 1));
    EXPECT_TRUE(set.Contains(k * 0x9e3779b97f4a7c15ull | 1));
  }
  EXPECT_FALSE(set.Contains(2));
}

// The tentpole determinism claim: a generation that spills sorted runs to
// disk produces bit-for-bit the same topology as the all-in-memory path.
TEST(StreamingGenerate, SpillingMatchesInMemoryBitForBit) {
  GeneratorParams in_memory_params = GeneratorParams::Era2015(600);
  in_memory_params.seed = 909;
  World baseline = GenerateWorld(in_memory_params);

  GeneratorParams spilling_params = in_memory_params;
  spilling_params.stream_budget_bytes = 16 * 1024;  // forces many spill runs
  spilling_params.stream_dir = std::filesystem::temp_directory_path().string();
  World streamed = GenerateWorld(spilling_params);

  auto equal = [](auto x, auto y) {
    return x.size() == y.size() && std::equal(x.begin(), x.end(), y.begin());
  };
  EXPECT_TRUE(equal(baseline.full_graph.AsnColumn(), streamed.full_graph.AsnColumn()));
  EXPECT_TRUE(equal(baseline.full_graph.SliceColumn(), streamed.full_graph.SliceColumn()));
  EXPECT_TRUE(
      equal(baseline.full_graph.EntryIdsColumn(), streamed.full_graph.EntryIdsColumn()));
  EXPECT_TRUE(equal(baseline.bgp_graph.SliceColumn(), streamed.bgp_graph.SliceColumn()));
  EXPECT_TRUE(equal(baseline.bgp_graph.EntryIdsColumn(), streamed.bgp_graph.EntryIdsColumn()));
}

// assign_prefixes draws no randomness, so turning it off (the million-AS
// graph-only mode) must leave the topology untouched.
TEST(StreamingGenerate, PrefixAssignmentDoesNotPerturbTopology) {
  GeneratorParams with_prefixes = GeneratorParams::Era2015(600);
  with_prefixes.seed = 909;
  World baseline = GenerateWorld(with_prefixes);

  GeneratorParams without_prefixes = with_prefixes;
  without_prefixes.assign_prefixes = false;
  World bare = GenerateWorld(without_prefixes);

  EXPECT_EQ(baseline.full_graph.num_edges(), bare.full_graph.num_edges());
  auto slice_a = baseline.full_graph.SliceColumn();
  auto slice_b = bare.full_graph.SliceColumn();
  EXPECT_TRUE(slice_a.size() == slice_b.size() &&
              std::equal(slice_a.begin(), slice_a.end(), slice_b.begin()));
  for (const auto& per_as : bare.prefixes) EXPECT_TRUE(per_as.empty());
  EXPECT_FALSE(baseline.prefixes[0].empty());
}

}  // namespace
}  // namespace flatnet
