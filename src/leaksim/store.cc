#include "leaksim/store.h"

#include <cstring>

#include "sweep/fingerprint.h"
#include "util/colstore.h"
#include "util/error.h"
#include "util/strings.h"

namespace flatnet::leaksim {
namespace {

using colstore::Append;
using colstore::AppendScalar;
using colstore::ReadScalar;

constexpr colstore::Format kFormat = {"FNLEAK01", "FNLEAKE1", 1, "leak"};
constexpr std::uint32_t kFlagHasUsers = 1u << 0;
constexpr std::size_t kHeaderBytes = 8 + 4 + 4 + 4 + 4 + 8;
constexpr std::size_t kCellDescBytes = 4 + 4 + 4 + 4 + 8 + 4 + 4 + 8;
constexpr std::size_t kFooterBytes = colstore::kFooterBytes;

std::string Serialize(const LeakTable& table) {
  std::size_t total_trials = 0;
  for (const LeakCellResult& cell : table.cells) {
    std::size_t users_expected = table.has_users ? cell.collected() : 0;
    if (cell.fraction_users.size() != users_expected) {
      throw InvalidArgument(StrFormat(
          "WriteLeakStore: cell for victim %u has %zu user fractions, expected %zu",
          cell.spec.victim, cell.fraction_users.size(), users_expected));
    }
    total_trials += cell.collected();
  }
  std::size_t columns = table.has_users ? 2 : 1;
  std::string out;
  out.reserve(kHeaderBytes + table.cells.size() * kCellDescBytes +
              columns * total_trials * sizeof(double) + kFooterBytes);
  colstore::AppendMagicAndVersion(out, kFormat);
  AppendScalar(out, table.has_users ? kFlagHasUsers : std::uint32_t{0});
  AppendScalar(out, static_cast<std::uint32_t>(table.cells.size()));
  AppendScalar(out, std::uint32_t{0});  // reserved
  AppendScalar(out, table.fingerprint);
  for (const LeakCellResult& cell : table.cells) {
    AppendScalar(out, static_cast<std::uint32_t>(cell.spec.victim));
    AppendScalar(out, static_cast<std::uint32_t>(cell.spec.scenario));
    AppendScalar(out, static_cast<std::uint32_t>(cell.spec.lock_mode));
    AppendScalar(out, static_cast<std::uint32_t>(cell.spec.model));
    AppendScalar(out, cell.spec.seed);
    AppendScalar(out, cell.spec.trials);
    AppendScalar(out, static_cast<std::uint32_t>(cell.collected()));
    AppendScalar(out, cell.attempts);
  }
  for (const LeakCellResult& cell : table.cells) {
    Append(out, cell.fraction_ases.data(), cell.fraction_ases.size() * sizeof(double));
    if (table.has_users) {
      Append(out, cell.fraction_users.data(), cell.fraction_users.size() * sizeof(double));
    }
  }
  colstore::AppendFooter(out, kFormat);
  return out;
}

}  // namespace

void WriteLeakStore(const std::string& path, const LeakTable& table) {
  colstore::AtomicWriteFile(path, Serialize(table), "WriteLeakStore");
}

LeakStore LeakStore::Load(const std::string& path) {
  std::string bytes = colstore::ReadFileBytes(path, "LeakStore");
  colstore::CheckHeader(path, bytes, kFormat, kHeaderBytes + kFooterBytes);
  std::uint32_t flags = ReadScalar<std::uint32_t>(bytes, 12);
  if ((flags & ~kFlagHasUsers) != 0) {
    throw Error(StrFormat("%s:12: unknown flags 0x%x", path.c_str(), flags));
  }
  std::uint32_t num_cells = ReadScalar<std::uint32_t>(bytes, 16);
  LeakTable table;
  table.has_users = (flags & kFlagHasUsers) != 0;
  table.fingerprint = ReadScalar<std::uint64_t>(bytes, 24);

  std::size_t descs_end = kHeaderBytes + static_cast<std::size_t>(num_cells) * kCellDescBytes;
  if (bytes.size() < descs_end + kFooterBytes) {
    throw Error(StrFormat("%s:%zu: truncated leak store (%zu bytes, %u cell descriptors "
                          "need %zu)",
                          path.c_str(), kHeaderBytes, bytes.size(), num_cells,
                          descs_end + kFooterBytes));
  }

  std::size_t columns = table.has_users ? 2 : 1;
  std::size_t total_trials = 0;
  table.cells.resize(num_cells);
  for (std::uint32_t i = 0; i < num_cells; ++i) {
    std::size_t off = kHeaderBytes + static_cast<std::size_t>(i) * kCellDescBytes;
    LeakCellResult& cell = table.cells[i];
    cell.spec.victim = ReadScalar<std::uint32_t>(bytes, off);
    std::uint32_t scenario = ReadScalar<std::uint32_t>(bytes, off + 4);
    if (scenario >= kNumLeakScenarios) {
      throw Error(StrFormat("%s:%zu: cell %u has invalid scenario %u", path.c_str(), off + 4,
                            i, scenario));
    }
    cell.spec.scenario = static_cast<LeakScenario>(scenario);
    std::uint32_t lock_mode = ReadScalar<std::uint32_t>(bytes, off + 8);
    if (lock_mode > static_cast<std::uint32_t>(PeerLockMode::kDirectOnly)) {
      throw Error(StrFormat("%s:%zu: cell %u has invalid lock mode %u", path.c_str(), off + 8,
                            i, lock_mode));
    }
    cell.spec.lock_mode = static_cast<PeerLockMode>(lock_mode);
    std::uint32_t model = ReadScalar<std::uint32_t>(bytes, off + 12);
    if (model > static_cast<std::uint32_t>(LeakModel::kOriginate)) {
      throw Error(StrFormat("%s:%zu: cell %u has invalid leak model %u", path.c_str(),
                            off + 12, i, model));
    }
    cell.spec.model = static_cast<LeakModel>(model);
    cell.spec.seed = ReadScalar<std::uint64_t>(bytes, off + 16);
    cell.spec.trials = ReadScalar<std::uint32_t>(bytes, off + 24);
    std::uint32_t collected = ReadScalar<std::uint32_t>(bytes, off + 28);
    cell.attempts = ReadScalar<std::uint64_t>(bytes, off + 32);
    cell.fraction_ases.resize(collected);
    if (table.has_users) cell.fraction_users.resize(collected);
    total_trials += collected;
  }

  std::size_t expected = descs_end + columns * total_trials * sizeof(double) + kFooterBytes;
  if (bytes.size() != expected) {
    throw Error(StrFormat("%s:%zu: truncated or oversized leak store (%zu bytes, descriptors "
                          "imply %zu)",
                          path.c_str(), descs_end, bytes.size(), expected));
  }
  colstore::CheckFooter(path, bytes, kFormat);

  std::size_t offset = descs_end;
  for (LeakCellResult& cell : table.cells) {
    std::memcpy(cell.fraction_ases.data(), bytes.data() + offset,
                cell.fraction_ases.size() * sizeof(double));
    offset += cell.fraction_ases.size() * sizeof(double);
    if (table.has_users) {
      std::memcpy(cell.fraction_users.data(), bytes.data() + offset,
                  cell.fraction_users.size() * sizeof(double));
      offset += cell.fraction_users.size() * sizeof(double);
    }
  }
  LeakStore store;
  store.table_ = std::move(table);
  return store;
}

void LeakStore::ValidateAgainst(const Internet& internet) const {
  std::uint64_t expected = sweep::TopologyFingerprint(internet);
  if (table_.fingerprint != expected) {
    throw Error(StrFormat("leak store fingerprint %016llx does not match topology %016llx "
                          "(results were computed on a different graph)",
                          static_cast<unsigned long long>(table_.fingerprint),
                          static_cast<unsigned long long>(expected)));
  }
}

std::size_t LeakStore::FindCell(AsId victim, LeakScenario scenario, PeerLockMode lock_mode,
                                LeakModel model) const {
  for (std::size_t i = 0; i < table_.cells.size(); ++i) {
    const LeakCellSpec& spec = table_.cells[i].spec;
    if (spec.victim == victim && spec.scenario == scenario && spec.lock_mode == lock_mode &&
        spec.model == model) {
      return i;
    }
  }
  return npos;
}

}  // namespace flatnet::leaksim
