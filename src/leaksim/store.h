// Persistent columnar result store for leak-resilience campaigns.
//
// A `.leak` file holds the per-trial detour fractions for every cell of a
// campaign — one cell per (victim, scenario, lock mode, model, seed,
// trials) tuple — bound to the topology by its fingerprint
// (sweep/fingerprint.h). Layout (native-endian):
//
//   header   magic "FNLEAK01" (8) | version u32 | flags u32 |
//            num_cells u32 | reserved u32 | fingerprint u64
//   cells    num_cells fixed-width descriptors:
//            victim u32 | scenario u32 | lock_mode u32 | model u32 |
//            seed u64 | trials_requested u32 | collected u32 | attempts u64
//   body     for each cell in descriptor order:
//            fraction_ases f64[collected],
//            then fraction_users f64[collected] when flags bit 0 is set
//   footer   crc32 u32 over all preceding bytes | end magic "FNLEAKE1" (8)
//
// Fixed-width descriptors plus per-cell prefix sums make cell lookup O(1)
// after load. Writes go to a pid-unique tmp sibling and rename into
// place; Load() verifies both magics, the version, enum ranges, the size
// implied by the descriptors, and the CRC, and every failure names the
// file and the byte offset of the problem.
#ifndef FLATNET_LEAKSIM_STORE_H_
#define FLATNET_LEAKSIM_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "bgp/leak.h"
#include "core/internet.h"
#include "core/leak_scenarios.h"

namespace flatnet::leaksim {

// One campaign cell: everything that determines its trial series. The
// engine replays RunLeakScenario's draw loop from `seed`, so a cell's
// results are identical to the serial path for the same tuple.
struct LeakCellSpec {
  AsId victim = 0;
  LeakScenario scenario = LeakScenario::kAnnounceAll;
  PeerLockMode lock_mode = PeerLockMode::kFull;
  LeakModel model = LeakModel::kReannounce;
  std::uint64_t seed = 0;
  std::uint32_t trials = 0;  // requested per cell

  bool operator==(const LeakCellSpec& other) const = default;
};

struct LeakCellResult {
  LeakCellSpec spec;
  std::uint64_t attempts = 0;           // leaker draws consumed
  std::vector<double> fraction_ases;    // collected trials, draw order
  std::vector<double> fraction_users;   // present when the table has_users

  std::size_t collected() const { return fraction_ases.size(); }
  bool UnderCollected() const { return collected() < spec.trials; }
};

// In-memory campaign result, serializable to a `.leak` store.
struct LeakTable {
  std::uint64_t fingerprint = 0;
  bool has_users = false;  // user-weighted fractions present in every cell
  std::vector<LeakCellResult> cells;
};

// Writes `table` to `path` via pid-unique tmp + rename. Throws Error on
// I/O failure (the tmp file is cleaned up) and InvalidArgument on an
// inconsistent table (user column length mismatch).
void WriteLeakStore(const std::string& path, const LeakTable& table);

// A loaded, validated store. Copyable; lookups are plain array reads.
class LeakStore {
 public:
  LeakStore() = default;

  // Throws Error naming `path` and the byte offset on any structural
  // problem: short file, bad magic, unknown version, out-of-range enum,
  // size mismatch against the descriptors, CRC mismatch, bad end magic.
  static LeakStore Load(const std::string& path);

  // Throws Error when the store's fingerprint does not match `internet`
  // (results from another topology must never be served).
  void ValidateAgainst(const Internet& internet) const;

  const LeakTable& table() const { return table_; }
  std::uint64_t fingerprint() const { return table_.fingerprint; }
  bool has_users() const { return table_.has_users; }
  std::size_t num_cells() const { return table_.cells.size(); }
  const LeakCellResult& cell(std::size_t i) const { return table_.cells[i]; }

  // Index of the first cell matching (victim, scenario, lock_mode, model),
  // or npos when absent. Linear scan — campaigns hold tens of cells.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t FindCell(AsId victim, LeakScenario scenario, PeerLockMode lock_mode,
                       LeakModel model) const;

 private:
  LeakTable table_;
};

}  // namespace flatnet::leaksim

#endif  // FLATNET_LEAKSIM_STORE_H_
