#include "leaksim/engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <memory>
#include <mutex>
#include <thread>

#include "core/leak_scenarios.h"
#include "obs/campaign.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sweep/fingerprint.h"
#include "sweep/journal.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace flatnet::leaksim {
namespace {

struct LeaksimCounters {
  obs::Counter& chunks_completed = obs::GetCounter("leaksim.chunks_completed");
  obs::Counter& chunks_resumed = obs::GetCounter("leaksim.chunks_resumed");
  obs::Counter& checkpoint_writes = obs::GetCounter("leaksim.checkpoint_writes");
  obs::Counter& trials_evaluated = obs::GetCounter("leaksim.trials_evaluated");
  obs::Gauge& trials_per_sec = obs::GetGauge("leaksim.trials_per_sec");
};

LeaksimCounters& Counters() {
  static LeaksimCounters counters;
  return counters;
}

std::uint64_t Fnv1aMix(std::uint64_t hash, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xff;
    hash *= 1099511628211ull;
  }
  return hash;
}

// Journal payload encoding: each double rides as two u32 words (low word
// first). Per trial the payload holds the AS fraction, then — when users
// are weighted — the user fraction.
void EncodeDouble(double value, std::uint32_t* out) {
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  out[0] = static_cast<std::uint32_t>(bits);
  out[1] = static_cast<std::uint32_t>(bits >> 32);
}

double DecodeDouble(const std::uint32_t* in) {
  std::uint64_t bits = (static_cast<std::uint64_t>(in[1]) << 32) | in[0];
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

// The serial prep product: one experiment + pre-drawn leakers per cell,
// and the prefix sums mapping global trial indices back to (cell, local).
struct PreparedCampaign {
  std::vector<std::unique_ptr<LeakExperiment>> experiments;
  std::vector<std::vector<AsId>> leakers;
  std::vector<std::size_t> offsets;  // cells.size() + 1 entries
  std::size_t total_trials = 0;
  std::size_t draw_attempts = 0;
};

PreparedCampaign Prepare(const Internet& internet, const std::vector<LeakCellSpec>& cells,
                         const std::vector<double>* users, LeakTable& table) {
  obs::TraceSpan prep_span("leaksim.prepare");
  PreparedCampaign prep;
  std::size_t n = internet.num_ases();
  prep.experiments.reserve(cells.size());
  prep.leakers.reserve(cells.size());
  prep.offsets.reserve(cells.size() + 1);
  prep.offsets.push_back(0);
  table.cells.reserve(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const LeakCellSpec& spec = cells[i];
    if (spec.victim >= n) {
      throw InvalidArgument(StrFormat("RunLeakCampaign: cell %zu victim %u out of range "
                                      "(%zu ASes)",
                                      i, spec.victim, n));
    }
    LeakConfig config =
        LeakConfigForScenario(internet, spec.victim, spec.scenario, spec.lock_mode);
    config.model = spec.model;
    prep.experiments.push_back(
        std::make_unique<LeakExperiment>(internet.graph(), spec.victim, config, users));
    Rng rng(spec.seed);
    LeakDraw draw = DrawLeakers(*prep.experiments.back(), n, spec.trials, rng);
    prep.draw_attempts += draw.attempts;

    LeakCellResult cell;
    cell.spec = spec;
    cell.attempts = draw.attempts;
    cell.fraction_ases.resize(draw.leakers.size(), 0.0);
    if (users != nullptr) cell.fraction_users.resize(draw.leakers.size(), 0.0);
    table.cells.push_back(std::move(cell));

    prep.total_trials += draw.leakers.size();
    prep.offsets.push_back(prep.total_trials);
    prep.leakers.push_back(std::move(draw.leakers));
  }
  return prep;
}

}  // namespace

std::uint64_t CampaignFingerprint(const Internet& internet,
                                  const std::vector<LeakCellSpec>& cells, bool has_users) {
  std::uint64_t hash = 14695981039346656037ull;
  hash = Fnv1aMix(hash, sweep::TopologyFingerprint(internet));
  hash = Fnv1aMix(hash, has_users ? 1 : 0);
  hash = Fnv1aMix(hash, cells.size());
  for (const LeakCellSpec& spec : cells) {
    hash = Fnv1aMix(hash, spec.victim);
    hash = Fnv1aMix(hash, static_cast<std::uint64_t>(spec.scenario));
    hash = Fnv1aMix(hash, static_cast<std::uint64_t>(spec.lock_mode));
    hash = Fnv1aMix(hash, static_cast<std::uint64_t>(spec.model));
    hash = Fnv1aMix(hash, spec.seed);
    hash = Fnv1aMix(hash, spec.trials);
  }
  return hash;
}

LeakTable RunLeakCampaign(const Internet& internet, const std::vector<LeakCellSpec>& cells,
                          const LeakCampaignOptions& options, LeakCampaignStats* stats) {
  if (options.chunk_trials == 0) {
    throw InvalidArgument("RunLeakCampaign: chunk_trials must be > 0");
  }
  if (options.users != nullptr && options.users->size() != internet.num_ases()) {
    throw InvalidArgument(StrFormat("RunLeakCampaign: %zu user weights for %zu ASes",
                                    options.users->size(), internet.num_ases()));
  }

  obs::TraceSpan run_span("leaksim.run");
  Stopwatch stopwatch;

  LeakTable table;
  table.fingerprint = sweep::TopologyFingerprint(internet);
  table.has_users = options.users != nullptr;
  PreparedCampaign prep = Prepare(internet, cells, options.users, table);

  std::size_t words_per_trial = table.has_users ? 4 : 2;
  std::size_t num_chunks =
      prep.total_trials == 0
          ? 0
          : (prep.total_trials + options.chunk_trials - 1) / options.chunk_trials;
  std::vector<char> done(num_chunks, 0);
  std::size_t chunks_resumed = 0;

  // Reuse the sweep journal: "origins" are global trial indices and each
  // trial's values are its fractions as u32 word pairs. The fingerprint
  // slot carries the campaign fingerprint so a resume against a different
  // topology, cell list, or user-weight flag fails loudly.
  sweep::SweepMeta meta;
  meta.fingerprint = CampaignFingerprint(internet, cells, table.has_users);
  meta.num_origins = prep.total_trials;
  meta.columns = table.has_users ? 0x3 : 0x1;
  meta.chunk_size = options.chunk_trials;

  // Writes a trial's fractions into its pre-assigned slot; `cell` is the
  // index of the cell containing global trial `g`.
  auto slot_write = [&](std::size_t cell, std::size_t g, double ases, double users_frac) {
    std::size_t local = g - prep.offsets[cell];
    table.cells[cell].fraction_ases[local] = ases;
    if (table.has_users) table.cells[cell].fraction_users[local] = users_frac;
  };
  auto cell_of = [&](std::size_t g) {
    return static_cast<std::size_t>(
        std::upper_bound(prep.offsets.begin(), prep.offsets.end(), g) -
        prep.offsets.begin() - 1);
  };

  sweep::SweepJournal journal;
  if (!options.journal_path.empty()) {
    bool exists = std::filesystem::exists(options.journal_path);
    if (options.resume && exists) {
      std::vector<std::pair<std::uint32_t, std::vector<std::uint32_t>>> recovered;
      journal = sweep::SweepJournal::Recover(options.journal_path, meta, &recovered);
      for (auto& [chunk_index, values] : recovered) {
        if (chunk_index >= num_chunks) {
          throw Error(StrFormat("%s: journal record for chunk %u is out of range (%zu chunks)",
                                options.journal_path.c_str(), chunk_index, num_chunks));
        }
        std::size_t begin = std::size_t{chunk_index} * options.chunk_trials;
        std::size_t chunk_len =
            std::min<std::size_t>(options.chunk_trials, prep.total_trials - begin);
        if (values.size() != chunk_len * words_per_trial) {
          throw Error(StrFormat("%s: journal record for chunk %u holds %zu values, "
                                "expected %zu",
                                options.journal_path.c_str(), chunk_index, values.size(),
                                chunk_len * words_per_trial));
        }
        std::size_t cell = cell_of(begin);
        for (std::size_t i = 0; i < chunk_len; ++i) {
          std::size_t g = begin + i;
          while (g >= prep.offsets[cell + 1]) ++cell;
          const std::uint32_t* at = values.data() + i * words_per_trial;
          slot_write(cell, g, DecodeDouble(at),
                     table.has_users ? DecodeDouble(at + 2) : 0.0);
        }
        if (!done[chunk_index]) {
          done[chunk_index] = 1;
          ++chunks_resumed;
        }
      }
      Counters().chunks_resumed.Increment(chunks_resumed);
      obs::Log(obs::LogLevel::kInfo, "leaksim", "resume")
          .Kv("journal", options.journal_path)
          .Kv("chunks_resumed", static_cast<std::uint64_t>(chunks_resumed))
          .Kv("chunks_total", static_cast<std::uint64_t>(num_chunks));
    } else {
      journal = sweep::SweepJournal::Create(options.journal_path, meta);
    }
  }

  std::atomic<std::size_t> next_chunk{0};
  std::atomic<std::size_t> chunks_computed{0};
  std::atomic<std::size_t> trials_evaluated{0};
  std::atomic<bool> failed{false};
  std::mutex journal_mu;
  std::string failure;  // first worker error, guarded by journal_mu

  obs::CampaignMonitor::Options monitor_options;
  monitor_options.component = "leaksim";
  monitor_options.unit = "trials";
  monitor_options.total_chunks = num_chunks;
  monitor_options.resumed_chunks = chunks_resumed;
  monitor_options.workers = options.threads > 0
                                ? options.threads
                                : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  obs::CampaignMonitor monitor(monitor_options);

  auto worker_loop = [&] {
    LeakWorkspace workspace;
    std::vector<std::uint32_t> payload;
    for (;;) {
      if (failed.load(std::memory_order_relaxed)) break;
      if (options.max_chunks != 0 &&
          chunks_computed.load(std::memory_order_relaxed) >= options.max_chunks) {
        break;
      }
      std::size_t chunk = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= num_chunks) break;
      if (done[chunk]) continue;

      obs::TraceSpan chunk_span("leaksim.chunk");
      Stopwatch chunk_watch;
      std::size_t begin = chunk * options.chunk_trials;
      std::size_t chunk_len =
          std::min<std::size_t>(options.chunk_trials, prep.total_trials - begin);
      payload.assign(chunk_len * words_per_trial, 0);
      std::size_t cell = cell_of(begin);
      for (std::size_t i = 0; i < chunk_len; ++i) {
        std::size_t g = begin + i;
        while (g >= prep.offsets[cell + 1]) ++cell;
        AsId leaker = prep.leakers[cell][g - prep.offsets[cell]];
        // Engaged by construction: the draw only kept CanLeak leakers.
        LeakOutcome outcome = *prep.experiments[cell]->Run(leaker, workspace);
        slot_write(cell, g, outcome.fraction_ases_detoured,
                   outcome.fraction_users_detoured);
        std::uint32_t* at = payload.data() + i * words_per_trial;
        EncodeDouble(outcome.fraction_ases_detoured, at);
        if (table.has_users) EncodeDouble(outcome.fraction_users_detoured, at + 2);
      }

      if (journal.is_open()) {
        // Pool tasks must not throw; a journal I/O failure aborts the
        // campaign cooperatively and rethrows after the pool drains.
        {
          std::lock_guard<std::mutex> lock(journal_mu);
          try {
            journal.AppendChunk(static_cast<std::uint32_t>(chunk), payload.data(),
                                payload.size());
          } catch (const Error& e) {
            if (failure.empty()) failure = e.what();
            failed.store(true, std::memory_order_relaxed);
            break;
          }
        }
        Counters().checkpoint_writes.Increment();
      }

      chunks_computed.fetch_add(1, std::memory_order_relaxed);
      trials_evaluated.fetch_add(chunk_len, std::memory_order_relaxed);
      Counters().chunks_completed.Increment();
      Counters().trials_evaluated.Increment(chunk_len);
      monitor.ChunkDone(chunk, chunk_watch.ElapsedSeconds() * 1000.0, chunk_len);
      if (options.throttle_chunk_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(options.throttle_chunk_ms));
      }
    }
  };

  {
    ThreadPool pool(options.threads);
    std::size_t workers = pool.thread_count() > 0 ? pool.thread_count() : 1;
    for (std::size_t w = 0; w < workers; ++w) pool.Submit(worker_loop);
    pool.Wait();
  }
  journal.Close();
  if (failed.load()) throw Error("RunLeakCampaign: " + failure);

  double seconds = stopwatch.ElapsedSeconds();
  std::size_t computed = chunks_computed.load();
  if (seconds > 0.0) {
    Counters().trials_per_sec.Set(
        static_cast<std::int64_t>(static_cast<double>(trials_evaluated.load()) / seconds));
  }
  if (stats != nullptr) {
    stats->chunks_total = num_chunks;
    stats->chunks_resumed = chunks_resumed;
    stats->chunks_computed = computed;
    stats->trials_evaluated = trials_evaluated.load();
    stats->draw_attempts = prep.draw_attempts;
    stats->complete = chunks_resumed + computed >= num_chunks;
    stats->seconds = seconds;
  }
  return table;
}

void FinalizeLeakStore(const std::string& path, const LeakTable& table,
                       const std::string& journal_path) {
  WriteLeakStore(path, table);
  if (!journal_path.empty()) {
    std::error_code ec;
    std::filesystem::remove(journal_path, ec);  // best-effort cleanup
  }
}

}  // namespace flatnet::leaksim
