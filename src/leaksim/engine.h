// Deterministic parallel leak-resilience campaign engine.
//
// A campaign is a list of cells (src/leaksim/store.h); each cell's trial
// assignments are pre-drawn SERIALLY from the cell's seed with
// DrawLeakers — the same rejection-sampling loop RunLeakScenario uses, so
// cell results are identical to the serial path for the same tuple. Only
// the evaluation of the drawn trials is parallel: the concatenated trial
// space is split into fixed-size chunks claimed off an atomic cursor by
// ThreadPool workers, each holding one reusable LeakWorkspace. Every
// trial writes into its pre-assigned slot, so the resulting table — and
// the store serialized from it — is byte-identical at any thread count.
//
// With a journal path set, completed chunks are checkpointed through
// sweep::SweepJournal (doubles ride as u32 word pairs); a killed run
// resumed with `resume = true` recomputes only the missing chunks and
// produces a byte-identical store to an uninterrupted run. The journal
// header is keyed on a campaign fingerprint mixing the topology hash with
// every cell spec, so resuming against different inputs is loud.
//
// Instrumented with src/obs/: leaksim.chunks_completed / chunks_resumed /
// checkpoint_writes / trials_evaluated counters, a leaksim.trials_per_sec
// gauge, and leaksim.run / leaksim.prepare / leaksim.chunk trace spans.
#ifndef FLATNET_LEAKSIM_ENGINE_H_
#define FLATNET_LEAKSIM_ENGINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/internet.h"
#include "leaksim/store.h"

namespace flatnet::leaksim {

struct LeakCampaignOptions {
  // Worker parallelism; 0 = hardware concurrency.
  std::size_t threads = 0;
  // Trials per chunk — the unit of claiming and of checkpointing.
  std::uint32_t chunk_trials = 64;
  // Per-AS user weights (one entry per AS); non-null enables the
  // user-weighted detour column in every cell. Must outlive the run.
  const std::vector<double>* users = nullptr;
  // When non-empty, completed chunks are journaled here.
  std::string journal_path;
  // Resume from an existing journal at journal_path (fresh start when the
  // file does not exist). The journal must match this topology and this
  // cell list; a mismatch throws rather than silently recomputing.
  bool resume = false;
  // Test/smoke hooks: stop after this many freshly computed chunks
  // (0 = run to completion), and sleep per completed chunk so an external
  // kill can land mid-run on small campaigns.
  std::uint32_t max_chunks = 0;
  std::uint32_t throttle_chunk_ms = 0;
};

struct LeakCampaignStats {
  std::size_t chunks_total = 0;
  std::size_t chunks_resumed = 0;   // restored from the journal
  std::size_t chunks_computed = 0;  // computed by this run
  std::size_t trials_evaluated = 0;
  std::size_t draw_attempts = 0;  // all cells' leaker draws (accepted + rejected)
  bool complete = false;  // false only when max_chunks stopped the run early
  double seconds = 0.0;
};

// Runs the campaign. The returned table covers every trial when
// stats->complete (untouched slots are zero on an early stop). Per-cell
// under-collection (attempt budget exhausted before `trials` valid
// leakers) is reported through each cell's collected()/UnderCollected(),
// never by silently shrinking someone else's slots. Throws
// InvalidArgument on a bad options/cell combination and Error on journal
// failures.
LeakTable RunLeakCampaign(const Internet& internet, const std::vector<LeakCellSpec>& cells,
                          const LeakCampaignOptions& options = {},
                          LeakCampaignStats* stats = nullptr);

// The campaign fingerprint the journal is keyed on: FNV-1a over the
// topology fingerprint, the user-weight flag, and every cell spec.
std::uint64_t CampaignFingerprint(const Internet& internet,
                                  const std::vector<LeakCellSpec>& cells, bool has_users);

// Publishes `table` to `path` (atomic tmp+rename) and, on success,
// removes the now-redundant journal when `journal_path` is non-empty.
void FinalizeLeakStore(const std::string& path, const LeakTable& table,
                       const std::string& journal_path = std::string());

}  // namespace flatnet::leaksim

#endif  // FLATNET_LEAKSIM_ENGINE_H_
