#include "obs/reqtrace.h"

#include "util/strings.h"

namespace flatnet::obs {

void RequestTrace::MarkAt(std::string_view name, Clock::time_point at) {
  double ms = std::chrono::duration<double, std::milli>(at - last_).count();
  last_ = at;
  if (!phases_.empty() && phases_.back().name == name) {
    phases_.back().ms += ms;
    return;
  }
  phases_.push_back({std::string(name), ms});
}

double RequestTrace::MarkedMs() const {
  double total = 0.0;
  for (const TracePhase& phase : phases_) total += phase.ms;
  return total;
}

double RequestTrace::ElapsedMs() const {
  return std::chrono::duration<double, std::milli>(Clock::now() - start_).count();
}

Json RequestTrace::TimingJson() const {
  Json phases = Json::MakeArray();
  for (const TracePhase& phase : phases_) {
    Json entry = Json::MakeObject();
    entry["ms"] = phase.ms;
    entry["name"] = phase.name;
    phases.Append(std::move(entry));
  }
  Json timing = Json::MakeObject();
  timing["phases"] = std::move(phases);
  timing["server_ms"] = MarkedMs();
  return timing;
}

std::string RequestTrace::Format() const {
  std::string out;
  for (const TracePhase& phase : phases_) {
    if (!out.empty()) out.push_back(' ');
    out += phase.name;
    out += StrFormat("=%.3f", phase.ms);
  }
  return out;
}

}  // namespace flatnet::obs
