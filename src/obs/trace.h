// RAII scoped trace spans with per-name aggregate statistics.
//
//   void RunCustomerPhase(...) {
//     TraceSpan span("bgp.propagation.customer_phase");
//     ...
//   }
//
// Each span measures wall time plus self time (wall time minus enclosed
// child spans, via Stopwatch::Pause/Resume on a thread-local span stack).
// On destruction the span folds into a process-wide aggregate keyed by
// name — count, total, self, min, max — and, at trace log level, emits a
// structured line with its duration, thread id, and parent span.
//
// SpanSummaryTable() renders the aggregates as a flame-style util/table.h
// table sorted by total time; SnapshotSpans() exports them as JSON for the
// metrics file (obs/metrics.h).
#ifndef FLATNET_OBS_TRACE_H_
#define FLATNET_OBS_TRACE_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "util/json.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace flatnet::obs {

struct SpanStats {
  std::uint64_t count = 0;
  double total_seconds = 0.0;
  double self_seconds = 0.0;
  double min_seconds = 0.0;
  double max_seconds = 0.0;
};

class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  const std::string& name() const { return name_; }

 private:
  std::string name_;
  TraceSpan* parent_;
  Stopwatch total_;
  Stopwatch self_;  // paused while a child span is open
};

// Aggregates for every span name seen so far, keyed by name.
std::map<std::string, SpanStats> SpanStatsSnapshot();

// Ensures `name` appears in snapshots even if no span ran yet.
void PreRegisterSpan(const std::string& name);

// {"<name>": {"count": n, "total_s": t, "self_s": s, "min_s": lo,
//  "max_s": hi}, ...}
Json SnapshotSpans();

// Columns: span, count, total s, self s, mean ms, max ms — sorted by
// descending total time.
TextTable SpanSummaryTable();

// Clears all aggregates. Tests only.
void ResetSpanStatsForTest();

}  // namespace flatnet::obs

#endif  // FLATNET_OBS_TRACE_H_
