#include "obs/trace.h"

#include <algorithm>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/log.h"
#include "obs/recorder.h"
#include "util/strings.h"

namespace flatnet::obs {
namespace {

thread_local TraceSpan* t_current_span = nullptr;

std::mutex& StatsMutex() {
  static std::mutex mu;
  return mu;
}

std::map<std::string, SpanStats>& Stats() {
  static auto* stats = new std::map<std::string, SpanStats>;  // leaked: outlives static dtors
  return *stats;
}

std::string ThreadIdString() {
  std::ostringstream os;
  os << std::this_thread::get_id();
  return os.str();
}

}  // namespace

TraceSpan::TraceSpan(std::string_view name) : name_(name), parent_(t_current_span) {
  if (parent_ != nullptr) parent_->self_.Pause();
  t_current_span = this;
}

TraceSpan::~TraceSpan() {
  double total = total_.ElapsedSeconds();
  double self = std::min(self_.ElapsedSeconds(), total);
  t_current_span = parent_;
  if (parent_ != nullptr) parent_->self_.Resume();
  {
    std::lock_guard<std::mutex> lock(StatsMutex());
    SpanStats& stats = Stats()[name_];
    if (stats.count == 0) {
      stats.min_seconds = total;
      stats.max_seconds = total;
    } else {
      stats.min_seconds = std::min(stats.min_seconds, total);
      stats.max_seconds = std::max(stats.max_seconds, total);
    }
    ++stats.count;
    stats.total_seconds += total;
    stats.self_seconds += self;
  }
  if (RecorderEnabled()) {
    RecordEvent(name_, static_cast<std::uint64_t>(total * 1e6));
  }
  if (LogEnabled(LogLevel::kTrace)) {
    Log(LogLevel::kTrace, "trace", "span")
        .Kv("name", name_)
        .Kv("wall_ms", total * 1e3)
        .Kv("self_ms", self * 1e3)
        .Kv("thread", ThreadIdString())
        .Kv("parent", parent_ != nullptr ? parent_->name() : std::string("-"));
  }
}

std::map<std::string, SpanStats> SpanStatsSnapshot() {
  std::lock_guard<std::mutex> lock(StatsMutex());
  return Stats();
}

void PreRegisterSpan(const std::string& name) {
  std::lock_guard<std::mutex> lock(StatsMutex());
  Stats()[name];
}

Json SnapshotSpans() {
  Json spans = Json::MakeObject();
  for (const auto& [name, stats] : SpanStatsSnapshot()) {
    Json entry = Json::MakeObject();
    entry["count"] = Json(stats.count);
    entry["total_s"] = Json(stats.total_seconds);
    entry["self_s"] = Json(stats.self_seconds);
    entry["min_s"] = Json(stats.min_seconds);
    entry["max_s"] = Json(stats.max_seconds);
    spans[name] = std::move(entry);
  }
  return spans;
}

TextTable SpanSummaryTable() {
  auto snapshot = SpanStatsSnapshot();
  std::vector<const std::pair<const std::string, SpanStats>*> order;
  order.reserve(snapshot.size());
  for (const auto& entry : snapshot) order.push_back(&entry);
  std::sort(order.begin(), order.end(), [](const auto* a, const auto* b) {
    return a->second.total_seconds > b->second.total_seconds;
  });

  TextTable table;
  table.AddColumn("span");
  table.AddColumn("count", TextTable::Align::kRight);
  table.AddColumn("total s", TextTable::Align::kRight);
  table.AddColumn("self s", TextTable::Align::kRight);
  table.AddColumn("mean ms", TextTable::Align::kRight);
  table.AddColumn("max ms", TextTable::Align::kRight);
  for (const auto* entry : order) {
    const SpanStats& stats = entry->second;
    double mean_ms =
        stats.count == 0 ? 0.0 : stats.total_seconds * 1e3 / static_cast<double>(stats.count);
    table.AddRow({entry->first, WithCommas(stats.count),
                  StrFormat("%.3f", stats.total_seconds), StrFormat("%.3f", stats.self_seconds),
                  StrFormat("%.3f", mean_ms), StrFormat("%.3f", stats.max_seconds * 1e3)});
  }
  return table;
}

void ResetSpanStatsForTest() {
  std::lock_guard<std::mutex> lock(StatsMutex());
  Stats().clear();
}

}  // namespace flatnet::obs
