// Leveled, structured key=value logging.
//
// Log lines carry a component, an event name, and typed key=value pairs:
//
//   obs::Log(obs::LogLevel::kInfo, "bench", "cache.load")
//       .Kv("key", stem).Kv("result", "hit").Kv("bytes", size);
//
// renders as
//
//   [12.034] I bench cache.load key=era2020-n12600 result=hit bytes=48213
//
// The threshold is read once from FLATNET_LOG (trace|debug|info|warn|error|
// off; default info — the same first-call-wins pattern as FLATNET_SCALE in
// util/env.h) and can be overridden programmatically (tools expose a
// --log-level flag). Lines below the threshold cost one branch. Sinks are
// thread-safe: stderr always, plus an optional append-mode file named by
// FLATNET_LOG_FILE.
#ifndef FLATNET_OBS_LOG_H_
#define FLATNET_OBS_LOG_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace flatnet::obs {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

const char* ToString(LogLevel level);

// Accepts the names above plus "warning" and "none"; case-insensitive.
std::optional<LogLevel> ParseLogLevel(std::string_view text);

// Current threshold: programmatic override if set, else FLATNET_LOG, else
// info.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

inline bool LogEnabled(LogLevel level) { return level >= GetLogLevel(); }

// Replaces the stderr/file sinks with `sink` (tests capture lines this
// way); pass nullptr to restore the defaults.
using LogSink = std::function<void(LogLevel level, const std::string& line)>;
void SetLogSinkForTest(LogSink sink);

// One structured log line, emitted on destruction. When the level is below
// the threshold, construction records nothing and Kv() is a no-op.
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component, std::string_view event);
  ~LogLine();

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  LogLine& Kv(std::string_view key, std::string_view value);
  LogLine& Kv(std::string_view key, const char* value) {
    return Kv(key, std::string_view(value));
  }
  LogLine& Kv(std::string_view key, const std::string& value) {
    return Kv(key, std::string_view(value));
  }
  LogLine& Kv(std::string_view key, bool value) {
    return Kv(key, value ? std::string_view("true") : std::string_view("false"));
  }
  LogLine& Kv(std::string_view key, double value);
  LogLine& Kv(std::string_view key, std::uint64_t value);
  LogLine& Kv(std::string_view key, std::int64_t value);
  LogLine& Kv(std::string_view key, int value) {
    return Kv(key, static_cast<std::int64_t>(value));
  }
  LogLine& Kv(std::string_view key, unsigned value) {
    return Kv(key, static_cast<std::uint64_t>(value));
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::string line_;
};

inline LogLine Log(LogLevel level, std::string_view component, std::string_view event) {
  return LogLine(level, component, event);
}

}  // namespace flatnet::obs

#endif  // FLATNET_OBS_LOG_H_
