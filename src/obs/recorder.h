// Flight recorder: lock-free per-thread ring buffers of recent events.
//
// When enabled (EnableRecorder / FLATNET_RECORDER_DUMP), every completed
// trace span and every emitted log line drops a small fixed-size event —
// name, timestamp, one integer argument — into the calling thread's ring.
// Each ring has exactly one writer (its thread), so recording is two
// relaxed stores plus a release publish of the head index: no locks, no
// allocation, safe from ThreadPool workers and signal-adjacent paths.
// When disabled (the default), RecordEvent is a single relaxed load.
//
// The recorded history is read three ways:
//   - CollectRecorderEvents / RecorderJson: merged, time-ordered snapshot
//     of the newest events — the `debug` serve op answers from this.
//   - WriteRecorderDump(path): the same snapshot as a text file.
//   - InstallCrashHandler(path): a SIGSEGV/SIGABRT/SIGBUS/SIGFPE/SIGILL
//     handler that dumps every ring to `path` using only async-signal-safe
//     calls (open/write, manual integer formatting), then re-raises — a
//     crashed or wedged process names its last N events postmortem.
//
// Rings are leaked on purpose: a thread that exited before the crash still
// has its history in the dump. Readers may race writers; a torn slot is
// detected via its sequence number and skipped rather than misreported.
#ifndef FLATNET_OBS_RECORDER_H_
#define FLATNET_OBS_RECORDER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.h"

namespace flatnet::obs {

// Events per thread ring; oldest events are overwritten once full.
inline constexpr std::size_t kRecorderRingCapacity = 1024;
// Threads beyond this record nothing (counted in RecorderStats::threads_dropped).
inline constexpr std::size_t kRecorderMaxThreads = 256;
inline constexpr std::size_t kRecorderNameCapacity = 48;  // incl. NUL; longer names truncate

struct RecorderEvent {
  std::uint64_t t_us = 0;   // microseconds since process start
  std::uint64_t seq = 0;    // per-thread sequence number, from 0
  std::uint64_t arg = 0;    // event-defined (span wall-clock µs, log level, ...)
  std::uint32_t thread = 0;  // ring index: stable per-thread id, from 0
  char name[kRecorderNameCapacity] = {0};
};

struct RecorderStats {
  bool enabled = false;
  std::uint64_t recorded = 0;         // events ever written, across all rings
  std::uint64_t overwritten = 0;      // of those, lost to ring wraparound
  std::uint64_t threads = 0;          // rings registered
  std::uint64_t threads_dropped = 0;  // threads refused past kRecorderMaxThreads
};

void EnableRecorder(bool enabled);
bool RecorderEnabled();

// Appends one event to the calling thread's ring; no-op when disabled.
void RecordEvent(std::string_view name, std::uint64_t arg = 0);

RecorderStats GetRecorderStats();

// The newest `max_events` events across all rings, ascending t_us.
std::vector<RecorderEvent> CollectRecorderEvents(std::size_t max_events);

// {"dropped":N,"enabled":B,"events":[{"arg":..,"name":..,"seq":..,
//  "t_us":..,"thread":..},...],"threads":N} — payload of the `debug` op.
// `dropped` counts events lost to wraparound or trimmed by max_events.
Json RecorderJson(std::size_t max_events);

// Writes the dump format below to `path` (truncating). Returns false and
// logs on I/O failure. Same renderer as the crash handler, so tooling that
// parses crash dumps parses on-demand dumps too:
//   flatnet-flight-recorder v1
//   event t_us=<n> thread=<n> seq=<n> arg=<n> name=<s>
//   ...
//   end events=<n>
bool WriteRecorderDump(const std::string& path);

// Enables the recorder and installs the fatal-signal handler; the dump is
// written to `path` before the default action is re-raised. The last call
// wins; `path` must outlive the process (it is copied into static storage).
void InstallCrashHandler(const std::string& path);

// InstallCrashHandler(FLATNET_RECORDER_DUMP) when that env var is set;
// otherwise does nothing. Returns whether a handler was installed.
bool InstallCrashHandlerFromEnv();

// Disables the recorder and forgets all rings and counters. Tests only:
// rings already handed to live threads keep working but are no longer
// visible to readers.
void ResetRecorderForTest();

}  // namespace flatnet::obs

#endif  // FLATNET_OBS_RECORDER_H_
