// Process-wide metrics registry: named counters, gauges, and fixed-bucket
// histograms.
//
// Registration (GetCounter / GetGauge / GetHistogram) takes a mutex once;
// callers keep the returned reference, and every hot-path update is a
// single relaxed atomic operation — safe from any thread, including the
// ThreadPool workers. Metric objects live for the process lifetime.
//
// Naming convention: dot-separated lowercase path, subsystem first —
// "propagation.customer.relax_ops", "cache.hit", "thread_pool.queue_depth".
//
// Snapshot() renders everything (plus trace-span aggregates and the
// thread-pool stats from util/thread_pool.h) as a util/json.h value;
// WriteMetricsFile dumps it to disk. Tools expose this via --metrics-out,
// and the bench harness via FLATNET_METRICS_OUT.
#ifndef FLATNET_OBS_METRICS_H_
#define FLATNET_OBS_METRICS_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/json.h"

namespace flatnet::obs {

class Counter {
 public:
  void Increment(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::string name) : name_(std::move(name)) {}
  std::string name_;
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(std::int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  // Raises the gauge to `v` if above the current value (lock-free CAS).
  void SetMax(std::int64_t v);
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  std::string name_;
  std::atomic<std::int64_t> value_{0};
};

// One self-consistent read of a histogram — see Histogram::Snapshot().
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;  // bounds.size() + 1; last = overflow
  std::uint64_t count = 0;
  double sum = 0.0;
  // True when the buckets reconcile with the count (their totals match and
  // the count was stable across the read). False only when writers outran
  // every retry; the values are then the last raw read.
  bool consistent = false;
};

// Fixed upper-bound buckets plus an implicit overflow bucket: a sample v
// lands in the first bucket with v <= bounds[i], or in the overflow bucket
// when v exceeds every bound. Tracks total count and sum as well.
//
// Consistency contract: the individual accessors below are relaxed reads
// and may tear across fields while writers are active (a bucket total can
// momentarily exceed count()). Snapshot() is the supported way to read a
// histogram that other threads are updating: it retries until the buckets
// reconcile with the count, and both the registry snapshot and the
// Prometheus renderer go through it. count() alone is always monotonic.
class Histogram {
 public:
  void Observe(double v);
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const { return bounds_; }
  // i in [0, bounds().size()]; the last index is the overflow bucket.
  std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  // Atomically-consistent read (bounded retry against concurrent Observe).
  HistogramSnapshot Snapshot(int max_retries = 16) const;

 private:
  friend class MetricsRegistry;
  Histogram(std::string name, std::vector<double> bounds);
  std::string name_;
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

class MetricsRegistry {
 public:
  static MetricsRegistry& Default();

  // Returns the existing metric or registers a new one. Throws
  // InvalidArgument when `name` is already registered as a different kind.
  // GetHistogram requires ascending unique bounds; a re-registration keeps
  // the original bounds.
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name, std::vector<double> bounds);

  // {"counters": {...}, "gauges": {...}, "histograms": {...}} for this
  // registry only; ObservabilitySnapshot() below adds spans and pool stats.
  Json Snapshot() const;

  // Zeroes every value (metrics stay registered). Tests only.
  void ResetForTest();

 private:
  MetricsRegistry() = default;
  struct Impl;
  Impl& impl() const;
};

// Shorthands on the default registry.
Counter& GetCounter(const std::string& name);
Gauge& GetGauge(const std::string& name);
Histogram& GetHistogram(const std::string& name, std::vector<double> bounds);

// Registers the well-known flatnet metric and span names so a snapshot
// contains them (at zero) even on code paths that never touched them —
// metrics files stay mechanically comparable across runs and tools.
void RegisterCoreMetrics();

// Full snapshot: default-registry metrics + trace-span aggregates
// ("spans") + thread-pool stats folded into gauges/counters. Calls
// RegisterCoreMetrics() first.
Json ObservabilitySnapshot();

// ObservabilitySnapshot() rendered in the Prometheus text exposition
// format: metric names are `flatnet_` + the dotted name with separators
// flattened to underscores, histograms emit cumulative `_bucket{le=...}`
// series plus `_sum`/`_count`, and trace spans become
// `flatnet_span_count{span="..."}` / `flatnet_span_total_seconds{...}`.
std::string RenderPrometheusText();

// Writes ObservabilitySnapshot() to `path` with an atomic tmp+rename
// publish (readers never see a torn file). A path ending in ".prom" gets
// the Prometheus text format, anything else pretty-printed JSON. Logs
// (warn) and returns false on I/O failure.
bool WriteMetricsFile(const std::string& path);

// Background metrics flusher: re-publishes the snapshot to a file on a
// fixed cadence via WriteMetricsFile, so an external collector can scrape
// a long-running tool without speaking the serve protocol. Inactive (a
// no-op) when `path` is empty or `interval_s` <= 0; tools construct one
// unconditionally and let the env decide:
//
//   obs::MetricsFlusher flusher(metrics_out, obs::MetricsFlusher::IntervalFromEnv());
//
// The destructor stops the thread and, when active, flushes once more so
// the file reflects final state.
class MetricsFlusher {
 public:
  MetricsFlusher(std::string path, double interval_s);
  ~MetricsFlusher();

  MetricsFlusher(const MetricsFlusher&) = delete;
  MetricsFlusher& operator=(const MetricsFlusher&) = delete;

  // FLATNET_METRICS_INTERVAL in seconds (fractions allowed); 0 when unset
  // or unparseable.
  static double IntervalFromEnv();

  bool active() const { return thread_.joinable(); }
  std::uint64_t flushes() const { return flushes_.load(std::memory_order_relaxed); }

  // Stops the flusher and writes one final snapshot; idempotent.
  void Stop();

 private:
  void Loop();

  std::string path_;
  double interval_s_;
  std::atomic<std::uint64_t> flushes_{0};
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::thread thread_;
};

}  // namespace flatnet::obs

#endif  // FLATNET_OBS_METRICS_H_
