#include "obs/recorder.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstring>

#include "obs/log.h"
#include "util/env.h"

namespace flatnet::obs {
namespace {

constexpr std::size_t kNameWords = kRecorderNameCapacity / 8;
constexpr std::uint64_t kSlotBusy = ~0ull;

// All slot fields are relaxed atomics so a reader racing the (single)
// writer observes torn *events*, never torn *words*. The seq field doubles
// as a per-slot seqlock: kSlotBusy while a write is in flight, the event's
// ring index once complete. Readers reject any slot whose seq does not
// match the index they asked for, before and after copying the payload.
struct Slot {
  std::atomic<std::uint64_t> seq{kSlotBusy};
  std::atomic<std::uint64_t> t_us{0};
  std::atomic<std::uint64_t> arg{0};
  std::atomic<std::uint64_t> name[kNameWords] = {};
};

struct Ring {
  std::atomic<std::uint64_t> head{0};  // events ever written; next index
  std::uint32_t thread_index = 0;
  Slot slots[kRecorderRingCapacity];
};

std::atomic<bool> g_enabled{false};
std::atomic<std::uint32_t> g_ring_claims{0};
std::atomic<Ring*> g_rings[kRecorderMaxThreads] = {};
std::atomic<std::uint64_t> g_threads_dropped{0};
// Bumped by ResetRecorderForTest so threads holding a forgotten ring
// re-register instead of writing into one no reader can see.
std::atomic<std::uint64_t> g_generation{1};

thread_local Ring* t_ring = nullptr;
thread_local std::uint64_t t_ring_generation = 0;
thread_local std::uint64_t t_dropped_generation = 0;

std::uint64_t NowMicros() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - start).count());
}

Ring* CurrentRing() {
  std::uint64_t generation = g_generation.load(std::memory_order_acquire);
  if (t_ring != nullptr && t_ring_generation == generation) return t_ring;
  if (t_dropped_generation == generation) return nullptr;
  std::uint32_t index = g_ring_claims.fetch_add(1, std::memory_order_relaxed);
  if (index >= kRecorderMaxThreads) {
    g_threads_dropped.fetch_add(1, std::memory_order_relaxed);
    t_dropped_generation = generation;
    return nullptr;
  }
  Ring* ring = new Ring;  // leaked: history must survive thread exit
  ring->thread_index = index;
  g_rings[index].store(ring, std::memory_order_release);
  t_ring = ring;
  t_ring_generation = generation;
  return ring;
}

std::size_t RegisteredRings() {
  return std::min<std::size_t>(g_ring_claims.load(std::memory_order_acquire),
                               kRecorderMaxThreads);
}

// Validated racy read of one slot; false when the slot was overwritten or
// is mid-write. The acquire fence pairs with the writer's release fence
// (see RecordEvent) so a payload read that observes new data forces the
// trailing seq check to observe kSlotBusy.
bool ReadSlot(const Ring& ring, std::uint64_t index, RecorderEvent* out) {
  const Slot& slot = ring.slots[index % kRecorderRingCapacity];
  if (slot.seq.load(std::memory_order_acquire) != index) return false;
  RecorderEvent event;
  event.t_us = slot.t_us.load(std::memory_order_relaxed);
  event.arg = slot.arg.load(std::memory_order_relaxed);
  std::uint64_t words[kNameWords];
  for (std::size_t w = 0; w < kNameWords; ++w) {
    words[w] = slot.name[w].load(std::memory_order_relaxed);
  }
  std::atomic_thread_fence(std::memory_order_acquire);
  if (slot.seq.load(std::memory_order_relaxed) != index) return false;
  event.seq = index;
  event.thread = ring.thread_index;
  std::memcpy(event.name, words, kRecorderNameCapacity);
  event.name[kRecorderNameCapacity - 1] = '\0';
  *out = event;
  return true;
}

// --- Async-signal-safe dump rendering ------------------------------------
//
// The crash handler may run on a corrupted heap, so everything below uses
// only a stack buffer, manual integer formatting, and write(2).

struct FdWriter {
  int fd = -1;
  char buf[4096];
  std::size_t used = 0;
  bool ok = true;

  void Flush() {
    std::size_t done = 0;
    while (ok && done < used) {
      ssize_t n = ::write(fd, buf + done, used - done);
      if (n < 0) {
        if (errno == EINTR) continue;
        ok = false;
        break;
      }
      done += static_cast<std::size_t>(n);
    }
    used = 0;
  }
  void Append(const char* data, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      if (used == sizeof(buf)) Flush();
      buf[used++] = data[i];
    }
  }
  void AppendStr(const char* s) { Append(s, std::strlen(s)); }
  void AppendU64(std::uint64_t v) {
    char digits[20];
    std::size_t n = 0;
    do {
      digits[n++] = static_cast<char>('0' + v % 10);
      v /= 10;
    } while (v != 0);
    while (n > 0) Append(&digits[--n], 1);
  }
};

// Writes the full dump (header, per-ring events oldest-first, trailer).
bool DumpToFd(int fd) {
  FdWriter w;
  w.fd = fd;
  w.AppendStr("flatnet-flight-recorder v1\n");
  std::uint64_t events = 0;
  std::size_t rings = RegisteredRings();
  for (std::size_t i = 0; i < rings; ++i) {
    const Ring* ring = g_rings[i].load(std::memory_order_acquire);
    if (ring == nullptr) continue;  // registration in flight
    std::uint64_t head = ring->head.load(std::memory_order_acquire);
    std::uint64_t lo = head > kRecorderRingCapacity ? head - kRecorderRingCapacity : 0;
    for (std::uint64_t index = lo; index < head; ++index) {
      RecorderEvent event;
      if (!ReadSlot(*ring, index, &event)) continue;
      w.AppendStr("event t_us=");
      w.AppendU64(event.t_us);
      w.AppendStr(" thread=");
      w.AppendU64(event.thread);
      w.AppendStr(" seq=");
      w.AppendU64(event.seq);
      w.AppendStr(" arg=");
      w.AppendU64(event.arg);
      w.AppendStr(" name=");
      w.AppendStr(event.name);
      w.AppendStr("\n");
      ++events;
    }
  }
  w.AppendStr("end events=");
  w.AppendU64(events);
  w.AppendStr("\n");
  w.Flush();
  return w.ok;
}

char g_dump_path[1024] = {0};

void CrashHandler(int sig) {
  // SA_RESETHAND already restored the default disposition; dump, then
  // re-raise so the default action (core / abort) still happens.
  int fd = ::open(g_dump_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd >= 0) {
    DumpToFd(fd);
    ::close(fd);
  }
  ::raise(sig);
}

}  // namespace

void EnableRecorder(bool enabled) {
  NowMicros();  // pin the process time base before any recording thread
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool RecorderEnabled() { return g_enabled.load(std::memory_order_relaxed); }

void RecordEvent(std::string_view name, std::uint64_t arg) {
  if (!g_enabled.load(std::memory_order_relaxed)) return;
  Ring* ring = CurrentRing();
  if (ring == nullptr) return;
  std::uint64_t index = ring->head.load(std::memory_order_relaxed);
  Slot& slot = ring->slots[index % kRecorderRingCapacity];
  slot.seq.store(kSlotBusy, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);  // busy visible before payload
  slot.t_us.store(NowMicros(), std::memory_order_relaxed);
  slot.arg.store(arg, std::memory_order_relaxed);
  std::uint64_t words[kNameWords] = {};
  std::memcpy(words, name.data(), std::min(name.size(), kRecorderNameCapacity - 1));
  for (std::size_t w = 0; w < kNameWords; ++w) {
    slot.name[w].store(words[w], std::memory_order_relaxed);
  }
  slot.seq.store(index, std::memory_order_release);
  ring->head.store(index + 1, std::memory_order_release);
}

RecorderStats GetRecorderStats() {
  RecorderStats stats;
  stats.enabled = RecorderEnabled();
  stats.threads_dropped = g_threads_dropped.load(std::memory_order_relaxed);
  std::size_t rings = RegisteredRings();
  for (std::size_t i = 0; i < rings; ++i) {
    const Ring* ring = g_rings[i].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    ++stats.threads;
    std::uint64_t head = ring->head.load(std::memory_order_acquire);
    stats.recorded += head;
    if (head > kRecorderRingCapacity) stats.overwritten += head - kRecorderRingCapacity;
  }
  return stats;
}

std::vector<RecorderEvent> CollectRecorderEvents(std::size_t max_events) {
  std::vector<RecorderEvent> events;
  std::size_t rings = RegisteredRings();
  for (std::size_t i = 0; i < rings; ++i) {
    const Ring* ring = g_rings[i].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    std::uint64_t head = ring->head.load(std::memory_order_acquire);
    std::uint64_t lo = head > kRecorderRingCapacity ? head - kRecorderRingCapacity : 0;
    for (std::uint64_t index = lo; index < head; ++index) {
      RecorderEvent event;
      if (ReadSlot(*ring, index, &event)) events.push_back(event);
    }
  }
  std::sort(events.begin(), events.end(), [](const RecorderEvent& a, const RecorderEvent& b) {
    if (a.t_us != b.t_us) return a.t_us < b.t_us;
    if (a.thread != b.thread) return a.thread < b.thread;
    return a.seq < b.seq;
  });
  if (events.size() > max_events) {
    events.erase(events.begin(), events.end() - static_cast<std::ptrdiff_t>(max_events));
  }
  return events;
}

Json RecorderJson(std::size_t max_events) {
  RecorderStats stats = GetRecorderStats();
  std::vector<RecorderEvent> events = CollectRecorderEvents(max_events);
  Json array = Json::MakeArray();
  for (const RecorderEvent& event : events) {
    Json entry = Json::MakeObject();
    entry["arg"] = Json(event.arg);
    entry["name"] = Json(std::string(event.name));
    entry["seq"] = Json(event.seq);
    entry["t_us"] = Json(event.t_us);
    entry["thread"] = Json(static_cast<std::uint64_t>(event.thread));
    array.Append(std::move(entry));
  }
  Json out = Json::MakeObject();
  std::uint64_t returned = events.size();
  out["dropped"] = Json(stats.recorded > returned ? stats.recorded - returned : 0);
  out["enabled"] = Json(stats.enabled);
  out["events"] = std::move(array);
  out["threads"] = Json(stats.threads);
  return out;
}

bool WriteRecorderDump(const std::string& path) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  bool ok = fd >= 0;
  if (ok) {
    ok = DumpToFd(fd);
    ::close(fd);
  }
  if (!ok) {
    Log(LogLevel::kWarn, "obs", "recorder.dump_failed").Kv("path", path);
    return false;
  }
  Log(LogLevel::kDebug, "obs", "recorder.dumped").Kv("path", path);
  return true;
}

void InstallCrashHandler(const std::string& path) {
  std::size_t n = std::min(path.size(), sizeof(g_dump_path) - 1);
  std::memcpy(g_dump_path, path.data(), n);
  g_dump_path[n] = '\0';
  EnableRecorder(true);
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = CrashHandler;
  action.sa_flags = SA_RESETHAND;
  sigemptyset(&action.sa_mask);
  for (int sig : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL}) {
    sigaction(sig, &action, nullptr);
  }
  Log(LogLevel::kInfo, "obs", "recorder.crash_handler_installed").Kv("path", path);
}

bool InstallCrashHandlerFromEnv() {
  auto path = GetEnv("FLATNET_RECORDER_DUMP");
  if (!path || path->empty()) return false;
  InstallCrashHandler(*path);
  return true;
}

void ResetRecorderForTest() {
  g_enabled.store(false, std::memory_order_relaxed);
  for (std::size_t i = 0; i < kRecorderMaxThreads; ++i) {
    g_rings[i].store(nullptr, std::memory_order_relaxed);  // rings leak by design
  }
  g_ring_claims.store(0, std::memory_order_relaxed);
  g_threads_dropped.store(0, std::memory_order_relaxed);
  g_generation.fetch_add(1, std::memory_order_release);
}

}  // namespace flatnet::obs
