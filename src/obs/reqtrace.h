// Per-request trace context: an ordered timeline of named phases.
//
// One RequestTrace rides along a single request from accept to response
// write. Each Mark(name) closes the segment that started at the previous
// mark (or at construction), so the phases partition the request's wall
// time with no gaps:
//
//   obs::RequestTrace trace;
//   ... read + frame the line ...
//   trace.Mark("parse");
//   ... probe the result cache ...
//   trace.Mark("cache_probe");
//
// The serve dispatcher threads a RequestTrace through the propagation
// engines via PropagationOptions::trace, so the timeline names the
// customer/peer/provider phases individually. TimingJson() renders the
// opt-in `"timing"` response field; Format() renders the one-line summary
// the slow-query log emits.
//
// A RequestTrace is deliberately NOT thread-safe: a request is handled by
// exactly one thread at a time (connection thread, then — after the
// synchronizing pool handoff — one worker thread), and keeping it a plain
// object keeps tracing-off overhead at a single branch per call site.
#ifndef FLATNET_OBS_REQTRACE_H_
#define FLATNET_OBS_REQTRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.h"

namespace flatnet::obs {

struct TracePhase {
  std::string name;
  double ms = 0.0;
};

class RequestTrace {
 public:
  using Clock = std::chrono::steady_clock;

  RequestTrace() : RequestTrace(Clock::now()) {}
  // Starts the timeline at `start` — lets a dispatcher that only decides to
  // trace after parsing backfill the accept/parse segments from timestamps
  // it captured earlier.
  explicit RequestTrace(Clock::time_point start) : start_(start), last_(start) {}

  // Closes the segment running since the previous mark under `name`.
  // Consecutive marks with the same name accumulate into one phase entry.
  void Mark(std::string_view name) { MarkAt(name, Clock::now()); }
  // Same, closing the segment at `at` instead of now. `at` must not precede
  // the previous mark (the phase would go negative).
  void MarkAt(std::string_view name, Clock::time_point at);

  const std::vector<TracePhase>& phases() const { return phases_; }

  // Sum of all recorded phase durations (the server-side time accounted
  // for so far; segments after the last mark are not included).
  double MarkedMs() const;

  // Wall time since construction, marked or not.
  double ElapsedMs() const;

  // {"phases":[{"ms":...,"name":"parse"},...],"server_ms":<marked sum>} —
  // the payload of the opt-in `timing` response field.
  Json TimingJson() const;

  // "parse=0.012 cache_probe=0.003 ..." (milliseconds) for log lines.
  std::string Format() const;

 private:
  Clock::time_point start_;
  Clock::time_point last_;
  std::vector<TracePhase> phases_;
};

}  // namespace flatnet::obs

#endif  // FLATNET_OBS_REQTRACE_H_
