#include "obs/metrics.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>

#include "obs/log.h"
#include "obs/trace.h"
#include "util/env.h"
#include "util/error.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace flatnet::obs {

void Gauge::SetMax(std::int64_t v) {
  std::int64_t current = value_.load(std::memory_order_relaxed);
  while (v > current &&
         !value_.compare_exchange_weak(current, v, std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(std::string name, std::vector<double> bounds)
    : name_(std::move(name)), bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {}

void Histogram::Observe(double v) {
  auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  buckets_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  // The bucket is bumped before the count, so a racing Snapshot() can see
  // bucket totals ahead of the count but never behind it once stable.
  count_.fetch_add(1, std::memory_order_release);
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + v, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot(int max_retries) const {
  HistogramSnapshot snapshot;
  snapshot.bounds = bounds_;
  snapshot.buckets.resize(buckets_.size());
  for (int attempt = 0; attempt <= max_retries; ++attempt) {
    std::uint64_t before = count_.load(std::memory_order_acquire);
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      snapshot.buckets[i] = buckets_[i].load(std::memory_order_acquire);
      total += snapshot.buckets[i];
    }
    snapshot.sum = sum_.load(std::memory_order_relaxed);
    std::uint64_t after = count_.load(std::memory_order_acquire);
    snapshot.count = after;
    if (before == after && total == after) {
      snapshot.consistent = true;
      break;
    }
  }
  return snapshot;
}

// std::map keeps snapshot key order deterministic, matching util/json.h.
struct MetricsRegistry::Impl {
  mutable std::mutex mu;
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

MetricsRegistry::Impl& MetricsRegistry::impl() const {
  static Impl* instance = new Impl;  // leaked: metrics outlive static dtors
  return *instance;
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mu);
  auto it = state.counters.find(name);
  if (it != state.counters.end()) return *it->second;
  if (state.gauges.count(name) || state.histograms.count(name)) {
    throw InvalidArgument("GetCounter: '" + name + "' registered as another kind");
  }
  auto& slot = state.counters[name];
  slot.reset(new Counter(name));
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mu);
  auto it = state.gauges.find(name);
  if (it != state.gauges.end()) return *it->second;
  if (state.counters.count(name) || state.histograms.count(name)) {
    throw InvalidArgument("GetGauge: '" + name + "' registered as another kind");
  }
  auto& slot = state.gauges[name];
  slot.reset(new Gauge(name));
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name, std::vector<double> bounds) {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mu);
  auto it = state.histograms.find(name);
  if (it != state.histograms.end()) return *it->second;
  if (state.counters.count(name) || state.gauges.count(name)) {
    throw InvalidArgument("GetHistogram: '" + name + "' registered as another kind");
  }
  if (bounds.empty() || !std::is_sorted(bounds.begin(), bounds.end()) ||
      std::adjacent_find(bounds.begin(), bounds.end()) != bounds.end()) {
    throw InvalidArgument("GetHistogram: bounds must be ascending and unique");
  }
  auto& slot = state.histograms[name];
  slot.reset(new Histogram(name, std::move(bounds)));
  return *slot;
}

Json MetricsRegistry::Snapshot() const {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mu);
  Json counters = Json::MakeObject();
  for (const auto& [name, counter] : state.counters) {
    counters[name] = Json(counter->value());
  }
  Json gauges = Json::MakeObject();
  for (const auto& [name, gauge] : state.gauges) {
    gauges[name] = Json(gauge->value());
  }
  Json histograms = Json::MakeObject();
  for (const auto& [name, histogram] : state.histograms) {
    HistogramSnapshot hist = histogram->Snapshot();
    Json bounds = Json::MakeArray();
    for (double b : hist.bounds) bounds.Append(Json(b));
    Json buckets = Json::MakeArray();
    for (std::uint64_t bucket : hist.buckets) buckets.Append(Json(bucket));
    Json entry = Json::MakeObject();
    entry["bounds"] = std::move(bounds);
    entry["consistent"] = Json(hist.consistent);
    entry["counts"] = std::move(buckets);
    entry["count"] = Json(hist.count);
    entry["sum"] = Json(hist.sum);
    histograms[name] = std::move(entry);
  }
  Json snapshot = Json::MakeObject();
  snapshot["counters"] = std::move(counters);
  snapshot["gauges"] = std::move(gauges);
  snapshot["histograms"] = std::move(histograms);
  return snapshot;
}

void MetricsRegistry::ResetForTest() {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mu);
  for (auto& [name, counter] : state.counters) {
    counter->value_.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, gauge] : state.gauges) {
    gauge->value_.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, histogram] : state.histograms) {
    for (auto& bucket : histogram->buckets_) bucket.store(0, std::memory_order_relaxed);
    histogram->count_.store(0, std::memory_order_relaxed);
    histogram->sum_.store(0.0, std::memory_order_relaxed);
  }
}

Counter& GetCounter(const std::string& name) {
  return MetricsRegistry::Default().GetCounter(name);
}

Gauge& GetGauge(const std::string& name) {
  return MetricsRegistry::Default().GetGauge(name);
}

Histogram& GetHistogram(const std::string& name, std::vector<double> bounds) {
  return MetricsRegistry::Default().GetHistogram(name, std::move(bounds));
}

void RegisterCoreMetrics() {
  for (const char* name : {
           "propagation.runs",
           "propagation.customer.relax_ops",
           "propagation.peer.scan_ops",
           "propagation.provider.relax_ops",
           "reachability.computes",
           "reachability.nodes_reached",
           "reliance.computes",
           "event_engine.messages",
           "event_engine.reselects",
           "cache.hit",
           "cache.miss",
           "cache.corrupt",
           "thread_pool.tasks_submitted",
           "thread_pool.tasks_executed",
           "serve.requests",
           "serve.errors",
           "serve.overloaded",
           "serve.deadline_exceeded",
           "serve.cache.hit",
           "serve.cache.miss",
           "serve.cache.eviction",
           "serve.slow_queries",
           "serve.reach.requests",
           "serve.reach.errors",
           "serve.reliance.requests",
           "serve.reliance.errors",
           "serve.leak.requests",
           "serve.leak.errors",
           "serve.status.requests",
           "serve.status.errors",
           "serve.top.requests",
           "serve.top.errors",
           "serve.leakdist.requests",
           "serve.leakdist.errors",
           "serve.metrics.requests",
           "serve.metrics.errors",
           "serve.debug.requests",
           "serve.debug.errors",
           "sweep.chunks_completed",
           "sweep.chunks_resumed",
           "sweep.checkpoint_writes",
           "sweep.origins_computed",
           "sweep.stragglers",
           "leaksim.chunks_completed",
           "leaksim.chunks_resumed",
           "leaksim.checkpoint_writes",
           "leaksim.trials_evaluated",
           "leaksim.stragglers",
       }) {
    GetCounter(name);
  }
  for (const char* name : {
           "thread_pool.queue_depth",
           "thread_pool.peak_queue_depth",
           "thread_pool.threads",
           "serve.inflight",
           "serve.cache.bytes",
           "serve.cache.entries",
           "sweep.origins_per_sec",
           "sweep.eta_s",
           "leaksim.trials_per_sec",
           "leaksim.eta_s",
       }) {
    GetGauge(name);
  }
  GetHistogram("bench.build_seconds", {1.0, 5.0, 15.0, 60.0, 300.0});
  for (const char* name : {
           "serve.reach.latency_ms",
           "serve.reliance.latency_ms",
           "serve.leak.latency_ms",
           "serve.status.latency_ms",
           "serve.top.latency_ms",
           "serve.leakdist.latency_ms",
           "serve.metrics.latency_ms",
           "serve.debug.latency_ms",
       }) {
    GetHistogram(name, {0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0, 300.0, 1000.0, 3000.0});
  }
  // Same bounds as obs::CampaignMonitor registers; re-registration keeps
  // the original bounds, so the two lists must agree.
  for (const char* name : {"sweep.chunk_ms", "leaksim.chunk_ms"}) {
    GetHistogram(name, {1.0, 3.0, 10.0, 30.0, 100.0, 300.0, 1000.0, 3000.0, 10000.0});
  }
  for (const char* name : {
           "bgp.propagation",
           "bgp.propagation.customer_phase",
           "bgp.propagation.peer_phase",
           "bgp.propagation.provider_phase",
           "bgp.reliance",
           "bench.build_study",
           "topogen.generate",
           "sweep.run",
           "sweep.chunk",
           "leaksim.run",
           "leaksim.prepare",
           "leaksim.chunk",
       }) {
    PreRegisterSpan(name);
  }
}

Json ObservabilitySnapshot() {
  RegisterCoreMetrics();

  // Fold the process-wide thread-pool stats (util-level atomics; util
  // cannot depend on obs) into the registry before snapshotting.
  ThreadPoolStats stats = GlobalThreadPoolStats();
  GetGauge("thread_pool.queue_depth").Set(stats.queue_depth);
  GetGauge("thread_pool.peak_queue_depth").Set(stats.peak_queue_depth);
  GetGauge("thread_pool.threads").Set(stats.threads);
  Counter& submitted = GetCounter("thread_pool.tasks_submitted");
  if (stats.tasks_submitted > submitted.value()) {
    submitted.Increment(stats.tasks_submitted - submitted.value());
  }
  Counter& executed = GetCounter("thread_pool.tasks_executed");
  if (stats.tasks_executed > executed.value()) {
    executed.Increment(stats.tasks_executed - executed.value());
  }

  Json snapshot = MetricsRegistry::Default().Snapshot();
  snapshot["spans"] = SnapshotSpans();
  return snapshot;
}

namespace {

std::string PromName(const std::string& name) {
  std::string out = "flatnet_";
  for (char c : name) {
    bool alnum = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9');
    out.push_back(alnum ? c : '_');
  }
  return out;
}

std::string PromNumber(double v) { return StrFormat("%.10g", v); }

bool HasSuffix(const std::string& s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

std::string RenderPrometheusText() {
  Json snapshot = ObservabilitySnapshot();
  std::string out;
  for (const auto& [name, value] : snapshot.At("counters").AsObject()) {
    std::string prom = PromName(name);
    out += "# TYPE " + prom + " counter\n";
    out += prom + " " + PromNumber(value.AsNumber()) + "\n";
  }
  for (const auto& [name, value] : snapshot.At("gauges").AsObject()) {
    std::string prom = PromName(name);
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " " + PromNumber(value.AsNumber()) + "\n";
  }
  for (const auto& [name, entry] : snapshot.At("histograms").AsObject()) {
    std::string prom = PromName(name);
    out += "# TYPE " + prom + " histogram\n";
    const Json& bounds = entry.At("bounds");
    const Json& counts = entry.At("counts");
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      cumulative += counts[i].AsU64();
      out += prom + "_bucket{le=\"" + PromNumber(bounds[i].AsNumber()) + "\"} " +
             PromNumber(static_cast<double>(cumulative)) + "\n";
    }
    out += prom + "_bucket{le=\"+Inf\"} " + PromNumber(entry.At("count").AsNumber()) + "\n";
    out += prom + "_sum " + PromNumber(entry.At("sum").AsNumber()) + "\n";
    out += prom + "_count " + PromNumber(entry.At("count").AsNumber()) + "\n";
  }
  const Json::Object& spans = snapshot.At("spans").AsObject();
  out += "# TYPE flatnet_span_count counter\n";
  for (const auto& [name, entry] : spans) {
    out += "flatnet_span_count{span=\"" + name + "\"} " +
           PromNumber(entry.At("count").AsNumber()) + "\n";
  }
  out += "# TYPE flatnet_span_total_seconds counter\n";
  for (const auto& [name, entry] : spans) {
    out += "flatnet_span_total_seconds{span=\"" + name + "\"} " +
           PromNumber(entry.At("total_s").AsNumber()) + "\n";
  }
  return out;
}

bool WriteMetricsFile(const std::string& path) {
  std::string payload = HasSuffix(path, ".prom")
                            ? RenderPrometheusText()
                            : ObservabilitySnapshot().Dump(2) + "\n";
  // Atomic publish: write a pid-unique sibling, then rename over the
  // target, so a concurrent reader sees either the old or the new file.
  std::string tmp = StrFormat("%s.tmp.%d", path.c_str(), static_cast<int>(::getpid()));
  std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
  out << payload;
  out.close();
  if (!out || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    Log(LogLevel::kWarn, "obs", "metrics.write_failed").Kv("path", path);
    return false;
  }
  Log(LogLevel::kDebug, "obs", "metrics.written").Kv("path", path);
  return true;
}

MetricsFlusher::MetricsFlusher(std::string path, double interval_s)
    : path_(std::move(path)), interval_s_(interval_s) {
  if (path_.empty() || interval_s_ <= 0.0) return;
  thread_ = std::thread([this] { Loop(); });
  Log(LogLevel::kInfo, "obs", "metrics.flusher_started")
      .Kv("path", path_)
      .Kv("interval_s", interval_s_);
}

MetricsFlusher::~MetricsFlusher() { Stop(); }

double MetricsFlusher::IntervalFromEnv() {
  auto env = GetEnv("FLATNET_METRICS_INTERVAL");
  if (!env || env->empty()) return 0.0;
  char* end = nullptr;
  double v = std::strtod(env->c_str(), &end);
  if (end == env->c_str() || *end != '\0' || !(v >= 0.0) || v > 1e9) {
    Log(LogLevel::kWarn, "obs", "metrics.bad_interval").Kv("value", *env);
    return 0.0;
  }
  return v;
}

void MetricsFlusher::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  auto interval = std::chrono::duration<double>(interval_s_);
  while (!cv_.wait_for(lock, interval, [this] { return stopping_; })) {
    lock.unlock();
    if (WriteMetricsFile(path_)) flushes_.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
  }
}

void MetricsFlusher::Stop() {
  if (!thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  thread_.join();
  thread_ = std::thread();
  // One final write so the published file reflects end-of-run state.
  if (WriteMetricsFile(path_)) flushes_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace flatnet::obs
