#include "obs/metrics.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>

#include "obs/log.h"
#include "obs/trace.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace flatnet::obs {

void Gauge::SetMax(std::int64_t v) {
  std::int64_t current = value_.load(std::memory_order_relaxed);
  while (v > current &&
         !value_.compare_exchange_weak(current, v, std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(std::string name, std::vector<double> bounds)
    : name_(std::move(name)), bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {}

void Histogram::Observe(double v) {
  auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  buckets_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + v, std::memory_order_relaxed)) {
  }
}

// std::map keeps snapshot key order deterministic, matching util/json.h.
struct MetricsRegistry::Impl {
  mutable std::mutex mu;
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

MetricsRegistry::Impl& MetricsRegistry::impl() const {
  static Impl* instance = new Impl;  // leaked: metrics outlive static dtors
  return *instance;
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mu);
  auto it = state.counters.find(name);
  if (it != state.counters.end()) return *it->second;
  if (state.gauges.count(name) || state.histograms.count(name)) {
    throw InvalidArgument("GetCounter: '" + name + "' registered as another kind");
  }
  auto& slot = state.counters[name];
  slot.reset(new Counter(name));
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mu);
  auto it = state.gauges.find(name);
  if (it != state.gauges.end()) return *it->second;
  if (state.counters.count(name) || state.histograms.count(name)) {
    throw InvalidArgument("GetGauge: '" + name + "' registered as another kind");
  }
  auto& slot = state.gauges[name];
  slot.reset(new Gauge(name));
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name, std::vector<double> bounds) {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mu);
  auto it = state.histograms.find(name);
  if (it != state.histograms.end()) return *it->second;
  if (state.counters.count(name) || state.gauges.count(name)) {
    throw InvalidArgument("GetHistogram: '" + name + "' registered as another kind");
  }
  if (bounds.empty() || !std::is_sorted(bounds.begin(), bounds.end()) ||
      std::adjacent_find(bounds.begin(), bounds.end()) != bounds.end()) {
    throw InvalidArgument("GetHistogram: bounds must be ascending and unique");
  }
  auto& slot = state.histograms[name];
  slot.reset(new Histogram(name, std::move(bounds)));
  return *slot;
}

Json MetricsRegistry::Snapshot() const {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mu);
  Json counters = Json::MakeObject();
  for (const auto& [name, counter] : state.counters) {
    counters[name] = Json(counter->value());
  }
  Json gauges = Json::MakeObject();
  for (const auto& [name, gauge] : state.gauges) {
    gauges[name] = Json(gauge->value());
  }
  Json histograms = Json::MakeObject();
  for (const auto& [name, histogram] : state.histograms) {
    Json bounds = Json::MakeArray();
    for (double b : histogram->bounds()) bounds.Append(Json(b));
    Json buckets = Json::MakeArray();
    for (std::size_t i = 0; i <= histogram->bounds().size(); ++i) {
      buckets.Append(Json(histogram->bucket_count(i)));
    }
    Json entry = Json::MakeObject();
    entry["bounds"] = std::move(bounds);
    entry["counts"] = std::move(buckets);
    entry["count"] = Json(histogram->count());
    entry["sum"] = Json(histogram->sum());
    histograms[name] = std::move(entry);
  }
  Json snapshot = Json::MakeObject();
  snapshot["counters"] = std::move(counters);
  snapshot["gauges"] = std::move(gauges);
  snapshot["histograms"] = std::move(histograms);
  return snapshot;
}

void MetricsRegistry::ResetForTest() {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mu);
  for (auto& [name, counter] : state.counters) {
    counter->value_.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, gauge] : state.gauges) {
    gauge->value_.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, histogram] : state.histograms) {
    for (auto& bucket : histogram->buckets_) bucket.store(0, std::memory_order_relaxed);
    histogram->count_.store(0, std::memory_order_relaxed);
    histogram->sum_.store(0.0, std::memory_order_relaxed);
  }
}

Counter& GetCounter(const std::string& name) {
  return MetricsRegistry::Default().GetCounter(name);
}

Gauge& GetGauge(const std::string& name) {
  return MetricsRegistry::Default().GetGauge(name);
}

Histogram& GetHistogram(const std::string& name, std::vector<double> bounds) {
  return MetricsRegistry::Default().GetHistogram(name, std::move(bounds));
}

void RegisterCoreMetrics() {
  for (const char* name : {
           "propagation.runs",
           "propagation.customer.relax_ops",
           "propagation.peer.scan_ops",
           "propagation.provider.relax_ops",
           "reachability.computes",
           "reachability.nodes_reached",
           "reliance.computes",
           "event_engine.messages",
           "event_engine.reselects",
           "cache.hit",
           "cache.miss",
           "cache.corrupt",
           "thread_pool.tasks_submitted",
           "thread_pool.tasks_executed",
           "serve.requests",
           "serve.errors",
           "serve.overloaded",
           "serve.deadline_exceeded",
           "serve.cache.hit",
           "serve.cache.miss",
           "serve.cache.eviction",
           "sweep.chunks_completed",
           "sweep.chunks_resumed",
           "sweep.checkpoint_writes",
           "sweep.origins_computed",
       }) {
    GetCounter(name);
  }
  for (const char* name : {
           "thread_pool.queue_depth",
           "thread_pool.peak_queue_depth",
           "thread_pool.threads",
           "serve.inflight",
           "serve.cache.bytes",
           "serve.cache.entries",
           "sweep.origins_per_sec",
       }) {
    GetGauge(name);
  }
  GetHistogram("bench.build_seconds", {1.0, 5.0, 15.0, 60.0, 300.0});
  for (const char* name : {
           "serve.reach.latency_ms",
           "serve.reliance.latency_ms",
           "serve.leak.latency_ms",
           "serve.status.latency_ms",
           "serve.top.latency_ms",
       }) {
    GetHistogram(name, {0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0, 300.0, 1000.0, 3000.0});
  }
  for (const char* name : {
           "bgp.propagation",
           "bgp.propagation.customer_phase",
           "bgp.propagation.peer_phase",
           "bgp.propagation.provider_phase",
           "bgp.reliance",
           "bench.build_study",
           "topogen.generate",
           "sweep.run",
           "sweep.chunk",
       }) {
    PreRegisterSpan(name);
  }
}

Json ObservabilitySnapshot() {
  RegisterCoreMetrics();

  // Fold the process-wide thread-pool stats (util-level atomics; util
  // cannot depend on obs) into the registry before snapshotting.
  ThreadPoolStats stats = GlobalThreadPoolStats();
  GetGauge("thread_pool.queue_depth").Set(stats.queue_depth);
  GetGauge("thread_pool.peak_queue_depth").Set(stats.peak_queue_depth);
  GetGauge("thread_pool.threads").Set(stats.threads);
  Counter& submitted = GetCounter("thread_pool.tasks_submitted");
  if (stats.tasks_submitted > submitted.value()) {
    submitted.Increment(stats.tasks_submitted - submitted.value());
  }
  Counter& executed = GetCounter("thread_pool.tasks_executed");
  if (stats.tasks_executed > executed.value()) {
    executed.Increment(stats.tasks_executed - executed.value());
  }

  Json snapshot = MetricsRegistry::Default().Snapshot();
  snapshot["spans"] = SnapshotSpans();
  return snapshot;
}

bool WriteMetricsFile(const std::string& path) {
  std::ofstream out(path);
  if (out) out << ObservabilitySnapshot().Dump(2) << '\n';
  if (!out) {
    Log(LogLevel::kWarn, "obs", "metrics.write_failed").Kv("path", path);
    return false;
  }
  Log(LogLevel::kDebug, "obs", "metrics.written").Kv("path", path);
  return true;
}

}  // namespace flatnet::obs
