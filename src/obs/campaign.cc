#include "obs/campaign.h"

#include <algorithm>

#include "obs/log.h"

namespace flatnet::obs {

CampaignMonitor::CampaignMonitor(const Options& options)
    : options_(options),
      chunk_ms_hist_(GetHistogram(
          options.component + ".chunk_ms",
          {1.0, 3.0, 10.0, 30.0, 100.0, 300.0, 1000.0, 3000.0, 10000.0})),
      straggler_counter_(GetCounter(options.component + ".stragglers")),
      eta_gauge_(GetGauge(options.component + ".eta_s")) {
  if (options_.workers == 0) options_.workers = 1;
}

double CampaignMonitor::MeanChunkMs() const {
  std::size_t done = chunks_done_.load(std::memory_order_relaxed);
  if (done == 0) return 0.0;
  return static_cast<double>(chunk_us_total_.load(std::memory_order_relaxed)) / 1e3 /
         static_cast<double>(done);
}

double CampaignMonitor::EtaSeconds() const {
  std::size_t finished =
      options_.resumed_chunks + chunks_done_.load(std::memory_order_relaxed);
  if (options_.total_chunks == 0 || finished >= options_.total_chunks) return 0.0;
  double mean_ms = MeanChunkMs();
  if (mean_ms <= 0.0) return 0.0;
  double remaining = static_cast<double>(options_.total_chunks - finished);
  return remaining * mean_ms / 1e3 / static_cast<double>(options_.workers);
}

void CampaignMonitor::ChunkDone(std::size_t chunk_index, double chunk_ms,
                                std::size_t units) {
  chunk_ms_hist_.Observe(chunk_ms);
  double mean_before = MeanChunkMs();
  std::size_t done_before = chunks_done_.fetch_add(1, std::memory_order_relaxed);
  units_done_.fetch_add(units, std::memory_order_relaxed);
  chunk_us_total_.fetch_add(static_cast<std::uint64_t>(std::max(chunk_ms, 0.0) * 1e3),
                            std::memory_order_relaxed);

  if (done_before >= 8 && mean_before > 0.0 &&
      chunk_ms > std::max(options_.straggler_min_ms,
                          options_.straggler_factor * mean_before)) {
    stragglers_seen_.fetch_add(1, std::memory_order_relaxed);
    straggler_counter_.Increment();
    Log(LogLevel::kWarn, options_.component, "campaign.straggler")
        .Kv("chunk", static_cast<std::uint64_t>(chunk_index))
        .Kv("chunk_ms", chunk_ms)
        .Kv("mean_ms", mean_before)
        .Kv("factor", mean_before > 0.0 ? chunk_ms / mean_before : 0.0);
  }

  double elapsed_s = started_.ElapsedSeconds();
  eta_gauge_.Set(static_cast<std::int64_t>(EtaSeconds()));
  if (options_.heartbeat_ms > 0) MaybeHeartbeat(elapsed_s);
}

void CampaignMonitor::MaybeHeartbeat(double elapsed_s) {
  // CAS-claimed so exactly one worker emits each heartbeat window.
  auto now_us = static_cast<std::uint64_t>(elapsed_s * 1e6);
  std::uint64_t last = last_heartbeat_us_.load(std::memory_order_relaxed);
  if (now_us < last + std::uint64_t{options_.heartbeat_ms} * 1000) return;
  if (!last_heartbeat_us_.compare_exchange_strong(last, now_us,
                                                  std::memory_order_relaxed)) {
    return;
  }
  std::size_t done = options_.resumed_chunks + chunks_done();
  std::uint64_t units = units_done_.load(std::memory_order_relaxed);
  double pct = options_.total_chunks > 0 ? 100.0 * static_cast<double>(done) /
                                               static_cast<double>(options_.total_chunks)
                                         : 0.0;
  Log(LogLevel::kInfo, options_.component, "campaign.heartbeat")
      .Kv("chunks_done", static_cast<std::uint64_t>(done))
      .Kv("chunks_total", static_cast<std::uint64_t>(options_.total_chunks))
      .Kv("pct", pct)
      .Kv(options_.unit + "_per_sec",
          elapsed_s > 0.0 ? static_cast<double>(units) / elapsed_s : 0.0)
      .Kv("mean_chunk_ms", MeanChunkMs())
      .Kv("eta_s", EtaSeconds())
      .Kv("stragglers", stragglers_seen_.load(std::memory_order_relaxed));
}

}  // namespace flatnet::obs
