// Campaign telemetry: heartbeat, throughput, ETA, and straggler detection
// for chunked batch engines (sweep, leaksim).
//
// One CampaignMonitor is created per run and shared by every worker; each
// worker calls ChunkDone() after finishing a chunk. The monitor feeds:
//   - a `<component>.chunk_ms` histogram (per-chunk latency distribution),
//   - a `<component>.eta_s` gauge (remaining wall-clock estimate),
//   - a `<component>.stragglers` counter plus a warn log line whenever a
//     chunk runs far slower than the campaign's running mean,
//   - periodic info-level heartbeat lines (progress %, units/sec, mean
//     chunk latency, ETA) so a million-AS run is observable from its log
//     stream alone.
//
// All state is atomic; ChunkDone is safe from any worker thread and is
// logs-and-metrics only — it never touches campaign results, so resumed
// and fresh runs stay byte-identical.
#ifndef FLATNET_OBS_CAMPAIGN_H_
#define FLATNET_OBS_CAMPAIGN_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "obs/metrics.h"
#include "util/stopwatch.h"

namespace flatnet::obs {

class CampaignMonitor {
 public:
  struct Options {
    std::string component;       // metric/log prefix: "sweep", "leaksim"
    std::string unit = "units";  // what a chunk produces: "origins", "trials"
    std::size_t total_chunks = 0;
    std::size_t resumed_chunks = 0;  // already done before this run
    std::size_t workers = 1;         // divides the serial ETA estimate
    // Minimum spacing of heartbeat log lines; 0 disables them (metrics and
    // straggler detection stay on).
    std::uint32_t heartbeat_ms = 2000;
    // A chunk is a straggler when it exceeds straggler_factor * the running
    // mean chunk latency and straggler_min_ms; needs >= 8 finished chunks.
    double straggler_factor = 4.0;
    double straggler_min_ms = 50.0;
  };

  explicit CampaignMonitor(const Options& options);

  // Reports one finished chunk of `units` work items taking `chunk_ms`.
  void ChunkDone(std::size_t chunk_index, double chunk_ms, std::size_t units);

  std::size_t chunks_done() const {
    return chunks_done_.load(std::memory_order_relaxed);
  }
  std::uint64_t stragglers() const {
    return stragglers_seen_.load(std::memory_order_relaxed);
  }
  double MeanChunkMs() const;
  // Remaining serial work divided across workers; 0 when done or unknown.
  double EtaSeconds() const;

 private:
  void MaybeHeartbeat(double elapsed_s);

  Options options_;
  Histogram& chunk_ms_hist_;
  Counter& straggler_counter_;
  Gauge& eta_gauge_;
  Stopwatch started_;
  std::atomic<std::size_t> chunks_done_{0};
  std::atomic<std::uint64_t> units_done_{0};
  std::atomic<std::uint64_t> chunk_us_total_{0};
  std::atomic<std::uint64_t> stragglers_seen_{0};
  std::atomic<std::uint64_t> last_heartbeat_us_{0};
};

}  // namespace flatnet::obs

#endif  // FLATNET_OBS_CAMPAIGN_H_
