#include "obs/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

#include "obs/recorder.h"
#include "util/env.h"
#include "util/strings.h"

namespace flatnet::obs {
namespace {

constexpr int kLevelCount = 6;
const char* kLevelNames[kLevelCount] = {"trace", "debug", "info", "warn", "error", "off"};
const char* kLevelTags[kLevelCount] = {"T", "D", "I", "W", "E", "-"};

LogLevel EnvLogLevel() {
  static const LogLevel level = [] {
    auto env = GetEnv("FLATNET_LOG");
    if (!env) return LogLevel::kInfo;
    if (auto parsed = ParseLogLevel(*env)) return *parsed;
    std::fprintf(stderr, "[flatnet] ignoring unrecognized FLATNET_LOG=%s\n", env->c_str());
    return LogLevel::kInfo;
  }();
  return level;
}

// -1 == no programmatic override.
std::atomic<int> g_level_override{-1};

std::mutex& SinkMutex() {
  static std::mutex mu;
  return mu;
}

LogSink& TestSink() {
  static LogSink sink;
  return sink;
}

std::FILE* LogFile() {
  static std::FILE* file = []() -> std::FILE* {
    auto path = GetEnv("FLATNET_LOG_FILE");
    if (!path) return nullptr;
    std::FILE* f = std::fopen(path->c_str(), "a");
    if (f == nullptr) {
      std::fprintf(stderr, "[flatnet] cannot open FLATNET_LOG_FILE=%s\n", path->c_str());
    }
    return f;
  }();
  return file;
}

double UptimeSeconds() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  return std::chrono::duration<double>(Clock::now() - start).count();
}

bool NeedsQuoting(std::string_view value) {
  if (value.empty()) return true;
  for (char c : value) {
    if (c == ' ' || c == '"' || c == '\\' || c == '=' || c == '\n' || c == '\t') return true;
  }
  return false;
}

void AppendValue(std::string& out, std::string_view value) {
  if (!NeedsQuoting(value)) {
    out.append(value);
    return;
  }
  out.push_back('"');
  for (char c : value) {
    switch (c) {
      case '"': out.append("\\\""); break;
      case '\\': out.append("\\\\"); break;
      case '\n': out.append("\\n"); break;
      case '\t': out.append("\\t"); break;
      default: out.push_back(c);
    }
  }
  out.push_back('"');
}

}  // namespace

const char* ToString(LogLevel level) {
  auto index = static_cast<int>(level);
  if (index < 0 || index >= kLevelCount) return "?";
  return kLevelNames[index];
}

std::optional<LogLevel> ParseLogLevel(std::string_view text) {
  std::string lower = AsciiLower(text);
  for (int i = 0; i < kLevelCount; ++i) {
    if (lower == kLevelNames[i]) return static_cast<LogLevel>(i);
  }
  if (lower == "warning") return LogLevel::kWarn;
  if (lower == "none") return LogLevel::kOff;
  return std::nullopt;
}

LogLevel GetLogLevel() {
  int override = g_level_override.load(std::memory_order_relaxed);
  if (override >= 0) return static_cast<LogLevel>(override);
  return EnvLogLevel();
}

void SetLogLevel(LogLevel level) {
  g_level_override.store(static_cast<int>(level), std::memory_order_relaxed);
}

void SetLogSinkForTest(LogSink sink) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  TestSink() = std::move(sink);
}

LogLine::LogLine(LogLevel level, std::string_view component, std::string_view event)
    : enabled_(LogEnabled(level) && level < LogLevel::kOff), level_(level) {
  if (!enabled_) return;
  line_ = StrFormat("[%10.3f] %s ", UptimeSeconds(),
                    kLevelTags[static_cast<int>(level)]);
  line_.append(component);
  line_.push_back(' ');
  line_.append(event);
  if (RecorderEnabled()) {
    char name[kRecorderNameCapacity];
    std::snprintf(name, sizeof(name), "log:%.*s.%.*s", static_cast<int>(component.size()),
                  component.data(), static_cast<int>(event.size()), event.data());
    RecordEvent(name, static_cast<std::uint64_t>(level));
  }
}

LogLine& LogLine::Kv(std::string_view key, std::string_view value) {
  if (!enabled_) return *this;
  line_.push_back(' ');
  line_.append(key);
  line_.push_back('=');
  AppendValue(line_, value);
  return *this;
}

LogLine& LogLine::Kv(std::string_view key, double value) {
  if (!enabled_) return *this;
  return Kv(key, std::string_view(StrFormat("%.6g", value)));
}

LogLine& LogLine::Kv(std::string_view key, std::uint64_t value) {
  if (!enabled_) return *this;
  return Kv(key, std::string_view(StrFormat("%llu", static_cast<unsigned long long>(value))));
}

LogLine& LogLine::Kv(std::string_view key, std::int64_t value) {
  if (!enabled_) return *this;
  return Kv(key, std::string_view(StrFormat("%lld", static_cast<long long>(value))));
}

LogLine::~LogLine() {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(SinkMutex());
  if (TestSink()) {
    TestSink()(level_, line_);
    return;
  }
  line_.push_back('\n');
  std::fwrite(line_.data(), 1, line_.size(), stderr);
  if (std::FILE* file = LogFile()) {
    std::fwrite(line_.data(), 1, line_.size(), file);
    std::fflush(file);
  }
}

}  // namespace flatnet::obs
