// Shared routing-policy vocabulary for the propagation engine.
//
// The model is Gao-Rexford: an AS prefers customer-learned routes over
// peer-learned over provider-learned, breaks the remaining tie on AS-path
// length, and keeps *all* routes tied for best (the paper propagates ties
// without breaking them). Export follows valley-free rules: routes learned
// from customers (and own prefixes) are exported to everyone; routes
// learned from peers or providers are exported only to customers.
#ifndef FLATNET_BGP_POLICY_H_
#define FLATNET_BGP_POLICY_H_

#include <cstdint>
#include <optional>

#include "asgraph/as_graph.h"
#include "util/bitset.h"
#include "util/cancel.h"

namespace flatnet::obs {
class RequestTrace;
}  // namespace flatnet::obs

namespace flatnet {

// Route preference classes, most preferred first. kOrigin marks the
// announcing AS itself.
enum class RouteClass : std::uint8_t {
  kOrigin = 0,
  kCustomer = 1,
  kPeer = 2,
  kProvider = 3,
  kNone = 4,
};

const char* ToString(RouteClass cls);

// AS-path length in AS hops from the origin (origin itself = 0).
using PathLength = std::uint16_t;
inline constexpr PathLength kInfLength = 0xffff;

// One announcement entering the propagation. base_length > 0 models a route
// *leak*: the leaker re-announces a route it learned over a path of that
// length, so its export competes as if it were base_length hops from the
// true origin.
struct AnnouncementSource {
  AsId node = kInvalidAsId;
  PathLength base_length = 0;
  // When set, only these direct neighbors receive the announcement (e.g.
  // "announce only to Tier-1s, Tier-2s, and providers"). Unset = all
  // neighbors.
  std::optional<Bitset> allowed_neighbors;
};

// Peer-locking semantics. The IMC paper's original results filtered leaked
// routes only on sessions *directly* with the misconfigured AS; the
// published erratum corrects this — a locking AS must discard the
// protected prefix from every neighbor except the protected origin, so a
// leak can never transit a locking AS even after laundering through a
// non-locking intermediary. Both modes are implemented so the erratum's
// effect is measurable (see bench_ablation_peerlock).
enum class PeerLockMode : std::uint8_t {
  kFull,        // erratum semantics (default)
  kDirectOnly,  // pre-erratum: only direct announcements are filtered
};

// Subgraph restriction and defensive filtering applied during propagation.
struct PropagationOptions {
  // Nodes removed from the subgraph: they neither receive nor forward
  // (implements reach(o, I \ X)).
  const Bitset* excluded = nullptr;

  // Peer locking (NTT-style): a locked AS accepts routes for the protected
  // prefix only when received directly from `protected_origin` (kFull), or
  // merely refuses announcements arriving straight from ASes in
  // `lock_filtered_senders` (kDirectOnly — the pre-erratum behaviour).
  const Bitset* peer_locked = nullptr;
  AsId protected_origin = kInvalidAsId;
  PeerLockMode lock_mode = PeerLockMode::kFull;
  // kDirectOnly: the senders a locking AS refuses (the leakers).
  const Bitset* lock_filtered_senders = nullptr;

  // When set, the propagation engines poll this token at phase boundaries
  // and abandon the computation with CancelledError once it expires —
  // request deadlines and shutdown drains in long-lived services (serve/)
  // ride on this.
  const CancelToken* cancel = nullptr;

  // When set, the phase engine marks each propagation phase
  // ("propagation.customer" / ".peer" / ".provider") on this per-request
  // timeline (obs/reqtrace.h) so serve responses can attribute latency to
  // individual phases. Null (the default) records nothing and costs one
  // branch per phase. Must outlive the computation.
  obs::RequestTrace* trace = nullptr;
};

// True when `receiver` must discard an announcement arriving from `sender`
// under `options` (exclusion or peer-lock filter). This predicate is the
// single definition of the filtering semantics: both the phase engine
// (propagation.cc) and the message-level engine (event_engine.cc) apply it
// edge-by-edge, so the differential oracle in src/check compares the two
// *propagation* implementations rather than two copies of this test.
inline bool IsEdgeFiltered(const PropagationOptions& options, AsId receiver, AsId sender) {
  if (options.excluded != nullptr && options.excluded->Test(receiver)) return true;
  if (options.peer_locked != nullptr && options.peer_locked->Test(receiver)) {
    if (options.lock_mode == PeerLockMode::kFull) {
      return sender != options.protected_origin;
    }
    // Pre-erratum: the lock only drops announcements arriving directly from
    // a filtered sender (the misconfigured AS); relayed copies slip through.
    return options.lock_filtered_senders != nullptr &&
           options.lock_filtered_senders->Test(sender);
  }
  return false;
}

}  // namespace flatnet

#endif  // FLATNET_BGP_POLICY_H_
