#include "bgp/gao.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/error.h"

namespace flatnet {
namespace {

std::uint64_t PairKey(AsId a, AsId b) {
  if (a > b) std::swap(a, b);
  return (std::uint64_t{a} << 32) | b;
}

}  // namespace

GaoResult InferRelationshipsGao(const RibDump& dump, const AsGraph& truth,
                                const GaoOptions& options) {
  std::size_t n = truth.num_ases();

  // Phase 1: degree as seen in the paths.
  std::vector<std::uint32_t> degree(n, 0);
  std::unordered_set<std::uint64_t> observed_links;
  for (const AsPath& path : dump.paths) {
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      if (observed_links.insert(PairKey(path[i], path[i + 1])).second) {
        ++degree[path[i]];
        ++degree[path[i + 1]];
      }
    }
  }

  // Which ASes ever transit (appear as a non-endpoint of some path)? An AS
  // that never transits but has a large degree is an edge hypergiant whose
  // links are peerings, not provider links — Gao's degree-ratio heuristic.
  std::vector<bool> transits(n, false);
  for (const AsPath& path : dump.paths) {
    for (std::size_t i = 1; i + 1 < path.size(); ++i) transits[path[i]] = true;
  }

  // Phase 2: transit votes. transit[(a,b)] counts paths where b acts as a's
  // provider (a is on the uphill side towards the top, or b is the top's
  // downhill neighbor seen from the other direction).
  std::unordered_map<std::uint64_t, std::uint32_t> votes_up;    // low->high id direction
  std::unordered_map<std::uint64_t, std::uint32_t> votes_down;  // high->low id direction
  auto vote = [&](AsId customer, AsId provider) {
    std::uint64_t key = PairKey(customer, provider);
    if (customer < provider) {
      ++votes_up[key];
    } else {
      ++votes_down[key];
    }
  };

  for (const AsPath& path : dump.paths) {
    if (path.size() < 2) continue;
    // Top provider: highest observed degree on the path.
    std::size_t top = 0;
    for (std::size_t i = 1; i < path.size(); ++i) {
      if (degree[path[i]] > degree[path[top]]) top = i;
    }
    // Paths are monitor-first, origin-last; the announcement travelled
    // origin -> monitor. Between origin and top the announcement climbed
    // (provider chains towards the path position `top`); after top it
    // descended. Viewed in path order: for i < top, path[i] learned from
    // path[i+1]'s export downhill => path[i+1] is closer to top => provider
    // of path[i]... up to the top; beyond top the roles flip.
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      if (i < top) {
        vote(path[i], path[i + 1]);  // path[i+1] transits for path[i]
      } else {
        vote(path[i + 1], path[i]);
      }
    }
  }

  // Classify observed edges.
  AsGraphBuilder builder;
  for (AsId id = 0; id < n; ++id) {
    if (degree[id] > 0) builder.AddAs(truth.AsnOf(id));
  }

  GaoResult result;
  for (std::uint64_t key : observed_links) {
    auto low = static_cast<AsId>(key >> 32);
    auto high = static_cast<AsId>(key & 0xffffffffu);
    std::uint32_t up = 0;
    std::uint32_t down = 0;
    if (auto it = votes_up.find(key); it != votes_up.end()) up = it->second;
    if (auto it = votes_down.find(key); it != votes_down.end()) down = it->second;

    EdgeType inferred_type;
    AsId provider = low;
    AsId customer = high;
    bool ambiguous = up <= options.sibling_vote_threshold &&
                     down <= options.sibling_vote_threshold;
    bool balanced = up > 0 && down > 0 &&
                    std::max(up, down) < 2 * std::min(up, down);
    double dlow = std::max<std::uint32_t>(degree[low], 1);
    double dhigh = std::max<std::uint32_t>(degree[high], 1);
    double ratio = std::max(dlow, dhigh) / std::min(dlow, dhigh);
    // Hypergiant peering: a non-transiting endpoint with a large degree
    // that rivals (or dwarfs) its neighbor's is a peering content/cloud
    // network, not a customer — the one-directional votes against it are
    // artifacts of it sitting at the end of every path. No customer has a
    // much larger degree than its provider.
    constexpr double kHypergiantDegreeFloor = 20.0;
    bool stub_peer = (!transits[low] && dlow >= kHypergiantDegreeFloor &&
                      dlow > 0.5 * dhigh) ||
                     (!transits[high] && dhigh >= kHypergiantDegreeFloor &&
                      dhigh > 0.5 * dlow);
    if (stub_peer || ((ambiguous || balanced) && ratio < options.peer_degree_ratio)) {
      inferred_type = EdgeType::kP2P;
    } else if (up >= down) {
      // votes_up counted (customer=low, provider=high).
      inferred_type = EdgeType::kP2C;
      provider = high;
      customer = low;
    } else {
      inferred_type = EdgeType::kP2C;
      provider = low;
      customer = high;
    }

    if (inferred_type == EdgeType::kP2P) {
      builder.AddEdge(truth.AsnOf(low), truth.AsnOf(high), EdgeType::kP2P);
    } else {
      builder.AddEdge(truth.AsnOf(provider), truth.AsnOf(customer), EdgeType::kP2C);
    }
    ++result.observed_edges;

    // Score against ground truth.
    auto true_rel = truth.RelationshipBetween(low, high);  // high from low's view
    if (!true_rel) {
      ++result.misclassified;  // a link that does not exist (cannot happen
                               // with simulated paths, but be safe)
      continue;
    }
    if (*true_rel == Relationship::kPeer) {
      ++result.observed_true_p2p;
      inferred_type == EdgeType::kP2P ? ++result.correct_p2p : ++result.misclassified;
    } else {
      ++result.observed_true_p2c;
      bool truth_low_is_provider = (*true_rel == Relationship::kCustomer);
      bool inferred_correctly = inferred_type == EdgeType::kP2C &&
                                ((truth_low_is_provider && provider == low) ||
                                 (!truth_low_is_provider && provider == high));
      inferred_correctly ? ++result.correct_p2c : ++result.misclassified;
    }
  }

  // Coverage: ground-truth edges never observed on any path.
  for (const AsGraph::Edge& e : truth.EdgeList()) {
    AsId a = *truth.IdOf(e.a);
    AsId b = *truth.IdOf(e.b);
    if (!observed_links.contains(PairKey(a, b))) {
      ++result.missing_edges;
      e.type == EdgeType::kP2P ? ++result.missing_p2p : ++result.missing_p2c;
    }
  }

  result.inferred = std::move(builder).Build();
  return result;
}

}  // namespace flatnet
