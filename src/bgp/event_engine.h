// Event-driven, message-passing BGP simulation for a single prefix.
//
// Where the phase engine (propagation.h) computes the converged outcome
// directly, this engine actually exchanges UPDATE/WITHDRAW messages between
// per-AS RIBs: each AS keeps an Adj-RIB-In per neighbor, selects a single
// best route (Gao-Rexford preference, then AS-path length, then lowest
// neighbor ASN — a deterministic router-like tie-break), and re-announces
// on change under valley-free export rules. Gao-Rexford policies are
// provably convergent, so FIFO processing always reaches a fixed point.
//
// The two engines cross-validate each other (their class/length outcomes
// must agree — see bgp_test), and the event engine additionally supports
// dynamics the closed form cannot: withdrawals, link failures, and
// message-churn accounting.
#ifndef FLATNET_BGP_EVENT_ENGINE_H_
#define FLATNET_BGP_EVENT_ENGINE_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "asgraph/as_graph.h"
#include "bgp/policy.h"

namespace flatnet {

struct RibRoute {
  RouteClass cls = RouteClass::kNone;
  // AS path, next hop first, origin last (excludes the route's holder).
  std::vector<AsId> path;

  std::uint16_t Length() const { return static_cast<std::uint16_t>(path.size()); }
};

class EventBgpEngine {
 public:
  // `options` applies the same defensive filtering the phase engine honors
  // (exclusion sets and peer locking, evaluated per received message via
  // IsEdgeFiltered). Any Bitsets the options point at must outlive the
  // engine; the default is unfiltered propagation.
  explicit EventBgpEngine(const AsGraph& graph, const PropagationOptions& options = {});

  // Originates the prefix at `origin` and processes messages to
  // convergence. Only one prefix may be live at a time; after
  // WithdrawOrigin() the engine may originate again (same or other AS).
  void Originate(AsId origin);

  // Withdraws the origin's announcement and processes to convergence. The
  // withdrawing AS becomes a regular network again, so a later Originate
  // is legal.
  void WithdrawOrigin();

  // Fails the (a, b) link in both directions: routes learned over it are
  // withdrawn and the network re-converges. The link stays down for
  // subsequent events. Throws InvalidArgument if a and b are not adjacent.
  void FailLink(AsId a, AsId b);

  // The node's selected route (nullopt when it has none). The origin holds
  // an empty-path kOrigin route.
  const std::optional<RibRoute>& BestRoute(AsId node) const { return best_[node]; }

  std::size_t ReachedCount() const;

  // Total UPDATE/WITHDRAW messages processed since construction — the
  // churn metric for the failure experiments.
  std::size_t messages_processed() const { return messages_; }

 private:
  struct Message {
    AsId sender;
    AsId receiver;
    std::optional<RibRoute> route;  // nullopt == withdraw
  };

  void Enqueue(AsId sender, AsId receiver, const std::optional<RibRoute>& route);
  // True when `receiver` must drop a route announced by `sender`.
  bool Filtered(AsId receiver, AsId sender) const;
  void Process();
  // Re-selects `node`'s best route; announces the delta when it changed.
  void Reselect(AsId node);
  void AnnounceFrom(AsId node);
  bool LinkDown(AsId a, AsId b) const;
  // Preference order: true when `a` beats `b`.
  bool Better(AsId node, AsId via_a, const RibRoute& a, AsId via_b, const RibRoute& b) const;

  const AsGraph& graph_;
  PropagationOptions options_;
  AsId origin_ = kInvalidAsId;
  // adj_in_[node]: routes most recently announced by each neighbor.
  std::vector<std::unordered_map<AsId, RibRoute>> adj_in_;
  std::vector<std::optional<RibRoute>> best_;
  std::vector<AsId> best_via_;  // neighbor supplying the best route
  std::deque<Message> queue_;
  std::unordered_map<std::uint64_t, bool> failed_links_;
  std::size_t messages_ = 0;
};

}  // namespace flatnet

#endif  // FLATNET_BGP_EVENT_ENGINE_H_
