#include "bgp/leak.h"

#include "util/error.h"

namespace flatnet {

LeakExperiment::LeakExperiment(const AsGraph& graph, AsId victim, LeakConfig config,
                               const std::vector<double>* users)
    : graph_(graph), victim_(victim), config_(std::move(config)), users_(users) {
  if (victim >= graph.num_ases()) throw InvalidArgument("LeakExperiment: bad victim");
  if (users_ != nullptr) {
    if (users_->size() != graph.num_ases()) {
      throw InvalidArgument("LeakExperiment: users array size mismatch");
    }
    for (double u : *users_) total_users_ += u;
  }

  AnnouncementSource victim_source;
  victim_source.node = victim_;
  victim_source.allowed_neighbors = config_.victim_export;
  PropagationOptions options;
  options.cancel = config_.cancel;
  if (config_.peer_locked && config_.lock_mode == PeerLockMode::kFull) {
    // Only full locking constrains legitimate propagation; the pre-erratum
    // filter acts on the leaker alone (no leaker exists in the baseline).
    options.peer_locked = &*config_.peer_locked;
    options.protected_origin = victim_;
  }
  baseline_ = std::make_unique<RouteComputation>(graph_, std::vector{victim_source}, options);
}

bool LeakExperiment::CanLeak(AsId leaker) const {
  if (leaker >= graph_.num_ases()) {
    throw InvalidArgument("LeakExperiment::CanLeak: bad leaker");
  }
  if (leaker == victim_) return false;
  if (config_.model == LeakModel::kReannounce && !baseline_->Route(leaker).HasRoute()) {
    return false;  // nothing to leak
  }
  return true;
}

std::optional<LeakOutcome> LeakExperiment::Run(AsId leaker) const {
  LeakWorkspace workspace;
  return Run(leaker, workspace);
}

std::optional<LeakOutcome> LeakExperiment::Run(AsId leaker, LeakWorkspace& workspace) const {
  if (leaker >= graph_.num_ases()) throw InvalidArgument("LeakExperiment::Run: bad leaker");
  if (!CanLeak(leaker)) return std::nullopt;

  PathLength base = 0;
  if (config_.model == LeakModel::kReannounce) base = baseline_->Route(leaker).length;

  AnnouncementSource victim_source;
  victim_source.node = victim_;
  victim_source.allowed_neighbors = config_.victim_export;

  AnnouncementSource leak_source;
  leak_source.node = leaker;
  leak_source.base_length = base;
  // The leak exports to every neighbor: no allowed_neighbors restriction.

  PropagationOptions options;
  options.cancel = config_.cancel;
  options.trace = config_.trace;
  if (config_.peer_locked) {
    options.peer_locked = &*config_.peer_locked;
    options.protected_origin = victim_;
    options.lock_mode = config_.lock_mode;
    if (config_.lock_mode == PeerLockMode::kDirectOnly) {
      workspace.leaker_mask_.Resize(graph_.num_ases());
      workspace.leaker_mask_.ResetAll();
      workspace.leaker_mask_.Set(leaker);
      options.lock_filtered_senders = &workspace.leaker_mask_;
    }
  }

  std::vector<AnnouncementSource> sources{victim_source, leak_source};
  // A workspace carried over from another graph cannot be recomputed in
  // place; fall back to a fresh allocation bound to this graph.
  if (workspace.joint_ != nullptr && &workspace.joint_->graph() != &graph_) {
    workspace.joint_.reset();
  }
  if (workspace.joint_ == nullptr) {
    workspace.joint_ = std::make_unique<RouteComputation>(graph_, sources, options);
  } else {
    workspace.joint_->Recompute(sources, options);
  }
  const RouteComputation& joint = *workspace.joint_;

  LeakOutcome outcome;
  outcome.leaker = leaker;
  constexpr std::uint8_t kLeakBit = 1u << 1;  // the leaker is source index 1
  std::size_t n = graph_.num_ases();
  double users_detoured = 0.0;
  for (AsId node = 0; node < n; ++node) {
    if (node == victim_ || node == leaker) continue;
    if (joint.Route(node).source_mask & kLeakBit) {
      ++outcome.detoured_count;
      if (users_ != nullptr) users_detoured += (*users_)[node];
    }
  }
  outcome.fraction_ases_detoured =
      n > 2 ? static_cast<double>(outcome.detoured_count) / static_cast<double>(n - 2) : 0.0;
  if (users_ != nullptr && total_users_ > 0.0) {
    outcome.fraction_users_detoured = users_detoured / total_users_;
  }
  return outcome;
}

}  // namespace flatnet
