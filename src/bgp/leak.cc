#include "bgp/leak.h"

#include "util/error.h"

namespace flatnet {

LeakExperiment::LeakExperiment(const AsGraph& graph, AsId victim, LeakConfig config,
                               const std::vector<double>* users)
    : graph_(graph), victim_(victim), config_(std::move(config)), users_(users) {
  if (victim >= graph.num_ases()) throw InvalidArgument("LeakExperiment: bad victim");
  if (users_ != nullptr) {
    if (users_->size() != graph.num_ases()) {
      throw InvalidArgument("LeakExperiment: users array size mismatch");
    }
    for (double u : *users_) total_users_ += u;
  }

  AnnouncementSource victim_source;
  victim_source.node = victim_;
  victim_source.allowed_neighbors = config_.victim_export;
  PropagationOptions options;
  options.cancel = config_.cancel;
  if (config_.peer_locked && config_.lock_mode == PeerLockMode::kFull) {
    // Only full locking constrains legitimate propagation; the pre-erratum
    // filter acts on the leaker alone (no leaker exists in the baseline).
    options.peer_locked = &*config_.peer_locked;
    options.protected_origin = victim_;
  }
  baseline_ = std::make_unique<RouteComputation>(graph_, std::vector{victim_source}, options);
}

std::optional<LeakOutcome> LeakExperiment::Run(AsId leaker) const {
  if (leaker >= graph_.num_ases()) throw InvalidArgument("LeakExperiment::Run: bad leaker");
  if (leaker == victim_) return std::nullopt;

  PathLength base = 0;
  if (config_.model == LeakModel::kReannounce) {
    const RouteEntry& entry = baseline_->Route(leaker);
    if (!entry.HasRoute()) return std::nullopt;  // nothing to leak
    base = entry.length;
  }

  AnnouncementSource victim_source;
  victim_source.node = victim_;
  victim_source.allowed_neighbors = config_.victim_export;

  AnnouncementSource leak_source;
  leak_source.node = leaker;
  leak_source.base_length = base;
  // The leak exports to every neighbor: no allowed_neighbors restriction.

  PropagationOptions options;
  options.cancel = config_.cancel;
  Bitset leaker_mask;
  if (config_.peer_locked) {
    options.peer_locked = &*config_.peer_locked;
    options.protected_origin = victim_;
    options.lock_mode = config_.lock_mode;
    if (config_.lock_mode == PeerLockMode::kDirectOnly) {
      leaker_mask.Resize(graph_.num_ases());
      leaker_mask.Set(leaker);
      options.lock_filtered_senders = &leaker_mask;
    }
  }

  RouteComputation joint(graph_, {victim_source, leak_source}, options);

  LeakOutcome outcome;
  outcome.leaker = leaker;
  constexpr std::uint8_t kLeakBit = 1u << 1;  // the leaker is source index 1
  std::size_t n = graph_.num_ases();
  double users_detoured = 0.0;
  for (AsId node = 0; node < n; ++node) {
    if (node == victim_ || node == leaker) continue;
    if (joint.Route(node).source_mask & kLeakBit) {
      ++outcome.detoured_count;
      if (users_ != nullptr) users_detoured += (*users_)[node];
    }
  }
  outcome.fraction_ases_detoured =
      n > 2 ? static_cast<double>(outcome.detoured_count) / static_cast<double>(n - 2) : 0.0;
  if (users_ != nullptr && total_users_ > 0.0) {
    outcome.fraction_users_detoured = users_detoured / total_users_;
  }
  return outcome;
}

}  // namespace flatnet
