#include "bgp/monitors.h"

#include <algorithm>

#include "bgp/propagation.h"
#include "util/error.h"

namespace flatnet {

RibDump CollectRibs(const AsGraph& graph, const std::vector<AsId>& monitors,
                    const RibCollectionOptions& options) {
  if (monitors.empty()) throw InvalidArgument("CollectRibs: no monitors");
  Rng rng(options.seed);
  RibDump dump;
  dump.monitors = monitors;

  for (AsId origin = 0; origin < graph.num_ases(); ++origin) {
    if (options.origin_fraction < 1.0 && !rng.Bernoulli(options.origin_fraction)) continue;
    ++dump.origins_sampled;
    AnnouncementSource source{.node = origin};
    RouteComputation computation(graph, {source});
    for (AsId monitor : monitors) {
      if (monitor == origin || !computation.Route(monitor).HasRoute()) continue;
      if (options.max_paths_per_pair <= 1) {
        dump.paths.push_back(DeterministicBestPath(computation, monitor));
      } else {
        auto paths = EnumerateBestPaths(computation, monitor, options.max_paths_per_pair);
        dump.paths.insert(dump.paths.end(), paths.begin(), paths.end());
      }
    }
  }
  return dump;
}

std::vector<AsId> DefaultMonitorPlacement(const AsGraph& graph, std::size_t count,
                                          std::uint64_t seed) {
  Rng rng(seed);
  std::vector<AsId> monitors;
  // Half the collectors peer with large transit ASes (pick the customers of
  // the highest-degree nodes), half are random volunteers.
  std::vector<AsId> order(graph.num_ases());
  for (AsId id = 0; id < graph.num_ases(); ++id) order[id] = id;
  std::sort(order.begin(), order.end(), [&](AsId a, AsId b) {
    return graph.CustomerCount(a) > graph.CustomerCount(b);
  });
  std::size_t transit_monitors = count / 2;
  for (std::size_t i = 0; i < transit_monitors && i < order.size(); ++i) {
    auto customers = graph.Customers(order[i]);
    if (customers.empty()) continue;
    monitors.push_back(customers[rng.UniformU64(customers.size())].id);
  }
  while (monitors.size() < count) {
    monitors.push_back(static_cast<AsId>(rng.UniformU64(graph.num_ases())));
  }
  std::sort(monitors.begin(), monitors.end());
  monitors.erase(std::unique(monitors.begin(), monitors.end()), monitors.end());
  return monitors;
}

}  // namespace flatnet
