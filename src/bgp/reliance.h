// Reliance (§7.1): rely(o, a) = Σ_t σ_t(a)/σ_t, where σ_t is the number of
// best paths network t holds towards origin o (ties unbroken) and σ_t(a)
// counts those passing through a. The t = a term contributes 1 for every
// reachable a, which reproduces the paper's two calibration extremes: in a
// full mesh every AS has reliance exactly 1 on every other AS, and in a
// pure hierarchy an AS relies on its sole transit provider for the entire
// Internet.
//
// Computed with Brandes-style dependency accumulation over the tied-best
// predecessor DAG in O(V + E); path counts use doubles because the number
// of tied paths grows combinatorially while only ratios matter.
#ifndef FLATNET_BGP_RELIANCE_H_
#define FLATNET_BGP_RELIANCE_H_

#include <vector>

#include "bgp/propagation.h"

namespace flatnet {

struct RelianceResult {
  // rely(o, a) per AsId; 0 for the origin itself and unreachable ASes.
  std::vector<double> reliance;
  // Number of tied-best paths from each AS to the origin (0 if unreachable).
  std::vector<double> path_counts;
};

// `computation` must have exactly one source (the origin).
RelianceResult ComputeReliance(const RouteComputation& computation);

}  // namespace flatnet

#endif  // FLATNET_BGP_RELIANCE_H_
