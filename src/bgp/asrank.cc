#include "bgp/asrank.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

#include "util/error.h"

namespace flatnet {
namespace {

std::uint64_t PairKey(AsId a, AsId b) {
  if (a > b) std::swap(a, b);
  return (std::uint64_t{a} << 32) | b;
}

}  // namespace

GaoResult InferRelationshipsAsRank(const RibDump& dump, const AsGraph& truth,
                                   const AsRankOptions& options) {
  std::size_t n = truth.num_ases();

  // Transit degree from the paths: unique neighbors adjacent to an AS while
  // it sits in the middle of a path (AS-Rank's ranking signal).
  std::unordered_set<std::uint64_t> transit_pairs;  // (middle AS, neighbor)
  std::vector<std::uint32_t> transit_degree(n, 0);
  std::unordered_set<std::uint64_t> observed_links;
  for (const AsPath& path : dump.paths) {
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      observed_links.insert(PairKey(path[i], path[i + 1]));
    }
    for (std::size_t i = 1; i + 1 < path.size(); ++i) {
      for (AsId nb : {path[i - 1], path[i + 1]}) {
        if (transit_pairs.insert((std::uint64_t{path[i]} << 32) | nb).second) {
          ++transit_degree[path[i]];
        }
      }
    }
  }

  // Stage 1 (Gao-style pass): provisional votes oriented at the
  // transit-degree apex, used only to detect which ASes clearly have
  // transit *providers* — a Tier-1 never appears below anyone, while even
  // the busiest mid transit shows up under its providers on many paths.
  // Only votes whose alleged customer sits in the *middle* of a path count
  // towards provider detection: a genuine transit climbs through its
  // providers while carrying someone else's traffic, whereas a Tier-1 (or
  // an origin hypergiant) only ever appears at a path's end, where apex
  // misorientation produces bogus customer votes.
  std::unordered_map<AsId, std::uint32_t> intermediate_customer_votes;
  for (const AsPath& path : dump.paths) {
    if (path.size() < 2) continue;
    std::size_t apex = 0;
    for (std::size_t i = 1; i < path.size(); ++i) {
      if (transit_degree[path[i]] > transit_degree[path[apex]]) apex = i;
    }
    // Monitor-side ascent only, skipping the monitor itself and the edge
    // adjacent to the apex (which may be the path's one peer link — e.g.
    // two clique members side by side).
    for (std::size_t i = 1; i + 1 < apex; ++i) {
      ++intermediate_customer_votes[path[i]];
    }
  }
  std::vector<bool> has_provider(n, false);
  for (const auto& [node, count] : intermediate_customer_votes) {
    if (count >= 2) has_provider[node] = true;
  }

  // Clique inference: greedy mutual-adjacency growth over the top transit
  // degrees, restricted to provider-free candidates (AS-Rank's clique is
  // exactly the transit-free apex).
  std::vector<AsId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](AsId a, AsId b) { return transit_degree[a] > transit_degree[b]; });
  std::vector<AsId> clique;
  std::vector<bool> in_clique(n, false);
  std::size_t considered = 0;
  for (std::size_t i = 0; i < n && considered < options.clique_candidates &&
                          clique.size() < options.max_clique_size;
       ++i) {
    AsId candidate = order[i];
    if (transit_degree[candidate] == 0) break;
    if (has_provider[candidate]) continue;
    ++considered;
    // The core of the clique (the first few members) must be fully
    // inter-adjacent; beyond that, monitors only observe a subset of the
    // mutual mesh, so later members need adjacency to most of the core
    // (AS-Rank similarly tolerates missing links).
    constexpr std::size_t kStrictCore = 6;
    std::size_t adjacent = 0;
    for (AsId member : clique) {
      if (observed_links.contains(PairKey(candidate, member))) ++adjacent;
    }
    bool admit = clique.size() < kStrictCore ? adjacent == clique.size()
                                             : 3 * adjacent >= 2 * clique.size();
    if (admit) {
      clique.push_back(candidate);
      in_clique[candidate] = true;
    }
  }

  // Votes, oriented at the clique span (or the transit-degree apex).
  std::unordered_map<std::uint64_t, std::uint32_t> votes_up;    // customer = lower id
  std::unordered_map<std::uint64_t, std::uint32_t> votes_down;  // customer = higher id
  auto vote = [&](AsId customer, AsId provider) {
    std::uint64_t key = PairKey(customer, provider);
    (customer < provider ? votes_up[key] : votes_down[key])++;
  };
  for (const AsPath& path : dump.paths) {
    if (path.size() < 2) continue;
    std::size_t first = path.size();
    std::size_t last = path.size();
    for (std::size_t i = 0; i < path.size(); ++i) {
      if (in_clique[path[i]]) {
        if (first == path.size()) first = i;
        last = i;
      }
    }
    if (first == path.size()) {
      // No clique member: orient at the transit-degree apex.
      std::size_t apex = 0;
      for (std::size_t i = 1; i < path.size(); ++i) {
        if (transit_degree[path[i]] > transit_degree[path[apex]]) apex = i;
      }
      first = last = apex;
    }
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      if (i < first) {
        vote(path[i], path[i + 1]);
      } else if (i >= last) {
        vote(path[i + 1], path[i]);
      }
      // Links within the clique span carry no transit votes.
    }
  }

  // Classification: clique pairs are p2p; dominant transit votes make p2c;
  // everything else defaults to peering.
  AsGraphBuilder builder;
  std::vector<bool> transits(n, false);
  for (const AsPath& path : dump.paths) {
    for (std::size_t i = 1; i + 1 < path.size(); ++i) transits[path[i]] = true;
  }
  std::vector<std::uint32_t> degree(n, 0);
  for (std::uint64_t key : observed_links) {
    ++degree[static_cast<AsId>(key >> 32)];
    ++degree[static_cast<AsId>(key & 0xffffffffu)];
  }
  for (AsId id = 0; id < n; ++id) {
    if (degree[id] > 0) builder.AddAs(truth.AsnOf(id));
  }

  GaoResult result;
  for (AsId member : clique) result.clique.push_back(truth.AsnOf(member));
  for (std::uint64_t key : observed_links) {
    auto low = static_cast<AsId>(key >> 32);
    auto high = static_cast<AsId>(key & 0xffffffffu);
    std::uint32_t up = 0;
    std::uint32_t down = 0;
    if (auto it = votes_up.find(key); it != votes_up.end()) up = it->second;
    if (auto it = votes_down.find(key); it != votes_down.end()) down = it->second;

    EdgeType inferred_type = EdgeType::kP2P;
    AsId provider = low;
    // A non-transiting endpoint whose degree rivals its neighbor's is a
    // peering hypergiant (clouds/content peering with the clique) — its
    // one-directional votes are path-end artifacts, not transit.
    constexpr double kHypergiantDegreeFloor = 20.0;
    double dlow = std::max<std::uint32_t>(degree[low], 1);
    double dhigh = std::max<std::uint32_t>(degree[high], 1);
    bool hypergiant_peer = (!transits[low] && dlow >= kHypergiantDegreeFloor &&
                            dlow > 0.5 * dhigh) ||
                           (!transits[high] && dhigh >= kHypergiantDegreeFloor &&
                            dhigh > 0.5 * dlow);
    if ((in_clique[low] && in_clique[high]) || hypergiant_peer) {
      inferred_type = EdgeType::kP2P;
    } else if (up > 0 &&
               static_cast<double>(up) >= options.transit_vote_dominance *
                                              std::max<std::uint32_t>(down, 1) &&
               up > down) {
      inferred_type = EdgeType::kP2C;
      provider = high;
    } else if (down > 0 &&
               static_cast<double>(down) >= options.transit_vote_dominance *
                                                std::max<std::uint32_t>(up, 1) &&
               down > up) {
      inferred_type = EdgeType::kP2C;
      provider = low;
    }

    AsId customer = provider == low ? high : low;
    if (inferred_type == EdgeType::kP2P) {
      builder.AddEdge(truth.AsnOf(low), truth.AsnOf(high), EdgeType::kP2P);
    } else {
      builder.AddEdge(truth.AsnOf(provider), truth.AsnOf(customer), EdgeType::kP2C);
    }
    ++result.observed_edges;

    auto true_rel = truth.RelationshipBetween(low, high);
    if (!true_rel) {
      ++result.misclassified;
      continue;
    }
    if (*true_rel == Relationship::kPeer) {
      ++result.observed_true_p2p;
      inferred_type == EdgeType::kP2P ? ++result.correct_p2p : ++result.misclassified;
    } else {
      ++result.observed_true_p2c;
      bool truth_low_is_provider = (*true_rel == Relationship::kCustomer);
      bool correct = inferred_type == EdgeType::kP2C &&
                     ((truth_low_is_provider && provider == low) ||
                      (!truth_low_is_provider && provider == high));
      correct ? ++result.correct_p2c : ++result.misclassified;
    }
  }

  for (const AsGraph::Edge& e : truth.EdgeList()) {
    AsId a = *truth.IdOf(e.a);
    AsId b = *truth.IdOf(e.b);
    if (!observed_links.contains(PairKey(a, b))) {
      ++result.missing_edges;
      e.type == EdgeType::kP2P ? ++result.missing_p2p : ++result.missing_p2c;
    }
  }

  result.inferred = std::move(builder).Build();
  return result;
}

}  // namespace flatnet
