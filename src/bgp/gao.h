// AS relationship inference from observed BGP paths — Gao's classic
// algorithm (ToN 2001), the ancestor of AS-Rank and ProbLink (§2.3).
//
// Phase 1: compute node degrees from the paths; in each path the
//          highest-degree AS is the "top provider" — the path climbs to it
//          and descends after it (valley-free assumption).
// Phase 2: every uphill step votes "right transits for left" and every
//          downhill step votes the reverse; edges are classified p2c by the
//          dominant direction (both directions ≤ L votes → sibling-ish,
//          treated as peer here).
// Phase 3: edges adjacent to the top of a path whose endpoint degrees are
//          within ratio R and whose transit votes are balanced become p2p.
//
// The output is an inferred AsGraph plus an accuracy report against a
// ground-truth graph — reproducing both the strength the paper leans on
// (c2p links are inferred well) and the weakness it fights (edge peering
// that never crosses a monitor's best path simply does not exist in the
// output).
#ifndef FLATNET_BGP_GAO_H_
#define FLATNET_BGP_GAO_H_

#include <cstdint>
#include <vector>

#include "asgraph/as_graph.h"
#include "bgp/monitors.h"

namespace flatnet {

struct GaoOptions {
  // Phase-2 vote threshold L: with both directions at most L, the edge is
  // ambiguous (sibling in Gao's terms); we classify it as p2p.
  std::uint32_t sibling_vote_threshold = 1;
  // Phase-3 degree ratio R for peering candidates.
  double peer_degree_ratio = 60.0;
};

struct GaoResult {
  AsGraph inferred;  // same ASN universe as the input graph's observed ASes
  std::size_t observed_edges = 0;
  // Inferred Tier-1 clique (AS-Rank only; empty for plain Gao).
  std::vector<Asn> clique;

  // Accuracy vs ground truth, over the observed edges.
  std::size_t correct_p2c = 0;
  std::size_t correct_p2p = 0;
  std::size_t misclassified = 0;   // observed but typed wrongly
  std::size_t observed_true_p2c = 0;
  std::size_t observed_true_p2p = 0;
  std::size_t missing_edges = 0;   // in truth but never observed on a path
  std::size_t missing_p2p = 0;     // the §4.1 blind spot
  std::size_t missing_p2c = 0;

  double EdgeAccuracy() const {
    std::size_t total = correct_p2c + correct_p2p + misclassified;
    return total == 0 ? 0.0
                      : static_cast<double>(correct_p2c + correct_p2p) /
                            static_cast<double>(total);
  }
  // Per-class accuracy over observed links: Gao types c2p links very well
  // (the paper's premise) but struggles with apex peering — the historical
  // gap AS-Rank and ProbLink (§2.3) were built to close.
  double P2cAccuracy() const {
    return observed_true_p2c == 0 ? 0.0
                                  : static_cast<double>(correct_p2c) / observed_true_p2c;
  }
  double P2pAccuracy() const {
    return observed_true_p2p == 0 ? 0.0
                                  : static_cast<double>(correct_p2p) / observed_true_p2p;
  }
  double Coverage() const {
    std::size_t truth = observed_edges + missing_edges;
    return truth == 0 ? 0.0
                      : static_cast<double>(observed_edges) / static_cast<double>(truth);
  }
};

// Infers relationships from `dump` and scores them against `truth` (the
// graph the paths were simulated on).
GaoResult InferRelationshipsGao(const RibDump& dump, const AsGraph& truth,
                                const GaoOptions& options = {});

}  // namespace flatnet

#endif  // FLATNET_BGP_GAO_H_
