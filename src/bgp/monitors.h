// BGP route collectors.
//
// The CAIDA relationship datasets the paper builds on are themselves
// derived from AS paths observed at RouteViews/RIPE-RIS collector peers.
// This module reproduces that upstream step: designated monitor ASes record
// the AS path of their best route towards every origin, yielding the RIB
// dump an inference algorithm (asgraph/gao.h) consumes. Monitor placement
// drives visibility — a monitor deep in the hierarchy sees c2p chains but
// almost no edge peering, which is precisely the blind spot §4.1 works
// around.
#ifndef FLATNET_BGP_MONITORS_H_
#define FLATNET_BGP_MONITORS_H_

#include <cstdint>
#include <vector>

#include "asgraph/as_graph.h"
#include "bgp/paths.h"
#include "util/rng.h"

namespace flatnet {

struct RibDump {
  // AS paths in BGP order: monitor first, origin last (dense ids).
  std::vector<AsPath> paths;
  std::vector<AsId> monitors;
  std::size_t origins_sampled = 0;
};

struct RibCollectionOptions {
  // Fraction of ASes whose announcements are traced (1.0 = every origin).
  double origin_fraction = 1.0;
  // Keep every tied-best path up to this bound per (monitor, origin); 1
  // records only the deterministic tie-break winner (a router's single
  // best path).
  std::size_t max_paths_per_pair = 1;
  std::uint64_t seed = 7;
};

// Collects best-path RIBs at `monitors` for announcements from every
// (sampled) origin. O(origins * (V + E)).
RibDump CollectRibs(const AsGraph& graph, const std::vector<AsId>& monitors,
                    const RibCollectionOptions& options = {});

// Typical collector-peer placement: a few monitors inside the hierarchy's
// customer cones plus a handful of edge volunteers.
std::vector<AsId> DefaultMonitorPlacement(const AsGraph& graph, std::size_t count,
                                          std::uint64_t seed);

}  // namespace flatnet

#endif  // FLATNET_BGP_MONITORS_H_
