// Fast valley-free reachability.
//
// reach(o, G): the set of ASes that receive an announcement originated at
// `o` under valley-free export rules. Computed with a two-state BFS in
// O(V + E): a node holding a customer-learned route may export to all
// neighbors ("up" state); a node holding a peer- or provider-learned route
// may export only to customers ("down" state). This is the engine behind
// provider-free, Tier-1-free, and hierarchy-free reachability (§6.1).
#ifndef FLATNET_BGP_REACHABILITY_H_
#define FLATNET_BGP_REACHABILITY_H_

#include "asgraph/as_graph.h"
#include "bgp/policy.h"
#include "util/bitset.h"

namespace flatnet {

// Returns the reachable set, origin included. Nodes in `excluded` (when
// non-null) neither receive nor forward; an excluded origin yields the
// empty set.
Bitset ReachableSet(const AsGraph& graph, AsId origin, const Bitset* excluded = nullptr);

// |ReachableSet| minus the origin itself — the paper's "number of ASes
// reachable" counts destinations only.
std::size_t ReachableCount(const AsGraph& graph, AsId origin, const Bitset* excluded = nullptr);

// Reusable workspace for sweeps over many origins: avoids reallocating the
// per-node state between calls. Not thread-safe; use one per thread.
class ReachabilityEngine {
 public:
  explicit ReachabilityEngine(const AsGraph& graph);

  // Allocates and returns a fresh reached set.
  Bitset Compute(AsId origin, const Bitset* excluded = nullptr);

  // Reuse path for tight sweep loops: fills `reached` (resized to the
  // graph when needed) without allocating once the caller recycles the
  // same bitset across calls.
  void ComputeInto(AsId origin, const Bitset* excluded, Bitset& reached);

  // Destination count only. Never materializes a reached bitset — the BFS
  // queue already holds every reached node exactly once — so a counting
  // sweep is allocation-free after the first call.
  std::size_t Count(AsId origin, const Bitset* excluded = nullptr);

 private:
  // Runs the two-state BFS; records membership into `reached` when
  // non-null (assumed sized and cleared). Returns the number of reached
  // nodes, origin included (0 when the origin is excluded).
  std::size_t RunBfs(AsId origin, const Bitset* excluded, Bitset* reached);

  const AsGraph& graph_;
  // 2 bits per node per sweep, epoch-stamped to avoid clearing.
  std::vector<std::uint32_t> up_epoch_;
  std::vector<std::uint32_t> down_epoch_;
  std::vector<AsId> queue_;
  std::uint32_t epoch_ = 0;
};

}  // namespace flatnet

#endif  // FLATNET_BGP_REACHABILITY_H_
