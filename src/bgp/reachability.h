// Fast valley-free reachability.
//
// reach(o, G): the set of ASes that receive an announcement originated at
// `o` under valley-free export rules. Computed with a two-state BFS in
// O(V + E): a node holding a customer-learned route may export to all
// neighbors ("up" state); a node holding a peer- or provider-learned route
// may export only to customers ("down" state). This is the engine behind
// provider-free, Tier-1-free, and hierarchy-free reachability (§6.1).
#ifndef FLATNET_BGP_REACHABILITY_H_
#define FLATNET_BGP_REACHABILITY_H_

#include "asgraph/as_graph.h"
#include "bgp/policy.h"
#include "util/bitset.h"
#include "util/epoch.h"

namespace flatnet {

// Returns the reachable set, origin included. Nodes in `excluded` (when
// non-null) neither receive nor forward; an excluded origin yields the
// empty set.
Bitset ReachableSet(const AsGraph& graph, AsId origin, const Bitset* excluded = nullptr);

// |ReachableSet| minus the origin itself — the paper's "number of ASes
// reachable" counts destinations only.
std::size_t ReachableCount(const AsGraph& graph, AsId origin, const Bitset* excluded = nullptr);

// Reusable workspace for sweeps over many origins: avoids reallocating the
// per-node state between calls. Not thread-safe; use one per thread.
class ReachabilityEngine {
 public:
  explicit ReachabilityEngine(const AsGraph& graph);

  // Allocates and returns a fresh reached set.
  Bitset Compute(AsId origin, const Bitset* excluded = nullptr);

  // Reuse path for tight sweep loops: fills `reached` (resized to the
  // graph when needed) without allocating once the caller recycles the
  // same bitset across calls.
  void ComputeInto(AsId origin, const Bitset* excluded, Bitset& reached);

  // Destination count only. Never materializes a reached bitset — the BFS
  // queue already holds every reached node exactly once — so a counting
  // sweep is allocation-free after the first call.
  std::size_t Count(AsId origin, const Bitset* excluded = nullptr);

  // Forces the internal epoch counter for the wraparound regression test
  // (2^32 real RunBfs calls are out of reach for a unit test).
  void SetEpochForTesting(std::uint32_t epoch) { stamps_.SetEpochForTesting(epoch); }

 private:
  // Runs the two-state BFS; when `reached` is non-null it is overwritten
  // entirely with the reach set (assumed sized to the graph). Returns the
  // number of reached nodes, origin included (0 when the origin is
  // excluded). The exclusion mask is folded into the stamp array up front
  // (excluded nodes look already-visited), so the inner loops pay one
  // epoch compare per edge and no per-bit Test.
  std::size_t RunBfs(AsId origin, const Bitset* excluded, Bitset* reached);

  const AsGraph& graph_;
  // Visited stamp per node, epoch-numbered to avoid clearing between
  // sweeps. The up/down BFS stages run strictly in sequence, so one merged
  // array serves both (stage 1 only ever sees up-state stamps). The
  // wraparound guard lives in EpochStamps::NextEpoch — shared with
  // CustomerConeSizes — so stale stamps from 2^32 calls ago can never
  // collide.
  EpochStamps stamps_;
  std::vector<AsId> queue_;
  // Static id-ordered list of nodes with at least one provider — the only
  // nodes the bottom-up down-flood ever needs to visit. Built once per
  // engine so stage 3 starts its first round without an O(n) filter pass.
  std::vector<AsId> downable_;
  // Scratch for the bottom-up down-flood: unvisited nodes still waiting
  // for a visited provider, compacted every round.
  std::vector<AsId> candidates_;
};

}  // namespace flatnet

#endif  // FLATNET_BGP_REACHABILITY_H_
