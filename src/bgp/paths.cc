#include "bgp/paths.h"

#include <algorithm>

namespace flatnet {
namespace {

void Enumerate(const RouteComputation& computation, AsId node, AsPath& current,
               std::vector<AsPath>& out, std::size_t max_paths) {
  if (out.size() >= max_paths) return;
  current.push_back(node);
  const auto& preds = computation.Predecessors(node);
  if (preds.empty()) {
    out.push_back(current);  // reached the origin
  } else {
    for (AsId pred : preds) {
      Enumerate(computation, pred, current, out, max_paths);
      if (out.size() >= max_paths) break;
    }
  }
  current.pop_back();
}

}  // namespace

std::vector<AsPath> EnumerateBestPaths(const RouteComputation& computation, AsId node,
                                       std::size_t max_paths) {
  std::vector<AsPath> out;
  if (!computation.Route(node).HasRoute()) return out;
  AsPath current;
  Enumerate(computation, node, current, out, max_paths);
  return out;
}

AsPath DeterministicBestPath(const RouteComputation& computation, AsId node) {
  AsPath path;
  if (!computation.Route(node).HasRoute()) return path;
  const AsGraph& graph = computation.graph();
  AsId cursor = node;
  while (true) {
    path.push_back(cursor);
    const auto& preds = computation.Predecessors(cursor);
    if (preds.empty()) return path;
    cursor = *std::min_element(preds.begin(), preds.end(), [&](AsId a, AsId b) {
      return graph.AsnOf(a) < graph.AsnOf(b);
    });
  }
}

AsPath SampleBestPath(const RouteComputation& computation, AsId node, Rng& rng) {
  AsPath path;
  if (!computation.Route(node).HasRoute()) return path;
  AsId cursor = node;
  while (true) {
    path.push_back(cursor);
    const auto& preds = computation.Predecessors(cursor);
    if (preds.empty()) return path;
    cursor = preds[rng.UniformU64(preds.size())];
  }
}

bool IsBestPath(const RouteComputation& computation, const AsPath& path) {
  if (path.empty()) return false;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const auto& preds = computation.Predecessors(path[i]);
    if (std::find(preds.begin(), preds.end(), path[i + 1]) == preds.end()) return false;
  }
  return computation.Predecessors(path.back()).empty() &&
         computation.Route(path.back()).cls == RouteClass::kOrigin;
}

}  // namespace flatnet
