// AS hegemony (Fontugne et al., "The (thin) Bridges of AS Connectivity"):
// per-origin centrality over the tied-best predecessor DAG.
//
// Every reachable non-origin AS is a viewpoint. Viewpoint v scores AS a
// with BC_v(a) = σ_v(a)/σ_v — the fraction of v's tied-best paths to the
// origin passing through a (BC_v(v) = 1: every path from v passes through
// v). Hegemony H(a) is the mean of BC_v(a) over viewpoints after
// discarding the top and bottom `trim` fraction of viewpoint values — the
// paper's defense against over-counting monitors parked behind one
// transit. With trim = 0 the mean is exact and ties back to reliance
// (bgp/reliance.h): H(a) * num_viewpoints == rely(o, a), which the
// invariant checks in src/check/invariants.cc pin.
//
// Computed without materializing the V×V viewpoint matrix: one forward
// σ pass (shared with reliance), then per viewpoint a reverse path-count
// accumulation restricted to the viewpoint's ancestor cone, appending
// only nonzero fractions to each AS's value list. Zeros are implicit, so
// memory is O(total ancestor-cone size), not O(V²).
#ifndef FLATNET_BGP_HEGEMONY_H_
#define FLATNET_BGP_HEGEMONY_H_

#include <cstddef>
#include <vector>

#include "bgp/propagation.h"

namespace flatnet {

struct HegemonyOptions {
  // Fraction of viewpoints discarded at EACH end before averaging.
  // Must be in [0, 0.5); 0.1 is the paper's choice. When the campaign is
  // small the count floor(trim * V) rounds to zero and the mean is plain.
  double trim = 0.1;
};

struct HegemonyResult {
  // H(o, a) per AsId; 0 for the origin itself and unreachable ASes.
  std::vector<double> hegemony;
  // Viewpoints scored: reachable non-origin ASes.
  std::size_t num_viewpoints = 0;
  // Viewpoint values dropped at each end of every AS's distribution.
  std::size_t trimmed_each_end = 0;
};

// `computation` must have exactly one source (the origin). Throws
// InvalidArgument on a multi-source computation or trim outside [0, 0.5).
HegemonyResult ComputeHegemony(const RouteComputation& computation,
                               const HegemonyOptions& options = {});

// Descending-hegemony ranking of the ASes with a positive score, ties
// broken by ascending AsId — the knockout order used by failure-cascade
// campaigns and the `hegemony` serve op.
std::vector<AsId> HegemonyRanking(const HegemonyResult& result);

}  // namespace flatnet

#endif  // FLATNET_BGP_HEGEMONY_H_
