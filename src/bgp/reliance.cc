#include "bgp/reliance.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/error.h"

namespace flatnet {

RelianceResult ComputeReliance(const RouteComputation& computation) {
  if (computation.num_sources() != 1) {
    throw InvalidArgument("ComputeReliance: requires a single-origin computation");
  }
  obs::TraceSpan span("bgp.reliance");
  static obs::Counter& computes = obs::GetCounter("reliance.computes");
  computes.Increment();
  std::size_t n = computation.graph().num_ases();
  const std::vector<AsId>& order = computation.NodesByLength();

  RelianceResult result;
  result.path_counts.assign(n, 0.0);
  result.reliance.assign(n, 0.0);
  std::vector<double> dependency(n, 0.0);

  // Forward pass (ascending length): σ(v) = Σ σ(pred). The origin is the
  // first element of `order` (length 0) with σ = 1.
  for (AsId node : order) {
    const auto& preds = computation.Predecessors(node);
    if (preds.empty()) {
      result.path_counts[node] = 1.0;  // the origin
      continue;
    }
    double sigma = 0.0;
    for (AsId pred : preds) sigma += result.path_counts[pred];
    result.path_counts[node] = sigma;
  }

  // Backward pass (descending length): Brandes dependency accumulation.
  // δ(p) += (σ(p)/σ(v)) * (1 + δ(v)) for every tied-best pred p of v.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    AsId node = *it;
    const auto& preds = computation.Predecessors(node);
    if (preds.empty()) continue;
    double share = (1.0 + dependency[node]) / result.path_counts[node];
    for (AsId pred : preds) {
      dependency[pred] += result.path_counts[pred] * share;
    }
  }

  // rely(a) = δ(a) + 1 (self term) for every reachable non-origin AS.
  for (AsId node : order) {
    if (computation.Predecessors(node).empty()) continue;  // origin
    result.reliance[node] = dependency[node] + 1.0;
  }
  return result;
}

}  // namespace flatnet
