// Route-leak / prefix-hijack simulation (§8).
//
// A victim announces its prefix (optionally to a restricted neighbor set);
// a misconfigured AS leaks the same prefix by re-exporting its learned
// route to *all* neighbors. Both announcements compete under Gao-Rexford
// selection with unbroken ties; an AS is "detoured" when any of its
// tied-best routes leads to the leaker — the paper's worst-case convention.
//
// Leak model: the leaked route carries the leaker's legitimate AS path, so
// it enters the competition with base length = the leaker's best path
// length to the victim (computed from a victim-only propagation). Setting
// LeakModel::kOriginate instead models an origination hijack (base 0).
//
// Peer locking follows the erratum: a locking AS accepts the victim's
// prefix only directly from the victim, so leaked routes can never pass
// through a locking AS regardless of who re-announced them.
#ifndef FLATNET_BGP_LEAK_H_
#define FLATNET_BGP_LEAK_H_

#include <memory>
#include <optional>
#include <vector>

#include "asgraph/as_graph.h"
#include "bgp/policy.h"
#include "bgp/propagation.h"
#include "util/bitset.h"

namespace flatnet {

enum class LeakModel {
  kReannounce,  // leaked route competes with the leaker's real path length
  kOriginate,   // hijack: leaker originates the prefix (length 0)
};

struct LeakConfig {
  // Neighbors the victim announces to; nullopt = all neighbors.
  std::optional<Bitset> victim_export;
  // ASes deploying peer locking for the victim's prefixes; empty = none.
  std::optional<Bitset> peer_locked;
  // kFull = erratum semantics; kDirectOnly reproduces the original paper's
  // (under-)filtering for the ablation study.
  PeerLockMode lock_mode = PeerLockMode::kFull;
  LeakModel model = LeakModel::kReannounce;
  // Polled between propagation phases (see PropagationOptions::cancel);
  // must outlive the experiment when set.
  const CancelToken* cancel = nullptr;
  // Per-request phase timeline forwarded to the joint propagation (see
  // PropagationOptions::trace); null records nothing. Must outlive the
  // experiment when set.
  obs::RequestTrace* trace = nullptr;
};

struct LeakOutcome {
  AsId leaker = kInvalidAsId;
  // ASes whose tied-best set contains a leaked route, / (N - 2).
  double fraction_ases_detoured = 0.0;
  // Same, weighted by per-AS user population (0 when no weights given).
  double fraction_users_detoured = 0.0;
  std::size_t detoured_count = 0;
};

// Reusable per-thread scratch for repeated LeakExperiment::Run calls: the
// joint two-source propagation is recomputed in place instead of being
// reallocated per trial. Results are identical to the workspace-free
// overload; the campaign engine gives each worker thread one workspace.
class LeakWorkspace {
 public:
  LeakWorkspace() = default;

 private:
  friend class LeakExperiment;
  std::unique_ptr<RouteComputation> joint_;
  Bitset leaker_mask_;
};

// Precomputes the victim-only propagation for one (victim, config) pair and
// then evaluates leaks from arbitrary leakers against it.
class LeakExperiment {
 public:
  // `users`, when non-null, must have one entry per AS and enables the
  // user-weighted detour fraction. The pointer must outlive the experiment.
  LeakExperiment(const AsGraph& graph, AsId victim, LeakConfig config,
                 const std::vector<double>* users = nullptr);

  // Simulates a leak by `leaker`. Returns nullopt when the leaker equals
  // the victim or (in kReannounce mode) holds no route to the victim —
  // there is nothing to leak; callers should resample another leaker.
  std::optional<LeakOutcome> Run(AsId leaker) const;

  // Same, reusing `workspace` for the joint propagation state. Safe to
  // call concurrently from multiple threads with distinct workspaces (the
  // experiment itself is only read).
  std::optional<LeakOutcome> Run(AsId leaker, LeakWorkspace& workspace) const;

  // True exactly when Run(leaker) would return a value: the leaker is not
  // the victim and (under kReannounce) holds a baseline route. Used to
  // pre-draw trial assignments without paying for a propagation per
  // rejected draw.
  bool CanLeak(AsId leaker) const;

  // The victim-only computation (useful for diagnostics).
  const RouteComputation& baseline() const { return *baseline_; }

 private:
  const AsGraph& graph_;
  AsId victim_;
  LeakConfig config_;
  const std::vector<double>* users_;
  double total_users_ = 0.0;
  std::unique_ptr<RouteComputation> baseline_;
};

}  // namespace flatnet

#endif  // FLATNET_BGP_LEAK_H_
