#include "bgp/propagation.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/reqtrace.h"
#include "obs/trace.h"
#include "util/error.h"

namespace flatnet {
namespace {

const char* kClassNames[] = {"origin", "customer", "peer", "provider", "none"};

bool SourceAllows(const AnnouncementSource& source, AsId neighbor) {
  return !source.allowed_neighbors || source.allowed_neighbors->Test(neighbor);
}

// Registered once; the per-phase loops accumulate into locals and flush
// with a single relaxed increment per phase, so sweeps that run thousands
// of computations across the thread pool never contend on these lines.
struct PropagationCounters {
  obs::Counter& runs = obs::GetCounter("propagation.runs");
  obs::Counter& customer_relax = obs::GetCounter("propagation.customer.relax_ops");
  obs::Counter& peer_scan = obs::GetCounter("propagation.peer.scan_ops");
  obs::Counter& provider_relax = obs::GetCounter("propagation.provider.relax_ops");
};

PropagationCounters& Counters() {
  static PropagationCounters counters;
  return counters;
}

}  // namespace

const char* ToString(RouteClass cls) { return kClassNames[static_cast<std::size_t>(cls)]; }

RouteComputation::RouteComputation(const AsGraph& graph,
                                   const std::vector<AnnouncementSource>& sources,
                                   const PropagationOptions& options)
    : graph_(&graph),
      entries_(graph.num_ases()),
      preds_(graph.num_ases()),
      is_source_(graph.num_ases()) {
  Compute(sources, options);
}

void RouteComputation::Recompute(const std::vector<AnnouncementSource>& sources,
                                 const PropagationOptions& options) {
  entries_.assign(entries_.size(), RouteEntry{});
  for (std::vector<AsId>& preds : preds_) preds.clear();
  order_.clear();
  is_source_.ResetAll();
  Compute(sources, options);
}

void RouteComputation::Compute(const std::vector<AnnouncementSource>& sources,
                               const PropagationOptions& options) {
  num_sources_ = sources.size();
  if (sources.empty()) throw InvalidArgument("RouteComputation: no sources");
  if (sources.size() > 8) throw InvalidArgument("RouteComputation: at most 8 sources");
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const AnnouncementSource& s = sources[i];
    if (s.node >= graph_->num_ases()) {
      throw InvalidArgument("RouteComputation: bad source node");
    }
    if (is_source_.Test(s.node)) {
      throw InvalidArgument("RouteComputation: duplicate source node");
    }
    if (options.excluded != nullptr && options.excluded->Test(s.node)) {
      throw InvalidArgument("RouteComputation: source is in the excluded set");
    }
    is_source_.Set(s.node);
    entries_[s.node].cls = RouteClass::kOrigin;
    entries_[s.node].length = s.base_length;
    entries_[s.node].source_mask = static_cast<std::uint8_t>(1u << i);
  }

  obs::TraceSpan span("bgp.propagation");
  Counters().runs.Increment();
  ThrowIfCancelled(options.cancel, "bgp.propagation.customer_phase");
  RunCustomerPhase(sources, options);
  if (options.trace != nullptr) options.trace->Mark("propagation.customer");
  ThrowIfCancelled(options.cancel, "bgp.propagation.peer_phase");
  RunPeerPhase(sources, options);
  if (options.trace != nullptr) options.trace->Mark("propagation.peer");
  ThrowIfCancelled(options.cancel, "bgp.propagation.provider_phase");
  RunProviderPhase(sources, options);
  if (options.trace != nullptr) options.trace->Mark("propagation.provider");

  // Topological order of the predecessor DAG: ascending best length.
  // Counting sort over lengths.
  PathLength max_len = 0;
  std::size_t routed = 0;
  for (const RouteEntry& e : entries_) {
    if (e.HasRoute()) {
      ++routed;
      max_len = std::max(max_len, e.length);
    }
  }
  std::vector<std::uint32_t> counts(static_cast<std::size_t>(max_len) + 2, 0);
  for (const RouteEntry& e : entries_) {
    if (e.HasRoute()) ++counts[e.length + 1];
  }
  for (std::size_t i = 1; i < counts.size(); ++i) counts[i] += counts[i - 1];
  order_.resize(routed);
  for (AsId node = 0; node < entries_.size(); ++node) {
    if (entries_[node].HasRoute()) order_[counts[entries_[node].length]++] = node;
  }
}

bool RouteComputation::Filtered(AsId receiver, AsId sender,
                                const PropagationOptions& options) const {
  return IsEdgeFiltered(options, receiver, sender);
}

void RouteComputation::RunCustomerPhase(const std::vector<AnnouncementSource>& sources,
                                        const PropagationOptions& options) {
  obs::TraceSpan span("bgp.propagation.customer_phase");
  std::uint64_t relax_ops = 0;
  // dist/preds/mask live directly in entries_/preds_ : a node reached here
  // has customer class, the best possible for a non-origin.
  buckets_.clear();
  auto relax = [&](AsId node, PathLength len, AsId pred, std::uint8_t mask) {
    ++relax_ops;
    if (is_source_.Test(node)) return;
    RouteEntry& e = entries_[node];
    if (e.cls == RouteClass::kCustomer && e.length == len) {
      preds_[node].push_back(pred);
      e.source_mask |= mask;
      return;
    }
    if (e.cls != RouteClass::kCustomer || len < e.length) {
      e.cls = RouteClass::kCustomer;
      e.length = len;
      e.source_mask = mask;
      preds_[node].assign(1, pred);
      if (buckets_.size() <= len) buckets_.resize(len + 1);
      buckets_[len].push_back(node);
    }
  };

  for (std::size_t i = 0; i < sources.size(); ++i) {
    const AnnouncementSource& s = sources[i];
    auto mask = static_cast<std::uint8_t>(1u << i);
    for (const Neighbor& nb : graph_->Providers(s.node)) {
      if (!SourceAllows(s, nb.id) || Filtered(nb.id, s.node, options)) continue;
      relax(nb.id, static_cast<PathLength>(s.base_length + 1), s.node, mask);
    }
  }

  for (std::size_t len = 0; len < buckets_.size(); ++len) {
    // buckets_ may grow while iterating; index-based loop is intentional.
    for (std::size_t head = 0; head < buckets_[len].size(); ++head) {
      AsId node = buckets_[len][head];
      const RouteEntry& e = entries_[node];
      if (e.cls != RouteClass::kCustomer || e.length != len) continue;  // stale entry
      std::uint8_t mask = e.source_mask;
      for (const Neighbor& nb : graph_->Providers(node)) {
        if (Filtered(nb.id, node, options)) continue;
        relax(nb.id, static_cast<PathLength>(len + 1), node, mask);
      }
    }
  }
  Counters().customer_relax.Increment(relax_ops);
}

void RouteComputation::RunPeerPhase(const std::vector<AnnouncementSource>& sources,
                                    const PropagationOptions& options) {
  obs::TraceSpan span("bgp.propagation.peer_phase");
  std::uint64_t scan_ops = 0;
  std::size_t n = graph_->num_ases();
  for (AsId node = 0; node < n; ++node) {
    if (entries_[node].HasRoute()) continue;  // customer route or source
    if (options.excluded != nullptr && options.excluded->Test(node)) continue;
    PathLength best = kInfLength;
    std::vector<AsId> best_preds;
    std::uint8_t mask = 0;
    for (const Neighbor& nb : graph_->Peers(node)) {
      ++scan_ops;
      PathLength candidate = kInfLength;
      std::uint8_t nb_mask = 0;
      if (is_source_.Test(nb.id)) {
        // Find which source this is; with <=8 sources a linear scan is fine.
        for (std::size_t i = 0; i < sources.size(); ++i) {
          if (sources[i].node == nb.id) {
            if (!SourceAllows(sources[i], node)) break;
            candidate = static_cast<PathLength>(sources[i].base_length + 1);
            nb_mask = static_cast<std::uint8_t>(1u << i);
            break;
          }
        }
      } else if (entries_[nb.id].cls == RouteClass::kCustomer) {
        // Peers export only customer-learned routes.
        candidate = static_cast<PathLength>(entries_[nb.id].length + 1);
        nb_mask = entries_[nb.id].source_mask;
      }
      if (candidate == kInfLength || Filtered(node, nb.id, options)) continue;
      if (candidate < best) {
        best = candidate;
        best_preds.assign(1, nb.id);
        mask = nb_mask;
      } else if (candidate == best) {
        best_preds.push_back(nb.id);
        mask |= nb_mask;
      }
    }
    if (best != kInfLength) {
      entries_[node].cls = RouteClass::kPeer;
      entries_[node].length = best;
      entries_[node].source_mask = mask;
      preds_[node] = std::move(best_preds);
    }
  }
  Counters().peer_scan.Increment(scan_ops);
}

void RouteComputation::RunProviderPhase(const std::vector<AnnouncementSource>& sources,
                                        const PropagationOptions& options) {
  obs::TraceSpan span("bgp.propagation.provider_phase");
  std::uint64_t relax_ops = 0;
  std::size_t n = graph_->num_ases();
  // Provider-phase distances are tracked separately: entries_ still holds
  // the (preferred) customer/peer routes, which must not be overwritten.
  // Member scratch so Recompute pays no per-run allocation.
  provider_dist_.assign(n, kInfLength);
  provider_mask_.assign(n, 0);
  std::vector<PathLength>& dist = provider_dist_;
  std::vector<std::uint8_t>& mask = provider_mask_;
  buckets_.clear();

  auto relax = [&](AsId node, PathLength len, AsId pred, std::uint8_t m) {
    ++relax_ops;
    // Nodes that already selected a better class never adopt provider routes.
    if (is_source_.Test(node) || entries_[node].HasRoute()) return;
    if (dist[node] == len) {
      preds_[node].push_back(pred);
      mask[node] |= m;
      return;
    }
    if (len < dist[node]) {
      dist[node] = len;
      mask[node] = m;
      preds_[node].assign(1, pred);
      if (buckets_.size() <= len) buckets_.resize(len + 1);
      buckets_[len].push_back(node);
    }
  };

  // Seed: sources export to their customers...
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const AnnouncementSource& s = sources[i];
    auto m = static_cast<std::uint8_t>(1u << i);
    for (const Neighbor& nb : graph_->Customers(s.node)) {
      if (!SourceAllows(s, nb.id) || Filtered(nb.id, s.node, options)) continue;
      relax(nb.id, static_cast<PathLength>(s.base_length + 1), s.node, m);
    }
  }
  // ... and every AS with a selected (customer/peer) route exports it to its
  // customers.
  for (AsId node = 0; node < n; ++node) {
    const RouteEntry& e = entries_[node];
    if (!e.HasRoute() || e.cls == RouteClass::kOrigin) continue;
    for (const Neighbor& nb : graph_->Customers(node)) {
      if (Filtered(nb.id, node, options)) continue;
      relax(nb.id, static_cast<PathLength>(e.length + 1), node, e.source_mask);
    }
  }

  // Downward unit-weight Dijkstra: adopters relay to their own customers.
  for (std::size_t len = 0; len < buckets_.size(); ++len) {
    for (std::size_t head = 0; head < buckets_[len].size(); ++head) {
      AsId node = buckets_[len][head];
      if (dist[node] != len) continue;  // stale
      for (const Neighbor& nb : graph_->Customers(node)) {
        if (Filtered(nb.id, node, options)) continue;
        relax(nb.id, static_cast<PathLength>(len + 1), node, mask[node]);
      }
    }
  }

  for (AsId node = 0; node < n; ++node) {
    if (dist[node] != kInfLength) {
      entries_[node].cls = RouteClass::kProvider;
      entries_[node].length = dist[node];
      entries_[node].source_mask = mask[node];
    }
  }
  Counters().provider_relax.Increment(relax_ops);
}

Bitset RouteComputation::ReachedSet() const {
  Bitset reached(entries_.size());
  for (AsId node = 0; node < entries_.size(); ++node) {
    if (entries_[node].HasRoute()) reached.Set(node);
  }
  return reached;
}

std::size_t RouteComputation::ReachedCount() const {
  std::size_t count = 0;
  for (AsId node = 0; node < entries_.size(); ++node) {
    if (entries_[node].HasRoute() && !is_source_.Test(node)) ++count;
  }
  return count;
}

std::size_t RouteComputation::CountFromSource(std::size_t source_index) const {
  if (source_index >= num_sources_) {
    throw InvalidArgument("RouteComputation::CountFromSource: bad index");
  }
  auto bit = static_cast<std::uint8_t>(1u << source_index);
  std::size_t count = 0;
  for (AsId node = 0; node < entries_.size(); ++node) {
    if (!is_source_.Test(node) && (entries_[node].source_mask & bit)) ++count;
  }
  return count;
}

}  // namespace flatnet
