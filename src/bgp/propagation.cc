#include "bgp/propagation.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/reqtrace.h"
#include "obs/trace.h"
#include "util/error.h"

namespace flatnet {
namespace {

const char* kClassNames[] = {"origin", "customer", "peer", "provider", "none"};

bool SourceAllows(const AnnouncementSource& source, AsId neighbor) {
  return !source.allowed_neighbors || source.allowed_neighbors->Test(neighbor);
}

// Registered once; the per-phase loops accumulate into locals and flush
// with a single relaxed increment per phase, so sweeps that run thousands
// of computations across the thread pool never contend on these lines.
struct PropagationCounters {
  obs::Counter& runs = obs::GetCounter("propagation.runs");
  obs::Counter& customer_relax = obs::GetCounter("propagation.customer.relax_ops");
  obs::Counter& peer_scan = obs::GetCounter("propagation.peer.scan_ops");
  obs::Counter& provider_relax = obs::GetCounter("propagation.provider.relax_ops");
};

PropagationCounters& Counters() {
  static PropagationCounters counters;
  return counters;
}

}  // namespace

const char* ToString(RouteClass cls) { return kClassNames[static_cast<std::size_t>(cls)]; }

RouteComputation::RouteComputation(const AsGraph& graph,
                                   const std::vector<AnnouncementSource>& sources,
                                   const PropagationOptions& options)
    : graph_(&graph) {
  ResetState();
  Compute(sources, options);
}

void RouteComputation::Recompute(const std::vector<AnnouncementSource>& sources,
                                 const PropagationOptions& options) {
  ResetState();
  Compute(sources, options);
}

void RouteComputation::ResetState() {
  // The single audited reset (see header): construction and Recompute()
  // both run exactly ResetState() + Compute(), so a member missing here —
  // and not fully overwritten by Compute() — is a state leak between
  // recomputes. assign() reuses the existing allocations.
  std::size_t n = graph_->num_ases();
  num_sources_ = 0;
  cls_.assign(n, RouteClass::kNone);
  length_.assign(n, kInfLength);
  source_mask_.assign(n, 0);
  order_.clear();
  preds_built_ = false;
  pred_pool_.clear();
  // pred_begin_ is fully rewritten by EnsurePredecessors() when needed.
  sources_.clear();
  lock_active_ = false;
  has_lock_senders_ = false;
  // buckets_ / provider_dist_ / provider_mask_ / length_counts_ are
  // (re)initialized by the phases that use them.
}

void RouteComputation::Compute(const std::vector<AnnouncementSource>& sources,
                               const PropagationOptions& options) {
  num_sources_ = sources.size();
  if (sources.empty()) throw InvalidArgument("RouteComputation: no sources");
  if (sources.size() > 8) throw InvalidArgument("RouteComputation: at most 8 sources");
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const AnnouncementSource& s = sources[i];
    if (s.node >= graph_->num_ases()) {
      throw InvalidArgument("RouteComputation: bad source node");
    }
    if (cls_[s.node] == RouteClass::kOrigin) {
      throw InvalidArgument("RouteComputation: duplicate source node");
    }
    if (options.excluded != nullptr && options.excluded->Test(s.node)) {
      throw InvalidArgument("RouteComputation: source is in the excluded set");
    }
    cls_[s.node] = RouteClass::kOrigin;
    length_[s.node] = s.base_length;
    source_mask_[s.node] = static_cast<std::uint8_t>(1u << i);
  }

  // Snapshot what the lazy predecessor build will need once the caller's
  // option pointers are gone. Bitset copy-assign reuses capacity, so a
  // recompute loop with peer locking pays one O(n/64) copy per run.
  sources_ = sources;
  lock_active_ = options.peer_locked != nullptr;
  if (lock_active_) {
    peer_locked_snap_ = *options.peer_locked;
    lock_mode_ = options.lock_mode;
    protected_origin_ = options.protected_origin;
    has_lock_senders_ = options.lock_filtered_senders != nullptr;
    if (has_lock_senders_) lock_senders_snap_ = *options.lock_filtered_senders;
  }

  obs::TraceSpan span("bgp.propagation");
  Counters().runs.Increment();
  ThrowIfCancelled(options.cancel, "bgp.propagation.customer_phase");
  RunCustomerPhase(sources, options);
  if (options.trace != nullptr) options.trace->Mark("propagation.customer");
  ThrowIfCancelled(options.cancel, "bgp.propagation.peer_phase");
  RunPeerPhase(sources, options);
  if (options.trace != nullptr) options.trace->Mark("propagation.peer");
  ThrowIfCancelled(options.cancel, "bgp.propagation.provider_phase");
  RunProviderPhase(sources, options);
  if (options.trace != nullptr) options.trace->Mark("propagation.provider");

  // Topological order of the predecessor DAG: ascending best length.
  // Counting sort over lengths, streaming the 1-byte class array.
  std::size_t n = cls_.size();
  PathLength max_len = 0;
  std::size_t routed = 0;
  for (AsId node = 0; node < n; ++node) {
    if (cls_[node] != RouteClass::kNone) {
      ++routed;
      max_len = std::max(max_len, length_[node]);
    }
  }
  length_counts_.assign(static_cast<std::size_t>(max_len) + 2, 0);
  for (AsId node = 0; node < n; ++node) {
    if (cls_[node] != RouteClass::kNone) ++length_counts_[length_[node] + 1];
  }
  for (std::size_t i = 1; i < length_counts_.size(); ++i) {
    length_counts_[i] += length_counts_[i - 1];
  }
  order_.resize(routed);
  for (AsId node = 0; node < n; ++node) {
    if (cls_[node] != RouteClass::kNone) order_[length_counts_[length_[node]]++] = node;
  }
}

bool RouteComputation::Filtered(AsId receiver, AsId sender,
                                const PropagationOptions& options) const {
  return IsEdgeFiltered(options, receiver, sender);
}

bool RouteComputation::PredFiltered(AsId receiver, AsId sender) const {
  if (!lock_active_ || !peer_locked_snap_.Test(receiver)) return false;
  if (lock_mode_ == PeerLockMode::kFull) return sender != protected_origin_;
  return has_lock_senders_ && lock_senders_snap_.Test(sender);
}

void RouteComputation::RunCustomerPhase(const std::vector<AnnouncementSource>& sources,
                                        const PropagationOptions& options) {
  obs::TraceSpan span("bgp.propagation.customer_phase");
  std::uint64_t relax_ops = 0;
  RouteClass* cls = cls_.data();
  PathLength* length = length_.data();
  std::uint8_t* mask = source_mask_.data();
  buckets_.clear();
  // A node reached here has customer class, the best possible for a
  // non-origin; sources (kOrigin) never adopt.
  auto relax = [&](AsId node, PathLength len, std::uint8_t m) {
    ++relax_ops;
    if (cls[node] == RouteClass::kOrigin) return;
    if (cls[node] == RouteClass::kCustomer) {
      if (length[node] == len) {
        mask[node] |= m;
        return;
      }
      if (length[node] < len) return;
    }
    cls[node] = RouteClass::kCustomer;
    length[node] = len;
    mask[node] = m;
    if (buckets_.size() <= len) buckets_.resize(len + 1);
    buckets_[len].push_back(node);
  };

  for (std::size_t i = 0; i < sources.size(); ++i) {
    const AnnouncementSource& s = sources[i];
    auto m = static_cast<std::uint8_t>(1u << i);
    for (AsId nb : graph_->ProviderIds(s.node)) {
      if (!SourceAllows(s, nb) || Filtered(nb, s.node, options)) continue;
      relax(nb, static_cast<PathLength>(s.base_length + 1), m);
    }
  }

  for (std::size_t len = 0; len < buckets_.size(); ++len) {
    // buckets_ may grow while iterating; index-based loop is intentional.
    for (std::size_t head = 0; head < buckets_[len].size(); ++head) {
      AsId node = buckets_[len][head];
      if (cls[node] != RouteClass::kCustomer || length[node] != len) continue;  // stale
      std::uint8_t m = mask[node];
      for (AsId nb : graph_->ProviderIds(node)) {
        if (Filtered(nb, node, options)) continue;
        relax(nb, static_cast<PathLength>(len + 1), m);
      }
    }
  }
  Counters().customer_relax.Increment(relax_ops);
}

void RouteComputation::RunPeerPhase(const std::vector<AnnouncementSource>& sources,
                                    const PropagationOptions& options) {
  obs::TraceSpan span("bgp.propagation.peer_phase");
  std::uint64_t scan_ops = 0;
  std::size_t n = graph_->num_ases();
  RouteClass* cls = cls_.data();
  PathLength* length = length_.data();
  std::uint8_t* mask = source_mask_.data();
  // Exporter-side scan: only sources and customer-route holders export over
  // peer edges, and the customer phase leaves few of those — walking their
  // peer lists touches a fraction of the graph's peer entries compared to
  // scanning every receiver's. Receivers keep the min length and merge ties
  // exactly as the receiver-side scan did; offers only ever touch kNone /
  // kPeer nodes, so the exporter scan below never sees its own writes.
  auto offer = [&](AsId receiver, AsId exporter, PathLength cand, std::uint8_t m) {
    ++scan_ops;
    if (Filtered(receiver, exporter, options)) return;
    if (cls[receiver] == RouteClass::kNone) {
      cls[receiver] = RouteClass::kPeer;
      length[receiver] = cand;
      mask[receiver] = m;
    } else if (cls[receiver] == RouteClass::kPeer) {
      if (cand < length[receiver]) {
        length[receiver] = cand;
        mask[receiver] = m;
      } else if (cand == length[receiver]) {
        mask[receiver] |= m;
      }
    }
  };

  for (std::size_t i = 0; i < sources.size(); ++i) {
    const AnnouncementSource& s = sources[i];
    auto m = static_cast<std::uint8_t>(1u << i);
    for (AsId p : graph_->PeerIds(s.node)) {
      if (!SourceAllows(s, p)) continue;
      offer(p, s.node, static_cast<PathLength>(s.base_length + 1), m);
    }
  }
  for (AsId node = 0; node < n; ++node) {
    if (cls[node] != RouteClass::kCustomer) continue;
    // Peers export only customer-learned routes.
    auto cand = static_cast<PathLength>(length[node] + 1);
    std::uint8_t m = mask[node];
    for (AsId p : graph_->PeerIds(node)) offer(p, node, cand, m);
  }
  Counters().peer_scan.Increment(scan_ops);
}

void RouteComputation::RunProviderPhase(const std::vector<AnnouncementSource>& sources,
                                        const PropagationOptions& options) {
  obs::TraceSpan span("bgp.propagation.provider_phase");
  std::uint64_t relax_ops = 0;
  std::size_t n = graph_->num_ases();
  RouteClass* cls = cls_.data();
  PathLength* length = length_.data();
  std::uint8_t* mask = source_mask_.data();
  // Provider-phase distances are tracked separately: the route arrays still
  // hold the (preferred) customer/peer routes, which must not be
  // overwritten. Member scratch so Recompute pays no per-run allocation.
  provider_dist_.assign(n, kInfLength);
  provider_mask_.assign(n, 0);
  PathLength* dist = provider_dist_.data();
  std::uint8_t* pmask = provider_mask_.data();
  buckets_.clear();

  auto relax = [&](AsId node, PathLength len, std::uint8_t m) {
    ++relax_ops;
    // Nodes that already selected a better class (or are sources) never
    // adopt provider routes.
    if (cls[node] != RouteClass::kNone) return;
    if (dist[node] == len) {
      pmask[node] |= m;
      return;
    }
    if (len < dist[node]) {
      dist[node] = len;
      pmask[node] = m;
      if (buckets_.size() <= len) buckets_.resize(len + 1);
      buckets_[len].push_back(node);
    }
  };

  // Seed: sources export to their customers...
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const AnnouncementSource& s = sources[i];
    auto m = static_cast<std::uint8_t>(1u << i);
    for (AsId nb : graph_->CustomerIds(s.node)) {
      if (!SourceAllows(s, nb) || Filtered(nb, s.node, options)) continue;
      relax(nb, static_cast<PathLength>(s.base_length + 1), m);
    }
  }
  // ... and every AS with a selected (customer/peer) route exports it to its
  // customers.
  for (AsId node = 0; node < n; ++node) {
    if (cls[node] != RouteClass::kCustomer && cls[node] != RouteClass::kPeer) continue;
    auto len = static_cast<PathLength>(length[node] + 1);
    std::uint8_t m = mask[node];
    for (AsId nb : graph_->CustomerIds(node)) {
      if (Filtered(nb, node, options)) continue;
      relax(nb, len, m);
    }
  }

  // Downward unit-weight Dijkstra: adopters relay to their own customers.
  for (std::size_t len = 0; len < buckets_.size(); ++len) {
    for (std::size_t head = 0; head < buckets_[len].size(); ++head) {
      AsId node = buckets_[len][head];
      if (dist[node] != len) continue;  // stale
      std::uint8_t m = pmask[node];
      for (AsId nb : graph_->CustomerIds(node)) {
        if (Filtered(nb, node, options)) continue;
        relax(nb, static_cast<PathLength>(len + 1), m);
      }
    }
  }

  for (AsId node = 0; node < n; ++node) {
    if (dist[node] != kInfLength) {
      cls[node] = RouteClass::kProvider;
      length[node] = dist[node];
      mask[node] = pmask[node];
    }
  }
  Counters().provider_relax.Increment(relax_ops);
}

void RouteComputation::EnsurePredecessors() const {
  if (preds_built_) return;
  std::size_t n = graph_->num_ases();
  pred_begin_.assign(n + 1, 0);
  pred_pool_.clear();
  // A source exports its own announcement everywhere its allowed_neighbors
  // policy permits; length_[source] already holds its base length.
  auto origin_exports = [&](AsId src, AsId receiver) {
    for (const AnnouncementSource& s : sources_) {
      if (s.node == src) return SourceAllows(s, receiver);
    }
    return false;
  };
  // node's predecessors are its neighbors — in the CSR slice matching the
  // route class — exporting a route of length exactly length_[node] - 1,
  // under the same export rules the phases applied: customer routes (and
  // origins) export upward and laterally; any selected route relays
  // downward. Id-order iteration makes each node's pool range contiguous
  // with plain appends, and leaves preds sorted ascending.
  for (AsId node = 0; node < n; ++node) {
    pred_begin_[node] = static_cast<std::uint32_t>(pred_pool_.size());
    RouteClass cls = cls_[node];
    if (cls == RouteClass::kNone || cls == RouteClass::kOrigin) continue;
    int want = length_[node];
    std::span<const AsId> nbrs = cls == RouteClass::kCustomer ? graph_->CustomerIds(node)
                                 : cls == RouteClass::kPeer   ? graph_->PeerIds(node)
                                                              : graph_->ProviderIds(node);
    for (AsId p : nbrs) {
      RouteClass pc = cls_[p];
      if (pc == RouteClass::kNone || length_[p] + 1 != want) continue;
      bool exports;
      if (pc == RouteClass::kOrigin) {
        exports = origin_exports(p, node);
      } else if (cls == RouteClass::kProvider) {
        exports = true;
      } else {
        exports = pc == RouteClass::kCustomer;
      }
      if (!exports || PredFiltered(node, p)) continue;
      pred_pool_.push_back(p);
    }
  }
  pred_begin_[n] = static_cast<std::uint32_t>(pred_pool_.size());
  preds_built_ = true;
}

Bitset RouteComputation::ReachedSet() const {
  std::size_t n = cls_.size();
  Bitset reached(n);
  std::size_t words = reached.num_words();
  for (std::size_t w = 0; w < words; ++w) {
    std::size_t base = w * 64;
    std::size_t limit = std::min<std::size_t>(64, n - base);
    std::uint64_t bits = 0;
    for (std::size_t b = 0; b < limit; ++b) {
      bits |= static_cast<std::uint64_t>(cls_[base + b] != RouteClass::kNone) << b;
    }
    reached.StoreWord(w, bits);
  }
  return reached;
}

std::size_t RouteComputation::CountFromSource(std::size_t source_index) const {
  if (source_index >= num_sources_) {
    throw InvalidArgument("RouteComputation::CountFromSource: bad index");
  }
  auto bit = static_cast<std::uint8_t>(1u << source_index);
  std::size_t count = 0;
  for (AsId node = 0; node < cls_.size(); ++node) {
    if (cls_[node] != RouteClass::kOrigin && (source_mask_[node] & bit)) ++count;
  }
  return count;
}

}  // namespace flatnet
