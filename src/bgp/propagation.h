// Gao-Rexford best-route computation with unbroken ties.
//
// Given one or more announcement sources for a single prefix, computes for
// every AS the preference class and AS-path length of its best route(s),
// the set of neighbors supplying a tied-best route (a predecessor DAG
// rooted at the sources), and which sources contribute to the tied-best
// set. Selection follows the standard model (§6.1): prefer customer over
// peer over provider routes, then shortest AS path, keeping all ties.
//
// The computation runs in three phases mirroring the preference order:
//   1. customer routes — multi-source BFS "up" provider edges,
//   2. peer routes — one lateral hop off customer-route holders,
//   3. provider routes — unit-weight Dijkstra "down" customer edges seeded
//      by every AS that selected a route in phases 1-2.
// Each phase uses a bucket queue over path length, so the whole computation
// is O(V + E + maxlen).
#ifndef FLATNET_BGP_PROPAGATION_H_
#define FLATNET_BGP_PROPAGATION_H_

#include <cstdint>
#include <vector>

#include "asgraph/as_graph.h"
#include "bgp/policy.h"
#include "util/bitset.h"

namespace flatnet {

struct RouteEntry {
  RouteClass cls = RouteClass::kNone;
  PathLength length = kInfLength;
  // Bit i set: source i contributes at least one tied-best route.
  std::uint8_t source_mask = 0;

  bool HasRoute() const { return cls != RouteClass::kNone; }
};

class RouteComputation {
 public:
  // At most 8 sources (source_mask is a byte); 2 is the practical maximum
  // (victim + leaker).
  RouteComputation(const AsGraph& graph, const std::vector<AnnouncementSource>& sources,
                   const PropagationOptions& options = {});

  // Re-runs the computation for new sources/options on the same graph,
  // reusing every internal allocation (entries, predecessor lists, bucket
  // queues, provider-phase scratch). Results are identical to constructing
  // a fresh RouteComputation — the leak-campaign engine leans on this for
  // its one-workspace-per-worker trial loop.
  void Recompute(const std::vector<AnnouncementSource>& sources,
                 const PropagationOptions& options = {});

  const AsGraph& graph() const { return *graph_; }
  std::size_t num_sources() const { return num_sources_; }

  const RouteEntry& Route(AsId node) const { return entries_[node]; }

  // Neighbors of `node` supplying a tied-best route. For a node adjacent to
  // a source that received the announcement directly, the source node id
  // appears here. Empty for sources and unreachable nodes.
  const std::vector<AsId>& Predecessors(AsId node) const { return preds_[node]; }

  // Node ids with a route (sources included), sorted by ascending best
  // length — a topological order of the predecessor DAG.
  const std::vector<AsId>& NodesByLength() const { return order_; }

  // Set of nodes holding any route (sources included).
  Bitset ReachedSet() const;

  // Count of non-source nodes holding a route.
  std::size_t ReachedCount() const;

  // Count of nodes whose tied-best set includes a route from source
  // `source_index` (sources themselves excluded).
  std::size_t CountFromSource(std::size_t source_index) const;

 private:
  void Compute(const std::vector<AnnouncementSource>& sources,
               const PropagationOptions& options);
  void RunCustomerPhase(const std::vector<AnnouncementSource>& sources,
                        const PropagationOptions& options);
  void RunPeerPhase(const std::vector<AnnouncementSource>& sources,
                    const PropagationOptions& options);
  void RunProviderPhase(const std::vector<AnnouncementSource>& sources,
                        const PropagationOptions& options);

  // True when `receiver` must discard an announcement arriving from
  // `sender` (exclusion or peer-lock filter).
  bool Filtered(AsId receiver, AsId sender, const PropagationOptions& options) const;

  const AsGraph* graph_;
  std::size_t num_sources_ = 0;
  std::vector<RouteEntry> entries_;
  std::vector<std::vector<AsId>> preds_;
  std::vector<AsId> order_;
  Bitset is_source_;

  // Scratch for the bucket queues: buckets_[len] = nodes to visit at len.
  std::vector<std::vector<AsId>> buckets_;
  // Provider-phase scratch (distances/masks tracked apart from entries_,
  // which still holds the preferred customer/peer routes).
  std::vector<PathLength> provider_dist_;
  std::vector<std::uint8_t> provider_mask_;
};

}  // namespace flatnet

#endif  // FLATNET_BGP_PROPAGATION_H_
