// Gao-Rexford best-route computation with unbroken ties.
//
// Given one or more announcement sources for a single prefix, computes for
// every AS the preference class and AS-path length of its best route(s),
// the set of neighbors supplying a tied-best route (a predecessor DAG
// rooted at the sources), and which sources contribute to the tied-best
// set. Selection follows the standard model (§6.1): prefer customer over
// peer over provider routes, then shortest AS path, keeping all ties.
//
// The computation runs in three phases mirroring the preference order:
//   1. customer routes — multi-source BFS "up" provider edges,
//   2. peer routes — one lateral hop off customer-route holders,
//   3. provider routes — unit-weight Dijkstra "down" customer edges seeded
//      by every AS that selected a route in phases 1-2.
// Each phase uses a bucket queue over path length, so the whole computation
// is O(V + E + maxlen).
//
// Route state is stored structure-of-arrays (parallel class / length /
// source-mask arrays) so each relax loop streams only the fields it tests,
// and the predecessor DAG is materialized lazily into one flat CSR pool on
// the first Predecessors() call — counting sweeps never pay for it.
#ifndef FLATNET_BGP_PROPAGATION_H_
#define FLATNET_BGP_PROPAGATION_H_

#include <cstdint>
#include <span>
#include <vector>

#include "asgraph/as_graph.h"
#include "bgp/policy.h"
#include "util/bitset.h"

namespace flatnet {

struct RouteEntry {
  RouteClass cls = RouteClass::kNone;
  PathLength length = kInfLength;
  // Bit i set: source i contributes at least one tied-best route.
  std::uint8_t source_mask = 0;

  bool HasRoute() const { return cls != RouteClass::kNone; }
};

class RouteComputation {
 public:
  // At most 8 sources (source_mask is a byte); 2 is the practical maximum
  // (victim + leaker).
  RouteComputation(const AsGraph& graph, const std::vector<AnnouncementSource>& sources,
                   const PropagationOptions& options = {});

  // Re-runs the computation for new sources/options on the same graph,
  // reusing every internal allocation (route arrays, predecessor pool,
  // bucket queues, provider-phase scratch). Results are identical to
  // constructing a fresh RouteComputation — both paths run exactly
  // ResetState() + Compute() — and the leak-campaign engine leans on this
  // for its one-workspace-per-worker trial loop.
  void Recompute(const std::vector<AnnouncementSource>& sources,
                 const PropagationOptions& options = {});

  const AsGraph& graph() const { return *graph_; }
  std::size_t num_sources() const { return num_sources_; }

  RouteEntry Route(AsId node) const {
    return {cls_[node], length_[node], source_mask_[node]};
  }

  // Neighbors of `node` supplying a tied-best route, ascending by id. For a
  // node adjacent to a source that received the announcement directly, the
  // source node id appears here. Empty for sources and unreachable nodes.
  // The DAG is built lazily on the first call after a (re)computation; like
  // the computation itself, it is not safe to trigger concurrently from
  // multiple threads on the same object.
  std::span<const AsId> Predecessors(AsId node) const {
    if (!preds_built_) EnsurePredecessors();
    return {pred_pool_.data() + pred_begin_[node], pred_pool_.data() + pred_begin_[node + 1]};
  }

  // Node ids with a route (sources included), sorted by ascending best
  // length — a topological order of the predecessor DAG.
  const std::vector<AsId>& NodesByLength() const { return order_; }

  // Set of nodes holding any route (sources included).
  Bitset ReachedSet() const;

  // Count of non-source nodes holding a route.
  std::size_t ReachedCount() const { return order_.size() - num_sources_; }

  // Count of nodes whose tied-best set includes a route from source
  // `source_index` (sources themselves excluded).
  std::size_t CountFromSource(std::size_t source_index) const;

 private:
  // Resets every piece of per-computation state. This is the single audited
  // reset point: any member Compute() does not fully overwrite for every
  // node MUST be reset here, or recomputes would leak state between runs.
  void ResetState();

  void Compute(const std::vector<AnnouncementSource>& sources,
               const PropagationOptions& options);
  void RunCustomerPhase(const std::vector<AnnouncementSource>& sources,
                        const PropagationOptions& options);
  void RunPeerPhase(const std::vector<AnnouncementSource>& sources,
                    const PropagationOptions& options);
  void RunProviderPhase(const std::vector<AnnouncementSource>& sources,
                        const PropagationOptions& options);

  // Builds the flat predecessor CSR from the finished route state. A node's
  // predecessors are exactly its neighbors (in the slice matching its route
  // class) that export a route of length one less, re-applying the same
  // export and peer-lock filters the phases used.
  void EnsurePredecessors() const;

  // True when `receiver` must discard an announcement arriving from
  // `sender` (exclusion or peer-lock filter).
  bool Filtered(AsId receiver, AsId sender, const PropagationOptions& options) const;

  // Peer-lock filter replay for the lazy predecessor build. Exclusion needs
  // no snapshot — excluded nodes end the computation routeless, so they are
  // never enumerated as receivers and never match as exporters.
  bool PredFiltered(AsId receiver, AsId sender) const;

  const AsGraph* graph_;
  std::size_t num_sources_ = 0;

  // Route state, structure-of-arrays: cls_[n] / length_[n] /
  // source_mask_[n] replace an array-of-struct RouteEntry so the phase
  // loops (which mostly test class and length) stream 1- and 2-byte fields
  // instead of padded 6-byte records. Sources hold kOrigin; kOrigin is the
  // source predicate everywhere.
  std::vector<RouteClass> cls_;
  std::vector<PathLength> length_;
  std::vector<std::uint8_t> source_mask_;

  std::vector<AsId> order_;

  // Lazy predecessor DAG: preds of `node` live in
  // pred_pool_[pred_begin_[node] .. pred_begin_[node+1]). One flat pool —
  // zero per-node allocations — built on demand by EnsurePredecessors().
  mutable bool preds_built_ = false;
  mutable std::vector<std::uint32_t> pred_begin_;
  mutable std::vector<AsId> pred_pool_;

  // Owned snapshot of what the lazy predecessor build needs from the
  // options and sources (the caller's PropagationOptions pointers need not
  // outlive Compute()).
  std::vector<AnnouncementSource> sources_;
  bool lock_active_ = false;
  PeerLockMode lock_mode_ = PeerLockMode::kFull;
  AsId protected_origin_ = kInvalidAsId;
  bool has_lock_senders_ = false;
  Bitset peer_locked_snap_;
  Bitset lock_senders_snap_;

  // Scratch for the bucket queues: buckets_[len] = nodes to visit at len.
  std::vector<std::vector<AsId>> buckets_;
  // Provider-phase scratch (distances/masks tracked apart from the route
  // arrays, which still hold the preferred customer/peer routes).
  std::vector<PathLength> provider_dist_;
  std::vector<std::uint8_t> provider_mask_;
  // Counting-sort scratch for the topological order.
  std::vector<std::uint32_t> length_counts_;
};

}  // namespace flatnet

#endif  // FLATNET_BGP_PROPAGATION_H_
