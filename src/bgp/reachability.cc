#include "bgp/reachability.h"

#include "obs/metrics.h"
#include "util/error.h"

namespace flatnet {
namespace {

// Compute() runs tens of thousands of times per sweep; instrumentation is
// two relaxed increments per call, flushed after the BFS finishes.
struct ReachabilityCounters {
  obs::Counter& computes = obs::GetCounter("reachability.computes");
  obs::Counter& nodes_reached = obs::GetCounter("reachability.nodes_reached");
};

ReachabilityCounters& Counters() {
  static ReachabilityCounters counters;
  return counters;
}

}  // namespace

ReachabilityEngine::ReachabilityEngine(const AsGraph& graph)
    : graph_(graph),
      up_epoch_(graph.num_ases(), 0),
      down_epoch_(graph.num_ases(), 0) {}

std::size_t ReachabilityEngine::RunBfs(AsId origin, const Bitset* excluded,
                                       Bitset* reached) {
  std::size_t n = graph_.num_ases();
  if (origin >= n) throw InvalidArgument("ReachabilityEngine: origin out of range");
  if (excluded != nullptr && excluded->Test(origin)) return 0;

  ++epoch_;
  auto blocked = [&](AsId id) { return excluded != nullptr && excluded->Test(id); };
  auto record = [&](AsId id) {
    if (reached != nullptr) reached->Set(id);
  };

  // Stage 1: "up" state — ASes holding a customer-learned route. These form
  // the set reachable from the origin by provider edges only; each can
  // export to every neighbor. The origin behaves like an up-state node (it
  // exports its own prefix everywhere).
  queue_.clear();
  up_epoch_[origin] = epoch_;
  queue_.push_back(origin);
  record(origin);
  for (std::size_t head = 0; head < queue_.size(); ++head) {
    AsId node = queue_[head];
    for (const Neighbor& nb : graph_.Providers(node)) {
      if (blocked(nb.id) || up_epoch_[nb.id] == epoch_) continue;
      up_epoch_[nb.id] = epoch_;
      record(nb.id);
      queue_.push_back(nb.id);
    }
  }

  // Stage 2: one lateral peer step off any up-state node, then strictly
  // downward through customer edges. Seed the down queue with peers and
  // customers of every up-state node.
  std::size_t up_count = queue_.size();
  for (std::size_t head = 0; head < up_count; ++head) {
    AsId node = queue_[head];
    for (const Neighbor& nb : graph_.Peers(node)) {
      if (blocked(nb.id) || up_epoch_[nb.id] == epoch_ || down_epoch_[nb.id] == epoch_)
        continue;
      down_epoch_[nb.id] = epoch_;
      record(nb.id);
      queue_.push_back(nb.id);
    }
    for (const Neighbor& nb : graph_.Customers(node)) {
      if (blocked(nb.id) || up_epoch_[nb.id] == epoch_ || down_epoch_[nb.id] == epoch_)
        continue;
      down_epoch_[nb.id] = epoch_;
      record(nb.id);
      queue_.push_back(nb.id);
    }
  }
  for (std::size_t head = up_count; head < queue_.size(); ++head) {
    AsId node = queue_[head];
    for (const Neighbor& nb : graph_.Customers(node)) {
      if (blocked(nb.id) || up_epoch_[nb.id] == epoch_ || down_epoch_[nb.id] == epoch_)
        continue;
      down_epoch_[nb.id] = epoch_;
      record(nb.id);
      queue_.push_back(nb.id);
    }
  }
  Counters().computes.Increment();
  // Destinations only, matching Count(): the queue holds every reached node
  // exactly once, origin included.
  Counters().nodes_reached.Increment(queue_.size() - 1);
  return queue_.size();
}

Bitset ReachabilityEngine::Compute(AsId origin, const Bitset* excluded) {
  Bitset reached(graph_.num_ases());
  RunBfs(origin, excluded, &reached);
  return reached;
}

void ReachabilityEngine::ComputeInto(AsId origin, const Bitset* excluded, Bitset& reached) {
  if (reached.size() != graph_.num_ases()) {
    reached.Resize(graph_.num_ases());
  }
  reached.ResetAll();
  RunBfs(origin, excluded, &reached);
}

std::size_t ReachabilityEngine::Count(AsId origin, const Bitset* excluded) {
  std::size_t reached = RunBfs(origin, excluded, nullptr);
  return reached > 0 ? reached - 1 : 0;  // exclude the origin itself
}

Bitset ReachableSet(const AsGraph& graph, AsId origin, const Bitset* excluded) {
  ReachabilityEngine engine(graph);
  return engine.Compute(origin, excluded);
}

std::size_t ReachableCount(const AsGraph& graph, AsId origin, const Bitset* excluded) {
  ReachabilityEngine engine(graph);
  return engine.Count(origin, excluded);
}

}  // namespace flatnet
