#include "bgp/reachability.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/error.h"

namespace flatnet {
namespace {

// Compute() runs tens of thousands of times per sweep; instrumentation is
// two relaxed increments per call, flushed after the BFS finishes.
struct ReachabilityCounters {
  obs::Counter& computes = obs::GetCounter("reachability.computes");
  obs::Counter& nodes_reached = obs::GetCounter("reachability.nodes_reached");
};

ReachabilityCounters& Counters() {
  static ReachabilityCounters counters;
  return counters;
}

// How many frontier slots ahead the adjacency walk prefetches. The CSR
// slice of a frontier node is a dependent load (offset array, then the id
// array); issuing it a few nodes early hides the miss on graphs that spill
// out of cache.
constexpr std::size_t kPrefetchAhead = 4;

}  // namespace

ReachabilityEngine::ReachabilityEngine(const AsGraph& graph)
    : graph_(graph), stamps_(graph.num_ases()) {
  // The queue holds every reached node exactly once, so n slots is the
  // worst case; sizing it up front keeps the BFS free of growth checks
  // (the inner loops write through a raw cursor).
  std::size_t n = graph.num_ases();
  queue_.resize(n);
  for (AsId node = 0; node < n; ++node) {
    if (!graph.ProviderIds(node).empty()) downable_.push_back(node);
  }
  candidates_.resize(downable_.size());
}

std::size_t ReachabilityEngine::RunBfs(AsId origin, const Bitset* excluded,
                                       Bitset* reached) {
  std::size_t n = graph_.num_ases();
  if (origin >= n) throw InvalidArgument("ReachabilityEngine: origin out of range");
  if (excluded != nullptr && excluded->Test(origin)) {
    if (reached != nullptr) reached->ResetAll();
    return 0;
  }

  // NextEpoch carries the wraparound guard: 2^32 sweeps later the counter
  // would return to 0 — the value every untouched stamp still holds — and
  // the BFS would silently truncate; the guard clears the array instead.
  stamps_.NextEpoch();
  const std::uint32_t cur = stamps_.epoch();
  std::uint32_t* stamp = stamps_.data();

  // Fold the exclusion mask into the stamps (word-level ctz iteration):
  // excluded nodes look already-visited, so the per-edge loops below need
  // no exclusion test at all. They never enter the queue, so they are
  // counted nowhere and forward nothing.
  if (excluded != nullptr) {
    excluded->ForEachSet([&](std::size_t id) { stamp[id] = cur; });
  }

  AsId* q = queue_.data();
  std::size_t tail = 0;
  stamp[origin] = cur;
  q[tail++] = origin;

  // Stage 1: "up" state — ASes holding a customer-learned route. These form
  // the set reachable from the origin by provider edges only; each can
  // export to every neighbor. The origin behaves like an up-state node (it
  // exports its own prefix everywhere).
  for (std::size_t head = 0; head < tail; ++head) {
    AsId node = q[head];
    if (head + kPrefetchAhead < tail) {
      __builtin_prefetch(graph_.ProviderIds(q[head + kPrefetchAhead]).data());
    }
    for (AsId nb : graph_.ProviderIds(node)) {
      if (stamp[nb] != cur) {
        stamp[nb] = cur;
        q[tail++] = nb;
      }
    }
  }

  // Stage 2: one lateral peer step off any up-state node, then strictly
  // downward through customer edges. Seed the down queue with peers and
  // customers of every up-state node.
  std::size_t up_count = tail;
  for (std::size_t head = 0; head < up_count; ++head) {
    AsId node = q[head];
    for (AsId nb : graph_.PeerIds(node)) {
      if (stamp[nb] != cur) {
        stamp[nb] = cur;
        q[tail++] = nb;
      }
    }
    for (AsId nb : graph_.CustomerIds(node)) {
      if (stamp[nb] != cur) {
        stamp[nb] = cur;
        q[tail++] = nb;
      }
    }
  }
  // Stage 3: the customer-edge closure of the seed set. Two strategies
  // computing the identical set:
  //   top-down — pop frontier nodes, push unvisited customers. O(reach)
  //     edge work, but every pop chases node bounds in random order.
  //   bottom-up — still-unvisited nodes probe their providers for a
  //     visited one, in id order, with the survivor list compacted every
  //     round. Sequential scans with independent loads win when most of
  //     the graph is about to be reached (the common no-exclusion case).
  // An exclusion mask forces top-down: excluded nodes carry the current
  // stamp (folded above), so a bottom-up provider probe could not tell
  // them from genuinely reached nodes — and excluded reach is small, which
  // is the regime where top-down is the right choice anyway.
  if (excluded == nullptr && tail >= n / 16) {
    // Round 1 runs straight over the static provider-owning list (id
    // order: the slice walk is sequential, so the hardware prefetcher does
    // the work); survivors compact into candidates_ for later rounds.
    AsId* cand = candidates_.data();
    auto probe = [&](AsId node, std::size_t& write) {
      for (AsId p : graph_.ProviderIds(node)) {
        if (stamp[p] == cur) {
          stamp[node] = cur;
          q[tail++] = node;
          return;
        }
      }
      cand[write++] = node;
    };
    std::size_t cand_count = 0;
    std::size_t tail_before = tail;
    for (AsId node : downable_) {
      if (stamp[node] != cur) probe(node, cand_count);
    }
    while (tail != tail_before && cand_count != 0) {
      tail_before = tail;
      std::size_t write = 0;
      for (std::size_t i = 0; i < cand_count; ++i) probe(cand[i], write);
      cand_count = write;
    }
  } else {
    for (std::size_t head = up_count; head < tail; ++head) {
      AsId node = q[head];
      if (head + kPrefetchAhead < tail) {
        __builtin_prefetch(graph_.CustomerIds(q[head + kPrefetchAhead]).data());
      }
      for (AsId nb : graph_.CustomerIds(node)) {
        if (stamp[nb] != cur) {
          stamp[nb] = cur;
          q[tail++] = nb;
        }
      }
    }
  }

  Counters().computes.Increment();
  // Destinations only, matching Count(): the queue holds every reached node
  // exactly once, origin included.
  Counters().nodes_reached.Increment(tail - 1);

  if (reached != nullptr) {
    if (tail >= n / 8) {
      // Dense reach (the common case: most origins reach most of the
      // graph): rebuild every output word from the stamps in one
      // sequential pass, masking excluded nodes back out word-at-a-time.
      std::size_t words = reached->num_words();
      for (std::size_t w = 0; w < words; ++w) {
        std::size_t base = w * 64;
        std::size_t limit = std::min<std::size_t>(64, n - base);
        std::uint64_t bits = 0;
        for (std::size_t b = 0; b < limit; ++b) {
          bits |= static_cast<std::uint64_t>(stamp[base + b] == cur) << b;
        }
        if (excluded != nullptr) bits &= ~excluded->Word(w);
        reached->StoreWord(w, bits);
      }
    } else {
      // Sparse reach: scattering the queue beats scanning all n stamps.
      reached->ResetAll();
      for (std::size_t i = 0; i < tail; ++i) reached->Set(q[i]);
    }
  }
  return tail;
}

Bitset ReachabilityEngine::Compute(AsId origin, const Bitset* excluded) {
  Bitset reached(graph_.num_ases());
  RunBfs(origin, excluded, &reached);
  return reached;
}

void ReachabilityEngine::ComputeInto(AsId origin, const Bitset* excluded, Bitset& reached) {
  if (reached.size() != graph_.num_ases()) {
    reached.Resize(graph_.num_ases());
  }
  // No clear needed: RunBfs overwrites the full set.
  RunBfs(origin, excluded, &reached);
}

std::size_t ReachabilityEngine::Count(AsId origin, const Bitset* excluded) {
  std::size_t reached = RunBfs(origin, excluded, nullptr);
  return reached > 0 ? reached - 1 : 0;  // exclude the origin itself
}

Bitset ReachableSet(const AsGraph& graph, AsId origin, const Bitset* excluded) {
  ReachabilityEngine engine(graph);
  return engine.Compute(origin, excluded);
}

std::size_t ReachableCount(const AsGraph& graph, AsId origin, const Bitset* excluded) {
  ReachabilityEngine engine(graph);
  return engine.Count(origin, excluded);
}

}  // namespace flatnet
