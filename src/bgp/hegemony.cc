#include "bgp/hegemony.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/error.h"

namespace flatnet {

HegemonyResult ComputeHegemony(const RouteComputation& computation,
                               const HegemonyOptions& options) {
  if (computation.num_sources() != 1) {
    throw InvalidArgument("ComputeHegemony: requires a single-origin computation");
  }
  if (!(options.trim >= 0.0) || options.trim >= 0.5) {
    throw InvalidArgument("ComputeHegemony: trim must be in [0, 0.5)");
  }
  obs::TraceSpan span("bgp.hegemony");
  static obs::Counter& computes = obs::GetCounter("hegemony.computes");
  computes.Increment();

  std::size_t n = computation.graph().num_ases();
  const std::vector<AsId>& order = computation.NodesByLength();

  HegemonyResult result;
  result.hegemony.assign(n, 0.0);

  // Forward pass (ascending length): σ(v) = Σ σ(pred), σ(origin) = 1.
  std::vector<double> sigma(n, 0.0);
  for (AsId node : order) {
    const auto& preds = computation.Predecessors(node);
    if (preds.empty()) {
      sigma[node] = 1.0;  // the origin
      continue;
    }
    double s = 0.0;
    for (AsId pred : preds) s += sigma[pred];
    sigma[node] = s;
  }

  // Position of each reached node in the topological order, for sorting
  // ancestor cones into reverse-topological order.
  std::vector<std::uint32_t> pos(n, 0);
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = static_cast<std::uint32_t>(i);

  std::size_t num_viewpoints = 0;
  for (AsId node : order) {
    if (!computation.Predecessors(node).empty()) ++num_viewpoints;
  }
  result.num_viewpoints = num_viewpoints;
  if (num_viewpoints == 0) return result;

  std::size_t trim_count =
      static_cast<std::size_t>(std::floor(options.trim * static_cast<double>(num_viewpoints)));
  if (2 * trim_count >= num_viewpoints) trim_count = (num_viewpoints - 1) / 2;
  result.trimmed_each_end = trim_count;

  // Per-AS nonzero viewpoint values; a viewpoint not listed saw 0.
  std::vector<std::vector<double>> values(n);
  // Epoch-stamped scratch reused across viewpoints.
  std::vector<std::uint32_t> visit(n, 0);
  std::vector<double> sigma_rev(n, 0.0);
  std::vector<AsId> cone;
  std::uint32_t epoch = 0;

  for (AsId viewpoint : order) {
    if (computation.Predecessors(viewpoint).empty()) continue;  // origin
    ++epoch;
    // Collect the viewpoint's ancestor cone (viewpoint included) by BFS
    // over predecessor edges; every node on any tied-best path is in it.
    cone.clear();
    cone.push_back(viewpoint);
    visit[viewpoint] = epoch;
    for (std::size_t head = 0; head < cone.size(); ++head) {
      for (AsId pred : computation.Predecessors(cone[head])) {
        if (visit[pred] == epoch) continue;
        visit[pred] = epoch;
        cone.push_back(pred);
      }
    }
    // Reverse-topological accumulation: σ_rev(x) = paths x → viewpoint.
    std::sort(cone.begin(), cone.end(),
              [&](AsId a, AsId b) { return pos[a] > pos[b]; });
    sigma_rev[viewpoint] = 1.0;
    for (AsId node : cone) {
      double s = sigma_rev[node];
      for (AsId pred : computation.Predecessors(node)) sigma_rev[pred] += s;
    }
    // BC_v(a) = σ(a)·σ_rev(a)/σ(v) for every non-origin ancestor a.
    double inv = 1.0 / sigma[viewpoint];
    for (AsId node : cone) {
      if (!computation.Predecessors(node).empty()) {
        values[node].push_back(sigma[node] * sigma_rev[node] * inv);
      }
      sigma_rev[node] = 0.0;
    }
  }

  // Trimmed mean per AS: conceptually prepend the implicit zeros, drop
  // trim_count values at each end, average the middle.
  std::size_t kept = num_viewpoints - 2 * trim_count;
  for (AsId node = 0; node < n; ++node) {
    std::vector<double>& vals = values[node];
    if (vals.empty()) continue;
    std::sort(vals.begin(), vals.end());
    std::size_t zeros = num_viewpoints - vals.size();
    // Low trim: zeros absorb it first, then the smallest nonzeros.
    std::size_t low = trim_count > zeros ? trim_count - zeros : 0;
    // High trim removes the largest nonzeros.
    std::size_t high = std::min(trim_count, vals.size());
    double sum = 0.0;
    for (std::size_t i = low; i < vals.size() - high; ++i) sum += vals[i];
    result.hegemony[node] = sum / static_cast<double>(kept);
  }
  return result;
}

std::vector<AsId> HegemonyRanking(const HegemonyResult& result) {
  std::vector<AsId> ranking;
  for (AsId node = 0; node < result.hegemony.size(); ++node) {
    if (result.hegemony[node] > 0.0) ranking.push_back(node);
  }
  std::sort(ranking.begin(), ranking.end(), [&](AsId a, AsId b) {
    if (result.hegemony[a] != result.hegemony[b]) {
      return result.hegemony[a] > result.hegemony[b];
    }
    return a < b;
  });
  return ranking;
}

}  // namespace flatnet
