// Enumeration and sampling of tied-best AS paths from the predecessor DAG.
// Used by the traceroute simulator (ground-truth forwarding follows one
// concrete best path) and the Appendix-A validation (is the measured path
// within the simulated tied-best set?).
#ifndef FLATNET_BGP_PATHS_H_
#define FLATNET_BGP_PATHS_H_

#include <cstdint>
#include <vector>

#include "bgp/propagation.h"
#include "util/rng.h"

namespace flatnet {

// An AS path from a node to the origin, node first, origin last.
using AsPath = std::vector<AsId>;

// Enumerates tied-best paths from `node` to the origin, up to `max_paths`
// (DFS order). Returns an empty vector for unreachable nodes.
std::vector<AsPath> EnumerateBestPaths(const RouteComputation& computation, AsId node,
                                       std::size_t max_paths = 64);

// Picks one tied-best path deterministically: at every step, the
// predecessor with the lowest AS number wins — a stand-in for the
// tie-breaks (router ids, IGP costs) real routers apply consistently.
AsPath DeterministicBestPath(const RouteComputation& computation, AsId node);

// Picks one tied-best path uniformly at random over predecessor choices.
AsPath SampleBestPath(const RouteComputation& computation, AsId node, Rng& rng);

// True if `path` (node-to-origin order) is one of the tied-best paths in
// the computation.
bool IsBestPath(const RouteComputation& computation, const AsPath& path);

}  // namespace flatnet

#endif  // FLATNET_BGP_PATHS_H_
