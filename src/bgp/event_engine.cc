#include "bgp/event_engine.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/error.h"

namespace flatnet {
namespace {

std::uint64_t PairKey(AsId a, AsId b) {
  if (a > b) std::swap(a, b);
  return (std::uint64_t{a} << 32) | b;
}

RouteClass ClassOf(Relationship sender_rel_from_receiver) {
  switch (sender_rel_from_receiver) {
    case Relationship::kCustomer: return RouteClass::kCustomer;
    case Relationship::kPeer: return RouteClass::kPeer;
    case Relationship::kProvider: return RouteClass::kProvider;
  }
  return RouteClass::kNone;
}

}  // namespace

EventBgpEngine::EventBgpEngine(const AsGraph& graph, const PropagationOptions& options)
    : graph_(graph),
      options_(options),
      adj_in_(graph.num_ases()),
      best_(graph.num_ases()),
      best_via_(graph.num_ases(), kInvalidAsId) {}

void EventBgpEngine::Originate(AsId origin) {
  if (origin_ != kInvalidAsId) throw InvalidArgument("EventBgpEngine: already originated");
  if (origin >= graph_.num_ases()) throw InvalidArgument("EventBgpEngine: bad origin");
  if (options_.excluded != nullptr && options_.excluded->Test(origin)) {
    throw InvalidArgument("EventBgpEngine: origin is in the excluded set");
  }
  origin_ = origin;
  RibRoute own;
  own.cls = RouteClass::kOrigin;
  best_[origin] = own;
  AnnounceFrom(origin);
  Process();
}

void EventBgpEngine::WithdrawOrigin() {
  if (origin_ == kInvalidAsId) throw InvalidArgument("EventBgpEngine: nothing originated");
  AsId origin = origin_;
  // Clear origin state *before* processing: the withdrawing AS is a regular
  // network again (a later Originate must not see a stale origin), and
  // Reselect must no longer pin its empty route. Its Adj-RIB-In is
  // necessarily empty — every route for the prefix ends at the origin, so
  // loop prevention rejected any announcement towards it.
  origin_ = kInvalidAsId;
  best_[origin] = std::nullopt;
  best_via_[origin] = kInvalidAsId;
  AnnounceFrom(origin);
  Process();
}

void EventBgpEngine::FailLink(AsId a, AsId b) {
  if (!graph_.RelationshipBetween(a, b).has_value()) {
    throw InvalidArgument("EventBgpEngine::FailLink: ASes not adjacent");
  }
  failed_links_[PairKey(a, b)] = true;
  // Both sides lose whatever they heard over the link and re-select.
  adj_in_[a].erase(b);
  adj_in_[b].erase(a);
  Reselect(a);
  Reselect(b);
  Process();
}

bool EventBgpEngine::LinkDown(AsId a, AsId b) const {
  auto it = failed_links_.find(PairKey(a, b));
  return it != failed_links_.end() && it->second;
}

bool EventBgpEngine::Filtered(AsId receiver, AsId sender) const {
  return IsEdgeFiltered(options_, receiver, sender);
}

bool EventBgpEngine::Better(AsId node, AsId via_a, const RibRoute& a, AsId via_b,
                            const RibRoute& b) const {
  RouteClass ca = ClassOf(*graph_.RelationshipBetween(node, via_a));
  RouteClass cb = ClassOf(*graph_.RelationshipBetween(node, via_b));
  if (ca != cb) return ca < cb;
  if (a.Length() != b.Length()) return a.Length() < b.Length();
  return graph_.AsnOf(via_a) < graph_.AsnOf(via_b);
}

void EventBgpEngine::Enqueue(AsId sender, AsId receiver, const std::optional<RibRoute>& route) {
  Message message;
  message.sender = sender;
  message.receiver = receiver;
  if (route) {
    RibRoute exported = *route;
    exported.path.insert(exported.path.begin(), sender);
    exported.cls = RouteClass::kNone;  // class is assigned by the receiver
    message.route = std::move(exported);
  }
  queue_.push_back(std::move(message));
}

void EventBgpEngine::AnnounceFrom(AsId node) {
  const std::optional<RibRoute>& best = best_[node];
  bool export_everywhere =
      best && (best->cls == RouteClass::kOrigin || best->cls == RouteClass::kCustomer);
  for (const Neighbor& nb : graph_.NeighborsOf(node)) {
    if (LinkDown(node, nb.id)) continue;
    // Valley-free export: customer-learned (and own) routes go to everyone;
    // peer/provider-learned routes go to customers only.
    bool eligible = best && (export_everywhere || nb.rel == Relationship::kCustomer);
    // Never announce a route back through its next hop.
    if (eligible && best_via_[node] == nb.id) eligible = false;
    if (eligible) {
      Enqueue(node, nb.id, best);
    } else {
      Enqueue(node, nb.id, std::nullopt);
    }
  }
}

void EventBgpEngine::Reselect(AsId node) {
  static obs::Counter& reselects = obs::GetCounter("event_engine.reselects");
  reselects.Increment();
  std::optional<RibRoute> previous = best_[node];
  AsId previous_via = best_via_[node];
  if (node == origin_) return;  // the origin always prefers its own prefix

  std::optional<RibRoute> chosen;
  AsId chosen_via = kInvalidAsId;
  for (const auto& [via, route] : adj_in_[node]) {
    if (!chosen || Better(node, via, route, chosen_via, *chosen)) {
      chosen = route;
      chosen_via = via;
    }
  }
  if (chosen) chosen->cls = ClassOf(*graph_.RelationshipBetween(node, chosen_via));

  bool changed;
  if (chosen.has_value() != previous.has_value()) {
    changed = true;
  } else if (!chosen) {
    changed = false;
  } else {
    changed = chosen_via != previous_via || chosen->path != previous->path ||
              chosen->cls != previous->cls;
  }
  if (!changed) return;
  best_[node] = std::move(chosen);
  best_via_[node] = best_[node] ? chosen_via : kInvalidAsId;
  AnnounceFrom(node);
}

void EventBgpEngine::Process() {
  std::uint64_t processed = 0;
  while (!queue_.empty()) {
    Message message = std::move(queue_.front());
    queue_.pop_front();
    ++messages_;
    ++processed;
    AsId node = message.receiver;
    if (LinkDown(message.sender, node)) continue;  // lost on the wire
    if (message.route) {
      // Defensive filtering (exclusion / peer lock) and loop prevention:
      // a rejected announcement invalidates whatever the sender last
      // supplied, exactly like a withdraw.
      if (Filtered(node, message.sender) ||
          std::find(message.route->path.begin(), message.route->path.end(), node) !=
          message.route->path.end()) {
        adj_in_[node].erase(message.sender);
      } else {
        adj_in_[node][message.sender] = *message.route;
      }
    } else {
      adj_in_[node].erase(message.sender);
    }
    Reselect(node);
  }
  static obs::Counter& messages = obs::GetCounter("event_engine.messages");
  messages.Increment(processed);
}

std::size_t EventBgpEngine::ReachedCount() const {
  std::size_t count = 0;
  for (AsId node = 0; node < graph_.num_ases(); ++node) {
    if (node != origin_ && best_[node].has_value()) ++count;
  }
  return count;
}

}  // namespace flatnet
