// AS-Rank-style relationship inference (Luckie et al., IMC 2013) — the
// successor to Gao's algorithm and the basis of the CAIDA serial datasets
// the paper consumes (§2.3 traces the lineage Gao -> AS-Rank -> ProbLink).
//
// Simplified reproduction of the algorithm's core ideas:
//   1. infer the Tier-1 clique from transit degree + mutual adjacency over
//      the observed paths (links inside the clique are p2p by definition);
//   2. orient every observed path at its clique (or highest-transit-degree)
//      apex and classify the uphill/downhill links as c2p, accumulating
//      votes across all paths and vantage points;
//   3. remaining un-voted or conflicted adjacencies default to p2p —
//      AS-Rank's key insight that "everything that is not transit is
//      peering", which is what fixes Gao's apex-peering blindness.
//
// Output shape matches Gao's result type so the two can be compared
// head-to-head (bench_ablation_inference).
#ifndef FLATNET_BGP_ASRANK_H_
#define FLATNET_BGP_ASRANK_H_

#include "bgp/gao.h"
#include "bgp/monitors.h"

namespace flatnet {

struct AsRankOptions {
  // Candidate pool / size bounds for the clique inference step.
  std::uint32_t clique_candidates = 60;
  std::uint32_t max_clique_size = 20;
  // A link is c2p only when the vote imbalance is at least this factor;
  // balanced links become p2p.
  double transit_vote_dominance = 2.0;
};

// Same scoring semantics as InferRelationshipsGao.
GaoResult InferRelationshipsAsRank(const RibDump& dump, const AsGraph& truth,
                                   const AsRankOptions& options = {});

}  // namespace flatnet

#endif  // FLATNET_BGP_ASRANK_H_
