#include "core/reachability_analysis.h"

#include "bgp/propagation.h"
#include "bgp/reachability.h"

namespace flatnet {

ReachabilitySummary AnalyzeReachability(const Internet& internet, AsId origin) {
  ReachabilityEngine engine(internet.graph());
  ReachabilitySummary summary;
  Bitset mask = internet.ProviderFreeExclusion(origin);
  summary.provider_free = engine.Count(origin, &mask);
  mask = internet.Tier1FreeExclusion(origin);
  summary.tier1_free = engine.Count(origin, &mask);
  mask = internet.HierarchyFreeExclusion(origin);
  summary.hierarchy_free = engine.Count(origin, &mask);
  return summary;
}

std::vector<std::uint32_t> HierarchyFreeSweep(const Internet& internet) {
  std::size_t n = internet.num_ases();
  std::vector<std::uint32_t> result(n, 0);
  ReachabilityEngine engine(internet.graph());
  // One shared base mask; per-origin provider bits are set and restored,
  // avoiding an O(n) mask copy per origin.
  Bitset mask = internet.tiers().tier1_mask;
  mask |= internet.tiers().tier2_mask;
  for (AsId origin = 0; origin < n; ++origin) {
    bool origin_in_hierarchy = mask.Test(origin);
    if (origin_in_hierarchy) mask.Reset(origin);
    std::vector<AsId> flipped;
    for (const Neighbor& nb : internet.graph().Providers(origin)) {
      if (!mask.Test(nb.id)) {
        mask.Set(nb.id);
        flipped.push_back(nb.id);
      }
    }
    result[origin] = static_cast<std::uint32_t>(engine.Count(origin, &mask));
    for (AsId id : flipped) mask.Reset(id);
    if (origin_in_hierarchy) mask.Set(origin);
  }
  return result;
}

Bitset HierarchyFreeUnreachable(const Internet& internet, AsId origin) {
  ReachabilityEngine engine(internet.graph());
  Bitset mask = internet.HierarchyFreeExclusion(origin);
  Bitset reached = engine.Compute(origin, &mask);
  Bitset unreachable = ~reached;
  unreachable.Reset(origin);
  return unreachable;
}

TypeBreakdown BreakdownByType(const Internet& internet, const Bitset& nodes) {
  TypeBreakdown breakdown;
  nodes.ForEachSet([&](std::size_t id) {
    switch (internet.metadata().Get(static_cast<AsId>(id)).type) {
      case AsType::kContent:
      case AsType::kCloud:
        ++breakdown.content;
        break;
      case AsType::kTransit:
        ++breakdown.transit;
        break;
      case AsType::kAccess:
        ++breakdown.access;
        break;
      case AsType::kEnterprise:
        ++breakdown.enterprise;
        break;
    }
  });
  return breakdown;
}

PathLengthBins PathLengths(const Internet& internet, AsId origin,
                           const std::vector<double>* weights) {
  AnnouncementSource source;
  source.node = origin;
  RouteComputation computation(internet.graph(), {source});
  PathLengthBins bins;
  for (AsId node = 0; node < internet.num_ases(); ++node) {
    if (node == origin) continue;
    const RouteEntry& entry = computation.Route(node);
    if (!entry.HasRoute()) continue;
    double w = weights != nullptr ? (*weights)[node] : 1.0;
    if (w <= 0.0) continue;
    if (entry.length <= 1) {
      bins.one_hop += w;
    } else if (entry.length == 2) {
      bins.two_hops += w;
    } else {
      bins.three_plus += w;
    }
  }
  return bins;
}

}  // namespace flatnet
