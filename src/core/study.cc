#include "core/study.h"

namespace flatnet {

Study::Study(const StudyOptions& options)
    : world_(GenerateWorld(options.generator)),
      plan_(std::make_unique<AddressPlan>(world_, options.generator.seed ^ 0xaddf00d)),
      cymru_(std::make_unique<CymruResolver>(world_)),
      peeringdb_(std::make_unique<PeeringDbResolver>(world_, *plan_, /*record_coverage=*/0.9,
                                                     /*wrong_record_fraction=*/0.07,
                                                     options.generator.seed ^ 0x9db)),
      whois_(std::make_unique<WhoisResolver>(world_, /*stale_fraction=*/0.04,
                                             options.generator.seed ^ 0x3015)),
      campaign_(std::make_unique<TracerouteCampaign>(world_, *plan_, options.campaign)),
      inference_(cymru_.get(), peeringdb_.get(), whois_.get()) {
  inferred_ = InferAtStage(options.stage);

  AsGraph merged = BuildMergedGraph();
  // Tier sets and metadata share the AsId space of the world's graphs.
  internet_ = Internet(std::move(merged), world_.tiers, world_.metadata);
  truth_ = Internet(world_.full_graph, world_.tiers, world_.metadata);
}

std::vector<std::set<Asn>> Study::InferAtStage(MethodologyStage stage) const {
  InferenceRules rules = InferenceRules::ForStage(stage);
  std::vector<std::set<Asn>> result(world_.clouds.size());
  for (std::uint32_t c = 0; c < world_.clouds.size(); ++c) {
    const CloudInstance& cloud = world_.clouds[c];
    if (cloud.archetype.vm_locations == 0) continue;
    result[c] = inference_.InferNeighbors(campaign_->traces(), c, cloud.archetype.asn,
                                          cloud.archetype.vm_locations, rules);
  }
  return result;
}

AsGraph Study::BuildMergedGraph() const {
  AsGraphBuilder builder;
  // Register every AS in id order so the merged graph shares the AsId
  // space of the world's graphs.
  for (AsId id = 0; id < world_.num_ases(); ++id) {
    builder.AddAs(world_.full_graph.AsnOf(id));
  }
  for (const AsGraph::Edge& e : world_.bgp_graph.EdgeList()) {
    builder.AddEdge(e.a, e.b, e.type);
  }
  // §4.1 merge rule: traceroute-discovered neighbors enter as p2p links;
  // when the BGP view already has the link, its type is kept. Inferred
  // ASNs outside the topology (e.g. IXP management ASes captured by an
  // early pipeline stage) cannot be added as nodes meaningfully and are
  // dropped.
  for (std::uint32_t c = 0; c < world_.clouds.size(); ++c) {
    Asn cloud_asn = world_.clouds[c].archetype.asn;
    for (Asn neighbor : inferred_[c]) {
      if (!world_.full_graph.IdOf(neighbor) && !world_.bgp_graph.IdOf(neighbor)) continue;
      builder.AddEdgeIfAbsent(cloud_asn, neighbor, EdgeType::kP2P);
    }
  }
  return std::move(builder).Build();
}

std::vector<CloudPeerCounts> Study::PeerCounts() const {
  std::vector<CloudPeerCounts> counts;
  for (std::uint32_t c = 0; c < world_.clouds.size(); ++c) {
    const CloudInstance& cloud = world_.clouds[c];
    if (!cloud.archetype.is_study_cloud) continue;
    CloudPeerCounts row;
    row.name = cloud.archetype.name;
    row.bgp_only = world_.bgp_graph.PeerCount(cloud.id);
    row.merged = internet_.graph().PeerCount(cloud.id);
    row.ground_truth = world_.full_graph.PeerCount(cloud.id);
    counts.push_back(std::move(row));
  }
  return counts;
}

}  // namespace flatnet
