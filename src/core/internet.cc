#include "core/internet.h"

#include "util/error.h"

namespace flatnet {

Internet::Internet(AsGraph graph, TierSets tiers, AsMetadata metadata)
    : graph_(std::move(graph)), tiers_(std::move(tiers)), metadata_(std::move(metadata)) {
  if (tiers_.tier1_mask.size() != graph_.num_ases() ||
      metadata_.size() != graph_.num_ases()) {
    throw InvalidArgument("Internet: tier/metadata size mismatch with graph");
  }
}

Bitset Internet::ProviderFreeExclusion(AsId origin) const {
  Bitset mask(graph_.num_ases());
  for (const Neighbor& nb : graph_.Providers(origin)) mask.Set(nb.id);
  return mask;
}

Bitset Internet::Tier1FreeExclusion(AsId origin) const {
  Bitset mask = tiers_.tier1_mask;
  for (const Neighbor& nb : graph_.Providers(origin)) mask.Set(nb.id);
  mask.Reset(origin);
  return mask;
}

Bitset Internet::HierarchyFreeExclusion(AsId origin) const {
  Bitset mask = tiers_.tier1_mask;
  mask |= tiers_.tier2_mask;
  for (const Neighbor& nb : graph_.Providers(origin)) mask.Set(nb.id);
  mask.Reset(origin);
  return mask;
}

}  // namespace flatnet
