// §6's reachability analyses over an Internet topology.
#ifndef FLATNET_CORE_REACHABILITY_ANALYSIS_H_
#define FLATNET_CORE_REACHABILITY_ANALYSIS_H_

#include <cstdint>
#include <vector>

#include "asgraph/metadata.h"
#include "core/internet.h"
#include "util/bitset.h"

namespace flatnet {

struct ReachabilitySummary {
  std::size_t provider_free = 0;   // reach(o, I \ Po), §6.2
  std::size_t tier1_free = 0;      // reach(o, I \ Po \ T1), §6.3
  std::size_t hierarchy_free = 0;  // reach(o, I \ Po \ T1 \ T2), §6.4
};

// The three nested reachability figures for one origin.
ReachabilitySummary AnalyzeReachability(const Internet& internet, AsId origin);

// Hierarchy-free reachability for every AS (Fig 3 / Table 1 sweeps).
std::vector<std::uint32_t> HierarchyFreeSweep(const Internet& internet);

// The set of ASes `origin` cannot reach hierarchy-free (§6.7).
Bitset HierarchyFreeUnreachable(const Internet& internet, AsId origin);

// Breakdown of a node set by AS type (content/transit/access/enterprise;
// clouds are counted as content, matching the paper's four categories).
struct TypeBreakdown {
  std::size_t content = 0;
  std::size_t transit = 0;
  std::size_t access = 0;
  std::size_t enterprise = 0;
  std::size_t Total() const { return content + transit + access + enterprise; }
};
TypeBreakdown BreakdownByType(const Internet& internet, const Bitset& nodes);

// Best-path length histogram from `origin` to every reachable AS on the
// full topology (Appendix E / Fig 13): counts of 1-hop, 2-hop, and >=3-hop
// destinations, optionally weighted (e.g. by user population).
struct PathLengthBins {
  double one_hop = 0.0;
  double two_hops = 0.0;
  double three_plus = 0.0;
  double Total() const { return one_hop + two_hops + three_plus; }
};
PathLengthBins PathLengths(const Internet& internet, AsId origin,
                           const std::vector<double>* weights = nullptr);

}  // namespace flatnet

#endif  // FLATNET_CORE_REACHABILITY_ANALYSIS_H_
