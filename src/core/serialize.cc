#include "core/serialize.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "asgraph/caida.h"
#include "util/error.h"
#include "util/strings.h"

namespace flatnet {
namespace {

std::string RelPath(const std::string& stem) { return stem + ".as-rel.txt"; }
std::string MetaPath(const std::string& stem) { return stem + ".meta.tsv"; }

AsType TypeFromString(std::string_view s) {
  if (s == "transit") return AsType::kTransit;
  if (s == "access") return AsType::kAccess;
  if (s == "content") return AsType::kContent;
  if (s == "cloud") return AsType::kCloud;
  if (s == "enterprise") return AsType::kEnterprise;
  throw ParseError("unknown AS type '" + std::string(s) + "'");
}

}  // namespace

void SaveInternet(const Internet& internet, const std::string& stem) {
  {
    std::ofstream out(RelPath(stem));
    if (!out) throw Error("SaveInternet: cannot write " + RelPath(stem));
    WriteCaidaRelationships(internet.graph(), out);
  }
  std::ofstream out(MetaPath(stem));
  if (!out) throw Error("SaveInternet: cannot write " + MetaPath(stem));
  out << "# asn\tname\ttype\tusers\ttier\n";
  for (AsId id = 0; id < internet.num_ases(); ++id) {
    const AsInfo& info = internet.metadata().Get(id);
    int tier = internet.tiers().tier1_mask.Test(id)   ? 1
               : internet.tiers().tier2_mask.Test(id) ? 2
                                                      : 0;
    out << internet.graph().AsnOf(id) << '\t' << info.name << '\t' << ToString(info.type)
        << '\t' << StrFormat("%.6g", info.users) << '\t' << tier << '\n';
  }
  if (!out) throw Error("SaveInternet: write failure on " + MetaPath(stem));
}

Internet LoadInternet(const std::string& stem) {
  AsGraph graph = LoadCaidaFile(RelPath(stem));

  std::ifstream in(MetaPath(stem));
  if (!in) throw Error("LoadInternet: cannot open " + MetaPath(stem));
  AsMetadata metadata(graph.num_ases());
  std::vector<Asn> tier1;
  std::vector<Asn> tier2;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::string_view view = Trim(line);
    if (view.empty() || view.front() == '#') continue;
    auto fields = Split(view, '\t');
    if (fields.size() != 5) {
      throw ParseError(StrFormat("meta line %zu: expected 5 fields", line_number));
    }
    auto asn = ParseU64(fields[0]);
    auto users = ParseDouble(fields[3]);
    auto tier = ParseU64(fields[4]);
    if (!asn || !users || !tier || *tier > 2) {
      throw ParseError(StrFormat("meta line %zu: malformed record", line_number));
    }
    auto id = graph.IdOf(static_cast<Asn>(*asn));
    if (!id) {
      // Metadata for an AS absent from the graph: isolated nodes are not
      // representable in the CAIDA edge format; skip them.
      continue;
    }
    AsInfo& info = metadata.GetMutable(*id);
    info.name = std::string(fields[1]);
    info.type = TypeFromString(fields[2]);
    info.users = *users;
    if (*tier == 1) tier1.push_back(static_cast<Asn>(*asn));
    if (*tier == 2) tier2.push_back(static_cast<Asn>(*asn));
  }
  TierSets tiers = MakeTierSets(graph, tier1, tier2);
  return Internet(std::move(graph), std::move(tiers), std::move(metadata));
}

bool InternetCacheExists(const std::string& stem) {
  return std::filesystem::exists(RelPath(stem)) && std::filesystem::exists(MetaPath(stem));
}

}  // namespace flatnet
