#include "core/serialize.h"

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "asgraph/caida.h"
#include "util/error.h"
#include "util/strings.h"

namespace flatnet {
namespace {

std::string RelPath(const std::string& stem) { return stem + ".as-rel.txt"; }
std::string MetaPath(const std::string& stem) { return stem + ".meta.tsv"; }

AsType TypeFromString(std::string_view s) {
  if (s == "transit") return AsType::kTransit;
  if (s == "access") return AsType::kAccess;
  if (s == "content") return AsType::kContent;
  if (s == "cloud") return AsType::kCloud;
  if (s == "enterprise") return AsType::kEnterprise;
  throw ParseError("unknown AS type '" + std::string(s) + "'");
}

void WriteFiles(const Internet& internet, const std::string& stem) {
  {
    std::ofstream out(RelPath(stem));
    if (!out) throw Error("SaveInternet: cannot write " + RelPath(stem));
    WriteCaidaRelationships(internet.graph(), out);
    if (!out) throw Error("SaveInternet: write failure on " + RelPath(stem));
  }
  std::ofstream out(MetaPath(stem));
  if (!out) throw Error("SaveInternet: cannot write " + MetaPath(stem));
  out << "# asn\tname\ttype\tusers\ttier\n";
  for (AsId id = 0; id < internet.num_ases(); ++id) {
    const AsInfo& info = internet.metadata().Get(id);
    int tier = internet.tiers().tier1_mask.Test(id)   ? 1
               : internet.tiers().tier2_mask.Test(id) ? 2
                                                      : 0;
    out << internet.graph().AsnOf(id) << '\t' << info.name << '\t' << ToString(info.type)
        << '\t' << StrFormat("%.6g", info.users) << '\t' << tier << '\n';
  }
  out.flush();
  if (!out) throw Error("SaveInternet: write failure on " + MetaPath(stem));
}

}  // namespace

void SaveInternet(const Internet& internet, const std::string& stem) {
  // Atomic publish: both files are written to a pid-unique tmp sibling and
  // renamed into place, so concurrent writers (parallel benches under
  // `ctest -j`, a serve daemon racing a generator) can never co-author or
  // observe a half-written pair. rename(2) within a directory replaces
  // atomically; a reader can still catch a stale rel/meta pairing between
  // the two renames, which callers treat as a corrupt cache and rebuild.
  std::string tmp_stem = StrFormat("%s.tmp%d", stem.c_str(), static_cast<int>(::getpid()));
  try {
    WriteFiles(internet, tmp_stem);
    for (const char* suffix : {".meta.tsv", ".as-rel.txt"}) {
      std::filesystem::rename(tmp_stem + suffix, stem + suffix);
    }
  } catch (const std::filesystem::filesystem_error& e) {
    std::error_code ec;
    std::filesystem::remove(RelPath(tmp_stem), ec);
    std::filesystem::remove(MetaPath(tmp_stem), ec);
    throw Error(StrFormat("SaveInternet: publish to %s failed: %s", stem.c_str(), e.what()));
  } catch (...) {
    std::error_code ec;
    std::filesystem::remove(RelPath(tmp_stem), ec);
    std::filesystem::remove(MetaPath(tmp_stem), ec);
    throw;
  }
}

Internet LoadInternet(const std::string& stem) {
  AsGraph graph = LoadCaidaFile(RelPath(stem));

  const std::string meta_path = MetaPath(stem);
  std::ifstream in(meta_path);
  if (!in) throw Error("LoadInternet: cannot open " + meta_path);
  AsMetadata metadata(graph.num_ases());
  std::vector<Asn> tier1;
  std::vector<Asn> tier2;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::string_view view = Trim(line);
    if (view.empty() || view.front() == '#') continue;
    auto fields = Split(view, '\t');
    if (fields.size() != 5) {
      throw ParseError(StrFormat("%s:%zu: expected 5 tab-separated fields, got %zu",
                                 meta_path.c_str(), line_number, fields.size()));
    }
    auto asn = ParseU64(fields[0]);
    auto users = ParseDouble(fields[3]);
    auto tier = ParseU64(fields[4]);
    if (!asn || !users || !tier || *tier > 2) {
      throw ParseError(StrFormat("%s:%zu: malformed record '%s'", meta_path.c_str(),
                                 line_number, std::string(view).c_str()));
    }
    auto id = graph.IdOf(static_cast<Asn>(*asn));
    if (!id) {
      // Metadata for an AS absent from the graph: isolated nodes are not
      // representable in the CAIDA edge format; skip them.
      continue;
    }
    AsInfo& info = metadata.GetMutable(*id);
    info.name = std::string(fields[1]);
    try {
      info.type = TypeFromString(fields[2]);
    } catch (const ParseError& e) {
      throw ParseError(
          StrFormat("%s:%zu: %s", meta_path.c_str(), line_number, e.what()));
    }
    info.users = *users;
    if (*tier == 1) tier1.push_back(static_cast<Asn>(*asn));
    if (*tier == 2) tier2.push_back(static_cast<Asn>(*asn));
  }
  TierSets tiers = MakeTierSets(graph, tier1, tier2);
  return Internet(std::move(graph), std::move(tiers), std::move(metadata));
}

bool InternetCacheExists(const std::string& stem) {
  return std::filesystem::exists(RelPath(stem)) && std::filesystem::exists(MetaPath(stem));
}

}  // namespace flatnet
