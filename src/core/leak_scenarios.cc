#include "core/leak_scenarios.h"

#include <algorithm>

namespace flatnet {

LeakConfig LeakConfigForScenario(const Internet& internet, AsId victim, LeakScenario scenario,
                                 PeerLockMode lock_mode) {
  LeakConfig config;
  config.lock_mode = lock_mode;
  const AsGraph& graph = internet.graph();
  const TierSets& tiers = internet.tiers();

  auto neighbor_mask_where = [&](auto predicate) {
    Bitset mask(graph.num_ases());
    for (const Neighbor& nb : graph.NeighborsOf(victim)) {
      if (predicate(nb)) mask.Set(nb.id);
    }
    return mask;
  };

  switch (scenario) {
    case LeakScenario::kAnnounceAll:
      break;
    case LeakScenario::kAnnounceAllLockT1:
      config.peer_locked = neighbor_mask_where(
          [&](const Neighbor& nb) { return tiers.tier1_mask.Test(nb.id); });
      break;
    case LeakScenario::kAnnounceAllLockT1T2:
      config.peer_locked = neighbor_mask_where([&](const Neighbor& nb) {
        return tiers.tier1_mask.Test(nb.id) || tiers.tier2_mask.Test(nb.id);
      });
      break;
    case LeakScenario::kAnnounceAllLockGlobal:
      config.peer_locked = neighbor_mask_where([](const Neighbor&) { return true; });
      break;
    case LeakScenario::kAnnounceHierarchyOnly:
      config.victim_export = neighbor_mask_where([&](const Neighbor& nb) {
        return tiers.tier1_mask.Test(nb.id) || tiers.tier2_mask.Test(nb.id) ||
               nb.rel == Relationship::kProvider;
      });
      break;
  }
  return config;
}

const char* ToString(LeakScenario scenario) {
  switch (scenario) {
    case LeakScenario::kAnnounceAll: return "announce to all";
    case LeakScenario::kAnnounceAllLockT1: return "announce to all, T1 peer lock";
    case LeakScenario::kAnnounceAllLockT1T2: return "announce to all, T1+T2 peer lock";
    case LeakScenario::kAnnounceAllLockGlobal: return "announce to all, global peer lock";
    case LeakScenario::kAnnounceHierarchyOnly: return "announce to T1, T2, and providers";
  }
  return "?";
}

LeakDraw DrawLeakers(const LeakExperiment& experiment, std::size_t num_ases,
                     std::size_t trials, Rng& rng) {
  LeakDraw draw;
  draw.leakers.reserve(trials);
  std::size_t max_attempts = trials * 20 + 100;
  while (draw.leakers.size() < trials && draw.attempts < max_attempts) {
    ++draw.attempts;
    AsId leaker = static_cast<AsId>(rng.UniformU64(num_ases));
    if (experiment.CanLeak(leaker)) draw.leakers.push_back(leaker);
  }
  return draw;
}

LeakTrialSeries RunLeakScenario(const Internet& internet, AsId victim, LeakScenario scenario,
                                std::size_t trials, std::uint64_t seed,
                                const std::vector<double>* users, PeerLockMode lock_mode) {
  Rng rng(seed);
  LeakExperiment experiment(internet.graph(), victim,
                            LeakConfigForScenario(internet, victim, scenario, lock_mode),
                            users);
  LeakDraw draw = DrawLeakers(experiment, internet.num_ases(), trials, rng);

  LeakTrialSeries series;
  series.scenario = scenario;
  series.trials_requested = trials;
  series.attempts = draw.attempts;
  series.fraction_ases_detoured.reserve(draw.leakers.size());
  LeakWorkspace workspace;
  for (AsId leaker : draw.leakers) {
    auto outcome = experiment.Run(leaker, workspace);  // engaged: CanLeak passed
    series.fraction_ases_detoured.push_back(outcome->fraction_ases_detoured);
    if (users != nullptr) {
      series.fraction_users_detoured.push_back(outcome->fraction_users_detoured);
    }
  }
  return series;
}

BaselineResult AverageResilienceBaseline(const Internet& internet, std::size_t victims,
                                         std::size_t leakers_per_victim, std::uint64_t seed) {
  Rng rng(seed);
  std::size_t n = internet.num_ases();
  std::vector<std::uint32_t> drawn = rng.SampleWithoutReplacement(
      static_cast<std::uint32_t>(n),
      static_cast<std::uint32_t>(std::min(victims, n)));

  BaselineResult result;
  result.fractions.reserve(drawn.size() * leakers_per_victim);
  result.per_victim.reserve(drawn.size());
  LeakWorkspace workspace;
  for (std::uint32_t victim : drawn) {
    LeakExperiment experiment(internet.graph(), victim, LeakConfig{});
    LeakDraw draw = DrawLeakers(experiment, n, leakers_per_victim, rng);
    for (AsId leaker : draw.leakers) {
      auto outcome = experiment.Run(leaker, workspace);
      result.fractions.push_back(outcome->fraction_ases_detoured);
    }
    result.per_victim.push_back({static_cast<AsId>(victim), leakers_per_victim,
                                 draw.leakers.size(), draw.attempts});
  }
  return result;
}

}  // namespace flatnet
