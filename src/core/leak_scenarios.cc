#include "core/leak_scenarios.h"

#include "bgp/leak.h"
#include "util/rng.h"

namespace flatnet {
namespace {

LeakConfig ConfigFor(const Internet& internet, AsId victim, LeakScenario scenario,
                     PeerLockMode lock_mode) {
  LeakConfig config;
  config.lock_mode = lock_mode;
  const AsGraph& graph = internet.graph();
  const TierSets& tiers = internet.tiers();

  auto neighbor_mask_where = [&](auto predicate) {
    Bitset mask(graph.num_ases());
    for (const Neighbor& nb : graph.NeighborsOf(victim)) {
      if (predicate(nb)) mask.Set(nb.id);
    }
    return mask;
  };

  switch (scenario) {
    case LeakScenario::kAnnounceAll:
      break;
    case LeakScenario::kAnnounceAllLockT1:
      config.peer_locked = neighbor_mask_where(
          [&](const Neighbor& nb) { return tiers.tier1_mask.Test(nb.id); });
      break;
    case LeakScenario::kAnnounceAllLockT1T2:
      config.peer_locked = neighbor_mask_where([&](const Neighbor& nb) {
        return tiers.tier1_mask.Test(nb.id) || tiers.tier2_mask.Test(nb.id);
      });
      break;
    case LeakScenario::kAnnounceAllLockGlobal:
      config.peer_locked = neighbor_mask_where([](const Neighbor&) { return true; });
      break;
    case LeakScenario::kAnnounceHierarchyOnly:
      config.victim_export = neighbor_mask_where([&](const Neighbor& nb) {
        return tiers.tier1_mask.Test(nb.id) || tiers.tier2_mask.Test(nb.id) ||
               nb.rel == Relationship::kProvider;
      });
      break;
  }
  return config;
}

}  // namespace

const char* ToString(LeakScenario scenario) {
  switch (scenario) {
    case LeakScenario::kAnnounceAll: return "announce to all";
    case LeakScenario::kAnnounceAllLockT1: return "announce to all, T1 peer lock";
    case LeakScenario::kAnnounceAllLockT1T2: return "announce to all, T1+T2 peer lock";
    case LeakScenario::kAnnounceAllLockGlobal: return "announce to all, global peer lock";
    case LeakScenario::kAnnounceHierarchyOnly: return "announce to T1, T2, and providers";
  }
  return "?";
}

LeakTrialSeries RunLeakScenario(const Internet& internet, AsId victim, LeakScenario scenario,
                                std::size_t trials, std::uint64_t seed,
                                const std::vector<double>* users, PeerLockMode lock_mode) {
  Rng rng(seed);
  LeakExperiment experiment(internet.graph(), victim,
                            ConfigFor(internet, victim, scenario, lock_mode), users);
  LeakTrialSeries series;
  series.scenario = scenario;
  std::size_t n = internet.num_ases();
  std::size_t attempts = 0;
  std::size_t max_attempts = trials * 20 + 100;
  while (series.fraction_ases_detoured.size() < trials && attempts++ < max_attempts) {
    AsId leaker = static_cast<AsId>(rng.UniformU64(n));
    auto outcome = experiment.Run(leaker);
    if (!outcome) continue;  // leaker == victim or has nothing to leak
    series.fraction_ases_detoured.push_back(outcome->fraction_ases_detoured);
    if (users != nullptr) {
      series.fraction_users_detoured.push_back(outcome->fraction_users_detoured);
    }
  }
  return series;
}

std::vector<double> AverageResilienceBaseline(const Internet& internet, std::size_t victims,
                                              std::size_t leakers_per_victim,
                                              std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> fractions;
  std::size_t n = internet.num_ases();
  for (std::size_t v = 0; v < victims; ++v) {
    AsId victim = static_cast<AsId>(rng.UniformU64(n));
    LeakExperiment experiment(internet.graph(), victim, LeakConfig{});
    std::size_t collected = 0;
    std::size_t attempts = 0;
    while (collected < leakers_per_victim && attempts++ < leakers_per_victim * 20 + 50) {
      AsId leaker = static_cast<AsId>(rng.UniformU64(n));
      auto outcome = experiment.Run(leaker);
      if (!outcome) continue;
      fractions.push_back(outcome->fraction_ases_detoured);
      ++collected;
    }
  }
  return fractions;
}

}  // namespace flatnet
