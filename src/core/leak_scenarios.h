// §8's route-leak scenario matrix (with the erratum's peer-locking
// semantics): announcement configurations × peer-locking deployments,
// evaluated over randomly drawn misconfigured ASes.
#ifndef FLATNET_CORE_LEAK_SCENARIOS_H_
#define FLATNET_CORE_LEAK_SCENARIOS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "bgp/leak.h"
#include "bgp/policy.h"
#include "core/internet.h"
#include "util/rng.h"

namespace flatnet {

enum class LeakScenario {
  kAnnounceAll,             // victim announces to every neighbor
  kAnnounceAllLockT1,       // + Tier-1 neighbors deploy peer locking
  kAnnounceAllLockT1T2,     // + Tier-1 and Tier-2 neighbors lock
  kAnnounceAllLockGlobal,   // + all neighbors lock
  kAnnounceHierarchyOnly,   // victim announces only to T1s, T2s, providers
};

inline constexpr std::size_t kNumLeakScenarios = 5;

const char* ToString(LeakScenario scenario);

// Builds the LeakConfig for one (victim, scenario) cell: the victim's
// export restriction and/or the locking neighbor set, per the scenario
// matrix above. Shared by RunLeakScenario and the parallel campaign
// engine (src/leaksim/) so both evaluate identical configurations.
LeakConfig LeakConfigForScenario(const Internet& internet, AsId victim, LeakScenario scenario,
                                 PeerLockMode lock_mode = PeerLockMode::kFull);

struct LeakTrialSeries {
  LeakScenario scenario = LeakScenario::kAnnounceAll;
  // Trial accounting: `trials_requested` is what the caller asked for;
  // `attempts` counts every leaker draw (accepted + rejected). When the
  // attempt budget runs out before enough valid leakers are found the
  // series is shorter than requested — callers should check
  // UnderCollected() instead of assuming the full count.
  std::size_t trials_requested = 0;
  std::size_t attempts = 0;
  std::vector<double> fraction_ases_detoured;   // one entry per trial
  std::vector<double> fraction_users_detoured;  // filled when users given

  std::size_t collected() const { return fraction_ases_detoured.size(); }
  bool UnderCollected() const { return collected() < trials_requested; }
};

// The rejection-sampled leaker assignments for one cell: `leakers` holds
// up to `trials` ASes that pass LeakExperiment::CanLeak, in draw order;
// `attempts` counts every draw consumed from `rng`.
struct LeakDraw {
  std::vector<AsId> leakers;
  std::size_t attempts = 0;
};

// Replicates the serial draw loop without evaluating any leak: draws
// uniform leakers from `rng` until `trials` pass experiment.CanLeak or
// the attempt budget (trials * 20 + 100) is exhausted. Because evaluating
// a leak consumes no randomness, draw-then-evaluate yields exactly the
// same trials as the historical interleaved loop — this is the serial
// pre-draw phase the parallel campaign engine builds on.
LeakDraw DrawLeakers(const LeakExperiment& experiment, std::size_t num_ases,
                     std::size_t trials, Rng& rng);

// Runs `trials` leak simulations against `victim` under `scenario`,
// choosing the misconfigured AS uniformly at random (re-drawing when the
// leaker holds no route). `users`, when non-null, enables the Fig 9
// population weighting.
LeakTrialSeries RunLeakScenario(const Internet& internet, AsId victim, LeakScenario scenario,
                                std::size_t trials, std::uint64_t seed,
                                const std::vector<double>* users = nullptr,
                                PeerLockMode lock_mode = PeerLockMode::kFull);

// Fig 7/8's "average resilience" baseline: distinct random victims (drawn
// without replacement), each leaked by random misconfigured ASes with
// announce-to-all. Per-victim collection counts are surfaced so a victim
// whose draws never validate is visible instead of silently contributing
// zero trials.
struct BaselineVictimStats {
  AsId victim = 0;
  std::size_t requested = 0;
  std::size_t collected = 0;
  std::size_t attempts = 0;
};

struct BaselineResult {
  std::vector<double> fractions;  // all victims' trials, concatenated
  std::vector<BaselineVictimStats> per_victim;
};

BaselineResult AverageResilienceBaseline(const Internet& internet, std::size_t victims,
                                         std::size_t leakers_per_victim, std::uint64_t seed);

}  // namespace flatnet

#endif  // FLATNET_CORE_LEAK_SCENARIOS_H_
