// §8's route-leak scenario matrix (with the erratum's peer-locking
// semantics): announcement configurations × peer-locking deployments,
// evaluated over randomly drawn misconfigured ASes.
#ifndef FLATNET_CORE_LEAK_SCENARIOS_H_
#define FLATNET_CORE_LEAK_SCENARIOS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "bgp/policy.h"
#include "core/internet.h"

namespace flatnet {

enum class LeakScenario {
  kAnnounceAll,             // victim announces to every neighbor
  kAnnounceAllLockT1,       // + Tier-1 neighbors deploy peer locking
  kAnnounceAllLockT1T2,     // + Tier-1 and Tier-2 neighbors lock
  kAnnounceAllLockGlobal,   // + all neighbors lock
  kAnnounceHierarchyOnly,   // victim announces only to T1s, T2s, providers
};

const char* ToString(LeakScenario scenario);

struct LeakTrialSeries {
  LeakScenario scenario = LeakScenario::kAnnounceAll;
  std::vector<double> fraction_ases_detoured;   // one entry per trial
  std::vector<double> fraction_users_detoured;  // filled when users given
};

// Runs `trials` leak simulations against `victim` under `scenario`,
// choosing the misconfigured AS uniformly at random (re-drawing when the
// leaker holds no route). `users`, when non-null, enables the Fig 9
// population weighting.
LeakTrialSeries RunLeakScenario(const Internet& internet, AsId victim, LeakScenario scenario,
                                std::size_t trials, std::uint64_t seed,
                                const std::vector<double>* users = nullptr,
                                PeerLockMode lock_mode = PeerLockMode::kFull);

// Fig 7/8's "average resilience" baseline: random (victim, leaker) pairs
// with announce-to-all. Returns the detoured fractions.
std::vector<double> AverageResilienceBaseline(const Internet& internet, std::size_t victims,
                                              std::size_t leakers_per_victim,
                                              std::uint64_t seed);

}  // namespace flatnet

#endif  // FLATNET_CORE_LEAK_SCENARIOS_H_
