#include "core/fingerprint.h"

namespace flatnet {
namespace {

class Fnv1a64 {
 public:
  void Mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (v >> (i * 8)) & 0xFFu;
      hash_ *= 0x100000001b3ULL;
    }
  }

  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

void MixBitset(Fnv1a64& h, const Bitset& mask) {
  h.Mix(mask.size());
  // Set-bit indices rather than raw words: independent of Bitset's
  // internal word layout.
  mask.ForEachSet([&](std::size_t i) { h.Mix(i); });
}

}  // namespace

std::uint64_t TopologyFingerprint(const Internet& internet) {
  const AsGraph& graph = internet.graph();
  Fnv1a64 h;
  h.Mix(graph.num_ases());
  h.Mix(graph.num_edges());
  for (AsId id = 0; id < graph.num_ases(); ++id) {
    h.Mix(graph.AsnOf(id));
    for (const Neighbor& nb : graph.NeighborsOf(id)) {
      h.Mix((static_cast<std::uint64_t>(nb.id) << 2) |
            static_cast<std::uint64_t>(nb.rel));
    }
  }
  MixBitset(h, internet.tiers().tier1_mask);
  MixBitset(h, internet.tiers().tier2_mask);
  return h.value();
}

}  // namespace flatnet
