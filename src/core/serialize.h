// Persistence for analysis topologies.
//
// An Internet serializes to two plain-text files: the relationship graph in
// CAIDA serial-1 format (so external tools — and the real CAIDA datasets —
// interoperate) and a sidecar TSV with per-AS metadata and tier membership.
// The bench harness uses this as a cache so every experiment binary does
// not have to regenerate and re-measure the world.
#ifndef FLATNET_CORE_SERIALIZE_H_
#define FLATNET_CORE_SERIALIZE_H_

#include <string>

#include "core/internet.h"

namespace flatnet {

// Writes `<stem>.as-rel.txt` and `<stem>.meta.tsv`. The pair is published
// atomically — written to a pid-unique tmp sibling and renamed into place —
// so concurrent writers of the same stem never produce a torn file. Throws
// Error on I/O failure (tmp files are cleaned up).
void SaveInternet(const Internet& internet, const std::string& stem);

// Loads a pair written by SaveInternet. Throws Error if either file is
// missing or malformed; parse errors name the offending file and line.
Internet LoadInternet(const std::string& stem);

// True when both files exist.
bool InternetCacheExists(const std::string& stem);

}  // namespace flatnet

#endif  // FLATNET_CORE_SERIALIZE_H_
