// Binary topology store: the `.graph` format.
//
// An immutable, memory-mappable serialization of an Internet following
// the colstore envelope discipline of the `.sweep`/`.leak`/`.fail`
// stores: `FNGRAPH1` magic + version header, native-endian body, CRC-32 +
// `FNGRAPHE` footer, published via a pid-unique tmp file and atomic
// rename. Load errors always name the file and byte offset.
//
// Layout after the 48-byte header (magic, version, flags, num_ases,
// num_edges, topology fingerprint, section count) comes a descriptor
// table — one {offset, bytes} pair per section — then the sections
// themselves, each 8-byte aligned:
//
//   0  asn_of        u32[n]      dense id → ASN
//   1  by_asn        u32[n]      ids sorted by ASN (the IdOf index)
//   2  slice         u32[3n+1]   interleaved CSR bounds (PR 7 layout)
//   3  entry_ids     u32[2E]     flat neighbor ids, bucket-grouped
//   4  tier1_mask    u64[ceil(n/64)]
//   5  tier2_mask    u64[ceil(n/64)]
//   6  types         u8[n]       AsType per id
//   7  users         f64[n]      APNIC-style user estimate per id
//   8  name_offsets  u32[n+1]    bounds into the name blob
//   9  name_blob     bytes       concatenated AS names
//
// Sections 0–3 are exactly AsGraph's columns: LoadInternetBinary mmaps
// the file and serves adjacency straight from the mapping — no builder,
// no hash maps, no sorting. The stored FNV-1a fingerprint is recomputed
// from the loaded topology and must match, so a graph served from disk is
// provably the one that was saved.
#ifndef FLATNET_CORE_GRAPH_STORE_H_
#define FLATNET_CORE_GRAPH_STORE_H_

#include <cstdint>
#include <string>

#include "core/internet.h"

namespace flatnet {

// Writes `internet` to `path` atomically. Throws Error on I/O failure.
void SaveInternetBinary(const Internet& internet, const std::string& path);

// Memory-maps and validates a store written by SaveInternetBinary. The
// returned Internet's graph serves its CSR columns from the mapping (kept
// alive by the graph; copies share it). Throws Error naming `path` and
// the byte offset on any corruption.
Internet LoadInternetBinary(const std::string& path);

// Reads only the header fingerprint — cheap store/topology pairing checks
// without loading the graph.
std::uint64_t ReadGraphStoreFingerprint(const std::string& path);

// Loads `path` as a binary store when it names one (by extension), else as
// a SaveInternet text stem — the single entry point for tools that accept
// either.
Internet LoadInternetAuto(const std::string& path);

// True when `path` names a binary topology store (by extension).
bool IsGraphStorePath(const std::string& path);

}  // namespace flatnet

#endif  // FLATNET_CORE_GRAPH_STORE_H_
