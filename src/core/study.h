// End-to-end reproduction pipeline for one era (§4.1):
//
//   generate ground truth  →  run traceroute campaign from cloud VMs  →
//   infer cloud neighbors  →  merge with the BGP-visible graph (CAIDA
//   stand-in; existing link types win, new links become p2p)  →  analysis
//   topology (Internet).
//
// The study keeps the ground truth, the raw traces, and the per-cloud
// neighbor provenance so the §4.1 counts, §5 validation, and Appendix A
// comparisons can all be reported from one object.
#ifndef FLATNET_CORE_STUDY_H_
#define FLATNET_CORE_STUDY_H_

#include <memory>
#include <set>
#include <vector>

#include "core/internet.h"
#include "measure/inference.h"
#include "measure/traceroute.h"
#include "topogen/generate.h"

namespace flatnet {

struct StudyOptions {
  GeneratorParams generator;
  CampaignOptions campaign;
  MethodologyStage stage = MethodologyStage::kV3Final;
};

struct CloudPeerCounts {
  std::string name;
  std::size_t bgp_only = 0;    // peers visible in the BGP graph alone
  std::size_t merged = 0;      // peers after traceroute augmentation
  std::size_t ground_truth = 0;
};

class Study {
 public:
  explicit Study(const StudyOptions& options);

  const World& world() const { return world_; }
  const AddressPlan& plan() const { return *plan_; }
  const TracerouteCampaign& campaign() const { return *campaign_; }
  const NeighborInference& inference() const { return inference_; }

  // Analysis topology: BGP view + inferred cloud neighbors.
  const Internet& internet() const { return internet_; }
  // Ground-truth topology wrapped with the same tiers/metadata.
  const Internet& truth() const { return truth_; }

  // Inferred neighbor ASN set per cloud (indexed like world().clouds).
  const std::vector<std::set<Asn>>& inferred_neighbors() const { return inferred_; }

  // §4.1's "CAIDA vs. combined" peer counts for the study clouds.
  std::vector<CloudPeerCounts> PeerCounts() const;

  // Re-runs inference at a different methodology stage (for §5's
  // trajectory) without re-measuring.
  std::vector<std::set<Asn>> InferAtStage(MethodologyStage stage) const;

  const CymruResolver& cymru() const { return *cymru_; }
  const PeeringDbResolver& peeringdb() const { return *peeringdb_; }
  const WhoisResolver& whois() const { return *whois_; }

 private:
  AsGraph BuildMergedGraph() const;

  World world_;
  std::unique_ptr<AddressPlan> plan_;
  std::unique_ptr<CymruResolver> cymru_;
  std::unique_ptr<PeeringDbResolver> peeringdb_;
  std::unique_ptr<WhoisResolver> whois_;
  std::unique_ptr<TracerouteCampaign> campaign_;
  NeighborInference inference_;
  std::vector<std::set<Asn>> inferred_;
  Internet internet_;
  Internet truth_;
};

}  // namespace flatnet

#endif  // FLATNET_CORE_STUDY_H_
