#include "core/graph_store.h"

#include <cstring>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "core/fingerprint.h"
#include "core/serialize.h"
#include "util/colstore.h"
#include "util/error.h"
#include "util/mmap_file.h"
#include "util/narrow.h"
#include "util/strings.h"

namespace flatnet {
namespace {

using colstore::Append;
using colstore::AppendScalar;
using colstore::ReadScalar;

constexpr colstore::Format kFormat = {"FNGRAPH1", "FNGRAPHE", 1, "graph"};
// magic + version + flags + num_ases + num_edges + fingerprint + sections
// + reserved.
constexpr std::size_t kHeaderBytes = 8 + 4 + 4 + 8 + 8 + 8 + 4 + 4;
constexpr std::size_t kFingerprintOffset = 8 + 4 + 4 + 8 + 8;
constexpr std::size_t kNumSections = 10;
constexpr std::size_t kDescriptorBytes = kNumSections * 16;

const char* kSectionNames[kNumSections] = {
    "asn_of", "by_asn",     "slice", "entry_ids",    "tier1_mask",
    "tier2_mask", "types",  "users", "name_offsets", "name_blob",
};

struct Section {
  std::uint64_t offset = 0;
  std::uint64_t bytes = 0;
};

std::size_t MaskWords(std::size_t n) { return (n + 63) / 64; }

void PadTo8(std::string& out) {
  while (out.size() % 8 != 0) out.push_back('\0');
}

std::string Serialize(const Internet& internet) {
  const AsGraph& graph = internet.graph();
  std::size_t n = graph.num_ases();
  auto asn_of = graph.AsnColumn();
  auto by_asn = graph.ByAsnColumn();
  auto slice = graph.SliceColumn();
  auto entry_ids = graph.EntryIdsColumn();

  // Name blob + bounds.
  std::vector<std::uint32_t> name_offsets(n + 1, 0);
  std::string name_blob;
  for (AsId id = 0; id < n; ++id) {
    name_blob += internet.metadata().Get(id).name;
    name_offsets[id + 1] = CheckedNarrow32(name_blob.size(), "SaveInternetBinary name blob");
  }

  std::string out;
  colstore::AppendMagicAndVersion(out, kFormat);
  AppendScalar(out, std::uint32_t{0});  // flags, reserved
  AppendScalar(out, static_cast<std::uint64_t>(n));
  AppendScalar(out, static_cast<std::uint64_t>(graph.num_edges()));
  AppendScalar(out, TopologyFingerprint(internet));
  AppendScalar(out, static_cast<std::uint32_t>(kNumSections));
  AppendScalar(out, std::uint32_t{0});  // reserved

  // Descriptor table placeholder; patched once section offsets are known.
  std::size_t descriptor_at = out.size();
  out.append(kDescriptorBytes, '\0');

  Section sections[kNumSections];
  auto begin_section = [&](std::size_t s) {
    PadTo8(out);
    sections[s].offset = out.size();
  };
  auto end_section = [&](std::size_t s) { sections[s].bytes = out.size() - sections[s].offset; };
  auto write_span = [&](std::size_t s, const void* data, std::size_t bytes) {
    begin_section(s);
    Append(out, data, bytes);
    end_section(s);
  };

  write_span(0, asn_of.data(), asn_of.size_bytes());
  write_span(1, by_asn.data(), by_asn.size_bytes());
  write_span(2, slice.data(), slice.size_bytes());
  write_span(3, entry_ids.data(), entry_ids.size_bytes());
  for (std::size_t s = 4; s <= 5; ++s) {
    const Bitset& mask = s == 4 ? internet.tiers().tier1_mask : internet.tiers().tier2_mask;
    begin_section(s);
    for (std::size_t w = 0; w < MaskWords(n); ++w) {
      AppendScalar(out, w < mask.num_words() ? mask.Word(w) : std::uint64_t{0});
    }
    end_section(s);
  }
  begin_section(6);
  for (AsId id = 0; id < n; ++id) {
    AppendScalar(out, static_cast<std::uint8_t>(internet.metadata().Get(id).type));
  }
  end_section(6);
  begin_section(7);
  for (AsId id = 0; id < n; ++id) AppendScalar(out, internet.metadata().Get(id).users);
  end_section(7);
  write_span(8, name_offsets.data(), name_offsets.size() * sizeof(std::uint32_t));
  write_span(9, name_blob.data(), name_blob.size());

  for (std::size_t s = 0; s < kNumSections; ++s) {
    std::memcpy(out.data() + descriptor_at + s * 16, &sections[s].offset, 8);
    std::memcpy(out.data() + descriptor_at + s * 16 + 8, &sections[s].bytes, 8);
  }

  PadTo8(out);
  colstore::AppendFooter(out, kFormat);
  return out;
}

// Everything the loader derives from the header before touching sections.
struct StoreShape {
  std::size_t num_ases = 0;
  std::size_t num_edges = 0;
  std::uint64_t fingerprint = 0;
  Section sections[kNumSections];
};

// Validates header + descriptor table + section shapes against the file
// size; every failure names the file and the offending byte offset.
StoreShape CheckShape(const std::string& path, std::string_view bytes) {
  colstore::CheckHeader(path, bytes, kFormat,
                        kHeaderBytes + kDescriptorBytes + colstore::kFooterBytes);
  StoreShape shape;
  shape.num_ases = static_cast<std::size_t>(ReadScalar<std::uint64_t>(bytes, 16));
  shape.num_edges = static_cast<std::size_t>(ReadScalar<std::uint64_t>(bytes, 24));
  shape.fingerprint = ReadScalar<std::uint64_t>(bytes, kFingerprintOffset);
  std::uint32_t section_count = ReadScalar<std::uint32_t>(bytes, 40);
  if (section_count != kNumSections) {
    throw Error(StrFormat("%s:40: graph store has %u sections, expected %zu", path.c_str(),
                          section_count, kNumSections));
  }
  std::size_t n = shape.num_ases;
  // 32-bit CSR offsets on disk: reject headers whose counts could not have
  // been written by a correct writer before any size arithmetic overflows.
  if (shape.num_edges > 0x7fffffffull || n > 0xffffffffull) {
    throw Error(StrFormat("%s:16: header claims %zu ASes / %zu edges, beyond the 32-bit "
                          "CSR offsets the format stores",
                          path.c_str(), n, shape.num_edges));
  }

  std::uint64_t expected_bytes[kNumSections] = {
      4 * static_cast<std::uint64_t>(n),
      4 * static_cast<std::uint64_t>(n),
      4 * (3 * static_cast<std::uint64_t>(n) + 1),
      4 * (2 * static_cast<std::uint64_t>(shape.num_edges)),
      8 * static_cast<std::uint64_t>(MaskWords(n)),
      8 * static_cast<std::uint64_t>(MaskWords(n)),
      static_cast<std::uint64_t>(n),
      8 * static_cast<std::uint64_t>(n),
      4 * (static_cast<std::uint64_t>(n) + 1),
      0,  // name blob: any size, bounded below
  };
  std::size_t body_end = bytes.size() - colstore::kFooterBytes;
  std::uint64_t cursor = kHeaderBytes + kDescriptorBytes;
  for (std::size_t s = 0; s < kNumSections; ++s) {
    std::size_t at = kHeaderBytes + s * 16;
    shape.sections[s].offset = ReadScalar<std::uint64_t>(bytes, at);
    shape.sections[s].bytes = ReadScalar<std::uint64_t>(bytes, at + 8);
    const Section& sec = shape.sections[s];
    if (sec.offset % 8 != 0 || sec.offset < cursor || sec.offset > body_end ||
        sec.bytes > body_end - sec.offset) {
      throw Error(StrFormat("%s:%zu: section %s descriptor [%llu, +%llu) escapes the body "
                            "(valid range [%llu, %zu))",
                            path.c_str(), at, kSectionNames[s],
                            static_cast<unsigned long long>(sec.offset),
                            static_cast<unsigned long long>(sec.bytes),
                            static_cast<unsigned long long>(cursor), body_end));
    }
    if (s != 9 && sec.bytes != expected_bytes[s]) {
      throw Error(StrFormat("%s:%zu: section %s holds %llu bytes, header implies %llu",
                            path.c_str(), at + 8, kSectionNames[s],
                            static_cast<unsigned long long>(sec.bytes),
                            static_cast<unsigned long long>(expected_bytes[s])));
    }
    cursor = sec.offset + sec.bytes;
  }
  return shape;
}

template <typename T>
std::span<const T> SectionSpan(std::string_view bytes, const Section& sec) {
  return {reinterpret_cast<const T*>(bytes.data() + sec.offset), sec.bytes / sizeof(T)};
}

}  // namespace

void SaveInternetBinary(const Internet& internet, const std::string& path) {
  colstore::AtomicWriteFile(path, Serialize(internet), "SaveInternetBinary");
}

Internet LoadInternetBinary(const std::string& path) {
  auto mapped = std::make_shared<MappedFile>(path, "LoadInternetBinary");
  std::string_view bytes(mapped->data(), mapped->size());
  StoreShape shape = CheckShape(path, bytes);
  std::size_t n = shape.num_ases;

  // Cheap column checks before the CRC pass, so a corrupted field names
  // itself precisely; the CRC then covers everything else (including the
  // CSR columns the deep validation below re-checks structurally).
  auto types = SectionSpan<std::uint8_t>(bytes, shape.sections[6]);
  for (std::size_t id = 0; id < n; ++id) {
    if (types[id] > static_cast<std::uint8_t>(AsType::kCloud)) {
      throw Error(StrFormat("%s:%zu: AS %zu has invalid type byte %u", path.c_str(),
                            shape.sections[6].offset + id, id, types[id]));
    }
  }
  auto name_offsets = SectionSpan<std::uint32_t>(bytes, shape.sections[8]);
  for (std::size_t id = 0; id < n; ++id) {
    if (name_offsets[id] > name_offsets[id + 1]) {
      throw Error(StrFormat("%s:%zu: name bounds decrease at AS %zu", path.c_str(),
                            shape.sections[8].offset + id * 4, id));
    }
  }
  if (n > 0 && (name_offsets[0] != 0 || name_offsets[n] != shape.sections[9].bytes)) {
    throw Error(StrFormat("%s:%zu: name bounds span [%u, %u), blob holds %llu bytes",
                          path.c_str(), shape.sections[8].offset, name_offsets[0],
                          name_offsets[n],
                          static_cast<unsigned long long>(shape.sections[9].bytes)));
  }
  colstore::CheckFooter(path, bytes, kFormat);

  // The graph serves its columns straight from the mapping; the MappedFile
  // rides along as the keeper. FromColumns runs the full O(n + E)
  // structural validation.
  AsGraph graph = AsGraph::FromColumns(
      SectionSpan<Asn>(bytes, shape.sections[0]), SectionSpan<AsId>(bytes, shape.sections[1]),
      SectionSpan<std::uint32_t>(bytes, shape.sections[2]),
      SectionSpan<AsId>(bytes, shape.sections[3]), mapped, path);
  if (graph.num_edges() != shape.num_edges) {
    throw Error(StrFormat("%s:24: header claims %zu edges, adjacency holds %zu", path.c_str(),
                          shape.num_edges, graph.num_edges()));
  }

  TierSets tiers;
  for (std::size_t s = 4; s <= 5; ++s) {
    auto words = SectionSpan<std::uint64_t>(bytes, shape.sections[s]);
    Bitset& mask = s == 4 ? tiers.tier1_mask : tiers.tier2_mask;
    std::vector<AsId>& list = s == 4 ? tiers.tier1 : tiers.tier2;
    mask.Resize(n);
    for (std::size_t w = 0; w < words.size() && w < mask.num_words(); ++w) {
      mask.StoreWord(w, words[w]);
    }
    // Ascending-id membership lists, matching what LoadInternet rebuilds
    // from the text sidecar (SaveInternet writes rows in id order).
    mask.ForEachSet([&](std::size_t id) { list.push_back(static_cast<AsId>(id)); });
  }

  AsMetadata metadata(n);
  auto users = SectionSpan<double>(bytes, shape.sections[7]);
  const char* blob = bytes.data() + shape.sections[9].offset;
  for (AsId id = 0; id < n; ++id) {
    AsInfo& info = metadata.GetMutable(id);
    info.type = static_cast<AsType>(types[id]);
    info.users = users[id];
    info.name.assign(blob + name_offsets[id], name_offsets[id + 1] - name_offsets[id]);
  }

  Internet internet(std::move(graph), std::move(tiers), std::move(metadata));
  std::uint64_t actual = TopologyFingerprint(internet);
  if (actual != shape.fingerprint) {
    throw Error(StrFormat("%s:%zu: stored fingerprint %016llx does not match the loaded "
                          "topology %016llx",
                          path.c_str(), kFingerprintOffset,
                          static_cast<unsigned long long>(shape.fingerprint),
                          static_cast<unsigned long long>(actual)));
  }
  return internet;
}

std::uint64_t ReadGraphStoreFingerprint(const std::string& path) {
  MappedFile mapped(path, "ReadGraphStoreFingerprint");
  std::string_view bytes(mapped.data(), mapped.size());
  colstore::CheckHeader(path, bytes, kFormat,
                        kHeaderBytes + kDescriptorBytes + colstore::kFooterBytes);
  return ReadScalar<std::uint64_t>(bytes, kFingerprintOffset);
}

bool IsGraphStorePath(const std::string& path) {
  return path.size() >= 6 && path.compare(path.size() - 6, 6, ".graph") == 0;
}

Internet LoadInternetAuto(const std::string& path) {
  return IsGraphStorePath(path) ? LoadInternetBinary(path) : LoadInternet(path);
}

}  // namespace flatnet
