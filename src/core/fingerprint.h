// Topology fingerprint binding persisted results to the exact graph they
// were computed on.
//
// A 64-bit FNV-1a hash over everything that determines per-origin
// reachability: the dense-id → ASN mapping, the full typed adjacency
// structure, and the Tier-1/Tier-2 masks. Metadata (names, user counts)
// is deliberately excluded — it cannot change a reachability count.
// The same Internet always hashes to the same value across runs and
// machines, so a persisted store — sweep/leak/fail results or a binary
// `.graph` topology — can be validated before it is served.
#ifndef FLATNET_CORE_FINGERPRINT_H_
#define FLATNET_CORE_FINGERPRINT_H_

#include <cstdint>

#include "core/internet.h"

namespace flatnet {

std::uint64_t TopologyFingerprint(const Internet& internet);

}  // namespace flatnet

#endif  // FLATNET_CORE_FINGERPRINT_H_
