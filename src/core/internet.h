// The analysis topology: an AS graph plus tier sets and metadata, with the
// exclusion-mask vocabulary of §6 (provider-free, Tier-1-free,
// hierarchy-free).
#ifndef FLATNET_CORE_INTERNET_H_
#define FLATNET_CORE_INTERNET_H_

#include <string>

#include "asgraph/as_graph.h"
#include "asgraph/metadata.h"
#include "asgraph/tiers.h"
#include "util/bitset.h"

namespace flatnet {

class Internet {
 public:
  Internet() = default;
  Internet(AsGraph graph, TierSets tiers, AsMetadata metadata);

  const AsGraph& graph() const { return graph_; }
  const TierSets& tiers() const { return tiers_; }
  const AsMetadata& metadata() const { return metadata_; }

  std::size_t num_ases() const { return graph_.num_ases(); }
  const std::string& NameOf(AsId id) const { return metadata_.Get(id).name; }

  // reach(o, I \ Po): the origin's transit providers are removed.
  Bitset ProviderFreeExclusion(AsId origin) const;
  // reach(o, I \ Po \ T1).
  Bitset Tier1FreeExclusion(AsId origin) const;
  // reach(o, I \ Po \ T1 \ T2) — hierarchy-free (§6.4). The origin itself
  // is never excluded, even when it is a Tier-1/Tier-2.
  Bitset HierarchyFreeExclusion(AsId origin) const;

 private:
  AsGraph graph_;
  TierSets tiers_;
  AsMetadata metadata_;
};

}  // namespace flatnet

#endif  // FLATNET_CORE_INTERNET_H_
