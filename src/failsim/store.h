// Persistent columnar result store for failure-cascade campaigns.
//
// A `.fail` file holds the per-trial damage metrics for every cell of a
// campaign — one cell per (origin, scenario, severity, seed, trials)
// tuple — bound to the topology AND to the exact campaign by two FNV-1a
// fingerprints. Layout (native-endian):
//
//   header   magic "FNFAIL01" (8) | version u32 | flags u32 |
//            num_cells u32 | reserved u32 | topology fingerprint u64 |
//            campaign fingerprint u64
//   cells    num_cells fixed-width descriptors:
//            origin u32 | scenario u32 | severity u32 | trials u32 |
//            seed u64 | collected u32 | reserved u32 | attempts u64 |
//            baseline u64
//   body     for each cell in descriptor order:
//            loss_ases f64[collected], disconnected f64[collected],
//            then loss_users f64[collected] when flags bit 0 is set
//   footer   crc32 u32 over all preceding bytes | end magic "FNFAILE1" (8)
//
// Same envelope discipline as the `.sweep`/`.leak` stores (util/colstore):
// pid-unique tmp + atomic rename on write; Load() verifies magics,
// version, flags, descriptor bounds, and per-descriptor enum ranges
// before the CRC, so a corrupted field names itself, and every failure
// names the file and the byte offset.
#ifndef FLATNET_FAILSIM_STORE_H_
#define FLATNET_FAILSIM_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "asgraph/as_graph.h"
#include "core/internet.h"

namespace flatnet::failsim {

// What each trial of a cell knocks out of the topology.
enum class FailScenario : std::uint32_t {
  // Trial t fails one AS drawn without replacement (never the origin).
  kSingleAs = 0,
  // Trial t fails the t-th Tier-1 of a seeded permutation (origin
  // excluded) — every Tier-1 outage individually, in random order.
  kTier1 = 1,
  // Trial t fails the top-(t+1) hegemony ASes for the cell origin — the
  // deepening cascade along the origin's dependency ranking.
  kHegemonyCascade = 2,
  // Trial t fails `severity` distinct links drawn from the trial's slice
  // of the cell seed.
  kLinkSet = 3,
};
inline constexpr std::size_t kNumFailScenarios = 4;

const char* ToString(FailScenario scenario);

// One campaign cell: everything that determines its trial series.
struct FailCellSpec {
  AsId origin = 0;
  FailScenario scenario = FailScenario::kSingleAs;
  // Links failed per trial; kLinkSet only (must be >= 1 there, 0 otherwise).
  std::uint32_t severity = 0;
  std::uint64_t seed = 0;
  std::uint32_t trials = 0;  // requested per cell

  bool operator==(const FailCellSpec& other) const = default;
};

struct FailCellResult {
  FailCellSpec spec;
  std::uint64_t attempts = 0;  // knockout draws consumed during pre-draw
  std::uint64_t baseline = 0;  // intact destinations reachable from origin
  // Per collected trial, in draw order:
  std::vector<double> loss_ases;     // collateral loss fraction of baseline
                                     // (knocked-out ASes excluded)
  std::vector<double> disconnected;  // absolute ASes cut off (knocked incl.)
  std::vector<double> loss_users;    // user-weighted collateral fraction;
                                     // present when the table has_users
  // Engine output only, never persisted: the knockout order. For
  // kSingleAs/kTier1, targets[t] is trial t's failed AS; for
  // kHegemonyCascade, trial t fails targets[0..t]; empty for kLinkSet.
  std::vector<AsId> targets;

  std::size_t collected() const { return loss_ases.size(); }
  bool UnderCollected() const { return collected() < spec.trials; }
};

// In-memory campaign result, serializable to a `.fail` store.
struct FailTable {
  std::uint64_t fingerprint = 0;           // topology
  std::uint64_t campaign_fingerprint = 0;  // topology + every cell spec
  bool has_users = false;                  // user-weighted column present
  std::vector<FailCellResult> cells;
};

// Writes `table` to `path` via pid-unique tmp + rename. Throws Error on
// I/O failure and InvalidArgument on an inconsistent table (column
// length mismatch).
void WriteFailStore(const std::string& path, const FailTable& table);

// A loaded, validated store. Copyable; lookups are plain array reads.
class FailStore {
 public:
  FailStore() = default;

  // Throws Error naming `path` and the byte offset on any structural
  // problem.
  static FailStore Load(const std::string& path);

  // Throws Error when the store's topology fingerprint does not match
  // `internet`.
  void ValidateAgainst(const Internet& internet) const;

  const FailTable& table() const { return table_; }
  std::uint64_t fingerprint() const { return table_.fingerprint; }
  std::uint64_t campaign_fingerprint() const { return table_.campaign_fingerprint; }
  bool has_users() const { return table_.has_users; }
  std::size_t num_cells() const { return table_.cells.size(); }
  const FailCellResult& cell(std::size_t i) const { return table_.cells[i]; }

  // Index of the first cell matching (origin, scenario), or npos when
  // absent. Linear scan — campaigns hold tens of cells.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t FindCell(AsId origin, FailScenario scenario) const;

 private:
  FailTable table_;
};

}  // namespace flatnet::failsim

#endif  // FLATNET_FAILSIM_STORE_H_
