#include "failsim/store.h"

#include <cstring>

#include "sweep/fingerprint.h"
#include "util/colstore.h"
#include "util/error.h"
#include "util/strings.h"

namespace flatnet::failsim {
namespace {

using colstore::Append;
using colstore::AppendScalar;
using colstore::ReadScalar;

constexpr colstore::Format kFormat = {"FNFAIL01", "FNFAILE1", 1, "fail"};
constexpr std::uint32_t kFlagHasUsers = 1u << 0;
constexpr std::size_t kHeaderBytes = 8 + 4 + 4 + 4 + 4 + 8 + 8;
constexpr std::size_t kCellDescBytes = 4 + 4 + 4 + 4 + 8 + 4 + 4 + 8 + 8;
constexpr std::size_t kFooterBytes = colstore::kFooterBytes;

std::string Serialize(const FailTable& table) {
  std::size_t total_trials = 0;
  for (const FailCellResult& cell : table.cells) {
    if (cell.disconnected.size() != cell.collected()) {
      throw InvalidArgument(StrFormat(
          "WriteFailStore: cell for origin %u has %zu disconnected values, expected %zu",
          cell.spec.origin, cell.disconnected.size(), cell.collected()));
    }
    std::size_t users_expected = table.has_users ? cell.collected() : 0;
    if (cell.loss_users.size() != users_expected) {
      throw InvalidArgument(StrFormat(
          "WriteFailStore: cell for origin %u has %zu user losses, expected %zu",
          cell.spec.origin, cell.loss_users.size(), users_expected));
    }
    total_trials += cell.collected();
  }
  std::size_t columns = table.has_users ? 3 : 2;
  std::string out;
  out.reserve(kHeaderBytes + table.cells.size() * kCellDescBytes +
              columns * total_trials * sizeof(double) + kFooterBytes);
  colstore::AppendMagicAndVersion(out, kFormat);
  AppendScalar(out, table.has_users ? kFlagHasUsers : std::uint32_t{0});
  AppendScalar(out, static_cast<std::uint32_t>(table.cells.size()));
  AppendScalar(out, std::uint32_t{0});  // reserved
  AppendScalar(out, table.fingerprint);
  AppendScalar(out, table.campaign_fingerprint);
  for (const FailCellResult& cell : table.cells) {
    AppendScalar(out, static_cast<std::uint32_t>(cell.spec.origin));
    AppendScalar(out, static_cast<std::uint32_t>(cell.spec.scenario));
    AppendScalar(out, cell.spec.severity);
    AppendScalar(out, cell.spec.trials);
    AppendScalar(out, cell.spec.seed);
    AppendScalar(out, static_cast<std::uint32_t>(cell.collected()));
    AppendScalar(out, std::uint32_t{0});  // reserved
    AppendScalar(out, cell.attempts);
    AppendScalar(out, cell.baseline);
  }
  for (const FailCellResult& cell : table.cells) {
    Append(out, cell.loss_ases.data(), cell.loss_ases.size() * sizeof(double));
    Append(out, cell.disconnected.data(), cell.disconnected.size() * sizeof(double));
    if (table.has_users) {
      Append(out, cell.loss_users.data(), cell.loss_users.size() * sizeof(double));
    }
  }
  colstore::AppendFooter(out, kFormat);
  return out;
}

}  // namespace

const char* ToString(FailScenario scenario) {
  switch (scenario) {
    case FailScenario::kSingleAs: return "single_as";
    case FailScenario::kTier1: return "tier1";
    case FailScenario::kHegemonyCascade: return "hegemony_cascade";
    case FailScenario::kLinkSet: return "link_set";
  }
  return "unknown";
}

void WriteFailStore(const std::string& path, const FailTable& table) {
  colstore::AtomicWriteFile(path, Serialize(table), "WriteFailStore");
}

FailStore FailStore::Load(const std::string& path) {
  std::string bytes = colstore::ReadFileBytes(path, "FailStore");
  colstore::CheckHeader(path, bytes, kFormat, kHeaderBytes + kFooterBytes);
  std::uint32_t flags = ReadScalar<std::uint32_t>(bytes, 12);
  if ((flags & ~kFlagHasUsers) != 0) {
    throw Error(StrFormat("%s:12: unknown flags 0x%x", path.c_str(), flags));
  }
  std::uint32_t num_cells = ReadScalar<std::uint32_t>(bytes, 16);
  FailTable table;
  table.has_users = (flags & kFlagHasUsers) != 0;
  table.fingerprint = ReadScalar<std::uint64_t>(bytes, 24);
  table.campaign_fingerprint = ReadScalar<std::uint64_t>(bytes, 32);

  std::size_t descs_end = kHeaderBytes + static_cast<std::size_t>(num_cells) * kCellDescBytes;
  if (bytes.size() < descs_end + kFooterBytes) {
    throw Error(StrFormat("%s:%zu: truncated fail store (%zu bytes, %u cell descriptors "
                          "need %zu)",
                          path.c_str(), kHeaderBytes, bytes.size(), num_cells,
                          descs_end + kFooterBytes));
  }

  std::size_t columns = table.has_users ? 3 : 2;
  std::size_t total_trials = 0;
  table.cells.resize(num_cells);
  for (std::uint32_t i = 0; i < num_cells; ++i) {
    std::size_t off = kHeaderBytes + static_cast<std::size_t>(i) * kCellDescBytes;
    FailCellResult& cell = table.cells[i];
    cell.spec.origin = ReadScalar<std::uint32_t>(bytes, off);
    std::uint32_t scenario = ReadScalar<std::uint32_t>(bytes, off + 4);
    if (scenario >= kNumFailScenarios) {
      throw Error(StrFormat("%s:%zu: cell %u has invalid scenario %u", path.c_str(), off + 4,
                            i, scenario));
    }
    cell.spec.scenario = static_cast<FailScenario>(scenario);
    cell.spec.severity = ReadScalar<std::uint32_t>(bytes, off + 8);
    cell.spec.trials = ReadScalar<std::uint32_t>(bytes, off + 12);
    cell.spec.seed = ReadScalar<std::uint64_t>(bytes, off + 16);
    std::uint32_t collected = ReadScalar<std::uint32_t>(bytes, off + 24);
    cell.attempts = ReadScalar<std::uint64_t>(bytes, off + 32);
    cell.baseline = ReadScalar<std::uint64_t>(bytes, off + 40);
    cell.loss_ases.resize(collected);
    cell.disconnected.resize(collected);
    if (table.has_users) cell.loss_users.resize(collected);
    total_trials += collected;
  }

  std::size_t expected = descs_end + columns * total_trials * sizeof(double) + kFooterBytes;
  if (bytes.size() != expected) {
    throw Error(StrFormat("%s:%zu: truncated or oversized fail store (%zu bytes, descriptors "
                          "imply %zu)",
                          path.c_str(), descs_end, bytes.size(), expected));
  }
  colstore::CheckFooter(path, bytes, kFormat);

  std::size_t offset = descs_end;
  auto read_column = [&](std::vector<double>& column) {
    std::memcpy(column.data(), bytes.data() + offset, column.size() * sizeof(double));
    offset += column.size() * sizeof(double);
  };
  for (FailCellResult& cell : table.cells) {
    read_column(cell.loss_ases);
    read_column(cell.disconnected);
    if (table.has_users) read_column(cell.loss_users);
  }
  FailStore store;
  store.table_ = std::move(table);
  return store;
}

void FailStore::ValidateAgainst(const Internet& internet) const {
  std::uint64_t expected = sweep::TopologyFingerprint(internet);
  if (table_.fingerprint != expected) {
    throw Error(StrFormat("fail store fingerprint %016llx does not match topology %016llx "
                          "(results were computed on a different graph)",
                          static_cast<unsigned long long>(table_.fingerprint),
                          static_cast<unsigned long long>(expected)));
  }
}

std::size_t FailStore::FindCell(AsId origin, FailScenario scenario) const {
  for (std::size_t i = 0; i < table_.cells.size(); ++i) {
    const FailCellSpec& spec = table_.cells[i].spec;
    if (spec.origin == origin && spec.scenario == scenario) return i;
  }
  return npos;
}

}  // namespace flatnet::failsim
