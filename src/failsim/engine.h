// Deterministic parallel failure-cascade campaign engine.
//
// A campaign is a list of cells (src/failsim/store.h); each cell's
// knockout sets are pre-drawn SERIALLY from the cell's seed — the random
// single-AS ablations and link draws replay a fixed Rng stream, the
// Tier-1 permutation comes from the same stream, and the hegemony
// cascade order is the deterministic ranking of bgp/hegemony.h on the
// intact graph. Only the evaluation of the drawn trials is parallel: the
// concatenated trial space is split into fixed-size chunks claimed off
// an atomic cursor by ThreadPool workers, each holding one reusable
// workspace (a ReachabilityEngine plus knockout/reach scratch bitsets).
// Every trial writes into its pre-assigned slot, so the resulting table
// — and the store serialized from it — is byte-identical at any thread
// count and any chunk size.
//
// With a journal path set, completed chunks are checkpointed through
// sweep::SweepJournal (doubles ride as u32 word pairs); a killed run
// resumed with `resume = true` recomputes only the missing chunks and
// produces a byte-identical store. The journal header is keyed on the
// campaign fingerprint, so resuming against different inputs is loud.
//
// Instrumented with src/obs/: failsim.chunks_completed / chunks_resumed /
// checkpoint_writes / trials_evaluated counters, a failsim.trials_per_sec
// gauge, and failsim.run / failsim.prepare / failsim.chunk trace spans.
#ifndef FLATNET_FAILSIM_ENGINE_H_
#define FLATNET_FAILSIM_ENGINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/internet.h"
#include "failsim/store.h"

namespace flatnet::failsim {

struct FailCampaignOptions {
  // Worker parallelism; 0 = hardware concurrency.
  std::size_t threads = 0;
  // Trials per chunk — the unit of claiming and of checkpointing. Failure
  // trials are heavier than leak trials (link trials rebuild the graph),
  // so the default chunk is smaller than leaksim's.
  std::uint32_t chunk_trials = 16;
  // Per-AS user weights (one entry per AS); non-null enables the
  // user-weighted loss column in every cell. Must outlive the run.
  const std::vector<double>* users = nullptr;
  // Viewpoint-trimming fraction for kHegemonyCascade rankings (each end).
  double hegemony_trim = 0.1;
  // When non-empty, completed chunks are journaled here.
  std::string journal_path;
  // Resume from an existing journal at journal_path (fresh start when the
  // file does not exist). A mismatch against this topology, cell list, or
  // user-weight flag throws rather than silently recomputing.
  bool resume = false;
  // Test/smoke hooks: stop after this many freshly computed chunks
  // (0 = run to completion), and sleep per completed chunk so an external
  // kill can land mid-run on small campaigns.
  std::uint32_t max_chunks = 0;
  std::uint32_t throttle_chunk_ms = 0;
};

struct FailCampaignStats {
  std::size_t chunks_total = 0;
  std::size_t chunks_resumed = 0;   // restored from the journal
  std::size_t chunks_computed = 0;  // computed by this run
  std::size_t trials_evaluated = 0;
  bool complete = false;  // false only when max_chunks stopped the run early
  double seconds = 0.0;
};

// Runs the campaign. The returned table covers every trial when
// stats->complete (untouched slots are zero on an early stop). Per-cell
// under-collection (fewer viable knockout sets than `trials` — e.g. a
// Tier-1 cell on a topology with 12 Tier-1s) is reported through each
// cell's collected()/UnderCollected(), never by silently shrinking
// someone else's slots. Throws InvalidArgument on a bad options/cell
// combination and Error on journal failures.
FailTable RunFailureCampaign(const Internet& internet, const std::vector<FailCellSpec>& cells,
                             const FailCampaignOptions& options = {},
                             FailCampaignStats* stats = nullptr);

// The campaign fingerprint the journal and store carry: FNV-1a over the
// topology fingerprint, the user-weight flag, the hegemony trim, and
// every cell spec.
std::uint64_t CampaignFingerprint(const Internet& internet,
                                  const std::vector<FailCellSpec>& cells, bool has_users,
                                  double hegemony_trim);

// Publishes `table` to `path` (atomic tmp+rename) and, on success,
// removes the now-redundant journal when `journal_path` is non-empty.
void FinalizeFailStore(const std::string& path, const FailTable& table,
                       const std::string& journal_path = std::string());

}  // namespace flatnet::failsim

#endif  // FLATNET_FAILSIM_ENGINE_H_
