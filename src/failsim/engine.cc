#include "failsim/engine.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "bgp/hegemony.h"
#include "bgp/propagation.h"
#include "bgp/reachability.h"
#include "obs/campaign.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sweep/fingerprint.h"
#include "sweep/journal.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace flatnet::failsim {
namespace {

struct FailsimCounters {
  obs::Counter& chunks_completed = obs::GetCounter("failsim.chunks_completed");
  obs::Counter& chunks_resumed = obs::GetCounter("failsim.chunks_resumed");
  obs::Counter& checkpoint_writes = obs::GetCounter("failsim.checkpoint_writes");
  obs::Counter& trials_evaluated = obs::GetCounter("failsim.trials_evaluated");
  obs::Gauge& trials_per_sec = obs::GetGauge("failsim.trials_per_sec");
};

FailsimCounters& Counters() {
  static FailsimCounters counters;
  return counters;
}

std::uint64_t Fnv1aMix(std::uint64_t hash, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xff;
    hash *= 1099511628211ull;
  }
  return hash;
}

// Journal payload encoding: each double rides as two u32 words (low word
// first). Per trial the payload holds the collateral loss fraction, the
// disconnected count, then — when users are weighted — the user loss.
void EncodeDouble(double value, std::uint32_t* out) {
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  out[0] = static_cast<std::uint32_t>(bits);
  out[1] = static_cast<std::uint32_t>(bits >> 32);
}

double DecodeDouble(const std::uint32_t* in) {
  std::uint64_t bits = (static_cast<std::uint64_t>(in[1]) << 32) | in[0];
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

// The serial prep product: per-cell baseline reach sets and pre-drawn
// knockout material, and the prefix sums mapping global trial indices
// back to (cell, local).
struct PreparedCampaign {
  std::vector<Bitset> baselines;        // intact reach set, origin included
  std::vector<double> baseline_users;   // Σ users over baseline destinations
  std::vector<std::vector<std::uint32_t>> edge_draws;  // kLinkSet: trials×severity indices
  std::vector<AsGraph::Edge> edge_list;  // canonical order, filled when any cell fails links
  std::vector<std::size_t> offsets;      // cells.size() + 1 entries
  std::size_t total_trials = 0;
};

PreparedCampaign Prepare(const Internet& internet, const std::vector<FailCellSpec>& cells,
                         const FailCampaignOptions& options, FailTable& table) {
  obs::TraceSpan prep_span("failsim.prepare");
  const AsGraph& graph = internet.graph();
  std::size_t n = internet.num_ases();
  PreparedCampaign prep;
  prep.baselines.reserve(cells.size());
  prep.baseline_users.reserve(cells.size());
  prep.edge_draws.resize(cells.size());
  prep.offsets.reserve(cells.size() + 1);
  prep.offsets.push_back(0);
  table.cells.reserve(cells.size());

  ReachabilityEngine engine(graph);
  // Hegemony rankings are deterministic per origin; cells sharing an
  // origin share the computation.
  std::map<AsId, std::vector<AsId>> rankings;

  for (std::size_t i = 0; i < cells.size(); ++i) {
    const FailCellSpec& spec = cells[i];
    if (spec.origin >= n) {
      throw InvalidArgument(StrFormat("RunFailureCampaign: cell %zu origin %u out of range "
                                      "(%zu ASes)",
                                      i, spec.origin, n));
    }
    if (spec.scenario == FailScenario::kLinkSet) {
      if (spec.severity == 0 || spec.severity > graph.num_edges()) {
        throw InvalidArgument(StrFormat("RunFailureCampaign: cell %zu link severity %u out "
                                        "of range (%zu links)",
                                        i, spec.severity, graph.num_edges()));
      }
    } else if (spec.severity != 0) {
      throw InvalidArgument(StrFormat("RunFailureCampaign: cell %zu severity %u is only "
                                      "meaningful for link_set cells",
                                      i, spec.severity));
    }

    FailCellResult cell;
    cell.spec = spec;

    Bitset baseline;
    engine.ComputeInto(spec.origin, nullptr, baseline);
    std::size_t baseline_count = baseline.Count();
    cell.baseline = baseline_count > 0 ? baseline_count - 1 : 0;  // destinations only
    double users_total = 0.0;
    if (options.users != nullptr) {
      for (std::size_t w = 0; w < baseline.num_words(); ++w) {
        std::uint64_t word = baseline.Word(w);
        while (word != 0) {
          std::size_t a = 64 * w + static_cast<std::size_t>(std::countr_zero(word));
          if (a != spec.origin) users_total += (*options.users)[a];
          word &= word - 1;
        }
      }
    }
    prep.baselines.push_back(std::move(baseline));
    prep.baseline_users.push_back(users_total);

    Rng rng(spec.seed);
    std::size_t collected = 0;
    switch (spec.scenario) {
      case FailScenario::kSingleAs: {
        std::uint32_t avail = static_cast<std::uint32_t>(n - 1);
        std::uint32_t k = std::min(spec.trials, avail);
        for (std::uint32_t idx : rng.SampleWithoutReplacement(avail, k)) {
          // Index space skips the origin.
          cell.targets.push_back(idx < spec.origin ? idx : idx + 1);
        }
        collected = k;
        break;
      }
      case FailScenario::kTier1: {
        std::vector<AsId> pool;
        for (AsId t1 : internet.tiers().tier1) {
          if (t1 != spec.origin) pool.push_back(t1);
        }
        std::uint32_t k =
            std::min<std::uint32_t>(spec.trials, static_cast<std::uint32_t>(pool.size()));
        for (std::uint32_t idx :
             rng.SampleWithoutReplacement(static_cast<std::uint32_t>(pool.size()), k)) {
          cell.targets.push_back(pool[idx]);
        }
        collected = k;
        break;
      }
      case FailScenario::kHegemonyCascade: {
        auto it = rankings.find(spec.origin);
        if (it == rankings.end()) {
          RouteComputation computation(graph, {{.node = spec.origin}});
          HegemonyOptions hegemony_options;
          hegemony_options.trim = options.hegemony_trim;
          it = rankings
                   .emplace(spec.origin,
                            HegemonyRanking(ComputeHegemony(computation, hegemony_options)))
                   .first;
        }
        const std::vector<AsId>& ranking = it->second;
        std::size_t k = std::min<std::size_t>(spec.trials, ranking.size());
        cell.targets.assign(ranking.begin(), ranking.begin() + k);
        collected = k;
        break;
      }
      case FailScenario::kLinkSet: {
        std::uint32_t num_edges = static_cast<std::uint32_t>(graph.num_edges());
        if (prep.edge_list.empty()) prep.edge_list = graph.EdgeList();
        std::vector<std::uint32_t>& draws = prep.edge_draws[i];
        draws.reserve(std::size_t{spec.trials} * spec.severity);
        for (std::uint32_t t = 0; t < spec.trials; ++t) {
          for (std::uint32_t e : rng.SampleWithoutReplacement(num_edges, spec.severity)) {
            draws.push_back(e);
          }
        }
        collected = spec.trials;
        break;
      }
    }
    cell.attempts = collected;
    cell.loss_ases.resize(collected, 0.0);
    cell.disconnected.resize(collected, 0.0);
    if (options.users != nullptr) cell.loss_users.resize(collected, 0.0);
    table.cells.push_back(std::move(cell));

    prep.total_trials += collected;
    prep.offsets.push_back(prep.total_trials);
  }
  return prep;
}

// Per-worker reusable evaluation state for the shared intact graph.
// Link-set trials operate on a rebuilt subgraph instead and allocate per
// trial — the rebuild dominates anyway.
struct FailWorkspace {
  explicit FailWorkspace(const AsGraph& graph)
      : engine(graph), mask(graph.num_ases()), damaged(graph.num_ases()) {}
  ReachabilityEngine engine;
  Bitset mask;
  Bitset damaged;
};

struct TrialOutcome {
  double loss_ases = 0.0;
  double disconnected = 0.0;
  double loss_users = 0.0;
};

// Σ users over baseline-reachable destinations lost in this trial,
// excluding the knocked-out ASes themselves (`mask` empty for link
// trials). The origin is in both sets, so it never counts.
double LostUsers(const Bitset& baseline, const Bitset& damaged, const Bitset* mask,
                 const std::vector<double>& users) {
  double lost = 0.0;
  for (std::size_t w = 0; w < baseline.num_words(); ++w) {
    std::uint64_t word = baseline.Word(w) & ~damaged.Word(w);
    if (mask != nullptr) word &= ~mask->Word(w);
    while (word != 0) {
      lost += users[64 * w + static_cast<std::size_t>(std::countr_zero(word))];
      word &= word - 1;
    }
  }
  return lost;
}

TrialOutcome EvaluateTrial(const Internet& internet, const PreparedCampaign& prep,
                           const FailTable& table, std::size_t cell_index, std::size_t local,
                           const std::vector<double>* users, FailWorkspace& workspace) {
  const FailCellResult& cell = table.cells[cell_index];
  const FailCellSpec& spec = cell.spec;
  const Bitset& baseline = prep.baselines[cell_index];
  double baseline_count = static_cast<double>(cell.baseline);
  double baseline_users = prep.baseline_users[cell_index];

  std::size_t damaged_count = 0;
  std::size_t knocked_reachable = 0;
  double lost_users = 0.0;

  if (spec.scenario == FailScenario::kLinkSet) {
    const AsGraph& graph = internet.graph();
    const std::uint32_t* failed =
        prep.edge_draws[cell_index].data() + local * spec.severity;
    AsGraphBuilder builder;
    for (AsId id = 0; id < graph.num_ases(); ++id) builder.AddAs(graph.AsnOf(id));
    for (std::uint32_t e = 0; e < prep.edge_list.size(); ++e) {
      bool drop = false;
      for (std::uint32_t f = 0; f < spec.severity; ++f) {
        if (failed[f] == e) {
          drop = true;
          break;
        }
      }
      if (drop) continue;
      const AsGraph::Edge& edge = prep.edge_list[e];
      builder.AddEdge(edge.a, edge.b, edge.type);
    }
    AsGraph sub = std::move(builder).Build();
    ReachabilityEngine sub_engine(sub);
    if (users != nullptr) {
      sub_engine.ComputeInto(spec.origin, nullptr, workspace.damaged);
      std::size_t reached = workspace.damaged.Count();
      damaged_count = reached > 0 ? reached - 1 : 0;
      lost_users = LostUsers(baseline, workspace.damaged, nullptr, *users);
    } else {
      damaged_count = sub_engine.Count(spec.origin);
    }
  } else {
    workspace.mask.ResetAll();
    std::size_t knockout = spec.scenario == FailScenario::kHegemonyCascade ? local + 1 : 1;
    std::size_t first = spec.scenario == FailScenario::kHegemonyCascade ? 0 : local;
    for (std::size_t k = 0; k < knockout; ++k) {
      AsId target = cell.targets[first + k];
      workspace.mask.Set(target);
      if (baseline.Test(target)) ++knocked_reachable;
    }
    if (users != nullptr) {
      workspace.engine.ComputeInto(spec.origin, &workspace.mask, workspace.damaged);
      std::size_t reached = workspace.damaged.Count();
      damaged_count = reached > 0 ? reached - 1 : 0;
      lost_users = LostUsers(baseline, workspace.damaged, &workspace.mask, *users);
    } else {
      damaged_count = workspace.engine.Count(spec.origin, &workspace.mask);
    }
  }

  double disconnected =
      baseline_count > static_cast<double>(damaged_count)
          ? baseline_count - static_cast<double>(damaged_count)
          : 0.0;
  double collateral = disconnected - static_cast<double>(knocked_reachable);
  if (collateral < 0.0) collateral = 0.0;

  TrialOutcome outcome;
  outcome.disconnected = disconnected;
  outcome.loss_ases = baseline_count > 0.0 ? collateral / baseline_count : 0.0;
  outcome.loss_users = baseline_users > 0.0 ? lost_users / baseline_users : 0.0;
  return outcome;
}

}  // namespace

std::uint64_t CampaignFingerprint(const Internet& internet,
                                  const std::vector<FailCellSpec>& cells, bool has_users,
                                  double hegemony_trim) {
  std::uint64_t hash = 14695981039346656037ull;
  hash = Fnv1aMix(hash, sweep::TopologyFingerprint(internet));
  hash = Fnv1aMix(hash, has_users ? 1 : 0);
  hash = Fnv1aMix(hash, std::bit_cast<std::uint64_t>(hegemony_trim));
  hash = Fnv1aMix(hash, cells.size());
  for (const FailCellSpec& spec : cells) {
    hash = Fnv1aMix(hash, spec.origin);
    hash = Fnv1aMix(hash, static_cast<std::uint64_t>(spec.scenario));
    hash = Fnv1aMix(hash, spec.severity);
    hash = Fnv1aMix(hash, spec.seed);
    hash = Fnv1aMix(hash, spec.trials);
  }
  return hash;
}

FailTable RunFailureCampaign(const Internet& internet, const std::vector<FailCellSpec>& cells,
                             const FailCampaignOptions& options, FailCampaignStats* stats) {
  if (options.chunk_trials == 0) {
    throw InvalidArgument("RunFailureCampaign: chunk_trials must be > 0");
  }
  if (options.users != nullptr && options.users->size() != internet.num_ases()) {
    throw InvalidArgument(StrFormat("RunFailureCampaign: %zu user weights for %zu ASes",
                                    options.users->size(), internet.num_ases()));
  }
  if (!(options.hegemony_trim >= 0.0) || options.hegemony_trim >= 0.5) {
    throw InvalidArgument("RunFailureCampaign: hegemony_trim must be in [0, 0.5)");
  }

  obs::TraceSpan run_span("failsim.run");
  Stopwatch stopwatch;

  FailTable table;
  table.fingerprint = sweep::TopologyFingerprint(internet);
  table.has_users = options.users != nullptr;
  table.campaign_fingerprint =
      CampaignFingerprint(internet, cells, table.has_users, options.hegemony_trim);
  PreparedCampaign prep = Prepare(internet, cells, options, table);

  std::size_t words_per_trial = table.has_users ? 6 : 4;
  std::size_t num_chunks =
      prep.total_trials == 0
          ? 0
          : (prep.total_trials + options.chunk_trials - 1) / options.chunk_trials;
  std::vector<char> done(num_chunks, 0);
  std::size_t chunks_resumed = 0;

  // Reuse the sweep journal: "origins" are global trial indices and each
  // trial's values are its metrics as u32 word pairs. The fingerprint
  // slot carries the campaign fingerprint so a resume against a different
  // topology, cell list, trim, or user-weight flag fails loudly.
  sweep::SweepMeta meta;
  meta.fingerprint = table.campaign_fingerprint;
  meta.num_origins = prep.total_trials;
  meta.columns = table.has_users ? 0x7 : 0x3;
  meta.chunk_size = options.chunk_trials;

  // Writes a trial's metrics into its pre-assigned slot; `cell` is the
  // index of the cell containing global trial `g`.
  auto slot_write = [&](std::size_t cell, std::size_t g, const TrialOutcome& outcome) {
    std::size_t local = g - prep.offsets[cell];
    table.cells[cell].loss_ases[local] = outcome.loss_ases;
    table.cells[cell].disconnected[local] = outcome.disconnected;
    if (table.has_users) table.cells[cell].loss_users[local] = outcome.loss_users;
  };
  auto cell_of = [&](std::size_t g) {
    return static_cast<std::size_t>(
        std::upper_bound(prep.offsets.begin(), prep.offsets.end(), g) -
        prep.offsets.begin() - 1);
  };

  sweep::SweepJournal journal;
  if (!options.journal_path.empty()) {
    bool exists = std::filesystem::exists(options.journal_path);
    if (options.resume && exists) {
      std::vector<std::pair<std::uint32_t, std::vector<std::uint32_t>>> recovered;
      journal = sweep::SweepJournal::Recover(options.journal_path, meta, &recovered);
      for (auto& [chunk_index, values] : recovered) {
        if (chunk_index >= num_chunks) {
          throw Error(StrFormat("%s: journal record for chunk %u is out of range (%zu chunks)",
                                options.journal_path.c_str(), chunk_index, num_chunks));
        }
        std::size_t begin = std::size_t{chunk_index} * options.chunk_trials;
        std::size_t chunk_len =
            std::min<std::size_t>(options.chunk_trials, prep.total_trials - begin);
        if (values.size() != chunk_len * words_per_trial) {
          throw Error(StrFormat("%s: journal record for chunk %u holds %zu values, "
                                "expected %zu",
                                options.journal_path.c_str(), chunk_index, values.size(),
                                chunk_len * words_per_trial));
        }
        std::size_t cell = cell_of(begin);
        for (std::size_t i = 0; i < chunk_len; ++i) {
          std::size_t g = begin + i;
          while (g >= prep.offsets[cell + 1]) ++cell;
          const std::uint32_t* at = values.data() + i * words_per_trial;
          TrialOutcome outcome;
          outcome.loss_ases = DecodeDouble(at);
          outcome.disconnected = DecodeDouble(at + 2);
          if (table.has_users) outcome.loss_users = DecodeDouble(at + 4);
          slot_write(cell, g, outcome);
        }
        if (!done[chunk_index]) {
          done[chunk_index] = 1;
          ++chunks_resumed;
        }
      }
      Counters().chunks_resumed.Increment(chunks_resumed);
      obs::Log(obs::LogLevel::kInfo, "failsim", "resume")
          .Kv("journal", options.journal_path)
          .Kv("chunks_resumed", static_cast<std::uint64_t>(chunks_resumed))
          .Kv("chunks_total", static_cast<std::uint64_t>(num_chunks));
    } else {
      journal = sweep::SweepJournal::Create(options.journal_path, meta);
    }
  }

  std::atomic<std::size_t> next_chunk{0};
  std::atomic<std::size_t> chunks_computed{0};
  std::atomic<std::size_t> trials_evaluated{0};
  std::atomic<bool> failed{false};
  std::mutex journal_mu;
  std::string failure;  // first worker error, guarded by journal_mu

  obs::CampaignMonitor::Options monitor_options;
  monitor_options.component = "failsim";
  monitor_options.unit = "trials";
  monitor_options.total_chunks = num_chunks;
  monitor_options.resumed_chunks = chunks_resumed;
  monitor_options.workers = options.threads > 0
                                ? options.threads
                                : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  obs::CampaignMonitor monitor(monitor_options);

  auto worker_loop = [&] {
    FailWorkspace workspace(internet.graph());
    std::vector<std::uint32_t> payload;
    for (;;) {
      if (failed.load(std::memory_order_relaxed)) break;
      if (options.max_chunks != 0 &&
          chunks_computed.load(std::memory_order_relaxed) >= options.max_chunks) {
        break;
      }
      std::size_t chunk = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= num_chunks) break;
      if (done[chunk]) continue;

      obs::TraceSpan chunk_span("failsim.chunk");
      Stopwatch chunk_watch;
      std::size_t begin = chunk * options.chunk_trials;
      std::size_t chunk_len =
          std::min<std::size_t>(options.chunk_trials, prep.total_trials - begin);
      payload.assign(chunk_len * words_per_trial, 0);
      std::size_t cell = cell_of(begin);
      for (std::size_t i = 0; i < chunk_len; ++i) {
        std::size_t g = begin + i;
        while (g >= prep.offsets[cell + 1]) ++cell;
        TrialOutcome outcome = EvaluateTrial(internet, prep, table, cell,
                                             g - prep.offsets[cell], options.users, workspace);
        slot_write(cell, g, outcome);
        std::uint32_t* at = payload.data() + i * words_per_trial;
        EncodeDouble(outcome.loss_ases, at);
        EncodeDouble(outcome.disconnected, at + 2);
        if (table.has_users) EncodeDouble(outcome.loss_users, at + 4);
      }

      if (journal.is_open()) {
        // Pool tasks must not throw; a journal I/O failure aborts the
        // campaign cooperatively and rethrows after the pool drains.
        {
          std::lock_guard<std::mutex> lock(journal_mu);
          try {
            journal.AppendChunk(static_cast<std::uint32_t>(chunk), payload.data(),
                                payload.size());
          } catch (const Error& e) {
            if (failure.empty()) failure = e.what();
            failed.store(true, std::memory_order_relaxed);
            break;
          }
        }
        Counters().checkpoint_writes.Increment();
      }

      chunks_computed.fetch_add(1, std::memory_order_relaxed);
      trials_evaluated.fetch_add(chunk_len, std::memory_order_relaxed);
      Counters().chunks_completed.Increment();
      Counters().trials_evaluated.Increment(chunk_len);
      monitor.ChunkDone(chunk, chunk_watch.ElapsedSeconds() * 1000.0, chunk_len);
      if (options.throttle_chunk_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(options.throttle_chunk_ms));
      }
    }
  };

  {
    ThreadPool pool(options.threads);
    std::size_t workers = pool.thread_count() > 0 ? pool.thread_count() : 1;
    for (std::size_t w = 0; w < workers; ++w) pool.Submit(worker_loop);
    pool.Wait();
  }
  journal.Close();
  if (failed.load()) throw Error("RunFailureCampaign: " + failure);

  double seconds = stopwatch.ElapsedSeconds();
  std::size_t computed = chunks_computed.load();
  if (seconds > 0.0) {
    Counters().trials_per_sec.Set(
        static_cast<std::int64_t>(static_cast<double>(trials_evaluated.load()) / seconds));
  }
  if (stats != nullptr) {
    stats->chunks_total = num_chunks;
    stats->chunks_resumed = chunks_resumed;
    stats->chunks_computed = computed;
    stats->trials_evaluated = trials_evaluated.load();
    stats->complete = chunks_resumed + computed >= num_chunks;
    stats->seconds = seconds;
  }
  return table;
}

void FinalizeFailStore(const std::string& path, const FailTable& table,
                       const std::string& journal_path) {
  WriteFailStore(path, table);
  if (!journal_path.empty()) {
    std::error_code ec;
    std::filesystem::remove(journal_path, ec);  // best-effort cleanup
  }
}

}  // namespace flatnet::failsim
