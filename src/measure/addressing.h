// Interface addressing for the simulated router-level Internet.
//
// Traceroute hops expose *interface* addresses, and the pain of §4.1/§5 is
// that interface ownership does not follow AS ownership: inter-AS subnets
// are numbered out of one side's space (usually the provider's) or out of
// an IXP transfer LAN that may not be announced in BGP at all. This module
// assigns every AS an interface block inside its first announced prefix,
// assigns every inter-AS link a subnet owner (provider / either peer / IXP
// LAN), and allocates the concrete responding addresses the traceroute
// engine emits.
#ifndef FLATNET_MEASURE_ADDRESSING_H_
#define FLATNET_MEASURE_ADDRESSING_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/ipv4.h"
#include "net/prefix_trie.h"
#include "topogen/world.h"
#include "util/rng.h"

namespace flatnet {

enum class LinkMedium : std::uint8_t {
  kPrivate,  // PNI / direct cross-connect, numbered from one side's space
  kIxpLan,   // public peering over an IXP transfer LAN
};

struct LinkAddressing {
  LinkMedium medium = LinkMedium::kPrivate;
  // Index of the IXP whose LAN numbers the link (medium == kIxpLan).
  std::uint32_t ixp_index = 0;
  // Which endpoint's space numbers a private link.
  AsId subnet_owner = kInvalidAsId;
  // Where the interconnect physically sits (ground truth for the
  // Appendix-D geolocation pipeline): the IXP's city for LAN links, a city
  // shared by the endpoints' footprints for PNIs.
  CityIndex city = 0;
};

class AddressPlan {
 public:
  AddressPlan(const World& world, std::uint64_t seed);

  // Interface address identifying `node`'s k-th internal router.
  Ipv4Address InternalAddress(AsId node, std::uint32_t router_index) const;

  // Address of `to`'s interface on the (from, to) link — what a TTL-expired
  // reply from `to`'s border router carries when entered from `from`.
  Ipv4Address BorderAddress(AsId from, AsId to) const;

  // An address inside one of `node`'s announced prefixes (a probe target).
  Ipv4Address DestinationAddress(AsId node) const;

  // Ground truth: which AS operates the router answering at `addr`
  // (interface ownership resolved to the *operator*, not the subnet owner).
  std::optional<AsId> OperatorOf(Ipv4Address addr) const;

  // Ground-truth city of the router interface at `addr`: the interconnect
  // city for border interfaces, the operator's home city otherwise.
  std::optional<CityIndex> CityOf(Ipv4Address addr) const;

  const LinkAddressing& LinkInfo(AsId a, AsId b) const;

  const World& world() const { return *world_; }

 private:
  static std::uint64_t PairKey(AsId a, AsId b) {
    if (a > b) std::swap(a, b);
    return (std::uint64_t{a} << 32) | b;
  }

  Ipv4Address AllocateInterfaceIp(AsId owner_space, std::uint32_t slot) const;

  const World* world_;
  PrefixTrie<AsId> prefix_owner_;  // announced prefix -> originating AS
  std::unordered_map<std::uint64_t, LinkAddressing> links_;
  // Per (directed from->to) border interface slot, assigned deterministically.
  std::unordered_map<std::uint64_t, Ipv4Address> border_addr_;
  std::unordered_map<std::uint32_t, AsId> operator_of_;      // raw ip -> AS
  std::unordered_map<std::uint32_t, CityIndex> city_of_;     // raw ip -> city
};

}  // namespace flatnet

#endif  // FLATNET_MEASURE_ADDRESSING_H_
