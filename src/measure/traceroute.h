// Traceroute campaign simulation (§4.1).
//
// VMs inside each cloud probe one address in every destination AS. Paths
// follow the ground-truth topology's policy routing (tied-best paths, with
// per-VM tie-breaks standing in for IGP/hot-potato decisions); hop records
// expose interface addresses with all the pathologies the paper fights:
// IXP LAN addresses, subnets numbered from the other side, unresponsive
// routers, clouds hiding their internal hops, and peers whose routes are
// only available at PoPs far from any VM.
#ifndef FLATNET_MEASURE_TRACEROUTE_H_
#define FLATNET_MEASURE_TRACEROUTE_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "bgp/propagation.h"
#include "measure/addressing.h"
#include "topogen/world.h"

namespace flatnet {

struct Hop {
  Ipv4Address addr;
  bool responded = true;
};

struct Traceroute {
  std::uint32_t cloud_index = 0;  // index into World::clouds
  std::uint16_t vm = 0;
  AsId dst_as = kInvalidAsId;
  Ipv4Address dst;
  bool reached = false;
  std::vector<Hop> hops;        // after the VM, in travel order
  std::vector<AsId> true_path;  // ground-truth AS path, cloud first
};

struct CampaignOptions {
  // Fraction of destination ASes probed (1.0 = one probe per AS, the
  // AS-level equivalent of "every routable prefix").
  double dst_fraction = 1.0;
  // Independent per-hop probe loss.
  double hop_unresponsive_prob = 0.03;
  // Clouds tunnel internal traffic; internal cloud hops vanish at this rate.
  double cloud_hidden_prob = 0.4;
  // Fraction of (non-cloud) ASes whose routers never answer — the source of
  // the single-unknown-hop false inferences in §5.
  double stealth_border_fraction = 0.07;
  // Fraction of each cloud's peers whose routes are only usable from PoPs
  // far from any VM (§5's structural false negatives).
  double inactive_peer_fraction = 0.08;
  // Fraction of the remaining peers only usable from the upper half of the
  // VM index range — these are the neighbors that §5's "added VMs in
  // additional locations" iteration uncovers.
  double late_vm_peer_fraction = 0.30;
  // Probability a WAN-routed cloud's VM takes a non-best exit.
  double wan_deviation_prob = 0.05;
  // Probability for early-exit clouds (Amazon): per-VM egress varies a lot.
  double early_exit_deviation_prob = 0.30;
  std::uint64_t seed = 42;
};

class TracerouteCampaign {
 public:
  TracerouteCampaign(const World& world, const AddressPlan& plan,
                     const CampaignOptions& options = {});

  const std::vector<Traceroute>& traces() const { return traces_; }
  const CampaignOptions& options() const { return options_; }

  // Ground-truth peers of a cloud that the campaign treated as unusable
  // from every VM (for diagnostics).
  const std::unordered_set<AsId>& InactivePeers(std::uint32_t cloud_index) const {
    return inactive_peers_[cloud_index];
  }

 private:
  void ProbeDestination(AsId dst, const RouteComputation& computation, Rng& rng);
  std::vector<AsId> ChoosePath(const RouteComputation& computation, std::uint32_t cloud_index,
                               std::uint16_t vm, Rng& rng) const;
  void ExpandHops(Traceroute& trace, Rng& rng) const;

  const World& world_;
  const AddressPlan& plan_;
  CampaignOptions options_;
  std::vector<std::unordered_set<AsId>> inactive_peers_;  // per cloud
  // Peers only usable from VM indices >= vm_locations/2, per cloud.
  std::vector<std::unordered_set<AsId>> late_vm_peers_;
  std::vector<bool> stealth_;  // per AS
  std::vector<Traceroute> traces_;
};

}  // namespace flatnet

#endif  // FLATNET_MEASURE_TRACEROUTE_H_
