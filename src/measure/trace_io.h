// Traceroute dataset persistence.
//
// A line-oriented dump format in the spirit of scamper's text output, so a
// campaign can be stored, shared, and re-run through the inference pipeline
// without re-measuring (the paper does exactly this with the 2015 dataset
// from Chiu et al.):
//
//   # flatnet traceroute dump v1
//   T <cloud_index> <vm> <dst_asn> <dst_ip> <reached 0|1>
//   P <asn> <asn> ...            ground-truth AS path (optional line)
//   H <ip> <responded 0|1>       one line per hop
//
// Records are separated by their next "T" line; unknown leading characters
// raise ParseError with the line number.
#ifndef FLATNET_MEASURE_TRACE_IO_H_
#define FLATNET_MEASURE_TRACE_IO_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "asgraph/as_graph.h"
#include "measure/traceroute.h"

namespace flatnet {

// `graph` translates AS numbers in "P" lines to dense ids (and back).
void WriteTraceroutes(const std::vector<Traceroute>& traces, const AsGraph& graph,
                      std::ostream& out);
std::string FormatTraceroutes(const std::vector<Traceroute>& traces, const AsGraph& graph);

// Paths referencing AS numbers absent from `graph` throw ParseError (the
// dump belongs to a different topology).
std::vector<Traceroute> ReadTraceroutes(std::istream& in, const AsGraph& graph);
std::vector<Traceroute> ParseTraceroutes(const std::string& text, const AsGraph& graph);

// File convenience wrappers; throw Error on I/O failure.
void SaveTraceroutes(const std::vector<Traceroute>& traces, const AsGraph& graph,
                     const std::string& path);
std::vector<Traceroute> LoadTraceroutes(const std::string& path, const AsGraph& graph);

}  // namespace flatnet

#endif  // FLATNET_MEASURE_TRACE_IO_H_
