// Validation of inferred neighbor sets against ground truth (§5).
//
// In the paper, Microsoft and Google supplied the truth; here the generator
// is the operator, so FDR/FNR are exactly measurable for every pipeline
// stage.
#ifndef FLATNET_MEASURE_VALIDATION_H_
#define FLATNET_MEASURE_VALIDATION_H_

#include <set>

#include "asgraph/as_graph.h"

namespace flatnet {

struct ValidationStats {
  std::size_t true_positives = 0;
  std::size_t false_positives = 0;
  std::size_t false_negatives = 0;

  // False discovery rate: FP / (FP + TP).
  double Fdr() const;
  // False negative rate: FN / (FN + TP).
  double Fnr() const;
};

// `truth` is the full set of actual neighbor ASNs.
ValidationStats ValidateNeighbors(const std::set<Asn>& inferred, const std::set<Asn>& truth);

// Ground-truth neighbor ASNs of `node` in `graph`.
std::set<Asn> TrueNeighborAsns(const AsGraph& graph, AsId node);

}  // namespace flatnet

#endif  // FLATNET_MEASURE_VALIDATION_H_
