// IP-to-AS resolution services (§4.1's mapping pipeline).
//
// Three imperfect resolvers mirror the paper's sources:
//  * CymruResolver  — longest-prefix match over *BGP-announced* space. IXP
//    transfer LANs are usually absent (unresolvable); the minority of LANs
//    that are announced resolve to the IXP's own AS — the false-positive
//    trap §5 describes.
//  * PeeringDbResolver — knows IXP LAN membership: resolves a LAN interface
//    to the member AS using it, when the member keeps its record current.
//  * WhoisResolver  — registry data: resolves unannounced blocks to the
//    registrant (the IXP org for LANs, the subnet owner for PNIs), with
//    occasional stale entries.
#ifndef FLATNET_MEASURE_IP2AS_H_
#define FLATNET_MEASURE_IP2AS_H_

#include <memory>
#include <optional>
#include <unordered_map>

#include "measure/addressing.h"
#include "net/prefix_trie.h"
#include "topogen/world.h"

namespace flatnet {

// A resolution result is an AS *number* (services speak ASN, and early
// pipeline stages can return ASNs that are not even in the topology, e.g.
// IXP management ASes).
class Ip2AsResolver {
 public:
  virtual ~Ip2AsResolver() = default;
  virtual std::optional<Asn> Resolve(Ipv4Address addr) const = 0;
};

class CymruResolver final : public Ip2AsResolver {
 public:
  explicit CymruResolver(const World& world);
  std::optional<Asn> Resolve(Ipv4Address addr) const override;

 private:
  PrefixTrie<Asn> announced_;
};

class PeeringDbResolver final : public Ip2AsResolver {
 public:
  // `record_coverage`: probability a member's IXP port is registered.
  // `wrong_record_fraction`: probability a registered port points at another
  // member of the same exchange (stale or mis-entered records — the FP
  // noise floor that keeps the paper's final FDR at ~11%).
  PeeringDbResolver(const World& world, const AddressPlan& plan, double record_coverage,
                    double wrong_record_fraction, std::uint64_t seed);
  std::optional<Asn> Resolve(Ipv4Address addr) const override;

 private:
  std::unordered_map<std::uint32_t, Asn> lan_interface_owner_;
};

class WhoisResolver final : public Ip2AsResolver {
 public:
  // `stale_fraction`: probability a registration points at the wrong org.
  WhoisResolver(const World& world, double stale_fraction, std::uint64_t seed);
  std::optional<Asn> Resolve(Ipv4Address addr) const override;

 private:
  PrefixTrie<Asn> registry_;
};

}  // namespace flatnet

#endif  // FLATNET_MEASURE_IP2AS_H_
