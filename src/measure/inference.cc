#include "measure/inference.h"

#include <cmath>

namespace flatnet {

const char* ToString(MethodologyStage stage) {
  switch (stage) {
    case MethodologyStage::kV0Initial: return "v0-initial";
    case MethodologyStage::kV1Registries: return "v1-registries";
    case MethodologyStage::kV2MoreVantage: return "v2-more-vantage";
    case MethodologyStage::kV3Final: return "v3-final";
  }
  return "?";
}

InferenceRules InferenceRules::ForStage(MethodologyStage stage) {
  InferenceRules rules;
  switch (stage) {
    case MethodologyStage::kV0Initial:
      rules.allow_single_unknown_gap = true;
      rules.use_peeringdb = false;
      rules.use_whois = false;
      rules.peeringdb_first = false;
      rules.vm_fraction = 0.5;
      break;
    case MethodologyStage::kV1Registries:
      rules.allow_single_unknown_gap = false;
      rules.use_peeringdb = true;
      rules.use_whois = true;
      rules.peeringdb_first = false;
      rules.vm_fraction = 0.5;
      break;
    case MethodologyStage::kV2MoreVantage:
      rules.allow_single_unknown_gap = false;
      rules.use_peeringdb = true;
      rules.use_whois = true;
      rules.peeringdb_first = false;
      rules.vm_fraction = 1.0;
      break;
    case MethodologyStage::kV3Final:
      rules.allow_single_unknown_gap = false;
      rules.use_peeringdb = true;
      rules.use_whois = true;
      rules.peeringdb_first = true;
      rules.vm_fraction = 1.0;
      break;
  }
  return rules;
}

NeighborInference::NeighborInference(const CymruResolver* cymru,
                                     const PeeringDbResolver* peeringdb,
                                     const WhoisResolver* whois)
    : cymru_(cymru), peeringdb_(peeringdb), whois_(whois) {}

std::optional<Asn> NeighborInference::ResolveHop(Ipv4Address addr,
                                                 const InferenceRules& rules) const {
  if (rules.peeringdb_first && rules.use_peeringdb) {
    if (auto asn = peeringdb_->Resolve(addr)) return asn;
  }
  if (auto asn = cymru_->Resolve(addr)) return asn;
  if (!rules.peeringdb_first && rules.use_peeringdb) {
    if (auto asn = peeringdb_->Resolve(addr)) return asn;
  }
  if (rules.use_whois) {
    if (auto asn = whois_->Resolve(addr)) return asn;
  }
  return std::nullopt;
}

std::set<Asn> NeighborInference::InferNeighbors(std::span<const Traceroute> traces,
                                                std::uint32_t cloud_index, Asn cloud_asn,
                                                std::uint16_t total_vms,
                                                const InferenceRules& rules) const {
  auto vm_limit = static_cast<std::uint16_t>(
      std::ceil(rules.vm_fraction * static_cast<double>(total_vms)));
  std::set<Asn> neighbors;

  for (const Traceroute& trace : traces) {
    if (trace.cloud_index != cloud_index || trace.vm >= vm_limit) continue;

    // Resolve the hop sequence. kUnresponsive/kUnresolved are sentinels.
    enum : Asn { kUnresponsive = 0xffffffffu, kUnresolved = 0xfffffffeu };
    // Find the last hop resolving to the cloud, then classify what follows.
    std::size_t last_cloud = static_cast<std::size_t>(-1);
    std::vector<Asn> resolved(trace.hops.size());
    for (std::size_t i = 0; i < trace.hops.size(); ++i) {
      if (!trace.hops[i].responded) {
        resolved[i] = kUnresponsive;
        continue;
      }
      auto asn = ResolveHop(trace.hops[i].addr, rules);
      resolved[i] = asn ? *asn : kUnresolved;
      if (asn && *asn == cloud_asn) last_cloud = i;
    }
    if (last_cloud == static_cast<std::size_t>(-1)) continue;

    // §4.1 final rule: keep only traceroutes where the cloud hop is
    // immediately adjacent to a hop mapped to a different AS, with no
    // unresponsive or unmapped hops between. The v0 rules additionally
    // bridge exactly one unknown hop (the mistake §5 diagnoses).
    std::size_t i = last_cloud + 1;
    std::size_t unknown_gap = 0;
    while (i < trace.hops.size() &&
           (resolved[i] == kUnresponsive || resolved[i] == kUnresolved)) {
      ++unknown_gap;
      ++i;
    }
    if (i >= trace.hops.size()) continue;
    if (unknown_gap == 0) {
      if (resolved[i] != cloud_asn) neighbors.insert(resolved[i]);
    } else if (unknown_gap == 1 && rules.allow_single_unknown_gap) {
      if (resolved[i] != cloud_asn) neighbors.insert(resolved[i]);
    }
    // Larger gaps (or any gap under the final rules): discard the trace.
  }
  return neighbors;
}

}  // namespace flatnet
