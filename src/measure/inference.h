// Neighbor inference from cloud traceroutes, with the methodology stages of
// §5's iterative refinement encoded as rule sets:
//
//   v0  initial      — Team-Cymru-only resolution; a single unknown hop
//                      after the cloud is assumed non-AS and skipped over
//                      (the paper's "leading cause for inaccuracy").
//   v1  +registries  — unresponsive gaps discard the traceroute; unresolved
//                      (but responsive) hops retry PeeringDB and whois.
//   v2  +vantage     — same rules, all VM locations instead of half.
//   v3  final        — PeeringDB preferred over Cymru for interface
//                      addresses (fixes IXP-LAN-announced-in-BGP captures).
#ifndef FLATNET_MEASURE_INFERENCE_H_
#define FLATNET_MEASURE_INFERENCE_H_

#include <set>
#include <span>
#include <vector>

#include "measure/ip2as.h"
#include "measure/traceroute.h"

namespace flatnet {

enum class MethodologyStage {
  kV0Initial,
  kV1Registries,
  kV2MoreVantage,
  kV3Final,
};

const char* ToString(MethodologyStage stage);

struct InferenceRules {
  bool allow_single_unknown_gap = false;
  bool use_peeringdb = true;
  bool use_whois = true;
  bool peeringdb_first = true;
  double vm_fraction = 1.0;  // leading fraction of VM indices considered

  static InferenceRules ForStage(MethodologyStage stage);
};

class NeighborInference {
 public:
  // Resolver pointers must outlive the inference object.
  NeighborInference(const CymruResolver* cymru, const PeeringDbResolver* peeringdb,
                    const WhoisResolver* whois);

  // Infers the neighbor ASNs of the cloud at `cloud_index` from its traces.
  std::set<Asn> InferNeighbors(std::span<const Traceroute> traces, std::uint32_t cloud_index,
                               Asn cloud_asn, std::uint16_t total_vms,
                               const InferenceRules& rules) const;

  // Resolves one hop address under the given rules (exposed for tests).
  std::optional<Asn> ResolveHop(Ipv4Address addr, const InferenceRules& rules) const;

 private:
  const CymruResolver* cymru_;
  const PeeringDbResolver* peeringdb_;
  const WhoisResolver* whois_;
};

}  // namespace flatnet

#endif  // FLATNET_MEASURE_INFERENCE_H_
