#include "measure/ip2as.h"

#include "util/rng.h"

namespace flatnet {

CymruResolver::CymruResolver(const World& world) {
  for (AsId node = 0; node < world.prefixes.size(); ++node) {
    Asn asn = world.full_graph.AsnOf(node);
    for (const Ipv4Prefix& prefix : world.prefixes[node]) announced_.Insert(prefix, asn);
  }
  // Announced IXP LANs resolve to the IXP's management AS — technically
  // correct prefix origin, wrong answer for neighbor inference.
  for (const IxpInstance& ixp : world.ixps) {
    if (ixp.lan_in_bgp) announced_.Insert(ixp.lan, ixp.ixp_asn);
  }
}

std::optional<Asn> CymruResolver::Resolve(Ipv4Address addr) const {
  if (const Asn* asn = announced_.Lookup(addr)) return *asn;
  return std::nullopt;
}

PeeringDbResolver::PeeringDbResolver(const World& world, const AddressPlan& plan,
                                     double record_coverage, double wrong_record_fraction,
                                     std::uint64_t seed) {
  Rng rng(seed);
  // Register every LAN border interface whose owner keeps PeeringDB fresh.
  const AsGraph& graph = world.full_graph;
  for (AsId a = 0; a < graph.num_ases(); ++a) {
    for (const Neighbor& nb : graph.Peers(a)) {
      if (nb.id < a) continue;
      const LinkAddressing& link = plan.LinkInfo(a, nb.id);
      if (link.medium != LinkMedium::kIxpLan) continue;
      const IxpInstance& ixp = world.ixps[link.ixp_index];
      for (auto [from, to] : {std::pair{a, nb.id}, std::pair{nb.id, a}}) {
        if (!rng.Bernoulli(record_coverage)) continue;
        Ipv4Address addr = plan.BorderAddress(from, to);
        AsId recorded = to;
        if (!ixp.members.empty() && rng.Bernoulli(wrong_record_fraction)) {
          recorded = ixp.members[rng.UniformU64(ixp.members.size())];
        }
        lan_interface_owner_.emplace(addr.value(), graph.AsnOf(recorded));
      }
    }
  }
}

std::optional<Asn> PeeringDbResolver::Resolve(Ipv4Address addr) const {
  if (auto it = lan_interface_owner_.find(addr.value()); it != lan_interface_owner_.end()) {
    return it->second;
  }
  return std::nullopt;
}

WhoisResolver::WhoisResolver(const World& world, double stale_fraction, std::uint64_t seed) {
  Rng rng(seed);
  std::size_t n = world.num_ases();
  for (AsId node = 0; node < world.prefixes.size(); ++node) {
    Asn asn = world.full_graph.AsnOf(node);
    for (const Ipv4Prefix& prefix : world.prefixes[node]) {
      // Stale registrations point at an unrelated organization.
      Asn registered = rng.Bernoulli(stale_fraction)
                           ? world.full_graph.AsnOf(static_cast<AsId>(rng.UniformU64(n)))
                           : asn;
      registry_.Insert(prefix, registered);
    }
  }
  // IXP LANs are registered to the IXP organization — whois answers, but
  // with the IXP's AS, not the member using the address (§5).
  for (const IxpInstance& ixp : world.ixps) registry_.Insert(ixp.lan, ixp.ixp_asn);
}

std::optional<Asn> WhoisResolver::Resolve(Ipv4Address addr) const {
  if (const Asn* asn = registry_.Lookup(addr)) return *asn;
  return std::nullopt;
}

}  // namespace flatnet
