#include "measure/trace_io.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/error.h"
#include "util/strings.h"

namespace flatnet {

void WriteTraceroutes(const std::vector<Traceroute>& traces, const AsGraph& graph,
                      std::ostream& out) {
  out << "# flatnet traceroute dump v1\n";
  for (const Traceroute& trace : traces) {
    out << "T " << trace.cloud_index << ' ' << trace.vm << ' '
        << graph.AsnOf(trace.dst_as) << ' ' << trace.dst.ToString() << ' '
        << (trace.reached ? 1 : 0) << '\n';
    if (!trace.true_path.empty()) {
      out << 'P';
      for (AsId node : trace.true_path) out << ' ' << graph.AsnOf(node);
      out << '\n';
    }
    for (const Hop& hop : trace.hops) {
      out << "H " << hop.addr.ToString() << ' ' << (hop.responded ? 1 : 0) << '\n';
    }
  }
}

std::string FormatTraceroutes(const std::vector<Traceroute>& traces, const AsGraph& graph) {
  std::ostringstream out;
  WriteTraceroutes(traces, graph, out);
  return out.str();
}

std::vector<Traceroute> ReadTraceroutes(std::istream& in, const AsGraph& graph) {
  std::vector<Traceroute> traces;
  std::string line;
  std::size_t line_number = 0;
  auto fail = [&](const std::string& what) {
    throw ParseError(StrFormat("traceroute dump line %zu: %s", line_number, what.c_str()));
  };
  auto resolve = [&](std::string_view field) {
    auto asn = ParseU64(field);
    if (!asn) fail("bad AS number '" + std::string(field) + "'");
    auto id = graph.IdOf(static_cast<Asn>(*asn));
    if (!id) fail(StrFormat("AS%llu not in topology", static_cast<unsigned long long>(*asn)));
    return *id;
  };

  while (std::getline(in, line)) {
    ++line_number;
    std::string_view view = Trim(line);
    if (view.empty() || view.front() == '#') continue;
    auto fields = SplitWhitespace(view);
    if (fields[0] == "T") {
      if (fields.size() != 6) fail("T record needs 5 fields");
      Traceroute trace;
      auto cloud = ParseU64(fields[1]);
      auto vm = ParseU64(fields[2]);
      auto reached = ParseU64(fields[5]);
      auto dst = Ipv4Address::FromString(fields[4]);
      if (!cloud || !vm || !reached || *reached > 1 || !dst) fail("malformed T record");
      trace.cloud_index = static_cast<std::uint32_t>(*cloud);
      trace.vm = static_cast<std::uint16_t>(*vm);
      trace.dst_as = resolve(fields[3]);
      trace.dst = *dst;
      trace.reached = *reached == 1;
      traces.push_back(std::move(trace));
    } else if (fields[0] == "P") {
      if (traces.empty()) fail("P record before any T record");
      if (!traces.back().true_path.empty()) fail("duplicate P record");
      for (std::size_t i = 1; i < fields.size(); ++i) {
        traces.back().true_path.push_back(resolve(fields[i]));
      }
    } else if (fields[0] == "H") {
      if (traces.empty()) fail("H record before any T record");
      if (fields.size() != 3) fail("H record needs 2 fields");
      auto addr = Ipv4Address::FromString(fields[1]);
      auto responded = ParseU64(fields[2]);
      if (!addr || !responded || *responded > 1) fail("malformed H record");
      traces.back().hops.push_back({*addr, *responded == 1});
    } else {
      fail("unknown record type '" + std::string(fields[0]) + "'");
    }
  }
  return traces;
}

std::vector<Traceroute> ParseTraceroutes(const std::string& text, const AsGraph& graph) {
  std::istringstream in(text);
  return ReadTraceroutes(in, graph);
}

void SaveTraceroutes(const std::vector<Traceroute>& traces, const AsGraph& graph,
                     const std::string& path) {
  std::ofstream out(path);
  if (!out) throw Error("SaveTraceroutes: cannot write " + path);
  WriteTraceroutes(traces, graph, out);
  if (!out) throw Error("SaveTraceroutes: write failure on " + path);
}

std::vector<Traceroute> LoadTraceroutes(const std::string& path, const AsGraph& graph) {
  std::ifstream in(path);
  if (!in) throw Error("LoadTraceroutes: cannot open " + path);
  return ReadTraceroutes(in, graph);
}

}  // namespace flatnet
