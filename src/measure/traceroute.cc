#include "measure/traceroute.h"

#include <algorithm>

#include "bgp/paths.h"

namespace flatnet {

TracerouteCampaign::TracerouteCampaign(const World& world, const AddressPlan& plan,
                                       const CampaignOptions& options)
    : world_(world), plan_(plan), options_(options) {
  Rng rng(options.seed);

  // Peers unusable from any VM, and peers only usable from later VM
  // locations (campaign-stable, per cloud).
  inactive_peers_.resize(world.clouds.size());
  late_vm_peers_.resize(world.clouds.size());
  for (std::size_t c = 0; c < world.clouds.size(); ++c) {
    // Early-exit clouds (Amazon) egress near each VM, so measurements from
    // many locations exercise many more peerings (§5: "issuing measurements
    // from more locations tends to decrease false negatives").
    double inactive = options.inactive_peer_fraction *
                      (world.clouds[c].archetype.wan_egress ? 1.0 : 0.15);
    for (const Neighbor& nb : world.full_graph.Peers(world.clouds[c].id)) {
      if (rng.Bernoulli(inactive)) {
        inactive_peers_[c].insert(nb.id);
      } else if (rng.Bernoulli(options.late_vm_peer_fraction)) {
        late_vm_peers_[c].insert(nb.id);
      }
    }
  }

  // ASes whose routers never respond to probes.
  stealth_.assign(world.num_ases(), false);
  Bitset is_cloud(world.num_ases());
  for (const CloudInstance& cloud : world.clouds) is_cloud.Set(cloud.id);
  for (AsId node = 0; node < world.num_ases(); ++node) {
    if (!is_cloud.Test(node) && rng.Bernoulli(options.stealth_border_fraction)) {
      stealth_[node] = true;
    }
  }

  // One routing computation per destination serves every cloud and VM.
  for (AsId dst = 0; dst < world.num_ases(); ++dst) {
    if (is_cloud.Test(dst)) continue;
    if (options.dst_fraction < 1.0 && !rng.Bernoulli(options.dst_fraction)) continue;
    AnnouncementSource source;
    source.node = dst;
    RouteComputation computation(world.full_graph, {source});
    ProbeDestination(dst, computation, rng);
  }
}

void TracerouteCampaign::ProbeDestination(AsId dst, const RouteComputation& computation,
                                          Rng& rng) {
  for (std::uint32_t c = 0; c < world_.clouds.size(); ++c) {
    const CloudInstance& cloud = world_.clouds[c];
    if (cloud.archetype.vm_locations == 0) continue;  // no measurable VMs this era
    if (!computation.Route(cloud.id).HasRoute()) continue;
    for (std::uint16_t vm = 0; vm < cloud.archetype.vm_locations; ++vm) {
      std::vector<AsId> path = ChoosePath(computation, c, vm, rng);
      if (path.empty()) continue;
      Traceroute trace;
      trace.cloud_index = c;
      trace.vm = vm;
      trace.dst_as = dst;
      trace.dst = plan_.DestinationAddress(dst);
      trace.true_path = std::move(path);
      ExpandHops(trace, rng);
      traces_.push_back(std::move(trace));
    }
  }
}

std::vector<AsId> TracerouteCampaign::ChoosePath(const RouteComputation& computation,
                                                 std::uint32_t cloud_index, std::uint16_t vm,
                                                 Rng& rng) const {
  const AsGraph& graph = world_.full_graph;
  AsId cloud = world_.clouds[cloud_index].id;
  const auto& inactive = inactive_peers_[cloud_index];
  const auto& late_vm = late_vm_peers_[cloud_index];
  auto vm_half = static_cast<std::uint16_t>(
      (world_.clouds[cloud_index].archetype.vm_locations + 1) / 2);
  bool early_exit = !world_.clouds[cloud_index].archetype.wan_egress;
  double deviation_prob =
      early_exit ? options_.early_exit_deviation_prob : options_.wan_deviation_prob;

  auto usable_first_hop = [&](AsId next) {
    auto rel = graph.RelationshipBetween(cloud, next);
    if (rel != Relationship::kPeer) return true;
    if (inactive.contains(next)) return false;
    return !(vm < vm_half && late_vm.contains(next));
  };

  // Walk the tied-best predecessor DAG from the cloud, but honour the
  // campaign's realism knobs on the first hop: unusable peers are skipped,
  // and with some probability the VM exits via a non-best neighbor
  // (hot-potato / early-exit noise).
  std::vector<AsId> path{cloud};
  AsId cursor = cloud;
  bool first = true;
  while (true) {
    const auto& preds = computation.Predecessors(cursor);
    if (preds.empty()) break;  // reached the origin (destination AS)
    AsId next = kInvalidAsId;
    if (first) {
      std::vector<AsId> usable;
      for (AsId pred : preds) {
        if (usable_first_hop(pred)) usable.push_back(pred);
      }
      bool deviate = rng.Bernoulli(deviation_prob) || usable.empty();
      if (deviate) {
        // Exit via any routed, usable neighbor (may be off the best path).
        std::vector<AsId> candidates;
        for (const Neighbor& nb : graph.NeighborsOf(cloud)) {
          if (computation.Route(nb.id).HasRoute() && usable_first_hop(nb.id) &&
              !computation.Predecessors(nb.id).empty()) {
            candidates.push_back(nb.id);
          } else if (computation.Route(nb.id).cls == RouteClass::kOrigin &&
                     usable_first_hop(nb.id)) {
            candidates.push_back(nb.id);  // destination is a direct neighbor
          }
        }
        if (candidates.empty() && usable.empty()) return {};
        if (!candidates.empty()) {
          next = candidates[rng.UniformU64(candidates.size())];
        }
      }
      if (next == kInvalidAsId) {
        next = usable[rng.UniformU64(usable.size())];
      }
      first = false;
    } else {
      next = preds[rng.UniformU64(preds.size())];
    }
    path.push_back(next);
    cursor = next;
    if (path.size() > 64) return {};  // defensive: malformed DAG
  }
  return path;
}

void TracerouteCampaign::ExpandHops(Traceroute& trace, Rng& rng) const {
  const std::vector<AsId>& path = trace.true_path;
  AsId cloud = path.front();

  auto push = [&](Ipv4Address addr, bool responds) {
    bool responded = responds && !rng.Bernoulli(options_.hop_unresponsive_prob);
    trace.hops.push_back({addr, responded});
  };

  // Cloud-internal segment (tunneling hides a share of these).
  std::uint32_t internal = 1 + static_cast<std::uint32_t>(rng.UniformU64(2));
  for (std::uint32_t i = 0; i < internal; ++i) {
    push(plan_.InternalAddress(cloud, static_cast<std::uint32_t>(rng.UniformU64(200))),
         !rng.Bernoulli(options_.cloud_hidden_prob));
  }

  // Each subsequent AS: its border interface on the inter-AS subnet, then a
  // couple of internal routers.
  for (std::size_t i = 1; i < path.size(); ++i) {
    AsId prev = path[i - 1];
    AsId node = path[i];
    bool responds = !stealth_[node];
    bool is_destination_as = (i + 1 == path.size());
    // A stealth AS contributes exactly one silent hop — the §5 trap: it
    // looks like a spurious unresponsive router, but it IS an intermediate
    // AS, so bridging the gap infers a false adjacency.
    if (!responds && !is_destination_as) {
      trace.hops.push_back({plan_.BorderAddress(prev, node), false});
      continue;
    }
    push(plan_.BorderAddress(prev, node), responds);
    // Responsive transit ASes always expose at least one hop numbered from
    // their own space; without it, subnet-ownership ambiguity at the
    // borders would make adjacent ASes indistinguishable.
    std::uint32_t inner =
        is_destination_as ? 1 : 1 + static_cast<std::uint32_t>(rng.UniformU64(2));
    for (std::uint32_t k = 0; k < inner; ++k) {
      push(plan_.InternalAddress(node, static_cast<std::uint32_t>(rng.UniformU64(200))),
           responds);
    }
  }

  // The probed address itself.
  bool dst_answers = !stealth_[path.back()] && rng.Bernoulli(0.85);
  trace.hops.push_back({trace.dst, dst_answers});
  trace.reached = dst_answers;
}

}  // namespace flatnet
