#include "measure/validation.h"

namespace flatnet {

double ValidationStats::Fdr() const {
  std::size_t denom = false_positives + true_positives;
  return denom == 0 ? 0.0 : static_cast<double>(false_positives) / static_cast<double>(denom);
}

double ValidationStats::Fnr() const {
  std::size_t denom = false_negatives + true_positives;
  return denom == 0 ? 0.0 : static_cast<double>(false_negatives) / static_cast<double>(denom);
}

ValidationStats ValidateNeighbors(const std::set<Asn>& inferred, const std::set<Asn>& truth) {
  ValidationStats stats;
  for (Asn asn : inferred) {
    if (truth.contains(asn)) {
      ++stats.true_positives;
    } else {
      ++stats.false_positives;
    }
  }
  for (Asn asn : truth) {
    if (!inferred.contains(asn)) ++stats.false_negatives;
  }
  return stats;
}

std::set<Asn> TrueNeighborAsns(const AsGraph& graph, AsId node) {
  std::set<Asn> truth;
  for (const Neighbor& nb : graph.NeighborsOf(node)) truth.insert(graph.AsnOf(nb.id));
  return truth;
}

}  // namespace flatnet
