#include "measure/addressing.h"

#include "util/error.h"

namespace flatnet {
namespace {

// Interface addresses live in the top /24-aligned tail of the AS's first
// announced prefix, so they resolve to the AS via longest-prefix match but
// never collide with probe destinations (allocated from the prefix head).
constexpr std::uint32_t kInterfaceBlock = 256;

}  // namespace

AddressPlan::AddressPlan(const World& world, std::uint64_t seed) : world_(&world) {
  Rng rng(seed);
  const AsGraph& graph = world.full_graph;

  for (AsId node = 0; node < world.prefixes.size(); ++node) {
    for (const Ipv4Prefix& prefix : world.prefixes[node]) {
      prefix_owner_.Insert(prefix, node);
    }
  }

  // Per-IXP LAN slot counters for member interface addresses.
  std::vector<std::uint32_t> ixp_slot(world.ixps.size(), 1);
  // Per-AS private-subnet slot counters.
  std::vector<std::uint32_t> owner_slot(graph.num_ases(), 0);

  // Map each AS to the IXPs it belongs to (for LAN-link assignment).
  std::unordered_map<AsId, std::vector<std::uint32_t>> member_ixps;
  for (std::uint32_t x = 0; x < world.ixps.size(); ++x) {
    for (AsId member : world.ixps[x].members) member_ixps[member].push_back(x);
  }

  for (AsId a = 0; a < graph.num_ases(); ++a) {
    for (const Neighbor& nb : graph.NeighborsOf(a)) {
      if (nb.id < a) continue;  // handle each undirected link once
      AsId b = nb.id;
      LinkAddressing link;
      if (nb.rel == Relationship::kPeer) {
        // Public peering rides an IXP LAN when a shared IXP exists and the
        // coin flip favors it; PNIs otherwise.
        std::optional<std::uint32_t> shared_ixp;
        if (auto it = member_ixps.find(a); it != member_ixps.end()) {
          for (std::uint32_t x : it->second) {
            for (AsId m : world.ixps[x].members) {
              if (m == b) {
                shared_ixp = x;
                break;
              }
            }
            if (shared_ixp) break;
          }
        }
        if (!shared_ixp && !world.ixps.empty() && rng.Bernoulli(0.5)) {
          // Many peerings form at exchanges our membership sampling did not
          // record (route servers, remote peering); pick a plausible LAN.
          shared_ixp = static_cast<std::uint32_t>(rng.UniformU64(world.ixps.size()));
        }
        if (shared_ixp && rng.Bernoulli(0.75)) {
          link.medium = LinkMedium::kIxpLan;
          link.ixp_index = *shared_ixp;
        } else {
          link.medium = LinkMedium::kPrivate;
          link.subnet_owner = rng.Bernoulli(0.5) ? a : b;
        }
      } else {
        // p2c: the provider usually numbers the interconnect.
        AsId provider = nb.rel == Relationship::kCustomer ? a : b;
        AsId customer = provider == a ? b : a;
        link.medium = LinkMedium::kPrivate;
        link.subnet_owner = rng.Bernoulli(0.8) ? provider : customer;
      }
      // Physical location: the LAN's exchange, or a city where the
      // endpoints' footprints meet (networks interconnect where they both
      // have presence; the smaller party's home is the usual meeting point).
      if (link.medium == LinkMedium::kIxpLan) {
        link.city = world.ixps[link.ixp_index].city;
      } else {
        CityIndex home_a = world.home_city[a];
        CityIndex home_b = world.home_city[b];
        bool a_reaches_b = false;
        for (CityIndex c : world.presence[a]) a_reaches_b |= (c == home_b);
        bool b_reaches_a = false;
        for (CityIndex c : world.presence[b]) b_reaches_a |= (c == home_a);
        if (a_reaches_b) {
          link.city = home_b;
        } else if (b_reaches_a) {
          link.city = home_a;
        } else {
          link.city = rng.Bernoulli(0.5) ? home_a : home_b;
        }
      }
      links_.emplace(PairKey(a, b), link);

      // Allocate the two directed border interfaces (the responding router
      // on each side).
      for (auto [from, to] : {std::pair{a, b}, std::pair{b, a}}) {
        Ipv4Address addr;
        if (link.medium == LinkMedium::kIxpLan) {
          const IxpInstance& ixp = world.ixps[link.ixp_index];
          std::uint32_t slot = ixp_slot[link.ixp_index]++;
          if (slot >= ixp.lan.Size() - 1) slot = 1;  // wrap defensively
          addr = ixp.lan.AddressAt(slot);
        } else {
          addr = AllocateInterfaceIp(link.subnet_owner, owner_slot[link.subnet_owner]++);
        }
        border_addr_.emplace((std::uint64_t{from} << 32) | to, addr);
        operator_of_[addr.value()] = to;
        city_of_[addr.value()] = link.city;
      }
    }
  }
}

Ipv4Address AddressPlan::AllocateInterfaceIp(AsId owner_space, std::uint32_t slot) const {
  const Ipv4Prefix& prefix = world_->prefixes[owner_space].front();
  std::uint64_t size = prefix.Size();
  // Interface pool: the upper half of the prefix, wrapping on exhaustion.
  std::uint64_t pool = size / 2;
  return prefix.AddressAt(size / 2 + (slot % pool));
}

Ipv4Address AddressPlan::InternalAddress(AsId node, std::uint32_t router_index) const {
  const Ipv4Prefix& prefix = world_->prefixes[node].front();
  // Internal routers: a small block right below the interface pool.
  std::uint64_t base = prefix.Size() / 2 - kInterfaceBlock;
  return prefix.AddressAt(base + (router_index % kInterfaceBlock));
}

Ipv4Address AddressPlan::BorderAddress(AsId from, AsId to) const {
  auto it = border_addr_.find((std::uint64_t{from} << 32) | to);
  if (it == border_addr_.end()) {
    throw InvalidArgument("AddressPlan::BorderAddress: no such link");
  }
  return it->second;
}

Ipv4Address AddressPlan::DestinationAddress(AsId node) const {
  return world_->prefixes[node].front().AddressAt(1);
}

std::optional<AsId> AddressPlan::OperatorOf(Ipv4Address addr) const {
  if (auto it = operator_of_.find(addr.value()); it != operator_of_.end()) return it->second;
  // Fall back to prefix ownership (internal routers, destinations).
  if (const AsId* owner = prefix_owner_.Lookup(addr)) return *owner;
  return std::nullopt;
}

std::optional<CityIndex> AddressPlan::CityOf(Ipv4Address addr) const {
  if (auto it = city_of_.find(addr.value()); it != city_of_.end()) return it->second;
  if (auto owner = OperatorOf(addr)) return world_->home_city[*owner];
  return std::nullopt;
}

const LinkAddressing& AddressPlan::LinkInfo(AsId a, AsId b) const {
  auto it = links_.find(PairKey(a, b));
  if (it == links_.end()) throw InvalidArgument("AddressPlan::LinkInfo: no such link");
  return it->second;
}

}  // namespace flatnet
