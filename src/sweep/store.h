// Persistent columnar result store for all-origins sweeps.
//
// A `.sweep` file holds one fixed-width u32 column per metric for every
// origin in a topology, bound to that topology by its fingerprint
// (sweep/fingerprint.h). Layout (native-endian):
//
//   header   magic "FNSWEEP1" (8) | version u32 | columns bitmask u32 |
//            num_origins u64 | fingerprint u64 | reserved u32
//   body     for each present column, ascending SweepColumn order:
//            u32[num_origins]
//   footer   crc32 u32 over all preceding bytes | end magic "FNSWEEPE" (8)
//
// Writes go to a pid-unique tmp sibling and rename into place, so readers
// never observe a torn store. Load() re-reads the whole file, verifies
// both magics, the version, the size implied by the header, and the CRC;
// every failure names the file and the byte offset of the problem.
// Lookups after load are O(1) array indexing.
#ifndef FLATNET_SWEEP_STORE_H_
#define FLATNET_SWEEP_STORE_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/internet.h"

namespace flatnet::sweep {

// Column order is the on-disk order; values are appended, never reordered.
enum class SweepColumn : std::uint8_t {
  kProviderFree = 0,   // reach(o, I \ Po)
  kTier1Free = 1,      // reach(o, I \ Po \ T1)
  kHierarchyFree = 2,  // reach(o, I \ Po \ T1 \ T2)
  kPathOneHop = 3,     // Fig 13 path-length bins (unweighted counts)
  kPathTwoHops = 4,
  kPathThreePlus = 5,
};

inline constexpr std::size_t kNumSweepColumns = 6;

constexpr std::uint32_t ColumnBit(SweepColumn c) {
  return 1u << static_cast<std::uint32_t>(c);
}

// The three reachability columns (the default sweep).
inline constexpr std::uint32_t kReachColumns = ColumnBit(SweepColumn::kProviderFree) |
                                               ColumnBit(SweepColumn::kTier1Free) |
                                               ColumnBit(SweepColumn::kHierarchyFree);
// The path-length bin columns (opt-in; an order of magnitude slower).
inline constexpr std::uint32_t kPathColumns = ColumnBit(SweepColumn::kPathOneHop) |
                                              ColumnBit(SweepColumn::kPathTwoHops) |
                                              ColumnBit(SweepColumn::kPathThreePlus);

const char* ToString(SweepColumn c);

// In-memory sweep result: one dense u32 vector per present column.
struct SweepTable {
  std::uint64_t fingerprint = 0;
  std::uint32_t columns = 0;  // bitmask of present columns
  std::size_t num_origins = 0;
  std::array<std::vector<std::uint32_t>, kNumSweepColumns> data;

  bool HasColumn(SweepColumn c) const { return (columns & ColumnBit(c)) != 0; }
  // Throws InvalidArgument when the column is absent.
  const std::vector<std::uint32_t>& Column(SweepColumn c) const;
  std::vector<std::uint32_t>& MutableColumn(SweepColumn c);
};

// Writes `table` to `path` via pid-unique tmp + rename. Throws Error on
// I/O failure (the tmp file is cleaned up).
void WriteSweepStore(const std::string& path, const SweepTable& table);

// A loaded, validated store. Copyable; lookups are plain array reads.
class SweepStore {
 public:
  SweepStore() = default;

  // Throws Error naming `path` and the byte offset on any structural
  // problem: short file, bad magic, unknown version, size mismatch
  // against the header, CRC mismatch, bad end magic.
  static SweepStore Load(const std::string& path);

  // Throws Error when the store's fingerprint or origin count does not
  // match `internet` (results from another topology must never be served).
  void ValidateAgainst(const Internet& internet) const;

  const SweepTable& table() const { return table_; }
  std::uint64_t fingerprint() const { return table_.fingerprint; }
  std::size_t num_origins() const { return table_.num_origins; }
  std::uint32_t columns() const { return table_.columns; }
  bool HasColumn(SweepColumn c) const { return table_.HasColumn(c); }

  // O(1); the column must be present and origin < num_origins().
  std::uint32_t Value(SweepColumn c, AsId origin) const {
    return table_.Column(c)[origin];
  }

 private:
  SweepTable table_;
};

}  // namespace flatnet::sweep

#endif  // FLATNET_SWEEP_STORE_H_
