// Append-only checkpoint journal for sweep runs.
//
// While a sweep runs, every completed chunk of origins is appended as one
// self-checking record; a run killed at any instant (SIGTERM, SIGKILL,
// power loss of the process — page cache survives) can be resumed from
// the last durable record. Layout (native-endian):
//
//   header   magic "FNSWPJ01" (8) | version u32 | columns bitmask u32 |
//            num_origins u64 | fingerprint u64 | chunk_size u32 |
//            crc32 of the preceding header bytes u32
//   records  { magic u32 | chunk_index u32 | value_count u32 |
//              values u32[value_count] | crc32 u32 } ...
//
// Each record's values are the chunk's column data: for every present
// column in ascending SweepColumn order, the values for origins
// [chunk_index*chunk_size, min(num_origins, (chunk_index+1)*chunk_size)).
//
// Recovery scans forward and stops at the first incomplete or corrupt
// record — a torn tail from a mid-write kill loses only that chunk — then
// truncates the tail so appends continue from a clean boundary. A header
// that does not match the current topology/schema is an error, never a
// silent restart: resuming against the wrong inputs must be loud.
#ifndef FLATNET_SWEEP_JOURNAL_H_
#define FLATNET_SWEEP_JOURNAL_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace flatnet::sweep {

// Everything a journal is keyed on; a resume must match all of it.
struct SweepMeta {
  std::uint64_t fingerprint = 0;
  std::uint64_t num_origins = 0;
  std::uint32_t columns = 0;
  std::uint32_t chunk_size = 0;
};

class SweepJournal {
 public:
  SweepJournal() = default;
  ~SweepJournal();

  SweepJournal(SweepJournal&& other) noexcept;
  SweepJournal& operator=(SweepJournal&& other) noexcept;
  SweepJournal(const SweepJournal&) = delete;
  SweepJournal& operator=(const SweepJournal&) = delete;

  // Starts a fresh journal at `path` (truncating any previous one).
  static SweepJournal Create(const std::string& path, const SweepMeta& meta);

  // Resumes from an existing journal: validates the header against
  // `meta` (throws Error naming the path on any mismatch), appends every
  // intact record to `chunks` as (chunk_index, values), truncates a torn
  // tail, and returns a journal positioned for further appends.
  static SweepJournal Recover(
      const std::string& path, const SweepMeta& meta,
      std::vector<std::pair<std::uint32_t, std::vector<std::uint32_t>>>* chunks);

  // Appends one completed chunk and flushes it to the OS, so the record
  // survives a SIGKILL of this process. Not thread-safe; callers hold a
  // lock.
  void AppendChunk(std::uint32_t chunk_index, const std::uint32_t* values,
                   std::size_t value_count);

  // Closes the handle without deleting the file (keep for later resume).
  void Close();

  const std::string& path() const { return path_; }
  bool is_open() const { return file_ != nullptr; }

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
};

}  // namespace flatnet::sweep

#endif  // FLATNET_SWEEP_JOURNAL_H_
