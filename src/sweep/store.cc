#include "sweep/store.h"

#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>

#include "sweep/fingerprint.h"
#include "util/crc32.h"
#include "util/error.h"
#include "util/strings.h"

namespace flatnet::sweep {
namespace {

constexpr char kMagic[8] = {'F', 'N', 'S', 'W', 'E', 'E', 'P', '1'};
constexpr char kEndMagic[8] = {'F', 'N', 'S', 'W', 'E', 'E', 'P', 'E'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderBytes = 8 + 4 + 4 + 8 + 8 + 4;
constexpr std::size_t kFooterBytes = 4 + 8;

void Append(std::string& out, const void* data, std::size_t len) {
  out.append(static_cast<const char*>(data), len);
}

template <typename T>
void AppendScalar(std::string& out, T value) {
  Append(out, &value, sizeof(value));
}

template <typename T>
T ReadScalar(const std::string& bytes, std::size_t offset) {
  T value;
  std::memcpy(&value, bytes.data() + offset, sizeof(value));
  return value;
}

std::string Serialize(const SweepTable& table) {
  std::string out;
  std::size_t body = 0;
  for (std::size_t c = 0; c < kNumSweepColumns; ++c) {
    if (table.columns & (1u << c)) body += table.num_origins * sizeof(std::uint32_t);
  }
  out.reserve(kHeaderBytes + body + kFooterBytes);
  Append(out, kMagic, sizeof(kMagic));
  AppendScalar(out, kVersion);
  AppendScalar(out, table.columns);
  AppendScalar(out, static_cast<std::uint64_t>(table.num_origins));
  AppendScalar(out, table.fingerprint);
  AppendScalar(out, std::uint32_t{0});  // reserved
  for (std::size_t c = 0; c < kNumSweepColumns; ++c) {
    if ((table.columns & (1u << c)) == 0) continue;
    const auto& column = table.data[c];
    if (column.size() != table.num_origins) {
      throw InvalidArgument(StrFormat("WriteSweepStore: column %s has %zu values, expected %zu",
                                      ToString(static_cast<SweepColumn>(c)), column.size(),
                                      table.num_origins));
    }
    Append(out, column.data(), column.size() * sizeof(std::uint32_t));
  }
  AppendScalar(out, Crc32(out.data(), out.size()));
  Append(out, kEndMagic, sizeof(kEndMagic));
  return out;
}

}  // namespace

const char* ToString(SweepColumn c) {
  switch (c) {
    case SweepColumn::kProviderFree: return "provider_free";
    case SweepColumn::kTier1Free: return "tier1_free";
    case SweepColumn::kHierarchyFree: return "hierarchy_free";
    case SweepColumn::kPathOneHop: return "path_one_hop";
    case SweepColumn::kPathTwoHops: return "path_two_hops";
    case SweepColumn::kPathThreePlus: return "path_three_plus";
  }
  return "unknown";
}

const std::vector<std::uint32_t>& SweepTable::Column(SweepColumn c) const {
  if (!HasColumn(c)) {
    throw InvalidArgument(StrFormat("SweepTable: column %s not present", ToString(c)));
  }
  return data[static_cast<std::size_t>(c)];
}

std::vector<std::uint32_t>& SweepTable::MutableColumn(SweepColumn c) {
  return data[static_cast<std::size_t>(c)];
}

void WriteSweepStore(const std::string& path, const SweepTable& table) {
  std::string bytes = Serialize(table);
  std::string tmp = StrFormat("%s.tmp%d", path.c_str(), static_cast<int>(::getpid()));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw Error("WriteSweepStore: cannot write " + tmp);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      throw Error("WriteSweepStore: write failure on " + tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    throw Error(StrFormat("WriteSweepStore: publish to %s failed: %s", path.c_str(),
                          ec.message().c_str()));
  }
}

SweepStore SweepStore::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("SweepStore: cannot open " + path);
  std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) throw Error("SweepStore: read failure on " + path);

  if (bytes.size() < kHeaderBytes + kFooterBytes) {
    throw Error(StrFormat("%s:0: truncated sweep store (%zu bytes, header+footer need %zu)",
                          path.c_str(), bytes.size(), kHeaderBytes + kFooterBytes));
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    throw Error(StrFormat("%s:0: bad magic (not a sweep store)", path.c_str()));
  }
  std::uint32_t version = ReadScalar<std::uint32_t>(bytes, 8);
  if (version != kVersion) {
    throw Error(StrFormat("%s:8: unsupported sweep store version %u (expected %u)",
                          path.c_str(), version, kVersion));
  }
  SweepTable table;
  table.columns = ReadScalar<std::uint32_t>(bytes, 12);
  table.num_origins = static_cast<std::size_t>(ReadScalar<std::uint64_t>(bytes, 16));
  table.fingerprint = ReadScalar<std::uint64_t>(bytes, 24);
  if (table.columns == 0 || (table.columns >> kNumSweepColumns) != 0) {
    throw Error(StrFormat("%s:12: invalid column bitmask 0x%x", path.c_str(), table.columns));
  }
  std::size_t present = 0;
  for (std::size_t c = 0; c < kNumSweepColumns; ++c) {
    if (table.columns & (1u << c)) ++present;
  }
  std::size_t expected =
      kHeaderBytes + present * table.num_origins * sizeof(std::uint32_t) + kFooterBytes;
  if (bytes.size() != expected) {
    throw Error(StrFormat("%s:%zu: truncated or oversized sweep store (%zu bytes, header "
                          "implies %zu)",
                          path.c_str(), bytes.size(), bytes.size(), expected));
  }
  std::size_t footer = bytes.size() - kFooterBytes;
  if (std::memcmp(bytes.data() + footer + 4, kEndMagic, sizeof(kEndMagic)) != 0) {
    throw Error(StrFormat("%s:%zu: bad end magic (torn or overwritten footer)", path.c_str(),
                          footer + 4));
  }
  std::uint32_t stored_crc = ReadScalar<std::uint32_t>(bytes, footer);
  std::uint32_t actual_crc = Crc32(bytes.data(), footer);
  if (stored_crc != actual_crc) {
    throw Error(StrFormat("%s:%zu: CRC mismatch (stored 0x%08x, computed 0x%08x)",
                          path.c_str(), footer, stored_crc, actual_crc));
  }

  std::size_t offset = kHeaderBytes;
  for (std::size_t c = 0; c < kNumSweepColumns; ++c) {
    if ((table.columns & (1u << c)) == 0) continue;
    auto& column = table.data[c];
    column.resize(table.num_origins);
    std::memcpy(column.data(), bytes.data() + offset,
                table.num_origins * sizeof(std::uint32_t));
    offset += table.num_origins * sizeof(std::uint32_t);
  }
  SweepStore store;
  store.table_ = std::move(table);
  return store;
}

void SweepStore::ValidateAgainst(const Internet& internet) const {
  if (table_.num_origins != internet.num_ases()) {
    throw Error(StrFormat("sweep store holds %zu origins but the topology has %zu ASes",
                          table_.num_origins, internet.num_ases()));
  }
  std::uint64_t expected = TopologyFingerprint(internet);
  if (table_.fingerprint != expected) {
    throw Error(StrFormat("sweep store fingerprint %016llx does not match topology %016llx "
                          "(results were computed on a different graph)",
                          static_cast<unsigned long long>(table_.fingerprint),
                          static_cast<unsigned long long>(expected)));
  }
}

}  // namespace flatnet::sweep
