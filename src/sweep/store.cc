#include "sweep/store.h"

#include <cstring>

#include "sweep/fingerprint.h"
#include "util/colstore.h"
#include "util/error.h"
#include "util/strings.h"

namespace flatnet::sweep {
namespace {

using colstore::Append;
using colstore::AppendScalar;
using colstore::ReadScalar;

constexpr colstore::Format kFormat = {"FNSWEEP1", "FNSWEEPE", 1, "sweep"};
constexpr std::size_t kHeaderBytes = 8 + 4 + 4 + 8 + 8 + 4;
constexpr std::size_t kFooterBytes = colstore::kFooterBytes;

std::string Serialize(const SweepTable& table) {
  std::string out;
  std::size_t body = 0;
  for (std::size_t c = 0; c < kNumSweepColumns; ++c) {
    if (table.columns & (1u << c)) body += table.num_origins * sizeof(std::uint32_t);
  }
  out.reserve(kHeaderBytes + body + kFooterBytes);
  colstore::AppendMagicAndVersion(out, kFormat);
  AppendScalar(out, table.columns);
  AppendScalar(out, static_cast<std::uint64_t>(table.num_origins));
  AppendScalar(out, table.fingerprint);
  AppendScalar(out, std::uint32_t{0});  // reserved
  for (std::size_t c = 0; c < kNumSweepColumns; ++c) {
    if ((table.columns & (1u << c)) == 0) continue;
    const auto& column = table.data[c];
    if (column.size() != table.num_origins) {
      throw InvalidArgument(StrFormat("WriteSweepStore: column %s has %zu values, expected %zu",
                                      ToString(static_cast<SweepColumn>(c)), column.size(),
                                      table.num_origins));
    }
    Append(out, column.data(), column.size() * sizeof(std::uint32_t));
  }
  colstore::AppendFooter(out, kFormat);
  return out;
}

}  // namespace

const char* ToString(SweepColumn c) {
  switch (c) {
    case SweepColumn::kProviderFree: return "provider_free";
    case SweepColumn::kTier1Free: return "tier1_free";
    case SweepColumn::kHierarchyFree: return "hierarchy_free";
    case SweepColumn::kPathOneHop: return "path_one_hop";
    case SweepColumn::kPathTwoHops: return "path_two_hops";
    case SweepColumn::kPathThreePlus: return "path_three_plus";
  }
  return "unknown";
}

const std::vector<std::uint32_t>& SweepTable::Column(SweepColumn c) const {
  if (!HasColumn(c)) {
    throw InvalidArgument(StrFormat("SweepTable: column %s not present", ToString(c)));
  }
  return data[static_cast<std::size_t>(c)];
}

std::vector<std::uint32_t>& SweepTable::MutableColumn(SweepColumn c) {
  return data[static_cast<std::size_t>(c)];
}

void WriteSweepStore(const std::string& path, const SweepTable& table) {
  colstore::AtomicWriteFile(path, Serialize(table), "WriteSweepStore");
}

SweepStore SweepStore::Load(const std::string& path) {
  std::string bytes = colstore::ReadFileBytes(path, "SweepStore");
  colstore::CheckHeader(path, bytes, kFormat, kHeaderBytes + kFooterBytes);
  SweepTable table;
  table.columns = ReadScalar<std::uint32_t>(bytes, 12);
  table.num_origins = static_cast<std::size_t>(ReadScalar<std::uint64_t>(bytes, 16));
  table.fingerprint = ReadScalar<std::uint64_t>(bytes, 24);
  if (table.columns == 0 || (table.columns >> kNumSweepColumns) != 0) {
    throw Error(StrFormat("%s:12: invalid column bitmask 0x%x", path.c_str(), table.columns));
  }
  std::size_t present = 0;
  for (std::size_t c = 0; c < kNumSweepColumns; ++c) {
    if (table.columns & (1u << c)) ++present;
  }
  std::size_t expected =
      kHeaderBytes + present * table.num_origins * sizeof(std::uint32_t) + kFooterBytes;
  if (bytes.size() != expected) {
    throw Error(StrFormat("%s:%zu: truncated or oversized sweep store (%zu bytes, header "
                          "implies %zu)",
                          path.c_str(), bytes.size(), bytes.size(), expected));
  }
  colstore::CheckFooter(path, bytes, kFormat);

  std::size_t offset = kHeaderBytes;
  for (std::size_t c = 0; c < kNumSweepColumns; ++c) {
    if ((table.columns & (1u << c)) == 0) continue;
    auto& column = table.data[c];
    column.resize(table.num_origins);
    std::memcpy(column.data(), bytes.data() + offset,
                table.num_origins * sizeof(std::uint32_t));
    offset += table.num_origins * sizeof(std::uint32_t);
  }
  SweepStore store;
  store.table_ = std::move(table);
  return store;
}

void SweepStore::ValidateAgainst(const Internet& internet) const {
  if (table_.num_origins != internet.num_ases()) {
    throw Error(StrFormat("sweep store holds %zu origins but the topology has %zu ASes",
                          table_.num_origins, internet.num_ases()));
  }
  std::uint64_t expected = TopologyFingerprint(internet);
  if (table_.fingerprint != expected) {
    throw Error(StrFormat("sweep store fingerprint %016llx does not match topology %016llx "
                          "(results were computed on a different graph)",
                          static_cast<unsigned long long>(table_.fingerprint),
                          static_cast<unsigned long long>(expected)));
  }
}

}  // namespace flatnet::sweep
