#include "sweep/engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <mutex>
#include <thread>

#include "bgp/propagation.h"
#include "bgp/reachability.h"
#include "obs/campaign.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sweep/fingerprint.h"
#include "sweep/journal.h"
#include "util/error.h"
#include "util/stopwatch.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace flatnet::sweep {
namespace {

struct SweepCounters {
  obs::Counter& chunks_completed = obs::GetCounter("sweep.chunks_completed");
  obs::Counter& chunks_resumed = obs::GetCounter("sweep.chunks_resumed");
  obs::Counter& checkpoint_writes = obs::GetCounter("sweep.checkpoint_writes");
  obs::Counter& origins_computed = obs::GetCounter("sweep.origins_computed");
  obs::Gauge& origins_per_sec = obs::GetGauge("sweep.origins_per_sec");
};

SweepCounters& Counters() {
  static SweepCounters counters;
  return counters;
}

// Thread-local compute state: one BFS engine plus one reusable scratch
// mask per baseline exclusion set. Per origin the scratch is patched (set
// the origin's providers, drop the origin itself) and restored — no
// O(n) mask copy and no allocation on the steady state.
class Worker {
 public:
  Worker(const Internet& internet, std::uint32_t columns)
      : internet_(internet),
        engine_(internet.graph()),
        columns_(columns),
        provider_scratch_(internet.num_ases()),
        tier1_scratch_(internet.tiers().tier1_mask),
        hierarchy_scratch_(internet.tiers().tier1_mask) {
    hierarchy_scratch_ |= internet.tiers().tier2_mask;
  }

  std::uint32_t ProviderFree(AsId origin) {
    return CountWithScratch(origin, provider_scratch_);
  }
  std::uint32_t Tier1Free(AsId origin) { return CountWithScratch(origin, tier1_scratch_); }
  std::uint32_t HierarchyFree(AsId origin) {
    return CountWithScratch(origin, hierarchy_scratch_);
  }

  void PathBins(AsId origin, std::uint32_t* one, std::uint32_t* two,
                std::uint32_t* three_plus) {
    AnnouncementSource source;
    source.node = origin;
    RouteComputation computation(internet_.graph(), {source});
    *one = *two = *three_plus = 0;
    for (AsId node = 0; node < internet_.num_ases(); ++node) {
      if (node == origin) continue;
      const RouteEntry& entry = computation.Route(node);
      if (!entry.HasRoute()) continue;
      if (entry.length <= 1) {
        ++*one;
      } else if (entry.length == 2) {
        ++*two;
      } else {
        ++*three_plus;
      }
    }
  }

  std::uint32_t columns() const { return columns_; }

 private:
  // reach(origin, I \ base \ P(origin)), with the origin itself never
  // excluded — the same patch-and-restore the serial HierarchyFreeSweep
  // uses, generalized to any baseline mask.
  std::uint32_t CountWithScratch(AsId origin, Bitset& mask) {
    bool origin_in_mask = mask.Test(origin);
    if (origin_in_mask) mask.Reset(origin);
    flipped_.clear();
    for (const Neighbor& nb : internet_.graph().Providers(origin)) {
      if (!mask.Test(nb.id)) {
        mask.Set(nb.id);
        flipped_.push_back(nb.id);
      }
    }
    std::uint32_t count = static_cast<std::uint32_t>(engine_.Count(origin, &mask));
    for (AsId id : flipped_) mask.Reset(id);
    if (origin_in_mask) mask.Set(origin);
    return count;
  }

  const Internet& internet_;
  ReachabilityEngine engine_;
  std::uint32_t columns_;
  Bitset provider_scratch_;   // empty baseline
  Bitset tier1_scratch_;      // T1 baseline
  Bitset hierarchy_scratch_;  // T1 | T2 baseline
  std::vector<AsId> flipped_;
};

std::vector<SweepColumn> PresentColumns(std::uint32_t columns) {
  std::vector<SweepColumn> present;
  for (std::size_t c = 0; c < kNumSweepColumns; ++c) {
    if (columns & (1u << c)) present.push_back(static_cast<SweepColumn>(c));
  }
  return present;
}

}  // namespace

SweepTable RunSweep(const Internet& internet, const SweepOptions& options,
                    SweepRunStats* stats) {
  if (options.chunk_size == 0) throw InvalidArgument("RunSweep: chunk_size must be > 0");
  if (options.columns == 0 || (options.columns >> kNumSweepColumns) != 0) {
    throw InvalidArgument(StrFormat("RunSweep: invalid column bitmask 0x%x", options.columns));
  }

  obs::TraceSpan run_span("sweep.run");
  Stopwatch stopwatch;
  std::size_t n = internet.num_ases();
  std::vector<SweepColumn> present = PresentColumns(options.columns);

  SweepTable table;
  table.fingerprint = TopologyFingerprint(internet);
  table.columns = options.columns;
  table.num_origins = n;
  for (SweepColumn c : present) table.MutableColumn(c).assign(n, 0);

  std::size_t num_chunks =
      n == 0 ? 0 : (n + options.chunk_size - 1) / options.chunk_size;
  std::vector<char> done(num_chunks, 0);
  std::size_t chunks_resumed = 0;

  SweepMeta meta;
  meta.fingerprint = table.fingerprint;
  meta.num_origins = n;
  meta.columns = options.columns;
  meta.chunk_size = options.chunk_size;

  SweepJournal journal;
  if (!options.journal_path.empty()) {
    bool exists = std::filesystem::exists(options.journal_path);
    if (options.resume && exists) {
      std::vector<std::pair<std::uint32_t, std::vector<std::uint32_t>>> recovered;
      journal = SweepJournal::Recover(options.journal_path, meta, &recovered);
      for (auto& [chunk_index, values] : recovered) {
        std::size_t begin = std::size_t{chunk_index} * options.chunk_size;
        if (chunk_index >= num_chunks) {
          throw Error(StrFormat("%s: journal record for chunk %u is out of range (%zu chunks)",
                                options.journal_path.c_str(), chunk_index, num_chunks));
        }
        std::size_t chunk_len = std::min<std::size_t>(options.chunk_size, n - begin);
        if (values.size() != present.size() * chunk_len) {
          throw Error(StrFormat("%s: journal record for chunk %u holds %zu values, "
                                "expected %zu",
                                options.journal_path.c_str(), chunk_index, values.size(),
                                present.size() * chunk_len));
        }
        std::size_t at = 0;
        for (SweepColumn c : present) {
          std::vector<std::uint32_t>& column = table.MutableColumn(c);
          for (std::size_t i = 0; i < chunk_len; ++i) column[begin + i] = values[at++];
        }
        if (!done[chunk_index]) {
          done[chunk_index] = 1;
          ++chunks_resumed;
        }
      }
      Counters().chunks_resumed.Increment(chunks_resumed);
      obs::Log(obs::LogLevel::kInfo, "sweep", "resume")
          .Kv("journal", options.journal_path)
          .Kv("chunks_resumed", static_cast<std::uint64_t>(chunks_resumed))
          .Kv("chunks_total", static_cast<std::uint64_t>(num_chunks));
    } else {
      journal = SweepJournal::Create(options.journal_path, meta);
    }
  }

  std::atomic<std::size_t> next_chunk{0};
  std::atomic<std::size_t> chunks_computed{0};
  std::atomic<std::size_t> origins_computed{0};
  std::atomic<bool> failed{false};
  std::mutex journal_mu;
  std::string failure;  // first worker error, guarded by journal_mu

  obs::CampaignMonitor::Options monitor_options;
  monitor_options.component = "sweep";
  monitor_options.unit = "origins";
  monitor_options.total_chunks = num_chunks;
  monitor_options.resumed_chunks = chunks_resumed;
  monitor_options.workers = options.threads > 0
                                ? options.threads
                                : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  obs::CampaignMonitor monitor(monitor_options);

  auto worker_loop = [&] {
    Worker worker(internet, options.columns);
    std::vector<std::uint32_t> payload;
    for (;;) {
      if (failed.load(std::memory_order_relaxed)) break;
      if (options.max_chunks != 0 &&
          chunks_computed.load(std::memory_order_relaxed) >= options.max_chunks) {
        break;
      }
      std::size_t chunk = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= num_chunks) break;
      if (done[chunk]) continue;

      obs::TraceSpan chunk_span("sweep.chunk");
      Stopwatch chunk_watch;
      std::size_t begin = chunk * options.chunk_size;
      std::size_t chunk_len = std::min<std::size_t>(options.chunk_size, n - begin);
      for (std::size_t i = 0; i < chunk_len; ++i) {
        AsId origin = static_cast<AsId>(begin + i);
        if (table.HasColumn(SweepColumn::kProviderFree)) {
          table.MutableColumn(SweepColumn::kProviderFree)[origin] =
              worker.ProviderFree(origin);
        }
        if (table.HasColumn(SweepColumn::kTier1Free)) {
          table.MutableColumn(SweepColumn::kTier1Free)[origin] = worker.Tier1Free(origin);
        }
        if (table.HasColumn(SweepColumn::kHierarchyFree)) {
          table.MutableColumn(SweepColumn::kHierarchyFree)[origin] =
              worker.HierarchyFree(origin);
        }
        if (options.columns & kPathColumns) {
          std::uint32_t one = 0, two = 0, three_plus = 0;
          worker.PathBins(origin, &one, &two, &three_plus);
          if (table.HasColumn(SweepColumn::kPathOneHop)) {
            table.MutableColumn(SweepColumn::kPathOneHop)[origin] = one;
          }
          if (table.HasColumn(SweepColumn::kPathTwoHops)) {
            table.MutableColumn(SweepColumn::kPathTwoHops)[origin] = two;
          }
          if (table.HasColumn(SweepColumn::kPathThreePlus)) {
            table.MutableColumn(SweepColumn::kPathThreePlus)[origin] = three_plus;
          }
        }
      }

      if (journal.is_open()) {
        payload.clear();
        payload.reserve(present.size() * chunk_len);
        for (SweepColumn c : present) {
          const std::vector<std::uint32_t>& column = table.Column(c);
          payload.insert(payload.end(), column.begin() + static_cast<std::ptrdiff_t>(begin),
                         column.begin() + static_cast<std::ptrdiff_t>(begin + chunk_len));
        }
        // Pool tasks must not throw; a journal I/O failure aborts the
        // sweep cooperatively and rethrows after the pool drains.
        {
          std::lock_guard<std::mutex> lock(journal_mu);
          try {
            journal.AppendChunk(static_cast<std::uint32_t>(chunk), payload.data(),
                                payload.size());
          } catch (const Error& e) {
            if (failure.empty()) failure = e.what();
            failed.store(true, std::memory_order_relaxed);
            break;
          }
        }
        Counters().checkpoint_writes.Increment();
      }

      chunks_computed.fetch_add(1, std::memory_order_relaxed);
      origins_computed.fetch_add(chunk_len, std::memory_order_relaxed);
      Counters().chunks_completed.Increment();
      Counters().origins_computed.Increment(chunk_len);
      monitor.ChunkDone(chunk, chunk_watch.ElapsedSeconds() * 1000.0, chunk_len);
      if (options.throttle_chunk_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(options.throttle_chunk_ms));
      }
    }
  };

  {
    ThreadPool pool(options.threads);
    std::size_t workers = pool.thread_count() > 0 ? pool.thread_count() : 1;
    for (std::size_t w = 0; w < workers; ++w) pool.Submit(worker_loop);
    pool.Wait();
  }
  journal.Close();
  if (failed.load()) throw Error("RunSweep: " + failure);

  double seconds = stopwatch.ElapsedSeconds();
  std::size_t computed = chunks_computed.load();
  if (seconds > 0.0) {
    Counters().origins_per_sec.Set(
        static_cast<std::int64_t>(static_cast<double>(origins_computed.load()) / seconds));
  }
  if (stats != nullptr) {
    stats->chunks_total = num_chunks;
    stats->chunks_resumed = chunks_resumed;
    stats->chunks_computed = computed;
    stats->origins_computed = origins_computed.load();
    stats->complete = chunks_resumed + computed >= num_chunks;
    stats->seconds = seconds;
  }
  return table;
}

std::vector<std::uint32_t> ParallelHierarchyFreeSweep(const Internet& internet,
                                                      std::size_t threads) {
  SweepOptions options;
  options.threads = threads;
  options.columns = ColumnBit(SweepColumn::kHierarchyFree);
  SweepTable table = RunSweep(internet, options);
  return std::move(table.MutableColumn(SweepColumn::kHierarchyFree));
}

void FinalizeSweepStore(const std::string& path, const SweepTable& table,
                        const std::string& journal_path) {
  WriteSweepStore(path, table);
  if (!journal_path.empty()) {
    std::error_code ec;
    std::filesystem::remove(journal_path, ec);  // best-effort cleanup
  }
}

}  // namespace flatnet::sweep
