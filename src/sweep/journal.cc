#include "sweep/journal.h"

#include <cstring>
#include <filesystem>
#include <fstream>

#include "util/crc32.h"
#include "util/error.h"
#include "util/strings.h"

namespace flatnet::sweep {
namespace {

constexpr char kJournalMagic[8] = {'F', 'N', 'S', 'W', 'P', 'J', '0', '1'};
constexpr std::uint32_t kJournalVersion = 1;
constexpr std::uint32_t kRecordMagic = 0x314B4843;  // "CHK1"
constexpr std::size_t kHeaderBytes = 8 + 4 + 4 + 8 + 8 + 4 + 4;
constexpr std::size_t kRecordOverhead = 4 + 4 + 4 + 4;  // magic, index, count, crc

template <typename T>
void AppendScalar(std::string& out, T value) {
  out.append(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <typename T>
T ReadScalar(const std::string& bytes, std::size_t offset) {
  T value;
  std::memcpy(&value, bytes.data() + offset, sizeof(value));
  return value;
}

std::string SerializeHeader(const SweepMeta& meta) {
  std::string out;
  out.append(kJournalMagic, sizeof(kJournalMagic));
  AppendScalar(out, kJournalVersion);
  AppendScalar(out, meta.columns);
  AppendScalar(out, meta.num_origins);
  AppendScalar(out, meta.fingerprint);
  AppendScalar(out, meta.chunk_size);
  AppendScalar(out, Crc32(out.data(), out.size()));
  return out;
}

}  // namespace

SweepJournal::~SweepJournal() { Close(); }

SweepJournal::SweepJournal(SweepJournal&& other) noexcept
    : path_(std::move(other.path_)), file_(other.file_) {
  other.file_ = nullptr;
}

SweepJournal& SweepJournal::operator=(SweepJournal&& other) noexcept {
  if (this != &other) {
    Close();
    path_ = std::move(other.path_);
    file_ = other.file_;
    other.file_ = nullptr;
  }
  return *this;
}

void SweepJournal::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

SweepJournal SweepJournal::Create(const std::string& path, const SweepMeta& meta) {
  SweepJournal journal;
  journal.path_ = path;
  journal.file_ = std::fopen(path.c_str(), "wb");
  if (journal.file_ == nullptr) {
    throw Error("SweepJournal: cannot create " + path);
  }
  std::string header = SerializeHeader(meta);
  if (std::fwrite(header.data(), 1, header.size(), journal.file_) != header.size() ||
      std::fflush(journal.file_) != 0) {
    throw Error("SweepJournal: write failure on " + path);
  }
  return journal;
}

SweepJournal SweepJournal::Recover(
    const std::string& path, const SweepMeta& meta,
    std::vector<std::pair<std::uint32_t, std::vector<std::uint32_t>>>* chunks) {
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw Error("SweepJournal: cannot open " + path + " for resume");
    bytes.assign((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  }
  if (bytes.size() < kHeaderBytes) {
    throw Error(StrFormat("%s:0: journal truncated inside the header (%zu bytes)",
                          path.c_str(), bytes.size()));
  }
  if (std::memcmp(bytes.data(), kJournalMagic, sizeof(kJournalMagic)) != 0) {
    throw Error(StrFormat("%s:0: bad journal magic", path.c_str()));
  }
  std::uint32_t header_crc = ReadScalar<std::uint32_t>(bytes, kHeaderBytes - 4);
  if (header_crc != Crc32(bytes.data(), kHeaderBytes - 4)) {
    throw Error(StrFormat("%s:%zu: journal header CRC mismatch", path.c_str(),
                          kHeaderBytes - 4));
  }
  SweepMeta stored;
  std::uint32_t version = ReadScalar<std::uint32_t>(bytes, 8);
  stored.columns = ReadScalar<std::uint32_t>(bytes, 12);
  stored.num_origins = ReadScalar<std::uint64_t>(bytes, 16);
  stored.fingerprint = ReadScalar<std::uint64_t>(bytes, 24);
  stored.chunk_size = ReadScalar<std::uint32_t>(bytes, 32);
  if (version != kJournalVersion) {
    throw Error(StrFormat("%s:8: unsupported journal version %u", path.c_str(), version));
  }
  if (stored.fingerprint != meta.fingerprint || stored.num_origins != meta.num_origins) {
    throw Error(StrFormat("%s: journal was written for a different topology "
                          "(fingerprint %016llx vs %016llx, %llu vs %llu origins)",
                          path.c_str(), static_cast<unsigned long long>(stored.fingerprint),
                          static_cast<unsigned long long>(meta.fingerprint),
                          static_cast<unsigned long long>(stored.num_origins),
                          static_cast<unsigned long long>(meta.num_origins)));
  }
  if (stored.columns != meta.columns || stored.chunk_size != meta.chunk_size) {
    throw Error(StrFormat("%s: journal schema mismatch (columns 0x%x vs 0x%x, chunk size "
                          "%u vs %u) — rerun without --resume or match the original flags",
                          path.c_str(), stored.columns, meta.columns, stored.chunk_size,
                          meta.chunk_size));
  }

  // Scan records; the first incomplete or corrupt one ends the valid
  // prefix (a mid-append kill tears at most the final record).
  std::size_t offset = kHeaderBytes;
  while (offset + kRecordOverhead <= bytes.size()) {
    if (ReadScalar<std::uint32_t>(bytes, offset) != kRecordMagic) break;
    std::uint32_t count = ReadScalar<std::uint32_t>(bytes, offset + 8);
    std::size_t record_bytes = kRecordOverhead + std::size_t{count} * sizeof(std::uint32_t);
    if (offset + record_bytes > bytes.size()) break;
    std::uint32_t stored_crc =
        ReadScalar<std::uint32_t>(bytes, offset + record_bytes - 4);
    if (stored_crc != Crc32(bytes.data() + offset + 4, record_bytes - 8)) break;
    std::uint32_t chunk_index = ReadScalar<std::uint32_t>(bytes, offset + 4);
    std::vector<std::uint32_t> values(count);
    std::memcpy(values.data(), bytes.data() + offset + 12,
                std::size_t{count} * sizeof(std::uint32_t));
    chunks->emplace_back(chunk_index, std::move(values));
    offset += record_bytes;
  }

  // Drop the torn tail so future appends start at a record boundary.
  if (offset < bytes.size()) {
    std::error_code ec;
    std::filesystem::resize_file(path, offset, ec);
    if (ec) {
      throw Error(StrFormat("%s: cannot truncate torn journal tail at offset %zu: %s",
                            path.c_str(), offset, ec.message().c_str()));
    }
  }

  SweepJournal journal;
  journal.path_ = path;
  journal.file_ = std::fopen(path.c_str(), "ab");
  if (journal.file_ == nullptr) {
    throw Error("SweepJournal: cannot reopen " + path + " for append");
  }
  return journal;
}

void SweepJournal::AppendChunk(std::uint32_t chunk_index, const std::uint32_t* values,
                               std::size_t value_count) {
  std::string record;
  record.reserve(kRecordOverhead + value_count * sizeof(std::uint32_t));
  AppendScalar(record, kRecordMagic);
  AppendScalar(record, chunk_index);
  AppendScalar(record, static_cast<std::uint32_t>(value_count));
  record.append(reinterpret_cast<const char*>(values),
                value_count * sizeof(std::uint32_t));
  AppendScalar(record, Crc32(record.data() + 4, record.size() - 4));
  if (std::fwrite(record.data(), 1, record.size(), file_) != record.size() ||
      std::fflush(file_) != 0) {
    throw Error("SweepJournal: append failure on " + path_);
  }
}

}  // namespace flatnet::sweep
