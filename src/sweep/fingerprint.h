// Forwarding header: the topology fingerprint moved to core/fingerprint.h
// so the binary `.graph` store (core/serialize) can embed it without the
// core → sweep dependency inversion. Existing sweep/leak/fail callers keep
// the flatnet::sweep spelling.
#ifndef FLATNET_SWEEP_FINGERPRINT_H_
#define FLATNET_SWEEP_FINGERPRINT_H_

#include "core/fingerprint.h"

namespace flatnet::sweep {

using flatnet::TopologyFingerprint;

}  // namespace flatnet::sweep

#endif  // FLATNET_SWEEP_FINGERPRINT_H_
