// Sharded all-origins batch sweep engine.
//
// Computes the paper's per-origin reachability metrics (and optionally
// the Fig 13 path-length bins) for EVERY AS in a topology. The origin
// space is split into fixed-size chunks; worker tasks on the existing
// ThreadPool claim chunks dynamically off a shared atomic cursor (idle
// workers pull the next unclaimed chunk, so an uneven chunk never strands
// a core). Each worker owns a thread-local ReachabilityEngine plus
// reusable exclusion-mask scratch — zero per-origin allocation on the
// default reachability columns.
//
// With a journal path set, every completed chunk is appended to a
// checkpoint journal (sweep/journal.h); a killed run resumed with
// `resume = true` recomputes only the missing chunks and — because every
// per-origin value is deterministic and the store is written in origin
// order — produces a byte-identical store to an uninterrupted run.
//
// Instrumented with src/obs/: sweep.chunks_completed / chunks_resumed /
// checkpoint_writes / origins_computed counters, a sweep.origins_per_sec
// gauge, and sweep.run / sweep.chunk trace spans.
#ifndef FLATNET_SWEEP_ENGINE_H_
#define FLATNET_SWEEP_ENGINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/internet.h"
#include "sweep/store.h"

namespace flatnet::sweep {

struct SweepOptions {
  // Worker parallelism; 0 = hardware concurrency.
  std::size_t threads = 0;
  // Origins per chunk — the unit of claiming and of checkpointing.
  std::uint32_t chunk_size = 256;
  // Bitmask of SweepColumn values to compute (kReachColumns by default).
  std::uint32_t columns = kReachColumns;
  // When non-empty, completed chunks are journaled here.
  std::string journal_path;
  // Resume from an existing journal at journal_path (fresh start when the
  // file does not exist). The journal must match this topology and these
  // options; a mismatch throws rather than silently recomputing.
  bool resume = false;
  // Test/smoke hooks: stop after this many freshly computed chunks
  // (0 = run to completion), and sleep per completed chunk so an external
  // kill can land mid-run on small topologies.
  std::uint32_t max_chunks = 0;
  std::uint32_t throttle_chunk_ms = 0;
};

struct SweepRunStats {
  std::size_t chunks_total = 0;
  std::size_t chunks_resumed = 0;   // restored from the journal
  std::size_t chunks_computed = 0;  // computed by this run
  std::size_t origins_computed = 0;
  bool complete = false;  // false only when max_chunks stopped the run early
  double seconds = 0.0;
};

// Runs the sweep. The returned table covers every origin when
// stats->complete (untouched entries are zero on an early stop). Throws
// InvalidArgument on a bad options combination and Error on journal
// failures.
SweepTable RunSweep(const Internet& internet, const SweepOptions& options,
                    SweepRunStats* stats = nullptr);

// Convenience: the hierarchy-free column only, computed in parallel.
// Result is element-for-element identical to the serial
// HierarchyFreeSweep (core/reachability_analysis.h).
std::vector<std::uint32_t> ParallelHierarchyFreeSweep(const Internet& internet,
                                                      std::size_t threads = 0);

// Publishes `table` to `path` (atomic tmp+rename) and, on success,
// removes the now-redundant journal when `journal_path` is non-empty.
void FinalizeSweepStore(const std::string& path, const SweepTable& table,
                        const std::string& journal_path = std::string());

}  // namespace flatnet::sweep

#endif  // FLATNET_SWEEP_ENGINE_H_
