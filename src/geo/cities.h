// Embedded world-city database.
//
// Substitute for the GPWv4 population raster and the PoP location inputs
// (§4.2, §4.3): ~130 metropolitan areas with coordinates, IATA-style
// airport codes (the rDNS pipeline embeds and re-extracts these), and
// metro population estimates. Population figures are coarse public
// knowledge and only the *relative* distribution matters for the coverage
// experiments.
#ifndef FLATNET_GEO_CITIES_H_
#define FLATNET_GEO_CITIES_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

#include "geo/geo.h"

namespace flatnet {

struct City {
  std::string_view name;
  std::string_view country;
  std::string_view iata;  // three-letter code used in router hostnames
  Continent continent;
  GeoPoint location;
  double population_millions;  // metro-area estimate
};

// All cities, fixed order (stable indices for the lifetime of the build).
std::span<const City> WorldCities();

using CityIndex = std::uint16_t;

// Index lookup by IATA code (case-insensitive); nullopt if unknown.
std::optional<CityIndex> CityByIata(std::string_view iata);

// Total population across the database, in millions.
double TotalCityPopulationMillions();

}  // namespace flatnet

#endif  // FLATNET_GEO_CITIES_H_
