// Geodesic primitives: coordinates, great-circle distance, continents.
#ifndef FLATNET_GEO_GEO_H_
#define FLATNET_GEO_GEO_H_

#include <cstdint>
#include <string>

namespace flatnet {

enum class Continent : std::uint8_t {
  kNorthAmerica = 0,
  kSouthAmerica = 1,
  kEurope = 2,
  kAfrica = 3,
  kAsia = 4,
  kOceania = 5,
  kMiddleEast = 6,  // reported separately from Asia in coverage tables
};
inline constexpr std::size_t kContinentCount = 7;

const char* ToString(Continent continent);

struct GeoPoint {
  double lat_deg = 0.0;
  double lon_deg = 0.0;
};

// Great-circle distance in kilometers (haversine, mean Earth radius).
double DistanceKm(const GeoPoint& a, const GeoPoint& b);

}  // namespace flatnet

#endif  // FLATNET_GEO_GEO_H_
