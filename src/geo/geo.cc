#include "geo/geo.h"

#include <cmath>
#include <numbers>

namespace flatnet {

const char* ToString(Continent continent) {
  switch (continent) {
    case Continent::kNorthAmerica: return "North America";
    case Continent::kSouthAmerica: return "South America";
    case Continent::kEurope: return "Europe";
    case Continent::kAfrica: return "Africa";
    case Continent::kAsia: return "Asia";
    case Continent::kOceania: return "Oceania";
    case Continent::kMiddleEast: return "Middle East";
  }
  return "?";
}

double DistanceKm(const GeoPoint& a, const GeoPoint& b) {
  constexpr double kEarthRadiusKm = 6371.0;
  constexpr double kDegToRad = std::numbers::pi / 180.0;
  double lat1 = a.lat_deg * kDegToRad;
  double lat2 = b.lat_deg * kDegToRad;
  double dlat = (b.lat_deg - a.lat_deg) * kDegToRad;
  double dlon = (b.lon_deg - a.lon_deg) * kDegToRad;
  double s1 = std::sin(dlat / 2.0);
  double s2 = std::sin(dlon / 2.0);
  double h = s1 * s1 + std::cos(lat1) * std::cos(lat2) * s2 * s2;
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(h)));
}

}  // namespace flatnet
