#include "geo/population.h"

namespace flatnet {

CoverageResult PopulationCoverage(const std::vector<CityIndex>& pop_cities, double radius_km) {
  auto cities = WorldCities();
  CoverageResult result;
  result.per_continent.assign(kContinentCount, 0.0);
  std::vector<double> continent_total(kContinentCount, 0.0);
  double world_total = 0.0;
  double world_covered = 0.0;

  for (const City& city : cities) {
    auto continent = static_cast<std::size_t>(city.continent);
    world_total += city.population_millions;
    continent_total[continent] += city.population_millions;
    bool covered = false;
    for (CityIndex pop : pop_cities) {
      if (DistanceKm(city.location, cities[pop].location) <= radius_km) {
        covered = true;
        break;
      }
    }
    if (covered) {
      world_covered += city.population_millions;
      result.per_continent[continent] += city.population_millions;
    }
  }

  result.world = world_total > 0 ? world_covered / world_total : 0.0;
  for (std::size_t c = 0; c < kContinentCount; ++c) {
    result.per_continent[c] =
        continent_total[c] > 0 ? result.per_continent[c] / continent_total[c] : 0.0;
  }
  return result;
}

std::vector<double> ContinentPopulations() {
  std::vector<double> totals(kContinentCount, 0.0);
  for (const City& city : WorldCities()) {
    totals[static_cast<std::size_t>(city.continent)] += city.population_millions;
  }
  return totals;
}

}  // namespace flatnet
