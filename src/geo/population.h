// Population-coverage queries over the city database (Fig 11 / Fig 12).
//
// The GPWv4 raster the paper uses is replaced by point masses at metro
// centers: for the radii the paper studies (500-1000 km) metro extent is
// negligible, so "population within R of a PoP" reduces to summing cities
// whose center lies within R of any PoP.
#ifndef FLATNET_GEO_POPULATION_H_
#define FLATNET_GEO_POPULATION_H_

#include <vector>

#include "geo/cities.h"
#include "geo/geo.h"

namespace flatnet {

struct CoverageResult {
  // Fraction of world population within the radius of any PoP.
  double world = 0.0;
  // Per-continent fraction, indexed by Continent.
  std::vector<double> per_continent;
};

// `pop_cities`: city indices hosting at least one PoP of the deployment.
CoverageResult PopulationCoverage(const std::vector<CityIndex>& pop_cities, double radius_km);

// Population (millions) per continent across the whole database.
std::vector<double> ContinentPopulations();

}  // namespace flatnet

#endif  // FLATNET_GEO_POPULATION_H_
