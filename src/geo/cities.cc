#include "geo/cities.h"

#include <array>

#include "util/strings.h"

namespace flatnet {
namespace {

using enum Continent;

// Coordinates rounded to ~0.1 degree; populations are metro-area estimates
// in millions. The mix intentionally over-represents the regions where the
// paper observes PoP concentration (North America, Europe, East Asia) and
// includes the secondary markets where only transit providers deploy.
constexpr std::array kCities = {
    // North America
    City{"New York", "US", "NYC", kNorthAmerica, {40.7, -74.0}, 19.8},
    City{"Los Angeles", "US", "LAX", kNorthAmerica, {34.1, -118.2}, 13.2},
    City{"Chicago", "US", "CHI", kNorthAmerica, {41.9, -87.6}, 9.5},
    City{"Dallas", "US", "DFW", kNorthAmerica, {32.8, -96.8}, 7.6},
    City{"Houston", "US", "IAH", kNorthAmerica, {29.8, -95.4}, 7.1},
    City{"Washington", "US", "IAD", kNorthAmerica, {38.9, -77.0}, 6.3},
    City{"Miami", "US", "MIA", kNorthAmerica, {25.8, -80.2}, 6.1},
    City{"Philadelphia", "US", "PHL", kNorthAmerica, {40.0, -75.2}, 6.2},
    City{"Atlanta", "US", "ATL", kNorthAmerica, {33.7, -84.4}, 6.0},
    City{"Phoenix", "US", "PHX", kNorthAmerica, {33.4, -112.1}, 4.9},
    City{"Boston", "US", "BOS", kNorthAmerica, {42.4, -71.1}, 4.9},
    City{"San Francisco", "US", "SFO", kNorthAmerica, {37.8, -122.4}, 4.7},
    City{"Seattle", "US", "SEA", kNorthAmerica, {47.6, -122.3}, 4.0},
    City{"San Jose", "US", "SJC", kNorthAmerica, {37.3, -121.9}, 2.0},
    City{"Denver", "US", "DEN", kNorthAmerica, {39.7, -105.0}, 3.0},
    City{"Minneapolis", "US", "MSP", kNorthAmerica, {44.98, -93.3}, 3.7},
    City{"Toronto", "CA", "YYZ", kNorthAmerica, {43.7, -79.4}, 6.4},
    City{"Montreal", "CA", "YUL", kNorthAmerica, {45.5, -73.6}, 4.3},
    City{"Vancouver", "CA", "YVR", kNorthAmerica, {49.3, -123.1}, 2.6},
    City{"Mexico City", "MX", "MEX", kNorthAmerica, {19.4, -99.1}, 21.8},
    City{"Monterrey", "MX", "MTY", kNorthAmerica, {25.7, -100.3}, 5.3},
    City{"Guadalajara", "MX", "GDL", kNorthAmerica, {20.7, -103.3}, 5.3},
    City{"Ashburn", "US", "ASH", kNorthAmerica, {39.0, -77.5}, 0.4},
    City{"Kansas City", "US", "MCI", kNorthAmerica, {39.1, -94.6}, 2.2},
    City{"Salt Lake City", "US", "SLC", kNorthAmerica, {40.8, -111.9}, 1.3},
    City{"Columbus", "US", "CMH", kNorthAmerica, {40.0, -83.0}, 2.1},
    // South America
    City{"Sao Paulo", "BR", "GRU", kSouthAmerica, {-23.5, -46.6}, 22.0},
    City{"Rio de Janeiro", "BR", "GIG", kSouthAmerica, {-22.9, -43.2}, 13.5},
    City{"Fortaleza", "BR", "FOR", kSouthAmerica, {-3.7, -38.5}, 4.1},
    City{"Porto Alegre", "BR", "POA", kSouthAmerica, {-30.0, -51.2}, 4.3},
    City{"Brasilia", "BR", "BSB", kSouthAmerica, {-15.8, -47.9}, 4.8},
    City{"Buenos Aires", "AR", "EZE", kSouthAmerica, {-34.6, -58.4}, 15.4},
    City{"Santiago", "CL", "SCL", kSouthAmerica, {-33.4, -70.7}, 6.9},
    City{"Lima", "PE", "LIM", kSouthAmerica, {-12.0, -77.0}, 11.0},
    City{"Bogota", "CO", "BOG", kSouthAmerica, {4.7, -74.1}, 11.3},
    City{"Medellin", "CO", "MDE", kSouthAmerica, {6.2, -75.6}, 4.1},
    City{"Quito", "EC", "UIO", kSouthAmerica, {-0.2, -78.5}, 2.0},
    City{"Caracas", "VE", "CCS", kSouthAmerica, {10.5, -66.9}, 2.9},
    City{"Asuncion", "PY", "ASU", kSouthAmerica, {-25.3, -57.6}, 3.5},
    City{"Montevideo", "UY", "MVD", kSouthAmerica, {-34.9, -56.2}, 1.8},
    // Europe
    City{"London", "GB", "LHR", kEurope, {51.5, -0.1}, 14.8},
    City{"Paris", "FR", "CDG", kEurope, {48.9, 2.4}, 13.0},
    City{"Frankfurt", "DE", "FRA", kEurope, {50.1, 8.7}, 5.9},
    City{"Amsterdam", "NL", "AMS", kEurope, {52.4, 4.9}, 2.9},
    City{"Berlin", "DE", "BER", kEurope, {52.5, 13.4}, 6.1},
    City{"Munich", "DE", "MUC", kEurope, {48.1, 11.6}, 6.0},
    City{"Madrid", "ES", "MAD", kEurope, {40.4, -3.7}, 6.7},
    City{"Barcelona", "ES", "BCN", kEurope, {41.4, 2.2}, 5.6},
    City{"Milan", "IT", "MXP", kEurope, {45.5, 9.2}, 4.3},
    City{"Rome", "IT", "FCO", kEurope, {41.9, 12.5}, 4.3},
    City{"Zurich", "CH", "ZRH", kEurope, {47.4, 8.5}, 1.4},
    City{"Geneva", "CH", "GVA", kEurope, {46.2, 6.1}, 0.6},
    City{"Vienna", "AT", "VIE", kEurope, {48.2, 16.4}, 2.9},
    City{"Brussels", "BE", "BRU", kEurope, {50.8, 4.4}, 2.1},
    City{"Dublin", "IE", "DUB", kEurope, {53.3, -6.3}, 1.4},
    City{"Stockholm", "SE", "ARN", kEurope, {59.3, 18.1}, 2.4},
    City{"Copenhagen", "DK", "CPH", kEurope, {55.7, 12.6}, 2.1},
    City{"Oslo", "NO", "OSL", kEurope, {59.9, 10.8}, 1.6},
    City{"Helsinki", "FI", "HEL", kEurope, {60.2, 24.9}, 1.5},
    City{"Warsaw", "PL", "WAW", kEurope, {52.2, 21.0}, 3.1},
    City{"Prague", "CZ", "PRG", kEurope, {50.1, 14.4}, 2.7},
    City{"Budapest", "HU", "BUD", kEurope, {47.5, 19.0}, 3.0},
    City{"Bucharest", "RO", "OTP", kEurope, {44.4, 26.1}, 2.3},
    City{"Sofia", "BG", "SOF", kEurope, {42.7, 23.3}, 1.7},
    City{"Athens", "GR", "ATH", kEurope, {38.0, 23.7}, 3.6},
    City{"Lisbon", "PT", "LIS", kEurope, {38.7, -9.1}, 2.9},
    City{"Marseille", "FR", "MRS", kEurope, {43.3, 5.4}, 1.9},
    City{"Moscow", "RU", "DME", kEurope, {55.8, 37.6}, 17.3},
    City{"St Petersburg", "RU", "LED", kEurope, {59.9, 30.3}, 5.4},
    City{"Kyiv", "UA", "KBP", kEurope, {50.5, 30.5}, 3.5},
    City{"Istanbul", "TR", "IST", kEurope, {41.0, 28.9}, 15.8},
    City{"Manchester", "GB", "MAN", kEurope, {53.5, -2.2}, 2.9},
    City{"Hull", "GB", "HUY", kEurope, {53.7, -0.3}, 0.6},
    // Africa
    City{"Johannesburg", "ZA", "JNB", kAfrica, {-26.2, 28.0}, 10.5},
    City{"Cape Town", "ZA", "CPT", kAfrica, {-33.9, 18.4}, 4.8},
    City{"Durban", "ZA", "DUR", kAfrica, {-29.9, 31.0}, 3.9},
    City{"Lagos", "NG", "LOS", kAfrica, {6.5, 3.4}, 15.9},
    City{"Abuja", "NG", "ABV", kAfrica, {9.1, 7.5}, 3.8},
    City{"Nairobi", "KE", "NBO", kAfrica, {-1.3, 36.8}, 5.3},
    City{"Mombasa", "KE", "MBA", kAfrica, {-4.0, 39.7}, 1.4},
    City{"Cairo", "EG", "CAI", kAfrica, {30.0, 31.2}, 21.7},
    City{"Casablanca", "MA", "CMN", kAfrica, {33.6, -7.6}, 3.8},
    City{"Accra", "GH", "ACC", kAfrica, {5.6, -0.2}, 2.6},
    City{"Dakar", "SN", "DKR", kAfrica, {14.7, -17.5}, 3.3},
    City{"Addis Ababa", "ET", "ADD", kAfrica, {9.0, 38.8}, 5.2},
    City{"Dar es Salaam", "TZ", "DAR", kAfrica, {-6.8, 39.3}, 7.4},
    City{"Kinshasa", "CD", "FIH", kAfrica, {-4.3, 15.3}, 15.6},
    City{"Algiers", "DZ", "ALG", kAfrica, {36.7, 3.1}, 2.9},
    City{"Tunis", "TN", "TUN", kAfrica, {36.8, 10.2}, 2.4},
    // Middle East
    City{"Dubai", "AE", "DXB", kMiddleEast, {25.3, 55.3}, 3.6},
    City{"Abu Dhabi", "AE", "AUH", kMiddleEast, {24.5, 54.4}, 1.5},
    City{"Doha", "QA", "DOH", kMiddleEast, {25.3, 51.5}, 2.4},
    City{"Riyadh", "SA", "RUH", kMiddleEast, {24.7, 46.7}, 7.7},
    City{"Jeddah", "SA", "JED", kMiddleEast, {21.5, 39.2}, 4.8},
    City{"Tel Aviv", "IL", "TLV", kMiddleEast, {32.1, 34.8}, 4.4},
    City{"Amman", "JO", "AMM", kMiddleEast, {32.0, 35.9}, 2.2},
    City{"Kuwait City", "KW", "KWI", kMiddleEast, {29.4, 48.0}, 3.3},
    City{"Manama", "BH", "BAH", kMiddleEast, {26.2, 50.6}, 0.7},
    City{"Muscat", "OM", "MCT", kMiddleEast, {23.6, 58.4}, 1.7},
    // Asia
    City{"Tokyo", "JP", "NRT", kAsia, {35.7, 139.7}, 37.3},
    City{"Osaka", "JP", "KIX", kAsia, {34.7, 135.5}, 18.9},
    City{"Seoul", "KR", "ICN", kAsia, {37.6, 127.0}, 25.5},
    City{"Busan", "KR", "PUS", kAsia, {35.2, 129.1}, 3.4},
    City{"Beijing", "CN", "PEK", kAsia, {39.9, 116.4}, 21.5},
    City{"Shanghai", "CN", "PVG", kAsia, {31.2, 121.5}, 28.5},
    City{"Shenzhen", "CN", "SZX", kAsia, {22.5, 114.1}, 17.6},
    City{"Guangzhou", "CN", "CAN", kAsia, {23.1, 113.3}, 18.7},
    City{"Chengdu", "CN", "CTU", kAsia, {30.7, 104.1}, 16.3},
    City{"Hong Kong", "HK", "HKG", kAsia, {22.3, 114.2}, 7.5},
    City{"Taipei", "TW", "TPE", kAsia, {25.0, 121.6}, 7.0},
    City{"Singapore", "SG", "SIN", kAsia, {1.4, 103.8}, 5.9},
    City{"Kuala Lumpur", "MY", "KUL", kAsia, {3.1, 101.7}, 8.4},
    City{"Jakarta", "ID", "CGK", kAsia, {-6.2, 106.8}, 33.4},
    City{"Surabaya", "ID", "SUB", kAsia, {-7.3, 112.7}, 9.5},
    City{"Bangkok", "TH", "BKK", kAsia, {13.8, 100.5}, 17.1},
    City{"Manila", "PH", "MNL", kAsia, {14.6, 121.0}, 24.3},
    City{"Hanoi", "VN", "HAN", kAsia, {21.0, 105.8}, 8.4},
    City{"Ho Chi Minh City", "VN", "SGN", kAsia, {10.8, 106.7}, 9.3},
    City{"Mumbai", "IN", "BOM", kAsia, {19.1, 72.9}, 20.7},
    City{"Delhi", "IN", "DEL", kAsia, {28.6, 77.2}, 31.2},
    City{"Bangalore", "IN", "BLR", kAsia, {13.0, 77.6}, 12.8},
    City{"Chennai", "IN", "MAA", kAsia, {13.1, 80.3}, 11.2},
    City{"Hyderabad", "IN", "HYD", kAsia, {17.4, 78.5}, 10.3},
    City{"Kolkata", "IN", "CCU", kAsia, {22.6, 88.4}, 15.1},
    City{"Karachi", "PK", "KHI", kAsia, {24.9, 67.0}, 16.8},
    City{"Lahore", "PK", "LHE", kAsia, {31.5, 74.3}, 13.5},
    City{"Dhaka", "BD", "DAC", kAsia, {23.8, 90.4}, 22.4},
    City{"Colombo", "LK", "CMB", kAsia, {6.9, 79.9}, 2.4},
    City{"Almaty", "KZ", "ALA", kAsia, {43.2, 76.9}, 2.0},
    City{"Ulaanbaatar", "MN", "ULN", kAsia, {47.9, 106.9}, 1.6},
    // Oceania
    City{"Sydney", "AU", "SYD", kOceania, {-33.9, 151.2}, 5.4},
    City{"Melbourne", "AU", "MEL", kOceania, {-37.8, 145.0}, 5.2},
    City{"Brisbane", "AU", "BNE", kOceania, {-27.5, 153.0}, 2.6},
    City{"Perth", "AU", "PER", kOceania, {-32.0, 115.9}, 2.1},
    City{"Adelaide", "AU", "ADL", kOceania, {-34.9, 138.6}, 1.4},
    City{"Auckland", "NZ", "AKL", kOceania, {-36.8, 174.8}, 1.7},
    City{"Wellington", "NZ", "WLG", kOceania, {-41.3, 174.8}, 0.4},
    City{"Suva", "FJ", "SUV", kOceania, {-18.1, 178.4}, 0.2},
};

}  // namespace

std::span<const City> WorldCities() { return kCities; }

std::optional<CityIndex> CityByIata(std::string_view iata) {
  std::string lowered = AsciiLower(iata);
  for (std::size_t i = 0; i < kCities.size(); ++i) {
    if (AsciiLower(kCities[i].iata) == lowered) return static_cast<CityIndex>(i);
  }
  return std::nullopt;
}

double TotalCityPopulationMillions() {
  double total = 0.0;
  for (const City& city : kCities) total += city.population_millions;
  return total;
}

}  // namespace flatnet
