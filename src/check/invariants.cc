#include "check/invariants.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "bgp/reliance.h"
#include "util/strings.h"

namespace flatnet::check {
namespace {

std::string NodeLabel(const RouteComputation& computation, AsId node) {
  return StrFormat("AS%u (id %u)", computation.graph().AsnOf(node), node);
}

}  // namespace

std::optional<std::string> CheckValleyFreeDag(const RouteComputation& computation) {
  const AsGraph& graph = computation.graph();
  std::vector<AsId> preds_sorted;
  for (AsId node = 0; node < graph.num_ases(); ++node) {
    const RouteEntry& entry = computation.Route(node);
    std::span<const AsId> preds = computation.Predecessors(node);
    if (!entry.HasRoute() || entry.cls == RouteClass::kOrigin) {
      if (!preds.empty()) {
        return StrFormat("%s: %s node has %zu predecessors",
                         NodeLabel(computation, node).c_str(), ToString(entry.cls),
                         preds.size());
      }
      continue;
    }
    if (preds.empty()) {
      return NodeLabel(computation, node) + ": routed node has no predecessors";
    }
    preds_sorted.assign(preds.begin(), preds.end());
    std::sort(preds_sorted.begin(), preds_sorted.end());
    if (std::adjacent_find(preds_sorted.begin(), preds_sorted.end()) != preds_sorted.end()) {
      return NodeLabel(computation, node) + ": duplicate predecessor";
    }
    Relationship expected_rel;
    switch (entry.cls) {
      case RouteClass::kCustomer: expected_rel = Relationship::kCustomer; break;
      case RouteClass::kPeer: expected_rel = Relationship::kPeer; break;
      case RouteClass::kProvider: expected_rel = Relationship::kProvider; break;
      default: return NodeLabel(computation, node) + ": unexpected route class";
    }
    for (AsId pred : preds) {
      auto rel = graph.RelationshipBetween(node, pred);
      if (!rel.has_value()) {
        return StrFormat("%s: predecessor %s is not adjacent",
                         NodeLabel(computation, node).c_str(),
                         NodeLabel(computation, pred).c_str());
      }
      if (*rel != expected_rel) {
        return StrFormat("%s: %s route learned over a %s edge from %s",
                         NodeLabel(computation, node).c_str(), ToString(entry.cls),
                         ToString(*rel), NodeLabel(computation, pred).c_str());
      }
      const RouteEntry& pred_entry = computation.Route(pred);
      if (!pred_entry.HasRoute()) {
        return StrFormat("%s: predecessor %s has no route",
                         NodeLabel(computation, node).c_str(),
                         NodeLabel(computation, pred).c_str());
      }
      // Valley-free export: a route crossing a customer->provider or peer
      // edge must be customer-learned (or originated) at the exporter.
      if (entry.cls != RouteClass::kProvider && pred_entry.cls != RouteClass::kOrigin &&
          pred_entry.cls != RouteClass::kCustomer) {
        return StrFormat("%s: %s exported a %s-learned route over a %s edge (valley)",
                         NodeLabel(computation, node).c_str(),
                         NodeLabel(computation, pred).c_str(), ToString(pred_entry.cls),
                         ToString(entry.cls));
      }
      if (static_cast<PathLength>(pred_entry.length + 1) != entry.length) {
        return StrFormat("%s: length %u but predecessor %s has length %u",
                         NodeLabel(computation, node).c_str(),
                         static_cast<unsigned>(entry.length),
                         NodeLabel(computation, pred).c_str(),
                         static_cast<unsigned>(pred_entry.length));
      }
    }
  }
  return std::nullopt;
}

std::optional<std::string> CheckOrderByLength(const RouteComputation& computation) {
  const AsGraph& graph = computation.graph();
  const std::vector<AsId>& order = computation.NodesByLength();
  std::size_t routed = 0;
  for (AsId node = 0; node < graph.num_ases(); ++node) {
    if (computation.Route(node).HasRoute()) ++routed;
  }
  if (order.size() != routed) {
    return StrFormat("order has %zu nodes but %zu hold routes", order.size(), routed);
  }
  Bitset seen(graph.num_ases());
  PathLength previous = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    AsId node = order[i];
    if (node >= graph.num_ases()) return StrFormat("order[%zu]: id %u out of range", i, node);
    if (seen.Test(node)) {
      return NodeLabel(computation, node) + ": appears twice in NodesByLength";
    }
    seen.Set(node);
    const RouteEntry& entry = computation.Route(node);
    if (!entry.HasRoute()) {
      return NodeLabel(computation, node) + ": in NodesByLength without a route";
    }
    if (i > 0 && entry.length < previous) {
      return StrFormat("order[%zu] %s: length %u after length %u", i,
                       NodeLabel(computation, node).c_str(),
                       static_cast<unsigned>(entry.length), static_cast<unsigned>(previous));
    }
    previous = entry.length;
  }
  return std::nullopt;
}

std::optional<std::string> CheckSourceMasks(const RouteComputation& computation,
                                            const std::vector<AnnouncementSource>& sources) {
  const AsGraph& graph = computation.graph();
  if (sources.size() != computation.num_sources()) {
    return StrFormat("computation has %zu sources, caller supplied %zu",
                     computation.num_sources(), sources.size());
  }
  Bitset is_source(graph.num_ases());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    AsId node = sources[i].node;
    is_source.Set(node);
    const RouteEntry& entry = computation.Route(node);
    auto expected = static_cast<std::uint8_t>(1u << i);
    if (entry.cls != RouteClass::kOrigin || entry.source_mask != expected) {
      return StrFormat("source %zu %s: cls=%s mask=%u, want origin mask=%u", i,
                       NodeLabel(computation, node).c_str(), ToString(entry.cls),
                       static_cast<unsigned>(entry.source_mask),
                       static_cast<unsigned>(expected));
    }
  }
  for (AsId node = 0; node < graph.num_ases(); ++node) {
    if (is_source.Test(node)) continue;
    const RouteEntry& entry = computation.Route(node);
    if (!entry.HasRoute()) {
      if (entry.source_mask != 0) {
        return NodeLabel(computation, node) + ": unreachable node with nonzero source mask";
      }
      continue;
    }
    std::uint8_t expected = 0;
    for (AsId pred : computation.Predecessors(node)) {
      expected |= computation.Route(pred).source_mask;
    }
    if (entry.source_mask != expected || expected == 0) {
      return StrFormat("%s: mask %u but predecessors union to %u",
                       NodeLabel(computation, node).c_str(),
                       static_cast<unsigned>(entry.source_mask),
                       static_cast<unsigned>(expected));
    }
  }
  return std::nullopt;
}

std::optional<std::string> CheckRelianceConservation(const RouteComputation& computation) {
  if (computation.num_sources() != 1) {
    return std::string("reliance conservation requires a single-source computation");
  }
  const AsGraph& graph = computation.graph();
  RelianceResult reliance = ComputeReliance(computation);

  // sigma conservation over the predecessor DAG. Path counts grow
  // combinatorially, so compare with a relative tolerance once they leave
  // exact double range.
  for (AsId node : computation.NodesByLength()) {
    std::span<const AsId> preds = computation.Predecessors(node);
    double sigma = reliance.path_counts[node];
    if (preds.empty()) {
      if (sigma != 1.0) {
        return StrFormat("%s: origin sigma = %g, want 1", NodeLabel(computation, node).c_str(),
                         sigma);
      }
      continue;
    }
    double expected = 0.0;
    for (AsId pred : preds) expected += reliance.path_counts[pred];
    if (std::abs(sigma - expected) > 1e-9 * std::max(1.0, expected)) {
      return StrFormat("%s: sigma %g != sum over predecessors %g",
                       NodeLabel(computation, node).c_str(), sigma, expected);
    }
  }

  // Mass balance: total non-self reliance equals the expected number of
  // intermediate ASes across all destinations' tied-best paths. E[len] is
  // recomputed here with an independent DP over the DAG.
  std::vector<double> expected_len(graph.num_ases(), 0.0);
  double reliance_mass = 0.0;
  double expected_intermediates = 0.0;
  for (AsId node : computation.NodesByLength()) {
    std::span<const AsId> preds = computation.Predecessors(node);
    if (preds.empty()) continue;
    double acc = 0.0;
    for (AsId pred : preds) acc += reliance.path_counts[pred] * (expected_len[pred] + 1.0);
    expected_len[node] = acc / reliance.path_counts[node];
    reliance_mass += reliance.reliance[node] - 1.0;
    expected_intermediates += expected_len[node] - 1.0;
  }
  if (std::abs(reliance_mass - expected_intermediates) >
      1e-6 * std::max(1.0, std::abs(expected_intermediates))) {
    return StrFormat("reliance mass %g != expected intermediates %g", reliance_mass,
                     expected_intermediates);
  }
  return std::nullopt;
}

std::optional<std::string> CheckRouteInvariants(
    const RouteComputation& computation, const std::vector<AnnouncementSource>& sources) {
  if (auto failure = CheckValleyFreeDag(computation)) {
    return "valley_free: " + *failure;
  }
  if (auto failure = CheckOrderByLength(computation)) {
    return "order_by_length: " + *failure;
  }
  if (auto failure = CheckSourceMasks(computation, sources)) {
    return "source_masks: " + *failure;
  }
  if (computation.num_sources() == 1) {
    if (auto failure = CheckRelianceConservation(computation)) {
      return "reliance_conservation: " + *failure;
    }
  }
  return std::nullopt;
}

}  // namespace flatnet::check
