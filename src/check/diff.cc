#include "check/diff.h"

#include <algorithm>
#include <vector>

#include "bgp/event_engine.h"
#include "bgp/paths.h"
#include "bgp/propagation.h"
#include "bgp/reachability.h"
#include "check/invariants.h"
#include "util/rng.h"
#include "util/strings.h"

namespace flatnet::check {
namespace {

const char* RouteLabel(const RouteEntry& entry) {
  return entry.HasRoute() ? ToString(entry.cls) : "unreachable";
}

// Draws `want` distinct ids from [0, n), never `origin`, into a Bitset.
Bitset DrawDistinct(Rng& rng, std::size_t n, AsId origin, std::size_t want) {
  Bitset drawn(n);
  std::size_t cap = n > 1 ? n - 1 : 0;
  want = std::min(want, cap);
  std::size_t have = 0;
  while (have < want) {
    auto candidate = static_cast<AsId>(rng.UniformU64(n));
    if (candidate == origin || drawn.Test(candidate)) continue;
    drawn.Set(candidate);
    ++have;
  }
  return drawn;
}

DiffReport Fail(std::string oracle, std::string detail, const AsGraph& graph,
                AsId node = kInvalidAsId) {
  DiffReport report;
  report.ok = false;
  report.oracle = std::move(oracle);
  report.detail = std::move(detail);
  report.first_mismatch = node;
  if (node != kInvalidAsId) report.first_mismatch_asn = graph.AsnOf(node);
  return report;
}

}  // namespace

const char* ToString(LockSetup setup) {
  switch (setup) {
    case LockSetup::kNone: return "none";
    case LockSetup::kFull: return "full";
    case LockSetup::kDirectOnly: return "direct";
  }
  return "?";
}

std::optional<LockSetup> ParseLockSetup(std::string_view text) {
  if (text == "none") return LockSetup::kNone;
  if (text == "full") return LockSetup::kFull;
  if (text == "direct") return LockSetup::kDirectOnly;
  return std::nullopt;
}

std::string DiffReport::Summary() const {
  if (ok) return "ok";
  std::string where = first_mismatch == kInvalidAsId
                          ? std::string("-")
                          : StrFormat("AS%u (id %u)", first_mismatch_asn, first_mismatch);
  return StrFormat("oracle=%s at %s: %s", oracle.c_str(), where.c_str(), detail.c_str());
}

DiffReport RunDiffCase(const AsGraph& graph, const DiffCaseConfig& config) {
  std::size_t n = graph.num_ases();
  if (n == 0) return Fail("config", "empty graph", graph);
  Rng rng(config.case_seed);
  auto origin = static_cast<AsId>(rng.UniformU64(n));

  Bitset excluded = DrawDistinct(rng, n, origin, config.excluded_count);
  Bitset locked;
  Bitset filtered_senders;
  PropagationOptions options;
  if (config.excluded_count > 0) options.excluded = &excluded;
  if (config.lock != LockSetup::kNone) {
    locked = DrawDistinct(rng, n, origin, config.locked_count);
    options.peer_locked = &locked;
    options.protected_origin = origin;
    options.lock_mode =
        config.lock == LockSetup::kFull ? PeerLockMode::kFull : PeerLockMode::kDirectOnly;
    if (config.lock == LockSetup::kDirectOnly) {
      filtered_senders = DrawDistinct(rng, n, origin, config.filtered_sender_count);
      options.lock_filtered_senders = &filtered_senders;
    }
  }

  std::vector<AnnouncementSource> sources{AnnouncementSource{.node = origin}};
  RouteComputation phase(graph, sources, options);

  if (auto failure = CheckRouteInvariants(phase, sources)) {
    return Fail("invariant", *failure, graph);
  }

  // Oracle 1: the message-passing engine must converge to the phase
  // engine's class and length at every node, and its single selected path
  // must be one of the phase engine's tied-best paths.
  EventBgpEngine event(graph, options);
  event.Originate(origin);
  for (AsId node = 0; node < n; ++node) {
    if (node == origin) continue;
    const std::optional<RibRoute>& event_best = event.BestRoute(node);
    const RouteEntry& phase_best = phase.Route(node);
    if (event_best.has_value() != phase_best.HasRoute()) {
      return Fail("event.reach",
                  StrFormat("phase=%s event=%s", RouteLabel(phase_best),
                            event_best ? ToString(event_best->cls) : "unreachable"),
                  graph, node);
    }
    if (!event_best) continue;
    if (event_best->cls != phase_best.cls) {
      return Fail("event.class",
                  StrFormat("phase=%s event=%s", ToString(phase_best.cls),
                            ToString(event_best->cls)),
                  graph, node);
    }
    if (event_best->Length() != phase_best.length) {
      return Fail("event.length",
                  StrFormat("phase=%u event=%u", static_cast<unsigned>(phase_best.length),
                            static_cast<unsigned>(event_best->Length())),
                  graph, node);
    }
    AsPath full_path{node};
    full_path.insert(full_path.end(), event_best->path.begin(), event_best->path.end());
    if (!IsBestPath(phase, full_path)) {
      return Fail("event.path", "selected path is not in the phase engine's tied-best set",
                  graph, node);
    }
  }
  if (event.ReachedCount() != phase.ReachedCount()) {
    return Fail("event.count",
                StrFormat("phase=%zu event=%zu", phase.ReachedCount(), event.ReachedCount()),
                graph);
  }

  // Oracle 2: the two-state BFS (which cannot model peer locking) must
  // produce exactly the phase engine's reached set.
  if (config.lock == LockSetup::kNone) {
    const Bitset* excluded_ptr = config.excluded_count > 0 ? &excluded : nullptr;
    Bitset bfs = ReachableSet(graph, origin, excluded_ptr);
    Bitset phase_set = phase.ReachedSet();
    if (!(bfs == phase_set)) {
      for (AsId node = 0; node < n; ++node) {
        if (bfs.Test(node) != phase_set.Test(node)) {
          return Fail("reachability.set",
                      StrFormat("phase=%s bfs=%s", phase_set.Test(node) ? "reached" : "not",
                                bfs.Test(node) ? "reached" : "not"),
                      graph, node);
        }
      }
    }
    std::size_t bfs_count = ReachableCount(graph, origin, excluded_ptr);
    if (bfs_count != phase.ReachedCount()) {
      return Fail("reachability.count",
                  StrFormat("phase=%zu bfs=%zu", phase.ReachedCount(), bfs_count), graph);
    }
  }

  return DiffReport{};
}

}  // namespace flatnet::check
