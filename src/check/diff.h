// Differential-testing oracle for the BGP kernels.
//
// The repo carries three independent implementations of single-prefix
// Gao-Rexford propagation: the phase engine (RouteComputation), the
// two-state BFS (ReachabilityEngine), and the message-level simulator
// (EventBgpEngine). On any common configuration their outcomes must agree
// exactly — reached sets, per-node route class, and path lengths — so a
// randomized sweep over (topology, origin, excluded set, peer-lock config)
// tuples is a nearly-free correctness oracle for all of them at once.
// RunDiffCase executes one such tuple and reports the first divergence;
// tools/flatnet_diffcheck drives it at fuzz scale and logs reproducers.
#ifndef FLATNET_CHECK_DIFF_H_
#define FLATNET_CHECK_DIFF_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "asgraph/as_graph.h"
#include "bgp/policy.h"

namespace flatnet::check {

// Which defensive-filtering setup a case exercises.
enum class LockSetup : std::uint8_t {
  kNone,        // plain propagation (reachability oracle applies too)
  kFull,        // erratum peer locking
  kDirectOnly,  // pre-erratum peer locking
};

const char* ToString(LockSetup setup);
std::optional<LockSetup> ParseLockSetup(std::string_view text);

// One oracle case. All randomness (origin, excluded set, locked set,
// filtered senders) derives from `case_seed`, so (graph, config) replays a
// divergence exactly.
struct DiffCaseConfig {
  std::uint64_t case_seed = 1;
  // Random non-origin ASes removed from the subgraph (reach(o, I \ X)).
  std::size_t excluded_count = 0;
  LockSetup lock = LockSetup::kNone;
  std::size_t locked_count = 0;           // peer-locking ASes when lock != kNone
  std::size_t filtered_sender_count = 1;  // kDirectOnly: refused senders
};

struct DiffReport {
  bool ok = true;
  // Which oracle diverged (e.g. "event.class", "reachability.set",
  // "invariant") — empty when ok.
  std::string oracle;
  // First AS where the divergence shows, kInvalidAsId when not applicable.
  AsId first_mismatch = kInvalidAsId;
  Asn first_mismatch_asn = 0;
  std::string detail;

  // One-line human-readable summary of the failure ("ok" when ok).
  std::string Summary() const;
};

// Runs all applicable engines plus the structural invariants on one
// configuration. Deterministic in (graph, config).
DiffReport RunDiffCase(const AsGraph& graph, const DiffCaseConfig& config);

}  // namespace flatnet::check

#endif  // FLATNET_CHECK_DIFF_H_
