// Structural invariants of a RouteComputation.
//
// These are the properties the phase-based kernels promise by construction;
// checking them independently catches the silent path-enumeration bugs that
// corrupt every downstream metric at once (reachability, reliance, leak
// resilience). Each check returns std::nullopt when the invariant holds,
// otherwise a description of the *first* violation found — suitable for a
// gtest failure message or a diffcheck reproducer log. All checks are
// O(V + E) (reliance conservation runs one extra dependency pass).
#ifndef FLATNET_CHECK_INVARIANTS_H_
#define FLATNET_CHECK_INVARIANTS_H_

#include <optional>
#include <string>
#include <vector>

#include "bgp/propagation.h"

namespace flatnet::check {

// Predecessor-DAG edges obey Gao-Rexford selection and valley-free export:
//   - a node with a customer route learned it from a customer whose own
//     route is customer-learned (or the origin);
//   - a peer route came over a peer edge from a customer-route holder or
//     the origin (peers never re-export peer/provider routes);
//   - a provider route came from a provider holding any route;
//   - every predecessor supplies a route exactly one hop shorter, and the
//     predecessor list has no duplicates.
std::optional<std::string> CheckValleyFreeDag(const RouteComputation& computation);

// NodesByLength() contains exactly the routed nodes, each once, sorted by
// ascending best length (the topological order the reliance DP relies on).
std::optional<std::string> CheckOrderByLength(const RouteComputation& computation);

// source_mask bookkeeping: each source holds exactly its own bit, and every
// other routed node's mask is the union of its predecessors' masks (a
// tied-best route exists through source i iff some predecessor has bit i).
std::optional<std::string> CheckSourceMasks(const RouteComputation& computation,
                                            const std::vector<AnnouncementSource>& sources);

// Path-count conservation through the reliance computation (single-source
// only): sigma(origin) = 1, sigma(v) = sum of sigma over predecessors, and
// the Brandes mass balance — the sum of (rely(a) - 1) over reachable ASes
// equals the sum over destinations t of (E[path length of t] - 1), where
// E[len] is recomputed here with an independent DP.
std::optional<std::string> CheckRelianceConservation(const RouteComputation& computation);

// Runs every applicable check above (reliance conservation only for
// single-source computations); returns the first failure.
std::optional<std::string> CheckRouteInvariants(const RouteComputation& computation,
                                                const std::vector<AnnouncementSource>& sources);

}  // namespace flatnet::check

#endif  // FLATNET_CHECK_INVARIANTS_H_
