// PeeringDB-style dataset snapshots (§4.2's "authoritative" registry).
//
// Mirrors the slice of the PeeringDB schema the paper relies on: networks
// (`net`), exchanges (`ix`), per-exchange ports with their LAN addresses
// (`netixlan` — the records that resolve IXP interface addresses to member
// ASes in §5's final methodology), facilities (`fac`), and network-facility
// presence (`netfac` — the candidate locations in Appendix D). Snapshots
// serialize to a JSON document shaped like a PeeringDB API dump, so the
// registry inputs of a study can be stored, shared, and reloaded.
#ifndef FLATNET_DATA_PEERINGDB_H_
#define FLATNET_DATA_PEERINGDB_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "measure/addressing.h"
#include "util/json.h"
#include "topogen/world.h"

namespace flatnet {

struct PdbNet {
  Asn asn = 0;
  std::string name;
  std::string policy;  // "Open" / "Selective" / "Restrictive"
};

struct PdbIx {
  std::uint32_t id = 0;
  std::string name;
  std::string city;
};

struct PdbNetIxLan {
  Asn asn = 0;
  std::uint32_t ix_id = 0;
  Ipv4Address ipaddr4;
};

struct PdbFacility {
  std::uint32_t id = 0;
  std::string name;
  std::string city;
};

struct PdbNetFac {
  Asn asn = 0;
  std::uint32_t fac_id = 0;
};

class PeeringDbSnapshot {
 public:
  // Builds a snapshot of the world's registries: every AS as a `net`
  // record, every IXP as an `ix` with `netixlan` port records for members
  // that keep their entries current (`record_coverage`), and one facility
  // per (deployment network, PoP city) with the matching `netfac` rows.
  static PeeringDbSnapshot FromWorld(const World& world, const AddressPlan& plan,
                                     double record_coverage, std::uint64_t seed);

  Json ToJson() const;
  static PeeringDbSnapshot FromJson(const Json& json);

  std::string Dump(int indent = 2) const { return ToJson().Dump(indent); }
  static PeeringDbSnapshot Parse(std::string_view text);

  // Lookups mirroring how the paper uses PeeringDB.
  std::optional<Asn> ResolveLanAddress(Ipv4Address addr) const;      // §5
  std::vector<std::string> FacilityCitiesOf(Asn asn) const;          // Appendix D
  const PdbNet* NetOf(Asn asn) const;

  const std::vector<PdbNet>& nets() const { return nets_; }
  const std::vector<PdbIx>& ixes() const { return ixes_; }
  const std::vector<PdbNetIxLan>& netixlans() const { return netixlans_; }
  const std::vector<PdbFacility>& facilities() const { return facilities_; }
  const std::vector<PdbNetFac>& netfacs() const { return netfacs_; }

 private:
  void RebuildIndexes();

  std::vector<PdbNet> nets_;
  std::vector<PdbIx> ixes_;
  std::vector<PdbNetIxLan> netixlans_;
  std::vector<PdbFacility> facilities_;
  std::vector<PdbNetFac> netfacs_;

  std::unordered_map<std::uint32_t, Asn> lan_owner_;        // raw ip -> asn
  std::unordered_map<Asn, std::size_t> net_index_;
  std::unordered_map<std::uint32_t, std::string> fac_city_;
  std::unordered_map<Asn, std::vector<std::uint32_t>> fac_of_;
};

}  // namespace flatnet

#endif  // FLATNET_DATA_PEERINGDB_H_
