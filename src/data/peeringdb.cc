#include "data/peeringdb.h"

#include <set>

#include "util/error.h"
#include "util/rng.h"
#include "util/strings.h"

namespace flatnet {
namespace {

const char* PolicyFor(const AsInfo& info) {
  // PeeringDB policies are self-declared; approximate them by role.
  switch (info.type) {
    case AsType::kContent:
    case AsType::kCloud:
      return "Open";
    case AsType::kTransit:
    case AsType::kAccess:
      return "Selective";
    case AsType::kEnterprise:
      return "Restrictive";
  }
  return "Selective";
}

}  // namespace

PeeringDbSnapshot PeeringDbSnapshot::FromWorld(const World& world, const AddressPlan& plan,
                                               double record_coverage, std::uint64_t seed) {
  Rng rng(seed);
  PeeringDbSnapshot snapshot;
  auto cities = WorldCities();

  // net: one record per AS with a PeeringDB presence. Smaller networks
  // often skip registration entirely; hypergiants always register.
  for (AsId id = 0; id < world.num_ases(); ++id) {
    const AsInfo& info = world.metadata.Get(id);
    bool registered = world.full_graph.Degree(id) > 3 || !info.name.empty()
                          ? true
                          : rng.Bernoulli(0.5);
    if (!registered) continue;
    PdbNet net;
    net.asn = world.full_graph.AsnOf(id);
    net.name = info.name.empty()
                   ? StrFormat("AS%u", world.full_graph.AsnOf(id))
                   : info.name;
    net.policy = PolicyFor(info);
    snapshot.nets_.push_back(std::move(net));
  }

  // ix + netixlan: exchange records and member ports (subject to record
  // freshness, as in the resolvers).
  for (std::uint32_t x = 0; x < world.ixps.size(); ++x) {
    const IxpInstance& ixp = world.ixps[x];
    PdbIx ix;
    ix.id = x + 1;
    ix.name = ixp.name;
    ix.city = std::string(cities[ixp.city].name);
    snapshot.ixes_.push_back(std::move(ix));
  }
  const AsGraph& graph = world.full_graph;
  for (AsId a = 0; a < graph.num_ases(); ++a) {
    for (const Neighbor& nb : graph.Peers(a)) {
      if (nb.id < a) continue;
      const LinkAddressing& link = plan.LinkInfo(a, nb.id);
      if (link.medium != LinkMedium::kIxpLan) continue;
      for (auto [from, to] : {std::pair{a, nb.id}, std::pair{nb.id, a}}) {
        if (!rng.Bernoulli(record_coverage)) continue;
        PdbNetIxLan port;
        port.asn = graph.AsnOf(to);
        port.ix_id = link.ixp_index + 1;
        port.ipaddr4 = plan.BorderAddress(from, to);
        snapshot.netixlans_.push_back(port);
      }
    }
  }

  // fac + netfac: one colo per city hosting any multi-city network, with
  // presence rows for every network footprint.
  std::set<CityIndex> fac_cities;
  for (AsId id = 0; id < world.num_ases(); ++id) {
    for (CityIndex c : world.presence[id]) fac_cities.insert(c);
  }
  std::unordered_map<CityIndex, std::uint32_t> fac_id_of;
  for (CityIndex c : fac_cities) {
    PdbFacility fac;
    fac.id = static_cast<std::uint32_t>(c) + 1;
    fac.name = StrFormat("%s Colo 1", std::string(cities[c].name).c_str());
    fac.city = std::string(cities[c].name);
    fac_id_of[c] = fac.id;
    snapshot.facilities_.push_back(std::move(fac));
  }
  for (AsId id = 0; id < world.num_ases(); ++id) {
    // Single-homed stubs rarely list facilities; networks with footprints do.
    if (world.presence[id].size() <= 1 && !rng.Bernoulli(0.3)) continue;
    for (CityIndex c : world.presence[id]) {
      snapshot.netfacs_.push_back({graph.AsnOf(id), fac_id_of[c]});
    }
  }

  snapshot.RebuildIndexes();
  return snapshot;
}

Json PeeringDbSnapshot::ToJson() const {
  Json root = Json::MakeObject();
  auto wrap = [](Json data) {
    Json section = Json::MakeObject();
    section["data"] = std::move(data);
    return section;
  };

  Json nets = Json::MakeArray();
  for (const PdbNet& net : nets_) {
    Json record = Json::MakeObject();
    record["asn"] = net.asn;
    record["name"] = net.name;
    record["policy_general"] = net.policy;
    nets.Append(std::move(record));
  }
  root["net"] = wrap(std::move(nets));

  Json ixes = Json::MakeArray();
  for (const PdbIx& ix : ixes_) {
    Json record = Json::MakeObject();
    record["id"] = ix.id;
    record["name"] = ix.name;
    record["city"] = ix.city;
    ixes.Append(std::move(record));
  }
  root["ix"] = wrap(std::move(ixes));

  Json ports = Json::MakeArray();
  for (const PdbNetIxLan& port : netixlans_) {
    Json record = Json::MakeObject();
    record["asn"] = port.asn;
    record["ix_id"] = port.ix_id;
    record["ipaddr4"] = port.ipaddr4.ToString();
    ports.Append(std::move(record));
  }
  root["netixlan"] = wrap(std::move(ports));

  Json facs = Json::MakeArray();
  for (const PdbFacility& fac : facilities_) {
    Json record = Json::MakeObject();
    record["id"] = fac.id;
    record["name"] = fac.name;
    record["city"] = fac.city;
    facs.Append(std::move(record));
  }
  root["fac"] = wrap(std::move(facs));

  Json netfacs = Json::MakeArray();
  for (const PdbNetFac& row : netfacs_) {
    Json record = Json::MakeObject();
    record["asn"] = row.asn;
    record["fac_id"] = row.fac_id;
    netfacs.Append(std::move(record));
  }
  root["netfac"] = wrap(std::move(netfacs));
  return root;
}

PeeringDbSnapshot PeeringDbSnapshot::FromJson(const Json& json) {
  PeeringDbSnapshot snapshot;
  auto section = [&](const char* key) -> const Json::Array& {
    return json.At(key).At("data").AsArray();
  };
  for (const Json& record : section("net")) {
    PdbNet net;
    net.asn = static_cast<Asn>(record.At("asn").AsU64());
    net.name = record.At("name").AsString();
    net.policy = record.At("policy_general").AsString();
    snapshot.nets_.push_back(std::move(net));
  }
  for (const Json& record : section("ix")) {
    PdbIx ix;
    ix.id = static_cast<std::uint32_t>(record.At("id").AsU64());
    ix.name = record.At("name").AsString();
    ix.city = record.At("city").AsString();
    snapshot.ixes_.push_back(std::move(ix));
  }
  for (const Json& record : section("netixlan")) {
    PdbNetIxLan port;
    port.asn = static_cast<Asn>(record.At("asn").AsU64());
    port.ix_id = static_cast<std::uint32_t>(record.At("ix_id").AsU64());
    auto addr = Ipv4Address::FromString(record.At("ipaddr4").AsString());
    if (!addr) throw ParseError("peeringdb: bad ipaddr4 '" +
                                record.At("ipaddr4").AsString() + "'");
    port.ipaddr4 = *addr;
    snapshot.netixlans_.push_back(port);
  }
  for (const Json& record : section("fac")) {
    PdbFacility fac;
    fac.id = static_cast<std::uint32_t>(record.At("id").AsU64());
    fac.name = record.At("name").AsString();
    fac.city = record.At("city").AsString();
    snapshot.facilities_.push_back(std::move(fac));
  }
  for (const Json& record : section("netfac")) {
    PdbNetFac row;
    row.asn = static_cast<Asn>(record.At("asn").AsU64());
    row.fac_id = static_cast<std::uint32_t>(record.At("fac_id").AsU64());
    snapshot.netfacs_.push_back(row);
  }
  snapshot.RebuildIndexes();
  return snapshot;
}

PeeringDbSnapshot PeeringDbSnapshot::Parse(std::string_view text) {
  return FromJson(Json::Parse(text));
}

void PeeringDbSnapshot::RebuildIndexes() {
  lan_owner_.clear();
  net_index_.clear();
  fac_city_.clear();
  fac_of_.clear();
  for (const PdbNetIxLan& port : netixlans_) lan_owner_[port.ipaddr4.value()] = port.asn;
  for (std::size_t i = 0; i < nets_.size(); ++i) net_index_[nets_[i].asn] = i;
  for (const PdbFacility& fac : facilities_) fac_city_[fac.id] = fac.city;
  for (const PdbNetFac& row : netfacs_) fac_of_[row.asn].push_back(row.fac_id);
}

std::optional<Asn> PeeringDbSnapshot::ResolveLanAddress(Ipv4Address addr) const {
  if (auto it = lan_owner_.find(addr.value()); it != lan_owner_.end()) return it->second;
  return std::nullopt;
}

std::vector<std::string> PeeringDbSnapshot::FacilityCitiesOf(Asn asn) const {
  std::vector<std::string> cities;
  if (auto it = fac_of_.find(asn); it != fac_of_.end()) {
    for (std::uint32_t fac_id : it->second) {
      if (auto city = fac_city_.find(fac_id); city != fac_city_.end()) {
        cities.push_back(city->second);
      }
    }
  }
  return cities;
}

const PdbNet* PeeringDbSnapshot::NetOf(Asn asn) const {
  if (auto it = net_index_.find(asn); it != net_index_.end()) return &nets_[it->second];
  return nullptr;
}

}  // namespace flatnet
