// Named network archetypes.
//
// The generator seeds the synthetic Internet with networks modeled on the
// ones the paper reports on — the four cloud providers, the Tier-1 clique,
// the Tier-2 band, and a handful of open-peering mid transits — so the
// bench output prints recognizable rows. Parameters (peer counts, provider
// counts, peering policies) come from the paper's §4.1/§6 numbers; every
// other attribute is synthetic. These are archetypes, not measurements of
// the real networks.
#ifndef FLATNET_TOPOGEN_ARCHETYPES_H_
#define FLATNET_TOPOGEN_ARCHETYPES_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "asgraph/as_graph.h"

namespace flatnet {

enum class PeeringPolicy : std::uint8_t {
  kOpen,        // peers with anyone at shared facilities
  kSelective,   // peers case-by-case
  kRestrictive  // rarely peers outside the clique
};

// One of the measured cloud providers (plus the Facebook-style content
// hypergiant used in Fig 7d).
struct CloudArchetype {
  std::string name;
  Asn asn = 0;
  // Ground-truth peer count at paper scale (§4.1 traceroute-augmented
  // numbers; the generator scales these with the topology fraction).
  std::uint32_t peer_count = 0;
  // Peers visible in BGP feeds at paper scale (§4.1 CAIDA-only numbers).
  std::uint32_t bgp_visible_peers = 0;
  // Transit providers: how many are Tier-1s, and how many other networks.
  std::uint32_t tier1_providers = 0;
  std::uint32_t other_providers = 0;
  // Tier-1 ISPs this network peers with (Google peers with 15).
  std::uint32_t tier1_peers = 0;
  PeeringPolicy policy = PeeringPolicy::kSelective;
  // Number of VM locations used for the §4.1 measurements.
  std::uint32_t vm_locations = 0;
  // False => early-exit routing (Amazon): tenant traffic egresses near the
  // VM instead of riding the WAN to the best global exit.
  bool wan_egress = true;
  // Approximate PoP count for the §9 deployment analysis.
  std::uint32_t pop_count = 0;
  // Treated as one of "the four cloud providers" in the analyses (false
  // for the Facebook archetype, which only appears in the leak study).
  bool is_study_cloud = true;
};

// A Tier-1 clique member.
struct Tier1Archetype {
  std::string name;
  Asn asn = 0;
  // Relative pull when transit customers choose providers. Level 3's high
  // share is what gives it the top hierarchy-free reachability; Sprint's
  // and Deutsche Telekom's low shares reproduce the Appendix-B outliers.
  double customer_share = 1.0;
  // Edge peering outside the clique/Tier-2 band, at paper scale.
  std::uint32_t edge_peers = 0;
  PeeringPolicy policy = PeeringPolicy::kRestrictive;
  std::uint32_t pop_count = 40;
};

// A Tier-2 (large transit) network.
struct Tier2Archetype {
  std::string name;
  Asn asn = 0;
  double customer_share = 1.0;
  std::uint32_t edge_peers = 0;
  // Fraction of the Tier-1 clique this network peers with (beyond its
  // providers).
  double tier1_peer_fraction = 0.3;
  std::uint32_t tier1_provider_count = 2;
  PeeringPolicy policy = PeeringPolicy::kSelective;
  std::uint32_t pop_count = 30;
};

// Open-peering mid-size transit (the SG.GS / COLT / Core-Backbone class
// that fills Table 1's lower half).
struct OpenTransitArchetype {
  std::string name;
  Asn asn = 0;
  std::uint32_t edge_peers = 0;  // at paper scale
};

std::span<const CloudArchetype> DefaultClouds2020();
std::span<const CloudArchetype> DefaultClouds2015();
std::span<const Tier1Archetype> DefaultTier1s();
std::span<const Tier2Archetype> DefaultTier2s();
std::span<const OpenTransitArchetype> DefaultOpenTransits();

}  // namespace flatnet

#endif  // FLATNET_TOPOGEN_ARCHETYPES_H_
