// Synthetic Internet generation.
//
// Substitute for the CAIDA AS-relationship datasets and for the cloud
// providers' (unobservable) true neighbor sets: builds a ground-truth
// AS-level topology whose aggregate shape matches the paper's inputs — a
// Tier-1 clique, a Tier-2 band, regional and mid transit layers, eyeball /
// content / enterprise edge ASes, IXP-driven peering meshes, and the five
// named hypergiants with their §4.1 peer counts — plus the BGP-visible
// subset that plays the role of the public feeds.
#ifndef FLATNET_TOPOGEN_GENERATE_H_
#define FLATNET_TOPOGEN_GENERATE_H_

#include "topogen/params.h"
#include "topogen/world.h"

namespace flatnet {

// Deterministic for a fixed parameter set (params.seed drives everything).
World GenerateWorld(const GeneratorParams& params);

}  // namespace flatnet

#endif  // FLATNET_TOPOGEN_GENERATE_H_
