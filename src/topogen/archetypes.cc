#include "topogen/archetypes.h"

#include <array>

namespace flatnet {
namespace {

// §4.1: traceroute-augmented vs CAIDA-only peer counts; §6.3: Google peers
// with 15 Tier-1s, Microsoft buys from 7; §6.2: Amazon has 20 providers,
// Google 3 (Tata, GTT, Durand do Brasil). PoP counts from Table 3.
const std::array kClouds2020 = {
    CloudArchetype{.name = "Google", .asn = 15169, .peer_count = 7757,
                   .bgp_visible_peers = 818, .tier1_providers = 2, .other_providers = 1,
                   .tier1_peers = 15, .policy = PeeringPolicy::kOpen, .vm_locations = 12,
                   .wan_egress = true, .pop_count = 56, .is_study_cloud = true},
    CloudArchetype{.name = "Microsoft", .asn = 8075, .peer_count = 3580,
                   .bgp_visible_peers = 315, .tier1_providers = 7, .other_providers = 0,
                   .tier1_peers = 0, .policy = PeeringPolicy::kSelective, .vm_locations = 11,
                   .wan_egress = true, .pop_count = 117, .is_study_cloud = true},
    CloudArchetype{.name = "Amazon", .asn = 16509, .peer_count = 1389,
                   .bgp_visible_peers = 333, .tier1_providers = 8, .other_providers = 12,
                   .tier1_peers = 3, .policy = PeeringPolicy::kSelective, .vm_locations = 20,
                   .wan_egress = false, .pop_count = 78, .is_study_cloud = true},
    CloudArchetype{.name = "IBM", .asn = 36351, .peer_count = 3702,
                   .bgp_visible_peers = 3027, .tier1_providers = 2, .other_providers = 2,
                   .tier1_peers = 6, .policy = PeeringPolicy::kSelective, .vm_locations = 6,
                   .wan_egress = true, .pop_count = 40, .is_study_cloud = true},
    // Content hypergiant used for Fig 7d; not part of the four-cloud study.
    // Facebook is not measured from inside (no VMs), so its analysis-
    // topology footprint is whatever BGP sees — which for Facebook is a
    // large share of its peering (it announces at route collectors
    // worldwide).
    CloudArchetype{.name = "Facebook", .asn = 32934, .peer_count = 4000,
                   .bgp_visible_peers = 2300, .tier1_providers = 2, .other_providers = 1,
                   .tier1_peers = 8, .policy = PeeringPolicy::kOpen, .vm_locations = 0,
                   .wan_egress = true, .pop_count = 60, .is_study_cloud = false},
};

// 2015 era (§6.5): Google's footprint was already large (6,397 neighbors,
// Appendix E); Amazon and Microsoft were far less interconnected (ranks 206
// and 62 by hierarchy-free reachability); Microsoft additionally had no
// usable traceroute dataset in 2015.
const std::array kClouds2015 = {
    CloudArchetype{.name = "Google", .asn = 15169, .peer_count = 6397,
                   .bgp_visible_peers = 700, .tier1_providers = 3, .other_providers = 1,
                   .tier1_peers = 12, .policy = PeeringPolicy::kOpen, .vm_locations = 12,
                   .wan_egress = true, .pop_count = 40, .is_study_cloud = true},
    CloudArchetype{.name = "Microsoft", .asn = 8075, .peer_count = 900,
                   .bgp_visible_peers = 650, .tier1_providers = 7, .other_providers = 2,
                   .tier1_peers = 0, .policy = PeeringPolicy::kSelective, .vm_locations = 0,
                   .wan_egress = true, .pop_count = 60, .is_study_cloud = true},
    CloudArchetype{.name = "Amazon", .asn = 16509, .peer_count = 450,
                   .bgp_visible_peers = 200, .tier1_providers = 10, .other_providers = 10,
                   .tier1_peers = 1, .policy = PeeringPolicy::kRestrictive, .vm_locations = 12,
                   .wan_egress = false, .pop_count = 30, .is_study_cloud = true},
    CloudArchetype{.name = "IBM", .asn = 36351, .peer_count = 2400,
                   .bgp_visible_peers = 1900, .tier1_providers = 3, .other_providers = 2,
                   .tier1_peers = 4, .policy = PeeringPolicy::kSelective, .vm_locations = 6,
                   .wan_egress = true, .pop_count = 25, .is_study_cloud = true},
    CloudArchetype{.name = "Facebook", .asn = 32934, .peer_count = 2200,
                   .bgp_visible_peers = 1200, .tier1_providers = 3, .other_providers = 1,
                   .tier1_peers = 5, .policy = PeeringPolicy::kOpen, .vm_locations = 0,
                   .wan_egress = true, .pop_count = 35, .is_study_cloud = false},
};

// The clique. customer_share drives how many transit customers each Tier-1
// attracts; edge_peers is peering outside the hierarchy. Level 3 is
// customer-rich and edge-peered (top hierarchy-free reachability); Sprint
// and Deutsche Telekom lean on the hierarchy (Appendix B's outliers).
const std::array kTier1s = {
    Tier1Archetype{"Level 3", 3356, 10.0, 6000, PeeringPolicy::kSelective, 95},
    Tier1Archetype{"Cogent", 174, 7.0, 3800, PeeringPolicy::kSelective, 50},
    Tier1Archetype{"Telia", 1299, 6.5, 3500, PeeringPolicy::kSelective, 121},
    Tier1Archetype{"GTT", 3257, 5.5, 3000, PeeringPolicy::kSelective, 49},
    Tier1Archetype{"NTT", 2914, 5.0, 2200, PeeringPolicy::kRestrictive, 49},
    Tier1Archetype{"Zayo", 6461, 4.5, 2800, PeeringPolicy::kSelective, 36},
    Tier1Archetype{"Tata", 6453, 4.0, 1800, PeeringPolicy::kRestrictive, 94},
    Tier1Archetype{"AT&T", 7018, 3.0, 900, PeeringPolicy::kRestrictive, 39},
    Tier1Archetype{"Verizon", 701, 3.0, 800, PeeringPolicy::kRestrictive, 40},
    Tier1Archetype{"Orange", 5511, 2.0, 600, PeeringPolicy::kRestrictive, 30},
    Tier1Archetype{"Telecom Italia Sparkle", 6762, 2.2, 750, PeeringPolicy::kRestrictive, 78},
    Tier1Archetype{"Telxius", 12956, 1.8, 600, PeeringPolicy::kRestrictive, 60},
    Tier1Archetype{"Vodafone", 1273, 2.5, 1000, PeeringPolicy::kRestrictive, 31},
    Tier1Archetype{"KPN", 286, 1.5, 500, PeeringPolicy::kRestrictive, 25},
    Tier1Archetype{"Deutsche Telekom", 3320, 0.9, 150, PeeringPolicy::kRestrictive, 30},
    Tier1Archetype{"Sprint", 1239, 0.8, 120, PeeringPolicy::kRestrictive, 95},
    Tier1Archetype{"Telefonica", 12389 + 700000, 1.2, 380, PeeringPolicy::kRestrictive, 28},
};

// The Tier-2 band (ProbLink's list, roughly). Hurricane Electric's open
// policy and huge edge peering make it the #2 hierarchy-free network.
const std::array kTier2s = {
    Tier2Archetype{"Hurricane Electric", 6939, 8.0, 9000, 0.9, 1, PeeringPolicy::kOpen, 112},
    Tier2Archetype{"PCCW", 3491, 4.0, 700, 0.8, 0, PeeringPolicy::kSelective, 69},
    Tier2Archetype{"Liberty Global", 6830, 3.0, 600, 0.7, 0, PeeringPolicy::kSelective, 30},
    Tier2Archetype{"Comcast", 7922, 2.5, 800, 0.8, 1, PeeringPolicy::kSelective, 35},
    Tier2Archetype{"Telstra", 4637, 2.5, 400, 0.6, 1, PeeringPolicy::kSelective, 45},
    Tier2Archetype{"Vocus", 4826, 2.0, 900, 0.7, 1, PeeringPolicy::kOpen, 25},
    Tier2Archetype{"RETN", 9002, 2.2, 800, 0.6, 1, PeeringPolicy::kOpen, 40},
    Tier2Archetype{"TELIN PT", 7713, 1.8, 850, 0.6, 2, PeeringPolicy::kOpen, 25},
    Tier2Archetype{"Korea Telecom", 4766, 1.8, 300, 0.5, 2, PeeringPolicy::kSelective, 20},
    Tier2Archetype{"KDDI", 2516, 1.5, 120, 0.4, 2, PeeringPolicy::kRestrictive, 25},
    Tier2Archetype{"IIJ", 2497, 1.5, 250, 0.5, 2, PeeringPolicy::kSelective, 20},
    Tier2Archetype{"British Telecom", 5400, 1.5, 200, 0.5, 2, PeeringPolicy::kRestrictive, 25},
    Tier2Archetype{"Tele2", 1257, 1.3, 220, 0.5, 2, PeeringPolicy::kSelective, 20},
    Tier2Archetype{"TDC", 3292, 1.2, 250, 0.5, 2, PeeringPolicy::kSelective, 18},
    Tier2Archetype{"KCOM", 12390, 0.8, 60, 0.1, 3, PeeringPolicy::kRestrictive, 10},
    Tier2Archetype{"CN Net", 4134, 2.0, 150, 0.4, 2, PeeringPolicy::kRestrictive, 25},
    Tier2Archetype{"Fibrenoire", 22652, 0.9, 150, 0.4, 2, PeeringPolicy::kSelective, 12},
    Tier2Archetype{"Stealth", 8002, 0.9, 250, 0.4, 2, PeeringPolicy::kOpen, 12},
    Tier2Archetype{"PT", 2860, 1.0, 180, 0.4, 2, PeeringPolicy::kSelective, 15},
    Tier2Archetype{"Spirit", 29076 + 500000, 0.8, 160, 0.3, 2, PeeringPolicy::kSelective, 12},
    Tier2Archetype{"Internap", 14744, 0.8, 200, 0.4, 2, PeeringPolicy::kSelective, 15},
    Tier2Archetype{"Easynet", 4589, 0.7, 120, 0.3, 2, PeeringPolicy::kSelective, 12},
    Tier2Archetype{"FiberRing", 38930, 0.6, 140, 0.3, 2, PeeringPolicy::kOpen, 10},
    Tier2Archetype{"Rostelecom", 12389, 2.2, 350, 0.5, 2, PeeringPolicy::kSelective, 30},
};

// Open-peering mid transits that surface in Table 1's lower half.
const std::array kOpenTransits = {
    OpenTransitArchetype{"SG.GS", 24482, 1800},
    OpenTransitArchetype{"COLT", 8220, 1500},
    OpenTransitArchetype{"G-Core Labs", 199524, 1400},
    OpenTransitArchetype{"Core-Backbone", 33891, 1300},
    OpenTransitArchetype{"WV FIBER", 19151, 1250},
    OpenTransitArchetype{"Wikimedia", 14907, 1200},
    OpenTransitArchetype{"Swisscom", 3303, 1100},
    OpenTransitArchetype{"IPTP", 41095, 1000},
    OpenTransitArchetype{"Init7", 13030, 950},
    OpenTransitArchetype{"StackPath", 12989, 900},
    OpenTransitArchetype{"MTS PJSC", 8359, 850},
    OpenTransitArchetype{"iiNet", 4739, 800},
    OpenTransitArchetype{"Bharti Airtel", 9498, 750},
    OpenTransitArchetype{"Lightower Fiber", 46887, 700},
    OpenTransitArchetype{"PJSC", 3216, 650},
    OpenTransitArchetype{"Durand do Brasil", 22356, 600},
};

}  // namespace

std::span<const CloudArchetype> DefaultClouds2020() { return kClouds2020; }
std::span<const CloudArchetype> DefaultClouds2015() { return kClouds2015; }
std::span<const Tier1Archetype> DefaultTier1s() { return kTier1s; }
std::span<const Tier2Archetype> DefaultTier2s() { return kTier2s; }
std::span<const OpenTransitArchetype> DefaultOpenTransits() { return kOpenTransits; }

}  // namespace flatnet
