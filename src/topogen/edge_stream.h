// External-memory half-edge sorting for the streaming generator.
//
// The generator emits every adjacency entry as a HalfEdge record the
// moment the edge is decided. EdgeRunSorter buffers records up to a byte
// budget, spills sorted runs to disk when the budget fills, and replays
// the fully merged (node, bucket, neighbor) order in one streaming pass —
// so the CSR columns are written append-only with no per-node lists, no
// builders, and peak RSS bounded by the budget instead of the edge count.
// Keys are unique (the generator dedups pairs first), so the merged
// sequence is a total order: output is bit-identical at ANY budget,
// including the 0 = never-spill in-memory mode.
//
// PairKeySet is the dedup side: an open-addressing set of packed id
// pairs, ~9 bytes per edge at peak instead of the ~50 of an
// unordered_set node — the difference between fitting a 1M-AS
// generation's dedup state in cache-friendly RAM or not.
#ifndef FLATNET_TOPOGEN_EDGE_STREAM_H_
#define FLATNET_TOPOGEN_EDGE_STREAM_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace flatnet {

// One directed CSR entry: `neighbor` will land in `node`'s adjacency,
// in the relationship group `bucket` (Relationship's underlying value).
struct HalfEdge {
  std::uint32_t node = 0;
  std::uint32_t bucket = 0;
  std::uint32_t neighbor = 0;

  friend bool operator<(const HalfEdge& x, const HalfEdge& y) {
    if (x.node != y.node) return x.node < y.node;
    if (x.bucket != y.bucket) return x.bucket < y.bucket;
    return x.neighbor < y.neighbor;
  }
};

class EdgeRunSorter {
 public:
  // Records buffer in memory up to `budget_bytes`, then sort-and-spill to
  // `<run_prefix>.runN`; 0 means never spill. Run files are removed by the
  // destructor.
  EdgeRunSorter(std::string run_prefix, std::uint64_t budget_bytes);
  ~EdgeRunSorter();

  EdgeRunSorter(const EdgeRunSorter&) = delete;
  EdgeRunSorter& operator=(const EdgeRunSorter&) = delete;

  void Add(const HalfEdge& record);

  std::size_t size() const { return total_; }
  std::size_t runs_spilled() const { return run_files_.size(); }

  // Sorts the resident tail, k-way merges it with the spilled runs, and
  // calls `fn` once per record in ascending (node, bucket, neighbor)
  // order. Single use; the sorter is empty afterwards.
  void Drain(const std::function<void(const HalfEdge&)>& fn);

 private:
  void Spill();

  std::string run_prefix_;
  std::size_t cap_records_;
  std::vector<HalfEdge> buffer_;
  std::vector<std::string> run_files_;
  std::size_t total_ = 0;
};

// Insert-only set of nonzero u64 keys: open addressing, linear probing,
// power-of-two capacity grown at 60% load. 0 is the empty-slot sentinel —
// the generator's pair keys are never 0 (the larger id of a non-self pair
// is at least 1).
class PairKeySet {
 public:
  PairKeySet() : slots_(1 << 16, 0) {}

  std::size_t size() const { return size_; }

  // True when newly inserted, false when already present.
  bool Insert(std::uint64_t key);
  bool Contains(std::uint64_t key) const;

 private:
  static std::uint64_t Mix(std::uint64_t key);

  std::vector<std::uint64_t> slots_;
  std::size_t size_ = 0;
};

}  // namespace flatnet

#endif  // FLATNET_TOPOGEN_EDGE_STREAM_H_
