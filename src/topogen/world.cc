#include "topogen/world.h"

#include "util/error.h"

namespace flatnet {

const CloudInstance& World::Cloud(const std::string& name) const {
  for (const CloudInstance& cloud : clouds) {
    if (cloud.archetype.name == name) return cloud;
  }
  throw InvalidArgument("World::Cloud: unknown cloud '" + name + "'");
}

std::vector<AsId> World::StudyCloudIds() const {
  std::vector<AsId> ids;
  for (const CloudInstance& cloud : clouds) {
    if (cloud.archetype.is_study_cloud) ids.push_back(cloud.id);
  }
  return ids;
}

std::vector<double> World::UserArray() const {
  std::vector<double> users(num_ases(), 0.0);
  for (AsId id = 0; id < users.size(); ++id) users[id] = metadata.Get(id).users;
  return users;
}

}  // namespace flatnet
