#include "topogen/generate.h"

#include <unistd.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <filesystem>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "net/prefix_allocator.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "topogen/edge_stream.h"
#include "util/error.h"
#include "util/narrow.h"
#include "util/rng.h"
#include "util/strings.h"

namespace flatnet {
namespace {

// Structural role during generation (finer than the reported AsType).
enum class Category : std::uint8_t {
  kTier1,
  kTier2,
  kCloud,
  kOpenTransit,
  kLargeTransit,
  kMidTransit,
  kAccess,
  kContent,
  kEnterprise,
};

struct AsRecord {
  Asn asn = 0;
  std::string name;
  Category category = Category::kEnterprise;
  CityIndex home = 0;
  double users = 0.0;
  PeeringPolicy policy = PeeringPolicy::kRestrictive;
};

// Weighted sampling over a fixed item set (cumulative sums + binary search).
class WeightedPool {
 public:
  void Add(AsId id, double weight) {
    if (weight <= 0.0) return;
    items_.push_back(id);
    total_ += weight;
    cumulative_.push_back(total_);
  }

  bool empty() const { return items_.empty(); }
  std::size_t size() const { return items_.size(); }

  AsId Sample(Rng& rng) const {
    double r = rng.UniformDouble() * total_;
    auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), r);
    std::size_t idx = static_cast<std::size_t>(it - cumulative_.begin());
    if (idx >= items_.size()) idx = items_.size() - 1;
    return items_[idx];
  }

 private:
  std::vector<AsId> items_;
  std::vector<double> cumulative_;
  double total_ = 0.0;
};

// Hands out aligned blocks across several /8 pools.
class MultiPoolAllocator {
 public:
  explicit MultiPoolAllocator(std::vector<Ipv4Prefix> pools) {
    for (const Ipv4Prefix& pool : pools) allocators_.emplace_back(pool);
  }

  Ipv4Prefix Allocate(std::uint8_t length) {
    for (PrefixAllocator& alloc : allocators_) {
      if (auto prefix = alloc.Allocate(length)) return *prefix;
    }
    throw Error("MultiPoolAllocator: address pools exhausted");
  }

 private:
  std::vector<PrefixAllocator> allocators_;
};

class Generator {
 public:
  explicit Generator(const GeneratorParams& params)
      : params_(params), rng_(params.seed), cities_(WorldCities()) {}

  World Run() {
    obs::TraceSpan span("topogen.generate");
    Stage("create_records", [&] { CreateRecords(); });
    // Users before cloud links: clouds target high-user eyeballs.
    Stage("assign_users", [&] { AssignUsers(); });
    InitEdgeSinks();
    Stage("clique", [&] { BuildClique(); });
    Stage("tier2_links", [&] { BuildTier2Links(); });
    Stage("transit_links", [&] { BuildTransitLinks(); });
    Stage("edge_customer_links", [&] { BuildEdgeCustomerLinks(); });
    Stage("cloud_links", [&] { BuildCloudLinks(); });
    Stage("hierarchy_edge_peering", [&] { BuildHierarchyEdgePeering(); });
    Stage("ixp_mesh", [&] { BuildIxpMesh(); });
    if (params_.assign_prefixes) {
      Stage("assign_prefixes", [&] { AssignPrefixes(); });
    } else {
      prefixes_.resize(records_.size());
    }
    std::size_t spilled = full_sink_->runs_spilled() + bgp_sink_->runs_spilled();
    World world = Assemble();
    obs::Log(obs::LogLevel::kDebug, "topogen", "generated")
        .Kv("ases", records_.size())
        .Kv("edges", num_edges_full_)
        .Kv("spilled_runs", spilled)
        .Kv("ixps", world.ixps.size())
        .Kv("seed", params_.seed);
    return world;
  }

 private:
  template <typename Fn>
  void Stage(const char* name, Fn&& fn) {
    obs::TraceSpan span(std::string("topogen.") + name);
    fn();
  }

  // ---- record creation -------------------------------------------------

  CityIndex SampleCity(const std::array<double, kContinentCount>& continent_mult) {
    if (city_weights_scratch_.size() != cities_.size()) {
      city_weights_scratch_.resize(cities_.size());
    }
    for (std::size_t i = 0; i < cities_.size(); ++i) {
      city_weights_scratch_[i] = cities_[i].population_millions *
                                 continent_mult[static_cast<std::size_t>(cities_[i].continent)];
    }
    return static_cast<CityIndex>(rng_.PickWeighted(city_weights_scratch_));
  }

  CityIndex SampleEdgeCity() {
    // Edge ASes follow population with a modest bias to the developed-world
    // markets where AS density is highest.
    return SampleCity({1.2, 0.9, 1.4, 0.6, 1.0, 1.1, 0.8});
  }

  AsId AddRecord(AsRecord record) {
    records_.push_back(std::move(record));
    return static_cast<AsId>(records_.size() - 1);
  }

  void CreateRecords() {
    std::uint32_t total = params_.total_ases;
    auto count_of = [&](double fraction) {
      return static_cast<std::uint32_t>(std::round(fraction * total));
    };
    std::uint32_t n_large =
        std::max<std::uint32_t>(10, count_of(params_.large_transit_fraction));
    std::uint32_t n_mid_total =
        std::max<std::uint32_t>(40, count_of(params_.mid_transit_fraction));
    std::uint32_t n_access = count_of(params_.access_fraction);
    std::uint32_t n_content = count_of(params_.content_fraction);

    for (const Tier1Archetype& t1 : params_.tier1s) {
      AsId id = AddRecord({t1.asn, t1.name, Category::kTier1,
                           SampleCity({1.3, 0.7, 1.3, 0.5, 0.9, 0.7, 0.6}), 0.0, t1.policy});
      tier1_ids_.push_back(id);
    }
    for (const Tier2Archetype& t2 : params_.tier2s) {
      AsId id = AddRecord({t2.asn, t2.name, Category::kTier2,
                           SampleCity({1.2, 0.8, 1.2, 0.6, 1.0, 0.8, 0.7}), 0.0, t2.policy});
      tier2_ids_.push_back(id);
    }
    for (const CloudArchetype& cloud : params_.clouds) {
      AsId id = AddRecord({cloud.asn, cloud.name, Category::kCloud,
                           SampleCity({1.6, 0.3, 1.2, 0.2, 1.0, 0.3, 0.5}), 0.0, cloud.policy});
      cloud_ids_.push_back(id);
    }
    for (const OpenTransitArchetype& ot : params_.open_transits) {
      // Durand do Brasil anchors the South-American region (Table 2's
      // Amazon-reliance outlier); everything else lands by population.
      CityIndex home = ot.name == "Durand do Brasil"
                           ? *CityByIata("GRU")
                           : SampleCity({1.1, 0.8, 1.3, 0.6, 1.0, 0.8, 0.7});
      AsId id = AddRecord({ot.asn, ot.name, Category::kOpenTransit, home, 0.0,
                           PeeringPolicy::kOpen});
      open_transit_ids_.push_back(id);
      if (ot.name == "Durand do Brasil") durand_ = id;
    }
    // Synthetic ASNs fill the space above 100000, but a few archetype ASes
    // (G-Core 199524, Spirit 529076, Telefonica 712389) already sit in that
    // range. Skip any ASN a seed record claimed — a duplicate would break
    // the strictly-increasing by-ASN index at assembly.
    std::unordered_set<Asn> taken;
    for (const AsRecord& record : records_) taken.insert(record.asn);
    Asn next_asn = 100000;
    auto fresh_asn = [&] {
      while (taken.count(next_asn) != 0) ++next_asn;
      return next_asn++;
    };
    for (std::uint32_t i = 0; i < n_large; ++i) {
      AsId id = AddRecord({fresh_asn(), StrFormat("LargeTransit-%u", i), Category::kLargeTransit,
                           SampleCity({1.0, 1.0, 1.0, 0.9, 1.0, 1.0, 0.9}), 0.0,
                           PeeringPolicy::kSelective});
      large_ids_.push_back(id);
    }
    std::uint32_t n_mid =
        n_mid_total > open_transit_ids_.size()
            ? n_mid_total - static_cast<std::uint32_t>(open_transit_ids_.size())
            : 0;
    for (std::uint32_t i = 0; i < n_mid; ++i) {
      AsId id = AddRecord({fresh_asn(), StrFormat("MidTransit-%u", i), Category::kMidTransit,
                           SampleEdgeCity(), 0.0,
                           rng_.Bernoulli(0.3) ? PeeringPolicy::kOpen
                                               : PeeringPolicy::kSelective});
      mid_ids_.push_back(id);
    }
    for (std::uint32_t i = 0; i < n_access; ++i) {
      AsId id = AddRecord({fresh_asn(), StrFormat("AccessNet-%u", i), Category::kAccess,
                           SampleEdgeCity(), 0.0,
                           rng_.Bernoulli(0.5) ? PeeringPolicy::kOpen
                                               : PeeringPolicy::kSelective});
      access_ids_.push_back(id);
    }
    for (std::uint32_t i = 0; i < n_content; ++i) {
      AsId id = AddRecord({fresh_asn(), StrFormat("ContentNet-%u", i), Category::kContent,
                           SampleEdgeCity(), 0.0, PeeringPolicy::kOpen});
      content_ids_.push_back(id);
    }
    while (records_.size() < total) {
      AsId id = AddRecord({fresh_asn(), StrFormat("Enterprise-%zu", enterprise_ids_.size()),
                           Category::kEnterprise, SampleEdgeCity(), 0.0,
                           PeeringPolicy::kRestrictive});
      enterprise_ids_.push_back(id);
    }
  }

  // ---- edge helpers ----------------------------------------------------

  // Edges stream out the moment they are decided: each one becomes two
  // HalfEdge records per graph (both directions), pushed into budgeted
  // run sorters, while per-(node, bucket) counters accumulate so the CSR
  // slice array is a prefix sum at assembly — no edge list, no builder.

  void InitEdgeSinks() {
    std::size_t n = records_.size();
    full_counts_.assign(3 * n, 0);
    bgp_counts_.assign(3 * n, 0);
    std::string dir = params_.stream_dir;
    if (dir.empty()) dir = std::filesystem::temp_directory_path().string();
    std::string prefix =
        StrFormat("%s/flatnet-topogen-%ld", dir.c_str(), static_cast<long>(::getpid()));
    // The bgp graph only carries the visible subset; give it the smaller
    // share of the resident budget.
    std::uint64_t budget = params_.stream_budget_bytes;
    full_sink_ = std::make_unique<EdgeRunSorter>(prefix + "-full",
                                                 budget == 0 ? 0 : budget * 2 / 3);
    bgp_sink_ = std::make_unique<EdgeRunSorter>(prefix + "-bgp",
                                                budget == 0 ? 0 : budget - budget * 2 / 3);
  }

  static std::uint64_t PairKey(AsId x, AsId y) {
    if (x > y) std::swap(x, y);
    return (std::uint64_t{x} << 32) | y;
  }

  bool HasEdge(AsId a, AsId b) const { return edge_keys_.Contains(PairKey(a, b)); }

  static void EmitHalf(EdgeRunSorter& sink, std::vector<std::uint32_t>& counts, AsId a,
                       AsId b, EdgeType type) {
    auto push = [&](AsId node, Relationship rel, AsId neighbor) {
      sink.Add({node, static_cast<std::uint32_t>(rel), neighbor});
      ++counts[3 * static_cast<std::size_t>(node) + static_cast<std::size_t>(rel)];
    };
    if (type == EdgeType::kP2P) {
      push(a, Relationship::kPeer, b);
      push(b, Relationship::kPeer, a);
    } else {
      push(a, Relationship::kCustomer, b);
      push(b, Relationship::kProvider, a);
    }
  }

  void EmitEdge(AsId a, AsId b, EdgeType type, bool visible) {
    ++num_edges_full_;
    EmitHalf(*full_sink_, full_counts_, a, b, type);
    if (visible) {
      ++num_edges_bgp_;
      EmitHalf(*bgp_sink_, bgp_counts_, a, b, type);
    }
  }

  bool AddC2P(AsId provider, AsId customer) {
    if (provider == customer) return false;
    if (!edge_keys_.Insert(PairKey(provider, customer))) return false;
    EmitEdge(provider, customer, EdgeType::kP2C, /*visible=*/true);
    return true;
  }

  bool AddP2P(AsId a, AsId b, bool visible) {
    if (a == b) return false;
    if (!edge_keys_.Insert(PairKey(a, b))) return false;
    EmitEdge(a, b, EdgeType::kP2P, visible);
    return true;
  }

  bool PeerLinkVisible(AsId a, AsId b) {
    // BGP feeds see a p2p link when a monitor sits inside either endpoint's
    // customer cone (§4.1: "good coverage of Tier-1 and Tier-2 ISPs").
    // Tier-1/Tier-2 cones are huge, so any link touching them is almost
    // always visible; links touching ordinary transits often are; pure
    // edge-edge peering is the ~90% blind spot.
    Category ca = records_[a].category;
    Category cb = records_[b].category;
    auto is_hierarchy = [](Category c) {
      return c == Category::kTier1 || c == Category::kTier2;
    };
    auto is_transit = [](Category c) {
      return c == Category::kLargeTransit || c == Category::kMidTransit ||
             c == Category::kOpenTransit;
    };
    if (is_hierarchy(ca) || is_hierarchy(cb)) {
      return rng_.Bernoulli(params_.transit_peer_visibility);
    }
    if (is_transit(ca) || is_transit(cb)) {
      return rng_.Bernoulli(params_.mid_peer_visibility);
    }
    return rng_.Bernoulli(params_.edge_peer_visibility);
  }

  AsId Tier1ByName(std::string_view name) const {
    for (AsId id : tier1_ids_) {
      if (records_[id].name == name) return id;
    }
    throw InvalidArgument("Generator: unknown Tier-1 archetype " + std::string(name));
  }

  // ---- hierarchy construction -------------------------------------------

  void BuildClique() {
    for (std::size_t i = 0; i < tier1_ids_.size(); ++i) {
      for (std::size_t j = i + 1; j < tier1_ids_.size(); ++j) {
        AddP2P(tier1_ids_[i], tier1_ids_[j], /*visible=*/true);
      }
    }
  }

  WeightedPool Tier1Pool() const {
    WeightedPool pool;
    for (std::size_t i = 0; i < tier1_ids_.size(); ++i) {
      pool.Add(tier1_ids_[i], params_.tier1s[i].customer_share);
    }
    return pool;
  }

  void BuildTier2Links() {
    WeightedPool t1_pool = Tier1Pool();
    for (std::size_t i = 0; i < tier2_ids_.size(); ++i) {
      const Tier2Archetype& arch = params_.tier2s[i];
      AsId id = tier2_ids_[i];
      for (std::uint32_t k = 0; k < arch.tier1_provider_count; ++k) {
        AddC2P(t1_pool.Sample(rng_), id);
      }
      for (std::size_t j = 0; j < tier1_ids_.size(); ++j) {
        if (!HasEdge(id, tier1_ids_[j]) && rng_.Bernoulli(arch.tier1_peer_fraction)) {
          AddP2P(id, tier1_ids_[j], /*visible=*/true);
        }
      }
    }
    // Tier-2 <-> Tier-2 peering mesh.
    for (std::size_t i = 0; i < tier2_ids_.size(); ++i) {
      for (std::size_t j = i + 1; j < tier2_ids_.size(); ++j) {
        if (rng_.Bernoulli(0.5)) AddP2P(tier2_ids_[i], tier2_ids_[j], /*visible=*/true);
      }
    }
  }

  void BuildTransitLinks() {
    WeightedPool t1_pool = Tier1Pool();
    WeightedPool t2_pool;
    for (std::size_t i = 0; i < tier2_ids_.size(); ++i) {
      t2_pool.Add(tier2_ids_[i], params_.tier2s[i].customer_share);
    }

    // Open and large transits buy from the hierarchy.
    for (AsId id : open_transit_ids_) {
      std::uint32_t providers = 2 + static_cast<std::uint32_t>(rng_.Bernoulli(0.5));
      for (std::uint32_t k = 0; k < providers; ++k) {
        AddC2P(rng_.Bernoulli(0.6) ? t1_pool.Sample(rng_) : t2_pool.Sample(rng_), id);
      }
    }
    for (AsId id : large_ids_) {
      // National backbones multi-home to several Tier-1s — this is what
      // gives the clique its huge customer cones.
      std::uint32_t providers = 2 + static_cast<std::uint32_t>(rng_.UniformU64(2));
      for (std::uint32_t k = 0; k < providers; ++k) {
        AddC2P(rng_.Bernoulli(0.85) ? t1_pool.Sample(rng_) : t2_pool.Sample(rng_), id);
      }
      // Lognormal-ish attractiveness for downstream customer choice.
      large_weight_[id] = std::exp(rng_.Normal(0.0, 0.8));
    }

    // Mid transits buy from large transits (same-continent bias), Tier-2s,
    // and occasionally straight from a Tier-1.
    for (AsId id : mid_ids_) {
      std::uint32_t providers = 2 + static_cast<std::uint32_t>(rng_.Bernoulli(0.4));
      for (std::uint32_t k = 0; k < providers; ++k) {
        double r = rng_.UniformDouble();
        if (r < 0.45 && !large_ids_.empty()) {
          AddC2P(SampleLargeTransit(records_[id].home), id);
        } else if (r < 0.70) {
          AddC2P(t2_pool.Sample(rng_), id);
        } else {
          AddC2P(t1_pool.Sample(rng_), id);
        }
      }
      mid_weight_[id] = std::exp(rng_.Normal(0.0, 0.7));
    }
    for (AsId id : open_transit_ids_) mid_weight_[id] = 3.0;  // open transits attract customers
    if (durand_ != kInvalidAsId) mid_weight_[durand_] = 6.0;

    // Transit-to-transit peering: route servers at the exchanges give every
    // mid transit a respectable set of transit peers — this is what puts
    // thousands of mid networks above the hierarchy-dependent Tier-1s in
    // the Fig 3 scatter.
    for (std::size_t i = 0; i < mid_ids_.size(); ++i) {
      std::size_t peers = 8 + rng_.UniformU64(10);
      for (std::size_t k = 0; k < peers; ++k) {
        AsId other = mid_ids_[rng_.UniformU64(mid_ids_.size())];
        if (other != mid_ids_[i]) {
          AddP2P(mid_ids_[i], other, rng_.Bernoulli(params_.mid_peer_visibility));
        }
      }
      // A few sessions with the big regional backbones, whose cones are
      // what make a mid transit's hierarchy-free reach substantial.
      for (AsId large : large_ids_) {
        if (rng_.Bernoulli(0.08)) {
          AddP2P(mid_ids_[i], large, rng_.Bernoulli(params_.mid_peer_visibility));
        }
      }
    }
    for (std::size_t i = 0; i < open_transit_ids_.size(); ++i) {
      for (std::size_t j = i + 1; j < open_transit_ids_.size(); ++j) {
        if (rng_.Bernoulli(0.5)) {
          AddP2P(open_transit_ids_[i], open_transit_ids_[j],
                 rng_.Bernoulli(params_.mid_peer_visibility));
        }
      }
    }
    // Open-peering transits meet most of the transit ecosystem at IXP route
    // servers; this broad mesh is what lifts them into Table 1's top 20.
    for (AsId open_id : open_transit_ids_) {
      for (AsId mid : mid_ids_) {
        if (rng_.Bernoulli(0.4)) {
          AddP2P(open_id, mid, rng_.Bernoulli(params_.mid_peer_visibility));
        }
      }
      for (AsId large : large_ids_) {
        if (rng_.Bernoulli(0.5)) {
          AddP2P(open_id, large, rng_.Bernoulli(params_.mid_peer_visibility));
        }
      }
    }

    // Customer-rich Tier-1s and open Tier-2s interconnect with most of the
    // significant transit networks (settlement-free interconnection below
    // the clique). This diversification is exactly what separates Level 3
    // and Hurricane Electric from hierarchy-dependent Sprint / Deutsche
    // Telekom in the paper's Fig 2 / Appendix B.
    auto peer_with_transits = [&](AsId network, double mid_prob, double large_prob) {
      for (AsId mid : mid_ids_) {
        if (rng_.Bernoulli(mid_prob)) AddP2P(network, mid, PeerLinkVisible(network, mid));
      }
      for (AsId large : large_ids_) {
        if (rng_.Bernoulli(large_prob)) AddP2P(network, large, PeerLinkVisible(network, large));
      }
    };
    for (std::size_t i = 0; i < tier1_ids_.size(); ++i) {
      double share = params_.tier1s[i].customer_share;
      peer_with_transits(tier1_ids_[i], std::min(0.97, share / 10.0),
                         std::min(0.97, share / 8.0));
    }
    for (std::size_t i = 0; i < tier2_ids_.size(); ++i) {
      const Tier2Archetype& arch = params_.tier2s[i];
      if (arch.policy == PeeringPolicy::kOpen) {
        peer_with_transits(tier2_ids_[i], 0.7, 0.75);
      } else {
        peer_with_transits(tier2_ids_[i], arch.customer_share / 15.0,
                           arch.customer_share / 12.0);
      }
    }
  }

  // Per-continent cumulative-weight caches. The transit weight maps are
  // complete before the first call that reads them (large_weight_ fills in
  // BuildTransitLinks' large loop, ahead of the mid loop's first
  // SampleLargeTransit; mid_weight_ finishes in the same stage, ahead of
  // the edge/cloud stages that call SampleMidTransit), so each continent's
  // cache can build lazily once. Item order and float accumulation order
  // match the old per-call loops exactly — the sampled ids are
  // bit-identical, and ~1.5M samples at the million-AS scale drop from
  // O(|transits|) each to one binary search.
  struct TransitSampler {
    std::vector<AsId> items;
    std::vector<double> cumulative;
    double total = 0.0;
    bool built = false;
  };

  AsId SampleFrom(const TransitSampler& sampler) {
    double r = rng_.UniformDouble() * sampler.total;
    auto it = std::lower_bound(sampler.cumulative.begin(), sampler.cumulative.end(), r);
    std::size_t idx = static_cast<std::size_t>(it - sampler.cumulative.begin());
    if (idx >= sampler.items.size()) idx = sampler.items.size() - 1;
    return sampler.items[idx];
  }

  AsId SampleLargeTransit(CityIndex customer_home) {
    // Same-continent large transits are 3x more attractive; Durand do
    // Brasil dominates South America (10x) so the region's reachability
    // funnels through it.
    Continent home_continent = cities_[customer_home].continent;
    TransitSampler& sampler = large_samplers_[static_cast<std::size_t>(home_continent)];
    if (!sampler.built) {
      auto add = [&](AsId id, double base) {
        double w = base;
        if (cities_[records_[id].home].continent == home_continent) w *= 3.0;
        sampler.items.push_back(id);
        sampler.total += w;
        sampler.cumulative.push_back(sampler.total);
      };
      for (AsId id : large_ids_) add(id, large_weight_[id]);
      if (durand_ != kInvalidAsId && home_continent == Continent::kSouthAmerica) {
        add(durand_, 30.0);
      }
      sampler.built = true;
    }
    return SampleFrom(sampler);
  }

  AsId SampleMidTransit(CityIndex customer_home) {
    Continent home_continent = cities_[customer_home].continent;
    TransitSampler& sampler = mid_samplers_[static_cast<std::size_t>(home_continent)];
    if (!sampler.built) {
      auto add = [&](AsId id) {
        double w = mid_weight_[id];
        if (cities_[records_[id].home].continent == home_continent) {
          w *= 3.0;
          if (id == durand_ && home_continent == Continent::kSouthAmerica) w *= 25.0;
        }
        sampler.items.push_back(id);
        sampler.total += w;
        sampler.cumulative.push_back(sampler.total);
      };
      for (AsId id : mid_ids_) add(id);
      for (AsId id : open_transit_ids_) add(id);
      sampler.built = true;
    }
    return SampleFrom(sampler);
  }

  // ---- edge networks -----------------------------------------------------

  std::uint32_t SampleProviderCount() {
    double r = rng_.UniformDouble();
    if (r < params_.single_homed_fraction) return 1;
    if (r < params_.single_homed_fraction + params_.dual_homed_fraction) return 2;
    return 3;
  }

  void BuildEdgeCustomerLinks() {
    WeightedPool t1_pool = Tier1Pool();
    WeightedPool t2_pool;
    for (std::size_t i = 0; i < tier2_ids_.size(); ++i) {
      t2_pool.Add(tier2_ids_[i], params_.tier2s[i].customer_share);
    }
    WeightedPool hierarchy_pool;
    for (std::size_t i = 0; i < tier1_ids_.size(); ++i) {
      hierarchy_pool.Add(tier1_ids_[i], params_.tier1s[i].customer_share);
    }
    for (std::size_t i = 0; i < tier2_ids_.size(); ++i) {
      hierarchy_pool.Add(tier2_ids_[i], params_.tier2s[i].customer_share);
    }

    auto attach = [&](AsId id, bool enterprise) {
      std::uint32_t providers = SampleProviderCount();
      if (enterprise && providers > 2) providers = 2;
      for (std::uint32_t k = 0; k < providers; ++k) {
        double r = rng_.UniformDouble();
        if (r < params_.hierarchy_direct_fraction) {
          AddC2P(hierarchy_pool.Sample(rng_), id);
        } else if (enterprise && r < params_.hierarchy_direct_fraction + 0.35 &&
                   !access_ids_.empty()) {
          // Enterprises often buy from a regional access ISP.
          AddC2P(access_ids_[rng_.UniformU64(access_ids_.size())], id);
        } else if (rng_.Bernoulli(0.75)) {
          AddC2P(SampleMidTransit(records_[id].home), id);
        } else {
          AddC2P(SampleLargeTransit(records_[id].home), id);
        }
      }
    };

    for (AsId id : access_ids_) attach(id, /*enterprise=*/false);
    for (AsId id : content_ids_) attach(id, /*enterprise=*/false);
    for (AsId id : enterprise_ids_) attach(id, /*enterprise=*/true);
  }

  // ---- clouds --------------------------------------------------------------

  void BuildCloudLinks() {
    WeightedPool t2_pool;
    for (std::size_t i = 0; i < tier2_ids_.size(); ++i) {
      t2_pool.Add(tier2_ids_[i], params_.tier2s[i].customer_share);
    }

    for (std::size_t c = 0; c < params_.clouds.size(); ++c) {
      const CloudArchetype& arch = params_.clouds[c];
      AsId cloud = cloud_ids_[c];

      // Transit providers. Google's are pinned to the paper's trio (Tata,
      // GTT, Durand do Brasil §6.2); others sample by market share.
      if (arch.name == "Google") {
        AddC2P(Tier1ByName("Tata"), cloud);
        AddC2P(Tier1ByName("GTT"), cloud);
        if (durand_ != kInvalidAsId) AddC2P(durand_, cloud);
      } else {
        WeightedPool t1_pool = Tier1Pool();
        for (std::uint32_t k = 0; k < arch.tier1_providers; ++k) {
          AddC2P(t1_pool.Sample(rng_), cloud);
        }
        for (std::uint32_t k = 0; k < arch.other_providers; ++k) {
          AsId provider = kInvalidAsId;
          do {
            double r = rng_.UniformDouble();
            if (r < 0.4) {
              provider = t2_pool.Sample(rng_);
            } else if (r < 0.8 && !large_ids_.empty()) {
              provider = large_ids_[rng_.UniformU64(large_ids_.size())];
            } else {
              provider = SampleMidTransit(records_[cloud].home);
            }
            // Durand do Brasil is reserved as Amazon's *peer* (Table 2's
            // reliance outlier) and Google's provider.
          } while (arch.name == "Amazon" && provider == durand_);
          AddC2P(provider, cloud);
        }
      }

      // Peers. Assemble the ground-truth peer list, then mark the §4.1
      // BGP-visible subset.
      std::vector<AsId> peers;
      std::unordered_set<AsId> chosen;
      auto try_peer = [&](AsId other) {
        if (other == cloud || HasEdge(cloud, other) || chosen.contains(other)) return false;
        chosen.insert(other);
        peers.push_back(other);
        return true;
      };

      // Tier-1 peers (Google peers with most of the clique).
      std::vector<std::uint32_t> t1_order = rng_.SampleWithoutReplacement(
          static_cast<std::uint32_t>(tier1_ids_.size()),
          std::min<std::uint32_t>(arch.tier1_peers,
                                  static_cast<std::uint32_t>(tier1_ids_.size())));
      for (std::uint32_t idx : t1_order) try_peer(tier1_ids_[idx]);

      bool open = arch.policy == PeeringPolicy::kOpen;
      double t2_prob = open ? 0.8 : 0.35;
      double big_prob = open ? 0.95 : 0.8;
      for (AsId id : tier2_ids_) {
        if (rng_.Bernoulli(t2_prob)) try_peer(id);
      }
      for (AsId id : open_transit_ids_) try_peer(id);
      for (AsId id : large_ids_) {
        if (rng_.Bernoulli(big_prob)) try_peer(id);
      }

      std::uint32_t target = params_.Scaled(arch.peer_count);
      // Fill the remainder from mid transits, then the edge (access-heavy,
      // weighted later by users via IXP presence; uniform here).
      std::vector<AsId> fill;
      fill.insert(fill.end(), mid_ids_.begin(), mid_ids_.end());
      rng_.Shuffle(fill);
      double mid_fraction = open ? 0.95 : 0.85;
      std::size_t mid_take = static_cast<std::size_t>(fill.size() * mid_fraction);
      for (std::size_t i = 0; i < mid_take && peers.size() < target; ++i) try_peer(fill[i]);

      // Edge peering targets the networks that source traffic: eyeballs in
      // proportion to their users (the paper's performance motivation),
      // content networks, and the occasional enterprise.
      WeightedPool edge_pool;
      for (AsId id : access_ids_) edge_pool.Add(id, 1.0 + records_[id].users / 2.0e5);
      for (AsId id : content_ids_) edge_pool.Add(id, 2.0);
      for (AsId id : enterprise_ids_) edge_pool.Add(id, 0.12);
      std::uint32_t guard = 0;
      while (peers.size() < target && guard++ < target * 40) {
        try_peer(edge_pool.Sample(rng_));
      }

      // Visibility: links to the hierarchy are always in BGP; the §4.1
      // visible-peer count fixes the rate for the rest.
      std::uint32_t visible_target = params_.Scaled(arch.bgp_visible_peers);
      std::size_t big_links = 0;
      for (AsId peer : peers) {
        Category cat = records_[peer].category;
        if (cat == Category::kTier1 || cat == Category::kTier2) ++big_links;
      }
      double rest = static_cast<double>(peers.size() - big_links);
      double rate = rest > 0 ? std::clamp((static_cast<double>(visible_target) -
                                           static_cast<double>(big_links)) / rest,
                                          0.0, 1.0)
                             : 0.0;
      for (AsId peer : peers) {
        Category cat = records_[peer].category;
        bool visible = (cat == Category::kTier1 || cat == Category::kTier2)
                           ? true
                           : rng_.Bernoulli(rate);
        AddP2P(cloud, peer, visible);
      }

      // Amazon peers with Durand do Brasil rather than buying from it —
      // the Table 2 reliance outlier.
      if (arch.name == "Amazon" && durand_ != kInvalidAsId && !HasEdge(cloud, durand_)) {
        AddP2P(cloud, durand_, /*visible=*/true);
      }
    }
  }

  // ---- hierarchy edge peering ------------------------------------------

  void SampleEdgePeers(AsId network, std::uint32_t target, bool open_policy) {
    std::uint32_t added = 0;
    std::uint32_t attempts = 0;
    std::uint32_t max_attempts = target * 4 + 16;
    while (added < target && attempts++ < max_attempts) {
      double r = rng_.UniformDouble();
      AsId other;
      if (r < 0.40 && !access_ids_.empty()) {
        other = access_ids_[rng_.UniformU64(access_ids_.size())];
      } else if (r < 0.55 && !content_ids_.empty()) {
        other = content_ids_[rng_.UniformU64(content_ids_.size())];
      } else if (r < 0.90 && !mid_ids_.empty()) {
        other = mid_ids_[rng_.UniformU64(mid_ids_.size())];
      } else if (!enterprise_ids_.empty()) {
        other = enterprise_ids_[rng_.UniformU64(enterprise_ids_.size())];
      } else {
        continue;
      }
      if (!open_policy && records_[other].policy == PeeringPolicy::kRestrictive) continue;
      if (AddP2P(network, other, PeerLinkVisible(network, other))) ++added;
    }
  }

  void BuildHierarchyEdgePeering() {
    for (std::size_t i = 0; i < tier1_ids_.size(); ++i) {
      SampleEdgePeers(tier1_ids_[i], params_.Scaled(params_.tier1s[i].edge_peers),
                      params_.tier1s[i].policy == PeeringPolicy::kOpen);
    }
    for (std::size_t i = 0; i < tier2_ids_.size(); ++i) {
      SampleEdgePeers(tier2_ids_[i], params_.Scaled(params_.tier2s[i].edge_peers),
                      params_.tier2s[i].policy == PeeringPolicy::kOpen);
    }
    for (std::size_t i = 0; i < open_transit_ids_.size(); ++i) {
      SampleEdgePeers(open_transit_ids_[i], params_.Scaled(params_.open_transits[i].edge_peers),
                      /*open_policy=*/true);
    }
  }

  // ---- IXP mesh ----------------------------------------------------------

  double IxpJoinProbability(Category cat) const {
    switch (cat) {
      case Category::kMidTransit: return 0.35;
      case Category::kOpenTransit: return 0.6;
      case Category::kLargeTransit: return 0.3;
      case Category::kTier2: return 0.3;
      case Category::kContent: return 0.40;
      case Category::kAccess: return 0.25;
      case Category::kEnterprise: return 0.03;
      default: return 0.0;  // tier1/clouds handled via explicit peer lists
    }
  }

  void BuildIxpMesh() {
    std::uint32_t ixp_count = params_.ixp_count != 0
                                  ? params_.ixp_count
                                  : std::max<std::uint32_t>(8, params_.total_ases / 140);
    // Eligible members grouped by continent for locality.
    std::vector<std::vector<AsId>> by_continent(kContinentCount);
    for (AsId id = 0; id < records_.size(); ++id) {
      if (IxpJoinProbability(records_[id].category) > 0.0) {
        by_continent[static_cast<std::size_t>(cities_[records_[id].home].continent)]
            .push_back(id);
      }
    }

    for (std::uint32_t x = 0; x < ixp_count; ++x) {
      IxpInstance ixp;
      ixp.name = StrFormat("IX-%u", x);
      // Private 32-bit range: synthetic AS ASNs sweep past 900000 at paper
      // scale, so IXP management ASNs must live where they cannot collide.
      ixp.ixp_asn = 4200000000u + x;
      ixp.city = SampleCity({1.4, 0.7, 1.6, 0.5, 1.1, 0.6, 0.8});
      ixp.lan_in_bgp = rng_.Bernoulli(0.25);
      auto continent = static_cast<std::size_t>(cities_[ixp.city].continent);
      const auto& eligible = by_continent[continent];
      if (eligible.size() < 4) continue;
      // Membership: a slice of the continent's eligible ASes.
      double slice = rng_.UniformDouble(0.05, 0.22);
      auto member_target = static_cast<std::uint32_t>(eligible.size() * slice);
      member_target = std::max<std::uint32_t>(member_target, 4);
      // Physical exchanges do not grow with the AS count; without a cap the
      // mesh goes super-linear at paper scale (the largest real IXPs have a
      // few hundred members with open sessions).
      member_target = std::min<std::uint32_t>(member_target, 350);
      std::vector<std::uint32_t> picks = rng_.SampleWithoutReplacement(
          static_cast<std::uint32_t>(eligible.size()),
          std::min<std::uint32_t>(member_target, static_cast<std::uint32_t>(eligible.size())));
      for (std::uint32_t p : picks) {
        AsId id = eligible[p];
        if (rng_.Bernoulli(IxpJoinProbability(records_[id].category) * 2.0)) {
          ixp.members.push_back(id);
        }
      }
      if (ixp.members.size() < 3) continue;

      // Peering over the fabric: each member picks co-members; openness of
      // both sides gates the session.
      std::size_t m = ixp.members.size();
      for (AsId member : ixp.members) {
        double base = records_[member].policy == PeeringPolicy::kOpen ? 0.30 : 0.10;
        auto k = static_cast<std::size_t>(
            std::min<double>(25.0, base * static_cast<double>(m) *
                                        params_.ixp_member_peer_fraction * 2.0));
        for (std::size_t t = 0; t < k; ++t) {
          AsId other = ixp.members[rng_.UniformU64(m)];
          if (other == member) continue;
          if (records_[other].policy == PeeringPolicy::kRestrictive) continue;
          AddP2P(member, other, PeerLinkVisible(member, other));
        }
      }
      ixps_.push_back(std::move(ixp));
    }
  }

  // ---- attributes ---------------------------------------------------------

  void AssignUsers() {
    // Heavy-tailed eyeball populations over access ASes (APNIC-style). The
    // ad-based estimator only observes ~70% of eyeball networks; the rest
    // keep users == 0 and are reported as "transit" by the §4.3 rule.
    double total_users = 4.0e9 * static_cast<double>(params_.total_ases) /
                         static_cast<double>(params_.paper_total);
    std::vector<AsId> shuffled = access_ids_;
    rng_.Shuffle(shuffled);
    auto observed = static_cast<std::size_t>(shuffled.size() * 0.70);
    std::vector<double> weights(observed);
    double sum = 0.0;
    for (std::size_t i = 0; i < observed; ++i) {
      weights[i] = 1.0 / std::pow(static_cast<double>(i + 1), 0.85);
      sum += weights[i];
    }
    for (std::size_t i = 0; i < observed; ++i) {
      records_[shuffled[i]].users = total_users * weights[i] / sum;
    }
    // Some transit networks also serve end users (classified "access" by
    // the §4.3 rule, but structurally still transit).
    for (AsId id : mid_ids_) {
      if (rng_.Bernoulli(0.2)) records_[id].users = rng_.UniformDouble(1e3, 2e5);
    }
    for (AsId id : tier2_ids_) {
      if (rng_.Bernoulli(0.4)) records_[id].users = rng_.UniformDouble(1e4, 5e6);
    }
  }

  void AssignPrefixes() {
    std::vector<Ipv4Prefix> pools;
    for (std::uint8_t octet : {1, 2, 3, 4, 5, 6, 7, 8, 9, 11, 12, 13, 14, 15, 16, 17, 18,
                               23, 24, 27, 28, 30, 31, 36, 37, 39, 41, 42, 45, 46, 49}) {
      pools.emplace_back(Ipv4Address(octet, 0, 0, 0), 8);
    }
    MultiPoolAllocator alloc(std::move(pools));
    prefixes_.resize(records_.size());
    for (AsId id = 0; id < records_.size(); ++id) {
      switch (records_[id].category) {
        case Category::kTier1:
        case Category::kTier2:
          prefixes_[id].push_back(alloc.Allocate(14));
          prefixes_[id].push_back(alloc.Allocate(16));
          break;
        case Category::kCloud:
          prefixes_[id].push_back(alloc.Allocate(13));
          prefixes_[id].push_back(alloc.Allocate(15));
          prefixes_[id].push_back(alloc.Allocate(16));
          break;
        case Category::kOpenTransit:
        case Category::kLargeTransit:
          prefixes_[id].push_back(alloc.Allocate(16));
          break;
        case Category::kMidTransit:
          prefixes_[id].push_back(alloc.Allocate(18));
          break;
        case Category::kAccess:
          prefixes_[id].push_back(alloc.Allocate(19));
          break;
        case Category::kContent:
          prefixes_[id].push_back(alloc.Allocate(21));
          break;
        case Category::kEnterprise:
          prefixes_[id].push_back(alloc.Allocate(22));
          break;
      }
    }
    // IXP transfer LANs from the classic "not announced" pool.
    PrefixAllocator ixp_alloc(Ipv4Prefix(Ipv4Address(193, 238, 0, 0), 15));
    for (IxpInstance& ixp : ixps_) {
      if (auto lan = ixp_alloc.Allocate(22)) {
        ixp.lan = *lan;
      } else {
        ixp.lan = alloc.Allocate(22);
      }
    }
  }

  std::vector<CityIndex> SamplePresence(CityIndex home, std::uint32_t count,
                                        const std::array<double, kContinentCount>& mult,
                                        bool include_china) {
    std::vector<CityIndex> cities{home};
    std::unordered_set<CityIndex> seen{home};
    if (include_china) {
      for (std::string_view iata : {"PVG", "PEK"}) {
        if (auto c = CityByIata(iata); c && seen.insert(*c).second) cities.push_back(*c);
      }
    }
    std::uint32_t guard = 0;
    while (cities.size() < count && guard++ < count * 20) {
      CityIndex c = SampleCity(mult);
      if (include_china == false) {
        // The paper finds transit providers absent from Shanghai/Beijing.
        if (cities_[c].iata == "PVG" || cities_[c].iata == "PEK") continue;
      }
      if (seen.insert(c).second) cities.push_back(c);
    }
    return cities;
  }

  // Turns a drained sink into an AsGraph: slice = prefix sum of the
  // per-(node, bucket) counters, entry_ids = the merged record sequence,
  // which arrives already grouped and sorted in exactly CSR order — a
  // single append cursor fills the column. FromColumns re-validates the
  // whole shape, so any merge defect fails loudly instead of producing a
  // subtly misordered graph.
  AsGraph BuildGraph(EdgeRunSorter& sink, const std::vector<std::uint32_t>& counts,
                     const std::vector<Asn>& asn_of, const std::vector<AsId>& by_asn,
                     const char* what) {
    std::size_t n = asn_of.size();
    AsGraph::Columns columns;
    columns.asn_of = asn_of;
    columns.by_asn = by_asn;
    columns.slice.resize(3 * n + 1);
    std::uint64_t running = 0;
    for (std::size_t g = 0; g < 3 * n; ++g) {
      columns.slice[g] = static_cast<std::uint32_t>(running);
      running += counts[g];
    }
    columns.slice[3 * n] = CheckedNarrow32(running, what);
    columns.entry_ids.resize(sink.size());
    std::size_t at = 0;
    sink.Drain([&](const HalfEdge& record) { columns.entry_ids[at++] = record.neighbor; });
    if (at != columns.entry_ids.size()) {
      throw Error(StrFormat("%s: merged %zu of %zu half-edges", what, at,
                            columns.entry_ids.size()));
    }
    return AsGraph::FromColumns(std::move(columns), what);
  }

  World Assemble() {
    World world;
    world.params = params_;

    // All edges are decided: the dedup set (the largest transient at paper
    // scale, ~13 bytes/edge) can go before the CSR columns materialize.
    edge_keys_ = PairKeySet();

    // Both graphs share the id space by construction: the same asn_of
    // column (record order) and the same ASN-sorted IdOf index.
    std::vector<Asn> asn_of(records_.size());
    for (AsId id = 0; id < records_.size(); ++id) asn_of[id] = records_[id].asn;
    std::vector<AsId> by_asn(records_.size());
    for (AsId id = 0; id < records_.size(); ++id) by_asn[id] = id;
    std::sort(by_asn.begin(), by_asn.end(),
              [&](AsId x, AsId y) { return asn_of[x] < asn_of[y]; });

    world.full_graph =
        BuildGraph(*full_sink_, full_counts_, asn_of, by_asn, "GenerateWorld full graph");
    full_sink_.reset();
    full_counts_ = {};
    world.bgp_graph =
        BuildGraph(*bgp_sink_, bgp_counts_, asn_of, by_asn, "GenerateWorld bgp graph");
    bgp_sink_.reset();
    bgp_counts_ = {};

    world.metadata = AsMetadata(records_.size());
    for (AsId id = 0; id < records_.size(); ++id) {
      AsInfo& info = world.metadata.GetMutable(id);
      info.name = records_[id].name;
      info.users = records_[id].users;
      switch (records_[id].category) {
        case Category::kCloud:
          info.type = records_[id].name == "Facebook" ? AsType::kContent : AsType::kCloud;
          break;
        case Category::kContent:
          info.type = AsType::kContent;
          break;
        case Category::kAccess:
          // §4.3: a transit/access AS counts as "access" only when APNIC
          // sees users in it.
          info.type = records_[id].users > 0 ? AsType::kAccess : AsType::kTransit;
          break;
        case Category::kEnterprise:
          info.type = AsType::kEnterprise;
          break;
        default:
          info.type = ReclassifyWithUsers(AsType::kTransit, records_[id].users);
          break;
      }
    }

    std::vector<Asn> t1_asns;
    std::vector<Asn> t2_asns;
    for (AsId id : tier1_ids_) t1_asns.push_back(records_[id].asn);
    for (AsId id : tier2_ids_) t2_asns.push_back(records_[id].asn);
    world.tiers = MakeTierSets(world.full_graph, t1_asns, t2_asns);

    for (std::size_t c = 0; c < params_.clouds.size(); ++c) {
      world.clouds.push_back({params_.clouds[c], cloud_ids_[c]});
    }
    world.ixps = std::move(ixps_);

    world.home_city.resize(records_.size());
    world.presence.resize(records_.size());
    for (AsId id = 0; id < records_.size(); ++id) {
      world.home_city[id] = records_[id].home;
      world.presence[id] = {records_[id].home};
    }
    for (std::size_t i = 0; i < tier1_ids_.size(); ++i) {
      world.presence[tier1_ids_[i]] =
          SamplePresence(records_[tier1_ids_[i]].home, params_.tier1s[i].pop_count,
                         {1.2, 0.9, 1.2, 0.7, 0.9, 0.8, 0.8}, /*include_china=*/false);
    }
    for (std::size_t i = 0; i < tier2_ids_.size(); ++i) {
      world.presence[tier2_ids_[i]] =
          SamplePresence(records_[tier2_ids_[i]].home, params_.tier2s[i].pop_count,
                         {1.2, 0.8, 1.2, 0.7, 1.0, 0.8, 0.8}, /*include_china=*/false);
    }
    for (std::size_t c = 0; c < cloud_ids_.size(); ++c) {
      world.presence[cloud_ids_[c]] =
          SamplePresence(records_[cloud_ids_[c]].home, params_.clouds[c].pop_count,
                         {1.6, 0.4, 1.6, 0.25, 1.2, 0.4, 0.8}, /*include_china=*/true);
    }

    world.prefixes = std::move(prefixes_);
    return world;
  }

  const GeneratorParams& params_;
  Rng rng_;
  std::span<const City> cities_;

  std::vector<AsRecord> records_;
  PairKeySet edge_keys_;
  std::unique_ptr<EdgeRunSorter> full_sink_;
  std::unique_ptr<EdgeRunSorter> bgp_sink_;
  std::vector<std::uint32_t> full_counts_;
  std::vector<std::uint32_t> bgp_counts_;
  std::size_t num_edges_full_ = 0;
  std::size_t num_edges_bgp_ = 0;
  std::unordered_map<AsId, double> large_weight_;
  std::unordered_map<AsId, double> mid_weight_;
  std::array<TransitSampler, kContinentCount> large_samplers_;
  std::array<TransitSampler, kContinentCount> mid_samplers_;

  std::vector<AsId> tier1_ids_;
  std::vector<AsId> tier2_ids_;
  std::vector<AsId> cloud_ids_;
  std::vector<AsId> open_transit_ids_;
  std::vector<AsId> large_ids_;
  std::vector<AsId> mid_ids_;
  std::vector<AsId> access_ids_;
  std::vector<AsId> content_ids_;
  std::vector<AsId> enterprise_ids_;
  AsId durand_ = kInvalidAsId;

  std::vector<IxpInstance> ixps_;
  std::vector<std::vector<Ipv4Prefix>> prefixes_;

  // Scratch buffers.
  std::vector<double> city_weights_scratch_;
};

}  // namespace

World GenerateWorld(const GeneratorParams& params) {
  if (params.total_ases < 200) {
    throw InvalidArgument("GenerateWorld: total_ases must be at least 200");
  }
  Generator generator(params);
  return generator.Run();
}

}  // namespace flatnet
