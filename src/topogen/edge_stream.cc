#include "topogen/edge_stream.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <queue>

#include "util/error.h"
#include "util/strings.h"

namespace flatnet {
namespace {

// Per-run read buffer during the merge. Small enough that merging dozens
// of runs stays well under any sane budget, big enough that the merge
// reads sequentially in ~0.5 MB chunks.
constexpr std::size_t kReadChunkRecords = 48 * 1024;

class RunReader {
 public:
  explicit RunReader(const std::string& path) : in_(path, std::ios::binary), path_(path) {
    if (!in_) throw Error("EdgeRunSorter: cannot reopen run " + path);
    Refill();
  }

  bool exhausted() const { return pos_ >= chunk_.size() && eof_; }
  const HalfEdge& head() const { return chunk_[pos_]; }

  void Pop() {
    ++pos_;
    if (pos_ >= chunk_.size() && !eof_) Refill();
  }

 private:
  void Refill() {
    chunk_.resize(kReadChunkRecords);
    in_.read(reinterpret_cast<char*>(chunk_.data()),
             static_cast<std::streamsize>(chunk_.size() * sizeof(HalfEdge)));
    std::size_t got = static_cast<std::size_t>(in_.gcount());
    if (got % sizeof(HalfEdge) != 0) {
      throw Error("EdgeRunSorter: torn record in run " + path_);
    }
    chunk_.resize(got / sizeof(HalfEdge));
    pos_ = 0;
    if (chunk_.empty() || in_.eof()) eof_ = in_.eof() || chunk_.empty();
    if (!in_.good() && !in_.eof()) throw Error("EdgeRunSorter: read failure on " + path_);
  }

  std::ifstream in_;
  std::string path_;
  std::vector<HalfEdge> chunk_;
  std::size_t pos_ = 0;
  bool eof_ = false;
};

}  // namespace

EdgeRunSorter::EdgeRunSorter(std::string run_prefix, std::uint64_t budget_bytes)
    : run_prefix_(std::move(run_prefix)) {
  if (budget_bytes == 0) {
    cap_records_ = static_cast<std::size_t>(-1);
  } else {
    // At least a few thousand records per run, or tiny budgets would
    // produce a pathological number of files.
    cap_records_ = std::max<std::size_t>(4096, budget_bytes / sizeof(HalfEdge));
  }
}

EdgeRunSorter::~EdgeRunSorter() {
  std::error_code ec;
  for (const std::string& path : run_files_) std::filesystem::remove(path, ec);
}

void EdgeRunSorter::Add(const HalfEdge& record) {
  buffer_.push_back(record);
  ++total_;
  if (buffer_.size() >= cap_records_) Spill();
}

void EdgeRunSorter::Spill() {
  std::sort(buffer_.begin(), buffer_.end());
  std::string path = StrFormat("%s.run%zu", run_prefix_.c_str(), run_files_.size());
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw Error("EdgeRunSorter: cannot write run " + path);
  out.write(reinterpret_cast<const char*>(buffer_.data()),
            static_cast<std::streamsize>(buffer_.size() * sizeof(HalfEdge)));
  out.flush();
  if (!out) throw Error("EdgeRunSorter: write failure on run " + path);
  run_files_.push_back(std::move(path));
  buffer_.clear();
  buffer_.shrink_to_fit();
  buffer_.reserve(std::min(cap_records_, static_cast<std::size_t>(1) << 20));
}

void EdgeRunSorter::Drain(const std::function<void(const HalfEdge&)>& fn) {
  std::sort(buffer_.begin(), buffer_.end());
  if (run_files_.empty()) {
    // Pure in-memory mode: the resident buffer IS the merged order.
    for (const HalfEdge& record : buffer_) fn(record);
    buffer_.clear();
    buffer_.shrink_to_fit();
    total_ = 0;
    return;
  }

  // K-way merge of the spilled runs plus the resident tail. Keys are
  // unique across all sources, so any tie-break policy yields the same
  // sequence — the output cannot depend on run boundaries.
  std::vector<RunReader> readers;
  readers.reserve(run_files_.size());
  for (const std::string& path : run_files_) readers.emplace_back(path);
  std::size_t tail_pos = 0;

  using Entry = std::pair<HalfEdge, std::size_t>;  // record, source (runs.size() = tail)
  auto greater = [](const Entry& x, const Entry& y) { return y.first < x.first; };
  std::priority_queue<Entry, std::vector<Entry>, decltype(greater)> heap(greater);
  for (std::size_t r = 0; r < readers.size(); ++r) {
    if (!readers[r].exhausted()) heap.push({readers[r].head(), r});
  }
  if (tail_pos < buffer_.size()) heap.push({buffer_[tail_pos], readers.size()});

  while (!heap.empty()) {
    auto [record, source] = heap.top();
    heap.pop();
    fn(record);
    if (source == readers.size()) {
      if (++tail_pos < buffer_.size()) heap.push({buffer_[tail_pos], source});
    } else {
      readers[source].Pop();
      if (!readers[source].exhausted()) heap.push({readers[source].head(), source});
    }
  }
  buffer_.clear();
  buffer_.shrink_to_fit();
  std::error_code ec;
  for (const std::string& path : run_files_) std::filesystem::remove(path, ec);
  run_files_.clear();
  total_ = 0;
}

std::uint64_t PairKeySet::Mix(std::uint64_t key) {
  // splitmix64 finalizer: full-avalanche, so linear probing sees a
  // uniform distribution even from sequential id pairs.
  key ^= key >> 30;
  key *= 0xbf58476d1ce4e5b9ULL;
  key ^= key >> 27;
  key *= 0x94d049bb133111ebULL;
  key ^= key >> 31;
  return key;
}

bool PairKeySet::Insert(std::uint64_t key) {
  std::size_t mask = slots_.size() - 1;
  std::size_t at = static_cast<std::size_t>(Mix(key)) & mask;
  while (slots_[at] != 0) {
    if (slots_[at] == key) return false;
    at = (at + 1) & mask;
  }
  slots_[at] = key;
  ++size_;
  if (size_ * 10 >= slots_.size() * 6) {
    std::vector<std::uint64_t> old = std::move(slots_);
    slots_.assign(old.size() * 2, 0);
    mask = slots_.size() - 1;
    for (std::uint64_t k : old) {
      if (k == 0) continue;
      std::size_t slot = static_cast<std::size_t>(Mix(k)) & mask;
      while (slots_[slot] != 0) slot = (slot + 1) & mask;
      slots_[slot] = k;
    }
  }
  return true;
}

bool PairKeySet::Contains(std::uint64_t key) const {
  std::size_t mask = slots_.size() - 1;
  std::size_t at = static_cast<std::size_t>(Mix(key)) & mask;
  while (slots_[at] != 0) {
    if (slots_[at] == key) return true;
    at = (at + 1) & mask;
  }
  return false;
}

}  // namespace flatnet
