#include "topogen/params.h"

#include <algorithm>
#include <cmath>

#include "util/env.h"

namespace flatnet {

std::uint32_t GeneratorParams::Scaled(std::uint32_t paper_count) const {
  double fraction = static_cast<double>(total_ases) / static_cast<double>(paper_total);
  return std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(std::round(paper_count * fraction)));
}

GeneratorParams GeneratorParams::Era2020(std::uint32_t total_override) {
  GeneratorParams p;
  p.seed = 20200901;
  p.paper_total = 69999;
  p.total_ases = total_override != 0 ? total_override : ScaledCount(p.paper_total, 3000);
  p.clouds.assign(DefaultClouds2020().begin(), DefaultClouds2020().end());
  p.tier1s.assign(DefaultTier1s().begin(), DefaultTier1s().end());
  p.tier2s.assign(DefaultTier2s().begin(), DefaultTier2s().end());
  p.open_transits.assign(DefaultOpenTransits().begin(), DefaultOpenTransits().end());
  return p;
}

GeneratorParams GeneratorParams::Era2015(std::uint32_t total_override) {
  GeneratorParams p;
  p.seed = 20150901;
  p.paper_total = 51801;
  p.total_ases = total_override != 0 ? total_override : ScaledCount(p.paper_total, 2200);
  p.clouds.assign(DefaultClouds2015().begin(), DefaultClouds2015().end());
  p.tier1s.assign(DefaultTier1s().begin(), DefaultTier1s().end());
  p.tier2s.assign(DefaultTier2s().begin(), DefaultTier2s().end());
  p.open_transits.assign(DefaultOpenTransits().begin(), DefaultOpenTransits().end());
  // 2015: flatter Internet not yet fully formed — thinner edge peering and
  // fewer IXP-driven meshes (§6.5 shows 5-6% lower reachability overall).
  p.edge_peer_visibility = 0.06;
  p.ixp_member_peer_fraction = 0.35;
  for (Tier2Archetype& t2 : p.tier2s) {
    t2.edge_peers = static_cast<std::uint32_t>(t2.edge_peers * 0.6);
  }
  for (Tier1Archetype& t1 : p.tier1s) {
    t1.edge_peers = static_cast<std::uint32_t>(t1.edge_peers * 0.7);
  }
  for (OpenTransitArchetype& ot : p.open_transits) {
    ot.edge_peers = static_cast<std::uint32_t>(ot.edge_peers * 0.5);
  }
  return p;
}

}  // namespace flatnet
