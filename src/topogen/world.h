// The generated ground-truth Internet.
//
// `full_graph` holds every interconnection that exists; `bgp_graph` holds
// only the links visible to public BGP feeds (the CAIDA stand-in). Both are
// built over the SAME AsId space — every AS is registered in both builders
// in the same order — so ids, masks, and metadata arrays are shared.
#ifndef FLATNET_TOPOGEN_WORLD_H_
#define FLATNET_TOPOGEN_WORLD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "asgraph/as_graph.h"
#include "asgraph/metadata.h"
#include "asgraph/tiers.h"
#include "geo/cities.h"
#include "net/ipv4.h"
#include "topogen/params.h"

namespace flatnet {

// A cloud archetype instantiated in a world.
struct CloudInstance {
  CloudArchetype archetype;
  AsId id = kInvalidAsId;
};

// An Internet exchange point: a shared LAN where members can peer.
struct IxpInstance {
  std::string name;
  Asn ixp_asn = 0;          // the IXP's management AS
  CityIndex city = 0;
  Ipv4Prefix lan;           // transfer network used for peering interfaces
  bool lan_in_bgp = false;  // a minority of IXP LANs are globally announced
  std::vector<AsId> members;
};

struct World {
  GeneratorParams params;

  AsGraph full_graph;  // ground truth
  AsGraph bgp_graph;   // BGP-visible subset, same AsId space
  AsMetadata metadata;
  TierSets tiers;      // ground-truth tier membership (over the shared ids)

  std::vector<CloudInstance> clouds;  // in params.clouds order
  std::vector<IxpInstance> ixps;

  // Per-AS attributes (indexed by AsId).
  std::vector<CityIndex> home_city;
  // PoP footprint; single-city networks have just their home city.
  std::vector<std::vector<CityIndex>> presence;
  // Prefixes the AS originates into BGP.
  std::vector<std::vector<Ipv4Prefix>> prefixes;

  std::size_t num_ases() const { return full_graph.num_ases(); }

  // Lookup of a study cloud by archetype name; throws if absent.
  const CloudInstance& Cloud(const std::string& name) const;

  // Ids of the four study clouds (excludes non-study archetypes).
  std::vector<AsId> StudyCloudIds() const;

  // Per-AS user population as a flat array (for leak weighting).
  std::vector<double> UserArray() const;
};

}  // namespace flatnet

#endif  // FLATNET_TOPOGEN_WORLD_H_
