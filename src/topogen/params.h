// Generator parameters and era presets.
#ifndef FLATNET_TOPOGEN_PARAMS_H_
#define FLATNET_TOPOGEN_PARAMS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "topogen/archetypes.h"

namespace flatnet {

struct GeneratorParams {
  std::uint64_t seed = 20200901;

  // Total AS count after scaling (era presets apply FLATNET_SCALE).
  std::uint32_t total_ases = 0;
  // The paper-scale total this topology is a scale model of; peer targets
  // and other absolute counts are multiplied by total_ases / paper_total.
  std::uint32_t paper_total = 69999;

  // Category sizes as fractions of total (remainder becomes enterprise).
  double large_transit_fraction = 0.0045;
  double mid_transit_fraction = 0.030;
  double access_fraction = 0.62;
  double content_fraction = 0.10;

  // Provider-selection weights per customer category (see generate.cc).
  // Multihoming: P(1 provider)=p1, P(2)=p2, remainder 3.
  double single_homed_fraction = 0.45;
  double dual_homed_fraction = 0.40;
  // Fraction of access/enterprise networks buying directly from the
  // hierarchy (Tier-1/Tier-2) — these become hierarchy-free-unreachable
  // when single-homed.
  double hierarchy_direct_fraction = 0.18;

  // IXP-driven flattening mesh.
  std::uint32_t ixp_count = 0;           // 0 = derive from total_ases
  double ixp_member_peer_fraction = 0.5; // see generate.cc policy matrix

  // Visibility model: probability that a p2p link is present in BGP feeds.
  double transit_peer_visibility = 0.85;  // both endpoints transit networks
  double mid_peer_visibility = 0.60;      // at least one mid transit
  double edge_peer_visibility = 0.08;     // edge-edge (the ~90% blind spot)

  // Streaming generation (ROADMAP item 1). Cap on resident half-edge
  // bytes per sink: past it, sorted runs spill to disk and merge at
  // assembly, so generation RSS stays within a small constant of the
  // final graph. 0 keeps every record in memory. Output is bit-identical
  // at any budget.
  std::uint64_t stream_budget_bytes = 0;
  // Directory for spill runs; empty uses the system temp directory.
  std::string stream_dir;
  // Prefix assignment exhausts the /8 pools somewhere above ~500k ASes;
  // graph-only generation at the million-AS scale turns it off. Consumes
  // no RNG, so toggling it cannot shift the generated topology.
  bool assign_prefixes = true;

  // Era rosters.
  std::vector<CloudArchetype> clouds;
  std::vector<Tier1Archetype> tier1s;
  std::vector<Tier2Archetype> tier2s;
  std::vector<OpenTransitArchetype> open_transits;

  // Scale helper: converts a paper-scale count into this topology's scale.
  std::uint32_t Scaled(std::uint32_t paper_count) const;

  // Presets. `total_override` forces an AS count; 0 applies FLATNET_SCALE
  // to the era's paper-scale total (69,999 for 2020; 51,801 for 2015).
  static GeneratorParams Era2020(std::uint32_t total_override = 0);
  static GeneratorParams Era2015(std::uint32_t total_override = 0);
};

}  // namespace flatnet

#endif  // FLATNET_TOPOGEN_PARAMS_H_
