#include "fleet/merge.h"

#include <algorithm>
#include <cstdint>

#include "util/error.h"
#include "util/strings.h"

namespace flatnet::fleet {
namespace {

struct MergeEntry {
  std::uint64_t reach;
  std::uint64_t asn;
  const Json* entry;
};

}  // namespace

Json RangesJson(const Ring& ring, std::size_t shard) {
  Json ranges = Json::MakeArray();
  for (const auto& [lo, hi] : ring.RangesOf(shard)) {
    Json pair = Json::MakeArray();
    pair.Append(Json(StrFormat("%016llx", static_cast<unsigned long long>(lo))));
    pair.Append(Json(StrFormat("%016llx", static_cast<unsigned long long>(hi))));
    ranges.Append(std::move(pair));
  }
  return ranges;
}

std::string MergeTop(const std::vector<Json>& results,
                     const std::vector<std::size_t>& missing, const Ring& ring) {
  if (results.empty()) throw InvalidArgument("fleet merge: no shard results");

  // Every shard computed the scalar fields from the same store and the same
  // request, so the first shard's copy is the fleet's copy.
  const Json& first = results.front();
  std::uint64_t k = first.At("k").AsU64();

  std::vector<MergeEntry> entries;
  for (const Json& result : results) {
    const Json::Array& top = result.At("top").AsArray();
    for (const Json& entry : top) {
      entries.push_back(
          MergeEntry{entry.At("reach").AsU64(), entry.At("asn").AsU64(), &entry});
    }
  }
  // The single-process order: value descending, ASN ascending. Shard slices
  // are disjoint, so the global top-k is contained in the union of the
  // per-shard top-k lists and this sort-and-truncate reproduces it exactly.
  std::stable_sort(entries.begin(), entries.end(),
                   [](const MergeEntry& a, const MergeEntry& b) {
                     if (a.reach != b.reach) return a.reach > b.reach;
                     return a.asn < b.asn;
                   });
  if (entries.size() > k) entries.resize(k);

  Json scalars = Json::MakeObject();
  scalars["denominator"] = first.At("denominator");
  scalars["k"] = first.At("k");
  scalars["metric"] = first.At("metric");
  if (!missing.empty()) {
    // Which slices of origin space this answer cannot see: the dead shards
    // and their ring intervals (origins whose Mix64(asn) lands inside).
    Json ranges = Json::MakeArray();
    Json shards = Json::MakeArray();
    for (std::size_t shard : missing) {
      shards.Append(Json(static_cast<std::uint64_t>(shard)));
      Json shard_ranges = RangesJson(ring, shard);
      for (const Json& pair : shard_ranges.AsArray()) {
        ranges.Append(pair);
      }
    }
    scalars["missing_origin_ranges"] = std::move(ranges);
    scalars["missing_shards"] = std::move(shards);
    scalars["partial"] = true;
  }

  // Splice the merged `top` array into the scalar dump by hand. `top`
  // sorts after every scalar key above, so dropping the closing brace and
  // appending keeps the object in Json::Dump's sorted-key encoding — the
  // merged bytes are exactly what a single process would have emitted.
  std::string out = scalars.Dump();
  out.pop_back();
  out.append(",\"top\":[");
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (i > 0) out.push_back(',');
    out.append(entries[i].entry->Dump());
  }
  out.append("]}");
  return out;
}

}  // namespace flatnet::fleet
