// Consistent-hash ring over the origin ASN space.
//
// The fleet partitions origins across N backend shards with a hash that is
// a pure function of (num_shards, vnodes): the frontend router builds a
// ring to route queries, and a sharded flatnet_serve builds the identical
// ring to decide which slice of a columnar store it owns — ownership
// agrees across processes with no coordination and no shared state. Each
// shard contributes `vnodes` points mixed from (shard, replica); an ASN
// belongs to the shard of the first point at or clockwise-after its hash.
// A lookup is one binary search; failover and hedging walk clockwise to
// the next live (or next distinct live) shard, which is exactly the shard
// that inherits the range when the owner leaves the ring.
//
// std::hash is deliberately not used anywhere: its value for a given key
// is unspecified and may differ between processes or standard libraries,
// which would silently break the cross-process ownership agreement. Mix64
// (the SplitMix64 finalizer) is fixed by this header.
#ifndef FLATNET_FLEET_RING_H_
#define FLATNET_FLEET_RING_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace flatnet::fleet {

inline constexpr std::size_t kDefaultVnodes = 64;

// SplitMix64 finalizer: deterministic, well mixed, stable across builds,
// platforms, and processes.
constexpr std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

class Ring {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  // Throws InvalidArgument when num_shards or vnodes is zero.
  explicit Ring(std::size_t num_shards, std::size_t vnodes = kDefaultVnodes);

  std::size_t num_shards() const { return num_shards_; }
  std::size_t vnodes() const { return vnodes_; }

  // The shard that owns `asn` when every shard is alive.
  std::size_t Owner(std::uint32_t asn) const;

  // The first live shard at or clockwise-after the ASN's hash point — the
  // owner when it is alive, otherwise the shard that inherits the range.
  // `alive` must have num_shards() entries. Returns npos when every shard
  // is dead.
  std::size_t FirstLive(std::uint32_t asn, const std::vector<bool>& alive) const;

  // The next live shard clockwise that is distinct from `exclude` — the
  // hedge / failover target for a request already sent to `exclude`.
  // Returns npos when no other live shard exists.
  std::size_t NextLiveDistinct(std::uint32_t asn, std::size_t exclude,
                               const std::vector<bool>& alive) const;

  // The inclusive hash-space intervals owned by `shard`, ascending and
  // non-overlapping (a wrapping interval is split at the 2^64 boundary).
  // Shards advertise these in `status`; the router reports a dead shard's
  // ranges as `missing_origin_ranges` on partial answers.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> RangesOf(std::size_t shard) const;

 private:
  struct Vnode {
    std::uint64_t point;
    std::uint32_t shard;
  };

  // Index into points_ of the first vnode at or after `h` (wrapping).
  std::size_t FirstIndexAtOrAfter(std::uint64_t h) const;

  std::size_t num_shards_;
  std::size_t vnodes_;
  std::vector<Vnode> points_;  // sorted by point ascending
};

}  // namespace flatnet::fleet

#endif  // FLATNET_FLEET_RING_H_
