// Fleet frontend: routes serve-protocol requests across backend shards.
//
// One FleetRouter fronts N flatnet_serve backends started with
// `--shard i/N`. Point queries are routed by their key ASN over the
// consistent-hash ring (fleet/ring.h):
//
//   reach / reliance / leak     keyed compute ops. Every shard holds the
//                               full topology, so any shard can answer —
//                               the ring picks the cache-affine owner, a
//                               slow owner gets hedged to the next distinct
//                               live shard (first response wins, the
//                               duplicate is abandoned), and a dead owner
//                               fails over to the shard inheriting its
//                               range.
//   leakdist / hegemony /       store ops. Only the owner shard attached
//   failure                     the cell, so these route strictly by
//                               ownership; a dead owner yields a structured
//                               `unavailable` error naming the shard, not a
//                               wrong answer from elsewhere.
//   top                         scatter-gather: every live shard returns
//                               its slice-local ranking and the router
//                               k-way merges them byte-identical to the
//                               single-process answer (fleet/merge.h).
//                               With dead shards the merge is returned with
//                               `partial: true` + missing_origin_ranges
//                               instead of an error.
//   status                      scatter: per-shard summaries plus a merged
//                               capability view loadgen's preflight
//                               understands.
//   metrics / debug             answered from the router's own registry and
//                               flight recorder.
//
// Forwarded requests are relayed verbatim in both directions — the shard
// echoes the client's `id` and the router does not re-encode the response,
// so single-shard answers are byte-identical to a direct connection.
//
// A prober thread round-trips `status` to every backend on a fixed
// interval; request-path transport failures and probe failures both feed
// the shard health state (fleet/backend.h), and a probe success is how a
// restarted shard heals back into the ring.
#ifndef FLATNET_FLEET_ROUTER_H_
#define FLATNET_FLEET_ROUTER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "fleet/backend.h"
#include "fleet/hedge.h"
#include "fleet/ring.h"
#include "serve/protocol.h"

namespace flatnet::fleet {

struct RouterOptions {
  // backends[i] is shard i — the order must match the shards' --shard i/N.
  std::vector<BackendAddress> backends;
  std::size_t vnodes = kDefaultVnodes;
  BackendPoolOptions pool;
  HedgeOptions hedge;
  bool hedging = true;
  // Transport guard per forwarded request; a shard that stays silent this
  // long is treated as failed. Query deadlines (`deadline_ms`) are still
  // enforced end-to-end by the shard itself.
  std::chrono::milliseconds request_timeout{15000};
  std::chrono::milliseconds probe_interval{500};
};

// Point-in-time counters for the loadgen report and the fleet status view.
struct RouterStats {
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;
  std::uint64_t hedge_issued = 0;
  std::uint64_t hedge_won = 0;
  std::uint64_t partial_answers = 0;
  std::uint64_t unavailable = 0;
  std::uint64_t retries = 0;
};

class FleetRouter {
 public:
  explicit FleetRouter(const RouterOptions& options);
  ~FleetRouter();

  FleetRouter(const FleetRouter&) = delete;
  FleetRouter& operator=(const FleetRouter&) = delete;

  // Synchronously probes every backend once (so the first request sees real
  // health) and starts the prober thread.
  void Start();
  void Stop();

  // Handles one request line; `done` receives exactly one response line.
  // Executes synchronously on the calling thread (the server's
  // per-connection reader), so pipelined requests on one connection
  // serialize — clients wanting fan-out open more connections.
  void Handle(const std::string& line, std::function<void(std::string)> done,
              std::chrono::steady_clock::time_point received_at);
  std::string HandleSync(const std::string& line);

  RouterStats stats() const;
  const Ring& ring() const { return ring_; }
  BackendPool& pool() { return pool_; }

 private:
  std::string Route(const serve::Request& request, const Json& id,
                    const std::string& line);
  // Keyed compute op: owner-affine with failover and hedging.
  std::string ForwardCompute(std::uint32_t key_asn, const std::string& line);
  // Keyed store op: strict ownership; dead owner => `unavailable`.
  std::string ForwardStore(std::uint32_t key_asn, const std::string& line);
  // One send + hedged receive against `shard`. Returns nullopt on transport
  // failure (the shard has been marked); `hedge_key` enables hedging.
  std::optional<std::string> RoundTrip(std::size_t shard, const std::string& line,
                                       bool hedgeable, std::uint32_t hedge_key);
  std::string ScatterTop(const Json& id, const std::string& line);
  std::string FleetStatus(const Json& id);
  std::string LocalMetrics(const serve::Request& request) const;
  std::string LocalDebug(const serve::Request& request) const;
  // One status round-trip to `shard`, feeding MarkSuccess / MarkFailure.
  void ProbeShard(std::size_t shard);
  void ProbeLoop();

  RouterOptions options_;
  Ring ring_;
  BackendPool pool_;
  HedgePolicy hedge_;
  std::chrono::steady_clock::time_point start_time_;

  std::atomic<bool> stop_{false};
  std::thread prober_;
  std::mutex prober_mu_;
  std::condition_variable prober_cv_;
};

}  // namespace flatnet::fleet

#endif  // FLATNET_FLEET_ROUTER_H_
